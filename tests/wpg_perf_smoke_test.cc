// Fast perf-regression gate for the parallel WPG builder (ctest label
// `wpg-perf-smoke`): the 20k-user build at 8 threads must keep a critical-
// path speedup of at least 1.5x over 1 thread, or the scheduler has
// regressed into serialization.
//
// The gate compares WpgBuildStats::CriticalPathSeconds() (per phase:
// serial wall + busiest worker's CPU) rather than raw wall clock: wall
// speedup on a shared CI runner measures how many cores happened to be
// free, while the critical path is the schedule's own span — load- and
// core-count-robust, and exactly the wall time a machine with >= 8 free
// cores would see (see DESIGN.md, "Performance architecture"). The 1.5x
// bar is deliberately far below the ~5x a healthy build shows, so only a
// real regression (lost parallelism, a phase gone serial, grain collapse)
// trips it.

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "util/rng.h"

namespace nela::graph {
namespace {

constexpr uint32_t kUsers = 20000;
constexpr int kReps = 3;

// Best-of-kReps critical path for a thread count; also checks the digest
// so a perf run can never silently diverge from the reference result.
double BestCriticalPath(const data::Dataset& dataset,
                        const WpgBuildParams& base, uint32_t threads,
                        uint64_t want_digest) {
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    WpgBuildParams params = base;
    params.threads = threads;
    WpgBuildStats stats;
    auto built = BuildWpg(dataset, params, nullptr, &stats);
    EXPECT_TRUE(built.ok());
    if (built.ok()) {
      EXPECT_EQ(built.value().Digest(), want_digest);
    }
    const double critical = stats.CriticalPathSeconds();
    EXPECT_GT(critical, 0.0);
    best = (rep == 0) ? critical : std::min(best, critical);
  }
  return best;
}

TEST(WpgPerfSmokeTest, EightThreadCriticalPathSpeedup) {
  util::Rng rng(42);
  data::ClusteredParams shape;
  shape.count = kUsers;
  const data::Dataset dataset = data::GenerateClustered(shape, rng);
  WpgBuildParams params;
  // The bench sweep's density-matched delta for 20k users.
  params.delta = 2e-3 * 2.289;  // ~sqrt(104770 / 20000)
  params.max_peers = 10;

  WpgBuildStats stats;
  auto baseline = BuildWpg(dataset, params, nullptr, &stats);
  ASSERT_TRUE(baseline.ok());
  const uint64_t digest = baseline.value().Digest();
  ASSERT_GT(baseline.value().edge_count(), 0u);

  const double one = BestCriticalPath(dataset, params, 1, digest);
  const double eight = BestCriticalPath(dataset, params, 8, digest);
  ASSERT_GT(eight, 0.0);
  const double speedup = one / eight;
  EXPECT_GE(speedup, 1.5)
      << "8-thread critical path " << eight << "s vs 1-thread " << one
      << "s — the work-stealing build has lost its parallelism";
}

}  // namespace
}  // namespace nela::graph
