#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/flags.h"
#include "util/proptest.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"

namespace nela::util {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad k");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad k");
}

TEST(StatusTest, AllConstructorsProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("missing");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  ASSERT_TRUE(result.ok());
  std::string taken = std::move(result).value();
  EXPECT_EQ(taken, "payload");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, BoundedDrawRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextUint64(bound), bound);
    }
  }
}

TEST(RngTest, NextIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.Mean(), 0.0, 0.03);
  EXPECT_NEAR(stats.StdDev(), 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  const double lambda = 4.0;
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.NextExponential(lambda));
  EXPECT_NEAR(stats.Mean(), 1.0 / lambda, 0.01);
  EXPECT_GE(stats.Min(), 0.0);
}

TEST(RngTest, BernoulliFrequencyTracksP) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(21);
  for (uint32_t count : {0u, 1u, 5u, 50u, 100u}) {
    std::vector<uint32_t> sample = rng.SampleWithoutReplacement(100, count);
    std::set<uint32_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (uint32_t id : sample) EXPECT_LT(id, 100u);
  }
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(23);
  std::vector<uint32_t> sample = rng.SampleWithoutReplacement(64, 64);
  std::set<uint32_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 64u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(25);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child continues deterministically but differs from the parent stream.
  EXPECT_NE(parent.NextUint64(), child.NextUint64());
}

// ----------------------------------------------------------------- Stats

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.Min(), 0.0);
  EXPECT_EQ(stats.Max(), 0.0);
}

TEST(OnlineStatsTest, KnownSequence) {
  OnlineStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8);
  EXPECT_DOUBLE_EQ(stats.Mean(), 5.0);
  EXPECT_NEAR(stats.Variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(stats.Min(), 2.0);
  EXPECT_EQ(stats.Max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStatsTest, MergeMatchesSinglePass) {
  Rng rng(33);
  OnlineStats whole;
  OnlineStats left;
  OnlineStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextGaussian(3.0, 2.0);
    whole.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-9);
  EXPECT_EQ(left.Min(), whole.Min());
  EXPECT_EQ(left.Max(), whole.Max());
}

TEST(OnlineStatsTest, MergeWithEmptyIsIdentity) {
  OnlineStats stats;
  stats.Add(1.0);
  stats.Add(3.0);
  OnlineStats empty;
  stats.Merge(empty);
  EXPECT_EQ(stats.count(), 2);
  EXPECT_DOUBLE_EQ(stats.Mean(), 2.0);
  empty.Merge(stats);
  EXPECT_EQ(empty.count(), 2);
  EXPECT_DOUBLE_EQ(empty.Mean(), 2.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Percentile({}, 0.5), 0.0);
}

// ------------------------------------------------------------------ Csv

TEST(CsvTest, HeaderAndRows) {
  CsvWriter csv;
  csv.SetHeader({"k", "cost"});
  csv.AddRow({CsvWriter::Cell(int64_t{10}), CsvWriter::Cell(3.5)});
  EXPECT_EQ(csv.ToString(), "k,cost\n10,3.5\n");
  EXPECT_EQ(csv.row_count(), 1u);
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter csv;
  csv.AddRow({"a,b", "say \"hi\"", "line\nbreak"});
  EXPECT_EQ(csv.ToString(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvTest, WriteToFileRoundTrips) {
  CsvWriter csv;
  csv.SetHeader({"x"});
  csv.AddRow({"1"});
  const std::string path = ::testing::TempDir() + "/nela_csv_test.csv";
  ASSERT_TRUE(csv.WriteToFile(path).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  char buffer[64] = {};
  const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  EXPECT_EQ(std::string(buffer, read), "x\n1\n");
}

TEST(CsvTest, WriteToBadPathFails) {
  CsvWriter csv;
  csv.AddRow({"1"});
  EXPECT_FALSE(csv.WriteToFile("/nonexistent_dir_zz/x.csv").ok());
}

TEST(CsvTest, WriteFailureNamesThePathAndCause) {
  CsvWriter csv;
  csv.AddRow({"1"});
  const Status status = csv.WriteToFile("/nonexistent_dir_zz/x.csv");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("/nonexistent_dir_zz/x.csv"),
            std::string::npos)
      << status.ToString();
  // The OS-level cause (ENOENT -> "No such file or directory") must be
  // surfaced, not swallowed.
  EXPECT_NE(status.message().find("No such file"), std::string::npos)
      << status.ToString();
}

TEST(CsvTest, WriteToDirectoryPathFails) {
  CsvWriter csv;
  csv.AddRow({"1"});
  const Status status = csv.WriteToFile(::testing::TempDir());
  EXPECT_FALSE(status.ok()) << "writing to a directory path should fail";
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllTypes) {
  int64_t k = 10;
  double delta = 0.5;
  std::string name = "default";
  bool verbose = false;
  FlagParser parser;
  parser.AddInt64("k", &k, "anonymity");
  parser.AddDouble("delta", &delta, "threshold");
  parser.AddString("name", &name, "label");
  parser.AddBool("verbose", &verbose, "chatty");
  const char* argv[] = {"prog",       "--k=20",        "--delta", "0.25",
                        "--name=run", "--verbose"};
  ASSERT_TRUE(parser.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(k, 20);
  EXPECT_DOUBLE_EQ(delta, 0.25);
  EXPECT_EQ(name, "run");
  EXPECT_TRUE(verbose);
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser parser;
  const char* argv[] = {"prog", "--mystery=1"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsMalformedValue) {
  int64_t k = 0;
  FlagParser parser;
  parser.AddInt64("k", &k, "anonymity");
  const char* argv[] = {"prog", "--k=abc"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, RejectsMissingValue) {
  int64_t k = 0;
  FlagParser parser;
  parser.AddInt64("k", &k, "anonymity");
  const char* argv[] = {"prog", "--k"};
  EXPECT_FALSE(parser.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagsTest, HelpReturnsOutOfRange) {
  FlagParser parser;
  const char* argv[] = {"prog", "--help"};
  EXPECT_EQ(parser.Parse(2, const_cast<char**>(argv)).code(),
            StatusCode::kOutOfRange);
}

TEST(FlagsTest, BoolAcceptsExplicitValues) {
  bool flag = true;
  FlagParser parser;
  parser.AddBool("flag", &flag, "x");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_TRUE(parser.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_FALSE(flag);
}

// ---------------------------------------------------------------- proptest

// The harness reads NELA_PROPTEST_ITERS / NELA_PROPTEST_SEED at run time;
// these tests must control them regardless of what the invoking environment
// exports.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (saved_.has_value()) {
      ::setenv(name_, saved_->c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

TEST(ProptestTest, CaseSeedsAreDeterministicAndDistinct) {
  std::set<uint64_t> seeds;
  for (uint32_t i = 0; i < 100; ++i) {
    const uint64_t seed = DeriveCaseSeed(42, i);
    EXPECT_EQ(seed, DeriveCaseSeed(42, i));
    seeds.insert(seed);
  }
  EXPECT_EQ(seeds.size(), 100u);
  EXPECT_NE(DeriveCaseSeed(42, 0), DeriveCaseSeed(43, 0));
}

TEST(ProptestTest, PassingPropertyRunsEveryIteration) {
  ScopedEnv iters("NELA_PROPTEST_ITERS", nullptr);
  ScopedEnv seed("NELA_PROPTEST_SEED", nullptr);
  PropSpec spec;
  spec.iterations = 17;
  spec.min_size = 3;
  spec.max_size = 9;
  uint32_t runs = 0;
  auto failure = RunProperty(spec, [&](Rng&, uint32_t size) {
    ++runs;
    EXPECT_GE(size, 3u);
    EXPECT_LE(size, 9u);
    return std::optional<std::string>();
  });
  EXPECT_FALSE(failure.has_value());
  EXPECT_EQ(runs, 17u);
}

TEST(ProptestTest, ItersEnvOverridesIterationCount) {
  ScopedEnv iters("NELA_PROPTEST_ITERS", "5");
  ScopedEnv seed("NELA_PROPTEST_SEED", nullptr);
  EXPECT_EQ(PropIterations(100), 5u);
  PropSpec spec;
  spec.iterations = 100;
  uint32_t runs = 0;
  auto failure = RunProperty(spec, [&](Rng&, uint32_t) {
    ++runs;
    return std::optional<std::string>();
  });
  EXPECT_FALSE(failure.has_value());
  EXPECT_EQ(runs, 5u);
}

TEST(ProptestTest, SeedEnvReplaysExactlyOneCase) {
  ScopedEnv iters("NELA_PROPTEST_ITERS", nullptr);
  ScopedEnv seed("NELA_PROPTEST_SEED", "12345");
  PropSpec spec;
  spec.iterations = 50;
  std::vector<uint64_t> draws;
  auto failure = RunProperty(spec, [&](Rng& rng, uint32_t) {
    draws.push_back(rng.NextUint64());
    return std::optional<std::string>();
  });
  EXPECT_FALSE(failure.has_value());
  ASSERT_EQ(draws.size(), 1u);
  // The replayed case uses exactly the given seed, not a derived one.
  Rng expected(12345);
  EXPECT_EQ(draws[0], expected.NextUint64());
}

TEST(ProptestTest, FailureShrinksByHalvingAndCarriesARepro) {
  ScopedEnv iters("NELA_PROPTEST_ITERS", nullptr);
  ScopedEnv seed("NELA_PROPTEST_SEED", nullptr);
  PropSpec spec;
  spec.name = "shrink_prop";
  spec.iterations = 1;
  spec.min_size = 1;
  spec.max_size = 64;
  // The initial size is drawn from the case seed; pick a base seed whose
  // first case is large enough that shrinking has real work to do.
  for (uint64_t base = 1;; ++base) {
    spec.base_seed = base;
    uint32_t drawn = 0;
    RunProperty(spec, [&](Rng&, uint32_t size) {
      drawn = size;
      return std::optional<std::string>();
    });
    if (drawn >= 8) break;
    ASSERT_LT(base, 1000u) << "no case seed with a large initial size";
  }
  std::vector<uint32_t> sizes_tried;
  auto failure = RunProperty(spec, [&](Rng&, uint32_t size) {
    sizes_tried.push_back(size);
    if (size >= 3) return std::optional<std::string>("too big");
    return std::optional<std::string>();
  });
  ASSERT_TRUE(failure.has_value());
  ASSERT_GE(sizes_tried.size(), 2u);  // the original case plus shrink steps
  // Shrinking halves toward min_size and keeps the smallest failing size:
  // the halving chain from the initial size brackets the threshold at 3-5
  // (the first halving step to land in [3, 5] has its half below 3).
  EXPECT_GE(failure->size, 3u);
  EXPECT_LE(failure->size, 5u);
  EXPECT_EQ(failure->message, "too big");
  EXPECT_EQ(failure->iteration, 0u);
  EXPECT_EQ(failure->case_seed, DeriveCaseSeed(spec.base_seed, 0));
  EXPECT_NE(failure->repro.find("NELA_PROPTEST_SEED="), std::string::npos);
  EXPECT_NE(failure->repro.find("NELA_PROPTEST_ITERS=1"), std::string::npos);
  EXPECT_NE(failure->repro.find("ctest -R shrink_prop"), std::string::npos);
  // Consecutive shrink attempts halve the size.
  for (size_t i = 1; i < sizes_tried.size(); ++i) {
    EXPECT_LE(sizes_tried[i], sizes_tried[i - 1] / 2 + 1);
  }
}

TEST(ProptestTest, SameSeedSameScenario) {
  ScopedEnv iters("NELA_PROPTEST_ITERS", nullptr);
  ScopedEnv seed("NELA_PROPTEST_SEED", nullptr);
  PropSpec spec;
  spec.iterations = 4;
  auto run = [&spec]() {
    std::vector<std::pair<uint32_t, uint64_t>> scenarios;
    auto failure = RunProperty(spec, [&](Rng& rng, uint32_t size) {
      scenarios.emplace_back(size, rng.NextUint64());
      return std::optional<std::string>();
    });
    EXPECT_FALSE(failure.has_value());
    return scenarios;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace nela::util
