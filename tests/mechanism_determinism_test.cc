// Baseline mechanisms through the sharded service driver (ctest labels:
// mechanisms, determinism): for every non-default mechanism family the
// outcome digest -- the FNV fold of each request's (host, admission,
// satisfaction, region/probe bits) -- must be bit-identical across worker
// thread counts {1,4,8} and shard counts {1,2}, with the adversary
// observer and the family's leak-contract checker tapped onto the wire
// the whole time and staying clean. Also pins the config validation: the
// baseline mode composes with admission and fault plans, never with
// durability or stall injection.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "audit/leak_contract.h"
#include "audit/observer.h"
#include "audit/taint.h"
#include "audit/tap_chain.h"
#include "core/policy_factory.h"
#include "geo/point.h"
#include "sim/scenario.h"
#include "sim/service_driver.h"
#include "sim/sharded_service_driver.h"
#include "util/status.h"

namespace nela::sim {
namespace {

const Scenario& SharedScenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.user_count = 400;
    config.delta = 0.04;
    config.seed = 29;
    auto built = BuildScenario(config);
    NELA_CHECK(built.ok());
    return std::move(built).value();
  }();
  return scenario;
}

ShardedServiceConfig MechanismConfig(audit::MechanismFamily family,
                                     uint32_t threads, uint32_t shards) {
  ShardedServiceConfig config;
  config.service.k = 4;
  config.service.requests = 96;
  config.service.threads = threads;
  config.service.master_seed = 77;
  config.service.workload_seed = 31;
  config.service.mechanism = family;
  config.shards = shards;
  return config;
}

util::Result<ShardedServiceResult> RunConfig(
    const ShardedServiceConfig& config) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  ShardedServiceDriver driver(scenario.dataset, scenario.graph,
                              core::MakeSecurePolicyFactory(params), config);
  return driver.Run();
}

TEST(MechanismDeterminismTest, OutcomeDigestIsThreadAndShardInvariant) {
  const Scenario& scenario = SharedScenario();
  audit::TaintSet taint;
  std::vector<geo::Point> true_points;
  for (uint32_t u = 0; u < scenario.dataset.size(); ++u) {
    taint.TaintPoint(u, scenario.dataset.point(u));
    true_points.push_back(scenario.dataset.point(u));
  }

  for (audit::MechanismFamily family :
       {audit::MechanismFamily::kGridCloak, audit::MechanismFamily::kGeoInd,
        audit::MechanismFamily::kDummyLocations}) {
    std::optional<uint64_t> reference;
    std::optional<uint64_t> reference_satisfied;
    for (uint32_t shards : {1u, 2u}) {
      for (uint32_t threads : {1u, 4u, 8u}) {
        audit::ObserverConfig oc;
        oc.taint = &taint;
        oc.allow_declared_exposure =
            family == audit::MechanismFamily::kGridCloak;
        audit::AdversaryObserver observer(oc);
        audit::LeakContractConfig cc;
        cc.family = family;
        cc.k = 4;
        cc.true_points = true_points;
        audit::LeakContractChecker checker(cc);
        audit::TapChain chain;
        chain.Add(&observer);
        chain.Add(&checker);

        ShardedServiceConfig config =
            MechanismConfig(family, threads, shards);
        config.service.tap = &chain;
        auto result = RunConfig(config);
        ASSERT_TRUE(result.ok()) << result.status().message();
        checker.Finalize();

        const ServiceResult& service = result.value().service;
        EXPECT_GT(service.outcome_digest, 0u);
        uint64_t satisfied = 0;
        for (const ServiceRequestRecord& record : service.records) {
          if (record.outcome.anonymity_satisfied) ++satisfied;
        }
        EXPECT_GT(satisfied, 0u)
            << audit::MechanismFamilyName(family);
        if (!reference.has_value()) {
          reference = service.outcome_digest;
          reference_satisfied = satisfied;
        } else {
          EXPECT_EQ(service.outcome_digest, *reference)
              << audit::MechanismFamilyName(family) << " threads=" << threads
              << " shards=" << shards;
          EXPECT_EQ(satisfied, *reference_satisfied);
        }
        EXPECT_TRUE(observer.clean())
            << audit::MechanismFamilyName(family) << "\n"
            << observer.Report();
        EXPECT_TRUE(checker.clean())
            << audit::MechanismFamilyName(family) << "\n"
            << checker.Report();
        EXPECT_GT(observer.messages_seen(), 0u);
        if (family == audit::MechanismFamily::kGridCloak) {
          EXPECT_GT(observer.declared_exposures(), 0u);
        } else {
          EXPECT_EQ(observer.declared_exposures(), 0u);
        }
      }
    }
  }
}

TEST(MechanismDeterminismTest, BaselineModeComposesWithAdmission) {
  ShardedServiceConfig config =
      MechanismConfig(audit::MechanismFamily::kGeoInd, 4, 1);
  config.service.offered_rate_per_ms = 50.0;
  config.service.service_time_ms = 1.0;
  config.service.queue_capacity = 8;
  auto result = RunConfig(config);
  ASSERT_TRUE(result.ok()) << result.status().message();
  const ServiceResult& service = result.value().service;
  // Saturated queue: something was shed, the rest were served.
  EXPECT_GT(service.shed_queue_overflow + service.shed_deadline, 0u);
  EXPECT_GT(service.admitted, 0u);
  // The shed set (computed sequentially up front) is part of the digest.
  auto again = RunConfig(config);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().service.outcome_digest, service.outcome_digest);
}

TEST(MechanismDeterminismTest, BaselineModeRejectsDurabilityAndStall) {
  {
    ShardedServiceConfig config =
        MechanismConfig(audit::MechanismFamily::kGridCloak, 1, 1);
    config.service.wal_path = "/tmp/nela_mechanism_should_not_exist.wal";
    auto result = RunConfig(config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
  {
    ShardedServiceConfig config =
        MechanismConfig(audit::MechanismFamily::kGeoInd, 1, 1);
    config.service.stall_ordinal = 3;
    auto result = RunConfig(config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
  {
    ShardedServiceConfig config =
        MechanismConfig(audit::MechanismFamily::kDummyLocations, 1, 1);
    config.durability_dir = "/tmp/nela_mechanism_should_not_exist_dir";
    auto result = RunConfig(config);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), util::StatusCode::kInvalidArgument);
  }
}

}  // namespace
}  // namespace nela::sim
