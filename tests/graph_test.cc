#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "graph/union_find.h"
#include "graph/wpg.h"
#include "graph/wpg_builder.h"
#include "util/rng.h"

namespace nela::graph {
namespace {

TEST(WpgTest, EmptyGraph) {
  const Wpg graph(5);
  EXPECT_EQ(graph.vertex_count(), 5u);
  EXPECT_EQ(graph.edge_count(), 0u);
  EXPECT_EQ(graph.AverageDegree(), 0.0);
  EXPECT_EQ(graph.MaxEdgeWeight(), 0.0);
  EXPECT_TRUE(graph.Neighbors(0).empty());
}

TEST(WpgTest, AddEdgeUpdatesBothEndpoints) {
  Wpg graph(3);
  graph.AddEdge(0, 1, 2.5);
  EXPECT_EQ(graph.edge_count(), 1u);
  EXPECT_EQ(graph.Degree(0), 1u);
  EXPECT_EQ(graph.Degree(1), 1u);
  EXPECT_EQ(graph.Degree(2), 0u);
  EXPECT_EQ(graph.Neighbors(0)[0].to, 1u);
  EXPECT_EQ(graph.Neighbors(1)[0].to, 0u);
  EXPECT_DOUBLE_EQ(graph.MaxEdgeWeight(), 2.5);
  EXPECT_DOUBLE_EQ(graph.AverageDegree(), 2.0 / 3.0);
}

TEST(WpgTest, FromEdgesValidates) {
  EXPECT_FALSE(Wpg::FromEdges(2, {{0, 2, 1.0}}).ok());  // out of range
  EXPECT_FALSE(Wpg::FromEdges(2, {{0, 0, 1.0}}).ok());  // self edge
  EXPECT_FALSE(Wpg::FromEdges(2, {{0, 1, 0.0}}).ok());  // non-positive weight
  EXPECT_FALSE(
      Wpg::FromEdges(2, {{0, 1, 1.0}, {1, 0, 2.0}}).ok());  // duplicate
  EXPECT_TRUE(Wpg::FromEdges(2, {{0, 1, 1.0}}).ok());
}

TEST(WpgTest, AdjacencySortedByWeight) {
  auto graph = Wpg::FromEdges(
      4, {{0, 1, 3.0}, {0, 2, 1.0}, {0, 3, 2.0}});
  ASSERT_TRUE(graph.ok());
  const auto& neighbors = graph.value().Neighbors(0);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].to, 2u);
  EXPECT_EQ(neighbors[1].to, 3u);
  EXPECT_EQ(neighbors[2].to, 1u);
}

TEST(UnionFindTest, BasicMerging) {
  UnionFind dsu(5);
  EXPECT_EQ(dsu.set_count(), 5u);
  EXPECT_TRUE(dsu.Union(0, 1));
  EXPECT_FALSE(dsu.Union(1, 0));  // already merged
  EXPECT_TRUE(dsu.Union(2, 3));
  EXPECT_EQ(dsu.set_count(), 3u);
  EXPECT_TRUE(dsu.Connected(0, 1));
  EXPECT_FALSE(dsu.Connected(0, 2));
  EXPECT_EQ(dsu.SizeOf(0), 2u);
  EXPECT_EQ(dsu.SizeOf(4), 1u);
  dsu.Union(0, 2);
  EXPECT_EQ(dsu.SizeOf(3), 4u);
  EXPECT_EQ(dsu.set_count(), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind dsu(100);
  for (uint32_t i = 0; i + 1 < 100; ++i) dsu.Union(i, i + 1);
  EXPECT_EQ(dsu.set_count(), 1u);
  EXPECT_TRUE(dsu.Connected(0, 99));
  EXPECT_EQ(dsu.SizeOf(50), 100u);
}

// ----------------------------------------------------------- CSR adjacency

TEST(WpgCsrTest, NeighborSpansAreContiguousAndOrdered) {
  // CSR layout: each vertex's span is a slice of one flat array, and
  // consecutive vertices' slices abut (begin of v+1 == end of v).
  auto built = Wpg::FromEdges(
      4, {{0, 1, 3.0}, {0, 2, 1.0}, {1, 2, 2.0}, {2, 3, 4.0}});
  ASSERT_TRUE(built.ok());
  const Wpg& graph = built.value();
  size_t total = 0;
  const HalfEdge* expected_begin = graph.Neighbors(0).data();
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    const std::span<const HalfEdge> slice = graph.Neighbors(v);
    EXPECT_EQ(slice.size(), graph.Degree(v));
    if (!slice.empty()) {
      EXPECT_EQ(slice.data(), expected_begin + total);
    }
    total += slice.size();
  }
  EXPECT_EQ(total, 2 * graph.edge_count());
}

TEST(WpgCsrTest, AddEdgeRebuildsLazilyPreservingInsertionOrder) {
  // Before SortAdjacencyByWeight, each vertex's slice lists peers in edge
  // insertion order — the same contract the old vector-of-vectors layout
  // gave via push_back.
  Wpg graph(4);
  graph.AddEdge(0, 3, 5.0);
  graph.AddEdge(0, 1, 9.0);
  graph.AddEdge(0, 2, 1.0);
  const auto slice = graph.Neighbors(0);
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[0].to, 3u);
  EXPECT_EQ(slice[1].to, 1u);
  EXPECT_EQ(slice[2].to, 2u);
  // Growing the graph after a read invalidates and rebuilds the CSR.
  graph.AddEdge(2, 3, 2.0);
  EXPECT_EQ(graph.Degree(2), 2u);
  EXPECT_EQ(graph.Neighbors(2)[1].to, 3u);
}

TEST(WpgCsrTest, SortAdjacencyDeterministicOnWeightTies) {
  // Many edges sharing one weight (pervasive rank ties, the common case for
  // rank-valued WPGs): after SortAdjacencyByWeight the adjacency must not
  // depend on edge insertion order. (weight, to) keys are unique within a
  // slice, so the sorted order is canonical.
  std::vector<Edge> edges;
  const uint32_t n = 24;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if ((u + v) % 3 == 0) edges.push_back({u, v, 1.0 + (u + v) % 2});
    }
  }
  util::Rng rng(4242);
  std::vector<Edge> shuffled = edges;
  rng.Shuffle(shuffled);

  auto a = Wpg::FromEdges(n, edges);
  auto b = Wpg::FromEdges(n, shuffled);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a.value().SortAdjacencyByWeight();
  b.value().SortAdjacencyByWeight();
  for (VertexId v = 0; v < n; ++v) {
    const auto sa = a.value().Neighbors(v);
    const auto sb = b.value().Neighbors(v);
    ASSERT_EQ(sa.size(), sb.size()) << "vertex " << v;
    for (size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].to, sb[i].to) << "vertex " << v << " slot " << i;
      EXPECT_DOUBLE_EQ(sa[i].weight, sb[i].weight);
    }
  }
}

TEST(WpgCsrTest, DigestCoversEdgesAndAdjacency) {
  auto a = Wpg::FromEdges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  auto b = Wpg::FromEdges(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  auto c = Wpg::FromEdges(3, {{0, 1, 1.0}, {1, 2, 3.0}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a.value().Digest(), b.value().Digest());
  EXPECT_NE(a.value().Digest(), c.value().Digest());
  // Edge list order is part of the digest: the builder contract is
  // bit-identical output, not merely isomorphic graphs.
  auto d = Wpg::FromEdges(3, {{1, 2, 2.0}, {0, 1, 1.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_NE(a.value().Digest(), d.value().Digest());
}

// ------------------------------------------------------------ WPG builder

TEST(WpgBuilderTest, RejectsBadParams) {
  const data::Dataset dataset = data::GenerateGrid(4);
  WpgBuildParams params;
  params.delta = 0.0;
  EXPECT_FALSE(BuildWpg(dataset, params).ok());
  params.delta = 0.1;
  params.max_peers = 0;
  EXPECT_FALSE(BuildWpg(dataset, params).ok());
}

TEST(WpgBuilderTest, DeltaLimitsEdges) {
  // 3x3 unit grid scaled: spacing 0.5.
  const data::Dataset dataset = data::GenerateGrid(9);
  WpgBuildParams params;
  params.delta = 0.6;  // connects orthogonal (0.5) but not diagonal (0.707)
  params.max_peers = 8;
  auto graph = BuildWpg(dataset, params);
  ASSERT_TRUE(graph.ok());
  // Grid adjacency: 12 orthogonal pairs.
  EXPECT_EQ(graph.value().edge_count(), 12u);
}

TEST(WpgBuilderTest, WeightsAreMutualRanks) {
  // Three collinear users: a --0.1-- b --0.12-- c.
  const data::Dataset dataset({{0.0, 0.5}, {0.1, 0.5}, {0.22, 0.5}});
  WpgBuildParams params;
  params.delta = 0.15;
  params.max_peers = 5;
  auto built = BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  const Wpg& graph = built.value();
  ASSERT_EQ(graph.edge_count(), 2u);
  // Edge (a,b): a is b's rank-1 (closest), b is a's rank-1 -> weight 1.
  // Edge (b,c): c is b's rank-2, b is c's rank-1 -> weight min(2,1) = 1.
  for (const Edge& e : graph.edges()) {
    EXPECT_DOUBLE_EQ(e.weight, 1.0);
  }
}

TEST(WpgBuilderTest, RankWeightReflectsOrdering) {
  // Hub at origin with three spokes at increasing distance; spokes only see
  // the hub. From each spoke the hub is rank 1; from the hub the spokes are
  // ranks 1..3 -> weights all min(rank, 1) = 1. To get a weight > 1 the
  // pair must be mutually non-closest: use two hubs.
  const data::Dataset dataset(
      {{0.5, 0.5}, {0.53, 0.5}, {0.5, 0.54}, {0.56, 0.5}});
  WpgBuildParams params;
  params.delta = 0.2;
  params.max_peers = 5;
  auto built = BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  const Wpg& graph = built.value();
  // Vertex 3 (0.56): distances to 0 = 0.06, to 1 = 0.03, to 2 ~ 0.072.
  // In 3's list: 1 (rank 1), 0 (rank 2), 2 (rank 3).
  // In 0's list: 1 (0.03, rank 1), 2 (0.04, rank 2), 3 (0.06, rank 3).
  // Weight(0,3) = min(rank of 3 in 0's list, rank of 0 in 3's list)
  //             = min(3, 2) = 2.
  double weight_03 = 0.0;
  for (const Edge& e : graph.edges()) {
    if ((e.u == 0 && e.v == 3) || (e.u == 3 && e.v == 0)) {
      weight_03 = e.weight;
    }
  }
  EXPECT_DOUBLE_EQ(weight_03, 2.0);
}

TEST(WpgBuilderTest, MaxPeersCapsDegree) {
  util::Rng rng(77);
  const data::Dataset dataset = data::GenerateUniform(500, rng);
  WpgBuildParams params;
  params.delta = 0.2;  // dense: many delta-neighbors
  params.max_peers = 4;
  auto built = BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  const Wpg& graph = built.value();
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    EXPECT_LE(graph.Degree(v), 4u);
  }
  // Mutuality trims links, so the average degree sits below the cap.
  EXPECT_LT(graph.AverageDegree(), 4.0);
  EXPECT_GT(graph.AverageDegree(), 1.0);
}

TEST(WpgBuilderTest, LargerMIncreasesDensity) {
  util::Rng rng(78);
  const data::Dataset dataset = data::GenerateUniform(2000, rng);
  double previous = 0.0;
  for (uint32_t m : {4u, 8u, 16u}) {
    WpgBuildParams params;
    params.delta = 0.05;
    params.max_peers = m;
    auto built = BuildWpg(dataset, params);
    ASSERT_TRUE(built.ok());
    const double degree = built.value().AverageDegree();
    EXPECT_GT(degree, previous);
    previous = degree;
  }
}

TEST(WpgBuilderTest, UncappedKeepsAllDeltaNeighbors) {
  util::Rng rng(79);
  const data::Dataset dataset = data::GenerateUniform(300, rng);
  WpgBuildParams capped;
  capped.delta = 0.1;
  capped.max_peers = 3;
  WpgBuildParams uncapped;
  uncapped.delta = 0.1;
  uncapped.cap_peers = false;
  auto g1 = BuildWpg(dataset, capped);
  auto g2 = BuildWpg(dataset, uncapped);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_GT(g2.value().edge_count(), g1.value().edge_count());
}

TEST(WpgBuilderTest, EdgeWeightsArePositiveIntegerRanks) {
  util::Rng rng(80);
  const data::Dataset dataset = data::GenerateUniform(400, rng);
  WpgBuildParams params;
  params.delta = 0.06;
  params.max_peers = 6;
  auto built = BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  for (const Edge& e : built.value().edges()) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 6.0);
    EXPECT_DOUBLE_EQ(e.weight, std::floor(e.weight));  // integral rank
  }
}

}  // namespace
}  // namespace nela::graph
