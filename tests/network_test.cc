#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/retry.h"
#include "util/rng.h"

namespace nela::net {
namespace {

TEST(NetworkTest, CountsMessagesAndBytes) {
  Network network(3);
  EXPECT_TRUE(network.Send(0, 1, MessageKind::kAdjacencyExchange, 100));
  EXPECT_TRUE(network.Send(1, 2, MessageKind::kBoundProposal, 16));
  EXPECT_TRUE(network.Send(2, 1, MessageKind::kBoundVote, 8));
  EXPECT_EQ(network.total().messages, 3u);
  EXPECT_EQ(network.total().bytes, 124u);
  EXPECT_EQ(network.of_kind(MessageKind::kAdjacencyExchange).messages, 1u);
  EXPECT_EQ(network.of_kind(MessageKind::kBoundProposal).bytes, 16u);
  EXPECT_EQ(network.of_kind(MessageKind::kServiceReply).messages, 0u);
}

TEST(NetworkTest, PerNodeCounters) {
  Network network(3);
  network.Send(0, 1, MessageKind::kControl, 1);
  network.Send(0, 2, MessageKind::kControl, 1);
  network.Send(1, 0, MessageKind::kControl, 1);
  EXPECT_EQ(network.SentBy(0), 2u);
  EXPECT_EQ(network.SentBy(1), 1u);
  EXPECT_EQ(network.SentBy(2), 0u);
  EXPECT_EQ(network.ReceivedBy(0), 1u);
  EXPECT_EQ(network.ReceivedBy(1), 1u);
  EXPECT_EQ(network.ReceivedBy(2), 1u);
}

TEST(NetworkTest, ResetClearsCounters) {
  Network network(2);
  network.Send(0, 1, MessageKind::kControl, 10);
  network.ResetCounters();
  EXPECT_EQ(network.total().messages, 0u);
  EXPECT_EQ(network.total().bytes, 0u);
  EXPECT_EQ(network.SentBy(0), 0u);
  EXPECT_EQ(network.of_kind(MessageKind::kControl).messages, 0u);
}

TEST(NetworkTest, LossDropsApproximatelyAtRate) {
  Network network(2);
  util::Rng rng(5);
  ASSERT_TRUE(network.SetLossProbability(0.25, &rng).ok());
  int delivered = 0;
  for (int i = 0; i < 10000; ++i) {
    if (network.Send(0, 1, MessageKind::kControl, 1)) ++delivered;
  }
  EXPECT_NEAR(delivered / 10000.0, 0.75, 0.02);
  EXPECT_EQ(network.dropped_messages() + delivered, 10000u);
  // Dropped messages are not counted as traffic.
  EXPECT_EQ(network.total().messages, static_cast<uint64_t>(delivered));
}

TEST(NetworkTest, ZeroLossDeliversEverything) {
  Network network(2);
  util::Rng rng(6);
  ASSERT_TRUE(network.SetLossProbability(0.0, &rng).ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(network.Send(0, 1, MessageKind::kControl, 1));
  }
  EXPECT_EQ(network.dropped_messages(), 0u);
}

TEST(NetworkTest, KindNamesAreStable) {
  EXPECT_STREQ(MessageKindName(MessageKind::kAdjacencyExchange),
               "adjacency_exchange");
  EXPECT_STREQ(MessageKindName(MessageKind::kServiceReply), "service_reply");
}

// Guards the name table against drift: every enumerator in
// [0, kMessageKindCount) must map to a non-null, non-empty, distinct name,
// and out-of-range values must not read past the table.
TEST(NetworkTest, EveryKindHasAUniqueName) {
  std::set<std::string> names;
  for (int i = 0; i < kMessageKindCount; ++i) {
    const char* name = MessageKindName(static_cast<MessageKind>(i));
    ASSERT_NE(name, nullptr) << "kind " << i;
    EXPECT_STRNE(name, "") << "kind " << i;
    EXPECT_STRNE(name, "unknown") << "kind " << i;
    EXPECT_TRUE(names.insert(name).second)
        << "kind " << i << " duplicates name \"" << name << "\"";
  }
  EXPECT_STREQ(MessageKindName(static_cast<MessageKind>(kMessageKindCount)),
               "unknown");
}

TEST(NetworkTest, SetLossProbabilityRejectsOutOfRange) {
  Network network(2);
  util::Rng rng(1);
  EXPECT_EQ(network.SetLossProbability(-0.01, &rng).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(network.SetLossProbability(1.01, &rng).code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_TRUE(network.SetLossProbability(1.0, &rng).ok());
  EXPECT_TRUE(network.SetLossProbability(0.0, &rng).ok());
}

TEST(NetworkTest, SetLossProbabilityRequiresRngWhenLossy) {
  Network network(2);
  EXPECT_EQ(network.SetLossProbability(0.5, nullptr).code(),
            util::StatusCode::kInvalidArgument);
  // Zero probability needs no randomness.
  EXPECT_TRUE(network.SetLossProbability(0.0, nullptr).ok());
}

TEST(NetworkTest, RejectedLossSettingLeavesNetworkLossless) {
  Network network(2);
  EXPECT_FALSE(network.SetLossProbability(0.5, nullptr).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(network.Send(0, 1, MessageKind::kControl, 1));
  }
}

TEST(NetworkTest, DroppedBytesAreCounted) {
  Network network(2);
  util::Rng rng(7);
  ASSERT_TRUE(network.SetLossProbability(1.0, &rng).ok());
  EXPECT_FALSE(network.Send(0, 1, MessageKind::kBoundProposal, 16));
  EXPECT_FALSE(network.Send(1, 0, MessageKind::kBoundVote, 8));
  EXPECT_EQ(network.dropped_messages(), 2u);
  EXPECT_EQ(network.dropped_bytes(), 24u);
  EXPECT_EQ(network.total().bytes, 0u);
}

TEST(NetworkTest, InstallFaultPlanValidatesInputs) {
  Network network(4);
  FaultPlan bad_loss;
  bad_loss.loss_probability = 2.0;
  EXPECT_EQ(network.InstallFaultPlan(bad_loss).code(),
            util::StatusCode::kInvalidArgument);

  FaultPlan bad_latency;
  bad_latency.latency.base_ms = -1.0;
  EXPECT_EQ(network.InstallFaultPlan(bad_latency).code(),
            util::StatusCode::kInvalidArgument);

  FaultPlan bad_crash;
  bad_crash.crashes.push_back(CrashEvent{99, 1});
  EXPECT_EQ(network.InstallFaultPlan(bad_crash).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(NetworkTest, CrashNodeFailsSendsTouchingIt) {
  Network network(3);
  EXPECT_TRUE(network.IsAlive(1));
  network.CrashNode(1);
  network.CrashNode(1);  // idempotent
  EXPECT_FALSE(network.IsAlive(1));
  EXPECT_EQ(network.alive_count(), 2u);
  EXPECT_FALSE(network.Send(0, 1, MessageKind::kControl, 4));
  EXPECT_FALSE(network.Send(1, 2, MessageKind::kControl, 4));
  EXPECT_TRUE(network.Send(0, 2, MessageKind::kControl, 4));
  EXPECT_EQ(network.dead_endpoint_attempts(), 2u);
  // Dead-endpoint failures are not loss-process drops.
  EXPECT_EQ(network.dropped_messages(), 0u);
}

TEST(NetworkTest, ScheduledCrashFiresAtAttemptThreshold) {
  Network network(3);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{2, 3});
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  EXPECT_TRUE(network.Send(0, 2, MessageKind::kControl, 1));  // attempt 1
  EXPECT_TRUE(network.Send(0, 2, MessageKind::kControl, 1));  // attempt 2
  // The event fires when the attempt counter reaches the threshold, so the
  // 3rd attempt already addresses a dead endpoint.
  EXPECT_FALSE(network.Send(0, 2, MessageKind::kControl, 1));  // attempt 3
  EXPECT_FALSE(network.IsAlive(2));
  EXPECT_EQ(network.dead_endpoint_attempts(), 1u);
}

TEST(NetworkTest, LatencyAboveTimeoutSurfacesAsTimeout) {
  Network network(2);
  FaultPlan plan;
  plan.latency.base_ms = 50.0;
  plan.latency.jitter_ms = 0.0;
  plan.latency.timeout_ms = 10.0;  // every sample exceeds the deadline
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  EXPECT_FALSE(network.Send(0, 1, MessageKind::kControl, 1));
  EXPECT_EQ(network.timed_out_messages(), 1u);
  EXPECT_EQ(network.total().messages, 0u);
}

TEST(NetworkTest, LatencyBelowTimeoutAccumulates) {
  Network network(2);
  FaultPlan plan;
  plan.latency.base_ms = 5.0;
  plan.latency.jitter_ms = 0.0;
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  EXPECT_TRUE(network.Send(0, 1, MessageKind::kControl, 1));
  EXPECT_TRUE(network.Send(1, 0, MessageKind::kControl, 1));
  EXPECT_NEAR(network.total_latency_ms(), 10.0, 1e-9);
}

TEST(NetworkTest, RetryStatsAccumulatePerKind) {
  Network network(2);
  network.RecordRetry(MessageKind::kBoundProposal, 16);
  network.RecordRetry(MessageKind::kBoundProposal, 16);
  network.RecordTimeoutObserved(MessageKind::kBoundVote);
  EXPECT_EQ(network.retry_stats_of(MessageKind::kBoundProposal).retries, 2u);
  EXPECT_EQ(
      network.retry_stats_of(MessageKind::kBoundProposal).retransmitted_bytes,
      32u);
  EXPECT_EQ(network.retry_stats_of(MessageKind::kBoundVote).timeouts_observed,
            1u);
  const RetryStats total = network.total_retry_stats();
  EXPECT_EQ(total.retries, 2u);
  EXPECT_EQ(total.timeouts_observed, 1u);
  EXPECT_EQ(total.retransmitted_bytes, 32u);
  network.ResetCounters();
  EXPECT_EQ(network.total_retry_stats().retries, 0u);
}

TEST(NetworkTest, ResetCountersKeepsLivenessAndSchedulePosition) {
  Network network(3);
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 1});
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  network.Send(0, 2, MessageKind::kControl, 1);  // fires the crash
  EXPECT_FALSE(network.IsAlive(1));
  network.ResetCounters();
  EXPECT_EQ(network.total().messages, 0u);
  EXPECT_FALSE(network.IsAlive(1));  // liveness survives the reset
}

TEST(SendWithRetryTest, DeliversThroughLossAndAccountsRetries) {
  Network network(2);
  util::Rng loss_rng(11);
  ASSERT_TRUE(network.SetLossProbability(0.5, &loss_rng).ok());
  BackoffPolicy policy;
  policy.max_attempts = 32;
  util::Rng jitter(3);
  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    const SendOutcome outcome = SendWithRetry(
        network, 0, 1, MessageKind::kBoundProposal, 16, policy, &jitter);
    if (outcome.delivered) ++delivered;
    EXPECT_FALSE(outcome.peer_down);
  }
  // 32 attempts at 50% loss: failure is ~2^-32 per message.
  EXPECT_EQ(delivered, 200);
  const RetryStats stats =
      network.retry_stats_of(MessageKind::kBoundProposal);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(stats.retransmitted_bytes, stats.retries * 16u);
}

TEST(SendWithRetryTest, ReportsPeerDownInsteadOfRetryingForever) {
  Network network(2);
  network.CrashNode(1);
  BackoffPolicy policy;
  util::Rng jitter(3);
  const SendOutcome outcome = SendWithRetry(
      network, 0, 1, MessageKind::kControl, 4, policy, &jitter);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_TRUE(outcome.peer_down);
  // Liveness is checked up front; the retry budget is not burned.
  EXPECT_LE(outcome.attempts, 1u);
}

TEST(SendWithRetryTest, ExhaustedBudgetIsObservedAsTimeout) {
  Network network(2);
  util::Rng loss_rng(11);
  ASSERT_TRUE(network.SetLossProbability(1.0, &loss_rng).ok());
  BackoffPolicy policy;
  policy.max_attempts = 4;
  const SendOutcome outcome = SendWithRetry(
      network, 0, 1, MessageKind::kBoundVote, 8, policy, nullptr);
  EXPECT_FALSE(outcome.delivered);
  EXPECT_FALSE(outcome.peer_down);
  EXPECT_EQ(outcome.attempts, 4u);
  EXPECT_GT(outcome.backoff_ms, 0.0);
  // One observed timeout per failed attempt.
  EXPECT_EQ(
      network.retry_stats_of(MessageKind::kBoundVote).timeouts_observed, 4u);
}

TEST(SendWithRetryTest, SameSeedSameSchedule) {
  auto run = []() {
    Network network(2);
    FaultPlan plan;
    plan.seed = 77;
    plan.loss_probability = 0.4;
    EXPECT_TRUE(network.InstallFaultPlan(plan).ok());
    BackoffPolicy policy;
    util::Rng jitter(9);
    double backoff = 0.0;
    uint64_t attempts = 0;
    for (int i = 0; i < 100; ++i) {
      const SendOutcome outcome = SendWithRetry(
          network, 0, 1, MessageKind::kControl, 4, policy, &jitter);
      backoff += outcome.backoff_ms;
      attempts += outcome.attempts;
    }
    return std::make_pair(backoff, attempts);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // bit-identical, not just close
  EXPECT_EQ(a.second, b.second);
}

TEST(SendWithRetryTest, JitterHistogramCountsEveryBackoffDraw) {
  Network network(2);
  util::Rng loss_rng(11);
  ASSERT_TRUE(network.SetLossProbability(0.5, &loss_rng).ok());
  BackoffPolicy policy;
  policy.max_attempts = 32;
  util::Rng jitter(3);
  for (int i = 0; i < 200; ++i) {
    (void)SendWithRetry(network, 0, 1, MessageKind::kBoundProposal, 16,
                        policy, &jitter);
  }
  const RetryStats stats =
      network.retry_stats_of(MessageKind::kBoundProposal);
  // Exactly one histogrammed draw per observed timeout: every failed
  // attempt backs off, and every backoff draws jitter.
  EXPECT_EQ(stats.jitter_draws(), stats.timeouts_observed);
  EXPECT_GT(stats.jitter_draws(), 0u);
  // A seeded uniform draw over the window spreads across buckets; all mass
  // in one bucket is the retransmission-synchronization signature jitter
  // exists to prevent.
  int occupied = 0;
  for (uint64_t bucket : stats.jitter_histogram) {
    if (bucket > 0) ++occupied;
  }
  EXPECT_GT(occupied, RetryStats::kJitterBuckets / 2);
}

TEST(SendWithRetryTest, NoJitterRngMeansNoHistogramDraws) {
  Network network(2);
  util::Rng loss_rng(11);
  ASSERT_TRUE(network.SetLossProbability(1.0, &loss_rng).ok());
  BackoffPolicy policy;
  policy.max_attempts = 4;
  (void)SendWithRetry(network, 0, 1, MessageKind::kBoundVote, 8, policy,
                      nullptr);
  const RetryStats stats = network.retry_stats_of(MessageKind::kBoundVote);
  EXPECT_EQ(stats.jitter_draws(), 0u);
  EXPECT_GT(stats.timeouts_observed, 0u);
}

TEST(SendWithRetryTest, RetryStatsAreBitIdenticalAcrossSeededRuns) {
  auto run = []() {
    Network network(2);
    FaultPlan plan;
    plan.seed = 77;
    plan.loss_probability = 0.4;
    EXPECT_TRUE(network.InstallFaultPlan(plan).ok());
    BackoffPolicy policy;
    util::Rng jitter(9);
    for (int i = 0; i < 100; ++i) {
      (void)SendWithRetry(network, 0, 1, MessageKind::kControl, 4, policy,
                          &jitter);
    }
    return network.retry_stats_of(MessageKind::kControl);
  };
  const RetryStats a = run();
  const RetryStats b = run();
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.timeouts_observed, b.timeouts_observed);
  EXPECT_EQ(a.retransmitted_bytes, b.retransmitted_bytes);
  // Bucket-for-bucket, not just in total: the whole draw sequence replays.
  EXPECT_EQ(a.jitter_histogram, b.jitter_histogram);
  EXPECT_EQ(a.jitter_draws(), b.jitter_draws());
}

class RecordingTap : public TrafficTap {
 public:
  void OnMessage(const Message& message, bool delivered) override {
    messages.push_back(message);
    deliveries.push_back(delivered);
  }
  std::vector<Message> messages;
  std::vector<bool> deliveries;
};

TEST(TrafficTapTest, SeesEveryAttemptWithDeliveryFlag) {
  Network network(3);
  util::Rng rng(7);
  ASSERT_TRUE(network.SetLossProbability(1.0, &rng).ok());
  RecordingTap tap;
  network.SetTap(&tap);
  EXPECT_FALSE(network.Send(0, 1, MessageKind::kBoundProposal, 16));
  ASSERT_TRUE(network.SetLossProbability(0.0, nullptr).ok());
  EXPECT_TRUE(network.Send(1, 2, MessageKind::kBoundVote, 8));
  ASSERT_EQ(tap.messages.size(), 2u);
  EXPECT_FALSE(tap.deliveries[0]);  // dropped attempts are still observed
  EXPECT_TRUE(tap.deliveries[1]);
  EXPECT_EQ(tap.messages[1].from, 1u);
  EXPECT_EQ(tap.messages[1].to, 2u);
  EXPECT_EQ(tap.messages[1].kind, MessageKind::kBoundVote);
  EXPECT_EQ(tap.messages[1].bytes, 8u);
}

TEST(TrafficTapTest, LegacySendTapsAnEmptyDescriptor) {
  Network network(2);
  RecordingTap tap;
  network.SetTap(&tap);
  EXPECT_TRUE(network.Send(0, 1, MessageKind::kControl, 4));
  ASSERT_EQ(tap.messages.size(), 1u);
  EXPECT_TRUE(tap.messages[0].payload.empty());
}

TEST(TrafficTapTest, StructuredSendPreservesTheDescriptor) {
  Network network(2);
  RecordingTap tap;
  network.SetTap(&tap);
  Message message;
  message.from = 0;
  message.to = 1;
  message.kind = MessageKind::kBoundProposal;
  message.bytes = 16;
  message.payload.Add(FieldTag::kBoundHypothesis, kPublicSubject, 0.25);
  message.payload.Add(FieldTag::kBoundVerdict, 1, 1.0);
  EXPECT_TRUE(network.Send(message));
  ASSERT_EQ(tap.messages.size(), 1u);
  const PayloadDescriptor& payload = tap.messages[0].payload;
  ASSERT_EQ(payload.field_count, 2u);
  EXPECT_EQ(payload.fields[0].tag, FieldTag::kBoundHypothesis);
  EXPECT_EQ(payload.fields[0].subject, kPublicSubject);
  EXPECT_EQ(payload.fields[0].value, 0.25);
  EXPECT_EQ(payload.fields[1].tag, FieldTag::kBoundVerdict);
  EXPECT_EQ(payload.fields[1].subject, 1u);
  EXPECT_EQ(payload.fields[1].value, 1.0);
}

TEST(TrafficTapTest, ClearingTheTapStopsObservation) {
  Network network(2);
  RecordingTap tap;
  network.SetTap(&tap);
  network.Send(0, 1, MessageKind::kControl, 1);
  network.SetTap(nullptr);
  network.Send(0, 1, MessageKind::kControl, 1);
  EXPECT_EQ(tap.messages.size(), 1u);
}

TEST(TrafficTapTest, FieldTagNamesAreStableAndUnique) {
  std::set<std::string> names;
  for (int i = 0; i < kFieldTagCount; ++i) {
    names.insert(FieldTagName(static_cast<FieldTag>(i)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kFieldTagCount));
  EXPECT_STREQ(FieldTagName(FieldTag::kRawCoordinate), "raw_coordinate");
  EXPECT_STREQ(FieldTagName(FieldTag::kCloakedRegion), "cloaked_region");
}

}  // namespace
}  // namespace nela::net
