#include <gtest/gtest.h>

#include "net/network.h"
#include "util/rng.h"

namespace nela::net {
namespace {

TEST(NetworkTest, CountsMessagesAndBytes) {
  Network network(3);
  EXPECT_TRUE(network.Send(0, 1, MessageKind::kAdjacencyExchange, 100));
  EXPECT_TRUE(network.Send(1, 2, MessageKind::kBoundProposal, 16));
  EXPECT_TRUE(network.Send(2, 1, MessageKind::kBoundVote, 8));
  EXPECT_EQ(network.total().messages, 3u);
  EXPECT_EQ(network.total().bytes, 124u);
  EXPECT_EQ(network.of_kind(MessageKind::kAdjacencyExchange).messages, 1u);
  EXPECT_EQ(network.of_kind(MessageKind::kBoundProposal).bytes, 16u);
  EXPECT_EQ(network.of_kind(MessageKind::kServiceReply).messages, 0u);
}

TEST(NetworkTest, PerNodeCounters) {
  Network network(3);
  network.Send(0, 1, MessageKind::kControl, 1);
  network.Send(0, 2, MessageKind::kControl, 1);
  network.Send(1, 0, MessageKind::kControl, 1);
  EXPECT_EQ(network.SentBy(0), 2u);
  EXPECT_EQ(network.SentBy(1), 1u);
  EXPECT_EQ(network.SentBy(2), 0u);
  EXPECT_EQ(network.ReceivedBy(0), 1u);
  EXPECT_EQ(network.ReceivedBy(1), 1u);
  EXPECT_EQ(network.ReceivedBy(2), 1u);
}

TEST(NetworkTest, ResetClearsCounters) {
  Network network(2);
  network.Send(0, 1, MessageKind::kControl, 10);
  network.ResetCounters();
  EXPECT_EQ(network.total().messages, 0u);
  EXPECT_EQ(network.total().bytes, 0u);
  EXPECT_EQ(network.SentBy(0), 0u);
  EXPECT_EQ(network.of_kind(MessageKind::kControl).messages, 0u);
}

TEST(NetworkTest, LossDropsApproximatelyAtRate) {
  Network network(2);
  util::Rng rng(5);
  network.SetLossProbability(0.25, &rng);
  int delivered = 0;
  for (int i = 0; i < 10000; ++i) {
    if (network.Send(0, 1, MessageKind::kControl, 1)) ++delivered;
  }
  EXPECT_NEAR(delivered / 10000.0, 0.75, 0.02);
  EXPECT_EQ(network.dropped_messages() + delivered, 10000u);
  // Dropped messages are not counted as traffic.
  EXPECT_EQ(network.total().messages, static_cast<uint64_t>(delivered));
}

TEST(NetworkTest, ZeroLossDeliversEverything) {
  Network network(2);
  util::Rng rng(6);
  network.SetLossProbability(0.0, &rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(network.Send(0, 1, MessageKind::kControl, 1));
  }
  EXPECT_EQ(network.dropped_messages(), 0u);
}

TEST(NetworkTest, KindNamesAreStable) {
  EXPECT_STREQ(MessageKindName(MessageKind::kAdjacencyExchange),
               "adjacency_exchange");
  EXPECT_STREQ(MessageKindName(MessageKind::kServiceReply), "service_reply");
}

}  // namespace
}  // namespace nela::net
