// Cross-shard clustering property suite.
//
// Each case draws a boundary-straddling world: Gaussian blobs centered ON
// the 2x2 shard grid's boundary lines (x = 1/2, y = 1/2, and their
// crossing) over a uniform background, so a large share of clusters is
// forced to span shards. The sharded service then runs the same seeded
// workload at K = 1, 4, 16 and the suite asserts
//
//  * shard-count invariance: the global registry digest is identical for
//    every K (sharding relabels ownership, never membership);
//  * boundary clusters obey exactly the invariants interior clusters obey
//    (sorted unique membership, size >= k when valid) -- checked by one
//    loop that does not branch on CrossesShards;
//  * zero exposure violations under the adversary observer with every
//    coordinate tainted, cross-shard claim handoffs included;
//  * the K=4 run's per-shard WAL streams recover and assemble back into
//    the exact final registry, which passes the anonymity audit.

#include <cmath>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/observer.h"
#include "audit/taint.h"
#include "cluster/registry.h"
#include "cluster/shard_map.h"
#include "core/anonymity_audit.h"
#include "core/policy_factory.h"
#include "data/dataset.h"
#include "durability/sharded_recovery.h"
#include "geo/point.h"
#include "graph/wpg_builder.h"
#include "sim/sharded_service_driver.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace nela {
namespace {

// Users drawn so that blobs sit astride the K=4 grid boundaries: every
// blob center lies on x = 1/2, on y = 1/2, or on their crossing, with a
// sigma wide enough that members land on both sides.
data::Dataset DrawBoundaryDataset(util::Rng& rng, uint32_t n) {
  std::vector<geo::Point> points;
  points.reserve(n);
  auto clamp01 = [](double v) {
    if (v < 0.0) return 0.0;
    if (v > 1.0) return 1.0;
    return v;
  };
  for (uint32_t i = 0; i < n; ++i) {
    geo::Point p;
    if (rng.NextBernoulli(0.35)) {
      p.x = rng.NextDouble();  // uniform background
      p.y = rng.NextDouble();
    } else {
      const double sigma = rng.NextDouble(0.02, 0.05);
      switch (rng.NextUint64(3)) {
        case 0:  // astride the vertical boundary
          p.x = 0.5 + rng.NextGaussian(0.0, sigma);
          p.y = rng.NextDouble();
          break;
        case 1:  // astride the horizontal boundary
          p.x = rng.NextDouble();
          p.y = 0.5 + rng.NextGaussian(0.0, sigma);
          break;
        default:  // astride the four-corner crossing
          p.x = 0.5 + rng.NextGaussian(0.0, sigma);
          p.y = 0.5 + rng.NextGaussian(0.0, sigma);
          break;
      }
    }
    p.x = clamp01(p.x);
    p.y = clamp01(p.y);
    points.push_back(p);
  }
  return data::Dataset(std::move(points));
}

sim::ShardedServiceConfig BaseConfig(uint32_t k, uint32_t requests,
                                     uint64_t master_seed,
                                     uint64_t workload_seed) {
  sim::ShardedServiceConfig config;
  config.service.k = k;
  config.service.requests = requests;
  config.service.threads = 4;
  config.service.master_seed = master_seed;
  config.service.workload_seed = workload_seed;
  return config;
}

std::optional<std::string> RunScenario(util::Rng& rng, uint32_t size,
                                       uint64_t* cross_shard_seen) {
  const uint32_t n = 150 + static_cast<uint32_t>(rng.NextUint64(151));
  const uint32_t k = size;
  const data::Dataset dataset = DrawBoundaryDataset(rng, n);

  graph::WpgBuildParams wpg;
  wpg.delta = 0.12 * std::sqrt(200.0 / static_cast<double>(n));
  wpg.max_peers = 8;
  auto graph = graph::BuildWpg(dataset, wpg);
  NELA_CHECK(graph.ok());

  const uint32_t requests = 24 + static_cast<uint32_t>(rng.NextUint64(9));
  const uint64_t master_seed = rng.NextUint64();
  const uint64_t workload_seed = rng.NextUint64();
  const core::BoundingParams params;

  // Reference: the unsharded run.
  uint64_t reference_digest = 0;
  for (uint32_t shards : {1u, 16u}) {
    sim::ShardedServiceConfig config =
        BaseConfig(k, requests, master_seed, workload_seed);
    config.shards = shards;
    sim::ShardedServiceDriver driver(dataset, graph.value(),
                                     core::MakeSecurePolicyFactory(params),
                                     config);
    auto result = driver.Run();
    if (!result.ok()) {
      return "driver failed at K=" + std::to_string(shards) + ": " +
             result.status().ToString();
    }
    if (shards == 1) {
      reference_digest = result.value().service.registry_digest;
    } else if (result.value().service.registry_digest != reference_digest) {
      return "digest diverged at K=" + std::to_string(shards);
    }
  }

  // The K=4 run: adversary observer on the wire, sharded durability on
  // disk.
  audit::TaintSet taint;
  for (uint32_t u = 0; u < n; ++u) taint.TaintPoint(u, dataset.point(u));
  audit::ObserverConfig observer_config;
  observer_config.taint = &taint;
  audit::AdversaryObserver observer(observer_config);

  const std::string dir = ::testing::TempDir() + "cross_shard_prop_" +
                          std::to_string(master_seed);
  std::filesystem::remove_all(dir);
  sim::ShardedServiceConfig config =
      BaseConfig(k, requests, master_seed, workload_seed);
  config.shards = 4;
  config.durability_dir = dir;
  config.service.checkpoint_interval = 4;
  config.service.tap = &observer;
  sim::ShardedServiceDriver driver(dataset, graph.value(),
                                   core::MakeSecurePolicyFactory(params),
                                   config);
  auto sharded = driver.Run();
  if (!sharded.ok()) {
    return "K=4 driver failed: " + sharded.status().ToString();
  }
  if (sharded.value().service.registry_digest != reference_digest) {
    return std::string("digest diverged at K=4");
  }
  if (!observer.clean()) {
    return "observer flagged exposure:\n" + observer.Report();
  }
  if (observer.messages_seen() == 0) {
    return std::string("observer saw no traffic");
  }

  // Recover the per-shard streams and assemble the registry back.
  auto recovered = durability::RecoverAllShards(dir, 4, n);
  if (!recovered.ok()) {
    return "recovery failed: " + recovered.status().ToString();
  }
  auto registry = durability::AssembleRegistry(recovered.value());
  if (!registry.ok()) {
    return "assembly failed: " + registry.status().ToString();
  }
  if (registry.value()->Digest() != reference_digest) {
    return std::string("assembled registry diverged from the run");
  }

  // Boundary clusters obey the same invariants as interior ones: one loop,
  // no branch on whether the cluster crosses shards.
  const cluster::ShardMap map(dataset, 4);
  uint64_t crossing = 0;
  const cluster::Registry& reg = *registry.value();
  for (cluster::ClusterId id = 0; id < reg.cluster_count(); ++id) {
    const cluster::ClusterInfo& info = reg.info(id);
    if (info.members.empty()) {
      return "cluster " + std::to_string(id) + " has no members";
    }
    for (size_t i = 1; i < info.members.size(); ++i) {
      if (info.members[i] <= info.members[i - 1]) {
        return "cluster " + std::to_string(id) +
               " membership is not sorted unique";
      }
    }
    if (info.valid && info.members.size() < k) {
      return "valid cluster " + std::to_string(id) + " smaller than k";
    }
    if (map.CrossesShards(info.members)) ++crossing;
  }
  if (crossing != sharded.value().cross_shard_clusters) {
    return "driver counted " +
           std::to_string(sharded.value().cross_shard_clusters) +
           " boundary clusters, registry walk found " +
           std::to_string(crossing);
  }
  *cross_shard_seen += crossing;

  const core::AuditReport report =
      core::AuditAnonymity(reg, dataset, k, nullptr);
  if (!report.ok()) {
    return "anonymity audit failed: " +
           report.violations.front().description;
  }
  return std::nullopt;
}

TEST(CrossShardProptest, BoundaryClustersStaySafeAndShardCountInvariant) {
  util::PropSpec spec;
  spec.name = "cross_shard_proptest";
  spec.base_seed = 0x5eedb0a7u;
  spec.iterations = 10;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 2;
  spec.max_size = 8;  // size doubles as the anonymity requirement k

  uint64_t cross_shard_seen = 0;
  auto failure = util::RunProperty(
      spec, [&cross_shard_seen](util::Rng& rng, uint32_t size) {
        return RunScenario(rng, size, &cross_shard_seen);
      });
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
  // The datasets are built to straddle the grid; if no cluster ever
  // crossed a boundary the generator (or CrossesShards) is broken.
  EXPECT_GT(cross_shard_seen, 0u);
}

}  // namespace
}  // namespace nela
