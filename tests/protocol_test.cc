// Progressive bounding protocol tests: correctness of the bound, policy
// behaviours, region computation, privacy-loss analysis, non-exposure
// semantics, and network accounting.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "bounding/increment_policy.h"
#include "bounding/privacy_loss.h"
#include "bounding/protocol.h"
#include "bounding/secret.h"
#include "util/rng.h"

namespace nela::bounding {
namespace {

TEST(ProtocolTest, LinearPolicyFindsUpperBound) {
  const std::vector<PrivateScalar> secrets = MakePrivate({0.3, 0.7, 0.1});
  LinearIncrementPolicy policy(0.25);
  const BoundingRunResult result =
      RunProgressiveUpperBounding(secrets, 0.0, policy).value();
  // Hypotheses: 0.25, 0.5, 0.75 -> everyone agrees at 0.75.
  EXPECT_DOUBLE_EQ(result.bound, 0.75);
  EXPECT_EQ(result.iterations, 3u);
  // Verifications: 3 users at 0.25, two survivors at 0.5, one at 0.75.
  EXPECT_EQ(result.verifications, 6u);
  EXPECT_EQ(result.agree_iteration[0], 1u);  // 0.3 <= 0.5
  EXPECT_EQ(result.agree_iteration[1], 2u);  // 0.7 <= 0.75
  EXPECT_EQ(result.agree_iteration[2], 0u);  // 0.1 <= 0.25
}

TEST(ProtocolTest, BoundUpperBoundsEveryValue) {
  util::Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 40; ++i) values.push_back(rng.NextDouble(0.0, 5.0));
  const std::vector<PrivateScalar> secrets = MakePrivate(values);
  ExponentialIncrementPolicy policy(0.01);
  const BoundingRunResult result =
      RunProgressiveUpperBounding(secrets, 0.0, policy).value();
  for (double v : values) EXPECT_LE(v, result.bound);
  // Exponential doubling: overshoot at most 2x the true maximum extent.
  const double max_value = *std::max_element(values.begin(), values.end());
  EXPECT_LE(result.bound, std::max(2.0 * max_value, 0.02));
}

TEST(ProtocolTest, NonzeroDomainMin) {
  const std::vector<PrivateScalar> secrets = MakePrivate({-0.4, -0.2});
  LinearIncrementPolicy policy(0.5);
  const BoundingRunResult result =
      RunProgressiveUpperBounding(secrets, -1.0, policy).value();
  // Hypotheses: -0.5 (both still above it), then 0.0 (both agree).
  EXPECT_DOUBLE_EQ(result.bound, 0.0);
  EXPECT_EQ(result.iterations, 2u);
  EXPECT_EQ(result.verifications, 4u);
}

TEST(ProtocolTest, ValuesEqualToDomainMinAgreeOnFirstHypothesis) {
  const std::vector<PrivateScalar> secrets = MakePrivate({0.0, 0.0});
  LinearIncrementPolicy policy(0.1);
  const BoundingRunResult result =
      RunProgressiveUpperBounding(secrets, 0.0, policy).value();
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_EQ(result.verifications, 2u);
}

TEST(ProtocolTest, SecurePolicyTerminatesAndIsBounded) {
  util::Rng rng(11);
  std::vector<double> values;
  const double upper = 0.01;
  for (int i = 0; i < 10; ++i) values.push_back(rng.NextDouble(0.0, upper));
  const std::vector<PrivateScalar> secrets = MakePrivate(values);
  UniformDistribution dist(upper);
  QuadraticCost cost(1000.0 * 104770.0);
  SecureIncrementPolicy policy(dist, cost, 1.0);
  const BoundingRunResult result =
      RunProgressiveUpperBounding(secrets, 0.0, policy).value();
  const double max_value = *std::max_element(values.begin(), values.end());
  EXPECT_GE(result.bound, max_value);
  EXPECT_GT(result.iterations, 1u);  // progressive, not one-shot
  EXPECT_LT(result.bound, 3.0 * upper);
}

TEST(ProtocolTest, OptBoundingIsExact) {
  const std::vector<PrivateScalar> secrets = MakePrivate({0.3, 0.9, 0.5});
  const BoundingRunResult result = RunOptBounding(secrets);
  EXPECT_DOUBLE_EQ(result.bound, 0.9);
  EXPECT_EQ(result.iterations, 1u);
  EXPECT_EQ(result.verifications, 3u);  // one exposure message per user
}

TEST(ProtocolTest, NetworkAccountingCountsRoundTrips) {
  const std::vector<PrivateScalar> secrets = MakePrivate({0.3, 0.7});
  const std::vector<net::NodeId> nodes = {1, 2};
  net::Network network(3);
  NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &nodes;
  LinearIncrementPolicy policy(0.5);
  const BoundingRunResult result =
      RunProgressiveUpperBounding(secrets, 0.0, policy, binding).value();
  // Each verification = proposal + vote.
  EXPECT_EQ(network.of_kind(net::MessageKind::kBoundProposal).messages,
            result.verifications);
  EXPECT_EQ(network.of_kind(net::MessageKind::kBoundVote).messages,
            result.verifications);
}

TEST(ProtocolTest, LossyLinkRetriesUntilDelivered) {
  // Failure injection (the paper's SVII robustness concern): with message
  // loss the host retransmits; every verification round trip eventually
  // completes, so the protocol result is unchanged while the network shows
  // the retry traffic.
  const std::vector<PrivateScalar> secrets = MakePrivate({0.3, 0.7});
  const std::vector<net::NodeId> nodes = {1, 2};
  util::Rng loss_rng(5);
  net::Network network(3);
  ASSERT_TRUE(network.SetLossProbability(0.3, &loss_rng).ok());
  NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &nodes;
  LinearIncrementPolicy policy(0.5);
  const BoundingRunResult lossy =
      RunProgressiveUpperBounding(secrets, 0.0, policy, binding).value();
  // Identical protocol outcome to the lossless run.
  EXPECT_DOUBLE_EQ(lossy.bound, 1.0);
  EXPECT_EQ(lossy.iterations, 2u);
  // Retries: delivered votes equal the verifications; proposals exceed
  // them (each dropped proposal or vote forces a re-send), and drops are
  // recorded.
  EXPECT_EQ(network.of_kind(net::MessageKind::kBoundVote).messages,
            lossy.verifications);
  EXPECT_GE(network.of_kind(net::MessageKind::kBoundProposal).messages,
            lossy.verifications);
  EXPECT_GT(network.dropped_messages(), 0u);
}

// ----------------------------------------------------------- region runs

TEST(RegionTest, OptRegionIsTightBoundingBox) {
  const std::vector<geo::Point> points = {
      {0.2, 0.3}, {0.5, 0.1}, {0.4, 0.6}};
  const RegionBoundingResult result = ComputeOptRegion(points);
  EXPECT_EQ(result.region, geo::Rect(0.2, 0.1, 0.5, 0.6));
  EXPECT_EQ(result.verifications, 3u);
}

TEST(RegionTest, SecureRegionContainsAllMembers) {
  util::Rng rng(17);
  std::vector<geo::Point> points;
  for (int i = 0; i < 12; ++i) {
    points.push_back(
        geo::Point{0.4 + rng.NextDouble() * 0.02, 0.6 + rng.NextDouble() * 0.02});
  }
  UniformDistribution dist(0.02);
  QuadraticCost cost(1000.0 * 104770.0);
  SecureIncrementPolicy policy(dist, cost, 1.0);
  const RegionBoundingResult result =
      ComputeCloakedRegion(points, points.front(), policy).value();
  for (const geo::Point& p : points) {
    EXPECT_TRUE(result.region.Contains(p));
  }
  // The region must stay cluster-sized (not overshoot wildly).
  EXPECT_LT(result.region.Width(), 0.1);
  EXPECT_LT(result.region.Height(), 0.1);
  EXPECT_GT(result.verifications, 0u);
}

TEST(RegionTest, ProgressiveRegionContainsOptRegion) {
  // Progressive bounds only ever overshoot, never undershoot.
  util::Rng rng(19);
  std::vector<geo::Point> points;
  for (int i = 0; i < 8; ++i) {
    points.push_back(geo::Point{rng.NextDouble(), rng.NextDouble()});
  }
  ExponentialIncrementPolicy policy(0.001);
  const RegionBoundingResult secure =
      ComputeCloakedRegion(points, points.front(), policy).value();
  const RegionBoundingResult opt = ComputeOptRegion(points);
  EXPECT_TRUE(secure.region.Contains(opt.region));
}

TEST(RegionTest, SingleMemberRegionIsPointLike) {
  const std::vector<geo::Point> points = {{0.5, 0.5}};
  LinearIncrementPolicy policy(1e-4);
  const RegionBoundingResult result =
      ComputeCloakedRegion(points, points.front(), policy).value();
  EXPECT_TRUE(result.region.Contains(points[0]));
  EXPECT_LT(result.region.Width(), 1e-3);
}

// ------------------------------------------------------------ secrecy API

TEST(SecretTest, OnlyComparisonIsExposed) {
  const PrivateScalar secret(0.42);
  EXPECT_TRUE(secret.AgreesWithUpperBound(0.42));
  EXPECT_TRUE(secret.AgreesWithUpperBound(0.5));
  EXPECT_FALSE(secret.AgreesWithUpperBound(0.41));
  // The loud escape hatch exists solely for the OPT baseline.
  EXPECT_DOUBLE_EQ(secret.ExposeForOptBaseline(), 0.42);
}

// ----------------------------------------------------------- privacy loss

TEST(PrivacyLossTest, IntervalsMatchAgreePoints) {
  const std::vector<PrivateScalar> secrets = MakePrivate({0.3, 0.7, 0.1});
  LinearIncrementPolicy policy(0.25);
  const BoundingRunResult run =
      RunProgressiveUpperBounding(secrets, 0.0, policy).value();
  const PrivacyLossReport report = AnalyzePrivacyLoss(run, 0.0);
  ASSERT_EQ(report.interval_width.size(), 3u);
  // Every user's exposure interval is one linear step wide.
  for (double width : report.interval_width) {
    EXPECT_NEAR(width, 0.25, 1e-12);
  }
  EXPECT_NEAR(report.mean_width, 0.25, 1e-12);
}

TEST(PrivacyLossTest, TighterIncrementsExposeMore) {
  util::Rng rng(23);
  std::vector<double> values;
  for (int i = 0; i < 20; ++i) values.push_back(rng.NextDouble(0.0, 1.0));
  const std::vector<PrivateScalar> secrets = MakePrivate(values);

  LinearIncrementPolicy fine(0.01);
  LinearIncrementPolicy coarse(0.2);
  const PrivacyLossReport fine_report = AnalyzePrivacyLoss(
      RunProgressiveUpperBounding(secrets, 0.0, fine).value(), 0.0);
  const PrivacyLossReport coarse_report = AnalyzePrivacyLoss(
      RunProgressiveUpperBounding(secrets, 0.0, coarse).value(), 0.0);
  // Finer steps => narrower exposure intervals => more privacy lost.
  EXPECT_LT(fine_report.mean_width, coarse_report.mean_width);
}

TEST(PrivacyLossTest, ExponentialExposureGrowsWithValue) {
  // Doubling bounds: users agreeing later have wider (safer) intervals.
  const std::vector<PrivateScalar> secrets = MakePrivate({0.05, 0.8});
  ExponentialIncrementPolicy policy(0.05);
  const BoundingRunResult run =
      RunProgressiveUpperBounding(secrets, 0.0, policy).value();
  const PrivacyLossReport report = AnalyzePrivacyLoss(run, 0.0);
  EXPECT_LT(report.interval_width[0], report.interval_width[1]);
}

// ------------------------------------------------------ policy unit tests

TEST(PolicyTest, LinearIsConstant) {
  LinearIncrementPolicy policy(0.3);
  EXPECT_DOUBLE_EQ(policy.NextIncrement(0.0, 5, 0), 0.3);
  EXPECT_DOUBLE_EQ(policy.NextIncrement(10.0, 1, 7), 0.3);
}

TEST(PolicyTest, ExponentialDoublesCoveredExtent) {
  ExponentialIncrementPolicy policy(0.1);
  EXPECT_DOUBLE_EQ(policy.NextIncrement(0.0, 5, 0), 0.1);
  EXPECT_DOUBLE_EQ(policy.NextIncrement(0.1, 5, 1), 0.1);
  EXPECT_DOUBLE_EQ(policy.NextIncrement(0.2, 4, 2), 0.2);
  EXPECT_DOUBLE_EQ(policy.NextIncrement(0.4, 1, 3), 0.4);
}

TEST(PolicyTest, SecureShrinksWithFewerDisagreeing) {
  UniformDistribution dist(1.0);
  QuadraticCost cost(10000.0);
  SecureIncrementPolicy policy(dist, cost, 1.0);
  const double x10 = policy.NextIncrement(0.0, 10, 0);
  const double x2 = policy.NextIncrement(0.5, 2, 3);
  EXPECT_GT(x10, x2);
  EXPECT_STREQ(policy.name(), "secure");
}

TEST(PolicyTest, SecureDpModeUsesTable) {
  UniformDistribution dist(1.0);
  QuadraticCost cost(10000.0);
  const ExactNBoundTable table(dist, cost, 1.0, 4);
  SecureIncrementPolicy policy(dist, cost, 1.0, &table);
  EXPECT_STREQ(policy.name(), "secure-dp");
  EXPECT_DOUBLE_EQ(policy.NextIncrement(0.0, 3, 0), table.increment(3));
  // Beyond the table: falls back to Equation 5 (positive increment).
  EXPECT_GT(policy.NextIncrement(0.0, 9, 0), 0.0);
}

}  // namespace
}  // namespace nela::bounding
