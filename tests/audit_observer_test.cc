// Non-exposure verifier tests: taint matching, knowledge reconstruction,
// the adversary observer on honest and dishonest protocol runs -- and the
// mutation checks that prove the verifier actually fires. The deliberately
// leaky bounding variant lives under NELA_TEST_LEAKY_VARIANT below: it is a
// protocol a careless optimizer might plausibly write (binary search plus a
// confirmation sweep), and the observer must flag it.

#define NELA_TEST_LEAKY_VARIANT 1

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "audit/knowledge.h"
#include "audit/observer.h"
#include "audit/taint.h"
#include "bounding/increment_policy.h"
#include "bounding/protocol.h"
#include "bounding/secret.h"
#include "geo/point.h"
#include "net/network.h"
#include "util/rng.h"

namespace nela::audit {
namespace {

// ------------------------------------------------------------------ taint

TEST(TaintSetTest, PointRegistersAllAxisForms) {
  TaintSet taint;
  taint.TaintPoint(7, geo::Point{3.25, -1.5});
  EXPECT_EQ(taint.size(), 4u);
  ASSERT_TRUE(taint.Match(3.25).has_value());
  EXPECT_EQ(*taint.Match(3.25), 7u);
  EXPECT_TRUE(taint.Match(-3.25).has_value());
  EXPECT_TRUE(taint.Match(-1.5).has_value());
  EXPECT_TRUE(taint.Match(1.5).has_value());
  EXPECT_FALSE(taint.Match(3.250000001).has_value());
}

TEST(TaintSetTest, VerdictEncodingsNeverMatch) {
  TaintSet taint;
  taint.TaintValue(1, 0.0);
  taint.TaintValue(1, 1.0);
  taint.TaintValue(1, -0.0);
  EXPECT_FALSE(taint.Match(0.0).has_value());
  EXPECT_FALSE(taint.Match(-0.0).has_value());
  EXPECT_FALSE(taint.Match(1.0).has_value());
}

TEST(TaintSetTest, ClearEmpties) {
  TaintSet taint;
  taint.TaintValue(2, 42.0);
  EXPECT_TRUE(taint.Match(42.0).has_value());
  taint.Clear();
  EXPECT_EQ(taint.size(), 0u);
  EXPECT_FALSE(taint.Match(42.0).has_value());
}

// -------------------------------------------------------------- knowledge

TEST(KnowledgeSetTest, RejectThenAcceptCompletesInterval) {
  KnowledgeSet knowledge;
  knowledge.ObserveHypothesis(3, 1.0);
  EXPECT_FALSE(knowledge.ObserveVerdict(3, false).has_value());
  knowledge.ObserveHypothesis(3, 2.0);
  const auto interval = knowledge.ObserveVerdict(3, true);
  ASSERT_TRUE(interval.has_value());
  EXPECT_DOUBLE_EQ(interval->lower, 1.0);
  EXPECT_DOUBLE_EQ(interval->upper, 2.0);
  EXPECT_DOUBLE_EQ(knowledge.TightestIntervalWidth(3), 1.0);
}

TEST(KnowledgeSetTest, AcceptingFirstHypothesisLearnsNoInterval) {
  KnowledgeSet knowledge;
  knowledge.ObserveHypothesis(3, 5.0);
  EXPECT_FALSE(knowledge.ObserveVerdict(3, true).has_value());
  EXPECT_TRUE(std::isinf(knowledge.TightestIntervalWidth(3)));
}

TEST(KnowledgeSetTest, DecreasingHypothesisStartsNewRun) {
  KnowledgeSet knowledge;
  knowledge.ObserveHypothesis(3, 10.0);
  knowledge.ObserveVerdict(3, false);
  // A lower hypothesis (a new axis run / request) must not pair its
  // acceptance with the old run's rejection.
  knowledge.ObserveHypothesis(3, 2.0);
  EXPECT_FALSE(knowledge.ObserveVerdict(3, true).has_value());
  ASSERT_NE(knowledge.about(3), nullptr);
  EXPECT_EQ(knowledge.about(3)->runs, 2u);
}

TEST(KnowledgeSetTest, StrayVerdictIgnored) {
  KnowledgeSet knowledge;
  EXPECT_FALSE(knowledge.ObserveVerdict(9, true).has_value());
  EXPECT_EQ(knowledge.subject_count(), 1u);
  EXPECT_EQ(knowledge.about(9)->verdicts, 0u);
}

// --------------------------------------------------------------- observer

net::Message Proposal(net::NodeId host, net::NodeId peer, double hypothesis) {
  net::Message m;
  m.from = host;
  m.to = peer;
  m.kind = net::MessageKind::kBoundProposal;
  m.bytes = 16;
  m.payload.Add(net::FieldTag::kBoundHypothesis, net::kPublicSubject,
                hypothesis);
  return m;
}

net::Message Vote(net::NodeId peer, net::NodeId host, bool agrees) {
  net::Message m;
  m.from = peer;
  m.to = host;
  m.kind = net::MessageKind::kBoundVote;
  m.bytes = 8;
  m.payload.Add(net::FieldTag::kBoundVerdict, peer, agrees ? 1.0 : 0.0);
  return m;
}

TEST(AdversaryObserverTest, HonestRoundsStayClean) {
  AdversaryObserver observer;
  observer.OnMessage(Proposal(0, 1, 1.0), true);
  observer.OnMessage(Vote(1, 0, false), true);
  observer.OnMessage(Proposal(0, 1, 1.5), true);
  observer.OnMessage(Vote(1, 0, true), true);
  EXPECT_TRUE(observer.clean());
  EXPECT_EQ(observer.messages_seen(), 4u);
  EXPECT_EQ(observer.tagged_messages(), 4u);
  EXPECT_DOUBLE_EQ(observer.LearnedIntervalWidth(0, 1), 0.5);
}

TEST(AdversaryObserverTest, CollapsedIntervalIsViolation) {
  ObserverConfig config;
  config.min_interval_width = 1e-9;
  AdversaryObserver observer(config);
  observer.OnMessage(Proposal(0, 1, 2.0), true);
  observer.OnMessage(Vote(1, 0, false), true);
  observer.OnMessage(Proposal(0, 1, 2.0 + 1e-12), true);
  observer.OnMessage(Vote(1, 0, true), true);
  ASSERT_EQ(observer.violation_count(), 1u);
  const Violation v = observer.violations()[0];
  EXPECT_EQ(v.kind, ViolationKind::kKnowledgeCollapse);
  EXPECT_EQ(v.observer, 0u);
  EXPECT_EQ(v.subject, 1u);
  EXPECT_NE(observer.Report().find("knowledge_collapse"), std::string::npos);
}

TEST(AdversaryObserverTest, SelfKnowledgeIsFree) {
  // The host round-trips with itself like any member; learning its own
  // coordinate is not exposure.
  AdversaryObserver observer;
  observer.OnMessage(Proposal(0, 0, 2.0), true);
  observer.OnMessage(Vote(0, 0, false), true);
  observer.OnMessage(Proposal(0, 0, 2.0 + 1e-12), true);
  observer.OnMessage(Vote(0, 0, true), true);
  EXPECT_TRUE(observer.clean());
}

TEST(AdversaryObserverTest, RawCoordinateTagFlagged) {
  AdversaryObserver observer;
  net::Message m;
  m.from = 2;
  m.to = 0;
  m.kind = net::MessageKind::kBoundVote;
  m.bytes = 8;
  m.payload.Add(net::FieldTag::kRawCoordinate, 2, 0.731);
  observer.OnMessage(m, true);
  ASSERT_EQ(observer.violation_count(), 1u);
  EXPECT_EQ(observer.violations()[0].kind,
            ViolationKind::kRawCoordinateOnWire);
  EXPECT_EQ(observer.violations()[0].subject, 2u);
}

TEST(AdversaryObserverTest, DeclaredExposureModeCountsInsteadOfFlagging) {
  ObserverConfig config;
  config.allow_declared_exposure = true;
  AdversaryObserver observer(config);
  net::Message m;
  m.from = 2;
  m.to = 0;
  m.kind = net::MessageKind::kBoundVote;
  m.bytes = 8;
  m.payload.Add(net::FieldTag::kRawCoordinate, 2, 0.731);
  observer.OnMessage(m, true);
  EXPECT_TRUE(observer.clean());
  EXPECT_EQ(observer.declared_exposures(), 1u);
}

TEST(AdversaryObserverTest, TaintedValueSmuggledUnderInnocentTagFlagged) {
  TaintSet taint;
  taint.TaintPoint(5, geo::Point{0.4375, 0.875});
  ObserverConfig config;
  config.taint = &taint;
  // Even in declared-exposure mode, a coordinate under a non-exposure tag
  // is smuggling, never a declared cost.
  config.allow_declared_exposure = true;
  AdversaryObserver observer(config);
  net::Message m;
  m.from = 5;
  m.to = 0;
  m.kind = net::MessageKind::kControl;
  m.bytes = 8;
  m.payload.Add(net::FieldTag::kControl, net::kPublicSubject, 0.4375);
  // The wire adversary sees attempts, delivered or not.
  observer.OnMessage(m, false);
  ASSERT_EQ(observer.violation_count(), 1u);
  EXPECT_EQ(observer.violations()[0].kind,
            ViolationKind::kRawCoordinateOnWire);
  EXPECT_EQ(observer.violations()[0].subject, 5u);
}

TEST(AdversaryObserverTest, UntaggedBoundTrafficFlagged) {
  AdversaryObserver observer;
  net::Message m;
  m.from = 0;
  m.to = 1;
  m.kind = net::MessageKind::kBoundProposal;
  m.bytes = 16;
  observer.OnMessage(m, true);
  ASSERT_EQ(observer.violation_count(), 1u);
  EXPECT_EQ(observer.violations()[0].kind,
            ViolationKind::kUntaggedProtocolTraffic);
}

TEST(AdversaryObserverTest, NetworkTapDeliversDescriptors) {
  net::Network network(3);
  AdversaryObserver observer;
  network.SetTap(&observer);
  EXPECT_TRUE(network.Send(Proposal(0, 1, 4.0)));
  EXPECT_TRUE(network.Send(Vote(1, 0, true)));
  network.SetTap(nullptr);
  EXPECT_EQ(observer.messages_seen(), 2u);
  EXPECT_EQ(observer.tagged_messages(), 2u);
  EXPECT_TRUE(observer.clean());
}

// ------------------------------------------------ end-to-end honest runs

// Coordinates deliberately not multiples of the 0.01 policy step: honest
// hypotheses live at host_coordinate + k*step, and grid-aligned members
// would make a hypothesis bit-exactly coincide with a member coordinate --
// a false positive of the bit-exact taint matcher that real-valued
// positions cannot produce.
std::vector<geo::Point> TestCluster() {
  return {{0.3137, 0.4211}, {0.3622, 0.4048}, {0.2918, 0.4729},
          {0.3541, 0.4457}};
}

TEST(AdversaryObserverTest, HonestCloakedRegionRunIsClean) {
  const std::vector<geo::Point> points = TestCluster();
  net::Network network(static_cast<uint32_t>(points.size()));
  TaintSet taint;
  for (net::NodeId i = 0; i < points.size(); ++i) {
    taint.TaintPoint(i, points[i]);
  }
  ObserverConfig config;
  config.taint = &taint;
  AdversaryObserver observer(config);
  network.SetTap(&observer);

  std::vector<net::NodeId> node_ids = {0, 1, 2, 3};
  bounding::NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &node_ids;
  bounding::LinearIncrementPolicy policy(0.01);
  auto run = bounding::ComputeCloakedRegion(points, points[0], policy,
                                            binding);
  network.SetTap(nullptr);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(observer.clean()) << observer.Report();
  EXPECT_GT(observer.messages_seen(), 0u);
  // Every bound message carried its descriptor.
  EXPECT_EQ(observer.tagged_messages(), observer.messages_seen());
  // The host learned a one-increment interval about each peer -- never
  // tighter than the policy's step.
  for (net::NodeId peer = 1; peer < points.size(); ++peer) {
    const double width = observer.LearnedIntervalWidth(0, peer);
    if (std::isinf(width)) continue;  // peer agreed with first hypotheses
    EXPECT_GE(width, 0.01 - 1e-12) << "peer " << peer;
  }
}

// Records every bound-hypothesis value crossing the wire, in send order.
class HypothesisTap : public net::TrafficTap {
 public:
  void OnMessage(const net::Message& message, bool /*delivered*/) override {
    for (const net::PayloadField& field : message.payload) {
      if (field.tag == net::FieldTag::kBoundHypothesis) {
        values_.push_back(field.value);
      }
    }
  }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

TEST(AdversaryObserverTest, OriginJitterDecorrelatesHypothesesFromHost) {
  const std::vector<geo::Point> points = TestCluster();
  const geo::Point host = points[0];
  constexpr double kStep = 0.01;
  std::vector<net::NodeId> node_ids = {0, 1, 2, 3};

  auto run_and_tap = [&](util::Rng* origin_rng,
                         std::vector<double>* hypotheses) {
    net::Network network(static_cast<uint32_t>(points.size()));
    HypothesisTap tap;
    network.SetTap(&tap);
    bounding::NetworkBinding binding;
    binding.network = &network;
    binding.host = 0;
    binding.node_ids = &node_ids;
    bounding::LinearIncrementPolicy policy(kStep);
    auto run = bounding::ComputeCloakedRegion(points, host, policy, binding,
                                              origin_rng);
    network.SetTap(nullptr);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    *hypotheses = tap.values();
  };

  // Without jitter the very first hypothesis is host.x + step: an adversary
  // subtracting the (public) first increment recovers the host coordinate
  // bit-for-bit. This is the side channel the jitter closes.
  std::vector<double> plain;
  run_and_tap(nullptr, &plain);
  ASSERT_FALSE(plain.empty());
  EXPECT_EQ(plain.front(), host.x + kStep);

  // With a seeded origin draw, no hypothesis on the wire sits exactly one
  // increment above any host coordinate form -- the schedule origin no
  // longer bit-equals the position it protects.
  std::vector<double> jittered;
  util::Rng origin_rng(0xA11CEu);
  run_and_tap(&origin_rng, &jittered);
  ASSERT_FALSE(jittered.empty());
  const double host_forms[4] = {host.x, -host.x, host.y, -host.y};
  for (double value : jittered) {
    for (double form : host_forms) {
      EXPECT_NE(value, form + kStep);
    }
  }

  // The draw is seeded per request: an identical seed replays the identical
  // hypothesis schedule, so determinism (and digest stability) survive.
  std::vector<double> replay;
  util::Rng replay_rng(0xA11CEu);
  run_and_tap(&replay_rng, &replay);
  EXPECT_EQ(replay, jittered);

  // And the jittered run stays clean under the observer with every member
  // tainted: the widened origin leaks nothing the protocol did not already.
  {
    net::Network network(static_cast<uint32_t>(points.size()));
    TaintSet taint;
    for (net::NodeId i = 0; i < points.size(); ++i) {
      taint.TaintPoint(i, points[i]);
    }
    ObserverConfig config;
    config.taint = &taint;
    AdversaryObserver observer(config);
    network.SetTap(&observer);
    bounding::NetworkBinding binding;
    binding.network = &network;
    binding.host = 0;
    binding.node_ids = &node_ids;
    bounding::LinearIncrementPolicy policy(kStep);
    util::Rng audit_rng(0xA11CEu);
    auto run = bounding::ComputeCloakedRegion(points, host, policy, binding,
                                              &audit_rng);
    network.SetTap(nullptr);
    ASSERT_TRUE(run.ok());
    EXPECT_TRUE(observer.clean()) << observer.Report();
    // The cloaked region still covers the whole cluster.
    for (const geo::Point& p : points) {
      EXPECT_TRUE(run.value().region.Contains(p));
    }
  }
}

TEST(AdversaryObserverTest, OptBaselineFlaggedUnlessDeclared) {
  const std::vector<geo::Point> points = TestCluster();
  std::vector<net::NodeId> node_ids = {0, 1, 2, 3};
  TaintSet taint;
  for (net::NodeId i = 0; i < points.size(); ++i) {
    taint.TaintPoint(i, points[i]);
  }

  // Strict mode: the OPT exposure messages are violations.
  {
    net::Network network(static_cast<uint32_t>(points.size()));
    ObserverConfig config;
    config.taint = &taint;
    AdversaryObserver observer(config);
    network.SetTap(&observer);
    bounding::NetworkBinding binding;
    binding.network = &network;
    binding.host = 0;
    binding.node_ids = &node_ids;
    bounding::ComputeOptRegion(points, binding);
    network.SetTap(nullptr);
    EXPECT_GE(observer.violation_count(), points.size());
  }

  // Declared mode: clean, but the exposures are counted.
  {
    net::Network network(static_cast<uint32_t>(points.size()));
    ObserverConfig config;
    config.taint = &taint;
    config.allow_declared_exposure = true;
    AdversaryObserver observer(config);
    network.SetTap(&observer);
    bounding::NetworkBinding binding;
    binding.network = &network;
    binding.host = 0;
    binding.node_ids = &node_ids;
    bounding::ComputeOptRegion(points, binding);
    network.SetTap(nullptr);
    EXPECT_TRUE(observer.clean()) << observer.Report();
    EXPECT_EQ(observer.declared_exposures(), 2 * points.size());
  }
}

// ------------------------------------------------------- mutation checks

#if NELA_TEST_LEAKY_VARIANT

// A deliberately leaky "optimization" of the bounding protocol: binary
// search each peer's value, then confirm the bracket with an ascending
// reject/accept sweep. Converges in O(log(1/eps)) rounds instead of the
// policy's O(range/step) -- and hands the host every peer's value to
// within eps. The observer must catch this.
double LeakyBinarySearchBound(const std::vector<bounding::PrivateScalar>&
                                  secrets,
                              double lo_start, double hi_start,
                              const bounding::NetworkBinding& binding) {
  double overall = lo_start;
  for (size_t i = 0; i < secrets.size(); ++i) {
    const net::NodeId peer = (*binding.node_ids)[i];
    double lo = lo_start;  // known to disagree (below every value)
    double hi = hi_start;  // known to agree
    while (hi - lo > 1e-13) {
      const double mid = 0.5 * (lo + hi);
      const bool agrees = secrets[i].AgreesWithUpperBound(mid);
      binding.network->Send(
          [&] {
            net::Message m;
            m.from = binding.host;
            m.to = peer;
            m.kind = net::MessageKind::kBoundProposal;
            m.bytes = 16;
            m.payload.Add(net::FieldTag::kBoundHypothesis,
                          net::kPublicSubject, mid);
            return m;
          }());
      binding.network->Send(
          [&] {
            net::Message m;
            m.from = peer;
            m.to = binding.host;
            m.kind = net::MessageKind::kBoundVote;
            m.bytes = 8;
            m.payload.Add(net::FieldTag::kBoundVerdict, peer,
                          agrees ? 1.0 : 0.0);
            return m;
          }());
      if (agrees) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    // Confirmation sweep, ascending: reject at lo, accept at hi.
    for (const double h : {lo, hi}) {
      const bool agrees = secrets[i].AgreesWithUpperBound(h);
      net::Message proposal;
      proposal.from = binding.host;
      proposal.to = peer;
      proposal.kind = net::MessageKind::kBoundProposal;
      proposal.bytes = 16;
      proposal.payload.Add(net::FieldTag::kBoundHypothesis,
                           net::kPublicSubject, h);
      binding.network->Send(proposal);
      net::Message vote;
      vote.from = peer;
      vote.to = binding.host;
      vote.kind = net::MessageKind::kBoundVote;
      vote.bytes = 8;
      vote.payload.Add(net::FieldTag::kBoundVerdict, peer,
                       agrees ? 1.0 : 0.0);
      binding.network->Send(vote);
    }
    overall = std::max(overall, hi);
  }
  return overall;
}

TEST(MutationCheckTest, LeakyBinarySearchVariantTripsObserver) {
  const std::vector<geo::Point> points = TestCluster();
  std::vector<bounding::PrivateScalar> secrets;
  for (const geo::Point& p : points) secrets.emplace_back(p.x);
  std::vector<net::NodeId> node_ids = {0, 1, 2, 3};

  net::Network network(static_cast<uint32_t>(points.size()));
  TaintSet taint;
  for (net::NodeId i = 0; i < points.size(); ++i) {
    taint.TaintPoint(i, points[i]);
  }
  ObserverConfig config;
  config.taint = &taint;
  AdversaryObserver observer(config);
  network.SetTap(&observer);

  bounding::NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &node_ids;
  const double bound = LeakyBinarySearchBound(secrets, 0.0, 1.0, binding);
  network.SetTap(nullptr);

  EXPECT_GE(bound, 0.36);  // it does compute a valid bound...
  // ... and the observer sees the exposure: one knowledge collapse per
  // peer whose value the search isolated.
  EXPECT_FALSE(observer.clean());
  uint64_t collapses = 0;
  for (const Violation& v : observer.violations()) {
    if (v.kind == ViolationKind::kKnowledgeCollapse) ++collapses;
  }
  EXPECT_GE(collapses, points.size() - 1) << observer.Report();
}

#endif  // NELA_TEST_LEAKY_VARIANT

TEST(MutationCheckTest, HonestProtocolSurvivesSameScrutiny) {
  // The control arm of the mutation check: identical observer setup, the
  // real protocol, zero violations.
  const std::vector<geo::Point> points = TestCluster();
  std::vector<bounding::PrivateScalar> secrets;
  for (const geo::Point& p : points) secrets.emplace_back(p.x);
  std::vector<net::NodeId> node_ids = {0, 1, 2, 3};

  net::Network network(static_cast<uint32_t>(points.size()));
  TaintSet taint;
  for (net::NodeId i = 0; i < points.size(); ++i) {
    taint.TaintPoint(i, points[i]);
  }
  ObserverConfig config;
  config.taint = &taint;
  AdversaryObserver observer(config);
  network.SetTap(&observer);

  bounding::NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &node_ids;
  bounding::LinearIncrementPolicy policy(0.01);
  auto run = bounding::RunProgressiveUpperBounding(secrets, 0.0, policy,
                                                   binding);
  network.SetTap(nullptr);
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(observer.clean()) << observer.Report();
}

}  // namespace
}  // namespace nela::audit
