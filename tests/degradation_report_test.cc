// Table-driven coverage of every DegradationReport failure path -- the
// engine-level degradations (below-k churn, exhausted retry budget, request
// deadline, broken increment policy) and the service-level ones (admission
// queue overflow, deadline shed, crash abort). Every path must deliver a
// structured report: the expected failure code, a non-empty reason naming
// no coordinate, an empty region, anonymity_satisfied = false, and
// FinalizeDegradation sealing the report exactly once.

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bounding/increment_policy.h"
#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "core/request_context.h"
#include "data/generators.h"
#include "geo/rect.h"
#include "graph/wpg_builder.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "net/retry.h"
#include "scenario_fixtures.h"
#include "sim/scenario.h"
#include "sim/service_driver.h"
#include "util/rng.h"
#include "util/status.h"

namespace nela::core {
namespace {

constexpr uint32_t kK = 4;

using fixtures::SmallWorld;

const SmallWorld& World() {
  static const SmallWorld world = fixtures::MakeWorld(41);
  return world;
}

PolicyFactory WorldPolicyFactory() {
  BoundingParams params;
  params.density = 200.0;
  return MakeSecurePolicyFactory(params);
}

// An engine whose phase 1 ignores the network (so clustering always
// succeeds) while phase 2 sees it -- isolating the bounding-layer
// degradations.
CloakingEngine MakeEngine(cluster::Registry* registry, net::Network* network,
                          PolicyFactory factory, util::Rng* jitter) {
  CloakingEngine engine(
      World().dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(World().graph, kK,
                                                           registry),
      registry, std::move(factory), BoundingMode::kSecureProtocol, network);
  if (jitter != nullptr) {
    engine.SetRetryPolicy(net::BackoffPolicy{}, jitter);
  }
  return engine;
}

// A host whose clean cluster has at least kK + 1 members, plus that
// member list (for scheduling churn).
struct CleanCluster {
  data::UserId host = 0;
  std::vector<graph::VertexId> members;
};

const CleanCluster& FindCleanCluster() {
  static const CleanCluster found = [] {
    for (data::UserId host = 0; host < 40; ++host) {
      cluster::Registry registry(World().dataset.size());
      CloakingEngine engine =
          MakeEngine(&registry, nullptr, WorldPolicyFactory(), nullptr);
      auto outcome = engine.RequestCloaking(host);
      NELA_CHECK(outcome.ok());
      if (!outcome.value().anonymity_satisfied) continue;
      const auto& members =
          registry.info(outcome.value().cluster_id).members;
      if (members.size() >= kK + 1) {
        return CleanCluster{host, members};
      }
    }
    NELA_CHECK(false);  // the 200-user world always has such a cluster
    return CleanCluster{};
  }();
  return found;
}

struct CaseResult {
  CloakingOutcome outcome;
  geo::Point host_point;
};

struct FailurePathCase {
  const char* name;
  util::StatusCode expected_code;
  std::function<CaseResult()> run;
};

// --- Engine-level paths ---------------------------------------------------

CaseResult BelowKAfterChurn() {
  const CleanCluster& clean = FindCleanCluster();
  cluster::Registry registry(World().dataset.size());
  net::Network network(World().dataset.size());
  for (graph::VertexId member : clean.members) {
    if (member != clean.host) network.CrashNode(member);
  }
  util::Rng jitter(13);
  CloakingEngine engine =
      MakeEngine(&registry, &network, WorldPolicyFactory(), &jitter);
  auto outcome = engine.RequestCloaking(clean.host);
  NELA_CHECK(outcome.ok());
  return {std::move(outcome).value(), World().dataset.point(clean.host)};
}

CaseResult ExhaustedRetryBudget() {
  const CleanCluster& clean = FindCleanCluster();
  cluster::Registry registry(World().dataset.size());
  net::Network network(World().dataset.size());
  util::Rng loss_rng(4);
  NELA_CHECK(network.SetLossProbability(1.0, &loss_rng).ok());
  util::Rng jitter(13);
  CloakingEngine engine =
      MakeEngine(&registry, &network, WorldPolicyFactory(), &jitter);
  auto outcome = engine.RequestCloaking(clean.host);
  NELA_CHECK(outcome.ok());
  return {std::move(outcome).value(), World().dataset.point(clean.host)};
}

CaseResult RequestDeadlineExhausted() {
  const CleanCluster& clean = FindCleanCluster();
  cluster::Registry registry(World().dataset.size());
  net::Network network(World().dataset.size());
  util::Rng jitter(13);
  CloakingEngine engine =
      MakeEngine(&registry, &network, WorldPolicyFactory(), &jitter);
  RequestContext ctx(/*master_seed=*/7, /*ordinal=*/0, clean.host);
  ctx.set_deadline_ms(0.5);
  // An upstream wait (e.g. an admission queue) already spent the budget.
  ctx.scope().RecordBackoff(1.0);
  auto outcome = engine.RequestCloaking(clean.host, ctx);
  NELA_CHECK(outcome.ok());
  return {std::move(outcome).value(), World().dataset.point(clean.host)};
}

class ZeroIncrementPolicy : public bounding::IncrementPolicy {
 public:
  double NextIncrement(double, uint32_t, uint32_t) override { return 0.0; }
  const char* name() const override { return "zero"; }
};

CaseResult NonPositiveIncrement() {
  const CleanCluster& clean = FindCleanCluster();
  cluster::Registry registry(World().dataset.size());
  PolicyFactory broken = [](uint32_t) {
    return std::make_unique<ZeroIncrementPolicy>();
  };
  CloakingEngine engine =
      MakeEngine(&registry, nullptr, std::move(broken), nullptr);
  auto outcome = engine.RequestCloaking(clean.host);
  NELA_CHECK(outcome.ok());
  return {std::move(outcome).value(), World().dataset.point(clean.host)};
}

// --- Service-level paths --------------------------------------------------

const sim::Scenario& ServiceScenario() {
  static const sim::Scenario scenario = [] {
    sim::ScenarioConfig config;
    config.user_count = 600;
    config.delta = 0.03;
    config.seed = 11;
    auto built = sim::BuildScenario(config);
    NELA_CHECK(built.ok());
    return std::move(built).value();
  }();
  return scenario;
}

sim::ServiceResult RunService(const sim::ServiceConfig& config) {
  const sim::Scenario& scenario = ServiceScenario();
  sim::ServiceDriver driver(scenario.dataset, scenario.graph,
                            MakeSecurePolicyFactory(BoundingParams{}),
                            config);
  auto result = driver.Run();
  NELA_CHECK(result.ok());
  return std::move(result).value();
}

CaseResult FirstRecordWhere(
    const sim::ServiceResult& result,
    const std::function<bool(const sim::ServiceRequestRecord&)>& pred) {
  for (const sim::ServiceRequestRecord& record : result.records) {
    if (pred(record)) {
      return {record.outcome, ServiceScenario().dataset.point(record.host)};
    }
  }
  NELA_CHECK(false);  // the configs below always produce a match
  return {};
}

CaseResult QueueOverflowShed() {
  sim::ServiceConfig config;
  config.k = 5;
  config.requests = 128;
  config.threads = 2;
  config.offered_rate_per_ms = 8.0;  // 4x the sustainable 2/ms
  config.service_time_ms = 1.0;
  config.queue_capacity = 4;
  const sim::ServiceResult result = RunService(config);
  return FirstRecordWhere(result, [](const sim::ServiceRequestRecord& r) {
    return r.shed == sim::ShedCause::kQueueOverflow;
  });
}

CaseResult DeadlineShed() {
  sim::ServiceConfig config;
  config.k = 5;
  config.requests = 128;
  config.threads = 2;
  config.offered_rate_per_ms = 8.0;
  config.service_time_ms = 1.0;
  config.deadline_ms = 2.0;  // unbounded queue; the wait blows the deadline
  const sim::ServiceResult result = RunService(config);
  return FirstRecordWhere(result, [](const sim::ServiceRequestRecord& r) {
    return r.shed == sim::ShedCause::kDeadline;
  });
}

CaseResult CrashAbort() {
  const std::string dir =
      ::testing::TempDir() + "degradation_crash_abort";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  sim::ServiceConfig config;
  config.k = 5;
  config.requests = 64;
  config.threads = 2;
  config.wal_path = dir + "/wal.log";
  config.fault_plan.process_crashes.push_back(
      net::ProcessCrashEvent{net::ProcessCrashPoint::kPostCommit, 2});
  const sim::ServiceResult result = RunService(config);
  NELA_CHECK(result.crashed);
  return FirstRecordWhere(result, [](const sim::ServiceRequestRecord& r) {
    return r.aborted_by_crash;
  });
}

// --- The table ------------------------------------------------------------

class DegradationReportTest
    : public ::testing::TestWithParam<FailurePathCase> {};

TEST_P(DegradationReportTest, PathDeliversStructuredNonExposingReport) {
  const FailurePathCase& param = GetParam();
  const CaseResult result = param.run();
  const CloakingOutcome& outcome = result.outcome;
  const DegradationReport& report = outcome.degradation;

  EXPECT_FALSE(outcome.anonymity_satisfied);
  EXPECT_EQ(outcome.region, geo::Rect()) << "a failure path leaked a region";
  EXPECT_EQ(report.failure_code, param.expected_code);
  EXPECT_FALSE(report.failure_reason.empty());
  EXPECT_FALSE(report.stages.empty());
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.finalize_count, 1u)
      << "the report must be sealed exactly once";
  // The reason may name counts, ids, and times -- never the host position.
  EXPECT_EQ(report.failure_reason.find(std::to_string(result.host_point.x)),
            std::string::npos)
      << report.failure_reason;
  EXPECT_EQ(report.failure_reason.find(std::to_string(result.host_point.y)),
            std::string::npos)
      << report.failure_reason;
}

INSTANTIATE_TEST_SUITE_P(
    AllFailurePaths, DegradationReportTest,
    ::testing::Values(
        FailurePathCase{"below_k_after_churn",
                        util::StatusCode::kFailedPrecondition,
                        BelowKAfterChurn},
        FailurePathCase{"exhausted_retry_budget",
                        util::StatusCode::kDeadlineExceeded,
                        ExhaustedRetryBudget},
        FailurePathCase{"request_deadline",
                        util::StatusCode::kDeadlineExceeded,
                        RequestDeadlineExhausted},
        FailurePathCase{"non_positive_increment",
                        util::StatusCode::kInternal, NonPositiveIncrement},
        FailurePathCase{"queue_overflow_shed",
                        util::StatusCode::kUnavailable, QueueOverflowShed},
        FailurePathCase{"deadline_shed",
                        util::StatusCode::kDeadlineExceeded, DeadlineShed},
        FailurePathCase{"crash_abort", util::StatusCode::kUnavailable,
                        CrashAbort}),
    [](const ::testing::TestParamInfo<FailurePathCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace nela::core
