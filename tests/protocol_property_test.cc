// Parameterized property sweeps over the progressive bounding protocol:
// for random private inputs and every policy, the protocol must terminate
// with a correct, boundedly-loose upper bound at predictable cost.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "bounding/increment_policy.h"
#include "bounding/privacy_loss.h"
#include "bounding/protocol.h"
#include "bounding/secret.h"
#include "core/policy_factory.h"
#include "util/rng.h"

namespace nela::bounding {
namespace {

struct SweepParam {
  uint64_t seed;
  uint32_t cluster_size;
  double extent;
  int policy;  // 0 linear, 1 exponential, 2 secure, 3 engine-secure
};

class ProtocolPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ProtocolPropertyTest, BoundIsCorrectAndBoundedlyLoose) {
  const SweepParam param = GetParam();
  util::Rng rng(param.seed);
  std::vector<double> values;
  double max_value = 0.0;
  for (uint32_t i = 0; i < param.cluster_size; ++i) {
    values.push_back(rng.NextDouble(0.0, param.extent));
    max_value = std::max(max_value, values.back());
  }
  const std::vector<PrivateScalar> secrets = MakePrivate(values);

  const UniformDistribution model(param.extent);
  const QuadraticCost cost(1000.0);
  LinearIncrementPolicy linear(param.extent / 40.0);
  ExponentialIncrementPolicy exponential(param.extent / 40.0);
  SecureIncrementPolicy secure(model, cost, 1.0);
  core::BoundingParams engine_params;
  engine_params.density = param.cluster_size / param.extent;
  std::unique_ptr<IncrementPolicy> engine_secure =
      core::MakeSecurePolicyFactory(engine_params)(param.cluster_size);
  IncrementPolicy* policies[4] = {&linear, &exponential, &secure,
                                  engine_secure.get()};
  IncrementPolicy& policy = *policies[param.policy];

  const BoundingRunResult run =
      RunProgressiveUpperBounding(secrets, 0.0, policy).value();

  // Correctness: the final bound dominates every value.
  EXPECT_GE(run.bound, max_value);
  // Monotone hypotheses.
  for (size_t i = 1; i < run.bound_history.size(); ++i) {
    EXPECT_GT(run.bound_history[i], run.bound_history[i - 1]);
  }
  // Cost sanity: at least one verification per user, at most one per user
  // per iteration.
  EXPECT_GE(run.verifications, param.cluster_size);
  EXPECT_LE(run.verifications,
            static_cast<uint64_t>(param.cluster_size) * run.iterations);
  // Looseness: the overshoot never exceeds the final (accepted) increment.
  if (run.bound_history.size() >= 2) {
    const double last_increment =
        run.bound_history.back() -
        run.bound_history[run.bound_history.size() - 2];
    EXPECT_LE(run.bound - max_value, last_increment + 1e-12);
  } else {
    EXPECT_LE(run.bound - max_value, run.bound_history.front() + 1e-12);
  }
  // Privacy-loss intervals tile sanely: widths positive, each at most the
  // whole covered extent.
  const PrivacyLossReport report = AnalyzePrivacyLoss(run, 0.0);
  ASSERT_EQ(report.interval_width.size(), values.size());
  for (double width : report.interval_width) {
    EXPECT_GT(width, 0.0);
    EXPECT_LE(width, run.bound + 1e-12);
  }
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  uint64_t seed = 1000;
  for (uint32_t cluster_size : {1u, 2u, 7u, 25u, 60u}) {
    for (double extent : {1e-3, 1.0, 250.0}) {
      for (int policy = 0; policy < 4; ++policy) {
        params.push_back(SweepParam{seed++, cluster_size, extent, policy});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolPropertyTest,
                         ::testing::ValuesIn(MakeSweep()));

}  // namespace
}  // namespace nela::bounding
