// Fixture tests for tools/nela_lint: each known-bad snippet in
// tools/nela_lint/testdata must trigger exactly its rule (and nothing
// else), the clean fixture must stay silent, and the suppression /
// scoping mechanics must behave. The tree-wide self-check (the current
// sources are lint-clean) is the separate NelaLintTree ctest, which runs
// the real binary over the real file list.

#include "nela_lint/lint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nela_lint/lexer.h"

namespace nela::lint {
namespace {

#ifndef NELA_LINT_TESTDATA_DIR
#error "build must define NELA_LINT_TESTDATA_DIR"
#endif

std::string ReadTestdata(const std::string& name) {
  const std::string path = std::string(NELA_LINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// Lints a fixture as if it lived in library code (src/), where every rule
// is in scope.
std::vector<Finding> LintAsLibrary(const std::string& name) {
  return LintFile("src/fake/" + name, ReadTestdata(name));
}

std::set<std::string> RulesOf(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& finding : findings) rules.insert(finding.rule);
  return rules;
}

struct FixtureCase {
  const char* file;
  const char* rule;
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, BadSnippetTriggersExactlyItsRule) {
  const FixtureCase& param = GetParam();
  const std::vector<Finding> findings = LintAsLibrary(param.file);
  ASSERT_FALSE(findings.empty()) << param.file << " should trigger "
                                 << param.rule;
  EXPECT_EQ(RulesOf(findings), std::set<std::string>{param.rule})
      << FormatFinding(findings.front());
  for (const Finding& finding : findings) {
    EXPECT_GT(finding.line, 0);
    EXPECT_EQ(finding.path, "src/fake/" + std::string(param.file));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, LintFixtureTest,
    ::testing::Values(FixtureCase{"bad_raw_random.cc", "raw-random"},
                      FixtureCase{"bad_raw_time.cc", "raw-time"},
                      FixtureCase{"bad_raw_thread.cc", "raw-thread"},
                      FixtureCase{"bad_stdout_io.cc", "stdout-io"},
                      FixtureCase{"bad_untagged_send.cc", "untagged-send"},
                      FixtureCase{"bad_bare_todo.cc", "bare-todo"},
                      FixtureCase{"bad_raw_file_io.cc", "raw-file-io"},
                      FixtureCase{"bad_shard_path.cc", "shard-path"},
                      FixtureCase{"bad_raw_lock.cc", "raw-lock"},
                      FixtureCase{"bad_coordinate_taint.cc",
                                  "coordinate-taint"}),
    [](const ::testing::TestParamInfo<FixtureCase>& param_info) {
      std::string name = param_info.param.rule;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(LintFixtureTest, EveryRuleHasAFixture) {
  // Adding a rule without a known-bad fixture must fail here.
  std::set<std::string> covered;
  for (const FixtureCase& c :
       {FixtureCase{"", "raw-random"}, FixtureCase{"", "raw-time"},
        FixtureCase{"", "raw-thread"}, FixtureCase{"", "stdout-io"},
        FixtureCase{"", "untagged-send"}, FixtureCase{"", "bare-todo"},
        FixtureCase{"", "raw-file-io"}, FixtureCase{"", "shard-path"},
        FixtureCase{"", "raw-lock"}, FixtureCase{"", "coordinate-taint"}}) {
    covered.insert(c.rule);
  }
  for (const std::string& rule : RuleNames()) {
    EXPECT_TRUE(covered.count(rule)) << "rule without fixture: " << rule;
  }
}

TEST(LintFixtureTest, CleanFixtureIsSilent) {
  const std::vector<Finding> findings = LintAsLibrary("clean.cc");
  std::string formatted;
  for (const Finding& finding : findings) {
    formatted += FormatFinding(finding) + "\n";
  }
  EXPECT_TRUE(findings.empty()) << formatted;
}

TEST(LintScopingTest, UntaggedSendCountsPositionalArguments) {
  // The bad fixture holds all three shapes; each must be reported on its
  // own line: positional Send, positional SendWithRetry, bare net::Message.
  const std::vector<Finding> findings = LintAsLibrary("bad_untagged_send.cc");
  EXPECT_EQ(findings.size(), 3u);
  std::set<int> lines;
  for (const Finding& finding : findings) lines.insert(finding.line);
  EXPECT_EQ(lines.size(), 3u);
}

TEST(LintScopingTest, ShardLayoutHomeMaySpellShardPaths) {
  // The literal lives in the string stream, not the code stream, so only
  // the literal-scanning rule may see it -- and only outside the layout's
  // home directory.
  const std::string body =
      // nela-lint: allow(shard-path) the needle is this test's subject
      "std::string d() { return std::string(\"shard-\") + \"0\"; }\n";
  EXPECT_TRUE(LintFile("src/durability/shard_layout.cc", body).empty());
  const std::vector<Finding> findings = LintFile("src/sim/driver.cc", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "shard-path");
  // Tests and tools are in scope too: the layout contract binds the whole
  // tree, not just the library.
  EXPECT_FALSE(LintFile("tests/some_test.cc", body).empty());
}

TEST(LintScopingTest, RngHomeMayUseRawSources) {
  const std::string body = "int f() { return rand(); }\n";
  EXPECT_TRUE(LintFile("src/util/rng.cc", body).empty());
  EXPECT_FALSE(LintFile("src/bounding/nbound.cc", body).empty());
  // The baseline mechanisms draw all randomness from the request's seeded
  // sub-stream; the raw-random rule covers src/mechanisms like any other
  // library directory (a platform RNG there would break the per-request
  // determinism the leak-contract proptests rely on).
  EXPECT_FALSE(LintFile("src/mechanisms/geo_ind.cc", body).empty());
  const std::vector<Finding> findings =
      LintFile("src/mechanisms/dummy_locations.cc",
               "std::mt19937 gen(42);\n");
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings[0].rule, "raw-random");
}

TEST(LintScopingTest, TimerHomeMayReadClocks) {
  const std::string body = "auto t = Clock::now();\n";
  EXPECT_TRUE(LintFile("src/util/timer.h", body).empty());
  EXPECT_FALSE(LintFile("src/sim/batch_driver.cc", body).empty());
}

TEST(LintScopingTest, ThreadPoolInternalsMaySpawnThreads) {
  const std::string body = "std::thread worker([]{});\n";
  EXPECT_TRUE(LintFile("src/util/thread_pool.cc", body).empty());
  // The work-stealing deque is part of the pool's implementation and
  // shares its exemption; everything else still gets flagged.
  EXPECT_TRUE(LintFile("src/util/steal_deque.h", body).empty());
  EXPECT_FALSE(LintFile("tests/some_test.cc", body).empty());
  EXPECT_FALSE(LintFile("src/graph/wpg_builder.cc", body).empty());
}

TEST(LintScopingTest, FileIoHomesMayTouchFiles) {
  const std::string body = "std::FILE* f = fopen(\"x\", \"rb\");\n";
  EXPECT_TRUE(LintFile("src/durability/wal.cc", body).empty());
  EXPECT_TRUE(LintFile("src/data/dataset_io.cc", body).empty());
  EXPECT_TRUE(LintFile("src/util/csv.cc", body).empty());
  EXPECT_FALSE(LintFile("src/cluster/registry.cc", body).empty());
  // Tests/tools/bench are not library code; the rule stays out of them.
  EXPECT_TRUE(LintFile("tests/durability_test.cc", body).empty());
}

TEST(LintScopingTest, StdoutRuleIsLibraryOnly) {
  const std::string body = "#include <iostream>\nvoid f(){std::cout << 1;}\n";
  EXPECT_FALSE(LintFile("src/core/stages.cc", body).empty());
  EXPECT_TRUE(LintFile("bench/bench_micro.cc", body).empty());
  EXPECT_TRUE(LintFile("examples/quickstart.cpp", body).empty());
}

TEST(LintScopingTest, NetInternalsAreExemptFromSendRule) {
  const std::string body =
      "bool f(Network& n) { return n.Send(0, 1, MessageKind::kControl, 8); "
      "}\n";
  EXPECT_TRUE(LintFile("src/net/retry.cc", body).empty());
  EXPECT_FALSE(LintFile("src/cluster/registry.cc", body).empty());
}

TEST(LintScopingTest, RawLockIsTreeWideWithNoHomeDirectory) {
  const std::string body = "void f(std::mutex& mu) { mu.lock(); }\n";
  EXPECT_FALSE(LintFile("src/cluster/registry.cc", body).empty());
  EXPECT_FALSE(LintFile("tests/some_test.cc", body).empty());
  EXPECT_FALSE(LintFile("bench/bench_micro.cc", body).empty());
  // Even the RAII home's path grants nothing: util/mutex.h passes only via
  // its per-line, justified allow comments.
  EXPECT_FALSE(LintFile("src/util/mutex.h", body).empty());
  const std::string allowed =
      "void f(std::mutex& mu) { mu.lock(); }"
      "  // nela-lint: allow(raw-lock) RAII home\n";
  EXPECT_TRUE(LintFile("src/util/mutex.h", allowed).empty());
}

TEST(LintScopingTest, RawLockFlagsEachManipulation) {
  // lock(), unlock(), try_lock(), ->unlock(): one finding per line.
  const std::vector<Finding> findings = LintAsLibrary("bad_raw_lock.cc");
  EXPECT_EQ(findings.size(), 4u);
}

TEST(LintScopingTest, CoordinateTaintFlagsEachMutant) {
  // Local-laundered kControl, helper-to-field-write, undeclared
  // kRawCoordinate, non-literal tag: one finding per mutant, each on its
  // own line.
  const std::vector<Finding> findings =
      LintAsLibrary("bad_coordinate_taint.cc");
  EXPECT_EQ(findings.size(), 4u);
  std::set<int> lines;
  for (const Finding& finding : findings) lines.insert(finding.line);
  EXPECT_EQ(lines.size(), 4u);
}

TEST(LintScopingTest, CoordinateTaintIsLibraryScopedLikeUntaggedSend) {
  const std::string body =
      "void f(net::Network& n, const geo::Point& own) {\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, own.x);\n"
      "  n.Send(m);\n"
      "}\n";
  EXPECT_FALSE(LintFile("src/mechanisms/geo_ind.cc", body).empty());
  // Net internals move bytes, not coordinates; tests/tools are out of the
  // library scope entirely.
  EXPECT_TRUE(LintFile("src/net/network.cc", body).empty());
  EXPECT_TRUE(LintFile("tests/some_test.cc", body).empty());
}

TEST(LintSuppressionTest, SameLineAndPreviousLineAllowMarkers) {
  const std::string same_line =
      "int f() { return rand(); }  // nela-lint: allow(raw-random) seeded "
      "upstream\n";
  EXPECT_TRUE(LintFile("src/fake/a.cc", same_line).empty());

  const std::string prev_line =
      "// nela-lint: allow(raw-random) seeded upstream\n"
      "int f() { return rand(); }\n";
  EXPECT_TRUE(LintFile("src/fake/a.cc", prev_line).empty());

  const std::string wrong_rule =
      "int f() { return rand(); }  // nela-lint: allow(raw-time)\n";
  EXPECT_FALSE(LintFile("src/fake/a.cc", wrong_rule).empty());
}

TEST(LintMatchingTest, StringsAndCommentsAreNotCode) {
  const std::string body =
      "// calling rand() here would be bad\n"
      "const char* kDoc = \"rand() std::cout time(nullptr)\";\n"
      "/* std::thread worker; */\n";
  EXPECT_TRUE(LintFile("src/fake/a.cc", body).empty());
}

TEST(LintMatchingTest, MultiLineArgumentListsAreBalanced) {
  const std::string body =
      "void f(net::Network& n) {\n"
      "  n.Send(0,\n"
      "         1,\n"
      "         net::MessageKind::kControl,\n"
      "         16);\n"
      "}\n";
  const std::vector<Finding> findings = LintFile("src/fake/a.cc", body);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "untagged-send");
  EXPECT_EQ(findings[0].line, 2);
}

// IWYU-style header hygiene for util/thread_annotations.h: any file whose
// *code* (not comments or strings -- the lexer decides) uses a capability
// macro must include util/thread_annotations.h directly, or util/mutex.h
// which is documented to re-export it. Tree-wide misc-include-cleaner is
// disabled in .clang-tidy (see its comment block); this pins the one
// include relation the thread-safety layer depends on.
TEST(ThreadAnnotationHygieneTest, MacroUsersIncludeTheHeaderDirectly) {
  const std::set<std::string> kMacros = {
      "CAPABILITY",      "SCOPED_CAPABILITY", "GUARDED_BY",
      "PT_GUARDED_BY",   "ACQUIRED_BEFORE",   "ACQUIRED_AFTER",
      "REQUIRES",        "REQUIRES_SHARED",   "ACQUIRE",
      "ACQUIRE_SHARED",  "RELEASE",           "RELEASE_SHARED",
      "TRY_ACQUIRE",     "EXCLUDES",          "ASSERT_CAPABILITY",
      "RETURN_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS"};
  const std::string root = NELA_LINT_SOURCE_DIR;
  std::vector<std::string> missing;
  for (const std::string& dir : {std::string("src"), std::string("tools")}) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             root + "/" + dir)) {
      const std::string path = entry.path().string();
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      if (path.find("thread_annotations.h") != std::string::npos) continue;
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string contents = buffer.str();
      bool uses_macro = false;
      for (const Token& token : Lex(contents)) {
        if (token.kind == TokenKind::kIdentifier &&
            kMacros.count(token.text) != 0) {
          uses_macro = true;
          break;
        }
      }
      if (!uses_macro) continue;
      if (contents.find("#include \"util/thread_annotations.h\"") ==
              std::string::npos &&
          contents.find("#include \"util/mutex.h\"") == std::string::npos) {
        missing.push_back(path);
      }
    }
  }
  EXPECT_TRUE(missing.empty())
      << missing.size() << " file(s) use capability macros without a direct "
      << "include of util/thread_annotations.h or util/mutex.h, first: "
      << missing.front();
}

TEST(LintMatchingTest, CompileCommandsFileListIsExtracted) {
  const std::string json =
      "[{\"directory\": \"/b\", \"command\": \"g++ -c x.cc\",\n"
      "  \"file\": \"/repo/src/a.cc\"},\n"
      " {\"directory\": \"/b\", \"file\": \"/repo/src/b.cc\"},\n"
      " {\"directory\": \"/b\", \"file\": \"/repo/src/a.cc\"}]\n";
  const std::vector<std::string> files = FilesFromCompileCommands(json);
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "/repo/src/a.cc");
  EXPECT_EQ(files[1], "/repo/src/b.cc");
}

}  // namespace
}  // namespace nela::lint
