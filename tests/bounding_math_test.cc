// Tests for the §V cost-model machinery: distributions, request cost
// models, the unary optimum (Equation 2), the N-bounding optimum
// (Equation 5, closed forms of Examples 5.1-5.4), and the exact DP --
// on the fixed grids below plus seeded random sweeps of (n, cost params).

#include <algorithm>
#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "bounding/cost_model.h"
#include "bounding/distribution.h"
#include "bounding/nbound.h"
#include "bounding/unary.h"
#include "util/proptest.h"

namespace nela::bounding {
namespace {

// ---------------------------------------------------------- distributions

TEST(UniformDistributionTest, PdfCdf) {
  const UniformDistribution dist(4.0);
  EXPECT_DOUBLE_EQ(dist.Pdf(2.0), 0.25);
  EXPECT_DOUBLE_EQ(dist.Pdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.Pdf(5.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(dist.Cdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(9.0), 1.0);
  EXPECT_DOUBLE_EQ(dist.SupportMax(), 4.0);
}

TEST(ExponentialDistributionTest, PdfCdf) {
  const ExponentialDistribution dist(2.0);
  EXPECT_DOUBLE_EQ(dist.Pdf(1.0), 2.0 * std::exp(-2.0));
  EXPECT_DOUBLE_EQ(dist.Cdf(1.0), 1.0 - std::exp(-2.0));
  EXPECT_DOUBLE_EQ(dist.Cdf(0.0), 0.0);
  EXPECT_TRUE(std::isinf(dist.SupportMax()));
  // pdf integrates to ~1 (trapezoid sanity check).
  double integral = 0.0;
  const double dx = 1e-3;
  for (double x = dx / 2; x < 20.0; x += dx) integral += dist.Pdf(x) * dx;
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

TEST(CostModelTest, QuadraticAndLinear) {
  const QuadraticCost quad(3.0);
  EXPECT_DOUBLE_EQ(quad.R(2.0), 12.0);
  EXPECT_DOUBLE_EQ(quad.RPrime(2.0), 12.0);
  const LinearCost lin(5.0);
  EXPECT_DOUBLE_EQ(lin.R(2.0), 10.0);
  EXPECT_DOUBLE_EQ(lin.RPrime(100.0), 5.0);
}

// ------------------------------------------------------------- Equation 2

TEST(UnaryTest, Example51ClosedForm) {
  // Uniform(0,U), R = Cr x^2: x* = sqrt(Cb/Cr), independent of U.
  const double cb = 1.0;
  const double cr = 1000.0;
  const double expected = OptimalUnaryUniformQuadratic(cb, cr);
  EXPECT_DOUBLE_EQ(expected, std::sqrt(cb / cr));
  for (double upper : {1.0, 2.0, 10.0}) {
    const UniformDistribution dist(upper);
    const QuadraticCost cost(cr);
    const UnarySolution solution = SolveUnary(dist, cost, cb);
    EXPECT_NEAR(solution.x, expected, 1e-9) << "U=" << upper;
    EXPECT_NEAR(solution.request_cost, cb, 1e-6);  // Cr x*^2 = Cb
    // C* = (Cb + R(x*)) / P(x*) = 2 Cb U / x*.
    EXPECT_NEAR(solution.total_cost, 2.0 * cb * upper / expected, 1e-6);
  }
}

TEST(UnaryTest, SupportCapWhenVerificationDominates) {
  // If sqrt(Cb/Cr) exceeds the support, cover everything at once.
  const UniformDistribution dist(0.01);
  const QuadraticCost cost(1.0);  // x* would be 1.0 >> 0.01
  const UnarySolution solution = SolveUnary(dist, cost, 1.0);
  EXPECT_DOUBLE_EQ(solution.x, 0.01);
  EXPECT_DOUBLE_EQ(solution.total_cost, 1.0 + cost.R(0.01));
}

TEST(UnaryTest, Example52ExponentialLinearSatisfiesEquation2) {
  // No closed form; verify the solver's root actually satisfies Eq. 2.
  const ExponentialDistribution dist(3.0);
  const LinearCost cost(10.0);
  const double cb = 2.0;
  const UnarySolution solution = SolveUnary(dist, cost, cb);
  EXPECT_GT(solution.x, 0.0);
  const double lhs = dist.Cdf(solution.x) * cost.RPrime(solution.x);
  const double rhs = (cb + cost.R(solution.x)) * dist.Pdf(solution.x);
  EXPECT_NEAR(lhs, rhs, 1e-6 * std::max(lhs, rhs));
  EXPECT_DOUBLE_EQ(solution.request_cost, cost.R(solution.x));
}

TEST(UnaryTest, TotalCostIsSelfConsistent) {
  // C* must satisfy C* = Cb + R(x*) + (1 - P(x*)) C*.
  const ExponentialDistribution dist(1.0);
  const QuadraticCost cost(4.0);
  const double cb = 0.5;
  const UnarySolution s = SolveUnary(dist, cost, cb);
  EXPECT_NEAR(s.total_cost,
              cb + s.request_cost + (1.0 - dist.Cdf(s.x)) * s.total_cost,
              1e-6 * s.total_cost);
}

// ------------------------------------------------------------- Equation 5

TEST(NBoundTest, Example53ClosedFormMatchesSolver) {
  const double upper = 2.0;
  const double cr = 100.0;
  const double cb = 1.0;
  const UniformDistribution dist(upper);
  const QuadraticCost cost(cr);
  const UnarySolution unary = SolveUnary(dist, cost, cb);
  for (uint32_t n : {2u, 5u, 10u, 50u}) {
    const double closed = NBoundUniformQuadratic(
        unary.total_cost, unary.request_cost, n, cr, upper);
    const double solved = SolveNBoundIncrement(dist, cost, cb, n, unary);
    if (closed < upper) {
      EXPECT_NEAR(solved, closed, 1e-9 * closed) << "n=" << n;
    } else {
      EXPECT_DOUBLE_EQ(solved, upper);  // capped at the support
    }
  }
}

TEST(NBoundTest, Example54ClosedFormMatchesSolver) {
  const double lambda = 2.0;
  const double cr = 1.0;
  const double cb = 5.0;
  const ExponentialDistribution dist(lambda);
  const LinearCost cost(cr);
  const UnarySolution unary = SolveUnary(dist, cost, cb);
  for (uint32_t n : {2u, 4u, 16u}) {
    const double closed = NBoundExponentialLinear(
        unary.total_cost, unary.request_cost, n, cr, lambda);
    const double solved = SolveNBoundIncrement(dist, cost, cb, n, unary);
    EXPECT_NEAR(solved, closed, 1e-6 * std::max(1.0, closed)) << "n=" << n;
  }
}

TEST(NBoundTest, IncrementGrowsWithN) {
  // More disagreeing users => each verification round is more expensive
  // => advance further per round.
  const UniformDistribution dist(10.0);
  const QuadraticCost cost(50.0);
  const UnarySolution unary = SolveUnary(dist, cost, 1.0);
  double previous = 0.0;
  for (uint32_t n = 1; n <= 6; ++n) {
    const double x = SolveNBoundIncrement(dist, cost, 1.0, n, unary);
    EXPECT_GT(x, previous) << "n=" << n;
    previous = x;
  }
}

TEST(NBoundTest, NOneEqualsUnary) {
  const UniformDistribution dist(1.0);
  const QuadraticCost cost(100.0);
  const UnarySolution unary = SolveUnary(dist, cost, 1.0);
  EXPECT_DOUBLE_EQ(SolveNBoundIncrement(dist, cost, 1.0, 1, unary), unary.x);
}

TEST(NBoundTest, FloorGuaranteesProgress) {
  // Degenerate setting where the unconstrained optimum is ~0: the floor
  // must still be returned.
  const UniformDistribution dist(1.0);
  const LinearCost cost(1e9);  // request cost enormous vs verification
  const UnarySolution unary = SolveUnary(dist, cost, 1e-6);
  const double x = SolveNBoundIncrement(dist, cost, 1e-6, 2, unary, 1e-9);
  EXPECT_GE(x, 1e-9);
}

// --------------------------------------------------------------- exact DP

TEST(ExactNBoundTest, UnaryRowMatchesEquation2Solution) {
  const UniformDistribution dist(1.0);
  const QuadraticCost cost(200.0);
  const double cb = 1.0;
  const ExactNBoundTable table(dist, cost, cb, 8);
  const UnarySolution unary = SolveUnary(dist, cost, cb);
  // The DP's n = 1 row minimizes the same functional as Equation 2.
  EXPECT_NEAR(table.increment(1), unary.x, 0.02 * unary.x);
  EXPECT_NEAR(table.expected_cost(1), unary.total_cost,
              0.01 * unary.total_cost);
}

TEST(ExactNBoundTest, CostsIncreaseWithN) {
  const UniformDistribution dist(1.0);
  const QuadraticCost cost(200.0);
  const ExactNBoundTable table(dist, cost, 1.0, 10);
  for (uint32_t n = 2; n <= 10; ++n) {
    EXPECT_GT(table.expected_cost(n), table.expected_cost(n - 1));
  }
  EXPECT_EQ(table.expected_cost(0), 0.0);
  EXPECT_EQ(table.max_n(), 10u);
}

TEST(ExactNBoundTest, ApproximationIsNearExactForSmallN) {
  // Equation 5 is derived from Equation 3 by approximation; for moderate
  // parameters the two increments should be within a small factor.
  const UniformDistribution dist(1.0);
  const QuadraticCost cost(500.0);
  const double cb = 1.0;
  const ExactNBoundTable table(dist, cost, cb, 6);
  const UnarySolution unary = SolveUnary(dist, cost, cb);
  for (uint32_t n = 2; n <= 6; ++n) {
    const double approx = SolveNBoundIncrement(dist, cost, cb, n, unary);
    const double exact = table.increment(n);
    EXPECT_GT(approx, 0.2 * exact) << "n=" << n;
    EXPECT_LT(approx, 5.0 * exact) << "n=" << n;
  }
}

TEST(ExactNBoundTest, ExactCostNoWorseThanOneShot) {
  // The DP optimum can never exceed the trivial strategy of covering the
  // whole support in one round (cost n*Cb + R(U)).
  const UniformDistribution dist(2.0);
  const QuadraticCost cost(100.0);
  const double cb = 1.0;
  const ExactNBoundTable table(dist, cost, cb, 8);
  for (uint32_t n = 1; n <= 8; ++n) {
    const double one_shot = n * cb + cost.R(2.0);
    EXPECT_LE(table.expected_cost(n), one_shot * (1.0 + 1e-9)) << "n=" << n;
  }
}

// ------------------------------------------------- randomized sweeps (S1)

// Each case checks both closed forms against the Equation 5 bisection
// solver at randomly drawn parameters -- 2 subcases per iteration, ~200
// comparisons at the default count.
TEST(NBoundPropertyTest, ClosedFormsMatchSolverOnRandomSweep) {
  util::PropSpec spec;
  spec.name = "NBoundPropertyTest.ClosedFormsMatchSolverOnRandomSweep";
  spec.base_seed = 0xb0537ull;
  spec.iterations = 100;
  // n >= 2: for n = 1 the solver intentionally returns the unary optimum
  // (the self-consistent fixed point), not the Equation 5 root the closed
  // forms evaluate, and the two differ by design.
  spec.min_size = 2;
  spec.max_size = 64;

  const util::Property property =
      [](util::Rng& rng, uint32_t size) -> std::optional<std::string> {
    const uint32_t n = size;

    // Example 5.3: uniform(0, U) offsets, quadratic request cost.
    {
      const double upper = rng.NextDouble(0.5, 10.0);
      const double cr = rng.NextDouble(10.0, 1000.0);
      const double cb = rng.NextDouble(0.1, 5.0);
      const UniformDistribution dist(upper);
      const QuadraticCost cost(cr);
      const UnarySolution unary = SolveUnary(dist, cost, cb);
      const double closed = NBoundUniformQuadratic(
          unary.total_cost, unary.request_cost, n, cr, upper);
      const double solved = SolveNBoundIncrement(dist, cost, cb, n, unary);
      if (closed < 0.99 * upper) {
        if (std::abs(solved - closed) > 1e-9 * std::max(1.0, closed)) {
          return "uniform/quadratic mismatch: n=" + std::to_string(n) +
                 " U=" + std::to_string(upper) + " cr=" + std::to_string(cr) +
                 " cb=" + std::to_string(cb) +
                 " closed=" + std::to_string(closed) +
                 " solved=" + std::to_string(solved);
        }
      } else if (closed > 1.01 * upper && solved != upper) {
        // Past the support the solver must cap at one-shot coverage.
        return "uniform/quadratic cap missed: closed=" +
               std::to_string(closed) + " solved=" + std::to_string(solved) +
               " U=" + std::to_string(upper);
      }
    }

    // Example 5.4: exponential(lambda) offsets, linear request cost.
    {
      const double lambda = rng.NextDouble(0.2, 5.0);
      const double cr = rng.NextDouble(0.1, 10.0);
      const double cb = rng.NextDouble(0.1, 10.0);
      const ExponentialDistribution dist(lambda);
      const LinearCost cost(cr);
      const UnarySolution unary = SolveUnary(dist, cost, cb);
      const double closed = NBoundExponentialLinear(
          unary.total_cost, unary.request_cost, n, cr, lambda);
      if (closed > 1e-6) {  // away from the clamp-at-zero boundary
        const double solved = SolveNBoundIncrement(dist, cost, cb, n, unary);
        if (std::abs(solved - closed) > 1e-6 * std::max(1.0, closed)) {
          return "exponential/linear mismatch: n=" + std::to_string(n) +
                 " lambda=" + std::to_string(lambda) +
                 " cr=" + std::to_string(cr) + " cb=" + std::to_string(cb) +
                 " closed=" + std::to_string(closed) +
                 " solved=" + std::to_string(solved);
        }
      }
    }
    return std::nullopt;
  };

  const auto failure = util::RunProperty(spec, property);
  ASSERT_FALSE(failure.has_value())
      << failure->message << "\n" << failure->repro;
}

// The Equation 5 approximation against the bottom-up DP (Equation 3) at
// random moderate parameters: the increments stay within a small factor,
// and the DP table keeps its structural invariants (monotone cost, never
// worse than one-shot coverage).
TEST(NBoundPropertyTest, ApproximationTracksExactDpOnRandomSweep) {
  util::PropSpec spec;
  spec.name = "NBoundPropertyTest.ApproximationTracksExactDpOnRandomSweep";
  spec.base_seed = 0xd9a11ull;
  spec.iterations = 48;  // the DP is the expensive half of this suite
  spec.min_size = 2;
  spec.max_size = 8;

  const util::Property property =
      [](util::Rng& rng, uint32_t size) -> std::optional<std::string> {
    const uint32_t max_n = size < 2 ? 2 : size;
    const double upper = rng.NextDouble(0.5, 4.0);
    const double cr = rng.NextDouble(50.0, 800.0);
    const double cb = rng.NextDouble(0.5, 2.0);
    const UniformDistribution dist(upper);
    const QuadraticCost cost(cr);
    const UnarySolution unary = SolveUnary(dist, cost, cb);
    const ExactNBoundTable table(dist, cost, cb, max_n);

    for (uint32_t n = 2; n <= max_n; ++n) {
      if (table.expected_cost(n) <= table.expected_cost(n - 1)) {
        return "DP cost not monotone at n=" + std::to_string(n);
      }
      const double one_shot = n * cb + cost.R(upper);
      if (table.expected_cost(n) > one_shot * (1.0 + 1e-9)) {
        return "DP cost exceeds one-shot coverage at n=" + std::to_string(n);
      }
      const double approx = SolveNBoundIncrement(dist, cost, cb, n, unary);
      const double exact = table.increment(n);
      if (approx < 0.2 * exact || approx > 5.0 * exact) {
        return "approximation outside factor band: n=" + std::to_string(n) +
               " U=" + std::to_string(upper) + " cr=" + std::to_string(cr) +
               " cb=" + std::to_string(cb) +
               " approx=" + std::to_string(approx) +
               " exact=" + std::to_string(exact);
      }
    }
    return std::nullopt;
  };

  const auto failure = util::RunProperty(spec, property);
  ASSERT_FALSE(failure.has_value())
      << failure->message << "\n" << failure->repro;
}

}  // namespace
}  // namespace nela::bounding
