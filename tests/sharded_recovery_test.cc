// Kill-anywhere chaos coverage for the sharded durability path: a crash at
// any commit-path crash point must leave per-shard disk state that
// RecoverAllShards rebuilds exactly -- idempotently, in parallel, and
// WITHOUT touching sibling shards (shards whose streams were not torn stay
// byte-identical on disk through recovery). Resuming the workload from the
// assembled registry must converge to the bit-identical digest of a run
// that never crashed.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "durability/shard_layout.h"
#include "durability/sharded_recovery.h"
#include "net/fault_plan.h"
#include "sim/scenario.h"
#include "sim/sharded_service_driver.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nela::sim {
namespace {

constexpr uint32_t kRequests = 96;
constexpr uint32_t kShards = 4;

const Scenario& SharedScenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.user_count = 600;
    config.delta = 0.03;
    config.seed = 11;
    auto built = BuildScenario(config);
    NELA_CHECK(built.ok());
    return std::move(built).value();
  }();
  return scenario;
}

ShardedServiceConfig DurableConfig(uint32_t threads,
                                   const std::string& dir) {
  ShardedServiceConfig config;
  config.service.k = 5;
  config.service.requests = kRequests;
  config.service.threads = threads;
  config.service.master_seed = 99;
  config.service.workload_seed = 17;
  config.service.checkpoint_interval = 4;
  config.shards = kShards;
  config.durability_dir = dir;
  return config;
}

ShardedServiceResult MustRun(const ShardedServiceConfig& config) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  ShardedServiceDriver driver(scenario.dataset, scenario.graph,
                              core::MakeSecurePolicyFactory(params), config);
  auto result = driver.Run();
  NELA_CHECK(result.ok());
  return std::move(result).value();
}

std::string FreshCaseDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "shard_kill_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Digest of an uninterrupted K-shard run of the same workload, computed
// without durability (logging is write-through and must not change what
// gets clustered).
uint64_t UninterruptedDigest() {
  static const uint64_t digest = [] {
    ShardedServiceConfig config = DurableConfig(4, "");
    config.durability_dir.clear();
    config.service.checkpoint_interval = 0;
    return MustRun(config).service.registry_digest;
  }();
  return digest;
}

// Byte snapshot of every file under one shard's durable-state directory.
std::map<std::string, std::string> SnapshotShardFiles(
    const std::string& base_dir, uint32_t shard) {
  std::map<std::string, std::string> files;
  const std::filesystem::path dir = durability::ShardDir(base_dir, shard);
  if (!std::filesystem::exists(dir)) return files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    files[entry.path().filename().string()] = bytes.str();
  }
  return files;
}

std::vector<uint64_t> ShardNextLsns(
    const durability::ShardedRecoveredState& state) {
  std::vector<uint64_t> lsns;
  for (const durability::ShardRecoveredState& shard : state.shards) {
    lsns.push_back(shard.next_lsn);
  }
  return lsns;
}

// Recovering right after a clean sharded run reproduces the final registry,
// and the serial and parallel recovery paths agree bit for bit.
TEST(ShardedRecoveryTest, RecoverAfterCleanRunReproducesFinalState) {
  const std::string dir = FreshCaseDir("clean");
  const ShardedServiceResult result = MustRun(DurableConfig(4, dir));
  ASSERT_FALSE(result.service.crashed);
  EXPECT_EQ(result.service.registry_digest, UninterruptedDigest());
  EXPECT_GT(result.service.wal_records, 0u);
  EXPECT_GT(result.service.checkpoints_written, 0u);

  const uint32_t user_count = SharedScenario().dataset.size();
  auto serial =
      durability::RecoverAllShards(dir, kShards, user_count);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  EXPECT_EQ(serial.value().TotalTornBytes(), 0u);

  util::ThreadPool pool(4);
  auto parallel =
      durability::RecoverAllShards(dir, kShards, user_count, &pool);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(ShardNextLsns(serial.value()), ShardNextLsns(parallel.value()));

  auto serial_registry = durability::AssembleRegistry(serial.value());
  ASSERT_TRUE(serial_registry.ok()) << serial_registry.status().ToString();
  auto parallel_registry = durability::AssembleRegistry(parallel.value());
  ASSERT_TRUE(parallel_registry.ok());
  EXPECT_EQ(serial_registry.value()->Digest(),
            result.service.registry_digest);
  EXPECT_EQ(parallel_registry.value()->Digest(),
            result.service.registry_digest);
}

// A single shard's slice can be recovered alone, and doing so produces the
// same slice RecoverAllShards sees -- per-shard recovery really is a pure
// function of that shard's directory.
TEST(ShardedRecoveryTest, SingleShardRecoveryMatchesFullRecovery) {
  const std::string dir = FreshCaseDir("single");
  const ShardedServiceResult result = MustRun(DurableConfig(4, dir));
  ASSERT_FALSE(result.service.crashed);

  const uint32_t user_count = SharedScenario().dataset.size();
  auto all = durability::RecoverAllShards(dir, kShards, user_count);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    auto one = durability::RecoverShard(dir, shard, user_count);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    EXPECT_EQ(one.value().next_lsn, all.value().shards[shard].next_lsn);
    EXPECT_EQ(one.value().clusters.size(),
              all.value().shards[shard].clusters.size());
    EXPECT_EQ(one.value().checkpoint_seq,
              all.value().shards[shard].checkpoint_seq);
  }
}

struct KillCase {
  net::ProcessCrashPoint point;
  uint64_t after_hits;
};

class ShardedKillAnywhereTest
    : public ::testing::TestWithParam<std::tuple<KillCase, uint32_t>> {};

TEST_P(ShardedKillAnywhereTest, CrashOneShardRecoverResumeConverges) {
  const KillCase kill = std::get<0>(GetParam());
  const uint32_t threads = std::get<1>(GetParam());
  const std::string dir =
      FreshCaseDir(std::string(net::ProcessCrashPointName(kill.point)) +
                   "_t" + std::to_string(threads));

  ShardedServiceConfig config = DurableConfig(threads, dir);
  config.service.fault_plan.process_crashes.push_back(
      net::ProcessCrashEvent{kill.point, kill.after_hits});
  const ShardedServiceResult crashed = MustRun(config);
  ASSERT_TRUE(crashed.service.crashed);
  ASSERT_TRUE(crashed.service.crash_point.has_value());
  EXPECT_EQ(*crashed.service.crash_point, kill.point);
  EXPECT_GT(crashed.service.aborted_by_crash, 0u)
      << "crash fired too late to abort anything";

  // Snapshot every shard's files as the crash left them.
  std::vector<std::map<std::string, std::string>> before;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    before.push_back(SnapshotShardFiles(dir, shard));
  }

  // Recovery is a pure, per-shard function of the on-disk files: two
  // recoveries agree bit for bit, serial or parallel.
  const uint32_t user_count = SharedScenario().dataset.size();
  auto first = durability::RecoverAllShards(dir, kShards, user_count);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  util::ThreadPool pool(4);
  auto second =
      durability::RecoverAllShards(dir, kShards, user_count, &pool);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(ShardNextLsns(first.value()), ShardNextLsns(second.value()));
  auto first_registry = durability::AssembleRegistry(first.value());
  ASSERT_TRUE(first_registry.ok()) << first_registry.status().ToString();
  auto second_registry = durability::AssembleRegistry(second.value());
  ASSERT_TRUE(second_registry.ok());
  EXPECT_EQ(first_registry.value()->Digest(),
            second_registry.value()->Digest());

  // One turnstile commit lands in exactly one stream, so at most ONE shard
  // can carry a torn record; the crash is a single-shard event.
  uint32_t torn_shards = 0;
  for (const durability::ShardRecoveredState& shard : first.value().shards) {
    if (shard.torn_bytes_discarded > 0) ++torn_shards;
  }
  EXPECT_LE(torn_shards, 1u);
  if (kill.point == net::ProcessCrashPoint::kMidWalAppend) {
    EXPECT_EQ(torn_shards, 1u);
    // The first recovery truncated the torn tail; the second saw clean
    // streams everywhere.
    EXPECT_EQ(second.value().TotalTornBytes(), 0u);
  }
  if (kill.point == net::ProcessCrashPoint::kMidCheckpoint) {
    uint32_t rejected = 0;
    for (const auto& shard : first.value().shards) {
      rejected += shard.checkpoints_rejected;
    }
    EXPECT_GE(rejected, 1u);
  }

  // Sibling isolation: recovering the crashed shard leaves every shard
  // whose stream was NOT torn byte-identical on disk (recovery only ever
  // mutates a torn tail, and only in the shard that owns it).
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    if (first.value().shards[shard].torn_bytes_discarded > 0) continue;
    EXPECT_EQ(SnapshotShardFiles(dir, shard), before[shard])
        << "recovery touched intact sibling " << shard;
  }

  // Resume the same workload on the assembled registry (crash disarmed):
  // committed work resolves as reuse, the rest re-executes, and the digest
  // converges to the uninterrupted run's.
  ShardedServiceConfig resume_config = config;
  resume_config.service.fault_plan.process_crashes.clear();
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  ShardedServiceDriver resumed_driver(scenario.dataset, scenario.graph,
                                      core::MakeSecurePolicyFactory(params),
                                      resume_config);
  auto resumed = resumed_driver.Resume(second.value());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed.value().service.crashed);
  EXPECT_EQ(resumed.value().service.registry_digest, UninterruptedDigest())
      << "resumed digest diverged after a "
      << net::ProcessCrashPointName(kill.point) << " crash at threads="
      << threads;
  EXPECT_EQ(resumed.value().concatenated_digest,
            resumed.value().service.registry_digest);
}

INSTANTIATE_TEST_SUITE_P(
    AllPointsAllThreadCounts, ShardedKillAnywhereTest,
    ::testing::Combine(
        ::testing::Values(
            KillCase{net::ProcessCrashPoint::kPreCommit, 5},
            KillCase{net::ProcessCrashPoint::kMidWalAppend, 5},
            KillCase{net::ProcessCrashPoint::kPostCommit, 5},
            KillCase{net::ProcessCrashPoint::kMidCheckpoint, 2}),
        ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<std::tuple<KillCase, uint32_t>>&
           param_info) {
      std::string name =
          net::ProcessCrashPointName(std::get<0>(param_info.param).point);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_t" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace nela::sim
