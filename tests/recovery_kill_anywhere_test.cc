// Kill-anywhere chaos coverage: a scheduled process crash at any of the
// commit-path crash points (pre-commit, mid-WAL-append, post-commit,
// mid-checkpoint), at any thread count, must leave on-disk state that
// recovery rebuilds exactly -- and resuming the workload from the recovered
// registry must converge to the bit-identical digest of a run that never
// crashed. Recovery itself is idempotent: recovering twice from the same
// files yields the same registry.

#include <filesystem>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "durability/recovery.h"
#include "net/fault_plan.h"
#include "sim/scenario.h"
#include "sim/service_driver.h"
#include "util/status.h"

namespace nela::sim {
namespace {

constexpr uint32_t kRequests = 96;

const Scenario& SharedScenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.user_count = 600;
    config.delta = 0.03;
    config.seed = 11;
    auto built = BuildScenario(config);
    NELA_CHECK(built.ok());
    return std::move(built).value();
  }();
  return scenario;
}

ServiceConfig DurableConfig(uint32_t threads, const std::string& dir) {
  ServiceConfig config;
  config.k = 5;
  config.requests = kRequests;
  config.threads = threads;
  config.master_seed = 99;
  config.workload_seed = 17;
  config.wal_path = dir + "/wal.log";
  config.checkpoint_dir = dir;
  config.checkpoint_interval = 4;
  return config;
}

ServiceResult MustRun(const ServiceConfig& config) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  ServiceDriver driver(scenario.dataset, scenario.graph,
                       core::MakeSecurePolicyFactory(params), config);
  auto result = driver.Run();
  NELA_CHECK(result.ok());
  return std::move(result).value();
}

std::string FreshCaseDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "kill_anywhere_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Digest of an uninterrupted run of the same workload. Computed without
// durability: write-ahead logging is write-through, so it must not change
// how the registry evolves (RecoverAfterCleanRun pins the durable variant).
uint64_t UninterruptedDigest() {
  static const uint64_t digest = [] {
    ServiceConfig config;
    config.k = 5;
    config.requests = kRequests;
    config.threads = 4;
    config.master_seed = 99;
    config.workload_seed = 17;
    return MustRun(config).registry_digest;
  }();
  return digest;
}

// Recovering right after a clean durable run reproduces the final registry:
// the WAL and checkpoints together carry the complete state.
TEST(RecoveryKillAnywhereTest, RecoverAfterCleanRunReproducesFinalState) {
  const std::string dir = FreshCaseDir("clean");
  const ServiceResult result = MustRun(DurableConfig(4, dir));
  ASSERT_FALSE(result.crashed);
  EXPECT_EQ(result.registry_digest, UninterruptedDigest());
  EXPECT_GT(result.wal_records, 0u);
  EXPECT_GT(result.checkpoints_written, 0u);

  durability::RecoveryConfig recovery_config;
  recovery_config.wal_path = dir + "/wal.log";
  recovery_config.checkpoint_dir = dir;
  recovery_config.user_count = SharedScenario().dataset.size();
  auto recovered =
      durability::RecoveryManager(recovery_config).Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().registry->Digest(), result.registry_digest);
  EXPECT_EQ(recovered.value().torn_bytes_discarded, 0u);
}

struct KillCase {
  net::ProcessCrashPoint point;
  uint64_t after_hits;
};

class KillAnywhereTest
    : public ::testing::TestWithParam<std::tuple<KillCase, uint32_t>> {};

TEST_P(KillAnywhereTest, CrashRecoverResumeConvergesToUninterruptedDigest) {
  const KillCase kill = std::get<0>(GetParam());
  const uint32_t threads = std::get<1>(GetParam());
  const std::string dir =
      FreshCaseDir(std::string(net::ProcessCrashPointName(kill.point)) +
                   "_t" + std::to_string(threads));

  ServiceConfig config = DurableConfig(threads, dir);
  config.fault_plan.process_crashes.push_back(
      net::ProcessCrashEvent{kill.point, kill.after_hits});
  const ServiceResult crashed = MustRun(config);
  ASSERT_TRUE(crashed.crashed);
  ASSERT_TRUE(crashed.crash_point.has_value());
  EXPECT_EQ(*crashed.crash_point, kill.point);
  // Every admitted request the crash cut short is reported as a structured
  // abort, never silently dropped.
  uint64_t aborted = 0;
  for (const ServiceRequestRecord& record : crashed.records) {
    if (!record.aborted_by_crash) continue;
    ++aborted;
    EXPECT_FALSE(record.outcome.anonymity_satisfied);
    EXPECT_EQ(record.outcome.degradation.failure_code,
              util::StatusCode::kUnavailable);
    EXPECT_EQ(record.outcome.degradation.finalize_count, 1u);
  }
  EXPECT_EQ(aborted, crashed.aborted_by_crash);
  EXPECT_GT(aborted, 0u) << "crash fired too late to abort anything";

  // Recovery is a pure function of the on-disk files: two recoveries agree
  // bit for bit.
  durability::RecoveryConfig recovery_config;
  recovery_config.wal_path = config.wal_path;
  recovery_config.checkpoint_dir = config.checkpoint_dir;
  recovery_config.user_count = SharedScenario().dataset.size();
  const durability::RecoveryManager manager(recovery_config);
  auto first = manager.Recover();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = manager.Recover();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(first.value().registry->Digest(),
            second.value().registry->Digest());
  EXPECT_EQ(first.value().next_lsn, second.value().next_lsn);
  if (kill.point == net::ProcessCrashPoint::kMidWalAppend) {
    EXPECT_GT(first.value().torn_bytes_discarded, 0u);
    // The first recovery truncated the torn tail; the second sees a clean
    // log.
    EXPECT_EQ(second.value().torn_bytes_discarded, 0u);
  }
  if (kill.point == net::ProcessCrashPoint::kMidCheckpoint) {
    EXPECT_GE(first.value().checkpoints_rejected, 1u);
  }

  // Resume the same workload on the recovered registry (crash disarmed):
  // committed work resolves as reuse, the rest re-executes with the same
  // per-request sub-streams, and the digest converges to the uninterrupted
  // run's.
  ServiceConfig resume_config = config;
  resume_config.fault_plan.process_crashes.clear();
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  ServiceDriver resumed_driver(scenario.dataset, scenario.graph,
                               core::MakeSecurePolicyFactory(params),
                               resume_config);
  auto resumed = resumed_driver.Resume(std::move(second).value());
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_FALSE(resumed.value().crashed);
  EXPECT_EQ(resumed.value().registry_digest, UninterruptedDigest())
      << "resumed digest diverged after a "
      << net::ProcessCrashPointName(kill.point) << " crash at threads="
      << threads;
}

INSTANTIATE_TEST_SUITE_P(
    AllPointsAllThreadCounts, KillAnywhereTest,
    ::testing::Combine(
        ::testing::Values(
            KillCase{net::ProcessCrashPoint::kPreCommit, 5},
            KillCase{net::ProcessCrashPoint::kMidWalAppend, 5},
            KillCase{net::ProcessCrashPoint::kPostCommit, 5},
            KillCase{net::ProcessCrashPoint::kMidCheckpoint, 2}),
        ::testing::Values(1u, 4u, 8u)),
    [](const ::testing::TestParamInfo<std::tuple<KillCase, uint32_t>>&
           param_info) {
      std::string name =
          net::ProcessCrashPointName(std::get<0>(param_info.param).point);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_t" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace nela::sim
