// kNN baseline tests: the Fig. 4 worked example (plain and revised
// tie-break), the non-isolation behaviour the paper criticizes, and
// multi-hop spanning for later requests.

#include <vector>

#include <gtest/gtest.h>

#include "cluster/knn_clustering.h"
#include "graph/wpg.h"

namespace nela::cluster {
namespace {

using graph::VertexId;
using graph::Wpg;

// Fig. 4 weighted proximity graph. Vertex i = u_{i+1}:
//   u1-u2 = 1, u1-u3 = 1, u2-u3 = 2, u4-u3 = 2, u4-u5 = 2, u4-u6 = 2,
//   u5-u6 = 1.
Wpg Fig4Graph() {
  auto graph = Wpg::FromEdges(6, {{0, 1, 1.0},
                                  {0, 2, 1.0},
                                  {1, 2, 2.0},
                                  {3, 2, 2.0},
                                  {3, 4, 2.0},
                                  {3, 5, 2.0},
                                  {4, 5, 1.0}});
  NELA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(KnnClustererTest, Fig4aPlainKnnPicksByVertexId) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  KnnClusterer clusterer(graph, 3, &registry, nullptr,
                         KnnTieBreak::kVertexId);
  auto outcome = clusterer.ClusterFor(3);  // host u4
  ASSERT_TRUE(outcome.ok());
  // u3, u5, u6 are all at distance 2; id order picks u3 (2) and u5 (4).
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{2, 3, 4}));
}

TEST(KnnClustererTest, Fig4bRevisedKnnPicksSmallestDegree) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  KnnClusterer clusterer(graph, 3, &registry, nullptr,
                         KnnTieBreak::kSmallestDegree);
  auto outcome = clusterer.ClusterFor(3);
  ASSERT_TRUE(outcome.ok());
  // Degrees: u3 has 3, u5 and u6 have 2 -> {u4, u5, u6}.
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{3, 4, 5}));
}

// The paper's Fig. 4(a) complaint: after plain kNN serves u4, the leftover
// {u1, u2, u6} must form the next 3-cluster, whose extent spans the whole
// graph.
TEST(KnnClustererTest, Fig4aLeftoverClusterIsStretched) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  KnnClusterer clusterer(graph, 3, &registry, nullptr,
                         KnnTieBreak::kVertexId);
  ASSERT_TRUE(clusterer.ClusterFor(3).ok());  // consumes {u3, u4, u5}
  auto outcome = clusterer.ClusterFor(0);     // host u1
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{0, 1, 5}));  // u6 dragged in from afar
  // Multi-hop: reaching u6 required relaying through clustered vertices.
  EXPECT_GT(outcome.value().involved_users, 3u);
}

// With the revised tie-break the same graph splits into the two natural
// triangles -- the cluster-isolated outcome of Fig. 4(b).
TEST(KnnClustererTest, Fig4bProducesIsolatedClusters) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  KnnClusterer clusterer(graph, 3, &registry, nullptr,
                         KnnTieBreak::kSmallestDegree);
  ASSERT_TRUE(clusterer.ClusterFor(3).ok());
  auto outcome = clusterer.ClusterFor(0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{0, 1, 2}));
}

TEST(KnnClustererTest, ReusesExistingCluster) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  KnnClusterer clusterer(graph, 3, &registry);
  auto first = clusterer.ClusterFor(3);
  ASSERT_TRUE(first.ok());
  auto again = clusterer.ClusterFor(2);  // u3 was clustered with u4
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().reused);
  EXPECT_EQ(again.value().cluster_id, first.value().cluster_id);
  EXPECT_EQ(again.value().involved_users, 0u);
}

TEST(KnnClustererTest, UsesPathDistanceNotHopCount) {
  // Host 0: direct neighbor 1 at weight 5; two-hop 0-2-3 costs 2. kNN for
  // k=2 must pick vertex 3's side first.
  auto built = Wpg::FromEdges(
      4, {{0, 1, 5.0}, {0, 2, 1.0}, {2, 3, 1.0}});
  ASSERT_TRUE(built.ok());
  Registry registry(4);
  KnnClusterer clusterer(built.value(), 2, &registry);
  auto outcome = clusterer.ClusterFor(0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{0, 2}));
}

TEST(KnnClustererTest, InsufficientUsersYieldInvalidCluster) {
  auto built = Wpg::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(built.ok());
  Registry registry(3);
  KnnClusterer clusterer(built.value(), 3, &registry);
  auto outcome = clusterer.ClusterFor(0);  // only {0,1} reachable
  ASSERT_TRUE(outcome.ok());
  const ClusterInfo& info = registry.info(outcome.value().cluster_id);
  EXPECT_FALSE(info.valid);
  EXPECT_EQ(info.members, (std::vector<VertexId>{0, 1}));
}

TEST(KnnClustererTest, ExactlyKUsersPerFreshCluster) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  KnnClusterer clusterer(graph, 2, &registry);
  auto a = clusterer.ClusterFor(0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(registry.info(a.value().cluster_id).members.size(), 2u);
  auto b = clusterer.ClusterFor(3);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(registry.info(b.value().cluster_id).members.size(), 2u);
  EXPECT_NE(a.value().cluster_id, b.value().cluster_id);
}

TEST(KnnClustererTest, RejectsBadHost) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  KnnClusterer clusterer(graph, 2, &registry);
  EXPECT_FALSE(clusterer.ClusterFor(6).ok());
}

TEST(KnnClustererTest, NetworkAccountsInvolvedUsers) {
  const Wpg graph = Fig4Graph();
  Registry registry(6);
  net::Network network(6);
  KnnClusterer clusterer(graph, 3, &registry, &network);
  auto outcome = clusterer.ClusterFor(3);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(network.total().messages, outcome.value().involved_users - 1);
}

}  // namespace
}  // namespace nela::cluster
