// Algorithm 1 tests: the Fig. 6 worked example, the equivalence of the
// hierarchy-based implementation with the reference pseudocode, and the
// clusterer adapter semantics.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/centralized_tconn.h"
#include "graph/connectivity.h"
#include "graph/metrics.h"
#include "graph/wpg.h"
#include "util/rng.h"

namespace nela::cluster {
namespace {

using graph::Edge;
using graph::VertexId;
using graph::Wpg;

// A concrete instance of the Fig. 6 scenario: two communities (a triangle
// {0,1,2} and a 4-cycle-ish {3,4,5,6}) joined by heavy edges of weights 7
// and 8. 2-clustering must (a) split off the two communities by removing
// weights 8 and 7, (b) leave {0,1,2} whole (splitting it would isolate
// vertex 2), and (c) split {3,4,5,6} into {3,4} and {5,6} by removing
// weights 6 and 4 -- exactly the process the paper walks through.
Wpg Fig6Graph() {
  auto graph = Wpg::FromEdges(7, {{0, 1, 3.0},
                                  {1, 2, 5.0},
                                  {0, 2, 6.0},
                                  {3, 4, 3.0},
                                  {5, 6, 3.0},
                                  {4, 5, 6.0},
                                  {3, 6, 4.0},
                                  {2, 3, 7.0},
                                  {0, 5, 8.0}});
  NELA_CHECK(graph.ok());
  return std::move(graph).value();
}

std::set<std::vector<VertexId>> AsSet(const Partition& partition) {
  std::set<std::vector<VertexId>> out;
  for (const auto& cluster : partition.clusters) out.insert(cluster);
  return out;
}

TEST(CentralizedTConnTest, Fig6TwoClustering) {
  const Wpg graph = Fig6Graph();
  const Partition partition = CentralizedKClustering(graph, 2);
  EXPECT_EQ(AsSet(partition),
            (std::set<std::vector<VertexId>>{{0, 1, 2}, {3, 4}, {5, 6}}));
  // Connectivity values: {0,1,2} needs t=5, the pairs need t=3.
  for (size_t i = 0; i < partition.clusters.size(); ++i) {
    if (partition.clusters[i].size() == 3) {
      EXPECT_DOUBLE_EQ(partition.connectivity[i], 5.0);
    } else {
      EXPECT_DOUBLE_EQ(partition.connectivity[i], 3.0);
    }
  }
}

TEST(CentralizedTConnTest, Fig6ReferenceAgrees) {
  const Wpg graph = Fig6Graph();
  const Partition reference =
      ReferenceCentralizedKClustering(graph, {0, 1, 2, 3, 4, 5, 6}, 2);
  EXPECT_EQ(AsSet(reference),
            (std::set<std::vector<VertexId>>{{0, 1, 2}, {3, 4}, {5, 6}}));
}

TEST(CentralizedTConnTest, Fig6LiteralPseudocodeAgrees) {
  // On the paper's own worked example every split along the way is valid,
  // so the verbatim first-disconnect recursion matches the production
  // semantics.
  const Wpg graph = Fig6Graph();
  const Partition literal =
      LiteralFirstDisconnectKClustering(graph, {0, 1, 2, 3, 4, 5, 6}, 2);
  EXPECT_EQ(AsSet(literal),
            (std::set<std::vector<VertexId>>{{0, 1, 2}, {3, 4}, {5, 6}}));
}

TEST(CentralizedTConnTest, LiteralPseudocodeDegeneratesOnInvalidFirstSplit) {
  // Reproduction note (EXPERIMENTS.md): a pendant vertex hanging off a
  // splittable core. The heaviest edge is inside the core, but removal
  // order reaches the pendant bridge first...: construct so the first
  // disconnection isolates the pendant -> invalid -> the literal recursion
  // keeps the WHOLE graph as one cluster, while the freeze semantics still
  // split the core and absorb the pendant.
  //   core: 0-1 (1), 2-3 (1), 1-2 (4); pendant: 4 attached to 0 with (5).
  // Descending removal: (0,4,5) disconnects {4} first -> invalid -> stop.
  auto built = Wpg::FromEdges(
      5, {{0, 1, 1.0}, {2, 3, 1.0}, {1, 2, 4.0}, {0, 4, 5.0}});
  ASSERT_TRUE(built.ok());
  const Partition literal =
      LiteralFirstDisconnectKClustering(built.value(), {0, 1, 2, 3, 4}, 2);
  ASSERT_EQ(literal.clusters.size(), 1u);
  EXPECT_EQ(literal.clusters[0].size(), 5u);  // one giant cluster

  const Partition freeze = CentralizedKClustering(built.value(), 2);
  EXPECT_EQ(AsSet(freeze),
            (std::set<std::vector<VertexId>>{{0, 1, 4}, {2, 3}}));
}

TEST(CentralizedTConnTest, KEqualsOneShattersToSingletons) {
  const Wpg graph = Fig6Graph();
  const Partition partition = CentralizedKClustering(graph, 1);
  EXPECT_EQ(partition.clusters.size(), 7u);
  for (const auto& cluster : partition.clusters) {
    EXPECT_EQ(cluster.size(), 1u);
  }
}

TEST(CentralizedTConnTest, KLargerThanGraphKeepsOneCluster) {
  const Wpg graph = Fig6Graph();
  const Partition partition = CentralizedKClustering(graph, 7);
  ASSERT_EQ(partition.clusters.size(), 1u);
  EXPECT_EQ(partition.clusters[0].size(), 7u);
  EXPECT_DOUBLE_EQ(partition.connectivity[0], 7.0);
}

TEST(CentralizedTConnTest, KBeyondComponentYieldsInvalidSmallCluster) {
  const Wpg graph = Fig6Graph();
  const Partition partition = CentralizedKClustering(graph, 10);
  // The whole graph (size 7) cannot reach k=10 but is still emitted.
  ASSERT_EQ(partition.clusters.size(), 1u);
  EXPECT_EQ(partition.clusters[0].size(), 7u);
}

TEST(CentralizedTConnTest, IsolatedVerticesBecomeSingletonClusters) {
  auto graph = Wpg::FromEdges(4, {{0, 1, 1.0}});
  ASSERT_TRUE(graph.ok());
  const Partition partition = CentralizedKClustering(graph.value(), 2);
  EXPECT_EQ(AsSet(partition),
            (std::set<std::vector<VertexId>>{{0, 1}, {2}, {3}}));
}

TEST(CentralizedTConnTest, ReferenceSubsetRestriction) {
  const Wpg graph = Fig6Graph();
  // Restricted to the right community only.
  const Partition partition =
      ReferenceCentralizedKClustering(graph, {3, 4, 5, 6}, 2);
  EXPECT_EQ(AsSet(partition),
            (std::set<std::vector<VertexId>>{{3, 4}, {5, 6}}));
}

TEST(CentralizedTConnTest, EqualWeightCycleSplitsViaRefinement) {
  // All weights equal: under the strict total order the 4-cycle first
  // freezes into one component; the MST refinement then cuts it into two
  // valid pairs along the tree edges (0,1),(0,3),(1,2): cutting (0,1)
  // leaves {1,2} and {0,3}, both of size k.
  auto graph = Wpg::FromEdges(
      4, {{0, 1, 2.0}, {1, 2, 2.0}, {2, 3, 2.0}, {3, 0, 2.0}});
  ASSERT_TRUE(graph.ok());
  const Partition partition = CentralizedKClustering(graph.value(), 2);
  EXPECT_EQ(AsSet(partition),
            (std::set<std::vector<VertexId>>{{0, 3}, {1, 2}}));
  for (double connectivity : partition.connectivity) {
    EXPECT_DOUBLE_EQ(connectivity, 2.0);
  }
}

// ---------------------------------------------------------------- fuzzing

Wpg RandomGraph(util::Rng& rng, uint32_t n, uint32_t extra_edges,
                uint32_t weight_range) {
  Wpg graph(n);
  std::set<uint64_t> used;
  auto try_add = [&](uint32_t a, uint32_t b, double w) {
    if (a == b) return;
    const uint64_t key =
        (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    if (used.insert(key).second) graph.AddEdge(a, b, w);
  };
  for (uint32_t v = 1; v < n; ++v) {
    try_add(static_cast<uint32_t>(rng.NextUint64(v)), v,
            static_cast<double>(1 + rng.NextUint64(weight_range)));
  }
  for (uint32_t i = 0; i < extra_edges; ++i) {
    try_add(static_cast<uint32_t>(rng.NextUint64(n)),
            static_cast<uint32_t>(rng.NextUint64(n)),
            static_cast<double>(1 + rng.NextUint64(weight_range)));
  }
  graph.SortAdjacencyByWeight();
  return graph;
}

struct FuzzParam {
  uint64_t seed;
  uint32_t n;
  uint32_t extra;
  uint32_t weights;  // small => many ties
  uint32_t k;
};

class CentralizedEquivalenceTest : public ::testing::TestWithParam<FuzzParam> {
};

// The O(E log E) hierarchy traversal and the literal pseudocode must
// produce identical partitions, including under heavy weight ties.
TEST_P(CentralizedEquivalenceTest, HierarchyMatchesReference) {
  const FuzzParam param = GetParam();
  util::Rng rng(param.seed);
  const Wpg graph = RandomGraph(rng, param.n, param.extra, param.weights);
  std::vector<VertexId> all(param.n);
  for (uint32_t v = 0; v < param.n; ++v) all[v] = v;

  const Partition fast = CentralizedKClustering(graph, param.k);
  const Partition reference =
      ReferenceCentralizedKClustering(graph, all, param.k);
  EXPECT_EQ(AsSet(fast), AsSet(reference));

  // Cross-check connectivity: each cluster's value is the MST bottleneck,
  // i.e. the smallest t making it one threshold component.
  std::set<std::vector<VertexId>> fast_set = AsSet(fast);
  for (size_t i = 0; i < reference.clusters.size(); ++i) {
    const auto& members = reference.clusters[i];
    auto it = std::find(fast.clusters.begin(), fast.clusters.end(), members);
    ASSERT_NE(it, fast.clusters.end());
    const size_t j =
        static_cast<size_t>(it - fast.clusters.begin());
    EXPECT_DOUBLE_EQ(fast.connectivity[j], reference.connectivity[i]);
  }
}

// Structural invariants of any valid partition.
TEST_P(CentralizedEquivalenceTest, PartitionInvariants) {
  const FuzzParam param = GetParam();
  util::Rng rng(param.seed * 977 + 13);
  const Wpg graph = RandomGraph(rng, param.n, param.extra, param.weights);
  const Partition partition = CentralizedKClustering(graph, param.k);

  // Disjoint cover of all vertices.
  std::vector<int> owner(param.n, -1);
  for (size_t c = 0; c < partition.clusters.size(); ++c) {
    for (VertexId v : partition.clusters[c]) {
      EXPECT_EQ(owner[v], -1);
      owner[v] = static_cast<int>(c);
    }
  }
  for (uint32_t v = 0; v < param.n; ++v) EXPECT_NE(owner[v], -1);

  // Every cluster from a component of size >= k must itself have >= k
  // members (validity), and sub-k clusters can only be whole components.
  for (const auto& cluster : partition.clusters) {
    if (cluster.size() >= param.k) continue;
    const auto component =
        graph::ThresholdComponent(graph, cluster.front(), 1e18, nullptr);
    EXPECT_EQ(component.size(), cluster.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, CentralizedEquivalenceTest,
    ::testing::Values(FuzzParam{101, 12, 10, 3, 2},
                      FuzzParam{102, 20, 25, 4, 3},
                      FuzzParam{103, 30, 10, 2, 4},
                      FuzzParam{104, 40, 60, 5, 5},
                      FuzzParam{105, 50, 20, 3, 2},
                      FuzzParam{106, 15, 40, 1, 3},   // all weights equal
                      FuzzParam{107, 60, 80, 8, 10},
                      FuzzParam{108, 25, 0, 4, 2},    // tree
                      FuzzParam{109, 80, 100, 6, 7},
                      FuzzParam{110, 10, 30, 2, 5}));

// --------------------------------------------------------------- adapter

TEST(CentralizedClustererTest, FirstRequestClustersEveryone) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  CentralizedTConnClusterer clusterer(graph, 2, &registry);
  auto outcome = clusterer.ClusterFor(0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome.value().reused);
  EXPECT_EQ(outcome.value().involved_users, 7u);  // all users submit
  EXPECT_EQ(registry.clustered_user_count(), 7u);
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{0, 1, 2}));
}

TEST(CentralizedClustererTest, SubsequentRequestsAreFree) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  CentralizedTConnClusterer clusterer(graph, 2, &registry);
  ASSERT_TRUE(clusterer.ClusterFor(0).ok());
  for (VertexId host = 0; host < 7; ++host) {
    auto outcome = clusterer.ClusterFor(host);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().reused);
    EXPECT_EQ(outcome.value().involved_users, 0u);
  }
}

TEST(CentralizedClustererTest, RejectsBadHost) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  CentralizedTConnClusterer clusterer(graph, 2, &registry);
  EXPECT_FALSE(clusterer.ClusterFor(99).ok());
}

TEST(CentralizedClustererTest, NetworkAccounting) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  net::Network network(7);
  CentralizedTConnClusterer clusterer(graph, 2, &registry, &network);
  ASSERT_TRUE(clusterer.ClusterFor(3).ok());
  EXPECT_EQ(network.total().messages, 7u);
  EXPECT_EQ(
      network.of_kind(net::MessageKind::kAdjacencyExchange).messages, 7u);
}

}  // namespace
}  // namespace nela::cluster
