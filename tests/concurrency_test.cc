// Tests for the concurrency controller (§VII future work): claim
// atomicity, wound-wait conflict resolution, and end-to-end serialization
// of simultaneous cloaking requests without deadlock or reciprocity
// violations.

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/concurrency.h"
#include "cluster/distributed_tconn.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "scenario_fixtures.h"
#include "util/rng.h"

namespace nela::cluster {
namespace {

using graph::VertexId;

// ------------------------------------------------------- ClaimCoordinator

TEST(ClaimCoordinatorTest, ClaimAndRelease) {
  ClaimCoordinator coordinator(5);
  const Ticket a = coordinator.OpenRequest();
  EXPECT_TRUE(coordinator.TryClaim(a, {0, 1, 2}));
  EXPECT_EQ(coordinator.HolderOf(0), a);
  EXPECT_EQ(coordinator.HolderOf(3), kNoTicket);
  coordinator.Release(a);
  EXPECT_EQ(coordinator.HolderOf(0), kNoTicket);
}

TEST(ClaimCoordinatorTest, TicketsAreMonotone) {
  ClaimCoordinator coordinator(1);
  const Ticket a = coordinator.OpenRequest();
  const Ticket b = coordinator.OpenRequest();
  EXPECT_LT(a, b);
}

TEST(ClaimCoordinatorTest, OlderHolderBlocksYoungerClaim) {
  ClaimCoordinator coordinator(4);
  const Ticket older = coordinator.OpenRequest();
  const Ticket younger = coordinator.OpenRequest();
  EXPECT_TRUE(coordinator.TryClaim(older, {1, 2}));
  // Younger overlaps an older holder: the whole claim fails atomically.
  EXPECT_FALSE(coordinator.TryClaim(younger, {2, 3}));
  EXPECT_EQ(coordinator.HolderOf(3), kNoTicket);  // nothing partial
  EXPECT_EQ(coordinator.conflicts_observed(), 1u);
}

TEST(ClaimCoordinatorTest, OlderClaimWoundsYoungerHolder) {
  ClaimCoordinator coordinator(4);
  const Ticket older = coordinator.OpenRequest();
  const Ticket younger = coordinator.OpenRequest();
  EXPECT_TRUE(coordinator.TryClaim(younger, {0, 1}));
  // The older request takes what it needs; the younger loses EVERYTHING.
  EXPECT_TRUE(coordinator.TryClaim(older, {1, 2}));
  EXPECT_EQ(coordinator.HolderOf(1), older);
  EXPECT_EQ(coordinator.HolderOf(0), kNoTicket);  // revoked wholesale
  EXPECT_TRUE(coordinator.WasWounded(younger));
  EXPECT_FALSE(coordinator.WasWounded(younger));  // flag resets
  EXPECT_FALSE(coordinator.WasWounded(older));
  EXPECT_EQ(coordinator.wounds_inflicted(), 1u);
}

TEST(ClaimCoordinatorTest, ReclaimBySameTicketIsIdempotent) {
  ClaimCoordinator coordinator(3);
  const Ticket a = coordinator.OpenRequest();
  EXPECT_TRUE(coordinator.TryClaim(a, {0, 1}));
  EXPECT_TRUE(coordinator.TryClaim(a, {1, 2}));
  EXPECT_EQ(coordinator.HolderOf(0), a);
  EXPECT_EQ(coordinator.HolderOf(2), a);
}

// Batched contention with REAL threads: N workers race overlapping claims
// through the coordinator, then commit in ticket order (the batch driver's
// turnstile discipline). Must hold:
//  * reciprocity -- no user is committed by two tickets;
//  * liveness    -- the oldest ticket commits its full candidate without
//                   retrying, and every worker terminates;
//  * determinism -- the final committed partition equals the sequential
//                   turn-order computation, independent of scheduling.
TEST(ClaimCoordinatorTest, BatchedContentionPreservesReciprocity) {
  constexpr uint32_t kUsers = 60;
  constexpr uint32_t kThreads = 8;
  constexpr uint64_t kSeed = 2024;

  // Every candidate shares user 0 (a guaranteed hotspot) plus 10 seeded
  // draws, so claims genuinely overlap.
  std::vector<std::vector<VertexId>> candidates(kThreads);
  for (uint32_t i = 0; i < kThreads; ++i) {
    util::Rng rng(kSeed + i);
    candidates[i].push_back(0);
    for (uint32_t draw : rng.SampleWithoutReplacement(kUsers - 1, 10)) {
      candidates[i].push_back(draw + 1);
    }
  }

  ClaimCoordinator coordinator(kUsers);
  std::vector<Ticket> tickets(kThreads);
  for (uint32_t i = 0; i < kThreads; ++i) {
    tickets[i] = coordinator.OpenRequest();
  }

  std::vector<Ticket> committed_owner(kUsers, kNoTicket);
  std::vector<uint32_t> claim_retries(kThreads, 0);
  std::atomic<bool> double_commit{false};
  std::mutex mu;
  std::condition_variable turn_cv;
  uint32_t turn = 0;
  std::atomic<uint32_t> at_barrier{0};

  auto worker = [&](uint32_t index) {
    const Ticket ticket = tickets[index];
    const std::vector<VertexId>& members = candidates[index];
    // Start line: maximize genuine claim races.
    at_barrier.fetch_add(1);
    while (at_barrier.load() < kThreads) std::this_thread::yield();
    // Speculation: race for the claim against everyone else.
    while (!coordinator.TryClaim(ticket, members)) {
      ++claim_retries[index];
      std::this_thread::yield();
    }
    // Turnstile: commit strictly in ticket order.
    std::unique_lock<std::mutex> lock(mu);
    turn_cv.wait(lock, [&] { return turn == index; });
    // Re-validate: a wound (or a revoked hold) means an older request took
    // our members while we waited; re-claim -- at our turn every older
    // ticket has released, so the claim must succeed.
    bool holds = !coordinator.WasWounded(ticket);
    for (VertexId v : members) {
      holds = holds && coordinator.HolderOf(v) == ticket;
    }
    if (!holds) {
      EXPECT_TRUE(coordinator.TryClaim(ticket, members))
          << "re-claim at own turn must always succeed";
    }
    for (VertexId v : members) {
      if (committed_owner[v] == kNoTicket) {
        committed_owner[v] = ticket;
      } else if (committed_owner[v] == ticket) {
        double_commit.store(true);  // same ticket committing twice
      }
      // Owned by an older ticket: dropped, exactly as the batch driver
      // drops users already registered in a committed cluster.
    }
    coordinator.Release(ticket);
    ++turn;
    turn_cv.notify_all();
  };

  // Adversarial scheduling against the claim coordinator is the point of
  // this test; the deterministic pool would serialize the contention away.
  // nela-lint: allow(raw-thread) real contention needs real threads
  std::vector<std::thread> threads;
  for (uint32_t i = 0; i < kThreads; ++i) threads.emplace_back(worker, i);
  // nela-lint: allow(raw-thread) joining the same ad-hoc threads
  for (std::thread& t : threads) t.join();  // liveness: all terminate

  EXPECT_FALSE(double_commit.load());
  // The oldest ticket never loses a claim and commits everything it asked
  // for (wound-wait: only OLDER holders can reject a claim).
  EXPECT_EQ(claim_retries[0], 0u);
  for (VertexId v : candidates[0]) {
    EXPECT_EQ(committed_owner[v], tickets[0]) << "user " << v;
  }
  // With 8 threads racing a shared hotspot, contention must be observed.
  EXPECT_GT(coordinator.conflicts_observed() +
                coordinator.wounds_inflicted(),
            0u);

  // Determinism: the committed partition equals the sequential turn-order
  // computation -- each ticket takes whatever of its candidate is still
  // unowned. Scheduling may vary who retried; never who owns what.
  std::vector<Ticket> expected(kUsers, kNoTicket);
  for (uint32_t i = 0; i < kThreads; ++i) {
    for (VertexId v : candidates[i]) {
      if (expected[v] == kNoTicket) expected[v] = tickets[i];
    }
  }
  EXPECT_EQ(committed_owner, expected);
}

// ----------------------------------------------- ConcurrentCloakingSession

using World = fixtures::SmallWorld;

// This suite's worlds span 100-500 users; delta=0.1 keeps the larger ones
// connected without blowing up peer lists.
World MakeWorld(uint64_t seed, uint32_t users) {
  return fixtures::MakeWorld(seed, users, /*delta=*/0.1);
}

TEST(ConcurrentCloakingTest, NeighborsRequestingSimultaneously) {
  // Hosts picked adjacent to each other so their candidates overlap: the
  // classic conflict the paper's future work worries about.
  World world = MakeWorld(3, 300);
  Registry registry(world.dataset.size());
  ConcurrentCloakingSession session(world.graph, 5, &registry);
  // Host 0 and two of its graph neighbors.
  std::vector<VertexId> hosts = {0};
  for (const auto& edge : world.graph.Neighbors(0)) {
    hosts.push_back(edge.to);
    if (hosts.size() == 3) break;
  }
  ASSERT_GE(hosts.size(), 2u);
  auto outcomes = session.RunAll(hosts);
  ASSERT_TRUE(outcomes.ok());
  // Every host ends in exactly one cluster, and clusters are disjoint by
  // registry construction (reciprocity preserved under concurrency).
  for (size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_NE(outcomes.value()[i].cluster_id, kNoCluster);
    EXPECT_TRUE(registry.IsClustered(hosts[i]));
  }
}

TEST(ConcurrentCloakingTest, ManyConcurrentHostsSerializeWithoutDeadlock) {
  World world = MakeWorld(7, 500);
  Registry registry(world.dataset.size());
  ConcurrentCloakingSession session(world.graph, 5, &registry);
  util::Rng rng(11);
  std::vector<VertexId> hosts;
  for (uint32_t id : rng.SampleWithoutReplacement(500, 40)) {
    hosts.push_back(id);
  }
  auto outcomes = session.RunAll(hosts);
  ASSERT_TRUE(outcomes.ok());
  ASSERT_EQ(outcomes.value().size(), hosts.size());
  for (size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_NE(outcomes.value()[i].cluster_id, kNoCluster) << i;
  }
  // Reciprocity: no user is in two clusters (Register enforces it; the
  // session must never have tripped that error to get here). Spot-check
  // membership consistency:
  std::set<VertexId> seen;
  for (ClusterId id = 0; id < registry.cluster_count(); ++id) {
    for (VertexId v : registry.info(id).members) {
      EXPECT_TRUE(seen.insert(v).second) << "user in two clusters";
    }
  }
}

TEST(ConcurrentCloakingTest, ContentionIsObservedAndResolved) {
  // A dense clique-ish neighborhood with many simultaneous hosts must
  // produce real conflicts/wounds, and still terminate with everyone
  // served.
  World world = MakeWorld(13, 200);
  Registry registry(world.dataset.size());
  ConcurrentCloakingSession session(world.graph, 8, &registry);
  std::vector<VertexId> hosts;
  for (VertexId v = 0; v < 24; ++v) hosts.push_back(v);
  auto outcomes = session.RunAll(hosts);
  ASSERT_TRUE(outcomes.ok());
  uint32_t total_retries = 0;
  for (const auto& outcome : outcomes.value()) {
    EXPECT_NE(outcome.cluster_id, kNoCluster);
    total_retries += outcome.retries;
  }
  // With 24 overlapping requests some contention must have occurred.
  EXPECT_GT(session.coordinator().conflicts_observed() + total_retries, 0u);
}

TEST(ConcurrentCloakingTest, DuplicateHostsShareOneCluster) {
  World world = MakeWorld(17, 200);
  Registry registry(world.dataset.size());
  ConcurrentCloakingSession session(world.graph, 5, &registry);
  auto outcomes = session.RunAll({42, 42, 42});
  ASSERT_TRUE(outcomes.ok());
  const ClusterId id = outcomes.value()[0].cluster_id;
  EXPECT_EQ(outcomes.value()[1].cluster_id, id);
  EXPECT_EQ(outcomes.value()[2].cluster_id, id);
}

TEST(ConcurrentCloakingTest, RejectsBadHost) {
  World world = MakeWorld(19, 100);
  Registry registry(world.dataset.size());
  ConcurrentCloakingSession session(world.graph, 5, &registry);
  EXPECT_FALSE(session.RunAll({1000}).ok());
}

TEST(ConcurrentCloakingTest, MatchesSequentialResultWhenDisjoint) {
  // Hosts far apart never conflict; the concurrent session must produce
  // exactly the clusters a sequential run produces.
  World world = MakeWorld(23, 400);
  std::vector<VertexId> hosts = {1, 399};

  Registry concurrent_registry(world.dataset.size());
  ConcurrentCloakingSession session(world.graph, 5, &concurrent_registry);
  auto outcomes = session.RunAll(hosts);
  ASSERT_TRUE(outcomes.ok());

  Registry sequential_registry(world.dataset.size());
  DistributedTConnClusterer clusterer(world.graph, 5, &sequential_registry);
  for (VertexId host : hosts) {
    ASSERT_TRUE(clusterer.ClusterFor(host).ok());
  }
  for (size_t i = 0; i < hosts.size(); ++i) {
    EXPECT_EQ(
        concurrent_registry.info(outcomes.value()[i].cluster_id).members,
        sequential_registry.info(sequential_registry.ClusterOf(hosts[i]))
            .members);
  }
}

}  // namespace
}  // namespace nela::cluster
