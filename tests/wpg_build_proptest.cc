// Property tests for the parallel WPG builder: at every thread count the
// parallel pipeline must produce a graph bit-identical to the sequential
// reference — same edge list (order included), same CSR offsets, same
// adjacency order after SortAdjacencyByWeight — across random datasets,
// peer caps, and both proximity measures. Wpg::Digest() folds all of that
// into one value, so digest equality is the whole contract.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "util/proptest.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nela::graph {
namespace {

// Draws a dataset + build params from the case rng; `size` scales the
// population. Mixes uniform and clustered shapes, capped and uncapped peer
// lists, and both weight models.
std::optional<std::string> ParallelMatchesReference(util::Rng& rng,
                                                    uint32_t size) {
  const uint32_t users = 2 + size * 3;
  data::Dataset dataset = [&] {
    if (rng.NextUint64(2) == 0) return data::GenerateUniform(users, rng);
    data::ClusteredParams shape;
    shape.count = users;
    shape.num_clusters = 1 + static_cast<uint32_t>(rng.NextUint64(8));
    return data::GenerateClustered(shape, rng);
  }();

  WpgBuildParams params;
  // Spread delta so sparse, moderate, and near-complete graphs all occur.
  params.delta = 0.01 + rng.NextDouble(0.0, 0.3);
  params.max_peers = 1 + static_cast<uint32_t>(rng.NextUint64(12));
  params.cap_peers = rng.NextUint64(4) != 0;
  params.measure = rng.NextUint64(4) == 0 ? ProximityMeasure::kTdoaBucket
                                          : ProximityMeasure::kRssRank;

  auto reference = BuildWpgReference(dataset, params);
  if (!reference.ok()) {
    return "reference build failed: " +
           std::string(reference.status().message());
  }
  const uint64_t want = reference.value().Digest();

  // Grain 0 is the auto policy (sequential fallback at these sizes);
  // non-zero grains force pool dispatch, so tiny datasets exercise the
  // work-stealing path too. Grain 1 maximizes stealing pressure; the
  // random grain walks odd chunk boundaries.
  const uint64_t random_grain = 2 + rng.NextUint64(31);
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    for (const uint64_t grain : {uint64_t{0}, uint64_t{1}, random_grain}) {
      WpgBuildParams variant = params;
      variant.threads = threads;
      variant.grain = grain;
      auto parallel = BuildWpg(dataset, variant);
      if (!parallel.ok()) {
        return "parallel build failed at " + std::to_string(threads) +
               " threads grain " + std::to_string(grain) + ": " +
               std::string(parallel.status().message());
      }
      if (parallel.value().Digest() != want) {
        return "digest mismatch at " + std::to_string(threads) +
               " threads grain " + std::to_string(grain) +
               " (users=" + std::to_string(users) +
               " delta=" + std::to_string(params.delta) +
               " max_peers=" + std::to_string(params.max_peers) +
               " cap=" + std::to_string(params.cap_peers ? 1 : 0) + ")";
      }
      if (parallel.value().edge_count() != reference.value().edge_count()) {
        return "edge count mismatch at " + std::to_string(threads) +
               " threads grain " + std::to_string(grain);
      }
    }
  }
  return std::nullopt;
}

TEST(WpgParallelBuildProptest, DigestMatchesSequentialAcrossThreadCounts) {
  util::PropSpec spec;
  spec.name = "wpg_build_proptest";
  spec.base_seed = 0x9e3779b97f4a7c15ull;
  spec.iterations = 30;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 1;
  spec.max_size = 120;  // up to ~360 users per case

  auto failure = util::RunProperty(spec, ParallelMatchesReference);
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
}

// A fixed larger scenario at the paper's parameter shape: one deliberate
// non-property check so a digest regression on realistic density fails
// even with NELA_PROPTEST_ITERS=1.
TEST(WpgParallelBuildProptest, RealisticDensityDigestAcrossThreadCounts) {
  util::Rng rng(20260806);
  data::ClusteredParams shape;
  shape.count = 4000;
  const data::Dataset dataset = data::GenerateClustered(shape, rng);
  WpgBuildParams params;
  params.delta = 2e-3 * 5.0;  // scaled for the smaller population
  params.max_peers = 10;

  auto reference = BuildWpgReference(dataset, params);
  ASSERT_TRUE(reference.ok());
  const uint64_t want = reference.value().Digest();
  ASSERT_GT(reference.value().edge_count(), 0u);

  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    WpgBuildParams per_thread = params;
    per_thread.threads = threads;
    auto parallel = BuildWpg(dataset, per_thread);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value().Digest(), want)
        << "thread count " << threads << " changed the built graph";
  }
}

// The sequential-fallback threshold: datasets below
// kWpgSequentialFallbackUsers never wake the pool (the BENCH_wpg.json
// small-n regression fix), a non-zero grain overrides that, and datasets
// at/above the threshold dispatch — with identical digests either way.
TEST(WpgParallelBuildProptest, SequentialFallbackThreshold) {
  util::Rng rng(4242);
  const data::Dataset small =
      data::GenerateUniform(kWpgSequentialFallbackUsers - 1, rng);
  const data::Dataset at_threshold =
      data::GenerateUniform(kWpgSequentialFallbackUsers, rng);
  WpgBuildParams params;
  params.delta = 8e-3;
  params.max_peers = 10;
  params.threads = 4;

  WpgBuildStats fallback_stats;
  auto fallback = BuildWpg(small, params, nullptr, &fallback_stats);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(fallback_stats.parallel_dispatches, 0u)
      << "below the threshold no phase may wake the pool";
  for (const WpgPhaseStats& phase : fallback_stats.phases) {
    EXPECT_FALSE(phase.dispatched) << "phase " << phase.name;
  }
  EXPECT_EQ(fallback_stats.threads, 4u);
  EXPECT_GT(fallback_stats.total_wall_seconds, 0.0);
  EXPECT_GT(fallback_stats.CriticalPathSeconds(), 0.0);

  WpgBuildParams forced = params;
  forced.grain = 1;  // non-zero grain overrides the fallback
  WpgBuildStats forced_stats;
  auto dispatched = BuildWpg(small, forced, nullptr, &forced_stats);
  ASSERT_TRUE(dispatched.ok());
  EXPECT_GT(forced_stats.parallel_dispatches, 0u);
  EXPECT_EQ(dispatched.value().Digest(), fallback.value().Digest())
      << "dispatch policy changed the built graph";

  WpgBuildStats threshold_stats;
  auto big = BuildWpg(at_threshold, params, nullptr, &threshold_stats);
  ASSERT_TRUE(big.ok());
  EXPECT_GT(threshold_stats.parallel_dispatches, 0u)
      << "at the threshold the pool must dispatch";
}

// An externally supplied pool must behave exactly like an owned one.
TEST(WpgParallelBuildProptest, ExternalPoolMatchesOwnedPool) {
  util::Rng rng(77);
  const data::Dataset dataset = data::GenerateUniform(600, rng);
  WpgBuildParams params;
  params.delta = 0.05;
  params.max_peers = 6;
  auto reference = BuildWpgReference(dataset, params);
  ASSERT_TRUE(reference.ok());

  util::ThreadPool pool(3);
  auto parallel = BuildWpg(dataset, params, &pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.value().Digest(), reference.value().Digest());
}

}  // namespace
}  // namespace nela::graph
