// Property tests for the parallel WPG builder: at every thread count the
// parallel pipeline must produce a graph bit-identical to the sequential
// reference — same edge list (order included), same CSR offsets, same
// adjacency order after SortAdjacencyByWeight — across random datasets,
// peer caps, and both proximity measures. Wpg::Digest() folds all of that
// into one value, so digest equality is the whole contract.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "util/proptest.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace nela::graph {
namespace {

// Draws a dataset + build params from the case rng; `size` scales the
// population. Mixes uniform and clustered shapes, capped and uncapped peer
// lists, and both weight models.
std::optional<std::string> ParallelMatchesReference(util::Rng& rng,
                                                    uint32_t size) {
  const uint32_t users = 2 + size * 3;
  data::Dataset dataset = [&] {
    if (rng.NextUint64(2) == 0) return data::GenerateUniform(users, rng);
    data::ClusteredParams shape;
    shape.count = users;
    shape.num_clusters = 1 + static_cast<uint32_t>(rng.NextUint64(8));
    return data::GenerateClustered(shape, rng);
  }();

  WpgBuildParams params;
  // Spread delta so sparse, moderate, and near-complete graphs all occur.
  params.delta = 0.01 + rng.NextDouble(0.0, 0.3);
  params.max_peers = 1 + static_cast<uint32_t>(rng.NextUint64(12));
  params.cap_peers = rng.NextUint64(4) != 0;
  params.measure = rng.NextUint64(4) == 0 ? ProximityMeasure::kTdoaBucket
                                          : ProximityMeasure::kRssRank;

  auto reference = BuildWpgReference(dataset, params);
  if (!reference.ok()) {
    return "reference build failed: " +
           std::string(reference.status().message());
  }
  const uint64_t want = reference.value().Digest();

  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    WpgBuildParams per_thread = params;
    per_thread.threads = threads;
    auto parallel = BuildWpg(dataset, per_thread);
    if (!parallel.ok()) {
      return "parallel build failed at " + std::to_string(threads) +
             " threads: " + std::string(parallel.status().message());
    }
    if (parallel.value().Digest() != want) {
      return "digest mismatch at " + std::to_string(threads) +
             " threads (users=" + std::to_string(users) +
             " delta=" + std::to_string(params.delta) +
             " max_peers=" + std::to_string(params.max_peers) +
             " cap=" + std::to_string(params.cap_peers ? 1 : 0) + ")";
    }
    if (parallel.value().edge_count() != reference.value().edge_count()) {
      return "edge count mismatch at " + std::to_string(threads) +
             " threads";
    }
  }
  return std::nullopt;
}

TEST(WpgParallelBuildProptest, DigestMatchesSequentialAcrossThreadCounts) {
  util::PropSpec spec;
  spec.name = "wpg_build_proptest";
  spec.base_seed = 0x9e3779b97f4a7c15ull;
  spec.iterations = 30;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 1;
  spec.max_size = 120;  // up to ~360 users per case

  auto failure = util::RunProperty(spec, ParallelMatchesReference);
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
}

// A fixed larger scenario at the paper's parameter shape: one deliberate
// non-property check so a digest regression on realistic density fails
// even with NELA_PROPTEST_ITERS=1.
TEST(WpgParallelBuildProptest, RealisticDensityDigestAcrossThreadCounts) {
  util::Rng rng(20260806);
  data::ClusteredParams shape;
  shape.count = 4000;
  const data::Dataset dataset = data::GenerateClustered(shape, rng);
  WpgBuildParams params;
  params.delta = 2e-3 * 5.0;  // scaled for the smaller population
  params.max_peers = 10;

  auto reference = BuildWpgReference(dataset, params);
  ASSERT_TRUE(reference.ok());
  const uint64_t want = reference.value().Digest();
  ASSERT_GT(reference.value().edge_count(), 0u);

  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    WpgBuildParams per_thread = params;
    per_thread.threads = threads;
    auto parallel = BuildWpg(dataset, per_thread);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel.value().Digest(), want)
        << "thread count " << threads << " changed the built graph";
  }
}

// An externally supplied pool must behave exactly like an owned one.
TEST(WpgParallelBuildProptest, ExternalPoolMatchesOwnedPool) {
  util::Rng rng(77);
  const data::Dataset dataset = data::GenerateUniform(600, rng);
  WpgBuildParams params;
  params.delta = 0.05;
  params.max_peers = 6;
  auto reference = BuildWpgReference(dataset, params);
  ASSERT_TRUE(reference.ok());

  util::ThreadPool pool(3);
  auto parallel = BuildWpg(dataset, params, &pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel.value().Digest(), reference.value().Digest());
}

}  // namespace
}  // namespace nela::graph
