// Tests for the durability subsystem: WAL record framing and torn-tail
// handling, checkpoint round trips (including torn-checkpoint rejection),
// and checkpoint+WAL recovery replaying to a bit-identical registry digest
// -- idempotently across repeated recoveries.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/registry.h"
#include "durability/checkpoint.h"
#include "durability/durable_registry.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "geo/rect.h"

namespace nela::durability {
namespace {

constexpr uint32_t kUsers = 64;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

// Applies a small deterministic mutation history through `durable`.
void ApplyHistory(DurableRegistry& durable) {
  auto c0 = durable.Register({1, 2, 3, 4, 5}, 0.25, true);
  ASSERT_TRUE(c0.ok()) << c0.status().ToString();
  auto c1 = durable.Register({10, 11, 12}, 0.5, false);
  ASSERT_TRUE(c1.ok()) << c1.status().ToString();
  ASSERT_TRUE(
      durable.SetRegion(c0.value(), geo::Rect(0.5, 1.25, 2.5, 4.0)).ok());
  auto c2 = durable.Register({20, 21, 22, 23, 24, 25}, 0.125, true);
  ASSERT_TRUE(c2.ok()) << c2.status().ToString();
  ASSERT_TRUE(
      durable.SetRegion(c2.value(), geo::Rect(-3.0, -1.0, 0.0, 0.5)).ok());
}

TEST(WalRecordTest, RegisterRecordRoundTrips) {
  WalRecord record;
  record.lsn = 7;
  record.type = WalRecordType::kRegister;
  record.members = {3, 1, 4, 1u << 20};
  record.connectivity = 0.8125;
  record.valid = false;
  auto decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().lsn, 7u);
  EXPECT_EQ(decoded.value().type, WalRecordType::kRegister);
  EXPECT_EQ(decoded.value().members, record.members);
  EXPECT_EQ(decoded.value().connectivity, 0.8125);
  EXPECT_FALSE(decoded.value().valid);
}

TEST(WalRecordTest, SetRegionRecordRoundTripsBitExactly) {
  WalRecord record;
  record.lsn = 9;
  record.type = WalRecordType::kSetRegion;
  record.cluster_id = 12;
  record.region = geo::Rect(0.1, -2.75, 0.30000000000000004, 1e300);
  auto decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().cluster_id, 12u);
  EXPECT_EQ(decoded.value().region, record.region);
}

TEST(WalRecordTest, TruncatedPayloadIsRejected) {
  WalRecord record;
  record.lsn = 1;
  record.members = {1, 2, 3};
  const std::string payload = EncodeWalRecord(record);
  EXPECT_FALSE(DecodeWalRecord(payload.substr(0, payload.size() - 1)).ok());
}

TEST(WalWriterTest, AppendedRecordsReadBackInOrder) {
  const std::string path = TempPath("wal_roundtrip.log");
  {
    auto writer = WalWriter::Open(path, /*truncate=*/true);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
      WalRecord record;
      record.lsn = lsn;
      record.members = {static_cast<graph::VertexId>(lsn), 50};
      ASSERT_TRUE(writer.value()->Append(record).ok());
    }
    EXPECT_EQ(writer.value()->records_appended(), 5u);
  }
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value().torn_bytes, 0u);
  ASSERT_EQ(read.value().records.size(), 5u);
  for (uint64_t lsn = 1; lsn <= 5; ++lsn) {
    EXPECT_EQ(read.value().records[lsn - 1].lsn, lsn);
  }
}

TEST(WalWriterTest, MissingFileReadsAsEmptyLog) {
  auto read = ReadWal(TempPath("wal_never_written.log"));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read.value().records.empty());
  EXPECT_EQ(read.value().torn_bytes, 0u);
}

TEST(WalWriterTest, TornTailIsDetectedTruncatedAndAppendableAgain) {
  const std::string path = TempPath("wal_torn.log");
  WalRecord torn;
  torn.lsn = 4;
  torn.members = {7, 8, 9};
  {
    auto writer = WalWriter::Open(path, /*truncate=*/true);
    ASSERT_TRUE(writer.ok());
    for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
      WalRecord record;
      record.lsn = lsn;
      record.members = {static_cast<graph::VertexId>(lsn)};
      ASSERT_TRUE(writer.value()->Append(record).ok());
    }
    const size_t frame_size = EncodeWalRecord(torn).size() + 12;
    ASSERT_TRUE(writer.value()->AppendTorn(torn, frame_size / 2).ok());
  }
  auto read = ReadWal(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value().records.size(), 3u);
  EXPECT_GT(read.value().torn_bytes, 0u);

  auto removed = TruncateTornTail(path);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(removed.value(), read.value().torn_bytes);

  // A reopened writer appends after the intact prefix.
  {
    auto writer = WalWriter::Open(path, /*truncate=*/false);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append(torn).ok());
  }
  auto reread = ReadWal(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().torn_bytes, 0u);
  ASSERT_EQ(reread.value().records.size(), 4u);
  EXPECT_EQ(reread.value().records[3].lsn, 4u);
}

TEST(CheckpointTest, RegistryImageRoundTripsToIdenticalDigest) {
  cluster::Registry registry(kUsers);
  DurableRegistry durable(&registry, nullptr, nullptr, /*next_lsn=*/1);
  ApplyHistory(durable);

  const std::string path = TempPath("checkpoint_roundtrip.ckpt");
  const std::string encoded = EncodeCheckpoint(registry, durable.last_lsn());
  ASSERT_TRUE(WriteCheckpointFile(path, encoded).ok());

  auto image = ReadCheckpoint(path);
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ(image.value().user_count, kUsers);
  EXPECT_EQ(image.value().covered_lsn, durable.last_lsn());
  auto restored = RestoreRegistry(image.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->Digest(), registry.Digest());
}

TEST(CheckpointTest, TornCheckpointIsRejected) {
  cluster::Registry registry(kUsers);
  DurableRegistry durable(&registry, nullptr, nullptr, /*next_lsn=*/1);
  ApplyHistory(durable);
  const std::string path = TempPath("checkpoint_torn.ckpt");
  const std::string encoded = EncodeCheckpoint(registry, durable.last_lsn());
  ASSERT_TRUE(
      WriteTornCheckpointFile(path, encoded, encoded.size() / 2).ok());
  EXPECT_FALSE(ReadCheckpoint(path).ok());
}

TEST(RecoveryTest, WalOnlyReplayRebuildsIdenticalDigest) {
  const std::string wal_path = TempPath("recovery_wal_only.log");
  cluster::Registry live(kUsers);
  {
    auto wal = WalWriter::Open(wal_path, /*truncate=*/true);
    ASSERT_TRUE(wal.ok());
    DurableRegistry durable(&live, wal.value().get(), nullptr, 1);
    ApplyHistory(durable);
  }

  RecoveryConfig config;
  config.wal_path = wal_path;
  config.user_count = kUsers;
  RecoveryManager manager(config);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().registry->Digest(), live.Digest());
  EXPECT_EQ(recovered.value().records_replayed, 5u);
  EXPECT_EQ(recovered.value().records_skipped, 0u);
  EXPECT_EQ(recovered.value().next_lsn, 6u);

  // Idempotency: recovering again from the same files yields the same
  // state, bit for bit.
  auto again = manager.Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().registry->Digest(),
            recovered.value().registry->Digest());
  EXPECT_EQ(again.value().next_lsn, recovered.value().next_lsn);
}

TEST(RecoveryTest, CheckpointBoundsReplayAndTornCheckpointFallsBack) {
  const std::string dir = TempPath("recovery_ckpt_dir");
  std::filesystem::create_directories(dir);
  const std::string wal_path = dir + "/service.wal";
  cluster::Registry live(kUsers);
  {
    auto wal = WalWriter::Open(wal_path, /*truncate=*/true);
    ASSERT_TRUE(wal.ok());
    DurableRegistry durable(&live, wal.value().get(), nullptr, 1);
    auto c0 = durable.Register({1, 2, 3}, 0.5, true);
    ASSERT_TRUE(c0.ok());
    ASSERT_TRUE(durable.Checkpoint(CheckpointPath(dir, 1)).ok());
    ASSERT_TRUE(
        durable.SetRegion(c0.value(), geo::Rect(0.0, 0.0, 1.0, 1.0)).ok());
    auto c1 = durable.Register({8, 9, 10, 11}, 0.25, true);
    ASSERT_TRUE(c1.ok());
    // Newest checkpoint is torn (kMidCheckpoint crash): recovery must fall
    // back to checkpoint 1 and replay the later records from the WAL.
    const std::string torn = EncodeCheckpoint(live, durable.last_lsn());
    ASSERT_TRUE(WriteTornCheckpointFile(CheckpointPath(dir, 2), torn,
                                        torn.size() / 2)
                    .ok());
  }

  RecoveryConfig config;
  config.wal_path = wal_path;
  config.checkpoint_dir = dir;
  config.user_count = kUsers;
  RecoveryManager manager(config);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value().registry->Digest(), live.Digest());
  EXPECT_EQ(recovered.value().checkpoint_seq, 1u);
  EXPECT_EQ(recovered.value().max_checkpoint_seq, 2u);
  EXPECT_EQ(recovered.value().checkpoints_rejected, 1u);
  EXPECT_EQ(recovered.value().records_skipped, 1u);   // covered by ckpt 1
  EXPECT_EQ(recovered.value().records_replayed, 2u);  // region + cluster
}

TEST(RecoveryTest, TornWalTailIsDiscardedOnRecovery) {
  const std::string wal_path = TempPath("recovery_torn_tail.log");
  cluster::Registry live(kUsers);
  {
    auto wal = WalWriter::Open(wal_path, /*truncate=*/true);
    ASSERT_TRUE(wal.ok());
    DurableRegistry durable(&live, wal.value().get(), nullptr, 1);
    ApplyHistory(durable);
    // A mid-append crash tears the final record; it was never applied, so
    // the pre-crash in-memory digest (== `live`) excludes it too.
    WalRecord torn;
    torn.lsn = durable.last_lsn() + 1;
    torn.members = {40, 41, 42};
    const size_t frame_size = EncodeWalRecord(torn).size() + 12;
    ASSERT_TRUE(wal.value()->AppendTorn(torn, frame_size / 2).ok());
  }

  RecoveryConfig config;
  config.wal_path = wal_path;
  config.user_count = kUsers;
  RecoveryManager manager(config);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(recovered.value().torn_bytes_discarded, 0u);
  EXPECT_EQ(recovered.value().registry->Digest(), live.Digest());

  // Idempotent: the tail is already gone on the second pass.
  auto again = manager.Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().torn_bytes_discarded, 0u);
  EXPECT_EQ(again.value().registry->Digest(), live.Digest());
}

TEST(WalRecordTest, RegisterBatchRecordRoundTrips) {
  WalRecord record;
  record.lsn = 11;
  record.type = WalRecordType::kRegisterBatch;
  record.clusters.push_back(WalClusterImage{{5, 6, 7}, 0.375, true});
  record.clusters.push_back(WalClusterImage{{1u << 19, 2}, 0.0625, false});
  auto decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().lsn, 11u);
  EXPECT_EQ(decoded.value().type, WalRecordType::kRegisterBatch);
  ASSERT_EQ(decoded.value().clusters.size(), 2u);
  EXPECT_EQ(decoded.value().clusters[0].members, record.clusters[0].members);
  EXPECT_EQ(decoded.value().clusters[0].connectivity, 0.375);
  EXPECT_TRUE(decoded.value().clusters[0].valid);
  EXPECT_EQ(decoded.value().clusters[1].members, record.clusters[1].members);
  EXPECT_EQ(decoded.value().clusters[1].connectivity, 0.0625);
  EXPECT_FALSE(decoded.value().clusters[1].valid);
}

TEST(RecoveryTest, TornBatchHidesTheWholeCommit) {
  // One commit registering several clusters must be all-or-nothing: a torn
  // kRegisterBatch tail leaves no partial group behind, and an intact one
  // replays every cluster.
  const std::string wal_path = TempPath("recovery_torn_batch.log");
  cluster::Registry live(kUsers);
  std::vector<cluster::ClusterInfo> batch(2);
  batch[0].members = {30, 31, 32, 33};
  batch[0].connectivity = 0.75;
  batch[0].valid = true;
  batch[1].members = {40, 41, 42};
  batch[1].connectivity = 0.5;
  batch[1].valid = true;
  {
    auto wal = WalWriter::Open(wal_path, /*truncate=*/true);
    ASSERT_TRUE(wal.ok());
    DurableRegistry durable(&live, wal.value().get(), nullptr, 1);
    ApplyHistory(durable);
    ASSERT_TRUE(durable.RegisterBatch(batch).ok());
    // A second batch commit crashes mid-append: torn on disk, not applied.
    WalRecord torn;
    torn.lsn = durable.last_lsn() + 1;
    torn.type = WalRecordType::kRegisterBatch;
    torn.clusters.push_back(WalClusterImage{{50, 51, 52}, 0.25, true});
    torn.clusters.push_back(WalClusterImage{{53, 54, 55}, 0.125, true});
    const size_t frame_size = EncodeWalRecord(torn).size() + 12;
    ASSERT_TRUE(wal.value()->AppendTorn(torn, frame_size / 2).ok());
  }

  RecoveryConfig config;
  config.wal_path = wal_path;
  config.user_count = kUsers;
  RecoveryManager manager(config);
  auto recovered = manager.Recover();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_GT(recovered.value().torn_bytes_discarded, 0u);
  // The intact batch replayed whole (both clusters), the torn one not at
  // all -- no user from the torn group is clustered.
  EXPECT_EQ(recovered.value().registry->Digest(), live.Digest());
  EXPECT_TRUE(recovered.value().registry->IsClustered(33));
  EXPECT_TRUE(recovered.value().registry->IsClustered(42));
  for (graph::VertexId user : {50u, 51u, 52u, 53u, 54u, 55u}) {
    EXPECT_FALSE(recovered.value().registry->IsClustered(user));
  }
}

}  // namespace
}  // namespace nela::durability
