#include <gtest/gtest.h>

#include "data/dataset.h"
#include "lbs/poi_database.h"
#include "lbs/server.h"

namespace nela::lbs {
namespace {

data::Dataset FourCorners() {
  return data::Dataset({{0.1, 0.1}, {0.9, 0.1}, {0.1, 0.9}, {0.9, 0.9}});
}

TEST(PoiDatabaseTest, RangeQueryFindsContainedPois) {
  const data::Dataset dataset = FourCorners();
  const PoiDatabase database(dataset, 0.2);
  auto hits = database.RangeQuery(geo::Rect(0.0, 0.0, 0.5, 0.5));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(database.CountInRange(geo::Rect(0.0, 0.0, 1.0, 1.0)), 4u);
  EXPECT_EQ(database.CountInRange(geo::Rect(0.4, 0.4, 0.6, 0.6)), 0u);
  EXPECT_EQ(database.CountInRange(geo::Rect()), 0u);
}

TEST(PoiDatabaseTest, BorderInclusive) {
  const data::Dataset dataset = FourCorners();
  const PoiDatabase database(dataset);
  EXPECT_EQ(database.CountInRange(geo::Rect(0.1, 0.1, 0.9, 0.1)), 2u);
}

TEST(LbsServerTest, ReplyCostScalesWithCandidates) {
  const data::Dataset dataset = FourCorners();
  const PoiDatabase database(dataset);
  const LbsServer server(&database, 1000.0);
  const ServiceReply all = server.RangeQuery(geo::Rect(0.0, 0.0, 1.0, 1.0));
  EXPECT_EQ(all.candidate_count, 4u);
  EXPECT_DOUBLE_EQ(all.reply_cost, 4000.0);
  const ServiceReply one = server.RangeQuery(geo::Rect(0.0, 0.0, 0.2, 0.2));
  EXPECT_EQ(one.candidate_count, 1u);
  EXPECT_DOUBLE_EQ(one.reply_cost, 1000.0);
  EXPECT_EQ(server.queries_served(), 2u);
}

TEST(LbsServerTest, LargerCloakedRegionCostsMore) {
  // The privacy/service-cost trade-off the paper centers on: growing the
  // cloaked region can only grow the reply.
  const data::Dataset dataset = FourCorners();
  const PoiDatabase database(dataset);
  const LbsServer server(&database, 10.0);
  const geo::Rect small(0.05, 0.05, 0.15, 0.15);
  const geo::Rect large = small.Inflated(0.9);
  EXPECT_LE(server.RangeQuery(small).reply_cost,
            server.RangeQuery(large).reply_cost);
}

TEST(LbsServerTest, NetworkAccounting) {
  const data::Dataset dataset = FourCorners();
  const PoiDatabase database(dataset);
  const LbsServer server(&database, 10.0);
  net::Network network(4);
  server.RangeQuery(geo::Rect(0.0, 0.0, 1.0, 1.0), &network, 2);
  EXPECT_EQ(network.of_kind(net::MessageKind::kServiceRequest).messages, 1u);
  EXPECT_EQ(network.of_kind(net::MessageKind::kServiceReply).messages, 1u);
  EXPECT_EQ(network.of_kind(net::MessageKind::kServiceReply).bytes,
            4u * 64u);
}

}  // namespace
}  // namespace nela::lbs
