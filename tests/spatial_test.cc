#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "geo/point.h"
#include "spatial/grid_index.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace nela::spatial {
namespace {

// Brute-force oracle for radius queries.
std::vector<Neighbor> BruteRadius(const std::vector<geo::Point>& points,
                                  const geo::Point& query, double radius,
                                  uint32_t self) {
  std::vector<Neighbor> out;
  for (uint32_t i = 0; i < points.size(); ++i) {
    if (i == self) continue;
    const double d2 = geo::SquaredDistance(query, points[i]);
    if (d2 <= radius * radius) out.push_back(Neighbor{i, d2});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.squared_distance < b.squared_distance ||
           (a.squared_distance == b.squared_distance && a.id < b.id);
  });
  return out;
}

TEST(GridIndexTest, RadiusQuerySimple) {
  const std::vector<geo::Point> points = {
      {0.5, 0.5}, {0.52, 0.5}, {0.5, 0.53}, {0.9, 0.9}};
  const GridIndex index(points, 0.05);
  const std::vector<Neighbor> near =
      index.RadiusQuery(points[0], 0.05, /*self=*/0);
  ASSERT_EQ(near.size(), 2u);
  EXPECT_EQ(near[0].id, 1u);  // 0.02 away
  EXPECT_EQ(near[1].id, 2u);  // 0.03 away
}

TEST(GridIndexTest, SelfIsExcluded) {
  const std::vector<geo::Point> points = {{0.5, 0.5}, {0.5, 0.5}};
  const GridIndex index(points, 0.1);
  const std::vector<Neighbor> near = index.RadiusQuery(points[0], 0.1, 0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].id, 1u);
}

TEST(GridIndexTest, ZeroRadiusFindsCoincidentPoints) {
  const std::vector<geo::Point> points = {{0.5, 0.5}, {0.5, 0.5}, {0.6, 0.5}};
  const GridIndex index(points, 0.1);
  const std::vector<Neighbor> near = index.RadiusQuery(points[0], 0.0, 0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].id, 1u);
}

TEST(GridIndexTest, NearestNeighborsOrdering) {
  const std::vector<geo::Point> points = {
      {0.5, 0.5}, {0.6, 0.5}, {0.55, 0.5}, {0.9, 0.9}, {0.51, 0.5}};
  const GridIndex index(points, 0.02);
  const std::vector<Neighbor> nn = index.NearestNeighbors(points[0], 3, 0);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 4u);
  EXPECT_EQ(nn[1].id, 2u);
  EXPECT_EQ(nn[2].id, 1u);
}

TEST(GridIndexTest, NearestNeighborsWhenFewerPointsExist) {
  const std::vector<geo::Point> points = {{0.1, 0.1}, {0.9, 0.9}};
  const GridIndex index(points, 0.1);
  const std::vector<Neighbor> nn = index.NearestNeighbors(points[0], 10, 0);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 1u);
}

TEST(GridIndexTest, RangeQueryInclusiveBorders) {
  const std::vector<geo::Point> points = {
      {0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}, {0.5, 1.01}};
  const GridIndex index(points, 0.25);
  std::vector<uint32_t> hits = index.RangeQuery(geo::Rect(0.0, 0.0, 1.0, 1.0));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_TRUE(index.RangeQuery(geo::Rect()).empty());
}

// Property sweep: the grid index must agree with brute force for every
// combination of dataset size and cell size.
struct GridParam {
  uint32_t count;
  double cell_size;
  double radius;
};

class GridIndexPropertyTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(GridIndexPropertyTest, RadiusAgreesWithBruteForce) {
  const GridParam param = GetParam();
  util::Rng rng(1234 + param.count);
  const data::Dataset dataset = data::GenerateUniform(param.count, rng);
  const GridIndex index(dataset.points(), param.cell_size);
  for (uint32_t q = 0; q < std::min<uint32_t>(param.count, 25); ++q) {
    const auto expected =
        BruteRadius(dataset.points(), dataset.point(q), param.radius, q);
    const auto actual = index.RadiusQuery(dataset.point(q), param.radius, q);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(actual[i].squared_distance,
                       expected[i].squared_distance);
    }
  }
}

TEST_P(GridIndexPropertyTest, KnnAgreesWithBruteForce) {
  const GridParam param = GetParam();
  util::Rng rng(99 + param.count);
  const data::Dataset dataset = data::GenerateUniform(param.count, rng);
  const GridIndex index(dataset.points(), param.cell_size);
  const uint32_t kCount = 5;
  for (uint32_t q = 0; q < std::min<uint32_t>(param.count, 10); ++q) {
    auto all = BruteRadius(dataset.points(), dataset.point(q), 2.0, q);
    const auto actual = index.NearestNeighbors(dataset.point(q), kCount, q);
    const size_t expected_size =
        std::min<size_t>(kCount, dataset.size() - 1);
    ASSERT_EQ(actual.size(), expected_size);
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].squared_distance, all[i].squared_distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridIndexPropertyTest,
    ::testing::Values(GridParam{1, 0.1, 0.2}, GridParam{10, 0.01, 0.05},
                      GridParam{100, 0.05, 0.1}, GridParam{500, 0.002, 0.01},
                      GridParam{1000, 0.5, 0.3}, GridParam{2000, 0.03, 0.02}));

TEST(GridIndexTest, EqualDistancesOrderByAscendingId) {
  // Four points at exactly the same distance from the query: the tie group
  // must come back ordered by id, and a kNN cut landing inside the group
  // must keep the lowest ids -- never an arbitrary (e.g. cell-traversal)
  // subset.
  const std::vector<geo::Point> points = {
      {0.5, 0.5},                           // query (self)
      {0.6, 0.5}, {0.5, 0.6}, {0.4, 0.5}, {0.5, 0.4},  // tie group, d=0.1
      {0.9, 0.9}};
  const GridIndex index(points, 0.07);
  const auto near = index.RadiusQuery(points[0], 0.15, 0);
  ASSERT_EQ(near.size(), 4u);
  for (size_t i = 0; i < near.size(); ++i) {
    EXPECT_EQ(near[i].id, static_cast<uint32_t>(i + 1));
  }
  const auto nn = index.NearestNeighbors(points[0], 2, 0);
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 1u);
  EXPECT_EQ(nn[1].id, 2u);
}

TEST(GridIndexTest, KnnDeterministicUnderInsertionOrder) {
  // Seeded property: points snapped to a coarse lattice (forcing plenty of
  // exact distance ties), indexed twice -- once as generated and once under
  // a random permutation. The answers must describe the same geometry: a
  // radius query returns the same point set, kNN returns the same distance
  // profile, and within each index ties are ordered by ascending id.
  util::PropSpec spec;
  spec.name = "spatial_test";
  spec.base_seed = 0x9d1dull;
  spec.iterations = 20;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 8;
  spec.max_size = 64;

  auto failure = util::RunProperty(
      spec, [](util::Rng& rng, uint32_t size) -> std::optional<std::string> {
        const uint32_t n = size;
        std::vector<geo::Point> points(n);
        for (geo::Point& p : points) {
          // 8x8 lattice: with n up to 64 points, exact ties are common.
          p.x = static_cast<double>(rng.NextUint64(8)) / 8.0;
          p.y = static_cast<double>(rng.NextUint64(8)) / 8.0;
        }
        std::vector<uint32_t> perm(n);
        for (uint32_t i = 0; i < n; ++i) perm[i] = i;
        rng.Shuffle(perm);
        std::vector<geo::Point> shuffled(n);
        for (uint32_t i = 0; i < n; ++i) shuffled[i] = points[perm[i]];

        const GridIndex original(points, 0.1);
        const GridIndex permuted(shuffled, 0.1);
        const uint32_t kCount = 1 + static_cast<uint32_t>(rng.NextUint64(6));
        for (uint32_t trial = 0; trial < 4; ++trial) {
          const geo::Point query{rng.NextDouble(), rng.NextDouble()};
          const uint32_t no_self = n;  // out-of-range id excludes nothing

          // Radius queries must return the same point set...
          const auto a = original.RadiusQuery(query, 0.3, no_self);
          const auto b = permuted.RadiusQuery(query, 0.3, no_self);
          if (a.size() != b.size()) {
            return "radius result sizes differ: " + std::to_string(a.size()) +
                   " vs " + std::to_string(b.size());
          }
          for (size_t i = 0; i < a.size(); ++i) {
            // ...with identical distance profiles (ties make per-rank point
            // identity id-dependent, but the distances are geometry only)...
            if (a[i].squared_distance != b[i].squared_distance) {
              return "distance profiles diverge at rank " + std::to_string(i);
            }
            // ...and within each index, ties ordered by ascending id.
            if (i > 0 &&
                a[i].squared_distance == a[i - 1].squared_distance &&
                a[i].id <= a[i - 1].id) {
              return "tie not ordered by id at rank " + std::to_string(i);
            }
          }

          // kNN: same distance profile regardless of insertion order.
          const auto ka = original.NearestNeighbors(query, kCount, no_self);
          const auto kb = permuted.NearestNeighbors(query, kCount, no_self);
          if (ka.size() != kb.size()) {
            return std::string("kNN result sizes differ");
          }
          for (size_t i = 0; i < ka.size(); ++i) {
            if (ka[i].squared_distance != kb[i].squared_distance) {
              return "kNN distance profiles diverge at rank " +
                     std::to_string(i);
            }
          }
        }
        return std::nullopt;
      });
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
}

TEST(GridIndexTest, HandlesPointsOutsideUnitSquare) {
  const std::vector<geo::Point> points = {{-0.5, -0.5}, {1.5, 1.5}, {0.5, 0.5}};
  const GridIndex index(points, 0.1);
  const auto near = index.RadiusQuery(points[0], 3.0, 0);
  EXPECT_EQ(near.size(), 2u);
}

TEST(GridIndexTest, RadiusQueryIntoAppendsAndMatchesRadiusQuery) {
  util::Rng rng(321);
  const data::Dataset dataset = data::GenerateUniform(400, rng);
  const GridIndex index(dataset.points(), 0.05);
  GridIndex::QueryScratch scratch;
  std::vector<uint32_t> out;
  std::vector<uint32_t> counts;
  for (uint32_t q = 0; q < 40; ++q) {
    counts.push_back(index.RadiusQueryInto(dataset.point(q), 0.08, q,
                                           &scratch, &out));
  }
  // Append semantics: `out` accumulates all queries back to back...
  uint64_t total = 0;
  for (const uint32_t c : counts) total += c;
  ASSERT_EQ(out.size(), total);
  // ...and each packed slice equals the allocating query's id sequence.
  size_t cursor = 0;
  for (uint32_t q = 0; q < 40; ++q) {
    const auto expected = index.RadiusQuery(dataset.point(q), 0.08, q);
    ASSERT_EQ(counts[q], expected.size()) << "query " << q;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(out[cursor + i], expected[i].id) << "query " << q;
    }
    cursor += counts[q];
  }
}

TEST(GridIndexTest, NearestNeighborsFromDenseHomeCell) {
  // All requested neighbors live in the query's own cell, so the
  // occupancy-seeded search must still certify against the surrounding
  // ring (a point in an adjacent cell can be closer than a same-cell one).
  std::vector<geo::Point> points;
  for (uint32_t i = 0; i < 50; ++i) {
    points.push_back({0.55 + 1e-4 * i, 0.55});
  }
  points.push_back({0.599, 0.55});   // same cell, far side
  points.push_back({0.601, 0.55});   // adjacent cell, nearer than many
  const GridIndex index(points, 0.1);
  const auto nn = index.NearestNeighbors({0.598, 0.55}, 3,
                                       static_cast<uint32_t>(points.size()));
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 50u);  // 0.599: distance 0.001
  EXPECT_EQ(nn[1].id, 51u);  // 0.601: distance 0.003 — crosses the cell edge
}

TEST(GridIndexTest, NearestNeighborsQueryOutsideGrid) {
  const std::vector<geo::Point> points = {
      {0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}, {0.8, 0.8}};
  const GridIndex index(points, 0.05);
  // Query far outside the indexed extent: home-cell occupancy is zero and
  // the ring expansion must still find the true nearest points.
  const auto nn = index.NearestNeighbors({-2.0, -2.0}, 2,
                                       static_cast<uint32_t>(points.size()));
  ASSERT_EQ(nn.size(), 2u);
  EXPECT_EQ(nn[0].id, 0u);
  EXPECT_EQ(nn[1].id, 1u);
}

TEST(GridIndexTest, NearestNeighborsCountExceedsDataset) {
  util::Rng rng(555);
  const data::Dataset dataset = data::GenerateUniform(20, rng);
  const GridIndex index(dataset.points(), 0.25);
  const auto nn = index.NearestNeighbors(dataset.point(0), 100, 0);
  EXPECT_EQ(nn.size(), 19u);  // everyone but self
  for (size_t i = 1; i < nn.size(); ++i) {
    EXPECT_LE(nn[i - 1].squared_distance, nn[i].squared_distance);
  }
}

}  // namespace
}  // namespace nela::spatial
