#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "geo/point.h"
#include "spatial/grid_index.h"
#include "util/rng.h"

namespace nela::spatial {
namespace {

// Brute-force oracle for radius queries.
std::vector<Neighbor> BruteRadius(const std::vector<geo::Point>& points,
                                  const geo::Point& query, double radius,
                                  uint32_t self) {
  std::vector<Neighbor> out;
  for (uint32_t i = 0; i < points.size(); ++i) {
    if (i == self) continue;
    const double d2 = geo::SquaredDistance(query, points[i]);
    if (d2 <= radius * radius) out.push_back(Neighbor{i, d2});
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.squared_distance < b.squared_distance ||
           (a.squared_distance == b.squared_distance && a.id < b.id);
  });
  return out;
}

TEST(GridIndexTest, RadiusQuerySimple) {
  const std::vector<geo::Point> points = {
      {0.5, 0.5}, {0.52, 0.5}, {0.5, 0.53}, {0.9, 0.9}};
  const GridIndex index(points, 0.05);
  const std::vector<Neighbor> near =
      index.RadiusQuery(points[0], 0.05, /*self=*/0);
  ASSERT_EQ(near.size(), 2u);
  EXPECT_EQ(near[0].id, 1u);  // 0.02 away
  EXPECT_EQ(near[1].id, 2u);  // 0.03 away
}

TEST(GridIndexTest, SelfIsExcluded) {
  const std::vector<geo::Point> points = {{0.5, 0.5}, {0.5, 0.5}};
  const GridIndex index(points, 0.1);
  const std::vector<Neighbor> near = index.RadiusQuery(points[0], 0.1, 0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].id, 1u);
}

TEST(GridIndexTest, ZeroRadiusFindsCoincidentPoints) {
  const std::vector<geo::Point> points = {{0.5, 0.5}, {0.5, 0.5}, {0.6, 0.5}};
  const GridIndex index(points, 0.1);
  const std::vector<Neighbor> near = index.RadiusQuery(points[0], 0.0, 0);
  ASSERT_EQ(near.size(), 1u);
  EXPECT_EQ(near[0].id, 1u);
}

TEST(GridIndexTest, NearestNeighborsOrdering) {
  const std::vector<geo::Point> points = {
      {0.5, 0.5}, {0.6, 0.5}, {0.55, 0.5}, {0.9, 0.9}, {0.51, 0.5}};
  const GridIndex index(points, 0.02);
  const std::vector<Neighbor> nn = index.NearestNeighbors(points[0], 3, 0);
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0].id, 4u);
  EXPECT_EQ(nn[1].id, 2u);
  EXPECT_EQ(nn[2].id, 1u);
}

TEST(GridIndexTest, NearestNeighborsWhenFewerPointsExist) {
  const std::vector<geo::Point> points = {{0.1, 0.1}, {0.9, 0.9}};
  const GridIndex index(points, 0.1);
  const std::vector<Neighbor> nn = index.NearestNeighbors(points[0], 10, 0);
  ASSERT_EQ(nn.size(), 1u);
  EXPECT_EQ(nn[0].id, 1u);
}

TEST(GridIndexTest, RangeQueryInclusiveBorders) {
  const std::vector<geo::Point> points = {
      {0.0, 0.0}, {0.5, 0.5}, {1.0, 1.0}, {0.5, 1.01}};
  const GridIndex index(points, 0.25);
  std::vector<uint32_t> hits = index.RangeQuery(geo::Rect(0.0, 0.0, 1.0, 1.0));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_TRUE(index.RangeQuery(geo::Rect()).empty());
}

// Property sweep: the grid index must agree with brute force for every
// combination of dataset size and cell size.
struct GridParam {
  uint32_t count;
  double cell_size;
  double radius;
};

class GridIndexPropertyTest : public ::testing::TestWithParam<GridParam> {};

TEST_P(GridIndexPropertyTest, RadiusAgreesWithBruteForce) {
  const GridParam param = GetParam();
  util::Rng rng(1234 + param.count);
  const data::Dataset dataset = data::GenerateUniform(param.count, rng);
  const GridIndex index(dataset.points(), param.cell_size);
  for (uint32_t q = 0; q < std::min<uint32_t>(param.count, 25); ++q) {
    const auto expected =
        BruteRadius(dataset.points(), dataset.point(q), param.radius, q);
    const auto actual = index.RadiusQuery(dataset.point(q), param.radius, q);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id);
      EXPECT_DOUBLE_EQ(actual[i].squared_distance,
                       expected[i].squared_distance);
    }
  }
}

TEST_P(GridIndexPropertyTest, KnnAgreesWithBruteForce) {
  const GridParam param = GetParam();
  util::Rng rng(99 + param.count);
  const data::Dataset dataset = data::GenerateUniform(param.count, rng);
  const GridIndex index(dataset.points(), param.cell_size);
  const uint32_t kCount = 5;
  for (uint32_t q = 0; q < std::min<uint32_t>(param.count, 10); ++q) {
    auto all = BruteRadius(dataset.points(), dataset.point(q), 2.0, q);
    const auto actual = index.NearestNeighbors(dataset.point(q), kCount, q);
    const size_t expected_size =
        std::min<size_t>(kCount, dataset.size() - 1);
    ASSERT_EQ(actual.size(), expected_size);
    for (size_t i = 0; i < actual.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].squared_distance, all[i].squared_distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridIndexPropertyTest,
    ::testing::Values(GridParam{1, 0.1, 0.2}, GridParam{10, 0.01, 0.05},
                      GridParam{100, 0.05, 0.1}, GridParam{500, 0.002, 0.01},
                      GridParam{1000, 0.5, 0.3}, GridParam{2000, 0.03, 0.02}));

TEST(GridIndexTest, HandlesPointsOutsideUnitSquare) {
  const std::vector<geo::Point> points = {{-0.5, -0.5}, {1.5, 1.5}, {0.5, 0.5}};
  const GridIndex index(points, 0.1);
  const auto near = index.RadiusQuery(points[0], 3.0, 0);
  EXPECT_EQ(near.size(), 2u);
}

}  // namespace
}  // namespace nela::spatial
