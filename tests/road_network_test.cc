// Tests for the road-network dataset generator (the California-POI
// stand-in) and for the MST refinement pass of the centralized partition.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "cluster/centralized_tconn.h"
#include "data/generators.h"
#include "graph/connectivity.h"
#include "graph/metrics.h"
#include "graph/wpg.h"
#include "graph/wpg_builder.h"
#include "util/rng.h"

namespace nela {
namespace {

TEST(RoadNetworkTest, ProducesRequestedCount) {
  util::Rng rng(1);
  data::RoadNetworkParams params;
  params.count = 5000;
  params.num_cities = 50;
  const data::Dataset dataset = data::GenerateRoadNetwork(params, rng);
  EXPECT_EQ(dataset.size(), 5000u);
  EXPECT_TRUE(geo::Rect(0, 0, 1, 1).Contains(dataset.BoundingBox()));
}

TEST(RoadNetworkTest, DeterministicPerSeed) {
  data::RoadNetworkParams params;
  params.count = 1000;
  params.num_cities = 20;
  util::Rng a(9);
  util::Rng b(9);
  const data::Dataset da = data::GenerateRoadNetwork(params, a);
  const data::Dataset db = data::GenerateRoadNetwork(params, b);
  for (uint32_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da.point(i), db.point(i));
  }
}

TEST(RoadNetworkTest, CaliforniaLikeUsesPaperCardinality) {
  data::RoadNetworkParams params;
  EXPECT_EQ(params.count, data::kCaliforniaPoiCount);
}

TEST(RoadNetworkTest, CorridorStructureIsDenserThanUniform) {
  // Road/town concentration: the fraction of users whose nearest neighbor
  // is very close must far exceed the uniform baseline.
  util::Rng rng(3);
  data::RoadNetworkParams params;
  params.count = 8000;
  params.num_cities = 80;
  const data::Dataset roads = data::GenerateRoadNetwork(params, rng);
  const data::Dataset uniform = data::GenerateUniform(8000, rng);
  auto close_pairs = [](const data::Dataset& dataset) {
    graph::WpgBuildParams build;
    build.delta = 2e-3;
    build.cap_peers = false;
    auto graph = graph::BuildWpg(dataset, build);
    NELA_CHECK(graph.ok());
    return graph.value().edge_count();
  };
  EXPECT_GT(close_pairs(roads), 5 * close_pairs(uniform));
}

TEST(RoadNetworkTest, GraphHasDominantComponents) {
  // The MST backbone keeps most users in sizable connected pieces at the
  // (scaled) paper threshold.
  util::Rng rng(5);
  data::RoadNetworkParams params;
  params.count = 10000;
  params.num_cities = 100;
  const data::Dataset dataset = data::GenerateRoadNetwork(params, rng);
  graph::WpgBuildParams build;
  build.delta = 2e-3 * 3.2;  // sqrt(104770/10000) scaling
  auto built = graph::BuildWpg(dataset, build);
  ASSERT_TRUE(built.ok());
  const graph::Wpg& graph = built.value();
  // Count users in components of size >= 10.
  std::vector<bool> seen(graph.vertex_count(), false);
  uint64_t in_big = 0;
  for (graph::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (seen[v]) continue;
    const auto component =
        graph::ThresholdComponent(graph, v, 1e18, nullptr);
    for (auto u : component) seen[u] = true;
    if (component.size() >= 10) in_big += component.size();
  }
  EXPECT_GT(in_big, graph.vertex_count() * 7 / 10);
}

TEST(RoadNetworkTest, RejectsBadParams) {
  util::Rng rng(1);
  data::RoadNetworkParams params;
  params.num_cities = 1;
  EXPECT_DEATH(data::GenerateRoadNetwork(params, rng), "NELA_CHECK");
}

// ------------------------------------------------------- MST refinement

TEST(RefinePartitionTest, SplitsLongChains) {
  // A 12-vertex path with ascending weights freezes into one cluster for
  // k=4 (each new vertex is a sub-k singleton when absorbed); refinement
  // must cut it into valid pieces of near-k size.
  graph::Wpg graph(12);
  for (uint32_t v = 0; v + 1 < 12; ++v) {
    graph.AddEdge(v, v + 1, static_cast<double>(v + 1));
  }
  graph.SortAdjacencyByWeight();
  const cluster::Partition partition =
      cluster::CentralizedKClustering(graph, 4);
  ASSERT_GE(partition.clusters.size(), 2u);
  for (const auto& members : partition.clusters) {
    EXPECT_GE(members.size(), 4u);
    EXPECT_LT(members.size(), 8u);
    // Each piece stays a contiguous run of the path (connected).
    EXPECT_TRUE(graph::IsInducedConnected(graph, members));
  }
}

TEST(RefinePartitionTest, LeavesSmallClustersAlone) {
  graph::Wpg graph(5);
  for (uint32_t v = 0; v + 1 < 5; ++v) graph.AddEdge(v, v + 1, 1.0 + v);
  graph.SortAdjacencyByWeight();
  cluster::Partition partition;
  partition.clusters.push_back({0, 1, 2, 3, 4});
  partition.connectivity.push_back(4.0);
  const cluster::Partition refined =
      cluster::RefinePartition(graph, std::move(partition), 3);
  // 5 < 2k = 6: untouched.
  ASSERT_EQ(refined.clusters.size(), 1u);
  EXPECT_EQ(refined.clusters[0].size(), 5u);
}

TEST(RefinePartitionTest, RefinementReducesMew) {
  // Star-of-chains: refinement strictly reduces the per-cluster MEW.
  graph::Wpg graph(16);
  for (uint32_t v = 0; v + 1 < 16; ++v) {
    graph.AddEdge(v, v + 1, static_cast<double>(1 + (v % 7)));
  }
  graph.SortAdjacencyByWeight();
  const cluster::Partition partition =
      cluster::CentralizedKClustering(graph, 4);
  double max_mew = 0.0;
  for (const auto& members : partition.clusters) {
    max_mew = std::max(max_mew,
                       graph::MaxEdgeWeightWithin(graph, members));
  }
  const double whole_mew = graph::MaxEdgeWeightWithin(
      graph, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  EXPECT_LT(max_mew, whole_mew + 1e-12);
}

TEST(RefinePartitionTest, ConnectivityValuesMatchBottleneck) {
  // After refinement every reported connectivity equals the cluster's MST
  // bottleneck (its induced MEW can only be larger).
  graph::Wpg graph(12);
  for (uint32_t v = 0; v + 1 < 12; ++v) {
    graph.AddEdge(v, v + 1, static_cast<double>(v + 1));
  }
  graph.SortAdjacencyByWeight();
  const cluster::Partition partition =
      cluster::CentralizedKClustering(graph, 4);
  for (size_t i = 0; i < partition.clusters.size(); ++i) {
    const auto& members = partition.clusters[i];
    // On a path the induced subgraph IS the MST, so connectivity == MEW.
    EXPECT_DOUBLE_EQ(partition.connectivity[i],
                     graph::MaxEdgeWeightWithin(graph, members));
  }
}

}  // namespace
}  // namespace nela
