#include <string>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/dataset_io.h"
#include "data/generators.h"
#include "util/rng.h"

namespace nela::data {
namespace {

TEST(DatasetTest, BoundingBoxAndNormalize) {
  Dataset dataset({{2.0, 10.0}, {4.0, 30.0}, {3.0, 20.0}});
  EXPECT_EQ(dataset.BoundingBox(), geo::Rect(2.0, 10.0, 4.0, 30.0));
  dataset.NormalizeToUnitSquare();
  EXPECT_EQ(dataset.BoundingBox(), geo::Rect(0.0, 0.0, 1.0, 1.0));
  EXPECT_DOUBLE_EQ(dataset.point(2).x, 0.5);
  EXPECT_DOUBLE_EQ(dataset.point(2).y, 0.5);
}

TEST(DatasetTest, NormalizeDegenerateAxis) {
  Dataset dataset({{1.0, 5.0}, {2.0, 5.0}});
  dataset.NormalizeToUnitSquare();
  EXPECT_DOUBLE_EQ(dataset.point(0).y, 0.0);
  EXPECT_DOUBLE_EQ(dataset.point(1).y, 0.0);
  EXPECT_DOUBLE_EQ(dataset.point(0).x, 0.0);
  EXPECT_DOUBLE_EQ(dataset.point(1).x, 1.0);
}

TEST(DatasetTest, NormalizeEmptyIsNoop) {
  Dataset dataset;
  dataset.NormalizeToUnitSquare();
  EXPECT_TRUE(dataset.empty());
}

TEST(GeneratorsTest, UniformCountAndRange) {
  util::Rng rng(1);
  const Dataset dataset = GenerateUniform(5000, rng);
  ASSERT_EQ(dataset.size(), 5000u);
  for (const geo::Point& p : dataset.points()) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(GeneratorsTest, UniformIsDeterministicPerSeed) {
  util::Rng a(5);
  util::Rng b(5);
  const Dataset da = GenerateUniform(100, a);
  const Dataset db = GenerateUniform(100, b);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(da.point(i), db.point(i));
  }
}

TEST(GeneratorsTest, ClusteredIsNormalizedAndSkewed) {
  util::Rng rng(2);
  ClusteredParams params;
  params.count = 20000;
  const Dataset dataset = GenerateClustered(params, rng);
  ASSERT_EQ(dataset.size(), 20000u);
  const geo::Rect box = dataset.BoundingBox();
  EXPECT_TRUE(geo::Rect(0.0, 0.0, 1.0, 1.0).Contains(box));

  // Density skew: split the square into a 10x10 grid; a clustered dataset
  // must have some cells far above the uniform expectation.
  int cells[100] = {};
  for (const geo::Point& p : dataset.points()) {
    const int cx = std::min(9, static_cast<int>(p.x * 10));
    const int cy = std::min(9, static_cast<int>(p.y * 10));
    ++cells[cy * 10 + cx];
  }
  int max_cell = 0;
  for (int c : cells) max_cell = std::max(max_cell, c);
  EXPECT_GT(max_cell, 3 * 200);  // >3x the uniform per-cell expectation
}

TEST(GeneratorsTest, CaliforniaLikeHasPaperCardinality) {
  util::Rng rng(3);
  ClusteredParams params;  // default count = paper's POI count
  EXPECT_EQ(params.count, kCaliforniaPoiCount);
  EXPECT_EQ(kCaliforniaPoiCount, 104770u);
}

TEST(GeneratorsTest, GridIsRegular) {
  const Dataset dataset = GenerateGrid(9);
  ASSERT_EQ(dataset.size(), 9u);
  EXPECT_EQ(dataset.point(0), (geo::Point{0.0, 0.0}));
  EXPECT_EQ(dataset.point(4), (geo::Point{0.5, 0.5}));
  EXPECT_EQ(dataset.point(8), (geo::Point{1.0, 1.0}));
}

TEST(GeneratorsTest, GridPartialLastRow) {
  const Dataset dataset = GenerateGrid(7);  // 3x3 grid, 7 occupied
  ASSERT_EQ(dataset.size(), 7u);
  EXPECT_EQ(dataset.point(6), (geo::Point{0.0, 1.0}));
}

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  Dataset dataset({{0.125, 0.25}, {0.5, 0.75}});
  const std::string path = ::testing::TempDir() + "/nela_dataset.csv";
  ASSERT_TRUE(SaveCsv(dataset, path).ok());
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value().point(0), dataset.point(0));
  EXPECT_EQ(loaded.value().point(1), dataset.point(1));
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  auto loaded = LoadCsv("/definitely/not/here.csv");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), util::StatusCode::kNotFound);
}

TEST(DatasetIoTest, LoadRejectsMalformedBody) {
  const std::string path = ::testing::TempDir() + "/nela_bad.csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("x,y\n0.1,0.2\nbroken_line\n", file);
  std::fclose(file);
  EXPECT_FALSE(LoadCsv(path).ok());
}

TEST(DatasetIoTest, HeaderlessFileLoads) {
  const std::string path = ::testing::TempDir() + "/nela_headerless.csv";
  std::FILE* file = std::fopen(path.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fputs("0.1,0.2\n0.3,0.4\n", file);
  std::fclose(file);
  auto loaded = LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
}

}  // namespace
}  // namespace nela::data
