// End-to-end cloaking engine tests: the Fig. 3 workflow on small scenarios
// -- region reuse, phase-1/phase-2 composition, reciprocity of the shared
// region, and both bounding modes.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/distributed_tconn.h"
#include "cluster/knn_clustering.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "scenario_fixtures.h"
#include "util/rng.h"

namespace nela::core {
namespace {

using fixtures::MakeWorld;
using fixtures::SmallWorld;
using fixtures::SmallWorldBounding;

TEST(CloakingEngineTest, FreshRequestProducesRegionCoveringCluster) {
  SmallWorld world = MakeWorld(1);
  cluster::Registry registry(world.dataset.size());
  CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, 4,
                                                           &registry),
      &registry, MakeSecurePolicyFactory(SmallWorldBounding()));

  auto outcome = engine.RequestCloaking(17);
  ASSERT_TRUE(outcome.ok());
  const CloakingOutcome& o = outcome.value();
  EXPECT_FALSE(o.region_reused);
  EXPECT_FALSE(o.cluster_reused);
  EXPECT_GT(o.clustering_messages, 0u);
  EXPECT_GT(o.bounding_verifications, 0u);
  // k-anonymity: the region covers every member of the host's cluster.
  const cluster::ClusterInfo& info = registry.info(o.cluster_id);
  EXPECT_TRUE(info.valid);
  EXPECT_GE(info.members.size(), 4u);
  for (graph::VertexId member : info.members) {
    EXPECT_TRUE(o.region.Contains(world.dataset.point(member)));
  }
}

TEST(CloakingEngineTest, SecondRequestFromSameUserReusesRegion) {
  SmallWorld world = MakeWorld(2);
  cluster::Registry registry(world.dataset.size());
  CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, 4,
                                                           &registry),
      &registry, MakeSecurePolicyFactory(SmallWorldBounding()));

  auto first = engine.RequestCloaking(10);
  ASSERT_TRUE(first.ok());
  auto second = engine.RequestCloaking(10);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().region_reused);
  EXPECT_EQ(second.value().clustering_messages, 0u);
  EXPECT_EQ(second.value().bounding_verifications, 0u);
  EXPECT_EQ(second.value().region, first.value().region);
}

TEST(CloakingEngineTest, ClusterMatesShareTheRegion) {
  // Reciprocity end-to-end: every member of the host's cluster must be
  // served the identical region.
  SmallWorld world = MakeWorld(3);
  cluster::Registry registry(world.dataset.size());
  CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, 4,
                                                           &registry),
      &registry, MakeSecurePolicyFactory(SmallWorldBounding()));

  auto first = engine.RequestCloaking(50);
  ASSERT_TRUE(first.ok());
  const auto members = registry.info(first.value().cluster_id).members;
  for (graph::VertexId member : members) {
    auto outcome = engine.RequestCloaking(member);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().region_reused);
    EXPECT_EQ(outcome.value().region, first.value().region);
  }
}

TEST(CloakingEngineTest, SiblingClusterGetsItsOwnRegionLazily) {
  // The distributed clusterer registers several clusters per candidate;
  // only the host's cluster gets a region immediately. A later host from a
  // sibling cluster reuses the cluster but must run phase 2.
  SmallWorld world = MakeWorld(4);
  cluster::Registry registry(world.dataset.size());
  CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, 4,
                                                           &registry),
      &registry, MakeSecurePolicyFactory(SmallWorldBounding()));

  ASSERT_TRUE(engine.RequestCloaking(0).ok());
  // Find a clustered user whose cluster has no region yet.
  graph::VertexId sibling = graph::VertexId(-1);
  for (graph::VertexId v = 0; v < world.dataset.size(); ++v) {
    if (registry.IsClustered(v) &&
        !registry.info(registry.ClusterOf(v)).region.has_value()) {
      sibling = v;
      break;
    }
  }
  if (sibling == graph::VertexId(-1)) {
    GTEST_SKIP() << "candidate partition produced a single cluster";
  }
  auto outcome = engine.RequestCloaking(sibling);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().cluster_reused);
  EXPECT_FALSE(outcome.value().region_reused);
  EXPECT_EQ(outcome.value().clustering_messages, 0u);
  EXPECT_GT(outcome.value().bounding_verifications, 0u);
}

TEST(CloakingEngineTest, OptModeMatchesExactBoundingBox) {
  SmallWorld world = MakeWorld(5);
  cluster::Registry registry(world.dataset.size());
  CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, 4,
                                                           &registry),
      &registry, MakeSecurePolicyFactory(SmallWorldBounding()),
      BoundingMode::kOptBaseline);
  auto outcome = engine.RequestCloaking(99);
  ASSERT_TRUE(outcome.ok());
  geo::Rect expected;
  for (graph::VertexId member :
       registry.info(outcome.value().cluster_id).members) {
    expected.ExpandToInclude(world.dataset.point(member));
  }
  EXPECT_EQ(outcome.value().region, expected);
}

TEST(CloakingEngineTest, SecureRegionContainsOptRegion) {
  SmallWorld world = MakeWorld(6);
  // Two engines over identical worlds: secure overshoots, never undershoots.
  cluster::Registry registry_secure(world.dataset.size());
  CloakingEngine secure(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(
          world.graph, 4, &registry_secure),
      &registry_secure, MakeSecurePolicyFactory(SmallWorldBounding()));
  cluster::Registry registry_opt(world.dataset.size());
  CloakingEngine opt(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, 4,
                                                           &registry_opt),
      &registry_opt, MakeSecurePolicyFactory(SmallWorldBounding()),
      BoundingMode::kOptBaseline);
  auto a = secure.RequestCloaking(123);
  auto b = opt.RequestCloaking(123);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value().region.Contains(b.value().region));
}

TEST(CloakingEngineTest, WorksWithKnnClusterer) {
  SmallWorld world = MakeWorld(7);
  cluster::Registry registry(world.dataset.size());
  CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::KnnClusterer>(world.graph, 4, &registry),
      &registry, MakeSecurePolicyFactory(SmallWorldBounding()));
  auto outcome = engine.RequestCloaking(11);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members.size(), 4u);
}

TEST(CloakingEngineTest, RejectsBadHost) {
  SmallWorld world = MakeWorld(8);
  cluster::Registry registry(world.dataset.size());
  CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, 4,
                                                           &registry),
      &registry, MakeSecurePolicyFactory(SmallWorldBounding()));
  EXPECT_FALSE(engine.RequestCloaking(world.dataset.size()).ok());
}

// ------------------------------------------------------- policy factories

TEST(PolicyFactoryTest, SecureFactoryTapersWithDisagreeing) {
  BoundingParams params;
  params.density = 1000.0;
  PolicyFactory factory = MakeSecurePolicyFactory(params);
  auto policy = factory(16);
  ASSERT_NE(policy, nullptr);
  const double big = policy->NextIncrement(0.0, 16, 0);
  const double small = policy->NextIncrement(0.0, 4, 3);
  EXPECT_GT(big, 0.0);
  EXPECT_GT(small, 0.0);
  // Fewer disagreeing users => narrower per-round model => no larger step.
  EXPECT_LE(small, big);
}

TEST(PolicyFactoryTest, LinearFactoryUsesHalfDensityStep) {
  BoundingParams params;
  params.density = 1000.0;
  PolicyFactory factory = MakeLinearPolicyFactory(params);
  auto policy = factory(10);
  EXPECT_DOUBLE_EQ(policy->NextIncrement(0.0, 10, 0), 0.5 * 10.0 / 1000.0);
  EXPECT_DOUBLE_EQ(policy->NextIncrement(0.5, 1, 5), 0.5 * 10.0 / 1000.0);
}

TEST(PolicyFactoryTest, ExponentialFactoryDoubles) {
  BoundingParams params;
  params.density = 1000.0;
  PolicyFactory factory = MakeExponentialPolicyFactory(params);
  auto policy = factory(10);
  const double first = policy->NextIncrement(0.0, 10, 0);
  EXPECT_DOUBLE_EQ(first, 0.01);
  EXPECT_DOUBLE_EQ(policy->NextIncrement(0.02, 5, 1), 0.02);
}

}  // namespace
}  // namespace nela::core
