// Tests for the crash-durable service driver: bit-identical results with
// the batch facade in closed-batch mode, deterministic load shedding under
// sustained overload (structured, non-exposing, audited by the adversary
// observer), and the watchdog's rescue of a stalled worker.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/observer.h"
#include "audit/taint.h"
#include "core/policy_factory.h"
#include "geo/rect.h"
#include "sim/batch_driver.h"
#include "sim/scenario.h"
#include "sim/service_driver.h"
#include "util/status.h"

namespace nela::sim {
namespace {

const Scenario& SharedScenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.user_count = 1500;
    config.delta = 0.02;
    config.seed = 11;
    auto built = BuildScenario(config);
    NELA_CHECK(built.ok());
    return std::move(built).value();
  }();
  return scenario;
}

ServiceConfig ClosedBatchConfig(uint32_t threads) {
  ServiceConfig config;
  config.k = 5;
  config.requests = 256;
  config.threads = threads;
  config.master_seed = 99;
  config.workload_seed = 17;
  return config;
}

std::string ConcatTraces(const std::vector<ServiceRequestRecord>& records) {
  std::string all;
  for (const ServiceRequestRecord& record : records) {
    all += "request " + std::to_string(record.ordinal) + " host=" +
           std::to_string(record.host) + "\n";
    all += record.trace;
  }
  return all;
}

ServiceResult MustRun(const ServiceConfig& config) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  ServiceDriver driver(scenario.dataset, scenario.graph,
                       core::MakeSecurePolicyFactory(params), config);
  auto result = driver.Run();
  NELA_CHECK(result.ok());
  return std::move(result).value();
}

// With the queue model, durability, chaos, and the watchdog all off, the
// service driver is the batch driver: same digest, same traces, at every
// thread count -- and the BatchDriver facade maps its result faithfully.
TEST(ServiceDriverTest, ClosedBatchMatchesBatchDriverBitForBit) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;

  BatchConfig batch_config;
  batch_config.k = 5;
  batch_config.requests = 256;
  batch_config.threads = 4;
  batch_config.master_seed = 99;
  batch_config.workload_seed = 17;
  BatchDriver batch(scenario.dataset, scenario.graph,
                    core::MakeSecurePolicyFactory(params), batch_config);
  auto batch_result = batch.Run();
  ASSERT_TRUE(batch_result.ok()) << batch_result.status().ToString();

  std::vector<ServiceResult> results;
  for (uint32_t threads : {1u, 4u, 8u}) {
    results.push_back(MustRun(ClosedBatchConfig(threads)));
  }

  const ServiceResult& baseline = results[0];
  ASSERT_EQ(baseline.records.size(), 256u);
  EXPECT_EQ(baseline.admitted, 256u);
  EXPECT_EQ(baseline.shed_queue_overflow, 0u);
  EXPECT_EQ(baseline.shed_deadline, 0u);
  EXPECT_TRUE(baseline.reciprocity_ok);
  EXPECT_EQ(baseline.registry_digest,
            batch_result.value().registry_digest);

  const std::string baseline_traces = ConcatTraces(baseline.records);
  for (size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(baseline.registry_digest, results[i].registry_digest)
        << "digest diverged at thread config " << i;
    EXPECT_EQ(baseline_traces, ConcatTraces(results[i].records))
        << "traces diverged at thread config " << i;
  }

  // The facade's records must be the service driver's, field for field.
  ASSERT_EQ(batch_result.value().records.size(), results[1].records.size());
  for (size_t r = 0; r < results[1].records.size(); ++r) {
    const BatchRequestRecord& from_batch = batch_result.value().records[r];
    const ServiceRequestRecord& from_service = results[1].records[r];
    EXPECT_EQ(from_batch.host, from_service.host);
    EXPECT_EQ(from_batch.trace, from_service.trace);
    EXPECT_EQ(from_batch.outcome.region, from_service.outcome.region);
  }
}

// A light load (a quarter of sustainable) admits everything with small
// waits: the queue model must not shed or distort an underloaded service.
TEST(ServiceDriverTest, UnderloadAdmitsEveryRequest) {
  ServiceConfig config = ClosedBatchConfig(4);
  config.requests = 128;
  config.offered_rate_per_ms = 1.0;  // sustainable is 4/ms
  config.service_time_ms = 1.0;
  config.queue_capacity = 16;
  config.deadline_ms = 50.0;
  const ServiceResult result = MustRun(config);
  EXPECT_EQ(result.admitted, 128u);
  EXPECT_EQ(result.shed_queue_overflow, 0u);
  EXPECT_EQ(result.shed_deadline, 0u);
  EXPECT_LT(result.p99_queue_wait_ms, 5.0);
}

// Sustained 2x overload: the service sheds deterministically, every shed is
// a structured degradation (finalized exactly once, empty region, no
// coordinate anywhere), the adversary observer sees no exposure, and the
// admitted requests' queue wait stays bounded by the deadline.
TEST(ServiceDriverTest, OverloadShedsAreStructuredAndNonExposing) {
  const Scenario& scenario = SharedScenario();

  audit::TaintSet taint;
  for (uint32_t u = 0; u < scenario.dataset.size(); ++u) {
    taint.TaintPoint(u, scenario.dataset.point(u));
  }
  audit::ObserverConfig observer_config;
  observer_config.taint = &taint;
  audit::AdversaryObserver observer(observer_config);

  ServiceConfig config = ClosedBatchConfig(4);
  config.requests = 256;
  config.offered_rate_per_ms = 8.0;  // 2x the sustainable 4/ms
  config.service_time_ms = 1.0;
  config.queue_capacity = 16;
  config.deadline_ms = 3.9;
  config.tap = &observer;
  const ServiceResult result = MustRun(config);

  EXPECT_GT(result.shed_queue_overflow, 0u);
  EXPECT_GT(result.shed_deadline, 0u);
  EXPECT_GT(result.admitted, 0u);
  EXPECT_EQ(result.admitted + result.shed_queue_overflow +
                result.shed_deadline,
            256u);
  EXPECT_LE(result.p99_queue_wait_ms, config.deadline_ms);

  for (const ServiceRequestRecord& record : result.records) {
    const core::DegradationReport& report = record.outcome.degradation;
    EXPECT_EQ(report.finalize_count, 1u) << "ordinal " << record.ordinal;
    if (record.admitted) continue;
    EXPECT_FALSE(record.outcome.anonymity_satisfied);
    EXPECT_EQ(record.outcome.region, geo::Rect());
    EXPECT_FALSE(report.failure_reason.empty());
    EXPECT_FALSE(report.stages.empty());
    EXPECT_FALSE(record.trace.empty());
    if (record.shed == ShedCause::kQueueOverflow) {
      EXPECT_EQ(report.failure_code, util::StatusCode::kUnavailable);
    } else {
      ASSERT_EQ(record.shed, ShedCause::kDeadline);
      EXPECT_EQ(report.failure_code, util::StatusCode::kDeadlineExceeded);
      EXPECT_GT(record.queue_wait_ms, config.deadline_ms);
    }
    // A shed must never name a coordinate: its reason is built from queue
    // lengths and times only.
    const geo::Point p = scenario.dataset.point(record.host);
    EXPECT_EQ(report.failure_reason.find(std::to_string(p.x)),
              std::string::npos);
    EXPECT_EQ(report.failure_reason.find(std::to_string(p.y)),
              std::string::npos);
  }

  EXPECT_TRUE(observer.clean()) << observer.Report();
  EXPECT_GT(observer.messages_seen(), 0u);

  // The shed set is a pure function of the config: a second run reproduces
  // every admission decision and the final digest bit for bit.
  config.tap = nullptr;
  const ServiceResult again = MustRun(config);
  EXPECT_EQ(again.registry_digest, result.registry_digest);
  ASSERT_EQ(again.records.size(), result.records.size());
  for (size_t r = 0; r < result.records.size(); ++r) {
    EXPECT_EQ(again.records[r].admitted, result.records[r].admitted);
    EXPECT_EQ(again.records[r].shed, result.records[r].shed);
    EXPECT_EQ(again.records[r].queue_wait_ms,
              result.records[r].queue_wait_ms);
  }
}

// A worker that stalls while holding claims is rolled back and re-executed
// by the watchdog; the rescued run's digest and traces are bit-identical to
// a run without the stall, at every thread count.
TEST(ServiceDriverTest, WatchdogRescuesStalledRequestWithoutDigestDrift) {
  for (uint32_t threads : {1u, 4u, 8u}) {
    ServiceConfig config = ClosedBatchConfig(threads);
    config.requests = 96;
    const ServiceResult clean = MustRun(config);
    EXPECT_EQ(clean.watchdog_requeues, 0u);

    config.stall_ordinal = 3;
    const ServiceResult rescued = MustRun(config);
    EXPECT_EQ(rescued.watchdog_requeues, 1u) << "threads=" << threads;
    EXPECT_EQ(rescued.registry_digest, clean.registry_digest)
        << "threads=" << threads;
    EXPECT_EQ(ConcatTraces(rescued.records), ConcatTraces(clean.records))
        << "threads=" << threads;
    for (const ServiceRequestRecord& record : rescued.records) {
      EXPECT_EQ(record.outcome.degradation.finalize_count, 1u)
          << "ordinal " << record.ordinal;
    }
  }
}

TEST(ServiceDriverTest, RejectsInvalidConfigs) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  auto run_with = [&](const ServiceConfig& config) {
    ServiceDriver driver(scenario.dataset, scenario.graph,
                         core::MakeSecurePolicyFactory(params), config);
    return driver.Run();
  };

  ServiceConfig no_requests = ClosedBatchConfig(1);
  no_requests.requests = 0;
  EXPECT_FALSE(run_with(no_requests).ok());

  ServiceConfig zero_service = ClosedBatchConfig(1);
  zero_service.offered_rate_per_ms = 2.0;
  zero_service.service_time_ms = 0.0;
  EXPECT_FALSE(run_with(zero_service).ok());

  ServiceConfig no_checkpoint_dir = ClosedBatchConfig(1);
  no_checkpoint_dir.checkpoint_interval = 4;  // but no checkpoint_dir
  EXPECT_FALSE(run_with(no_checkpoint_dir).ok());

  ServiceConfig stall_out_of_range = ClosedBatchConfig(1);
  stall_out_of_range.stall_ordinal = stall_out_of_range.requests;
  EXPECT_FALSE(run_with(stall_out_of_range).ok());
}

}  // namespace
}  // namespace nela::sim
