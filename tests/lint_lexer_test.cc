// Tokenization tests for the nela_lint lexer (tools/nela_lint/lexer.h).
// The taint pass is only as sound as its token stream, so the corners a
// line-oriented scanner gets wrong are pinned here: raw strings hiding
// fake tokens, block comments that look nested, digraphs, digit
// separators, line continuations, and the `<::` maximal-munch exception.

#include "nela_lint/lexer.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace nela::lint {
namespace {

std::vector<Token> CodeTokens(const std::string& text) {
  std::vector<Token> out;
  for (Token& token : Lex(text)) {
    if (token.kind != TokenKind::kComment) out.push_back(std::move(token));
  }
  return out;
}

std::vector<std::string> Spellings(const std::vector<Token>& tokens) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const Token& token : tokens) out.push_back(token.text);
  return out;
}

TEST(LintLexerTest, IdentifiersNumbersAndPunctuation) {
  const auto tokens = CodeTokens("int x = a->b + 0x1F;");
  ASSERT_EQ(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "int");
  EXPECT_EQ(tokens[3].text, "a");
  EXPECT_EQ(tokens[4].text, "->");
  EXPECT_EQ(tokens[7].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[7].text, "0x1F");
}

TEST(LintLexerTest, QualifiedNameIsThreeTokens) {
  const auto tokens = CodeTokens("geo::Point p;");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(Spellings(tokens),
            (std::vector<std::string>{"geo", "::", "Point", "p", ";"}));
}

TEST(LintLexerTest, LineNumbersAreOneBasedAndPerToken) {
  const auto tokens = CodeTokens("a\nb\n\nc");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(LintLexerTest, RawStringContentsAreNotCode) {
  // The payload of an R"(...)" must lex as ONE string token: the Send(
  // and quote inside it must not open calls or literals.
  const auto tokens =
      CodeTokens("auto s = R\"(network.Send(\"x\", 1); // not code)\";");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "network.Send(\"x\", 1); // not code");
}

TEST(LintLexerTest, RawStringCustomDelimiterAndPrefixes) {
  const auto tokens = CodeTokens("auto s = R\"ab()\" )ab\";");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, ")\" ");

  // u8R etc. open raw strings; a plain identifier ending in R does not.
  const auto prefixed = CodeTokens("auto t = u8R\"(x)\";");
  ASSERT_EQ(prefixed.size(), 5u);
  EXPECT_EQ(prefixed[3].kind, TokenKind::kString);
  const auto not_prefix = CodeTokens("CHECKR\"(y)\"");
  // CHECKR is not a raw-string prefix: identifier, then a plain string.
  ASSERT_GE(not_prefix.size(), 2u);
  EXPECT_EQ(not_prefix[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(not_prefix[0].text, "CHECKR");
}

TEST(LintLexerTest, BlockCommentsDoNotNest) {
  // Per the language, the first */ ends the comment; the second */ is code
  // (a * and / token), and `b` is real code after it.
  const auto tokens = CodeTokens("a /* x /* y */ b */ c");
  const auto spellings = Spellings(tokens);
  ASSERT_GE(spellings.size(), 2u);
  EXPECT_EQ(spellings[0], "a");
  EXPECT_EQ(spellings[1], "b");
}

TEST(LintLexerTest, CommentsAreSeparateTokens) {
  const auto all = Lex("x // trailing note\n/* block\nnote */ y");
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[1].kind, TokenKind::kComment);
  EXPECT_EQ(all[1].text, " trailing note");
  EXPECT_EQ(all[2].kind, TokenKind::kComment);
  EXPECT_EQ(all[2].line, 2);
  EXPECT_EQ(all[3].text, "y");
  EXPECT_EQ(all[3].line, 3);
}

TEST(LintLexerTest, DigraphsNormalizeToPrimarySpellings) {
  const auto tokens = CodeTokens("<% %> <: :> %: %:%:");
  EXPECT_EQ(Spellings(tokens),
            (std::vector<std::string>{"{", "}", "[", "]", "#", "##"}));
}

TEST(LintLexerTest, TemplateScopeIsNotADigraph) {
  // Foo<::Bar> must lex as < :: , not as the <: digraph eating the colon.
  const auto tokens = CodeTokens("Foo<::Bar>");
  EXPECT_EQ(Spellings(tokens),
            (std::vector<std::string>{"Foo", "<", "::", "Bar", ">"}));
}

TEST(LintLexerTest, DigitSeparatorsStayOneNumber) {
  const auto tokens = CodeTokens("x = 1'000'000;");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[2].text, "1'000'000");
  // And the quote after a number must not open a char literal that
  // swallows the rest of the line.
  EXPECT_EQ(tokens[3].text, ";");
}

TEST(LintLexerTest, NumbersWithExponentsAndDots) {
  const auto tokens = CodeTokens("a = 1.5e-3 + .25 + 0x1p+4;");
  std::vector<std::string> numbers;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kNumber) numbers.push_back(token.text);
  }
  EXPECT_EQ(numbers,
            (std::vector<std::string>{"1.5e-3", ".25", "0x1p+4"}));
}

TEST(LintLexerTest, LineContinuationSplicesButKeepsLineNumbers) {
  // `ta\<newline>int` is one identifier starting on line 1; the next token
  // reports line 2.
  const auto tokens = CodeTokens("ta\\\nint x;");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "taint");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(LintLexerTest, StringEscapesDoNotEndTheLiteral) {
  const auto tokens = CodeTokens("s = \"a\\\"b\"; c");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kString);
  EXPECT_EQ(tokens[2].text, "a\\\"b");
  EXPECT_EQ(tokens[4].text, "c");
}

TEST(LintLexerTest, CharLiteralsAndEscapes) {
  const auto tokens = CodeTokens("c = '\\''; d = 'x';");
  std::vector<std::string> chars;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kCharLiteral) chars.push_back(token.text);
  }
  EXPECT_EQ(chars, (std::vector<std::string>{"\\'", "x"}));
}

TEST(LintLexerTest, MultiCharOperatorsUseMaximalMunch) {
  const auto tokens = CodeTokens("a <<= b >>= c ... d ->* e .* f");
  std::vector<std::string> ops;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kPunct) ops.push_back(token.text);
  }
  EXPECT_EQ(ops,
            (std::vector<std::string>{"<<=", ">>=", "...", "->*", ".*"}));
}

TEST(LintLexerTest, UnterminatedConstructsLexToEndOfFile) {
  // Malformed input must produce a best-effort token, never hang or throw.
  EXPECT_EQ(Lex("/* open").size(), 1u);
  EXPECT_EQ(Lex("\"open").size(), 1u);
  EXPECT_EQ(Lex("R\"(open").size(), 1u);
}

}  // namespace
}  // namespace nela::lint
