// Shared test fixtures: the "small world" datasets and leak-assertion
// helpers that the engine, chaos, concurrency, degradation, and mechanism
// tests all build their scenarios from. Hoisted here so every suite
// exercises the same worlds and the same no-coordinate-leak predicate.
//
// Test-only header; depends on gtest.

#ifndef NELA_TESTS_SCENARIO_FIXTURES_H_
#define NELA_TESTS_SCENARIO_FIXTURES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "geo/point.h"
#include "graph/wpg.h"
#include "graph/wpg_builder.h"
#include "net/network.h"
#include "util/check.h"
#include "util/rng.h"

namespace nela::fixtures {

struct SmallWorld {
  data::Dataset dataset;
  graph::Wpg graph;
};

// `users` points uniform in the unit square, WPG dense enough for k=4
// clusters at the defaults (the historical per-suite fixtures used
// delta=0.12 for 200 users and delta=0.1 for larger worlds; both are
// expressible here).
inline SmallWorld MakeWorld(uint64_t seed, uint32_t users = 200,
                            double delta = 0.12, uint32_t max_peers = 8) {
  util::Rng rng(seed);
  data::Dataset dataset = data::GenerateUniform(users, rng);
  graph::WpgBuildParams params;
  params.delta = delta;
  params.max_peers = max_peers;
  auto graph = graph::BuildWpg(dataset, params);
  NELA_CHECK(graph.ok());
  return SmallWorld{std::move(dataset), std::move(graph).value()};
}

inline core::BoundingParams SmallWorldBounding(double density = 200.0) {
  core::BoundingParams params;
  params.density = density;
  return params;
}

// Failure messages may name node ids and attempt counts, never positions.
// Every formatted coordinate contains a decimal point and the full
// std::to_string rendering of some member coordinate; assert both away.
inline void ExpectNoCoordinateLeak(const std::string& message,
                                   const data::Dataset& dataset) {
  EXPECT_FALSE(message.empty());
  EXPECT_EQ(message.find('.'), std::string::npos) << message;
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    const geo::Point p = dataset.point(i);
    EXPECT_EQ(message.find(std::to_string(p.x)), std::string::npos) << message;
    EXPECT_EQ(message.find(std::to_string(p.y)), std::string::npos) << message;
  }
}

inline std::vector<geo::Point> FirstPoints(const data::Dataset& dataset,
                                           uint32_t n) {
  std::vector<geo::Point> points;
  points.reserve(n);
  for (uint32_t i = 0; i < n; ++i) points.push_back(dataset.point(i));
  return points;
}

inline std::vector<net::NodeId> Iota(uint32_t n) {
  std::vector<net::NodeId> ids(n);
  for (uint32_t i = 0; i < n; ++i) ids[i] = i;
  return ids;
}

}  // namespace nela::fixtures

#endif  // NELA_TESTS_SCENARIO_FIXTURES_H_
