#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/metrics.h"
#include "graph/wpg.h"

namespace nela::graph {
namespace {

Wpg PathGraph() {
  // 0 -1- 1 -2- 2 -3- 3 -4- 4
  auto graph = Wpg::FromEdges(
      5, {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {3, 4, 4.0}});
  NELA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(ThresholdComponentTest, RespectsThreshold) {
  const Wpg graph = PathGraph();
  EXPECT_EQ(ThresholdComponent(graph, 0, 0.5, nullptr),
            (std::vector<VertexId>{0}));
  EXPECT_EQ(ThresholdComponent(graph, 0, 1.0, nullptr),
            (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(ThresholdComponent(graph, 0, 2.5, nullptr),
            (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(ThresholdComponent(graph, 0, 10.0, nullptr).size(), 5u);
}

TEST(ThresholdComponentTest, StartsAnywhere) {
  const Wpg graph = PathGraph();
  const auto component = ThresholdComponent(graph, 2, 3.0, nullptr);
  std::vector<VertexId> sorted(component);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(ThresholdComponentTest, ActiveMaskExcludesVertices) {
  const Wpg graph = PathGraph();
  std::vector<bool> active(5, true);
  active[1] = false;  // cut the path at vertex 1
  EXPECT_EQ(ThresholdComponent(graph, 0, 10.0, &active),
            (std::vector<VertexId>{0}));
  const auto right = ThresholdComponent(graph, 2, 10.0, &active);
  std::vector<VertexId> sorted(right);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<VertexId>{2, 3, 4}));
}

TEST(ThresholdComponentTest, StopSizeTerminatesEarly) {
  const Wpg graph = PathGraph();
  EXPECT_EQ(ThresholdComponent(graph, 0, 10.0, nullptr, 2).size(), 2u);
  EXPECT_EQ(ThresholdComponent(graph, 0, 10.0, nullptr, 1).size(), 1u);
  // stop_size beyond the component returns the whole component.
  EXPECT_EQ(ThresholdComponent(graph, 0, 10.0, nullptr, 99).size(), 5u);
}

TEST(InducedTest, Connectivity) {
  const Wpg graph = PathGraph();
  EXPECT_TRUE(IsInducedConnected(graph, {0, 1, 2}));
  EXPECT_FALSE(IsInducedConnected(graph, {0, 2}));  // 1 missing
  EXPECT_TRUE(IsInducedConnected(graph, {3}));
  EXPECT_TRUE(IsInducedConnected(graph, {}));
}

TEST(InducedTest, Components) {
  const Wpg graph = PathGraph();
  const auto components = InducedComponents(graph, {0, 1, 3, 4});
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0], (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(components[1], (std::vector<VertexId>{3, 4}));
}

TEST(InducedTest, Edges) {
  const Wpg graph = PathGraph();
  const auto edges = InducedEdges(graph, {1, 2, 3});
  ASSERT_EQ(edges.size(), 2u);
  double total = 0.0;
  for (const Edge& e : edges) total += e.weight;
  EXPECT_DOUBLE_EQ(total, 5.0);  // weights 2 and 3
}

TEST(MetricsTest, MaxEdgeWeightWithin) {
  const Wpg graph = PathGraph();
  EXPECT_DOUBLE_EQ(MaxEdgeWeightWithin(graph, {0, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(MaxEdgeWeightWithin(graph, {0, 1, 2, 3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(MaxEdgeWeightWithin(graph, {0, 2}), 0.0);  // no edges
}

TEST(MetricsTest, WeightedDiameterOfPath) {
  const Wpg graph = PathGraph();
  EXPECT_DOUBLE_EQ(WeightedDiameter(graph, {0, 1, 2}), 3.0);     // 1+2
  EXPECT_DOUBLE_EQ(WeightedDiameter(graph, {0, 1, 2, 3, 4}), 10.0);
  EXPECT_DOUBLE_EQ(WeightedDiameter(graph, {2}), 0.0);
  EXPECT_EQ(WeightedDiameter(graph, {0, 2}),
            std::numeric_limits<double>::infinity());
}

TEST(MetricsTest, DiameterUsesShortcuts) {
  // Triangle where the direct edge is longer than the detour.
  auto graph =
      Wpg::FromEdges(3, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 5.0}});
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(WeightedDiameter(graph.value(), {0, 1, 2}), 2.0);
}

TEST(MetricsTest, DiameterIgnoresOutsideVertices) {
  // 0-1 direct weight 5; a shortcut through 2 exists in the full graph but
  // 2 is outside the induced set.
  auto graph =
      Wpg::FromEdges(3, {{0, 1, 5.0}, {0, 2, 1.0}, {1, 2, 1.0}});
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(WeightedDiameter(graph.value(), {0, 1}), 5.0);
}

TEST(MetricsTest, RegularGraphDiameterBound) {
  // Corollary 4.2 with w = 1: bound in hops; must upper-bound the true
  // diameter of e.g. a 3-regular ring of triangles and scale linearly in w.
  const double bound1 = RegularGraphDiameterBound(12, 3, 1.0);
  EXPECT_GT(bound1, 0.0);
  const double bound5 = RegularGraphDiameterBound(12, 3, 5.0);
  EXPECT_DOUBLE_EQ(bound5, 5.0 * bound1);
  // Larger k can only increase (or keep) the bound.
  EXPECT_GE(RegularGraphDiameterBound(100, 3, 1.0), bound1);
  // Higher degree shrinks the log base term.
  EXPECT_LE(RegularGraphDiameterBound(100, 10, 1.0),
            RegularGraphDiameterBound(100, 3, 1.0));
}

TEST(MetricsTest, BoundDominatesActualDiameterOnCompleteGraph) {
  // Complete graph K6 with unit weights: diameter 1, degree 5.
  std::vector<Edge> edges;
  for (uint32_t a = 0; a < 6; ++a) {
    for (uint32_t b = a + 1; b < 6; ++b) edges.push_back({a, b, 1.0});
  }
  auto graph = Wpg::FromEdges(6, edges);
  ASSERT_TRUE(graph.ok());
  const double diameter =
      WeightedDiameter(graph.value(), {0, 1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(diameter, 1.0);
  EXPECT_GE(RegularGraphDiameterBound(6, 5, 1.0), diameter);
}

}  // namespace
}  // namespace nela::graph
