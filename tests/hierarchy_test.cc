#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/connectivity.h"
#include "graph/hierarchy.h"
#include "graph/wpg.h"
#include "util/rng.h"

namespace nela::graph {
namespace {

// The running example of Fig. 6 (see centralized_tconn_test.cc for its
// construction rationale): two communities joined by heavy edges.
Wpg Fig6Graph() {
  auto graph = Wpg::FromEdges(7, {{0, 1, 3.0},
                                  {1, 2, 5.0},
                                  {0, 2, 6.0},
                                  {3, 4, 3.0},
                                  {5, 6, 3.0},
                                  {4, 5, 6.0},
                                  {3, 6, 4.0},
                                  {2, 3, 7.0},
                                  {0, 5, 8.0}});
  NELA_CHECK(graph.ok());
  return std::move(graph).value();
}

TEST(HierarchyTest, LeavesMatchVertices) {
  const Wpg graph = Fig6Graph();
  const TConnHierarchy hierarchy(graph);
  EXPECT_EQ(hierarchy.vertex_count(), 7u);
  for (uint32_t v = 0; v < 7; ++v) {
    EXPECT_EQ(hierarchy.node(v).size, 1u);
    EXPECT_TRUE(hierarchy.node(v).children.empty());
    EXPECT_EQ(hierarchy.node(v).key, EdgeKey::Min());
  }
}

TEST(HierarchyTest, Fig6MergeStructure) {
  const Wpg graph = Fig6Graph();
  const TConnHierarchy hierarchy(graph);
  ASSERT_EQ(hierarchy.roots().size(), 1u);
  const auto& root = hierarchy.node(hierarchy.roots()[0]);
  EXPECT_EQ(root.size, 7u);
  EXPECT_DOUBLE_EQ(root.key.weight, 7.0);  // (2,3) joins the halves at 7
  ASSERT_EQ(root.children.size(), 2u);

  // Children: {0,1,2} formed at 5, {3,4,5,6} formed at 4.
  std::set<std::pair<double, uint32_t>> child_signatures;
  for (uint32_t child : root.children) {
    child_signatures.insert(
        {hierarchy.node(child).key.weight, hierarchy.node(child).size});
  }
  EXPECT_TRUE(child_signatures.count({5.0, 3u}) == 1);
  EXPECT_TRUE(child_signatures.count({4.0, 4u}) == 1);
}

TEST(HierarchyTest, VerticesOfSubtree) {
  const Wpg graph = Fig6Graph();
  const TConnHierarchy hierarchy(graph);
  const uint32_t root = hierarchy.roots()[0];
  EXPECT_EQ(hierarchy.VerticesOf(root),
            (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6}));
  for (uint32_t child : hierarchy.node(root).children) {
    if (hierarchy.node(child).size == 3) {
      EXPECT_EQ(hierarchy.VerticesOf(child), (std::vector<VertexId>{0, 1, 2}));
    } else {
      EXPECT_EQ(hierarchy.VerticesOf(child),
                (std::vector<VertexId>{3, 4, 5, 6}));
    }
  }
}

TEST(HierarchyTest, SmallestValidAncestor) {
  const Wpg graph = Fig6Graph();
  const TConnHierarchy hierarchy(graph);
  // Vertex 0: leaf(1) -> {0,1} @3 -> {0,1,2} @5 -> root @7.
  const int32_t k1 = hierarchy.SmallestValidAncestor(0, 1);
  EXPECT_EQ(k1, 0);  // the leaf itself
  const int32_t k2 = hierarchy.SmallestValidAncestor(0, 2);
  ASSERT_GE(k2, 0);
  EXPECT_EQ(hierarchy.node(k2).size, 2u);
  EXPECT_DOUBLE_EQ(hierarchy.node(k2).key.weight, 3.0);
  const int32_t k3 = hierarchy.SmallestValidAncestor(0, 3);
  ASSERT_GE(k3, 0);
  EXPECT_EQ(hierarchy.node(k3).size, 3u);
  EXPECT_DOUBLE_EQ(hierarchy.node(k3).key.weight, 5.0);
  const int32_t k5 = hierarchy.SmallestValidAncestor(0, 5);
  ASSERT_GE(k5, 0);
  EXPECT_EQ(hierarchy.node(k5).size, 7u);
  const int32_t k8 = hierarchy.SmallestValidAncestor(0, 8);
  EXPECT_EQ(k8, -1);  // whole graph is smaller than 8
}

TEST(HierarchyTest, DisconnectedGraphHasMultipleRoots) {
  auto graph = Wpg::FromEdges(5, {{0, 1, 1.0}, {2, 3, 2.0}});
  ASSERT_TRUE(graph.ok());
  const TConnHierarchy hierarchy(graph.value());
  EXPECT_EQ(hierarchy.roots().size(), 3u);  // {0,1}, {2,3}, {4}
}

TEST(HierarchyTest, EqualWeightsRefineByEndpointIds) {
  // A triangle of equal weights: the strict total order (weight, lo, hi)
  // merges (0,1) first, then (0,2) joins vertex 2; (1,2) is redundant.
  auto graph = Wpg::FromEdges(3, {{0, 1, 2.0}, {1, 2, 2.0}, {0, 2, 2.0}});
  ASSERT_TRUE(graph.ok());
  const TConnHierarchy hierarchy(graph.value());
  ASSERT_EQ(hierarchy.roots().size(), 1u);
  const auto& root = hierarchy.node(hierarchy.roots()[0]);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.key, (EdgeKey{2.0, 0, 2}));
  // One child is the {0,1} pair formed at key (2,0,1); the other is leaf 2.
  std::set<uint32_t> child_sizes;
  for (uint32_t child : root.children) {
    child_sizes.insert(hierarchy.node(child).size);
  }
  EXPECT_EQ(child_sizes, (std::set<uint32_t>{1u, 2u}));
}

TEST(HierarchyTest, EdgelessGraph) {
  const Wpg graph(4);
  const TConnHierarchy hierarchy(graph);
  EXPECT_EQ(hierarchy.roots().size(), 4u);
  EXPECT_EQ(hierarchy.node_count(), 4u);
}

TEST(EdgeKeyTest, TotalOrder) {
  const EdgeKey a{1.0, 0, 1};
  const EdgeKey b{1.0, 0, 2};
  const EdgeKey c{1.0, 1, 2};
  const EdgeKey d{2.0, 0, 1};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(c < d);
  EXPECT_TRUE(a < d);
  EXPECT_TRUE(a <= a);
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(d > a);
  EXPECT_TRUE(EdgeKey::Min() < a);
  EXPECT_TRUE(a < EdgeKey::UpTo(1.0));  // UpTo admits all weight-1 edges
  EXPECT_TRUE(c < EdgeKey::UpTo(1.0));
}

TEST(EdgeKeyTest, KeyOfNormalizesEndpoints) {
  const Edge e{5, 2, 3.0};
  EXPECT_EQ(KeyOf(e), (EdgeKey{3.0, 2, 5}));
  const HalfEdge half{7, 4.0};
  EXPECT_EQ(KeyOf(3, half), (EdgeKey{4.0, 3, 7}));
  EXPECT_EQ(KeyOf(9, HalfEdge{7, 4.0}), (EdgeKey{4.0, 7, 9}));
}

// Property: for random graphs, the subtree at each internal node must be
// exactly the refined t-connectivity class of its members at the node's
// key, and children partition the node.
class HierarchyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HierarchyPropertyTest, NodesAreThresholdComponents) {
  util::Rng rng(GetParam());
  const uint32_t n = 20 + static_cast<uint32_t>(rng.NextUint64(30));
  Wpg graph(n);
  // Random connected-ish graph with small integer weights (ties likely).
  for (uint32_t v = 1; v < n; ++v) {
    const uint32_t u = static_cast<uint32_t>(rng.NextUint64(v));
    graph.AddEdge(u, v, static_cast<double>(1 + rng.NextUint64(5)));
  }
  for (uint32_t extra = 0; extra < n; ++extra) {
    const uint32_t a = static_cast<uint32_t>(rng.NextUint64(n));
    const uint32_t b = static_cast<uint32_t>(rng.NextUint64(n));
    if (a == b) continue;
    bool exists = false;
    for (const HalfEdge& e : graph.Neighbors(a)) {
      if (e.to == b) exists = true;
    }
    if (!exists) {
      graph.AddEdge(a, b, static_cast<double>(1 + rng.NextUint64(5)));
    }
  }
  graph.SortAdjacencyByWeight();

  const TConnHierarchy hierarchy(graph);
  for (uint32_t id = n; id < hierarchy.node_count(); ++id) {
    const auto& node = hierarchy.node(id);
    const std::vector<VertexId> members = hierarchy.VerticesOf(id);
    ASSERT_EQ(members.size(), node.size);
    // The subtree equals the refined t-connectivity class of its first
    // member at the formation key.
    const std::vector<VertexId> component =
        ThresholdComponent(graph, members.front(), node.key, nullptr);
    std::vector<VertexId> sorted_component(component);
    std::sort(sorted_component.begin(), sorted_component.end());
    EXPECT_EQ(sorted_component, members);
    // Exactly two children, strictly older, partitioning the node.
    ASSERT_EQ(node.children.size(), 2u);
    uint32_t total = 0;
    for (uint32_t child : node.children) {
      total += hierarchy.node(child).size;
      EXPECT_TRUE(hierarchy.node(child).key < node.key);
    }
    EXPECT_EQ(total, node.size);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HierarchyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace nela::graph
