// Tests for the kRNN candidate computation, the TDOA weight model, and the
// anonymity auditor.

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/distributed_tconn.h"
#include "core/anonymity_audit.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "lbs/krnn.h"
#include "lbs/poi_database.h"
#include "util/rng.h"

namespace nela {
namespace {

// ------------------------------------------------------------------ kRNN

// Brute-force k nearest POIs to a point.
std::vector<uint32_t> BruteKnn(const data::Dataset& pois,
                               const geo::Point& q, uint32_t k) {
  std::vector<std::pair<double, uint32_t>> ranked;
  for (uint32_t id = 0; id < pois.size(); ++id) {
    ranked.push_back({geo::SquaredDistance(q, pois.point(id)), id});
  }
  std::sort(ranked.begin(), ranked.end());
  std::vector<uint32_t> out;
  for (uint32_t i = 0; i < k && i < ranked.size(); ++i) {
    out.push_back(ranked[i].second);
  }
  return out;
}

TEST(KrnnTest, CandidatesCoverKnnOfEveryPointInRegion) {
  util::Rng rng(5);
  const data::Dataset pois = data::GenerateUniform(2000, rng);
  const lbs::PoiDatabase database(pois, 0.02);
  const geo::Rect region(0.4, 0.55, 0.47, 0.6);
  const uint32_t k = 6;
  const lbs::KrnnResult result =
      lbs::RangeKnnCandidates(database, pois, region, k);
  ASSERT_GE(result.candidates.size(), k);
  const std::set<uint32_t> candidate_set(result.candidates.begin(),
                                         result.candidates.end());
  // Sample query points across the region (grid + random) and verify the
  // true kNN of each is inside the candidate superset.
  for (int gx = 0; gx <= 4; ++gx) {
    for (int gy = 0; gy <= 4; ++gy) {
      const geo::Point q{region.min_x() + region.Width() * gx / 4.0,
                         region.min_y() + region.Height() * gy / 4.0};
      for (uint32_t id : BruteKnn(pois, q, k)) {
        EXPECT_TRUE(candidate_set.count(id) > 0)
            << "missing kNN candidate for q=(" << q.x << "," << q.y << ")";
      }
    }
  }
  for (int i = 0; i < 40; ++i) {
    const geo::Point q{rng.NextDouble(region.min_x(), region.max_x()),
                       rng.NextDouble(region.min_y(), region.max_y())};
    for (uint32_t id : BruteKnn(pois, q, k)) {
      EXPECT_TRUE(candidate_set.count(id) > 0);
    }
  }
}

TEST(KrnnTest, CandidateSetIsMuchSmallerThanDatabase) {
  util::Rng rng(7);
  const data::Dataset pois = data::GenerateUniform(5000, rng);
  const lbs::PoiDatabase database(pois, 0.02);
  const geo::Rect region(0.5, 0.5, 0.52, 0.52);
  const lbs::KrnnResult result =
      lbs::RangeKnnCandidates(database, pois, region, 4);
  EXPECT_LT(result.candidates.size(), pois.size() / 10);
  EXPECT_GT(result.radius, 0.0);
}

TEST(KrnnTest, TinyDatabaseReturnsEverything) {
  const data::Dataset pois({{0.1, 0.1}, {0.9, 0.9}});
  const lbs::PoiDatabase database(pois);
  const lbs::KrnnResult result = lbs::RangeKnnCandidates(
      database, pois, geo::Rect(0.4, 0.4, 0.6, 0.6), 5);
  EXPECT_EQ(result.candidates.size(), 2u);
}

// ------------------------------------------------------------------ TDOA

TEST(TdoaWeightTest, WeightsAreQuantizedDistances) {
  const data::Dataset dataset({{0.0, 0.5}, {0.04, 0.5}, {0.1, 0.5}});
  graph::WpgBuildParams params;
  params.delta = 0.12;
  params.measure = graph::ProximityMeasure::kTdoaBucket;
  params.tdoa_levels = 12;
  auto built = graph::BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  for (const graph::Edge& e : built.value().edges()) {
    const double distance =
        geo::Distance(dataset.point(e.u), dataset.point(e.v));
    const double expected =
        std::max(1.0, std::ceil(distance / params.delta * 12));
    EXPECT_DOUBLE_EQ(e.weight, expected);
  }
}

TEST(TdoaWeightTest, MonotoneInDistance) {
  // Farther pairs never get a smaller TDOA weight (unlike RSS ranks, which
  // are relative to each endpoint's neighborhood).
  util::Rng rng(11);
  const data::Dataset dataset = data::GenerateUniform(300, rng);
  graph::WpgBuildParams params;
  params.delta = 0.1;
  params.measure = graph::ProximityMeasure::kTdoaBucket;
  auto built = graph::BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  for (const graph::Edge& a : built.value().edges()) {
    for (const graph::Edge& b : built.value().edges()) {
      const double da = geo::Distance(dataset.point(a.u), dataset.point(a.v));
      const double db = geo::Distance(dataset.point(b.u), dataset.point(b.v));
      if (da < db) {
        EXPECT_LE(a.weight, b.weight);
      }
    }
    if (&a - &built.value().edges()[0] > 40) break;  // keep it quick
  }
}

TEST(TdoaWeightTest, RejectsZeroLevels) {
  const data::Dataset dataset({{0.0, 0.0}, {0.01, 0.0}});
  graph::WpgBuildParams params;
  params.measure = graph::ProximityMeasure::kTdoaBucket;
  params.tdoa_levels = 0;
  EXPECT_FALSE(graph::BuildWpg(dataset, params).ok());
}

TEST(TdoaWeightTest, ClusteringWorksOnTdoaGraph) {
  util::Rng rng(13);
  const data::Dataset dataset = data::GenerateUniform(400, rng);
  graph::WpgBuildParams params;
  params.delta = 0.08;
  params.measure = graph::ProximityMeasure::kTdoaBucket;
  auto built = graph::BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  cluster::Registry registry(dataset.size());
  cluster::DistributedTConnClusterer clusterer(built.value(), 5, &registry);
  auto outcome = clusterer.ClusterFor(17);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(registry.info(outcome.value().cluster_id).members.size(), 5u);
}

// ----------------------------------------------------------------- audit

TEST(AnonymityAuditTest, CleanWorkloadPasses) {
  util::Rng rng(17);
  const data::Dataset dataset = data::GenerateUniform(500, rng);
  graph::WpgBuildParams params;
  params.delta = 0.08;
  auto built = graph::BuildWpg(dataset, params);
  ASSERT_TRUE(built.ok());
  cluster::Registry registry(dataset.size());
  core::BoundingParams bounding;
  bounding.density = 500.0;
  core::CloakingEngine engine(
      dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(built.value(), 5,
                                                           &registry),
      &registry, core::MakeSecurePolicyFactory(bounding));
  for (data::UserId host : {3u, 77u, 200u, 331u, 499u}) {
    ASSERT_TRUE(engine.RequestCloaking(host).ok());
  }
  const core::AuditReport report =
      core::AuditAnonymity(registry, dataset, 5);
  EXPECT_TRUE(report.ok()) << report.violations.size() << " violations";
  EXPECT_GT(report.clusters_checked, 0u);
  EXPECT_GE(report.regions_checked, 5u);
  EXPECT_EQ(report.exposed_members, 0u);
}

TEST(AnonymityAuditTest, DetectsUndersizedValidCluster) {
  const data::Dataset dataset({{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}});
  cluster::Registry registry(3);
  ASSERT_TRUE(registry.Register({0, 1}, 1.0, /*valid=*/true).ok());
  const core::AuditReport report =
      core::AuditAnonymity(registry, dataset, 3);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.undersized_clusters, 1u);
}

TEST(AnonymityAuditTest, DetectsMemberOutsideRegion) {
  const data::Dataset dataset({{0.1, 0.1}, {0.9, 0.9}});
  cluster::Registry registry(2);
  auto id = registry.Register({0, 1}, 1.0, true);
  ASSERT_TRUE(id.ok());
  registry.SetRegion(id.value(), geo::Rect(0.0, 0.0, 0.5, 0.5));  // misses 1
  const core::AuditReport report =
      core::AuditAnonymity(registry, dataset, 2);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.exposed_members, 1u);
}

TEST(AnonymityAuditTest, DetectsOverlappingClusters) {
  const data::Dataset dataset({{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}});
  cluster::Registry registry(3, /*allow_overlap=*/true);
  ASSERT_TRUE(registry.Register({0, 1}, 1.0, true).ok());
  ASSERT_TRUE(registry.Register({1, 2}, 1.0, true).ok());
  const core::AuditReport report =
      core::AuditAnonymity(registry, dataset, 2);
  EXPECT_FALSE(report.ok());  // user 1 in two clusters
}

TEST(AnonymityAuditTest, InvalidClustersAreNotCountedAsUndersized) {
  const data::Dataset dataset({{0.1, 0.1}});
  cluster::Registry registry(1);
  ASSERT_TRUE(registry.Register({0}, 0.0, /*valid=*/false).ok());
  const core::AuditReport report =
      core::AuditAnonymity(registry, dataset, 5);
  EXPECT_TRUE(report.ok());  // flagged invalid => not a violation
  EXPECT_EQ(report.undersized_clusters, 0u);
}

}  // namespace
}  // namespace nela
