#include <cmath>

#include <gtest/gtest.h>

#include "geo/point.h"
#include "geo/rect.h"

namespace nela::geo {
namespace {

TEST(PointTest, DistanceIsEuclidean) {
  const Point a{0.0, 0.0};
  const Point b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, a), 0.0);
}

TEST(PointTest, DistanceIsSymmetric) {
  const Point a{0.1, 0.9};
  const Point b{0.7, 0.2};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(RectTest, EmptyRect) {
  const Rect empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Area(), 0.0);
  EXPECT_EQ(empty.Width(), 0.0);
  EXPECT_FALSE(empty.Contains(Point{0.0, 0.0}));
}

TEST(RectTest, BasicGeometry) {
  const Rect rect(0.0, 0.0, 2.0, 3.0);
  EXPECT_FALSE(rect.empty());
  EXPECT_DOUBLE_EQ(rect.Width(), 2.0);
  EXPECT_DOUBLE_EQ(rect.Height(), 3.0);
  EXPECT_DOUBLE_EQ(rect.Area(), 6.0);
  EXPECT_DOUBLE_EQ(rect.SemiPerimeter(), 5.0);
  EXPECT_EQ(rect.Center(), (Point{1.0, 1.5}));
}

TEST(RectTest, ContainsIsInclusive) {
  const Rect rect(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(rect.Contains(Point{0.0, 0.0}));
  EXPECT_TRUE(rect.Contains(Point{1.0, 1.0}));
  EXPECT_TRUE(rect.Contains(Point{0.5, 0.5}));
  EXPECT_FALSE(rect.Contains(Point{1.0001, 0.5}));
  EXPECT_FALSE(rect.Contains(Point{0.5, -0.0001}));
}

TEST(RectTest, ContainsRect) {
  const Rect outer(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(outer.Contains(Rect(0.2, 0.2, 0.8, 0.8)));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(Rect(0.5, 0.5, 1.5, 0.9)));
  EXPECT_TRUE(outer.Contains(Rect()));   // empty is inside everything
  EXPECT_FALSE(Rect().Contains(outer));  // nothing is inside empty
}

TEST(RectTest, Intersects) {
  const Rect a(0.0, 0.0, 1.0, 1.0);
  EXPECT_TRUE(a.Intersects(Rect(0.5, 0.5, 2.0, 2.0)));
  EXPECT_TRUE(a.Intersects(Rect(1.0, 1.0, 2.0, 2.0)));  // touching corner
  EXPECT_FALSE(a.Intersects(Rect(1.1, 1.1, 2.0, 2.0)));
  EXPECT_FALSE(a.Intersects(Rect()));
}

TEST(RectTest, UnionCoversBoth) {
  const Rect a(0.0, 0.0, 1.0, 1.0);
  const Rect b(2.0, -1.0, 3.0, 0.5);
  const Rect u = Rect::Union(a, b);
  EXPECT_TRUE(u.Contains(a));
  EXPECT_TRUE(u.Contains(b));
  EXPECT_EQ(u, Rect(0.0, -1.0, 3.0, 1.0));
  EXPECT_EQ(Rect::Union(a, Rect()), a);
  EXPECT_EQ(Rect::Union(Rect(), b), b);
}

TEST(RectTest, ExpandToInclude) {
  Rect rect;
  rect.ExpandToInclude(Point{0.5, 0.5});
  EXPECT_EQ(rect, Rect::FromPoint(Point{0.5, 0.5}));
  EXPECT_DOUBLE_EQ(rect.Area(), 0.0);
  rect.ExpandToInclude(Point{0.0, 1.0});
  EXPECT_EQ(rect, Rect(0.0, 0.5, 0.5, 1.0));
  rect.ExpandToInclude(Point{0.25, 0.75});  // interior: no change
  EXPECT_EQ(rect, Rect(0.0, 0.5, 0.5, 1.0));
}

TEST(RectTest, Inflated) {
  const Rect rect(0.5, 0.5, 1.0, 1.5);
  EXPECT_EQ(rect.Inflated(0.5), Rect(0.0, 0.0, 1.5, 2.0));
  EXPECT_EQ(rect.Inflated(0.0), rect);
  EXPECT_TRUE(Rect().Inflated(1.0).empty());
}

TEST(RectTest, DegenerateRectHasZeroArea) {
  const Rect line(0.0, 0.0, 1.0, 0.0);
  EXPECT_DOUBLE_EQ(line.Area(), 0.0);
  EXPECT_DOUBLE_EQ(line.SemiPerimeter(), 1.0);
  EXPECT_TRUE(line.Contains(Point{0.5, 0.0}));
}

}  // namespace
}  // namespace nela::geo
