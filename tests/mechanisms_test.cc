// Baseline-mechanism tests (ctest label: mechanisms).
//
// Three layers of coverage:
//  1. unit semantics of each baseline (grid cell shape/occupancy, geo-ind
//     noise actually applied, DLS candidate-set shape and entropy pool);
//  2. the leak-contract matrix: every honest mechanism runs under the
//     AdversaryObserver chained with its family's LeakContractChecker and
//     must come out exactly as clean as its declared contract allows;
//  3. a deliberately-leaky mutant per mechanism (NELA_TEST_LEAKY_VARIANT)
//     proving the detector actually fires -- each mutant trips the checker
//     or the taint scan while its honest twin, under identical scrutiny,
//     stays clean.

// Enables the test-local leaky mechanism variants below. The mutants exist
// only in this translation unit; the library never ships one.
#define NELA_TEST_LEAKY_VARIANT 1

#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "audit/leak_contract.h"
#include "audit/observer.h"
#include "audit/taint.h"
#include "audit/tap_chain.h"
#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "core/cloaking_engine.h"
#include "core/mechanism.h"
#include "core/policy_factory.h"
#include "core/request_context.h"
#include "data/generators.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "mechanisms/cluster_bound.h"
#include "mechanisms/comparative_driver.h"
#include "mechanisms/dummy_locations.h"
#include "mechanisms/factory.h"
#include "mechanisms/geo_ind.h"
#include "mechanisms/grid_cloak.h"
#include "net/network.h"
#include "scenario_fixtures.h"
#include "util/rng.h"
#include "util/status.h"

namespace nela::mechanisms {
namespace {

using fixtures::MakeWorld;
using fixtures::SmallWorld;
using fixtures::SmallWorldBounding;

constexpr uint32_t kK = 4;

// One audit stack: observer (taint-armed) + family contract checker,
// chained onto the network tap.
struct AuditStack {
  AuditStack(const data::Dataset& dataset, audit::MechanismFamily family,
             uint32_t k, net::Network* network, bool allow_declared) {
    for (uint32_t i = 0; i < dataset.size(); ++i) {
      taint.TaintPoint(i, dataset.point(i));
      true_points.push_back(dataset.point(i));
    }
    audit::ObserverConfig oc;
    oc.taint = &taint;
    oc.allow_declared_exposure = allow_declared;
    observer.emplace(oc);
    audit::LeakContractConfig cc;
    cc.family = family;
    cc.k = k;
    cc.true_points = true_points;
    checker.emplace(cc);
    chain.Add(&*observer);
    chain.Add(&*checker);
    network->SetTap(&chain);
  }

  audit::TaintSet taint;
  std::vector<geo::Point> true_points;
  std::optional<audit::AdversaryObserver> observer;
  std::optional<audit::LeakContractChecker> checker;
  audit::TapChain chain;
};

core::MechanismOutcome MustCloak(core::Mechanism& mechanism, uint64_t seed,
                                 uint64_t ordinal, data::UserId host) {
  core::RequestContext ctx(seed, ordinal, host);
  core::MechanismOutcome outcome;
  auto status = mechanism.Cloak(ctx, host, &outcome);
  EXPECT_TRUE(status.ok()) << status.message();
  return outcome;
}

uint32_t CountInRect(const data::Dataset& dataset, const geo::Rect& rect) {
  uint32_t count = 0;
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    if (rect.Contains(dataset.point(i))) ++count;
  }
  return count;
}

// True when `value` is an exact center of the G x G candidate grid.
bool IsCellCenter(double value, uint32_t g) {
  const double scaled = value * g - 0.5;
  return scaled == std::floor(scaled) && value > 0.0 && value < 1.0;
}

// ------------------------------------------------------------ factory

TEST(MechanismFactoryTest, BuildsEveryBaselineFamily) {
  SmallWorld world = MakeWorld(11);
  net::Network network(world.dataset.size());
  MechanismParams params;
  for (audit::MechanismFamily family :
       {audit::MechanismFamily::kGridCloak, audit::MechanismFamily::kGeoInd,
        audit::MechanismFamily::kDummyLocations}) {
    auto mechanism =
        MakeMechanism(family, world.dataset, &network, kK, params);
    ASSERT_TRUE(mechanism.ok()) << static_cast<int>(family);
    EXPECT_STREQ(mechanism.value()->name(),
                 audit::MechanismFamilyName(family));
  }
}

TEST(MechanismFactoryTest, ClusterBoundNeedsAnEngine) {
  SmallWorld world = MakeWorld(11);
  auto mechanism = MakeMechanism(audit::MechanismFamily::kClusterBound,
                                 world.dataset, nullptr, kK, {});
  ASSERT_FALSE(mechanism.ok());
  EXPECT_EQ(mechanism.status().code(), util::StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ grid cloak

TEST(GridCloakTest, RegionIsDyadicContainsHostAndKUsers) {
  SmallWorld world = MakeWorld(21);
  net::Network network(world.dataset.size());
  GridCloakMechanism grid(world.dataset, &network, kK, /*max_depth=*/8);

  for (data::UserId host : {0u, 17u, 101u, 199u}) {
    core::MechanismOutcome outcome = MustCloak(grid, 5, host, host);
    ASSERT_TRUE(outcome.satisfied);
    ASSERT_FALSE(outcome.region.empty());
    EXPECT_TRUE(outcome.region.Contains(world.dataset.point(host)));
    EXPECT_GE(CountInRect(world.dataset, outcome.region), kK);
    // Dyadic square: width == height == 2^-d and edges are multiples of it.
    const double w = outcome.region.Width();
    EXPECT_EQ(w, outcome.region.Height());
    const double inv = 1.0 / w;
    EXPECT_EQ(inv, std::floor(inv));
    EXPECT_EQ(outcome.region.min_x() * inv,
              std::floor(outcome.region.min_x() * inv));
    EXPECT_EQ(outcome.region.min_y() * inv,
              std::floor(outcome.region.min_y() * inv));
  }
}

TEST(GridCloakTest, SparsePopulationDegradesInsteadOfLying) {
  util::Rng rng(3);
  data::Dataset dataset = data::GenerateUniform(2, rng);
  net::Network network(dataset.size());
  GridCloakMechanism grid(dataset, &network, /*k=*/5, /*max_depth=*/4);
  core::MechanismOutcome outcome = MustCloak(grid, 5, 0, 0);
  EXPECT_FALSE(outcome.satisfied);
  EXPECT_TRUE(outcome.region.empty());
}

TEST(GridCloakTest, UploadIsDeclaredExposureNotViolation) {
  SmallWorld world = MakeWorld(21);
  net::Network network(world.dataset.size());
  AuditStack audit(world.dataset, audit::MechanismFamily::kGridCloak, kK,
                   &network, /*allow_declared=*/true);
  GridCloakMechanism grid(world.dataset, &network, kK, 8);
  MustCloak(grid, 5, 42, 42);
  network.SetTap(nullptr);
  audit.checker->Finalize();
  EXPECT_TRUE(audit.observer->clean()) << audit.observer->Report();
  EXPECT_TRUE(audit.checker->clean()) << audit.checker->Report();
  // The raw upload crossed the wire and was counted, not flagged.
  EXPECT_GT(audit.observer->declared_exposures(), 0u);
}

// ------------------------------------------------------------ geo-ind

TEST(GeoIndTest, NoiseIsAppliedAndSeedReproducible) {
  SmallWorld world = MakeWorld(31);
  net::Network network(world.dataset.size());
  GeoIndMechanism geo(world.dataset, &network, /*epsilon=*/20.0);

  core::MechanismOutcome a = MustCloak(geo, 9, 3, 55);
  core::MechanismOutcome b = MustCloak(geo, 9, 3, 55);
  ASSERT_EQ(a.probes.size(), 1u);
  ASSERT_EQ(b.probes.size(), 1u);
  // Same (seed, ordinal) -> bit-identical probe; the noise is real.
  EXPECT_EQ(a.probes[0].x, b.probes[0].x);
  EXPECT_EQ(a.probes[0].y, b.probes[0].y);
  const geo::Point truth = world.dataset.point(55);
  EXPECT_NE(a.probes[0].x, truth.x);
  EXPECT_NE(a.probes[0].y, truth.y);

  // A different ordinal draws a different sub-stream.
  core::MechanismOutcome c = MustCloak(geo, 9, 4, 55);
  EXPECT_FALSE(a.probes[0].x == c.probes[0].x &&
               a.probes[0].y == c.probes[0].y);
}

TEST(GeoIndTest, CleanUnderStrictAudit) {
  SmallWorld world = MakeWorld(31);
  net::Network network(world.dataset.size());
  AuditStack audit(world.dataset, audit::MechanismFamily::kGeoInd, kK,
                   &network, /*allow_declared=*/false);
  GeoIndMechanism geo(world.dataset, &network, 20.0);
  for (uint64_t ordinal = 0; ordinal < 16; ++ordinal) {
    MustCloak(geo, 13, ordinal, static_cast<data::UserId>(ordinal * 7));
  }
  network.SetTap(nullptr);
  audit.checker->Finalize();
  EXPECT_TRUE(audit.observer->clean()) << audit.observer->Report();
  EXPECT_TRUE(audit.checker->clean()) << audit.checker->Report();
  EXPECT_EQ(audit.observer->declared_exposures(), 0u);
}

// ------------------------------------------------------------ dummy set

TEST(DummyLocationTest, CandidatesAreCellCentersIncludingOwnCell) {
  SmallWorld world = MakeWorld(41);
  net::Network network(world.dataset.size());
  constexpr uint32_t kG = 16;
  DummyLocationMechanism dls(world.dataset, &network, kK, kG,
                             /*subset_draws=*/5);
  const data::UserId host = 77;
  core::MechanismOutcome outcome = MustCloak(dls, 17, 0, host);
  ASSERT_TRUE(outcome.satisfied);
  ASSERT_EQ(outcome.probes.size(), kK);

  const geo::Point truth = world.dataset.point(host);
  auto cell = [](double v) {
    uint32_t c = static_cast<uint32_t>(v * kG);
    return c >= kG ? kG - 1 : c;
  };
  const uint64_t own_cell = uint64_t{cell(truth.y)} * kG + cell(truth.x);
  std::set<uint64_t> cells;
  for (const geo::Point& p : outcome.probes) {
    EXPECT_TRUE(IsCellCenter(p.x, kG)) << p.x;
    EXPECT_TRUE(IsCellCenter(p.y, kG)) << p.y;
    cells.insert(uint64_t{cell(p.y)} * kG + cell(p.x));
  }
  EXPECT_EQ(cells.size(), kK);  // k DISTINCT cells
  EXPECT_TRUE(cells.count(own_cell) == 1);
}

TEST(DummyLocationTest, CleanUnderStrictAudit) {
  SmallWorld world = MakeWorld(41);
  net::Network network(world.dataset.size());
  AuditStack audit(world.dataset, audit::MechanismFamily::kDummyLocations, kK,
                   &network, /*allow_declared=*/false);
  DummyLocationMechanism dls(world.dataset, &network, kK, 16, 5);
  for (uint64_t ordinal = 0; ordinal < 16; ++ordinal) {
    MustCloak(dls, 19, ordinal, static_cast<data::UserId>(ordinal * 11));
  }
  network.SetTap(nullptr);
  audit.checker->Finalize();
  EXPECT_TRUE(audit.observer->clean()) << audit.observer->Report();
  EXPECT_TRUE(audit.checker->clean()) << audit.checker->Report();
}

// ------------------------------------------------- comparative campaigns

TEST(ComparativeCampaignTest, EveryFamilyHonorsItsContract) {
  SmallWorld world = MakeWorld(51);
  for (int f = 0; f < audit::kMechanismFamilyCount; ++f) {
    const auto family = static_cast<audit::MechanismFamily>(f);
    CampaignConfig config;
    config.family = family;
    config.k = kK;
    config.requests = 24;
    auto result = RunCampaign(world.dataset, world.graph, config);
    ASSERT_TRUE(result.ok()) << result.status().message();
    const CampaignResult& r = result.value();
    EXPECT_EQ(r.mechanism, audit::MechanismFamilyName(family));
    EXPECT_EQ(r.observer_violations, 0u) << r.mechanism;
    EXPECT_EQ(r.contract_violations, 0u) << r.mechanism;
    EXPECT_GT(r.satisfied, 0u) << r.mechanism;
    EXPECT_GT(r.messages_on_wire, 0u) << r.mechanism;
    if (family == audit::MechanismFamily::kGridCloak) {
      // The declared client->anonymizer channel: counted, never flagged.
      EXPECT_GT(r.declared_exposures, 0u);
    } else {
      EXPECT_EQ(r.declared_exposures, 0u) << r.mechanism;
    }
    if (family == audit::MechanismFamily::kClusterBound) {
      // Only the native scheme runs the bounding protocol, so only it
      // gives the adversary a provable (but safely wide) interval.
      EXPECT_TRUE(std::isfinite(r.tightest_learned_width));
      EXPECT_GT(r.tightest_learned_width, 1e-9);
    } else {
      EXPECT_TRUE(std::isinf(r.tightest_learned_width)) << r.mechanism;
    }
  }
}

TEST(ComparativeCampaignTest, DeterministicUnderSameSeeds) {
  SmallWorld world = MakeWorld(51);
  CampaignConfig config;
  config.family = audit::MechanismFamily::kGeoInd;
  config.k = kK;
  config.requests = 16;
  auto a = RunCampaign(world.dataset, world.graph, config);
  auto b = RunCampaign(world.dataset, world.graph, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().mean_query_cost, b.value().mean_query_cost);
  EXPECT_EQ(a.value().mean_candidate_count, b.value().mean_candidate_count);
  EXPECT_EQ(a.value().messages_on_wire, b.value().messages_on_wire);
}

#if NELA_TEST_LEAKY_VARIANT
// ------------------------------------------------------- leaky mutants
//
// Each mutant is the honest mechanism with one privacy bug injected; the
// audit stack that passes the honest twin must flag the mutant. This is
// the detector's own test suite: a checker that cannot catch its
// mechanism's canonical bug is vacuous.

// Geo-ind with the noise knocked out: ships the true coordinates under the
// kNoisedCoordinate tag. The taint scan (bit-exact) and the contract
// (bit-equal to a true point) must both fire.
class LeakyGeoIndMechanism : public core::Mechanism {
 public:
  LeakyGeoIndMechanism(const data::Dataset& dataset, net::Network* network)
      : dataset_(dataset), network_(network) {}
  const char* name() const override { return "geo_ind_leaky"; }
  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override {
    const geo::Point truth = dataset_.point(host);
    net::Message request;
    request.from = host;
    request.to = host;
    request.kind = net::MessageKind::kServiceRequest;
    request.bytes = 16;
    request.payload.Add(net::FieldTag::kNoisedCoordinate, host, truth.x);
    request.payload.Add(net::FieldTag::kNoisedCoordinate, host, truth.y);
    network_->Send(request, &ctx.scope());
    outcome->probes = {truth};
    outcome->satisfied = true;
    outcome->messages_sent = 1;
    return util::Status::Ok();
  }

 private:
  const data::Dataset& dataset_;
  net::Network* network_;
};

// Grid cloak that publishes a tight, non-dyadic box around the host --
// smaller than any k-occupant cell, so it serves better utility by
// breaking the contract's alignment and occupancy promises.
class LeakyGridCloakMechanism : public core::Mechanism {
 public:
  LeakyGridCloakMechanism(const data::Dataset& dataset, net::Network* network)
      : dataset_(dataset), network_(network) {}
  const char* name() const override { return "grid_cloak_leaky"; }
  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override {
    const geo::Point truth = dataset_.point(host);
    const geo::Rect region(truth.x - 0.001, truth.y - 0.001, truth.x + 0.001,
                           truth.y + 0.001);
    net::Message request;
    request.from = host;
    request.to = host;
    request.kind = net::MessageKind::kServiceRequest;
    request.bytes = 32;
    request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                        region.min_x());
    request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                        region.min_y());
    request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                        region.max_x());
    request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                        region.max_y());
    network_->Send(request, &ctx.scope());
    outcome->region = region;
    outcome->satisfied = true;
    outcome->messages_sent = 1;
    return util::Status::Ok();
  }

 private:
  const data::Dataset& dataset_;
  net::Network* network_;
};

// DLS that "snaps" its own location by not snapping at all: the host's
// raw position rides along as one of the candidates. Both detectors fire:
// the taint scan (raw bits on the wire) and the contract (a candidate
// that is not an exact cell center).
class LeakyDummyLocationMechanism : public core::Mechanism {
 public:
  LeakyDummyLocationMechanism(const data::Dataset& dataset,
                              net::Network* network, uint32_t k, uint32_t g)
      : honest_(dataset, network, k, g, 5),
        dataset_(dataset),
        network_(network) {}
  const char* name() const override { return "dummy_locations_leaky"; }
  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override {
    auto status = honest_.Cloak(ctx, host, outcome);
    if (!status.ok()) return status;
    // The bug: one more "candidate" that is the true position itself.
    const geo::Point truth = dataset_.point(host);
    net::Message request;
    request.from = host;
    request.to = host;
    request.kind = net::MessageKind::kServiceRequest;
    request.bytes = 16;
    request.payload.Add(net::FieldTag::kCandidateLocation, host, truth.x);
    request.payload.Add(net::FieldTag::kCandidateLocation, host, truth.y);
    network_->Send(request, &ctx.scope());
    outcome->probes.push_back(truth);
    ++outcome->messages_sent;
    return util::Status::Ok();
  }

 private:
  DummyLocationMechanism honest_;
  const data::Dataset& dataset_;
  net::Network* network_;
};

// DLS that sends k-1 honest-looking candidates but omits the host's own
// cell entirely -- every field is a legal cell center, so only the
// Finalize-time union check can catch it.
class CowardDummyLocationMechanism : public core::Mechanism {
 public:
  CowardDummyLocationMechanism(const data::Dataset& dataset,
                               net::Network* network, uint32_t k, uint32_t g)
      : dataset_(dataset), network_(network), k_(k), g_(g) {}
  const char* name() const override { return "dummy_locations_coward"; }
  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override {
    const geo::Point truth = dataset_.point(host);
    const auto cell = [this](double v) {
      uint32_t c = static_cast<uint32_t>(v * g_);
      return c >= g_ ? g_ - 1 : c;
    };
    const uint32_t own_cx = cell(truth.x);
    // k-1 cells marching away from the host's column, own cell skipped.
    uint32_t sent = 0;
    for (uint32_t i = 0; i < g_ && sent + 1 < k_; ++i) {
      if (i == own_cx) continue;
      const double cx = (i + 0.5) / g_;
      const double cy = (cell(truth.y) + 0.5) / g_;
      net::Message request;
      request.from = host;
      request.to = host;
      request.kind = net::MessageKind::kServiceRequest;
      request.bytes = 16;
      request.payload.Add(net::FieldTag::kCandidateLocation, host, cx);
      request.payload.Add(net::FieldTag::kCandidateLocation, host, cy);
      network_->Send(request, &ctx.scope());
      outcome->probes.push_back(geo::Point{cx, cy});
      ++sent;
    }
    outcome->satisfied = true;
    outcome->messages_sent = sent;
    return util::Status::Ok();
  }

 private:
  const data::Dataset& dataset_;
  net::Network* network_;
  uint32_t k_;
  uint32_t g_;
};

// Runs `leaky` and its honest `control` over the same hosts under
// identical audit stacks; asserts the control is clean and the mutant is
// caught by observer taint, the contract checker, or both.
struct MutantVerdict {
  bool control_clean = false;
  bool mutant_caught = false;
};

MutantVerdict RunMutantArm(const SmallWorld& world,
                           audit::MechanismFamily family, bool allow_declared,
                           core::Mechanism& control, core::Mechanism& leaky,
                           net::Network& network) {
  MutantVerdict verdict;
  {
    AuditStack audit(world.dataset, family, kK, &network, allow_declared);
    for (uint64_t ordinal = 0; ordinal < 8; ++ordinal) {
      MustCloak(control, 23, ordinal, static_cast<data::UserId>(ordinal * 13));
    }
    network.SetTap(nullptr);
    audit.checker->Finalize();
    verdict.control_clean =
        audit.observer->clean() && audit.checker->clean();
    EXPECT_TRUE(verdict.control_clean)
        << audit.observer->Report() << audit.checker->Report();
  }
  {
    AuditStack audit(world.dataset, family, kK, &network, allow_declared);
    for (uint64_t ordinal = 0; ordinal < 8; ++ordinal) {
      MustCloak(leaky, 23, ordinal, static_cast<data::UserId>(ordinal * 13));
    }
    network.SetTap(nullptr);
    audit.checker->Finalize();
    verdict.mutant_caught =
        !audit.observer->clean() || !audit.checker->clean();
    EXPECT_TRUE(verdict.mutant_caught)
        << "mutant escaped both detectors: " << leaky.name();
  }
  return verdict;
}

TEST(LeakyMutantTest, ZeroNoiseGeoIndIsCaught) {
  SmallWorld world = MakeWorld(61);
  net::Network network(world.dataset.size());
  GeoIndMechanism control(world.dataset, &network, 20.0);
  LeakyGeoIndMechanism leaky(world.dataset, &network);
  RunMutantArm(world, audit::MechanismFamily::kGeoInd,
               /*allow_declared=*/false, control, leaky, network);
}

TEST(LeakyMutantTest, MisalignedUnderOccupiedGridIsCaught) {
  SmallWorld world = MakeWorld(61);
  net::Network network(world.dataset.size());
  GridCloakMechanism control(world.dataset, &network, kK, 8);
  LeakyGridCloakMechanism leaky(world.dataset, &network);
  RunMutantArm(world, audit::MechanismFamily::kGridCloak,
               /*allow_declared=*/true, control, leaky, network);
}

TEST(LeakyMutantTest, RawCandidateDummySetIsCaught) {
  SmallWorld world = MakeWorld(61);
  net::Network network(world.dataset.size());
  DummyLocationMechanism control(world.dataset, &network, kK, 16, 5);
  LeakyDummyLocationMechanism leaky(world.dataset, &network, kK, 16);
  RunMutantArm(world, audit::MechanismFamily::kDummyLocations,
               /*allow_declared=*/false, control, leaky, network);
}

TEST(LeakyMutantTest, MissingOwnCellDummySetIsCaughtAtFinalize) {
  SmallWorld world = MakeWorld(61);
  net::Network network(world.dataset.size());
  DummyLocationMechanism control(world.dataset, &network, kK, 16, 5);
  CowardDummyLocationMechanism leaky(world.dataset, &network, kK, 16);
  MutantVerdict verdict =
      RunMutantArm(world, audit::MechanismFamily::kDummyLocations,
                   /*allow_declared=*/false, control, leaky, network);
  EXPECT_TRUE(verdict.mutant_caught);
}
#endif  // NELA_TEST_LEAKY_VARIANT

// ----------------------------------------- native scheme through the seam

TEST(ClusterBoundMechanismTest, AdaptsEngineOutcomeThroughTheSeam) {
  SmallWorld world = MakeWorld(71);
  cluster::Registry registry(world.dataset.size());
  core::CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, kK,
                                                           &registry),
      &registry, core::MakeSecurePolicyFactory(SmallWorldBounding()));
  ClusterBoundMechanism mechanism(&engine);
  EXPECT_STREQ(mechanism.name(), "cluster_bound");

  core::MechanismOutcome outcome = MustCloak(mechanism, 1, 0, 17);
  ASSERT_TRUE(outcome.satisfied);
  ASSERT_FALSE(outcome.region.empty());
  EXPECT_TRUE(outcome.region.Contains(world.dataset.point(17)));
  EXPECT_GT(outcome.messages_sent, 0u);
}

}  // namespace
}  // namespace nela::mechanisms
