// End-to-end non-exposure property suite (the ISSUE-3 acceptance bar).
//
// Each case draws a fresh random world (dataset family, size, WPG density),
// an anonymity requirement k, an increment-policy family, and optionally a
// fault plan; runs a batch of cloaking requests with the adversary observer
// tapping every wire message and every user's coordinates tainted; and
// asserts zero exposure violations plus a passing anonymity audit. Under
// CI the iteration count is elevated via NELA_PROPTEST_ITERS so the
// unmodified protocol is exercised over 500+ seeded scenarios; a failing
// case prints a one-line seeded repro.
//
// The suite also sweeps the baseline mechanisms (grid cloak, geo-ind,
// dummy locations) through the comparative campaign driver under the same
// observer plus each family's leak-contract checker, so `ctest -L
// mechanisms` includes it.

#include <cmath>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "audit/leak_contract.h"
#include "audit/observer.h"
#include "audit/taint.h"
#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "core/anonymity_audit.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "mechanisms/comparative_driver.h"
#include "net/network.h"
#include "net/retry.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace nela {
namespace {

struct World {
  data::Dataset dataset;
  graph::Wpg graph;
};

// Random world: uniform or clustered points, 120-320 users, WPG density
// scaled so the expected neighborhood stays roughly constant across sizes.
World DrawWorld(util::Rng& rng) {
  const uint32_t n = 120 + static_cast<uint32_t>(rng.NextUint64(201));
  util::Rng data_rng(rng.NextUint64());
  data::Dataset dataset;
  if (rng.NextBernoulli(0.5)) {
    dataset = data::GenerateUniform(n, data_rng);
  } else {
    data::ClusteredParams params;
    params.count = n;
    params.num_clusters = 6;
    params.background_fraction = 0.2;
    params.min_sigma = 0.02;
    params.max_sigma = 0.08;
    dataset = data::GenerateClustered(params, data_rng);
  }
  graph::WpgBuildParams wpg;
  wpg.delta = 0.12 * std::sqrt(200.0 / static_cast<double>(n));
  wpg.max_peers = 8;
  auto graph = graph::BuildWpg(dataset, wpg);
  NELA_CHECK(graph.ok());
  return World{std::move(dataset), std::move(graph).value()};
}

core::PolicyFactory DrawPolicyFactory(util::Rng& rng, uint32_t n) {
  core::BoundingParams params;
  params.density = static_cast<double>(n);
  params.cr = rng.NextDouble(10.0, 2000.0);
  params.cb = rng.NextDouble(0.25, 4.0);
  switch (rng.NextUint64(3)) {
    case 0:
      return core::MakeSecurePolicyFactory(params);
    case 1:
      return core::MakeLinearPolicyFactory(params);
    default:
      return core::MakeExponentialPolicyFactory(params);
  }
}

std::optional<net::FaultPlan> DrawFaultPlan(util::Rng& rng, uint32_t n) {
  if (rng.NextBernoulli(0.4)) return std::nullopt;  // clean network
  net::FaultPlan plan;
  plan.seed = rng.NextUint64();
  plan.loss_probability = rng.NextDouble(0.0, 0.1);
  if (rng.NextBernoulli(0.4)) {
    plan.latency.base_ms = rng.NextDouble(0.1, 2.0);
    plan.latency.jitter_ms = rng.NextDouble(0.0, 1.0);
  }
  const uint32_t crashes = static_cast<uint32_t>(rng.NextUint64(3));
  for (uint32_t i = 0; i < crashes; ++i) {
    plan.crashes.push_back(
        net::CrashEvent{static_cast<net::NodeId>(rng.NextUint64(n)),
                        rng.NextUint64(2500) + 1});
  }
  return plan;
}

// One end-to-end scenario under the observer; returns a failure description
// or nullopt. `mode` selects the secure protocol or the OPT baseline;
// OPT's raw-coordinate uploads are declared, so the observer is run in
// declared-exposure mode for it and must stay clean *except* for the
// declared channel it accounts separately.
std::optional<std::string> RunScenario(util::Rng& rng, uint32_t size,
                                       core::BoundingMode mode) {
  const World world = DrawWorld(rng);
  const uint32_t n = world.dataset.size();
  const uint32_t k = size;

  net::Network network(n);
  const std::optional<net::FaultPlan> plan = DrawFaultPlan(rng, n);
  if (plan.has_value()) {
    if (!network.InstallFaultPlan(*plan).ok()) {
      return std::string("fault plan rejected");
    }
  }

  audit::TaintSet taint;
  for (uint32_t u = 0; u < n; ++u) {
    taint.TaintPoint(u, world.dataset.point(u));
  }
  audit::ObserverConfig observer_config;
  observer_config.taint = &taint;
  observer_config.allow_declared_exposure =
      mode == core::BoundingMode::kOptBaseline;
  audit::AdversaryObserver observer(observer_config);
  network.SetTap(&observer);

  cluster::Registry registry(n);
  auto clusterer = std::make_unique<cluster::DistributedTConnClusterer>(
      world.graph, k, &registry, &network);
  util::Rng jitter(rng.NextUint64());
  clusterer->SetRetryPolicy(net::BackoffPolicy{}, &jitter);
  core::CloakingEngine engine(world.dataset, std::move(clusterer), &registry,
                              DrawPolicyFactory(rng, n), mode, &network);
  engine.SetRetryPolicy(net::BackoffPolicy{}, &jitter);

  const uint32_t requests = 5 + static_cast<uint32_t>(rng.NextUint64(6));
  uint32_t satisfied = 0;
  for (uint32_t r = 0; r < requests; ++r) {
    const data::UserId host = static_cast<data::UserId>(rng.NextUint64(n));
    auto outcome = engine.RequestCloaking(host);
    if (!outcome.ok()) {
      if (outcome.status().code() == util::StatusCode::kUnavailable) {
        continue;  // host crashed out; an expected chaos outcome
      }
      return "unexpected engine error: " + outcome.status().ToString();
    }
    const core::CloakingOutcome& o = outcome.value();
    if (o.anonymity_satisfied) {
      ++satisfied;
      if (o.region.empty()) {
        return std::string("satisfied outcome with empty region");
      }
    } else if (!o.region.empty()) {
      return std::string("degraded outcome carries a non-empty region");
    }
  }
  network.SetTap(nullptr);

  std::vector<bool> alive(n);
  for (uint32_t u = 0; u < n; ++u) alive[u] = network.IsAlive(u);
  const core::AuditReport report =
      core::AuditAnonymity(registry, world.dataset, k, &alive);
  if (!report.ok()) {
    return "anonymity audit failed: " + report.violations.front().description;
  }
  if (!observer.clean()) {
    return "observer flagged exposure:\n" + observer.Report();
  }
  if (observer.messages_seen() == 0) {
    return std::string("observer saw no traffic");
  }
  if (observer.tagged_messages() == 0) {
    return std::string("no tagged traffic observed");
  }
  if (mode == core::BoundingMode::kOptBaseline && satisfied > 0 &&
      observer.declared_exposures() == 0) {
    return std::string(
        "OPT baseline satisfied requests without any declared exposure");
  }
  if (mode == core::BoundingMode::kSecureProtocol &&
      observer.declared_exposures() != 0) {
    return "secure protocol produced declared exposures: " +
           std::to_string(observer.declared_exposures());
  }
  return std::nullopt;
}

TEST(NonExposureProptest, SecureProtocolNeverExposesAcrossRandomScenarios) {
  util::PropSpec spec;
  spec.name = "nonexposure_proptest";
  spec.base_seed = 0x10ca7e5u;
  spec.iterations = 25;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 2;
  spec.max_size = 8;  // size doubles as the anonymity requirement k

  auto failure = util::RunProperty(
      spec, [](util::Rng& rng, uint32_t size) {
        return RunScenario(rng, size, core::BoundingMode::kSecureProtocol);
      });
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
}

// One comparative-campaign scenario: a random mechanism family over a
// random world, k, and fault plan, with the observer AND the family's
// leak-contract checker chained on the wire (RunCampaign installs both).
// The property is the leak contract itself: zero observer violations,
// zero contract violations, and declared exposures exactly on the one
// family (grid cloak) whose contract declares an upload channel.
std::optional<std::string> RunMechanismScenario(util::Rng& rng,
                                                uint32_t size) {
  const World world = DrawWorld(rng);
  const auto family = static_cast<audit::MechanismFamily>(
      rng.NextUint64(audit::kMechanismFamilyCount));

  mechanisms::CampaignConfig config;
  config.family = family;
  config.k = size;
  config.requests = 8 + static_cast<uint32_t>(rng.NextUint64(9));
  config.master_seed = rng.NextUint64();
  config.workload_seed = rng.NextUint64();
  config.fault_plan = DrawFaultPlan(rng, world.dataset.size());

  auto result = mechanisms::RunCampaign(world.dataset, world.graph, config);
  if (!result.ok()) {
    return "campaign error: " + result.status().ToString();
  }
  const mechanisms::CampaignResult& r = result.value();
  if (r.observer_violations != 0) {
    return r.mechanism + ": observer flagged " +
           std::to_string(r.observer_violations) + " exposure violations";
  }
  if (r.contract_violations != 0) {
    return r.mechanism + ": " + std::to_string(r.contract_violations) +
           " leak-contract violations";
  }
  if (r.messages_on_wire == 0) {
    return r.mechanism + ": no wire traffic observed";
  }
  if (family != audit::MechanismFamily::kGridCloak &&
      r.declared_exposures != 0) {
    return r.mechanism + ": undeclared mechanism produced " +
           std::to_string(r.declared_exposures) + " declared exposures";
  }
  if (family == audit::MechanismFamily::kGridCloak && r.satisfied > 0 &&
      r.declared_exposures == 0) {
    return r.mechanism +
           ": satisfied requests without the declared upload channel";
  }
  return std::nullopt;
}

TEST(NonExposureProptest, EveryMechanismHonorsItsLeakContract) {
  util::PropSpec spec;
  spec.name = "nonexposure_proptest";
  spec.base_seed = 0x3eca715u;
  spec.iterations = 20;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 2;
  spec.max_size = 8;  // size doubles as the anonymity requirement k

  auto failure = util::RunProperty(spec, RunMechanismScenario);
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
}

TEST(NonExposureProptest, OptBaselineExposuresAreExactlyTheDeclaredOnes) {
  // The OPT baseline uploads raw coordinates by design; run under the
  // observer's declared-exposure mode it must stay clean (nothing leaks
  // beyond the declared channel) while the declared channel itself is
  // non-empty whenever a request succeeds.
  util::PropSpec spec;
  spec.name = "nonexposure_proptest";
  spec.base_seed = 0x0b7ba5eu;
  spec.iterations = 10;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 2;
  spec.max_size = 6;

  auto failure = util::RunProperty(
      spec, [](util::Rng& rng, uint32_t size) {
        return RunScenario(rng, size, core::BoundingMode::kOptBaseline);
      });
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
}

}  // namespace
}  // namespace nela
