// Flow-tracking tests for the coordinate-taint pass
// (tools/nela_lint/taint.h): per-function source seeding, propagation
// through locals and members, producer-helper returns, each sink, the
// sanctioned flows, and — mirroring the runtime verifier's mutation tests
// — seeded mutants of *real in-tree sources*: textually re-introducing
// the leaks the pass exists to forbid must produce findings, while the
// committed sources stay clean.

#include "nela_lint/taint.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nela_lint/lint.h"

namespace nela::lint {
namespace {

#ifndef NELA_LINT_SOURCE_DIR
#error "build must define NELA_LINT_SOURCE_DIR"
#endif

std::string ReadSource(const std::string& rel) {
  const std::string path = std::string(NELA_LINT_SOURCE_DIR) + "/" + rel;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing source " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

size_t Count(const std::vector<TaintFinding>& findings) {
  return findings.size();
}

// --- source seeding and propagation --------------------------------------

TEST(TaintFlowTest, PointParameterTaintsKControlValue) {
  const auto findings = RunCoordinateTaint(
      "void f(net::Network& n, const geo::Point& own) {\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, own.x);\n"
      "}\n");
  ASSERT_EQ(Count(findings), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(TaintFlowTest, TaintFlowsThroughALocalDouble) {
  const auto findings = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  const double innocuous = own.y;\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, innocuous);\n"
      "}\n");
  ASSERT_EQ(Count(findings), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(TaintFlowTest, TaintFlowsThroughReassignmentChains) {
  const auto findings = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  double a = own.x;\n"
      "  double b = 0.0;\n"
      "  b = a * 2.0 + 1.0;\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, b);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

TEST(TaintFlowTest, PointLocalDeclarationsAreSources) {
  const auto findings = RunCoordinateTaint(
      "void f(const data::Dataset& d) {\n"
      "  const geo::Point& own = d.point(0);\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, own.x);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

TEST(TaintFlowTest, PrivateScalarIsASource) {
  const auto findings = RunCoordinateTaint(
      "void f(const std::vector<PrivateScalar>& secrets) {\n"
      "  const double exposed = secrets[0].ExposeForOptBaseline();\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, exposed);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

TEST(TaintFlowTest, RangeForOverPointsTaintsTheLoopVariable) {
  const auto findings = RunCoordinateTaint(
      "void f(const std::vector<geo::Point>& pts) {\n"
      "  for (const geo::Point& p : pts) {\n"
      "    net::Message m;\n"
      "    m.payload.Add(net::FieldTag::kControl, 0, p.x);\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

TEST(TaintFlowTest, SameFilePointProducerTaintsItsCallers) {
  const auto findings = RunCoordinateTaint(
      "geo::Point Centroid(const std::vector<geo::Point>& pts) {\n"
      "  return pts[0];\n"
      "}\n"
      "void g(const std::vector<geo::Point>& pts) {\n"
      "  const double cx = Centroid(pts).x;\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, cx);\n"
      "}\n");
  ASSERT_EQ(Count(findings), 1u);
  EXPECT_EQ(findings[0].line, 7);
}

TEST(TaintFlowTest, TaintDoesNotLeakAcrossFunctions) {
  // `value` is tainted in f but a fresh, clean name in g.
  const auto findings = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  double value = own.x;\n"
      "  (void)value;\n"
      "}\n"
      "void g(double value) {\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, value);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 0u);
}

TEST(TaintFlowTest, LambdasShareTheEnclosingTaintMap) {
  const auto findings = RunCoordinateTaint(
      "void f(net::Network& n, const geo::Point& own) {\n"
      "  auto send = [&](double v) {\n"
      "    net::Message m;\n"
      "    m.payload.Add(net::FieldTag::kControl, 0, own.y);\n"
      "  };\n"
      "  send(0.0);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

// --- sinks ----------------------------------------------------------------

TEST(TaintSinkTest, MessageFieldWriteIsASink) {
  const auto findings = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  net::Message m;\n"
      "  m.bytes = static_cast<uint64_t>(own.x);\n"
      "}\n");
  ASSERT_EQ(Count(findings), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(TaintSinkTest, PositionalSendArgumentIsASink) {
  const auto findings = RunCoordinateTaint(
      "void f(net::Network& n, const geo::Point& own) {\n"
      "  n.Send(0, 1, net::MessageKind::kControl,\n"
      "         static_cast<uint64_t>(own.x));\n"
      "}\n");
  ASSERT_EQ(Count(findings), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(TaintSinkTest, SendWithRetryArgumentsAreSinks) {
  const auto findings = RunCoordinateTaint(
      "void f(net::Network& n, util::Rng* rng, const geo::Point& own) {\n"
      "  net::BackoffPolicy policy;\n"
      "  net::SendWithRetry(n, 0, 1, net::MessageKind::kControl,\n"
      "                     static_cast<uint64_t>(own.y), policy, rng);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

TEST(TaintSinkTest, NonLiteralTagWithTaintedValueIsASink) {
  const auto findings = RunCoordinateTaint(
      "void f(net::FieldTag tag, const geo::Point& own) {\n"
      "  net::Message m;\n"
      "  m.payload.Add(tag, 0, own.x);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

TEST(TaintSinkTest, UndeclaredRawCoordinateFiresEvenUntainted) {
  // kRawCoordinate is exposure by definition: the tag alone demands a
  // declared channel, whatever the pass thinks of the value.
  const auto findings = RunCoordinateTaint(
      "void f(double v) {\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kRawCoordinate, 0, v);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 1u);
}

// --- sanctioned flows -----------------------------------------------------

TEST(TaintPolicyTest, TypedTagsSanctionTaintedValues) {
  const auto findings = RunCoordinateTaint(
      "void f(const geo::Point& probe) {\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kNoisedCoordinate, 0, probe.x);\n"
      "  m.payload.Add(net::FieldTag::kCandidateLocation, 0, probe.y);\n"
      "  m.payload.Add(net::FieldTag::kCloakedRegion, 0, probe.x);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 0u);
}

TEST(TaintPolicyTest, DeclareExposureSanctionsRawCoordinate) {
  const auto same_line = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  net::Message m;\n"
      "  m.payload.Add(net::FieldTag::kRawCoordinate, 0, own.x);"
      "  // nela-lint: declare-exposure(test-upload)\n"
      "}\n");
  EXPECT_EQ(Count(same_line), 0u);

  const auto prev_line = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  net::Message m;\n"
      "  // nela-lint: declare-exposure(test-upload)\n"
      "  m.payload.Add(net::FieldTag::kRawCoordinate, 0, own.x);\n"
      "}\n");
  EXPECT_EQ(Count(prev_line), 0u);
}

TEST(TaintPolicyTest, DeclareExposureSanctionsFieldWritesNotSmuggling) {
  // A declared side channel (the LBS reply-size shape) passes...
  const auto declared = RunCoordinateTaint(
      "void f(const geo::Point& probe, const lbs::Db& db) {\n"
      "  uint64_t count = db.CountInDisc(probe, 0.1);\n"
      "  net::Message m;\n"
      "  // nela-lint: declare-exposure(reply-size)\n"
      "  m.bytes = count * 64;\n"
      "}\n");
  EXPECT_EQ(Count(declared), 0u);
  // ...but declare-exposure does NOT whitewash a kControl smuggle: the fix
  // there is a proper tag, not a channel note.
  const auto smuggle = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  net::Message m;\n"
      "  // nela-lint: declare-exposure(nice-try)\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, own.x);\n"
      "}\n");
  EXPECT_EQ(Count(smuggle), 1u);
}

TEST(TaintPolicyTest, UntaintedValuesFlowFreely) {
  const auto findings = RunCoordinateTaint(
      "void f(net::Network& n, const geo::Rect& region) {\n"
      "  net::Message m;\n"
      "  m.bytes = 32;\n"
      "  m.payload.Add(net::FieldTag::kCloakedRegion, 0, region.min_x());\n"
      "  m.payload.Add(net::FieldTag::kControl, 0, 1.0);\n"
      "  n.Send(m);\n"
      "}\n");
  EXPECT_EQ(Count(findings), 0u);
}

TEST(TaintPolicyTest, CoordinatesInCommentsAndStringsAreNotFlows) {
  const auto findings = RunCoordinateTaint(
      "void f(const geo::Point& own) {\n"
      "  // m.payload.Add(net::FieldTag::kControl, 0, own.x) in a comment\n"
      "  const char* doc = \"payload.Add(net::FieldTag::kControl, 0, "
      "own.x)\";\n"
      "  (void)doc;\n"
      "}\n");
  EXPECT_EQ(Count(findings), 0u);
}

// --- seeded mutants of real in-tree sources -------------------------------
//
// The PR 3 / PR 8 methodology, applied to the static pass: mutate the
// committed source the way a leak would, and require the pass to catch
// exactly the mutation. The unmutated file must stay clean, so the test
// fails loudly if the honest tree ever drifts into (or out of) the
// sanctioned shapes.

TEST(TaintSeededMutantTest, GeoIndRetaggedToControlIsCaught) {
  const std::string original = ReadSource("src/mechanisms/geo_ind.cc");
  ASSERT_TRUE(RunCoordinateTaint(original).empty())
      << "committed geo_ind.cc must be taint-clean";
  // The mutation: stop declaring the noised probe as noised — ship it as
  // untyped control data the observer cannot attribute.
  const std::string needle = "net::FieldTag::kNoisedCoordinate";
  ASSERT_NE(original.find(needle), std::string::npos);
  std::string mutated = original;
  size_t pos = 0;
  while ((pos = mutated.find(needle, pos)) != std::string::npos) {
    mutated.replace(pos, needle.size(), "net::FieldTag::kControl");
  }
  const auto findings = RunCoordinateTaint(mutated);
  EXPECT_GE(findings.size(), 2u)
      << "both probe axes must be caught leaving through kControl";
}

TEST(TaintSeededMutantTest, GridCloakUndeclaredUploadIsCaught) {
  const std::string original = ReadSource("src/mechanisms/grid_cloak.cc");
  ASSERT_TRUE(RunCoordinateTaint(original).empty())
      << "committed grid_cloak.cc must be taint-clean";
  // The mutation: delete the declare-exposure channel notes; the raw
  // upload is then an undeclared exposure.
  const std::string marker = "nela-lint: declare-exposure(";
  ASSERT_NE(original.find(marker), std::string::npos);
  std::string mutated = original;
  size_t pos = 0;
  while ((pos = mutated.find(marker, pos)) != std::string::npos) {
    mutated.replace(pos, marker.size(), "channel-note-removed(");
  }
  const auto findings = RunCoordinateTaint(mutated);
  EXPECT_GE(findings.size(), 2u)
      << "both upload axes must demand a declared channel";
}

TEST(TaintSeededMutantTest, ProtocolOptExposureSmuggledThroughBytes) {
  const std::string original = ReadSource("src/bounding/protocol.cc");
  ASSERT_TRUE(RunCoordinateTaint(original).empty())
      << "committed protocol.cc must be taint-clean";
  // The mutation: leak the exposed comparator value through the message
  // byte count instead of (alongside) the declared tagged field.
  const std::string needle = "message.bytes = 8;";
  ASSERT_NE(original.find(needle), std::string::npos);
  std::string mutated = original;
  mutated.replace(mutated.find(needle), needle.size(),
                  "message.bytes = static_cast<uint64_t>(exposed);");
  const auto findings = RunCoordinateTaint(mutated);
  EXPECT_EQ(findings.size(), 1u)
      << "the byte-count smuggle must be the one new finding";
}

// The full-rule integration (scope + allow-suppression via lint.cc) over
// the same seeded mutant, closing the loop with the LintFile entry point
// the tree gate uses.
TEST(TaintSeededMutantTest, LintFileReportsCoordinateTaintRule) {
  const std::string original = ReadSource("src/mechanisms/geo_ind.cc");
  std::string mutated = original;
  const std::string needle = "net::FieldTag::kNoisedCoordinate";
  mutated.replace(mutated.find(needle), needle.size(),
                  "net::FieldTag::kControl");
  const std::vector<Finding> findings =
      LintFile("src/mechanisms/geo_ind.cc", mutated);
  ASSERT_FALSE(findings.empty());
  for (const Finding& finding : findings) {
    EXPECT_EQ(finding.rule, "coordinate-taint");
  }
}

}  // namespace
}  // namespace nela::lint
