// Algorithm 2 tests: worked traces on the Fig. 6/7 graph, cluster-isolation
// (Property 4.1), smallest-valid-cluster optimality, and accounting.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/centralized_tconn.h"
#include "cluster/distributed_tconn.h"
#include "graph/connectivity.h"
#include "graph/hierarchy.h"
#include "graph/wpg.h"
#include "util/rng.h"

namespace nela::cluster {
namespace {

using graph::VertexId;
using graph::Wpg;

Wpg Fig6Graph() {
  auto graph = Wpg::FromEdges(7, {{0, 1, 3.0},
                                  {1, 2, 5.0},
                                  {0, 2, 6.0},
                                  {3, 4, 3.0},
                                  {5, 6, 3.0},
                                  {4, 5, 6.0},
                                  {3, 6, 4.0},
                                  {2, 3, 7.0},
                                  {0, 5, 8.0}});
  NELA_CHECK(graph.ok());
  return std::move(graph).value();
}

// Host 2, k=2 (the Fig. 7 pattern: all border vertices pass).
TEST(DistributedTConnTest, BorderVerticesAllPass) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  DistributedTConnClusterer clusterer(graph, 2, &registry);
  auto outcome = clusterer.ClusterFor(2);
  ASSERT_TRUE(outcome.ok());

  const auto& trace = clusterer.last_trace();
  // Step 1: Prim from 2 picks edge (1,2,5); saturation at t=5 pulls in 0
  // (t-connected via (0,1,3)).
  EXPECT_EQ(trace.smallest_valid_cluster, (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(trace.initial_t, 5.0);
  // Step 2: borders are 3 (edge 7) and 5 (edge 8); both own a valid
  // 5-connectivity 2-cluster ({3,4} and {5,6}).
  EXPECT_EQ(trace.border_checks, 2u);
  EXPECT_EQ(trace.border_failures, 0u);
  EXPECT_EQ(trace.candidate, (std::vector<VertexId>{0, 1, 2}));
  // Step 3: the candidate partitions into itself.
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{0, 1, 2}));
  EXPECT_DOUBLE_EQ(registry.info(outcome.value().cluster_id).connectivity,
                   5.0);
  // Involved: the 3 cluster members + the border components {3,4}, {5,6}.
  EXPECT_EQ(outcome.value().involved_users, 7u);
}

// Host 3, k=2: border vertex 2 has no 3-connectivity 2-cluster outside C,
// so it is absorbed and t rises to 7 (the Fig. 7 "w fails" pattern).
TEST(DistributedTConnTest, FailingBorderVertexIsAbsorbed) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  DistributedTConnClusterer clusterer(graph, 2, &registry);
  auto outcome = clusterer.ClusterFor(3);
  ASSERT_TRUE(outcome.ok());

  const auto& trace = clusterer.last_trace();
  EXPECT_EQ(trace.smallest_valid_cluster, (std::vector<VertexId>{3, 4}));
  EXPECT_DOUBLE_EQ(trace.initial_t, 3.0);
  EXPECT_GE(trace.border_failures, 1u);
  EXPECT_DOUBLE_EQ(trace.final_t, 7.0);
  // Re-spanning at t=7 engulfs every vertex (only the weight-8 edge is
  // excluded, and both its endpoints are already inside).
  EXPECT_EQ(trace.candidate, (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6}));
  // Step 3 partitions the candidate like the centralized algorithm.
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{3, 4}));
  EXPECT_EQ(registry.cluster_count(), 3u);  // {0,1,2}, {3,4}, {5,6}
  EXPECT_EQ(registry.clustered_user_count(), 7u);
}

TEST(DistributedTConnTest, ReuseAfterClusterFormation) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  DistributedTConnClusterer clusterer(graph, 2, &registry);
  auto first = clusterer.ClusterFor(2);
  ASSERT_TRUE(first.ok());
  // Users 0 and 1 were clustered alongside 2 and now answer for free.
  for (VertexId host : {0u, 1u, 2u}) {
    auto outcome = clusterer.ClusterFor(host);
    ASSERT_TRUE(outcome.ok());
    EXPECT_TRUE(outcome.value().reused);
    EXPECT_EQ(outcome.value().involved_users, 0u);
    EXPECT_EQ(outcome.value().cluster_id, first.value().cluster_id);
  }
}

TEST(DistributedTConnTest, SmallComponentYieldsInvalidCluster) {
  auto built = Wpg::FromEdges(5, {{0, 1, 1.0}, {2, 3, 1.0}, {3, 4, 2.0}});
  ASSERT_TRUE(built.ok());
  Registry registry(5);
  DistributedTConnClusterer clusterer(built.value(), 3, &registry);
  auto outcome = clusterer.ClusterFor(0);  // component {0,1} < k=3
  ASSERT_TRUE(outcome.ok());
  const ClusterInfo& info = registry.info(outcome.value().cluster_id);
  EXPECT_FALSE(info.valid);
  EXPECT_EQ(info.members, (std::vector<VertexId>{0, 1}));
}

TEST(DistributedTConnTest, IsolatedHostGetsSingletonInvalidCluster) {
  auto built = Wpg::FromEdges(3, {{0, 1, 1.0}});
  ASSERT_TRUE(built.ok());
  Registry registry(3);
  DistributedTConnClusterer clusterer(built.value(), 2, &registry);
  auto outcome = clusterer.ClusterFor(2);
  ASSERT_TRUE(outcome.ok());
  const ClusterInfo& info = registry.info(outcome.value().cluster_id);
  EXPECT_FALSE(info.valid);
  EXPECT_EQ(info.members, (std::vector<VertexId>{2}));
  EXPECT_EQ(outcome.value().involved_users, 1u);
}

TEST(DistributedTConnTest, KOneReturnsSingleton) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  DistributedTConnClusterer clusterer(graph, 1, &registry);
  auto outcome = clusterer.ClusterFor(4);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(registry.info(outcome.value().cluster_id).members,
            (std::vector<VertexId>{4}));
  EXPECT_TRUE(registry.info(outcome.value().cluster_id).valid);
}

TEST(DistributedTConnTest, RejectsBadHost) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  DistributedTConnClusterer clusterer(graph, 2, &registry);
  EXPECT_FALSE(clusterer.ClusterFor(7).ok());
}

// ----------------------------------------------------- property: step 1

Wpg RandomGraph(util::Rng& rng, uint32_t n, uint32_t extra_edges,
                uint32_t weight_range) {
  Wpg graph(n);
  std::set<uint64_t> used;
  auto try_add = [&](uint32_t a, uint32_t b, double w) {
    if (a == b) return;
    const uint64_t key =
        (static_cast<uint64_t>(std::min(a, b)) << 32) | std::max(a, b);
    if (used.insert(key).second) graph.AddEdge(a, b, w);
  };
  for (uint32_t v = 1; v < n; ++v) {
    try_add(static_cast<uint32_t>(rng.NextUint64(v)), v,
            static_cast<double>(1 + rng.NextUint64(weight_range)));
  }
  for (uint32_t i = 0; i < extra_edges; ++i) {
    try_add(static_cast<uint32_t>(rng.NextUint64(n)),
            static_cast<uint32_t>(rng.NextUint64(n)),
            static_cast<double>(1 + rng.NextUint64(weight_range)));
  }
  graph.SortAdjacencyByWeight();
  return graph;
}

class DistributedPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Step 1's output must equal the smallest valid t-connectivity cluster:
// the lowest hierarchy ancestor of the host with size >= k.
TEST_P(DistributedPropertyTest, Step1FindsSmallestValidCluster) {
  util::Rng rng(GetParam());
  const uint32_t n = 20 + static_cast<uint32_t>(rng.NextUint64(30));
  const Wpg graph = RandomGraph(rng, n, n, 4);
  const graph::TConnHierarchy hierarchy(graph);
  const uint32_t k = 2 + static_cast<uint32_t>(rng.NextUint64(5));

  for (VertexId host = 0; host < n; host += 3) {
    Registry registry(n);  // fresh: full WPG
    DistributedTConnClusterer clusterer(graph, k, &registry);
    ASSERT_TRUE(clusterer.ClusterFor(host).ok());
    const auto& trace = clusterer.last_trace();

    const int32_t ancestor = hierarchy.SmallestValidAncestor(host, k);
    if (ancestor < 0) continue;  // component < k: invalid-cluster path
    EXPECT_EQ(trace.smallest_valid_cluster,
              hierarchy.VerticesOf(static_cast<uint32_t>(ancestor)))
        << "host " << host << " k " << k;
    EXPECT_DOUBLE_EQ(
        trace.initial_t,
        hierarchy.node(static_cast<uint32_t>(ancestor)).key.weight);
  }
}

// Property 4.1 / Corollary 4.5 (cluster-isolation), end-to-end: after
// serving host u, the FINAL cluster any still-unclustered vertex v obtains
// from the remaining graph equals the cluster v would have obtained from
// the full graph. With the freeze partitioner this held in every one of
// hundreds of fuzzed instances (the seeds below are a pinned subset).
TEST_P(DistributedPropertyTest, FinalClusterIsolation) {
  util::Rng rng(GetParam() * 31 + 5);
  const uint32_t n = 15 + static_cast<uint32_t>(rng.NextUint64(20));
  const Wpg graph = RandomGraph(rng, n, n / 2, 3);
  const uint32_t k = 2 + static_cast<uint32_t>(rng.NextUint64(3));

  for (VertexId u = 0; u < n; u += 4) {
    Registry after_u(n);
    DistributedTConnClusterer clusterer_u(graph, k, &after_u);
    ASSERT_TRUE(clusterer_u.ClusterFor(u).ok());

    for (VertexId v = 0; v < n; ++v) {
      if (after_u.IsClustered(v)) continue;
      // v's final cluster in the remaining graph...
      DistributedTConnClusterer continue_clusterer(graph, k, &after_u);
      auto remaining = continue_clusterer.ClusterFor(v);
      ASSERT_TRUE(remaining.ok());
      const std::vector<VertexId> remaining_members =
          after_u.info(remaining.value().cluster_id).members;

      // ... must equal the one from the full graph.
      Registry fresh(n);
      DistributedTConnClusterer fresh_clusterer(graph, k, &fresh);
      auto full = fresh_clusterer.ClusterFor(v);
      ASSERT_TRUE(full.ok());
      EXPECT_EQ(remaining_members,
                fresh.info(full.value().cluster_id).members)
          << "u=" << u << " v=" << v << " k=" << k;
      break;  // one v per u keeps the test fast; u varies across the sweep
    }
  }
}

// Reproduction note (documented in EXPERIMENTS.md): the case-2 argument of
// Theorem 4.4 has a gap. A non-border vertex v whose own clustering
// threshold exceeds the host's t can legitimately contain the host's
// cluster C(u) inside its *smallest valid t-connectivity cluster*, so that
// intermediate object is NOT preserved when C(u) is removed. In this fuzz-
// found instance (seed 208): host u=20 forms C(u)={13,15,20,21,22} with
// every border check passing, yet v=0's smallest valid cluster in the full
// graph contains all of C(u) (v needs a higher threshold). The *final*
// cluster of v is nevertheless identical in both runs -- the step-3
// partition re-splits the larger candidate the same way -- which is why
// the end-to-end isolation property above still holds.
TEST(DistributedTConnTest, TheoremFourFourCaseTwoGap) {
  util::Rng rng(208 * 31 + 5);
  const uint32_t n = 15 + static_cast<uint32_t>(rng.NextUint64(20));
  const Wpg graph = RandomGraph(rng, n, n / 2, 3);
  const uint32_t k = 2 + static_cast<uint32_t>(rng.NextUint64(3));
  ASSERT_EQ(n, 26u);
  ASSERT_EQ(k, 3u);
  const VertexId u = 20;
  const VertexId v = 0;

  Registry after_u(n);
  DistributedTConnClusterer clusterer_u(graph, k, &after_u);
  ASSERT_TRUE(clusterer_u.ClusterFor(u).ok());
  const auto u_members = after_u.info(after_u.ClusterOf(u)).members;
  EXPECT_EQ(u_members, (std::vector<VertexId>{13, 15, 20, 21, 22}));
  ASSERT_FALSE(after_u.IsClustered(v));

  DistributedTConnClusterer continue_clusterer(graph, k, &after_u);
  auto remaining = continue_clusterer.ClusterFor(v);
  ASSERT_TRUE(remaining.ok());
  const auto remaining_svc =
      continue_clusterer.last_trace().smallest_valid_cluster;
  const auto remaining_members =
      after_u.info(remaining.value().cluster_id).members;

  Registry fresh(n);
  DistributedTConnClusterer fresh_clusterer(graph, k, &fresh);
  auto full = fresh_clusterer.ClusterFor(v);
  ASSERT_TRUE(full.ok());
  const auto full_svc = fresh_clusterer.last_trace().smallest_valid_cluster;

  // The intermediate smallest valid cluster differs (the gap): in the full
  // graph it swallows every member of C(u)...
  EXPECT_NE(remaining_svc, full_svc);
  for (VertexId member : u_members) {
    EXPECT_NE(std::find(full_svc.begin(), full_svc.end(), member),
              full_svc.end());
  }
  // ... but the algorithm's final output is isolated anyway.
  EXPECT_EQ(remaining_members, fresh.info(full.value().cluster_id).members);
}

// Every cluster registered by a request is >= k whenever the host's
// component allows it, and the registered set covers exactly the step-2
// candidate.
TEST_P(DistributedPropertyTest, RegisteredClustersAreValid) {
  util::Rng rng(GetParam() * 57 + 11);
  const uint32_t n = 25 + static_cast<uint32_t>(rng.NextUint64(25));
  const Wpg graph = RandomGraph(rng, n, n, 5);
  const uint32_t k = 2 + static_cast<uint32_t>(rng.NextUint64(4));

  Registry registry(n);
  DistributedTConnClusterer clusterer(graph, k, &registry);
  // Serve hosts until everyone is clustered.
  for (VertexId host = 0; host < n; ++host) {
    ASSERT_TRUE(clusterer.ClusterFor(host).ok());
  }
  EXPECT_EQ(registry.clustered_user_count(), n);
  for (ClusterId id = 0; id < registry.cluster_count(); ++id) {
    const ClusterInfo& info = registry.info(id);
    if (info.valid) {
      EXPECT_GE(info.members.size(), k);
    } else {
      // Invalid clusters must be whole components smaller than k.
      const auto component = graph::ThresholdComponent(
          graph, info.members.front(), 1e18, nullptr);
      EXPECT_LT(component.size(), k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributedPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(DistributedTConnTest, NetworkAccountingMatchesInvolvedUsers) {
  const Wpg graph = Fig6Graph();
  Registry registry(7);
  net::Network network(7);
  DistributedTConnClusterer clusterer(graph, 2, &registry, &network);
  auto outcome = clusterer.ClusterFor(2);
  ASSERT_TRUE(outcome.ok());
  // One adjacency message per involved user except the host itself.
  EXPECT_EQ(network.total().messages, outcome.value().involved_users - 1);
}

}  // namespace
}  // namespace nela::cluster
