// Tests for the deterministic multi-threaded batch driver: bit-identical
// registry state and per-request traces across worker-thread counts,
// reciprocity under contention, and agreement with the sequential engine.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "net/network.h"
#include "sim/batch_driver.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace nela::sim {
namespace {

Scenario SmallScenario() {
  ScenarioConfig config;
  config.user_count = 1500;
  config.delta = 0.02;
  config.seed = 11;
  auto scenario = BuildScenario(config);
  EXPECT_TRUE(scenario.ok()) << scenario.status().ToString();
  return std::move(scenario).value();
}

BatchConfig AcceptanceConfig(uint32_t threads) {
  BatchConfig config;
  config.k = 5;
  config.requests = 256;
  config.threads = threads;
  config.master_seed = 99;
  config.workload_seed = 17;
  return config;
}

std::string ConcatTraces(const BatchResult& result) {
  std::string all;
  for (const BatchRequestRecord& record : result.records) {
    all += "request " + std::to_string(record.ordinal) + " host=" +
           std::to_string(record.host) + "\n";
    all += record.trace;
  }
  return all;
}

// The acceptance criterion of the batch subsystem: an S=256 batch over the
// same seed produces bit-identical registry state and per-request trace
// output whether executed by 1, 4, or 8 worker threads.
TEST(BatchDriverTest, BitIdenticalRegistryAndTracesAcrossThreadCounts) {
  const Scenario scenario = SmallScenario();
  const core::BoundingParams params;

  std::vector<BatchResult> results;
  for (uint32_t threads : {1u, 4u, 8u}) {
    BatchDriver driver(scenario.dataset, scenario.graph,
                       core::MakeSecurePolicyFactory(params),
                       AcceptanceConfig(threads));
    auto result = driver.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    results.push_back(std::move(result).value());
  }

  const BatchResult& baseline = results[0];
  ASSERT_EQ(baseline.records.size(), 256u);
  EXPECT_TRUE(baseline.reciprocity_ok);
  EXPECT_GT(baseline.clusters_formed, 0u);

  const std::string baseline_traces = ConcatTraces(baseline);
  for (size_t i = 1; i < results.size(); ++i) {
    const BatchResult& other = results[i];
    EXPECT_EQ(baseline.registry_digest, other.registry_digest)
        << "registry diverged at thread config " << i;
    EXPECT_EQ(baseline_traces, ConcatTraces(other))
        << "traces diverged at thread config " << i;
    EXPECT_EQ(baseline.clusters_formed, other.clusters_formed);
    EXPECT_TRUE(other.reciprocity_ok);
    ASSERT_EQ(baseline.records.size(), other.records.size());
    for (size_t r = 0; r < baseline.records.size(); ++r) {
      const core::CloakingOutcome& a = baseline.records[r].outcome;
      const core::CloakingOutcome& b = other.records[r].outcome;
      EXPECT_EQ(a.cluster_id, b.cluster_id) << "request " << r;
      EXPECT_EQ(a.region, b.region) << "request " << r;
      EXPECT_EQ(a.region_reused, b.region_reused) << "request " << r;
      EXPECT_EQ(a.cluster_reused, b.cluster_reused) << "request " << r;
      EXPECT_EQ(a.anonymity_satisfied, b.anonymity_satisfied)
          << "request " << r;
      EXPECT_EQ(a.clustering_messages, b.clustering_messages)
          << "request " << r;
      EXPECT_EQ(a.bounding_iterations, b.bounding_iterations)
          << "request " << r;
      EXPECT_EQ(a.bounding_verifications, b.bounding_verifications)
          << "request " << r;
    }
  }
}

// Repeating the same config must reproduce the digest exactly (fresh state
// per Run). Note the master seed does feed the registry since hypothesis
// origins randomize from each request's private sub-stream: region bit
// patterns (and hence the digest) are a function of it -- but a fixed
// config must still reproduce them exactly.
TEST(BatchDriverTest, RunIsRepeatable) {
  const Scenario scenario = SmallScenario();
  const core::BoundingParams params;
  BatchDriver driver(scenario.dataset, scenario.graph,
                     core::MakeSecurePolicyFactory(params),
                     AcceptanceConfig(4));
  auto first = driver.Run();
  auto second = driver.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().registry_digest, second.value().registry_digest);
  EXPECT_EQ(ConcatTraces(first.value()), ConcatTraces(second.value()));
}

// The batch driver must agree with the plain sequential engine request by
// request: same clusters, same regions, same reuse decisions.
TEST(BatchDriverTest, MatchesSequentialEngineOutcomes) {
  const Scenario scenario = SmallScenario();
  const core::BoundingParams params;
  const BatchConfig config = AcceptanceConfig(8);

  BatchDriver driver(scenario.dataset, scenario.graph,
                     core::MakeSecurePolicyFactory(params), config);
  auto batch = driver.Run();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  // Sequential reference: the same hosts, in ordinal order, through the
  // ordinary engine pipeline against a fresh registry -- with a fault-free
  // network attached, like the batch driver's, so the below-k liveness
  // check is active in both drivers.
  util::Rng workload_rng(config.workload_seed);
  const std::vector<data::UserId> hosts =
      SampleWorkload(scenario.dataset.size(), config.requests, workload_rng);
  cluster::Registry registry(scenario.dataset.size());
  net::Network network(scenario.dataset.size());
  core::CloakingEngine engine(
      scenario.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(
          scenario.graph, config.k, &registry),
      &registry, core::MakeSecurePolicyFactory(params),
      core::BoundingMode::kSecureProtocol, &network);
  // Hypothesis origins draw from each request's (master_seed, ordinal)
  // sub-stream; the reference engine must use the batch's master seed for
  // region bit patterns to agree.
  engine.set_master_seed(config.master_seed);

  ASSERT_EQ(hosts.size(), batch.value().records.size());
  for (size_t i = 0; i < hosts.size(); ++i) {
    const BatchRequestRecord& record = batch.value().records[i];
    ASSERT_EQ(record.host, hosts[i]);
    auto outcome = engine.RequestCloaking(hosts[i]);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_EQ(outcome.value().cluster_id, record.outcome.cluster_id)
        << "request " << i;
    EXPECT_EQ(outcome.value().region, record.outcome.region)
        << "request " << i;
    EXPECT_EQ(outcome.value().region_reused, record.outcome.region_reused)
        << "request " << i;
    EXPECT_EQ(outcome.value().cluster_reused, record.outcome.cluster_reused)
        << "request " << i;
    EXPECT_EQ(outcome.value().anonymity_satisfied,
              record.outcome.anonymity_satisfied)
        << "request " << i;
    EXPECT_EQ(outcome.value().clustering_messages,
              record.outcome.clustering_messages)
        << "request " << i;
  }
}

// Per-request scoped accounting: with the shared fault-free network
// attached, every bounding request that actually ran phase 2 reports its
// own traffic, and the global network counters equal the scoped sum.
TEST(BatchDriverTest, ScopedAccountingCoversBoundingTraffic) {
  const Scenario scenario = SmallScenario();
  const core::BoundingParams params;
  BatchConfig config = AcceptanceConfig(4);
  config.requests = 64;
  BatchDriver driver(scenario.dataset, scenario.graph,
                     core::MakeSecurePolicyFactory(params), config);
  auto result = driver.Run();
  ASSERT_TRUE(result.ok());
  uint64_t scoped_messages = 0;
  bool some_bounding_traffic = false;
  for (const BatchRequestRecord& record : result.value().records) {
    scoped_messages += record.net_stats.messages_delivered;
    EXPECT_EQ(record.net_stats.messages_failed, 0u);  // fault-free
    if (!record.outcome.region_reused &&
        record.outcome.anonymity_satisfied) {
      EXPECT_GT(record.net_stats.messages_delivered, 0u)
          << "request " << record.ordinal;
      some_bounding_traffic = true;
    }
  }
  EXPECT_TRUE(some_bounding_traffic);
  EXPECT_GT(scoped_messages, 0u);
}

TEST(BatchDriverTest, RejectsOversizedWorkload) {
  const Scenario scenario = SmallScenario();
  const core::BoundingParams params;
  BatchConfig config;
  config.requests = scenario.dataset.size() + 1;
  BatchDriver driver(scenario.dataset, scenario.graph,
                     core::MakeSecurePolicyFactory(params), config);
  auto result = driver.Run();
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace nela::sim
