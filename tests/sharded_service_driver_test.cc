// Tests for the spatially sharded service driver: the determinism matrix
// (digests bit-identical across thread counts AND shard counts), exact
// agreement of the K=1 engine with the classic ServiceDriver facade,
// cross-shard ownership accounting, per-shard admission queues, and the
// per-shard WAL stream split.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/policy_factory.h"
#include "sim/scenario.h"
#include "sim/service_driver.h"
#include "sim/sharded_service_driver.h"
#include "util/status.h"

namespace nela::sim {
namespace {

const Scenario& SharedScenario() {
  static const Scenario scenario = [] {
    ScenarioConfig config;
    config.user_count = 1200;
    config.delta = 0.02;
    config.seed = 11;
    auto built = BuildScenario(config);
    NELA_CHECK(built.ok());
    return std::move(built).value();
  }();
  return scenario;
}

ShardedServiceConfig ClosedBatchConfig(uint32_t threads, uint32_t shards) {
  ShardedServiceConfig config;
  config.service.k = 5;
  config.service.requests = 192;
  config.service.threads = threads;
  config.service.master_seed = 99;
  config.service.workload_seed = 17;
  config.shards = shards;
  return config;
}

ShardedServiceResult MustRun(const ShardedServiceConfig& config) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  ShardedServiceDriver driver(scenario.dataset, scenario.graph,
                              core::MakeSecurePolicyFactory(params), config);
  auto result = driver.Run();
  NELA_CHECK(result.ok());
  return std::move(result).value();
}

std::string ConcatTraces(const std::vector<ServiceRequestRecord>& records) {
  std::string all;
  for (const ServiceRequestRecord& record : records) {
    all += "request " + std::to_string(record.ordinal) + " host=" +
           std::to_string(record.host) + "\n";
    all += record.trace;
  }
  return all;
}

// The tentpole determinism matrix: for a fixed master seed, the global
// registry digest is bit-identical across {1,4,8} threads AND {1,4,16}
// shards; the per-shard digests are thread-invariant for each K; and the
// concatenation of the K slices reproduces the global digest (the slices
// partition the registry).
TEST(ShardedServiceDriverTest, DigestMatrixIsThreadAndShardInvariant) {
  const uint64_t reference =
      MustRun(ClosedBatchConfig(1, 1)).service.registry_digest;

  for (uint32_t shards : {1u, 4u, 16u}) {
    std::vector<uint64_t> baseline_shard_digests;
    for (uint32_t threads : {1u, 4u, 8u}) {
      const ShardedServiceResult result =
          MustRun(ClosedBatchConfig(threads, shards));
      EXPECT_EQ(result.service.registry_digest, reference)
          << "global digest diverged at threads=" << threads
          << " shards=" << shards;
      EXPECT_EQ(result.concatenated_digest, result.service.registry_digest)
          << "shard slices do not partition the registry at threads="
          << threads << " shards=" << shards;
      ASSERT_EQ(result.shards.size(), shards);
      std::vector<uint64_t> shard_digests;
      for (const ShardRunStats& stats : result.shards) {
        shard_digests.push_back(stats.shard_digest);
      }
      if (baseline_shard_digests.empty()) {
        baseline_shard_digests = shard_digests;
      } else {
        EXPECT_EQ(shard_digests, baseline_shard_digests)
            << "per-shard digests diverged at threads=" << threads
            << " shards=" << shards;
      }
      EXPECT_TRUE(result.service.reciprocity_ok);
    }
  }
}

// The K=1 engine IS the classic service driver: same digest, same traces,
// same records (ServiceDriver is a facade over it, so this pins the facade
// and the engine together bit for bit).
TEST(ShardedServiceDriverTest, SingleShardMatchesServiceDriverBitForBit) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;
  const ShardedServiceConfig config = ClosedBatchConfig(4, 1);

  ServiceDriver classic(scenario.dataset, scenario.graph,
                        core::MakeSecurePolicyFactory(params),
                        config.service);
  auto classic_result = classic.Run();
  ASSERT_TRUE(classic_result.ok()) << classic_result.status().ToString();

  const ShardedServiceResult sharded = MustRun(config);
  EXPECT_EQ(sharded.service.registry_digest,
            classic_result.value().registry_digest);
  EXPECT_EQ(ConcatTraces(sharded.service.records),
            ConcatTraces(classic_result.value().records));
  EXPECT_EQ(sharded.cross_shard_clusters, 0u);
  EXPECT_EQ(sharded.cross_shard_handoffs, 0u);
  ASSERT_EQ(sharded.shards.size(), 1u);
  // The single shard owns every cluster and every user.
  EXPECT_EQ(sharded.shards[0].clusters_owned, sharded.service.clusters_formed);
  EXPECT_EQ(sharded.shards[0].users, scenario.dataset.size());
}

// With a real spatial partition, clusters near the grid boundaries straddle
// shards; ownership accounting must tie out exactly against the global
// registry (every cluster owned by exactly one shard, every user homed in
// exactly one).
TEST(ShardedServiceDriverTest, CrossShardOwnershipAccountingTiesOut) {
  const ShardedServiceResult result = MustRun(ClosedBatchConfig(4, 4));
  const uint32_t user_count = SharedScenario().dataset.size();

  uint64_t users = 0;
  uint64_t owned = 0;
  uint64_t cross_owned = 0;
  uint64_t routed = 0;
  for (const ShardRunStats& stats : result.shards) {
    users += stats.users;
    owned += stats.clusters_owned;
    cross_owned += stats.cross_shard_clusters_owned;
    routed += stats.requests_routed;
  }
  EXPECT_EQ(users, user_count);
  EXPECT_EQ(owned, result.service.clusters_formed);
  EXPECT_EQ(cross_owned, result.cross_shard_clusters);
  EXPECT_EQ(routed, result.service.records.size());
  // A uniform population on a 2x2 grid forms boundary clusters; if none
  // crossed, the partition (or the ownership rule) is broken.
  EXPECT_GT(result.cross_shard_clusters, 0u);
  EXPECT_GT(result.cross_shard_handoffs, 0u);
  EXPECT_TRUE(result.service.reciprocity_ok);
}

// Per-shard bounded admission: under sustained overload each shard's queue
// sheds independently, and the per-shard admission/shed/wait accounting
// sums exactly to the global one.
TEST(ShardedServiceDriverTest, PerShardAdmissionQueuesShedAndTieOut) {
  ShardedServiceConfig config = ClosedBatchConfig(4, 4);
  config.service.offered_rate_per_ms = 8.0;  // sustainable is ~4/ms total
  config.service.service_time_ms = 1.0;
  config.service.queue_capacity = 6;
  config.service.deadline_ms = 12.0;
  const ShardedServiceResult result = MustRun(config);

  uint64_t admitted = 0;
  uint64_t shed_overflow = 0;
  uint64_t shed_deadline = 0;
  for (const ShardRunStats& stats : result.shards) {
    admitted += stats.admitted;
    shed_overflow += stats.shed_queue_overflow;
    shed_deadline += stats.shed_deadline;
    EXPECT_LE(stats.p50_queue_wait_ms, stats.p99_queue_wait_ms);
    EXPECT_LE(stats.p99_queue_wait_ms, config.service.deadline_ms);
  }
  EXPECT_EQ(admitted, result.service.admitted);
  EXPECT_EQ(shed_overflow, result.service.shed_queue_overflow);
  EXPECT_EQ(shed_deadline, result.service.shed_deadline);
  EXPECT_GT(result.service.shed_queue_overflow +
                result.service.shed_deadline,
            0u)
      << "2x overload must shed";
  EXPECT_GT(result.service.admitted, 0u);
}

// Sharded durability splits the log across per-shard streams whose record
// counts sum to the global WAL accounting.
TEST(ShardedServiceDriverTest, WalStreamsSplitAcrossShards) {
  const std::string dir =
      ::testing::TempDir() + "sharded_service_wal_split";
  std::filesystem::remove_all(dir);
  ShardedServiceConfig config = ClosedBatchConfig(4, 4);
  config.durability_dir = dir;
  config.service.checkpoint_interval = 8;
  const ShardedServiceResult result = MustRun(config);

  EXPECT_FALSE(result.service.crashed);
  EXPECT_GT(result.service.wal_records, 0u);
  EXPECT_GT(result.service.checkpoints_written, 0u);
  uint64_t stream_sum = 0;
  uint32_t streams_used = 0;
  for (const ShardRunStats& stats : result.shards) {
    stream_sum += stats.wal_records;
    if (stats.wal_records > 0) ++streams_used;
  }
  EXPECT_EQ(stream_sum, result.service.wal_records);
  EXPECT_GT(streams_used, 1u)
      << "a 2x2 partition of a uniform population must log on several "
         "streams";
  // Durability is write-through: it must not change what gets clustered.
  EXPECT_EQ(result.service.registry_digest,
            MustRun(ClosedBatchConfig(4, 4)).service.registry_digest);
}

// Config validation: the classic single-file WAL and the sharded stream
// directory are mutually exclusive, and multi-shard runs must use the
// latter.
TEST(ShardedServiceDriverTest, RejectsConflictingDurabilityModes) {
  const Scenario& scenario = SharedScenario();
  const core::BoundingParams params;

  ShardedServiceConfig both = ClosedBatchConfig(1, 1);
  both.service.wal_path = ::testing::TempDir() + "conflict.walx";
  both.durability_dir = ::testing::TempDir() + "conflict_dir";
  ShardedServiceDriver both_driver(scenario.dataset, scenario.graph,
                                   core::MakeSecurePolicyFactory(params),
                                   both);
  EXPECT_FALSE(both_driver.Run().ok());

  ShardedServiceConfig classic_multi = ClosedBatchConfig(1, 4);
  classic_multi.service.wal_path = ::testing::TempDir() + "multi.walx";
  ShardedServiceDriver multi_driver(scenario.dataset, scenario.graph,
                                    core::MakeSecurePolicyFactory(params),
                                    classic_multi);
  EXPECT_FALSE(multi_driver.Run().ok());
}

}  // namespace
}  // namespace nela::sim
