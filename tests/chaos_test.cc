// Chaos tests: the cloaking pipeline under injected message loss, link
// timeouts, and node churn (ctest label: chaos).
//
// Three invariants are enforced on every failure path:
//   1. the cloaked region, when produced, encloses every surviving member;
//   2. no status or degradation message ever carries a coordinate;
//   3. a fixed fault seed reproduces the run bit-for-bit.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bounding/protocol.h"
#include "bounding/secret.h"
#include "cluster/distributed_tconn.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/generators.h"
#include "graph/wpg_builder.h"
#include "net/network.h"
#include "net/retry.h"
#include "audit/observer.h"
#include "audit/taint.h"
#include "core/anonymity_audit.h"
#include "scenario_fixtures.h"
#include "sim/chaos_experiment.h"
#include "sim/scenario.h"
#include "util/proptest.h"
#include "util/rng.h"

namespace nela {
namespace {

using fixtures::ExpectNoCoordinateLeak;
using fixtures::FirstPoints;
using fixtures::Iota;
using fixtures::MakeWorld;
using fixtures::SmallWorld;
using fixtures::SmallWorldBounding;

TEST(ChaosBoundingTest, LossyNetworkYieldsCleanNetworkRegion) {
  SmallWorld world = MakeWorld(1);
  const std::vector<geo::Point> points = FirstPoints(world.dataset, 12);
  const geo::Point reference = points[0];
  const core::PolicyFactory factory =
      core::MakeSecurePolicyFactory(SmallWorldBounding());

  auto clean_policy = factory(12);
  auto clean = bounding::ComputeCloakedRegion(points, reference, *clean_policy);
  ASSERT_TRUE(clean.ok());

  net::Network network(200);
  net::FaultPlan plan;
  plan.seed = 1234;
  plan.loss_probability = 0.05;
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  const std::vector<net::NodeId> ids = Iota(12);
  util::Rng jitter(99);
  bounding::NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &ids;
  binding.retry_rng = &jitter;

  auto lossy_policy = factory(12);
  auto lossy =
      bounding::ComputeCloakedRegion(points, reference, *lossy_policy, binding);
  ASSERT_TRUE(lossy.ok());
  // Retransmission recovers every loss, so the protocol outcome is exactly
  // the clean-network outcome -- only the traffic accounting differs.
  EXPECT_EQ(lossy.value().region, clean.value().region);
  EXPECT_EQ(lossy.value().iterations, clean.value().iterations);
  EXPECT_GT(lossy.value().retries, 0u);
  EXPECT_EQ(network.total_retry_stats().retries, lossy.value().retries);
  for (const geo::Point& p : points) {
    EXPECT_TRUE(lossy.value().region.Contains(p));
  }
}

TEST(ChaosBoundingTest, CrashedPeerSurfacesAsUnavailableWithoutLeak) {
  SmallWorld world = MakeWorld(2);
  const std::vector<geo::Point> points = FirstPoints(world.dataset, 8);
  net::Network network(200);
  network.CrashNode(5);
  const std::vector<net::NodeId> ids = Iota(8);
  bounding::NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &ids;

  auto policy = core::MakeSecurePolicyFactory(SmallWorldBounding())(8);
  auto result =
      bounding::ComputeCloakedRegion(points, points[0], *policy, binding);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  ExpectNoCoordinateLeak(result.status().message(), world.dataset);
}

TEST(ChaosBoundingTest, ExhaustedRetryBudgetIsDeadlineExceededWithoutLeak) {
  SmallWorld world = MakeWorld(3);
  const std::vector<geo::Point> points = FirstPoints(world.dataset, 8);
  net::Network network(200);
  util::Rng loss_rng(4);
  ASSERT_TRUE(network.SetLossProbability(1.0, &loss_rng).ok());
  const std::vector<net::NodeId> ids = Iota(8);
  bounding::NetworkBinding binding;
  binding.network = &network;
  binding.host = 0;
  binding.node_ids = &ids;
  binding.retry.max_attempts = 3;

  auto policy = core::MakeSecurePolicyFactory(SmallWorldBounding())(8);
  auto result =
      bounding::ComputeCloakedRegion(points, points[0], *policy, binding);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kDeadlineExceeded);
  ExpectNoCoordinateLeak(result.status().message(), world.dataset);
  EXPECT_GT(network.retry_stats_of(net::MessageKind::kBoundProposal)
                .timeouts_observed,
            0u);
}

// Learns the membership of `host`'s cluster on a clean network (no fault
// plan), so chaos runs can pick victims and thresholds deterministically.
std::vector<graph::VertexId> CleanClusterMembers(const SmallWorld& world,
                                                 uint32_t k,
                                                 graph::VertexId host) {
  cluster::Registry registry(world.dataset.size());
  cluster::DistributedTConnClusterer clusterer(world.graph, k, &registry);
  auto outcome = clusterer.ClusterFor(host);
  NELA_CHECK(outcome.ok());
  return registry.info(outcome.value().cluster_id).members;
}

TEST(ChaosClusterTest, CrashedMemberIsExcludedFromTheCluster) {
  SmallWorld world = MakeWorld(5);
  const graph::VertexId host = 17;
  const std::vector<graph::VertexId> clean_members =
      CleanClusterMembers(world, 4, host);
  ASSERT_GE(clean_members.size(), 4u);
  graph::VertexId victim = cluster::kNoCluster;
  for (graph::VertexId m : clean_members) {
    if (m != host) victim = m;
  }
  ASSERT_NE(victim, cluster::kNoCluster);

  cluster::Registry registry(world.dataset.size());
  net::Network network(world.dataset.size());
  network.CrashNode(victim);
  cluster::DistributedTConnClusterer clusterer(world.graph, 4, &registry,
                                               &network);
  util::Rng jitter(11);
  clusterer.SetRetryPolicy(net::BackoffPolicy{}, &jitter);

  auto outcome = clusterer.ClusterFor(host);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome.value().members_lost, 1u);
  const cluster::ClusterInfo& info =
      registry.info(outcome.value().cluster_id);
  for (graph::VertexId m : info.members) {
    EXPECT_NE(m, victim);
  }
  // The crashed user never ends up registered anywhere.
  EXPECT_FALSE(registry.IsClustered(victim));
  // The host's cluster is still validated against k after the exclusion.
  if (info.valid) {
    EXPECT_GE(info.members.size(), 4u);
  }
}

TEST(ChaosClusterTest, CrashedHostFailsUnavailableWithoutLeak) {
  SmallWorld world = MakeWorld(6);
  cluster::Registry registry(world.dataset.size());
  net::Network network(world.dataset.size());
  network.CrashNode(17);
  cluster::DistributedTConnClusterer clusterer(world.graph, 4, &registry,
                                               &network);
  auto outcome = clusterer.ClusterFor(17);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), util::StatusCode::kUnavailable);
  ExpectNoCoordinateLeak(outcome.status().message(), world.dataset);
}

// Fixture for engine-level chaos: measures, on a clean network, how many
// send attempts phase 1 consumes for `host`, so a crash can be scheduled
// to land mid-bounding (phase 2) deterministically.
struct EngineChaosSetup {
  std::vector<graph::VertexId> members;
  uint64_t phase1_attempts = 0;
  uint64_t total_attempts = 0;
};

EngineChaosSetup MeasureCleanRun(const SmallWorld& world, uint32_t k,
                                 graph::VertexId host) {
  cluster::Registry registry(world.dataset.size());
  net::Network network(world.dataset.size());
  core::CloakingEngine engine(
      world.dataset,
      std::make_unique<cluster::DistributedTConnClusterer>(world.graph, k,
                                                           &registry,
                                                           &network),
      &registry, core::MakeSecurePolicyFactory(SmallWorldBounding()),
      core::BoundingMode::kSecureProtocol, &network);
  auto outcome = engine.RequestCloaking(host);
  NELA_CHECK(outcome.ok());
  EngineChaosSetup setup;
  setup.members = registry.info(outcome.value().cluster_id).members;
  // On a clean network every attempt is delivered, so the per-kind message
  // counters partition the attempt counter exactly.
  setup.phase1_attempts =
      network.of_kind(net::MessageKind::kAdjacencyExchange).messages;
  setup.total_attempts = network.send_attempts();
  return setup;
}

core::CloakingEngine MakeFaultyEngine(const SmallWorld& world, uint32_t k,
                                      cluster::Registry* registry,
                                      net::Network* network,
                                      util::Rng* jitter) {
  auto clusterer = std::make_unique<cluster::DistributedTConnClusterer>(
      world.graph, k, registry, network);
  clusterer->SetRetryPolicy(net::BackoffPolicy{}, jitter);
  core::CloakingEngine engine(
      world.dataset, std::move(clusterer), registry,
      core::MakeSecurePolicyFactory(SmallWorldBounding()),
      core::BoundingMode::kSecureProtocol, network);
  engine.SetRetryPolicy(net::BackoffPolicy{}, jitter);
  return engine;
}

TEST(ChaosEngineTest, MidBoundingCrashRerunsBoundingOverSurvivors) {
  const uint32_t k = 4;
  SmallWorld world = MakeWorld(7);
  graph::VertexId host = cluster::kNoCluster;
  EngineChaosSetup setup;
  for (graph::VertexId candidate = 0; candidate < 40; ++candidate) {
    setup = MeasureCleanRun(world, k, candidate);
    if (setup.members.size() >= k + 2) {
      host = candidate;
      break;
    }
  }
  ASSERT_NE(host, cluster::kNoCluster) << "no cluster with k+2 members";
  ASSERT_GT(setup.total_attempts, setup.phase1_attempts);

  // Crash the last-ordered member one attempt into phase 2: phase 1 runs
  // untouched (identical seeds => identical attempt counts), and bounding
  // reaches the dead peer within its first iteration.
  graph::VertexId victim = cluster::kNoCluster;
  for (graph::VertexId m : setup.members) {
    if (m != host) victim = m;
  }
  ASSERT_NE(victim, cluster::kNoCluster);

  cluster::Registry registry(world.dataset.size());
  net::Network network(world.dataset.size());
  net::FaultPlan plan;
  plan.crashes.push_back(net::CrashEvent{victim, setup.phase1_attempts + 1});
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  util::Rng jitter(13);
  core::CloakingEngine engine =
      MakeFaultyEngine(world, k, &registry, &network, &jitter);

  auto outcome = engine.RequestCloaking(host);
  ASSERT_TRUE(outcome.ok());
  const core::CloakingOutcome& o = outcome.value();
  EXPECT_TRUE(o.anonymity_satisfied);
  EXPECT_GE(o.degradation.phases_retried, 1u);
  EXPECT_GE(o.degradation.members_lost, 1u);
  EXPECT_TRUE(o.degradation.degraded());
  // The re-run region covers every surviving member; the victim gets no
  // say and no guarantee.
  const cluster::ClusterInfo& info = registry.info(o.cluster_id);
  uint32_t survivors = 0;
  for (graph::VertexId m : info.members) {
    if (!network.IsAlive(m)) continue;
    ++survivors;
    EXPECT_TRUE(o.region.Contains(world.dataset.point(m)));
  }
  EXPECT_GE(survivors, k);
}

TEST(ChaosEngineTest, ChurnBelowKDegradesWithEmptyRegionAndNoLeak) {
  const uint32_t k = 4;
  SmallWorld world = MakeWorld(7);
  graph::VertexId host = cluster::kNoCluster;
  EngineChaosSetup setup;
  for (graph::VertexId candidate = 0; candidate < 40; ++candidate) {
    setup = MeasureCleanRun(world, k, candidate);
    if (setup.members.size() >= k + 1) {
      host = candidate;
      break;
    }
  }
  ASSERT_NE(host, cluster::kNoCluster);

  // Crash members (never the host) early in phase 2 until fewer than k can
  // survive, all at the same attempt threshold.
  const uint32_t to_crash =
      static_cast<uint32_t>(setup.members.size()) - k + 1;
  cluster::Registry registry(world.dataset.size());
  net::Network network(world.dataset.size());
  net::FaultPlan plan;
  uint32_t scheduled = 0;
  for (graph::VertexId m : setup.members) {
    if (m == host || scheduled == to_crash) continue;
    plan.crashes.push_back(net::CrashEvent{m, setup.phase1_attempts + 1});
    ++scheduled;
  }
  ASSERT_EQ(scheduled, to_crash);
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  util::Rng jitter(13);
  core::CloakingEngine engine =
      MakeFaultyEngine(world, k, &registry, &network, &jitter);

  auto outcome = engine.RequestCloaking(host);
  ASSERT_TRUE(outcome.ok());
  const core::CloakingOutcome& o = outcome.value();
  EXPECT_FALSE(o.anonymity_satisfied);
  EXPECT_EQ(o.region, geo::Rect());  // nothing exposed, not even a box
  EXPECT_EQ(o.degradation.failure_code,
            util::StatusCode::kFailedPrecondition);
  ExpectNoCoordinateLeak(o.degradation.failure_reason, world.dataset);
  EXPECT_GE(o.degradation.members_lost, to_crash);
}

TEST(ChaosEngineTest, AcceptanceScenarioLossPlusMidProtocolCrash) {
  // The issue's acceptance criterion: fixed seed, 5% loss, one crash
  // scheduled mid-protocol. The request must complete without aborting,
  // report its retries, and either cover the survivors or degrade with a
  // structured, non-exposing outcome.
  const uint32_t k = 4;
  SmallWorld world = MakeWorld(7);
  const graph::VertexId host = 17;
  const EngineChaosSetup setup = MeasureCleanRun(world, k, host);
  graph::VertexId victim = cluster::kNoCluster;
  for (graph::VertexId m : setup.members) {
    if (m != host) victim = m;
  }
  ASSERT_NE(victim, cluster::kNoCluster);

  cluster::Registry registry(world.dataset.size());
  net::Network network(world.dataset.size());
  net::FaultPlan plan;
  plan.seed = 1234;
  plan.loss_probability = 0.05;
  plan.crashes.push_back(net::CrashEvent{victim, setup.phase1_attempts + 1});
  ASSERT_TRUE(network.InstallFaultPlan(plan).ok());
  util::Rng jitter(1234);
  core::CloakingEngine engine =
      MakeFaultyEngine(world, k, &registry, &network, &jitter);

  auto outcome = engine.RequestCloaking(host);
  ASSERT_TRUE(outcome.ok());  // no abort, no CHECK failure
  const core::CloakingOutcome& o = outcome.value();
  EXPECT_GT(o.degradation.retries, 0u);  // 5% loss forces retransmissions
  if (o.anonymity_satisfied) {
    const cluster::ClusterInfo& info = registry.info(o.cluster_id);
    for (graph::VertexId m : info.members) {
      if (!network.IsAlive(m)) continue;
      EXPECT_TRUE(o.region.Contains(world.dataset.point(m)));
    }
  } else {
    EXPECT_EQ(o.region, geo::Rect());
    EXPECT_NE(o.degradation.failure_code, util::StatusCode::kOk);
    ExpectNoCoordinateLeak(o.degradation.failure_reason, world.dataset);
  }
}

// Predicate twin of ExpectNoCoordinateLeak for use inside properties, where
// a failure must be returned (with a repro seed) instead of EXPECTed.
std::optional<std::string> FindCoordinateLeak(const std::string& message,
                                              const data::Dataset& dataset) {
  if (message.find('.') != std::string::npos) {
    return "message contains a formatted number: " + message;
  }
  for (uint32_t i = 0; i < dataset.size(); ++i) {
    const geo::Point p = dataset.point(i);
    if (message.find(std::to_string(p.x)) != std::string::npos ||
        message.find(std::to_string(p.y)) != std::string::npos) {
      return "message leaks a coordinate of user " + std::to_string(i) +
             ": " + message;
    }
  }
  return std::nullopt;
}

TEST(ChaosPropertyTest, RandomFaultPlansNeverExposeLocations) {
  // Property: under an arbitrary fault plan (loss x latency/timeouts x
  // crash schedule), every cloaking outcome -- success or structured
  // degradation -- leaves the registry passing the anonymity audit, the
  // wire-level adversary observer clean, and every degradation reason free
  // of coordinates. Failures print a seeded repro line.
  util::PropSpec spec;
  spec.name = "chaos_test";
  spec.base_seed = 0xfa017u;
  spec.iterations = 12;  // CI elevates via NELA_PROPTEST_ITERS
  spec.min_size = 2;
  spec.max_size = 6;  // size doubles as the anonymity requirement k

  auto failure = util::RunProperty(
      spec,
      [](util::Rng& rng, uint32_t size) -> std::optional<std::string> {
        const SmallWorld world = MakeWorld(rng.NextUint64(1u << 20));
        const uint32_t n = world.dataset.size();
        const uint32_t k = size;

        net::Network network(n);
        net::FaultPlan plan;
        plan.seed = rng.NextUint64();
        plan.loss_probability = rng.NextDouble(0.0, 0.12);
        if (rng.NextBernoulli(0.5)) {
          plan.latency.base_ms = rng.NextDouble(0.1, 2.0);
          plan.latency.jitter_ms = rng.NextDouble(0.0, 1.0);
          if (rng.NextBernoulli(0.3)) {
            // Timeout inside the jitter band: some deliveries time out and
            // behave like losses, exercising the retry path differently.
            plan.latency.timeout_ms =
                plan.latency.base_ms + 0.8 * plan.latency.jitter_ms;
          }
        }
        const uint32_t crash_count =
            static_cast<uint32_t>(rng.NextUint64(4));
        for (uint32_t i = 0; i < crash_count; ++i) {
          plan.crashes.push_back(
              net::CrashEvent{static_cast<net::NodeId>(rng.NextUint64(n)),
                              rng.NextUint64(3000) + 1});
        }
        if (!network.InstallFaultPlan(plan).ok()) {
          return std::string("fault plan rejected");
        }

        audit::TaintSet taint;
        for (uint32_t u = 0; u < n; ++u) {
          taint.TaintPoint(u, world.dataset.point(u));
        }
        audit::ObserverConfig observer_config;
        observer_config.taint = &taint;
        audit::AdversaryObserver observer(observer_config);
        network.SetTap(&observer);

        cluster::Registry registry(n);
        util::Rng jitter(rng.NextUint64());
        core::CloakingEngine engine =
            MakeFaultyEngine(world, k, &registry, &network, &jitter);

        const uint32_t requests =
            6 + static_cast<uint32_t>(rng.NextUint64(6));
        for (uint32_t r = 0; r < requests; ++r) {
          const data::UserId host =
              static_cast<data::UserId>(rng.NextUint64(n));
          auto outcome = engine.RequestCloaking(host);
          if (!outcome.ok()) {
            if (outcome.status().code() == util::StatusCode::kUnavailable) {
              continue;  // host crashed: an expected chaos outcome
            }
            return "unexpected engine error: " +
                   outcome.status().ToString();
          }
          const core::CloakingOutcome& o = outcome.value();
          if (!o.anonymity_satisfied) {
            if (!o.region.empty()) {
              return std::string(
                  "degraded outcome carries a non-empty region");
            }
            if (!o.degradation.failure_reason.empty()) {
              auto leak = FindCoordinateLeak(o.degradation.failure_reason,
                                             world.dataset);
              if (leak.has_value()) return leak;
            }
          }
        }
        network.SetTap(nullptr);

        std::vector<bool> alive(n);
        for (uint32_t u = 0; u < n; ++u) alive[u] = network.IsAlive(u);
        const core::AuditReport report =
            core::AuditAnonymity(registry, world.dataset, k, &alive);
        if (!report.ok()) {
          return "anonymity audit failed: " +
                 report.violations.front().description;
        }
        if (!observer.clean()) {
          return "observer flagged exposure:\n" + observer.Report();
        }
        if (observer.tagged_messages() == 0) {
          return std::string("no tagged traffic observed");
        }
        return std::nullopt;
      });
  ASSERT_FALSE(failure.has_value()) << failure->message << "\n"
                                    << failure->repro;
}

sim::Scenario BuildChaosScenario() {
  // The sim_test scale model of the paper's default scenario: delta grows
  // with the lower density so clusters can still form.
  sim::ScenarioConfig config;
  config.user_count = 4000;
  config.delta = 0.0102;
  config.max_peers = 10;
  config.seed = 11;
  auto scenario = sim::BuildScenario(config);
  NELA_CHECK(scenario.ok());
  return std::move(scenario).value();
}

TEST(ChaosSimTest, LossOnlyWorkloadMatchesCleanNetworkOutcomes) {
  // Loss without churn is fully absorbed by retransmission: the workload
  // produces exactly the clean-network outcome (including the requests
  // degraded for the intrinsic reason that a host's component is below k),
  // and only the traffic accounting shows the faults.
  const sim::Scenario scenario = BuildChaosScenario();
  sim::ChaosExperimentConfig config;
  config.k = 5;
  config.requests = 30;
  config.loss_probability = 0.0;
  auto clean = sim::RunChaosExperiment(scenario, config);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean.value().retries, 0u);

  config.loss_probability = 0.05;
  auto lossy = sim::RunChaosExperiment(scenario, config);
  ASSERT_TRUE(lossy.ok());
  const sim::ChaosExperimentResult& r = lossy.value();
  EXPECT_EQ(r.succeeded, clean.value().succeeded);
  EXPECT_EQ(r.degraded, clean.value().degraded);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.avg_achieved_anonymity, clean.value().avg_achieved_anonymity);
  EXPECT_EQ(r.avg_region_area, clean.value().avg_region_area);
  EXPECT_GT(r.retries, 0u);
  EXPECT_GT(r.dropped_messages, 0u);
  EXPECT_GT(r.dropped_bytes, 0u);
  EXPECT_GE(r.avg_achieved_anonymity, 5.0);
}

TEST(ChaosSimTest, SameSeedReproducesBitIdentically) {
  const sim::Scenario scenario = BuildChaosScenario();
  sim::ChaosExperimentConfig config;
  config.k = 5;
  config.requests = 40;
  config.fault_seed = 77;
  config.loss_probability = 0.05;
  config.churn_rate = 0.01;
  config.churn_attempt_spacing = 500;

  auto first = sim::RunChaosExperiment(scenario, config);
  auto second = sim::RunChaosExperiment(scenario, config);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  const sim::ChaosExperimentResult& a = first.value();
  const sim::ChaosExperimentResult& b = second.value();
  EXPECT_EQ(a.succeeded, b.succeeded);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.delivered_messages, b.delivered_messages);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.dropped_messages, b.dropped_messages);
  EXPECT_EQ(a.dropped_bytes, b.dropped_bytes);
  EXPECT_EQ(a.timed_out_messages, b.timed_out_messages);
  EXPECT_EQ(a.dead_endpoint_attempts, b.dead_endpoint_attempts);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retransmitted_bytes, b.retransmitted_bytes);
  EXPECT_EQ(a.members_lost, b.members_lost);
  EXPECT_EQ(a.phases_retried, b.phases_retried);
  // Doubles must match to the bit, not within a tolerance.
  EXPECT_EQ(a.success_rate, b.success_rate);
  EXPECT_EQ(a.retry_overhead, b.retry_overhead);
  EXPECT_EQ(a.avg_achieved_anonymity, b.avg_achieved_anonymity);
  EXPECT_EQ(a.avg_region_area, b.avg_region_area);
}

}  // namespace
}  // namespace nela
