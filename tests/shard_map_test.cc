// Unit tests for the spatial ownership partition (ShardMap) and the
// shard-sliced registry view (ShardedRegistry): grid geometry, home/owner
// rules, boundary clamping, and the digest identities the service-level
// determinism matrix builds on.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/registry.h"
#include "cluster/shard_map.h"
#include "cluster/sharded_registry.h"
#include "data/dataset.h"
#include "data/generators.h"
#include "geo/point.h"
#include "util/rng.h"

namespace nela::cluster {
namespace {

data::Dataset QuadrantDataset() {
  // One user per quadrant of the unit square plus two sitting exactly on
  // boundaries.
  return data::Dataset({
      geo::Point{0.25, 0.25},  // 0: bottom-left
      geo::Point{0.75, 0.25},  // 1: bottom-right
      geo::Point{0.25, 0.75},  // 2: top-left
      geo::Point{0.75, 0.75},  // 3: top-right
      geo::Point{0.5, 0.5},    // 4: the crossing
      geo::Point{1.0, 1.0},    // 5: far corner (clamps onto the grid)
  });
}

TEST(ShardMapTest, SingleShardOwnsEverything) {
  const data::Dataset dataset = QuadrantDataset();
  const ShardMap map(dataset, 1);
  EXPECT_EQ(map.shard_count(), 1u);
  for (data::UserId u = 0; u < dataset.size(); ++u) {
    EXPECT_EQ(map.HomeShardOf(u), 0u);
  }
  EXPECT_EQ(map.users_in(0), dataset.size());
  EXPECT_FALSE(map.CrossesShards({0, 1, 2, 3}));
}

TEST(ShardMapTest, QuadGridAssignsQuadrants) {
  const data::Dataset dataset = QuadrantDataset();
  const ShardMap map(dataset, 4);
  EXPECT_EQ(map.grid_cols(), 2u);
  EXPECT_EQ(map.grid_rows(), 2u);
  // The four quadrant users land in four distinct shards.
  EXPECT_NE(map.HomeShardOf(0), map.HomeShardOf(1));
  EXPECT_NE(map.HomeShardOf(0), map.HomeShardOf(2));
  EXPECT_NE(map.HomeShardOf(0), map.HomeShardOf(3));
  EXPECT_NE(map.HomeShardOf(1), map.HomeShardOf(2));
  // Boundary and out-of-range points clamp onto the grid, never off it.
  EXPECT_LT(map.HomeShardOf(4), 4u);
  EXPECT_LT(map.HomeShardOf(5), 4u);
  uint32_t total = 0;
  for (ShardId s = 0; s < 4; ++s) total += map.users_in(s);
  EXPECT_EQ(total, dataset.size());
}

TEST(ShardMapTest, OwnerIsHomeOfMinimumMember) {
  const data::Dataset dataset = QuadrantDataset();
  const ShardMap map(dataset, 4);
  EXPECT_EQ(map.OwnerOf({2, 3}), map.HomeShardOf(2));
  EXPECT_EQ(map.OwnerOf({1}), map.HomeShardOf(1));
  EXPECT_TRUE(map.CrossesShards({0, 3}));
  EXPECT_FALSE(map.CrossesShards({0}));
}

TEST(ShardMapTest, HomeAssignmentIsAPureFunctionOfTheDataset) {
  util::Rng rng(7);
  const data::Dataset dataset = data::GenerateUniform(400, rng);
  const ShardMap a(dataset, 16);
  const ShardMap b(dataset, 16);
  for (data::UserId u = 0; u < dataset.size(); ++u) {
    EXPECT_EQ(a.HomeShardOf(u), b.HomeShardOf(u));
    EXPECT_EQ(a.HomeShardOf(u), a.ShardOfPoint(dataset.point(u)));
  }
}

TEST(ShardedRegistryTest, SlicesPartitionTheRegistry) {
  util::Rng rng(11);
  const data::Dataset dataset = data::GenerateUniform(200, rng);
  const ShardMap map(dataset, 4);
  ShardedRegistry view(dataset.size(), &map);

  // Commit a handful of clusters straight through the global store.
  std::vector<std::vector<graph::VertexId>> clusters = {
      {0, 1, 2}, {3, 7, 9}, {4, 5}, {6, 8, 10, 12}, {11, 13}};
  for (auto& members : clusters) {
    auto id = view.global()->Register(members, 1.0, true);
    ASSERT_TRUE(id.ok());
  }

  uint32_t owned_total = 0;
  for (ShardId s = 0; s < view.shard_count(); ++s) {
    const std::vector<ClusterId> owned = view.OwnedBy(s);
    owned_total += static_cast<uint32_t>(owned.size());
    for (ClusterId id : owned) {
      EXPECT_EQ(view.OwnerOf(id), s);
      EXPECT_EQ(map.OwnerOf(view.global()->info(id).members), s);
    }
  }
  EXPECT_EQ(owned_total, view.global()->cluster_count());
  EXPECT_EQ(view.ConcatenatedDigest(), view.GlobalDigest());
}

TEST(ShardedRegistryTest, ShardDigestsChangeOnlyWithTheOwnedSlice) {
  const data::Dataset dataset = QuadrantDataset();
  const ShardMap map(dataset, 4);
  ShardedRegistry view(dataset.size(), &map);

  auto first = view.global()->Register({0}, 0.0, true);
  ASSERT_TRUE(first.ok());
  const ShardId owner = view.OwnerOf(first.value());
  std::vector<uint64_t> before;
  for (ShardId s = 0; s < 4; ++s) before.push_back(view.ShardDigest(s));

  // A cluster owned by a DIFFERENT shard leaves the first owner's slice
  // digest untouched.
  auto second = view.global()->Register({3}, 0.0, true);
  ASSERT_TRUE(second.ok());
  const ShardId other = view.OwnerOf(second.value());
  ASSERT_NE(owner, other);
  EXPECT_EQ(view.ShardDigest(owner), before[owner]);
  EXPECT_NE(view.ShardDigest(other), before[other]);
  EXPECT_EQ(view.ConcatenatedDigest(), view.GlobalDigest());
}

TEST(ShardedRegistryTest, AdoptedRegistryKeepsItsDigest) {
  util::Rng rng(3);
  const data::Dataset dataset = data::GenerateUniform(50, rng);
  auto registry = std::make_unique<Registry>(dataset.size());
  ASSERT_TRUE(registry->Register({1, 2, 3}, 1.5, true).ok());
  ASSERT_TRUE(registry->Register({10, 20}, 0.5, false).ok());
  const uint64_t digest = registry->Digest();

  const ShardMap map(dataset, 4);
  ShardedRegistry view(std::move(registry), &map);
  EXPECT_EQ(view.GlobalDigest(), digest);
  EXPECT_EQ(view.ConcatenatedDigest(), digest);
}

}  // namespace
}  // namespace nela::cluster
