#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/steal_deque.h"

namespace nela::util {
namespace {

TEST(ThreadPoolTest, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<uint32_t>> hits(4);
  pool.RunOnAllThreads([&](uint32_t worker) {
    ASSERT_LT(worker, 4u);
    hits[worker].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  uint32_t calls = 0;
  pool.RunOnAllThreads([&](uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, AllWorkersAreLiveSimultaneously) {
  // The batch driver's commit turnstile blocks workers on each other, so
  // RunOnAllThreads must provide genuine concurrency: every worker waits
  // until all of them have arrived, which can only terminate if all
  // thread_count() invocations run at the same time.
  constexpr uint32_t kThreads = 4;
  ThreadPool pool(kThreads);
  std::mutex mu;
  std::condition_variable cv;
  uint32_t arrived = 0;
  pool.RunOnAllThreads([&](uint32_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == kThreads; });
  });
  EXPECT_EQ(arrived, kThreads);
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  for (uint32_t round = 0; round < 100; ++round) {
    pool.RunOnAllThreads([&](uint32_t worker) {
      sum.fetch_add(worker + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 100u * (1 + 2 + 3));
}

TEST(ThreadPoolTest, BlockPartitionIsContiguousAndComplete) {
  ThreadPool pool(3);
  for (const uint64_t n : {0ull, 1ull, 2ull, 3ull, 7ull, 100ull}) {
    EXPECT_EQ(pool.BlockBegin(0, n), 0u);
    EXPECT_EQ(pool.BlockBegin(3, n), n);
    for (uint32_t w = 0; w < 3; ++w) {
      EXPECT_LE(pool.BlockBegin(w, n), pool.BlockBegin(w + 1, n));
      // Balanced: blocks differ in size by at most one element.
      const uint64_t size = pool.BlockBegin(w + 1, n) - pool.BlockBegin(w, n);
      EXPECT_LE(size, n / 3 + 1);
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 1013;  // not a multiple of the worker count
  std::vector<std::atomic<uint32_t>> seen(kN);
  pool.ParallelFor(kN, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i].load(), 1u);
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<uint64_t> visited{0};
  std::atomic<uint32_t> invocations{0};
  pool.ParallelFor(3, [&](uint32_t, uint64_t begin, uint64_t end) {
    invocations.fetch_add(1);
    visited.fetch_add(end - begin);
  });
  EXPECT_EQ(visited.load(), 3u);
  EXPECT_EQ(invocations.load(), 8u);  // empty blocks are still invoked
}

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// --- StealDeque semantics (suite names carry the ThreadPool prefix so the
// TSan CI lane's filter picks them up).

TEST(ThreadPoolStealDequeTest, OwnerPopsLifoThievesStealFifo) {
  StealDeque deque(4);
  for (uint64_t item = 1; item <= 4; ++item) deque.Push(item);
  EXPECT_EQ(deque.ApproxSize(), 4u);

  uint64_t got = 0;
  ASSERT_TRUE(deque.Steal(&got));
  EXPECT_EQ(got, 1u);  // thieves take the oldest end
  ASSERT_TRUE(deque.Pop(&got));
  EXPECT_EQ(got, 4u);  // the owner takes the newest end
  ASSERT_TRUE(deque.Steal(&got));
  EXPECT_EQ(got, 2u);
  ASSERT_TRUE(deque.Pop(&got));
  EXPECT_EQ(got, 3u);

  EXPECT_FALSE(deque.Pop(&got));
  EXPECT_FALSE(deque.Steal(&got));
  EXPECT_EQ(deque.ApproxSize(), 0u);
}

TEST(ThreadPoolStealDequeTest, ConcurrentPopAndStealCoverEveryItemOnce) {
  // One owner popping, three thieves stealing, all hammering the same
  // deque: every item must surface exactly once. Runs on the pool so the
  // TSan lane checks the memory-order reasoning, not just the counts.
  constexpr uint64_t kItems = 10000;
  constexpr uint32_t kThreads = 4;
  ThreadPool pool(kThreads);
  StealDeque deque(kItems);
  for (uint64_t item = 0; item < kItems; ++item) deque.Push(item);

  std::vector<std::atomic<uint32_t>> seen(kItems);
  pool.RunOnAllThreads([&](uint32_t worker) {
    uint64_t got = 0;
    if (worker == 0) {
      while (deque.Pop(&got)) seen[got].fetch_add(1);
    } else {
      // A failed Steal can be a lost race, not exhaustion; retry until
      // the deque is visibly empty, yielding so the owner makes progress
      // on core-starved runners.
      while (deque.ApproxSize() != 0) {
        if (deque.Steal(&got)) {
          seen[got].fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    }
  });
  for (uint64_t item = 0; item < kItems; ++item) {
    EXPECT_EQ(seen[item].load(), 1u) << "item " << item;
  }
}

// --- ParallelForChunks.

TEST(ThreadPoolTest, ParallelForChunksCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 1013;
  ChunkDispatchStats stats;
  ChunkOptions options;
  options.grain = 1;  // maximum stealing pressure
  options.sequential_cutoff = 0;
  options.stats = &stats;
  std::vector<std::atomic<uint32_t>> seen(kN);
  pool.ParallelForChunks(
      kN, options, [&](uint32_t, uint64_t, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) seen[i].fetch_add(1);
      });
  for (uint64_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i].load(), 1u);
  EXPECT_TRUE(stats.dispatched);
  EXPECT_EQ(stats.chunks, kN);
  EXPECT_EQ(stats.worker_busy_seconds.size(), 4u);
}

TEST(ThreadPoolTest, ParallelForChunksBoundariesAreScheduleIndependent) {
  // Chunk c must cover [c*grain, min(n, (c+1)*grain)) no matter which
  // worker runs it — this is the whole determinism contract.
  ThreadPool pool(4);
  constexpr uint64_t kN = 10;
  ChunkOptions options;
  options.grain = 4;
  options.sequential_cutoff = 0;
  ASSERT_EQ(pool.ChunkCount(kN, options), 3u);
  std::vector<std::atomic<uint64_t>> begins(3);
  std::vector<std::atomic<uint64_t>> ends(3);
  pool.ParallelForChunks(
      kN, options,
      [&](uint32_t, uint64_t chunk, uint64_t begin, uint64_t end) {
        ASSERT_LT(chunk, 3u);
        begins[chunk].store(begin);
        ends[chunk].store(end);
      });
  EXPECT_EQ(begins[0].load(), 0u);
  EXPECT_EQ(ends[0].load(), 4u);
  EXPECT_EQ(begins[1].load(), 4u);
  EXPECT_EQ(ends[1].load(), 8u);
  EXPECT_EQ(begins[2].load(), 8u);
  EXPECT_EQ(ends[2].load(), 10u);  // last chunk clamps to n
}

TEST(ThreadPoolTest, ParallelForChunksMatchesParallelForUnderSkewedCost) {
  // The work-stealing variant must produce the same slot-indexed result
  // as the static partition even when per-item cost is wildly skewed
  // (the first 1/16th of items cost ~200x the rest, so static blocks
  // leave worker 0 with almost all the work and thieves migrate chunks).
  constexpr uint64_t kN = 4096;
  const auto item_value = [](uint64_t i) {
    const uint64_t spins = (i < kN / 16) ? 2000 : 10;
    uint64_t acc = i + 1;
    for (uint64_t k = 0; k < spins; ++k) {
      acc = acc * 6364136223846793005ull + i;
    }
    return acc;
  };

  ThreadPool pool(4);
  std::vector<uint64_t> from_static(kN, 0);
  pool.ParallelFor(kN, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) from_static[i] = item_value(i);
  });

  ChunkDispatchStats stats;
  ChunkOptions options;
  options.grain = 16;
  options.sequential_cutoff = 0;
  options.stats = &stats;
  std::vector<uint64_t> from_stealing(kN, 0);
  pool.ParallelForChunks(
      kN, options, [&](uint32_t, uint64_t, uint64_t begin, uint64_t end) {
        for (uint64_t i = begin; i < end; ++i) {
          from_stealing[i] = item_value(i);
        }
      });

  EXPECT_TRUE(stats.dispatched);
  EXPECT_EQ(from_static, from_stealing);
}

TEST(ThreadPoolTest, ParallelForChunksBypassesDispatchBelowCutoff) {
  ThreadPool pool(4);
  ChunkDispatchStats stats;
  ChunkOptions options;
  options.stats = &stats;
  ASSERT_LT(100u, ChunkOptions::kDefaultSequentialCutoff);
  const std::thread::id caller = std::this_thread::get_id();
  uint32_t invocations = 0;
  pool.ParallelForChunks(
      100, options,
      [&](uint32_t worker, uint64_t chunk, uint64_t begin, uint64_t end) {
        EXPECT_EQ(worker, 0u);
        EXPECT_EQ(chunk, 0u);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++invocations;
      });
  EXPECT_EQ(invocations, 1u);
  EXPECT_FALSE(stats.dispatched);
  EXPECT_EQ(stats.chunks, 1u);
  EXPECT_EQ(pool.ChunkCount(100, options), 1u);
}

TEST(ThreadPoolTest, ParallelForChunksCutoffBoundaryIsExact) {
  // n < cutoff runs inline; n == cutoff dispatches. Pins the threshold
  // semantics the WPG sequential fallback builds on.
  ThreadPool pool(2);
  const uint64_t cutoff = ChunkOptions::kDefaultSequentialCutoff;
  ChunkDispatchStats stats;
  ChunkOptions options;
  options.stats = &stats;
  pool.ParallelForChunks(cutoff - 1, options,
                         [&](uint32_t, uint64_t, uint64_t, uint64_t) {});
  EXPECT_FALSE(stats.dispatched);
  pool.ParallelForChunks(cutoff, options,
                         [&](uint32_t, uint64_t, uint64_t, uint64_t) {});
  EXPECT_TRUE(stats.dispatched);
  // UINT64_MAX forces inline at any size; 0 forces dispatch at any size.
  options.sequential_cutoff = UINT64_MAX;
  pool.ParallelForChunks(1000000, options,
                         [&](uint32_t, uint64_t, uint64_t, uint64_t) {});
  EXPECT_FALSE(stats.dispatched);
  options.sequential_cutoff = 0;
  pool.ParallelForChunks(3, options,
                         [&](uint32_t, uint64_t, uint64_t, uint64_t) {});
  EXPECT_TRUE(stats.dispatched);
}

TEST(ThreadPoolTest, ParallelForChunksHandlesEmptyAndSingleThread) {
  ThreadPool pool(4);
  ChunkDispatchStats stats;
  ChunkOptions options;
  options.sequential_cutoff = 0;
  options.stats = &stats;
  uint32_t invocations = 0;
  pool.ParallelForChunks(0, options,
                         [&](uint32_t, uint64_t, uint64_t begin,
                             uint64_t end) {
                           EXPECT_EQ(begin, end);
                           ++invocations;
                         });
  EXPECT_EQ(invocations, 1u);  // n == 0 still invokes once, as [0, 0)

  // A 1-thread pool always runs inline, even with cutoff 0.
  ThreadPool solo(1);
  ChunkDispatchStats solo_stats;
  ChunkOptions solo_options;
  solo_options.sequential_cutoff = 0;
  solo_options.stats = &solo_stats;
  uint32_t solo_invocations = 0;
  solo.ParallelForChunks(100000, solo_options,
                         [&](uint32_t, uint64_t, uint64_t, uint64_t) {
                           ++solo_invocations;
                         });
  EXPECT_EQ(solo_invocations, 1u);
  EXPECT_FALSE(solo_stats.dispatched);
}

TEST(ThreadPoolTest, ChunkGrainAutoPolicyAndOverride) {
  ThreadPool pool(4);
  ChunkOptions options;
  // Auto grain targets kAutoChunksPerWorker chunks per worker.
  EXPECT_EQ(pool.ChunkGrain(1024, options),
            1024 / (4 * ChunkOptions::kAutoChunksPerWorker));
  EXPECT_EQ(pool.ChunkGrain(1, options), 1u);  // floored at one item
  options.grain = 7;
  EXPECT_EQ(pool.ChunkGrain(1024, options), 7u);
  options.sequential_cutoff = 0;
  EXPECT_EQ(pool.ChunkCount(1024, options), (1024 + 6) / 7);
}

}  // namespace
}  // namespace nela::util
