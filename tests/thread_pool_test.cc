#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace nela::util {
namespace {

TEST(ThreadPoolTest, RunsEveryWorkerExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<uint32_t>> hits(4);
  pool.RunOnAllThreads([&](uint32_t worker) {
    ASSERT_LT(worker, 4u);
    hits[worker].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1u);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  uint32_t calls = 0;
  pool.RunOnAllThreads([&](uint32_t worker) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPoolTest, AllWorkersAreLiveSimultaneously) {
  // The batch driver's commit turnstile blocks workers on each other, so
  // RunOnAllThreads must provide genuine concurrency: every worker waits
  // until all of them have arrived, which can only terminate if all
  // thread_count() invocations run at the same time.
  constexpr uint32_t kThreads = 4;
  ThreadPool pool(kThreads);
  std::mutex mu;
  std::condition_variable cv;
  uint32_t arrived = 0;
  pool.RunOnAllThreads([&](uint32_t) {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == kThreads; });
  });
  EXPECT_EQ(arrived, kThreads);
}

TEST(ThreadPoolTest, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  for (uint32_t round = 0; round < 100; ++round) {
    pool.RunOnAllThreads([&](uint32_t worker) {
      sum.fetch_add(worker + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 100u * (1 + 2 + 3));
}

TEST(ThreadPoolTest, BlockPartitionIsContiguousAndComplete) {
  ThreadPool pool(3);
  for (const uint64_t n : {0ull, 1ull, 2ull, 3ull, 7ull, 100ull}) {
    EXPECT_EQ(pool.BlockBegin(0, n), 0u);
    EXPECT_EQ(pool.BlockBegin(3, n), n);
    for (uint32_t w = 0; w < 3; ++w) {
      EXPECT_LE(pool.BlockBegin(w, n), pool.BlockBegin(w + 1, n));
      // Balanced: blocks differ in size by at most one element.
      const uint64_t size = pool.BlockBegin(w + 1, n) - pool.BlockBegin(w, n);
      EXPECT_LE(size, n / 3 + 1);
    }
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr uint64_t kN = 1013;  // not a multiple of the worker count
  std::vector<std::atomic<uint32_t>> seen(kN);
  pool.ParallelFor(kN, [&](uint32_t, uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) seen[i].fetch_add(1);
  });
  for (uint64_t i = 0; i < kN; ++i) EXPECT_EQ(seen[i].load(), 1u);
}

TEST(ThreadPoolTest, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<uint64_t> visited{0};
  std::atomic<uint32_t> invocations{0};
  pool.ParallelFor(3, [&](uint32_t, uint64_t begin, uint64_t end) {
    invocations.fetch_add(1);
    visited.fetch_add(end - begin);
  });
  EXPECT_EQ(visited.load(), 3u);
  EXPECT_EQ(invocations.load(), 8u);  // empty blocks are still invoked
}

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace nela::util
