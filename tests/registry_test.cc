#include <gtest/gtest.h>

#include "cluster/registry.h"

namespace nela::cluster {
namespace {

TEST(RegistryTest, StartsUnclustered) {
  Registry registry(4);
  EXPECT_EQ(registry.user_count(), 4u);
  EXPECT_EQ(registry.cluster_count(), 0u);
  EXPECT_EQ(registry.clustered_user_count(), 0u);
  for (graph::VertexId v = 0; v < 4; ++v) {
    EXPECT_FALSE(registry.IsClustered(v));
    EXPECT_EQ(registry.ClusterOf(v), kNoCluster);
    EXPECT_TRUE(registry.active()[v]);
  }
}

TEST(RegistryTest, RegisterAssignsAllMembers) {
  Registry registry(5);
  auto id = registry.Register({3, 1}, 2.0, true);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(registry.cluster_count(), 1u);
  EXPECT_EQ(registry.clustered_user_count(), 2u);
  EXPECT_TRUE(registry.IsClustered(1));
  EXPECT_TRUE(registry.IsClustered(3));
  EXPECT_FALSE(registry.IsClustered(0));
  EXPECT_EQ(registry.ClusterOf(1), id.value());
  EXPECT_EQ(registry.ClusterOf(3), id.value());
  EXPECT_FALSE(registry.active()[1]);
  // Members are stored sorted: reciprocity means one shared set.
  EXPECT_EQ(registry.info(id.value()).members,
            (std::vector<graph::VertexId>{1, 3}));
  EXPECT_DOUBLE_EQ(registry.info(id.value()).connectivity, 2.0);
  EXPECT_TRUE(registry.info(id.value()).valid);
}

TEST(RegistryTest, RejectsEmptyCluster) {
  Registry registry(3);
  EXPECT_FALSE(registry.Register({}, 0.0, true).ok());
}

TEST(RegistryTest, RejectsOutOfRangeMember) {
  Registry registry(3);
  EXPECT_FALSE(registry.Register({5}, 0.0, true).ok());
}

TEST(RegistryTest, RejectsDuplicateMember) {
  Registry registry(3);
  EXPECT_FALSE(registry.Register({1, 1}, 0.0, true).ok());
}

TEST(RegistryTest, ReciprocityForbidsReassignment) {
  Registry registry(4);
  ASSERT_TRUE(registry.Register({0, 1}, 1.0, true).ok());
  auto second = registry.Register({1, 2}, 1.0, true);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), util::StatusCode::kFailedPrecondition);
  // The failed registration must not have clustered vertex 2.
  EXPECT_FALSE(registry.IsClustered(2));
}

TEST(RegistryTest, RegionSetOnce) {
  Registry registry(2);
  auto id = registry.Register({0, 1}, 1.0, true);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(registry.info(id.value()).region.has_value());
  registry.SetRegion(id.value(), geo::Rect(0, 0, 1, 1));
  ASSERT_TRUE(registry.info(id.value()).region.has_value());
  EXPECT_EQ(*registry.info(id.value()).region, geo::Rect(0, 0, 1, 1));
}

TEST(RegistryTest, InvalidClusterIsRecorded) {
  Registry registry(2);
  auto id = registry.Register({0}, 0.0, false);
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(registry.info(id.value()).valid);
}

}  // namespace
}  // namespace nela::cluster
