// Simulation harness tests on scaled-down scenarios: scenario building,
// workload sampling, and both experiment drivers (including the headline
// qualitative relationships the paper's figures rest on).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sim/bounding_experiment.h"
#include "sim/clustering_experiment.h"
#include "sim/scenario.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace nela::sim {
namespace {

ScenarioConfig SmallConfig() {
  // A 4000-user scale model of the paper's default scenario: delta grows
  // by sqrt(104770 / 4000) so the WPG keeps the full-size local structure.
  ScenarioConfig config;
  config.user_count = 4000;
  config.delta = 0.0102;
  config.max_peers = 10;
  config.seed = 11;
  return config;
}

TEST(ScenarioTest, BuildsDeterministically) {
  auto a = BuildScenario(SmallConfig());
  auto b = BuildScenario(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().dataset.size(), 4000u);
  EXPECT_EQ(a.value().graph.edge_count(), b.value().graph.edge_count());
  EXPECT_EQ(a.value().dataset.point(42), b.value().dataset.point(42));
}

TEST(ScenarioTest, MaxPeersControlsDensity) {
  ScenarioConfig low = SmallConfig();
  low.max_peers = 4;
  ScenarioConfig high = SmallConfig();
  high.max_peers = 16;
  auto g_low = BuildScenario(low);
  auto g_high = BuildScenario(high);
  ASSERT_TRUE(g_low.ok());
  ASSERT_TRUE(g_high.ok());
  EXPECT_LT(g_low.value().graph.AverageDegree(),
            g_high.value().graph.AverageDegree());
}

TEST(ScenarioTest, RejectsEmptyPopulation) {
  ScenarioConfig config = SmallConfig();
  config.user_count = 0;
  EXPECT_FALSE(BuildScenario(config).ok());
}

TEST(WorkloadTest, DistinctHostsWithinRange) {
  util::Rng rng(3);
  const auto hosts = SampleWorkload(1000, 200, rng);
  ASSERT_EQ(hosts.size(), 200u);
  std::set<data::UserId> unique(hosts.begin(), hosts.end());
  EXPECT_EQ(unique.size(), 200u);
  for (data::UserId id : hosts) EXPECT_LT(id, 1000u);
}

class ClusteringExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildScenario(SmallConfig());
    NELA_CHECK(built.ok());
    scenario_ = new Scenario(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static Scenario* scenario_;
};

Scenario* ClusteringExperimentTest::scenario_ = nullptr;

TEST_F(ClusteringExperimentTest, RunsAllAlgorithms) {
  ClusteringExperimentConfig config;
  config.k = 5;
  config.requests = 100;
  for (ClusteringAlgorithm algorithm :
       {ClusteringAlgorithm::kDistributedTConn,
        ClusteringAlgorithm::kCentralizedTConn, ClusteringAlgorithm::kKnn}) {
    auto result = RunClusteringExperiment(*scenario_, algorithm, config);
    ASSERT_TRUE(result.ok()) << ClusteringAlgorithmName(algorithm);
    EXPECT_GT(result.value().avg_comm_cost, 0.0);
    EXPECT_GT(result.value().avg_cloaked_area, 0.0);
    EXPECT_GE(result.value().avg_cluster_size, 1.0);
  }
}

TEST_F(ClusteringExperimentTest, CentralizedCostIsPopulationOverRequests) {
  ClusteringExperimentConfig config;
  config.k = 5;
  config.requests = 100;
  auto result = RunClusteringExperiment(
      *scenario_, ClusteringAlgorithm::kCentralizedTConn, config);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value().avg_comm_cost, 4000.0 / 100.0);
}

TEST_F(ClusteringExperimentTest, KnnCostLowerThanDistributedTConn) {
  // Fig. 9(a): kNN involves ~k users; distributed t-Conn involves the whole
  // smallest valid cluster plus border checks.
  ClusteringExperimentConfig config;
  config.k = 5;
  config.requests = 100;
  auto tconn = RunClusteringExperiment(
      *scenario_, ClusteringAlgorithm::kDistributedTConn, config);
  auto knn =
      RunClusteringExperiment(*scenario_, ClusteringAlgorithm::kKnn, config);
  ASSERT_TRUE(tconn.ok());
  ASSERT_TRUE(knn.ok());
  EXPECT_LT(knn.value().avg_comm_cost, tconn.value().avg_comm_cost);
}

TEST_F(ClusteringExperimentTest, MoreRequestsAmortizeTConnCost) {
  // Fig. 12(a): distributed t-Conn's per-request cost drops with S.
  ClusteringExperimentConfig few;
  few.k = 5;
  few.requests = 50;
  ClusteringExperimentConfig many;
  many.k = 5;
  many.requests = 800;
  auto cost_few = RunClusteringExperiment(
      *scenario_, ClusteringAlgorithm::kDistributedTConn, few);
  auto cost_many = RunClusteringExperiment(
      *scenario_, ClusteringAlgorithm::kDistributedTConn, many);
  ASSERT_TRUE(cost_few.ok());
  ASSERT_TRUE(cost_many.ok());
  EXPECT_LT(cost_many.value().avg_comm_cost, cost_few.value().avg_comm_cost);
}

TEST_F(ClusteringExperimentTest, RejectsBadRequestCounts) {
  ClusteringExperimentConfig config;
  config.requests = 0;
  EXPECT_FALSE(RunClusteringExperiment(*scenario_,
                                       ClusteringAlgorithm::kKnn, config)
                   .ok());
  config.requests = 999999;
  EXPECT_FALSE(RunClusteringExperiment(*scenario_,
                                       ClusteringAlgorithm::kKnn, config)
                   .ok());
}

// ----------------------------------------------------------- full scale
//
// The paper's headline trends only emerge at the full population (a
// miniature world is exhausted by the request workload long before the
// depletion dynamics set in), so these tests share one full-size scenario
// built with the Table I defaults.
class FullScaleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto built = BuildScenario(ScenarioConfig{});  // paper defaults
    NELA_CHECK(built.ok());
    scenario_ = new Scenario(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static Scenario* scenario_;
};

Scenario* FullScaleTest::scenario_ = nullptr;

TEST_F(FullScaleTest, KnnDeterioratesWithRequestsWhileTConnHolds) {
  // Fig. 12(b): kNN's cloaked size grows with S (consumed users accumulate
  // and fresh clusters must stretch along the road corridors) while the
  // cluster-isolated t-Conn is unaffected.
  auto area = [&](ClusteringAlgorithm algorithm, uint32_t requests) {
    ClusteringExperimentConfig config;
    config.requests = requests;
    auto result = RunClusteringExperiment(*scenario_, algorithm, config);
    NELA_CHECK(result.ok());
    return result.value().avg_cloaked_area;
  };
  const double knn_small = area(ClusteringAlgorithm::kKnn, 1000);
  const double knn_large = area(ClusteringAlgorithm::kKnn, 8000);
  const double tconn_small =
      area(ClusteringAlgorithm::kDistributedTConn, 1000);
  const double tconn_large =
      area(ClusteringAlgorithm::kDistributedTConn, 8000);
  EXPECT_GT(knn_large, 1.5 * knn_small);
  EXPECT_LT(tconn_large, 1.3 * tconn_small);
  EXPECT_GT(tconn_large, 0.7 * tconn_small);
}

TEST_F(FullScaleTest, KnnRelativeSizeGrowsWithK) {
  // Fig. 11(b): the kNN / t-Conn cloaked-size ratio grows with k (the
  // paper reports 2x at k=5 rising to 4x at k=50; our synthetic dataset
  // shifts the absolute level but reproduces the trend -- EXPERIMENTS.md).
  auto ratio_at = [&](uint32_t k) {
    ClusteringExperimentConfig config;
    config.k = k;
    auto tconn = RunClusteringExperiment(
        *scenario_, ClusteringAlgorithm::kDistributedTConn, config);
    auto knn = RunClusteringExperiment(*scenario_,
                                       ClusteringAlgorithm::kKnn, config);
    NELA_CHECK(tconn.ok());
    NELA_CHECK(knn.ok());
    return knn.value().avg_cloaked_area / tconn.value().avg_cloaked_area;
  };
  EXPECT_GT(ratio_at(50), ratio_at(10));
}

TEST_F(FullScaleTest, BoundingExperimentOrderings) {
  BoundingExperimentConfig config;  // k=10, S=2000, Table I costs
  auto run = RunBoundingExperiment(*scenario_, config);
  ASSERT_TRUE(run.ok());
  const BoundingExperimentResult& result = run.value();

  const auto& linear = result.of(BoundingAlgorithm::kLinear);
  const auto& exponential = result.of(BoundingAlgorithm::kExponential);
  const auto& secure = result.of(BoundingAlgorithm::kSecure);
  const auto& optimal = result.of(BoundingAlgorithm::kOptimal);
  ASSERT_GT(linear.bounding_runs, 0u);

  // Fig. 13(a): the doubling policy is the most aggressive -> clearly the
  // lowest bounding cost of the progressive algorithms.
  EXPECT_GT(linear.avg_bounding_cost, exponential.avg_bounding_cost);
  EXPECT_GT(secure.avg_bounding_cost, exponential.avg_bounding_cost);

  // Fig. 13(b): ratios >= 1; exponential clearly loosest; linear and
  // secure both near-optimal (within 5%).
  EXPECT_GE(linear.avg_request_ratio, 1.0);
  EXPECT_GE(secure.avg_request_ratio, 1.0);
  EXPECT_LT(linear.avg_request_ratio, 1.05);
  EXPECT_LT(secure.avg_request_ratio, 1.05);
  EXPECT_GT(exponential.avg_request_ratio, 1.2);
  EXPECT_DOUBLE_EQ(optimal.avg_request_ratio, 1.0);

  // Fig. 13(c): secure ends within a whisker of the best progressive total
  // (in this Cr-dominated regime secure and linear are near-ties, see
  // EXPERIMENTS.md) and clearly beats exponential; nothing beats optimal.
  EXPECT_LE(secure.avg_total_cost, 1.02 * linear.avg_total_cost);
  EXPECT_LT(secure.avg_total_cost, 0.9 * exponential.avg_total_cost);
  EXPECT_GE(secure.avg_total_cost, optimal.avg_total_cost);
  EXPECT_GE(linear.avg_total_cost, optimal.avg_total_cost);

  // Fig. 13(d): every progressive policy stays far under 1 ms of CPU per
  // cloaking request.
  EXPECT_LT(linear.avg_cpu_ms, 1.0);
  EXPECT_LT(exponential.avg_cpu_ms, 1.0);
  EXPECT_LT(secure.avg_cpu_ms, 1.0);
}

}  // namespace
}  // namespace nela::sim
