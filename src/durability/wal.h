// Write-ahead log of registry mutations.
//
// The anonymizer's only durable state is the cluster registry: which users
// are clustered together and which cloaked region each cluster published.
// Both mutations (Register, SetRegion) are logged here *before* they are
// applied in memory, so a crash at any instant leaves the log holding a
// prefix of the committed history -- recovery replays that prefix and
// nothing else.
//
// On-disk framing, all integers little-endian:
//
//   record  := [u32 payload_len][u64 fnv1a(payload)][payload]
//   payload := [u64 lsn][u8 type][body]
//   body    := kRegister:      [u32 n][n x u32 member]
//              [u64 connectivity_bits][u8 valid]
//              kSetRegion:     [u32 cluster_id][4 x u64 rect coordinate
//              bits]
//              kRegisterBatch: [u32 cluster_count] then per cluster
//              [u32 n][n x u32 member][u64 connectivity_bits][u8 valid]
//              kShardRegisterBatch: [u32 first_cluster_id]
//              [u32 cluster_count] then per cluster the kRegisterBatch
//              cluster image; cluster c of the batch has global id
//              first_cluster_id + c
//
// Appends are serialized on an internal mutex, so a crash can tear at most
// the final record; ReadWal stops at the first length/checksum mismatch and
// reports the torn byte count, and TruncateTornTail cuts the file back to
// its valid prefix so a reopened writer appends after intact records only.
//
// kRegisterBatch exists for atomicity, not compactness: one commit of the
// service driver's turnstile may register several clusters at once, and a
// crash tearing the middle of that group must hide the *whole* commit --
// replaying a partial group would leave the host's cluster present but its
// siblings missing, and a resumed workload would rebuild them differently.
// Batching the group into a single checksummed record makes the torn-tail
// rule ("at most the final record is lost") coincide with commit atomicity.
//
// kShardRegisterBatch is the sharded-service variant: with K WAL streams
// (one per shard) a stream sees only the commits its shard coordinated, so
// replay cannot infer global cluster ids from stream position -- the
// record carries the batch's first global id explicitly. One commit still
// lands in exactly ONE stream (the coordinating shard's), preserving the
// torn-tail-equals-commit-atomicity property per stream; per-stream
// kSetRegion records always follow their cluster's batch in the same
// stream, so each shard's slice replays from its own files alone.

#ifndef NELA_DURABILITY_WAL_H_
#define NELA_DURABILITY_WAL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cluster/registry.h"
#include "geo/rect.h"
#include "graph/wpg.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nela::durability {

enum class WalRecordType : uint8_t {
  kRegister = 1,
  kSetRegion = 2,
  kRegisterBatch = 3,
  kShardRegisterBatch = 4,
};

// One cluster inside a kRegisterBatch record.
struct WalClusterImage {
  std::vector<graph::VertexId> members;
  double connectivity = 0.0;
  bool valid = true;
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kRegister;
  // kRegister fields.
  std::vector<graph::VertexId> members;
  double connectivity = 0.0;
  bool valid = true;
  // kSetRegion fields.
  cluster::ClusterId cluster_id = 0;
  geo::Rect region;
  // kRegisterBatch / kShardRegisterBatch fields: the clusters of one
  // atomic commit, in registration order.
  std::vector<WalClusterImage> clusters;
  // kShardRegisterBatch only: the global cluster id of clusters[0]; the
  // rest of the batch follows consecutively.
  cluster::ClusterId first_cluster_id = 0;
};

// Serializes the payload (without the [len][checksum] frame).
std::string EncodeWalRecord(const WalRecord& record);

// Parses one payload; rejects truncated or unknown-type payloads.
util::Result<WalRecord> DecodeWalRecord(const std::string& payload);

// Appends framed records to one log file. Thread-safe; each Append is
// flushed before returning so the record survives a process crash (the
// simulated kind this repo tests: the process dies, the file system does
// not).
class WalWriter {
 public:
  // `truncate` starts a fresh log; otherwise appends to an existing one
  // (recovery reopens the log this way after replay).
  static util::Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, bool truncate);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  [[nodiscard]] util::Status Append(const WalRecord& record) EXCLUDES(mu_);

  // Chaos hook for ProcessCrashPoint::kMidWalAppend: writes only the first
  // `keep_bytes` bytes of the framed record -- the torn tail a crash
  // mid-append leaves behind -- and flushes.
  [[nodiscard]] util::Status AppendTorn(const WalRecord& record,
                                        size_t keep_bytes) EXCLUDES(mu_);

  uint64_t records_appended() const EXCLUDES(mu_);

  // Names the WAL lock so owners can declare ordering against it
  // (durability::DurableRegistry::mu_ is ACQUIRED_BEFORE this lock).
  util::Mutex& mu() const RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  explicit WalWriter(std::FILE* file);

  mutable util::Mutex mu_;
  // The FILE handle itself: fwrite/fflush are serialized under mu_ (the
  // destructor's fclose runs race-free by the usual last-owner rule;
  // constructors/destructors are outside the analysis by design).
  std::FILE* file_ GUARDED_BY(mu_);
  uint64_t records_appended_ GUARDED_BY(mu_) = 0;
};

struct WalReadResult {
  std::vector<WalRecord> records;
  // Trailing bytes that do not form an intact record (torn final append).
  uint64_t torn_bytes = 0;
};

// Reads every intact record from `path`. A torn or corrupt tail is normal
// after a crash and is reported, not treated as an error; a missing file
// reads as an empty log.
util::Result<WalReadResult> ReadWal(const std::string& path);

// Truncates `path` back to its longest valid record prefix. Returns the
// number of bytes removed (0 when the log was already intact or missing).
util::Result<uint64_t> TruncateTornTail(const std::string& path);

}  // namespace nela::durability

#endif  // NELA_DURABILITY_WAL_H_
