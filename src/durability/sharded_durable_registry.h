// WAL-then-apply wrapper for the sharded service: K independent WAL
// streams, one per shard, in front of the single authoritative registry.
//
// Stream discipline: one turnstile commit -- however many clusters it
// registers, and whichever shards own them -- is appended as ONE
// kShardRegisterBatch record to exactly one stream: the *coordinating*
// shard's (the home shard of the request that committed). That keeps the
// single-stream atomicity property per stream (a torn tail hides whole
// commits, never partial ones) without a cross-stream commit protocol.
// Every later kSetRegion for a cluster goes to the stream that logged its
// batch, so each stream replays self-contained: RecoverShard(s) is a pure
// function of shard s's directory.
//
// Because commits are serialized by the service turnstile and each lands
// in one stream, the union of all streams at any crash instant is a prefix
// of the global commit history with at most ONE torn record total -- the
// stream being appended when the process died. That is the "crash one
// shard, recover it, resume" contract: sibling shard directories are
// byte-identical to an uninterrupted run's.
//
// Lock order: ShardedDurableRegistry::mu_ -> WalWriter::mu_ ->
// Registry::mu_ (same shape as DurableRegistry's), declared to the
// analysis via ACQUIRED_BEFORE on mu_.

#ifndef NELA_DURABILITY_SHARDED_DURABLE_REGISTRY_H_
#define NELA_DURABILITY_SHARDED_DURABLE_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/registry.h"
#include "durability/crash_scheduler.h"
#include "durability/wal.h"
#include "geo/rect.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nela::durability {

class ShardedDurableRegistry {
 public:
  // Creates the shard directories under `base_dir` and opens one WAL
  // stream per shard. `next_lsns` (size shard_count) continues each
  // stream's lsn sequence (all 1 on a fresh run); `stream_of` seeds the
  // cluster -> logging-stream map from recovery (empty on a fresh run);
  // `truncate` starts fresh logs. `registry` and `crash` (nullable) must
  // outlive the instance.
  static util::Result<std::unique_ptr<ShardedDurableRegistry>> Open(
      cluster::Registry* registry, const std::string& base_dir,
      uint32_t shard_count, CrashPointScheduler* crash,
      std::vector<uint64_t> next_lsns,
      std::unordered_map<cluster::ClusterId, uint32_t> stream_of,
      bool truncate);

  // Logs one atomic commit (all `clusters`, with their soon-to-be global
  // ids) to `stream`, then applies the registrations to the registry.
  [[nodiscard]] util::Status RegisterBatch(
      uint32_t stream, const std::vector<cluster::ClusterInfo>& clusters)
      EXCLUDES(mu_);

  // Logs the region to the stream that logged `id`'s batch, then applies.
  [[nodiscard]] util::Status SetRegion(cluster::ClusterId id,
                                       const geo::Rect& region) EXCLUDES(mu_);

  // Cuts checkpoint `seq` for every stream: shard s's file snapshots the
  // clusters logged in stream s (current regions included) at stream s's
  // current covered lsn. A kMidCheckpoint crash tears the file being
  // written and leaves the remaining shards' files uncut.
  [[nodiscard]] util::Status CheckpointAll(uint64_t seq) EXCLUDES(mu_);

  uint32_t stream_count() const {
    return static_cast<uint32_t>(wals_.size());
  }
  uint64_t wal_records() const;
  uint64_t wal_records_for(uint32_t stream) const;
  uint64_t last_lsn(uint32_t stream) const EXCLUDES(mu_);

 private:
  ShardedDurableRegistry(cluster::Registry* registry, std::string base_dir,
                         CrashPointScheduler* crash,
                         std::vector<uint64_t> next_lsns,
                         std::unordered_map<cluster::ClusterId, uint32_t>
                             stream_of);

  cluster::Registry* registry_;
  const std::string base_dir_;
  CrashPointScheduler* crash_;
  // Stream handles are append-only after Open; each WalWriter serializes
  // its own appends internally.
  std::vector<std::unique_ptr<WalWriter>> wals_;

  // Same hierarchy as DurableRegistry: this lock precedes every stream's
  // WAL lock and the registry's.
  mutable util::Mutex mu_ ACQUIRED_BEFORE(registry_->mu());
  std::vector<uint64_t> next_lsns_ GUARDED_BY(mu_);
  // Cluster id -> stream that logged it (guards SetRegion routing and the
  // per-stream checkpoint slices).
  std::unordered_map<cluster::ClusterId, uint32_t> stream_of_
      GUARDED_BY(mu_);
  // Ids logged per stream, ascending (commits arrive in id order).
  std::vector<std::vector<cluster::ClusterId>> clusters_of_stream_
      GUARDED_BY(mu_);
};

}  // namespace nela::durability

#endif  // NELA_DURABILITY_SHARDED_DURABLE_REGISTRY_H_
