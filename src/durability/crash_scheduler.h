// Deterministic process-crash scheduling for kill-anywhere chaos tests.
//
// The service driver consults the scheduler at each instrumented point in
// its commit path (see net::ProcessCrashPoint). Hits are counted per point;
// when a scheduled event's count is reached the scheduler "fires" and the
// whole service halts as if the process died -- in-flight requests abort,
// and only the WAL + checkpoints survive for RecoveryManager. Because hits
// are tied to the serialized commit sequence (not wall time), the same
// FaultPlan crashes at the same logical instant on every run and at every
// thread count.

#ifndef NELA_DURABILITY_CRASH_SCHEDULER_H_
#define NELA_DURABILITY_CRASH_SCHEDULER_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/fault_plan.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nela::durability {

class CrashPointScheduler {
 public:
  explicit CrashPointScheduler(std::vector<net::ProcessCrashEvent> events)
      : events_(std::move(events)) {}

  // Counts one execution of `point`; true when a scheduled event fires.
  // After the first firing every later call returns false -- the process is
  // already "dead" and the driver is unwinding.
  bool ShouldCrash(net::ProcessCrashPoint point) EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    if (fired_.has_value()) return false;
    const uint64_t hits = ++hits_[static_cast<size_t>(point)];
    for (const net::ProcessCrashEvent& event : events_) {
      if (event.point == point && event.after_hits == hits) {
        fired_ = point;
        return true;
      }
    }
    return false;
  }

  bool crashed() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return fired_.has_value();
  }

  std::optional<net::ProcessCrashPoint> fired() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return fired_;
  }

 private:
  mutable util::Mutex mu_;
  std::array<uint64_t, 4> hits_ GUARDED_BY(mu_){};
  // Immutable after construction; read without the lock would also be
  // safe, but ShouldCrash already holds it on every path that looks.
  const std::vector<net::ProcessCrashEvent> events_;
  std::optional<net::ProcessCrashPoint> fired_ GUARDED_BY(mu_);
};

}  // namespace nela::durability

#endif  // NELA_DURABILITY_CRASH_SCHEDULER_H_
