#include "durability/sharded_recovery.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <unordered_map>
#include <utility>

#include "durability/shard_layout.h"
#include "durability/wal.h"

namespace nela::durability {

namespace {

// Parses "checkpoint-<seq>.ckpt" -> seq; nullopt for other names. (Same
// naming scheme RecoveryManager scans; shard checkpoints reuse
// CheckpointPath inside each shard directory.)
std::optional<uint64_t> CheckpointSeqOf(const std::string& filename) {
  constexpr const char* kPrefix = "checkpoint-";
  constexpr const char* kSuffix = ".ckpt";
  if (filename.rfind(kPrefix, 0) != 0) return std::nullopt;
  const size_t suffix_pos = filename.rfind(kSuffix);
  if (suffix_pos == std::string::npos ||
      suffix_pos + 5 != filename.size()) {
    return std::nullopt;
  }
  const std::string digits =
      filename.substr(11, suffix_pos - 11);  // between prefix and suffix
  if (digits.empty()) return std::nullopt;
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

util::Status CheckMembers(const cluster::ClusterInfo& info,
                          uint32_t user_count) {
  for (graph::VertexId member : info.members) {
    if (member >= user_count) {
      return util::InvalidArgumentError(
          "recovered cluster names a user outside the population");
    }
  }
  return util::Status();
}

}  // namespace

uint64_t ShardedRecoveredState::TotalReplayed() const {
  uint64_t total = 0;
  for (const ShardRecoveredState& shard : shards) {
    total += shard.records_replayed;
  }
  return total;
}

uint64_t ShardedRecoveredState::TotalTornBytes() const {
  uint64_t total = 0;
  for (const ShardRecoveredState& shard : shards) {
    total += shard.torn_bytes_discarded;
  }
  return total;
}

uint64_t ShardedRecoveredState::MaxCheckpointSeq() const {
  uint64_t max_seq = 0;
  for (const ShardRecoveredState& shard : shards) {
    max_seq = std::max(max_seq, shard.max_checkpoint_seq);
  }
  return max_seq;
}

util::Result<ShardRecoveredState> RecoverShard(const std::string& base_dir,
                                               uint32_t shard,
                                               uint32_t user_count) {
  if (user_count == 0) {
    return util::InvalidArgumentError(
        "shard recovery needs the population size");
  }
  ShardRecoveredState state;
  state.shard = shard;

  // --- 1. Newest intact per-shard checkpoint -------------------------------
  const std::string checkpoint_dir = ShardCheckpointDir(base_dir, shard);
  std::vector<uint64_t> seqs;
  if (std::filesystem::exists(checkpoint_dir)) {
    for (const auto& entry :
         std::filesystem::directory_iterator(checkpoint_dir)) {
      const auto seq = CheckpointSeqOf(entry.path().filename().string());
      if (seq.has_value()) seqs.push_back(*seq);
    }
  }
  std::sort(seqs.rbegin(), seqs.rend());
  state.max_checkpoint_seq = seqs.empty() ? 0 : seqs.front();

  uint64_t covered_lsn = 0;
  for (uint64_t seq : seqs) {
    auto image = ReadShardCheckpoint(CheckpointPath(checkpoint_dir, seq));
    if (!image.ok()) {
      ++state.checkpoints_rejected;
      continue;  // torn mid-checkpoint write; fall back to the previous one
    }
    if (image.value().user_count != user_count) {
      return util::InvalidArgumentError(
          "shard checkpoint was cut for a different population size");
    }
    state.clusters = std::move(image.value().clusters);
    covered_lsn = image.value().covered_lsn;
    state.checkpoint_seq = seq;
    break;
  }

  // --- 2. Torn-tail truncation + replay of this shard's stream -------------
  const std::string wal_path = ShardWalPath(base_dir, shard);
  auto truncated = TruncateTornTail(wal_path);
  if (!truncated.ok()) return truncated.status();
  state.torn_bytes_discarded = truncated.value();

  std::unordered_map<cluster::ClusterId, size_t> index_of;
  index_of.reserve(state.clusters.size());
  for (size_t i = 0; i < state.clusters.size(); ++i) {
    const util::Status members =
        CheckMembers(state.clusters[i].info, user_count);
    if (!members.ok()) return members;
    index_of.emplace(state.clusters[i].id, i);
  }

  auto wal = ReadWal(wal_path);
  if (!wal.ok()) return wal.status();
  uint64_t max_lsn = covered_lsn;
  for (const WalRecord& record : wal.value().records) {
    max_lsn = std::max(max_lsn, record.lsn);
    if (record.lsn <= covered_lsn) {
      ++state.records_skipped;  // already inside the checkpoint image
      continue;
    }
    switch (record.type) {
      case WalRecordType::kShardRegisterBatch: {
        // One atomic commit; the explicit first_cluster_id pins the global
        // ids because stream position alone cannot imply them.
        for (size_t c = 0; c < record.clusters.size(); ++c) {
          ShardCheckpointCluster entry;
          entry.id =
              record.first_cluster_id + static_cast<cluster::ClusterId>(c);
          entry.info.members = record.clusters[c].members;
          entry.info.connectivity = record.clusters[c].connectivity;
          entry.info.valid = record.clusters[c].valid;
          const util::Status members = CheckMembers(entry.info, user_count);
          if (!members.ok()) return members;
          if (!index_of.emplace(entry.id, state.clusters.size()).second) {
            return util::InvalidArgumentError(
                "shard WAL re-registers a cluster id the stream already "
                "carries");
          }
          state.clusters.push_back(std::move(entry));
        }
        break;
      }
      case WalRecordType::kSetRegion: {
        const auto it = index_of.find(record.cluster_id);
        if (it == index_of.end()) {
          return util::InvalidArgumentError(
              "shard WAL set-region references a cluster this stream never "
              "logged");
        }
        state.clusters[it->second].info.region = record.region;
        break;
      }
      case WalRecordType::kRegister:
      case WalRecordType::kRegisterBatch:
        // Single-stream record types never appear in shard streams; seeing
        // one means a classic WAL was dropped into a shard directory.
        return util::InvalidArgumentError(
            "single-stream record in a shard WAL stream");
    }
    ++state.records_replayed;
  }

  // Streams log commits in global commit order, so ids ascend; sort anyway
  // to make the slice canonical even for hand-assembled directories.
  std::sort(state.clusters.begin(), state.clusters.end(),
            [](const ShardCheckpointCluster& a,
               const ShardCheckpointCluster& b) { return a.id < b.id; });
  state.next_lsn = max_lsn + 1;
  return state;
}

util::Result<ShardedRecoveredState> RecoverAllShards(
    const std::string& base_dir, uint32_t shard_count, uint32_t user_count,
    util::ThreadPool* pool) {
  if (shard_count == 0) {
    return util::InvalidArgumentError("shard recovery needs >= 1 shard");
  }
  std::vector<util::Status> errors(shard_count);
  std::vector<ShardRecoveredState> shards(shard_count);
  const auto recover_range = [&](size_t begin, size_t end) {
    for (size_t shard = begin; shard < end; ++shard) {
      auto recovered =
          RecoverShard(base_dir, static_cast<uint32_t>(shard), user_count);
      if (!recovered.ok()) {
        errors[shard] = recovered.status();
      } else {
        shards[shard] = std::move(recovered).value();
      }
    }
  };
  if (pool != nullptr && shard_count > 1) {
    // Each shard reads (and truncates) only its own directory, so the
    // recoveries are embarrassingly parallel.
    pool->ParallelFor(shard_count,
                      [&](unsigned /*worker*/, size_t begin, size_t end) {
                        recover_range(begin, end);
                      });
  } else {
    recover_range(0, shard_count);
  }
  for (const util::Status& error : errors) {
    if (!error.ok()) return error;
  }
  ShardedRecoveredState state;
  state.user_count = user_count;
  state.shards = std::move(shards);
  return state;
}

util::Result<std::unique_ptr<cluster::Registry>> AssembleRegistry(
    const ShardedRecoveredState& state) {
  if (state.user_count == 0) {
    return util::InvalidArgumentError(
        "cannot assemble a registry without the population size");
  }
  std::vector<const ShardCheckpointCluster*> ordered;
  for (const ShardRecoveredState& shard : state.shards) {
    for (const ShardCheckpointCluster& entry : shard.clusters) {
      ordered.push_back(&entry);
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const ShardCheckpointCluster* a,
               const ShardCheckpointCluster* b) { return a->id < b->id; });
  for (size_t i = 0; i < ordered.size(); ++i) {
    if (ordered[i]->id != static_cast<cluster::ClusterId>(i)) {
      // One commit lands in exactly one stream and ids are assigned by the
      // serialized turnstile, so intact directories always yield the
      // contiguous prefix 0..N-1; a gap or duplicate means tampering.
      return util::InvalidArgumentError(
          "recovered shard slices do not form a contiguous cluster-id "
          "prefix");
    }
  }
  auto registry = std::make_unique<cluster::Registry>(state.user_count);
  for (const ShardCheckpointCluster* entry : ordered) {
    auto id = registry->Register(entry->info.members,
                                 entry->info.connectivity,
                                 entry->info.valid);
    if (!id.ok()) return id.status();
    NELA_CHECK_EQ(id.value(), entry->id);
    if (entry->info.region.has_value()) {
      registry->SetRegion(entry->id, *entry->info.region);
    }
  }
  return registry;
}

}  // namespace nela::durability
