// Sharded crash recovery: per-shard checkpoint restore + WAL replay.
//
// Each shard recovers from ITS OWN directory alone -- newest intact
// per-shard checkpoint, torn-tail truncation of its WAL stream, lsn-gated
// replay of kShardRegisterBatch / kSetRegion records -- so shards recover
// independently and in parallel, and recovering one shard never opens,
// reads, or mutates a sibling's files (the single-shard-crash isolation
// the kill-anywhere matrix asserts).
//
// Like RecoveryManager, every step is a pure function of the on-disk
// state: recovering twice, or recovering only the crashed shard and then
// all of them, yields bit-identical slices. Because one turnstile commit
// lands in exactly one stream and commits are globally ordered, the union
// of the recovered slices is a contiguous prefix of the global cluster-id
// sequence; AssembleRegistry() merges the slices back into the single
// authoritative registry the service resumes against.

#ifndef NELA_DURABILITY_SHARDED_RECOVERY_H_
#define NELA_DURABILITY_SHARDED_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/registry.h"
#include "durability/checkpoint.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nela::durability {

// One shard's recovered slice: the clusters its stream logged (ascending
// by global id, regions included where a kSetRegion survived).
struct ShardRecoveredState {
  uint32_t shard = 0;
  std::vector<ShardCheckpointCluster> clusters;
  // The lsn the shard's next mutation should use.
  uint64_t next_lsn = 1;
  uint64_t checkpoint_seq = 0;      // restored checkpoint (0 = none)
  uint64_t max_checkpoint_seq = 0;  // highest seq on disk, intact or not
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;
  uint64_t torn_bytes_discarded = 0;
  uint32_t checkpoints_rejected = 0;
};

struct ShardedRecoveredState {
  uint32_t user_count = 0;
  std::vector<ShardRecoveredState> shards;

  uint64_t TotalReplayed() const;
  uint64_t TotalTornBytes() const;
  // Highest checkpoint seq across shards; resumed checkpoint numbering
  // starts above it.
  uint64_t MaxCheckpointSeq() const;
};

// Recovers shard `shard` from <base_dir>/shard-<shard> alone. Mutates
// nothing but that shard's torn WAL tail. `user_count` sizes validation
// only (member ids must fall inside the population).
util::Result<ShardRecoveredState> RecoverShard(const std::string& base_dir,
                                               uint32_t shard,
                                               uint32_t user_count);

// Recovers every shard, in parallel on `pool` when one is given (each
// shard touches only its own files, so the recoveries are independent).
util::Result<ShardedRecoveredState> RecoverAllShards(
    const std::string& base_dir, uint32_t shard_count, uint32_t user_count,
    util::ThreadPool* pool = nullptr);

// Merges the recovered slices back into one registry: global ids must form
// a contiguous prefix 0..N-1 with no duplicates (guaranteed by the
// one-commit-one-stream discipline; violations mean the directories were
// tampered with and recovery refuses).
util::Result<std::unique_ptr<cluster::Registry>> AssembleRegistry(
    const ShardedRecoveredState& state);

}  // namespace nela::durability

#endif  // NELA_DURABILITY_SHARDED_RECOVERY_H_
