#include "durability/wal.h"

#include <cstring>
#include <filesystem>
#include <utility>

#include "util/hash.h"

namespace nela::durability {

namespace {

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

// Cursor over a byte buffer; every Take checks remaining length.
struct Reader {
  const unsigned char* data;
  size_t size;
  size_t pos = 0;

  bool TakeU8(uint8_t* value) {
    if (pos + 1 > size) return false;
    *value = data[pos++];
    return true;
  }
  bool TakeU32(uint32_t* value) {
    if (pos + 4 > size) return false;
    *value = 0;
    for (int i = 0; i < 4; ++i) {
      *value |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
                << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool TakeU64(uint64_t* value) {
    if (pos + 8 > size) return false;
    *value = 0;
    for (int i = 0; i < 8; ++i) {
      *value |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
                << (8 * i);
    }
    pos += 8;
    return true;
  }
};

// A frame header is [u32 len][u64 checksum].
constexpr size_t kFrameHeaderBytes = 12;
// Registering every user into one cluster is the largest legal record;
// anything bigger is corruption, not data.
constexpr uint32_t kMaxPayloadBytes = 64u * 1024u * 1024u;

std::string FrameRecord(const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, util::FnvHashBytes(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload;
  PutU64(&payload, record.lsn);
  PutU8(&payload, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kRegister: {
      PutU32(&payload, static_cast<uint32_t>(record.members.size()));
      for (graph::VertexId member : record.members) PutU32(&payload, member);
      PutU64(&payload, util::DoubleBits(record.connectivity));
      PutU8(&payload, record.valid ? 1 : 0);
      break;
    }
    case WalRecordType::kSetRegion: {
      PutU32(&payload, record.cluster_id);
      PutU64(&payload, util::DoubleBits(record.region.min_x()));
      PutU64(&payload, util::DoubleBits(record.region.min_y()));
      PutU64(&payload, util::DoubleBits(record.region.max_x()));
      PutU64(&payload, util::DoubleBits(record.region.max_y()));
      break;
    }
    case WalRecordType::kRegisterBatch: {
      PutU32(&payload, static_cast<uint32_t>(record.clusters.size()));
      for (const WalClusterImage& image : record.clusters) {
        PutU32(&payload, static_cast<uint32_t>(image.members.size()));
        for (graph::VertexId member : image.members) {
          PutU32(&payload, member);
        }
        PutU64(&payload, util::DoubleBits(image.connectivity));
        PutU8(&payload, image.valid ? 1 : 0);
      }
      break;
    }
    case WalRecordType::kShardRegisterBatch: {
      PutU32(&payload, record.first_cluster_id);
      PutU32(&payload, static_cast<uint32_t>(record.clusters.size()));
      for (const WalClusterImage& image : record.clusters) {
        PutU32(&payload, static_cast<uint32_t>(image.members.size()));
        for (graph::VertexId member : image.members) {
          PutU32(&payload, member);
        }
        PutU64(&payload, util::DoubleBits(image.connectivity));
        PutU8(&payload, image.valid ? 1 : 0);
      }
      break;
    }
  }
  return payload;
}

util::Result<WalRecord> DecodeWalRecord(const std::string& payload) {
  Reader reader{reinterpret_cast<const unsigned char*>(payload.data()),
                payload.size()};
  WalRecord record;
  uint8_t type = 0;
  if (!reader.TakeU64(&record.lsn) || !reader.TakeU8(&type)) {
    return util::InvalidArgumentError("WAL payload truncated in header");
  }
  switch (type) {
    case static_cast<uint8_t>(WalRecordType::kRegister): {
      record.type = WalRecordType::kRegister;
      uint32_t member_count = 0;
      if (!reader.TakeU32(&member_count)) {
        return util::InvalidArgumentError("WAL register payload truncated");
      }
      record.members.reserve(member_count);
      for (uint32_t i = 0; i < member_count; ++i) {
        uint32_t member = 0;
        if (!reader.TakeU32(&member)) {
          return util::InvalidArgumentError("WAL member list truncated");
        }
        record.members.push_back(member);
      }
      uint64_t connectivity_bits = 0;
      uint8_t valid = 0;
      if (!reader.TakeU64(&connectivity_bits) || !reader.TakeU8(&valid)) {
        return util::InvalidArgumentError("WAL register payload truncated");
      }
      record.connectivity = util::DoubleFromBits(connectivity_bits);
      record.valid = valid != 0;
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kSetRegion): {
      record.type = WalRecordType::kSetRegion;
      uint64_t bits[4] = {0, 0, 0, 0};
      if (!reader.TakeU32(&record.cluster_id) || !reader.TakeU64(&bits[0]) ||
          !reader.TakeU64(&bits[1]) || !reader.TakeU64(&bits[2]) ||
          !reader.TakeU64(&bits[3])) {
        return util::InvalidArgumentError("WAL set-region payload truncated");
      }
      record.region = geo::Rect(
          util::DoubleFromBits(bits[0]), util::DoubleFromBits(bits[1]),
          util::DoubleFromBits(bits[2]), util::DoubleFromBits(bits[3]));
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kRegisterBatch): {
      record.type = WalRecordType::kRegisterBatch;
      uint32_t cluster_count = 0;
      if (!reader.TakeU32(&cluster_count)) {
        return util::InvalidArgumentError("WAL batch payload truncated");
      }
      record.clusters.reserve(cluster_count);
      for (uint32_t c = 0; c < cluster_count; ++c) {
        WalClusterImage image;
        uint32_t member_count = 0;
        if (!reader.TakeU32(&member_count)) {
          return util::InvalidArgumentError("WAL batch payload truncated");
        }
        image.members.reserve(member_count);
        for (uint32_t i = 0; i < member_count; ++i) {
          uint32_t member = 0;
          if (!reader.TakeU32(&member)) {
            return util::InvalidArgumentError(
                "WAL batch member list truncated");
          }
          image.members.push_back(member);
        }
        uint64_t connectivity_bits = 0;
        uint8_t valid = 0;
        if (!reader.TakeU64(&connectivity_bits) || !reader.TakeU8(&valid)) {
          return util::InvalidArgumentError("WAL batch payload truncated");
        }
        image.connectivity = util::DoubleFromBits(connectivity_bits);
        image.valid = valid != 0;
        record.clusters.push_back(std::move(image));
      }
      break;
    }
    case static_cast<uint8_t>(WalRecordType::kShardRegisterBatch): {
      record.type = WalRecordType::kShardRegisterBatch;
      uint32_t cluster_count = 0;
      if (!reader.TakeU32(&record.first_cluster_id) ||
          !reader.TakeU32(&cluster_count)) {
        return util::InvalidArgumentError(
            "WAL shard batch payload truncated");
      }
      record.clusters.reserve(cluster_count);
      for (uint32_t c = 0; c < cluster_count; ++c) {
        WalClusterImage image;
        uint32_t member_count = 0;
        if (!reader.TakeU32(&member_count)) {
          return util::InvalidArgumentError(
              "WAL shard batch payload truncated");
        }
        image.members.reserve(member_count);
        for (uint32_t i = 0; i < member_count; ++i) {
          uint32_t member = 0;
          if (!reader.TakeU32(&member)) {
            return util::InvalidArgumentError(
                "WAL shard batch member list truncated");
          }
          image.members.push_back(member);
        }
        uint64_t connectivity_bits = 0;
        uint8_t valid = 0;
        if (!reader.TakeU64(&connectivity_bits) || !reader.TakeU8(&valid)) {
          return util::InvalidArgumentError(
              "WAL shard batch payload truncated");
        }
        image.connectivity = util::DoubleFromBits(connectivity_bits);
        image.valid = valid != 0;
        record.clusters.push_back(std::move(image));
      }
      break;
    }
    default:
      return util::InvalidArgumentError("unknown WAL record type");
  }
  if (reader.pos != payload.size()) {
    return util::InvalidArgumentError("trailing bytes in WAL payload");
  }
  return record;
}

WalWriter::WalWriter(std::FILE* file) : file_(file) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

util::Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, bool truncate) {
  std::FILE* file = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file == nullptr) {
    return util::UnavailableError("cannot open WAL file: " + path);
  }
  return std::unique_ptr<WalWriter>(new WalWriter(file));
}

util::Status WalWriter::Append(const WalRecord& record) {
  const std::string frame = FrameRecord(EncodeWalRecord(record));
  util::MutexLock lock(mu_);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return util::UnavailableError("short write appending WAL record");
  }
  if (std::fflush(file_) != 0) {
    return util::UnavailableError("flush failed appending WAL record");
  }
  ++records_appended_;
  return util::Status();
}

util::Status WalWriter::AppendTorn(const WalRecord& record,
                                   size_t keep_bytes) {
  std::string frame = FrameRecord(EncodeWalRecord(record));
  if (keep_bytes < frame.size()) frame.resize(keep_bytes);
  util::MutexLock lock(mu_);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return util::UnavailableError("short write appending torn WAL record");
  }
  if (std::fflush(file_) != 0) {
    return util::UnavailableError("flush failed appending torn WAL record");
  }
  return util::Status();
}

uint64_t WalWriter::records_appended() const {
  util::MutexLock lock(mu_);
  return records_appended_;
}

namespace {

util::Result<std::string> ReadWholeFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::NotFoundError("cannot open file: " + path);
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return util::UnavailableError("read error on file: " + path);
  }
  return contents;
}

// Scans the framed log in `bytes`; intact records go to `result`, and the
// offset of the first torn/corrupt frame comes back in `valid_bytes`.
void ScanWal(const std::string& bytes, WalReadResult* result,
             size_t* valid_bytes) {
  Reader reader{reinterpret_cast<const unsigned char*>(bytes.data()),
                bytes.size()};
  *valid_bytes = 0;
  while (true) {
    const size_t frame_start = reader.pos;
    uint32_t payload_len = 0;
    uint64_t checksum = 0;
    if (!reader.TakeU32(&payload_len) || !reader.TakeU64(&checksum) ||
        payload_len > kMaxPayloadBytes ||
        reader.pos + payload_len > reader.size) {
      reader.pos = frame_start;
      break;
    }
    const std::string payload = bytes.substr(reader.pos, payload_len);
    reader.pos += payload_len;
    if (util::FnvHashBytes(payload.data(), payload.size()) != checksum) {
      reader.pos = frame_start;
      break;
    }
    auto record = DecodeWalRecord(payload);
    if (!record.ok()) {
      reader.pos = frame_start;
      break;
    }
    result->records.push_back(std::move(record).value());
    *valid_bytes = reader.pos;
  }
  result->torn_bytes = bytes.size() - *valid_bytes;
}

}  // namespace

util::Result<WalReadResult> ReadWal(const std::string& path) {
  WalReadResult result;
  if (!std::filesystem::exists(path)) return result;  // empty log
  auto contents = ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  size_t valid_bytes = 0;
  ScanWal(contents.value(), &result, &valid_bytes);
  return result;
}

util::Result<uint64_t> TruncateTornTail(const std::string& path) {
  if (!std::filesystem::exists(path)) return uint64_t{0};
  auto contents = ReadWholeFile(path);
  if (!contents.ok()) return contents.status();
  WalReadResult scanned;
  size_t valid_bytes = 0;
  ScanWal(contents.value(), &scanned, &valid_bytes);
  if (scanned.torn_bytes == 0) return uint64_t{0};
  std::error_code error;
  std::filesystem::resize_file(path, valid_bytes, error);
  if (error) {
    return util::UnavailableError("cannot truncate torn WAL tail: " +
                                  error.message());
  }
  return scanned.torn_bytes;
}

}  // namespace nela::durability
