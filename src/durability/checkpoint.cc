#include "durability/checkpoint.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "util/hash.h"

namespace nela::durability {

namespace {

// "NELACKP1" as little-endian bytes.
constexpr uint64_t kCheckpointMagic = 0x31504b43414c454eull;
// "NELACKP2": the per-shard-slice checkpoint format.
constexpr uint64_t kShardCheckpointMagic = 0x32504b43414c454eull;

void PutU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

void PutU32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

void PutU64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

struct Reader {
  const unsigned char* data;
  size_t size;
  size_t pos = 0;

  bool TakeU8(uint8_t* value) {
    if (pos + 1 > size) return false;
    *value = data[pos++];
    return true;
  }
  bool TakeU32(uint32_t* value) {
    if (pos + 4 > size) return false;
    *value = 0;
    for (int i = 0; i < 4; ++i) {
      *value |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)])
                << (8 * i);
    }
    pos += 4;
    return true;
  }
  bool TakeU64(uint64_t* value) {
    if (pos + 8 > size) return false;
    *value = 0;
    for (int i = 0; i < 8; ++i) {
      *value |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)])
                << (8 * i);
    }
    pos += 8;
    return true;
  }
};

util::Status WriteBytes(const std::string& path, const std::string& bytes) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return util::UnavailableError("cannot open checkpoint file: " + path);
  }
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (!wrote || !flushed) {
    return util::UnavailableError("short write on checkpoint file: " + path);
  }
  return util::Status();
}

}  // namespace

std::string CheckpointPath(const std::string& dir, uint64_t seq) {
  return dir + "/checkpoint-" + std::to_string(seq) + ".ckpt";
}

std::string EncodeCheckpoint(const cluster::Registry& registry,
                             uint64_t covered_lsn) {
  std::string body;
  PutU64(&body, kCheckpointMagic);
  PutU32(&body, registry.user_count());
  PutU64(&body, covered_lsn);
  const uint32_t cluster_count = registry.cluster_count();
  PutU32(&body, cluster_count);
  for (cluster::ClusterId id = 0; id < cluster_count; ++id) {
    const cluster::ClusterInfo& info = registry.info(id);
    PutU32(&body, static_cast<uint32_t>(info.members.size()));
    for (graph::VertexId member : info.members) PutU32(&body, member);
    PutU64(&body, util::DoubleBits(info.connectivity));
    PutU8(&body, info.valid ? 1 : 0);
    const std::optional<geo::Rect> region = registry.RegionOf(id);
    PutU8(&body, region.has_value() ? 1 : 0);
    if (region.has_value()) {
      PutU64(&body, util::DoubleBits(region->min_x()));
      PutU64(&body, util::DoubleBits(region->min_y()));
      PutU64(&body, util::DoubleBits(region->max_x()));
      PutU64(&body, util::DoubleBits(region->max_y()));
    }
  }
  PutU64(&body, util::FnvHashBytes(body.data(), body.size()));
  return body;
}

util::Status WriteCheckpointFile(const std::string& path,
                                 const std::string& encoded) {
  return WriteBytes(path, encoded);
}

util::Status WriteTornCheckpointFile(const std::string& path,
                                     const std::string& encoded,
                                     size_t keep_bytes) {
  std::string torn = encoded;
  if (keep_bytes < torn.size()) torn.resize(keep_bytes);
  return WriteBytes(path, torn);
}

util::Result<CheckpointImage> ReadCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::NotFoundError("cannot open checkpoint file: " + path);
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return util::UnavailableError("read error on checkpoint file: " + path);
  }

  if (contents.size() < 8) {
    return util::InvalidArgumentError("checkpoint file too small: " + path);
  }
  const size_t body_size = contents.size() - 8;
  Reader trailer{reinterpret_cast<const unsigned char*>(contents.data()),
                 contents.size(), body_size};
  uint64_t stored_checksum = 0;
  (void)trailer.TakeU64(&stored_checksum);
  if (util::FnvHashBytes(contents.data(), body_size) != stored_checksum) {
    return util::InvalidArgumentError(
        "checkpoint checksum mismatch (torn write): " + path);
  }

  Reader reader{reinterpret_cast<const unsigned char*>(contents.data()),
                body_size};
  CheckpointImage image;
  uint64_t magic = 0;
  uint32_t cluster_count = 0;
  if (!reader.TakeU64(&magic) || magic != kCheckpointMagic ||
      !reader.TakeU32(&image.user_count) ||
      !reader.TakeU64(&image.covered_lsn) || !reader.TakeU32(&cluster_count)) {
    return util::InvalidArgumentError("malformed checkpoint header: " + path);
  }
  image.clusters.reserve(cluster_count);
  for (uint32_t i = 0; i < cluster_count; ++i) {
    cluster::ClusterInfo info;
    uint32_t member_count = 0;
    if (!reader.TakeU32(&member_count)) {
      return util::InvalidArgumentError("malformed checkpoint body: " + path);
    }
    info.members.reserve(member_count);
    for (uint32_t m = 0; m < member_count; ++m) {
      uint32_t member = 0;
      if (!reader.TakeU32(&member)) {
        return util::InvalidArgumentError("malformed checkpoint body: " +
                                          path);
      }
      info.members.push_back(member);
    }
    uint64_t connectivity_bits = 0;
    uint8_t valid = 0;
    uint8_t has_region = 0;
    if (!reader.TakeU64(&connectivity_bits) || !reader.TakeU8(&valid) ||
        !reader.TakeU8(&has_region)) {
      return util::InvalidArgumentError("malformed checkpoint body: " + path);
    }
    info.connectivity = util::DoubleFromBits(connectivity_bits);
    info.valid = valid != 0;
    if (has_region != 0) {
      uint64_t bits[4] = {0, 0, 0, 0};
      if (!reader.TakeU64(&bits[0]) || !reader.TakeU64(&bits[1]) ||
          !reader.TakeU64(&bits[2]) || !reader.TakeU64(&bits[3])) {
        return util::InvalidArgumentError("malformed checkpoint body: " +
                                          path);
      }
      info.region = geo::Rect(
          util::DoubleFromBits(bits[0]), util::DoubleFromBits(bits[1]),
          util::DoubleFromBits(bits[2]), util::DoubleFromBits(bits[3]));
    }
    image.clusters.push_back(std::move(info));
  }
  if (reader.pos != body_size) {
    return util::InvalidArgumentError("trailing bytes in checkpoint: " + path);
  }
  return image;
}

std::string EncodeShardCheckpoint(const ShardCheckpointImage& image) {
  std::string body;
  PutU64(&body, kShardCheckpointMagic);
  PutU32(&body, image.user_count);
  PutU64(&body, image.covered_lsn);
  PutU32(&body, static_cast<uint32_t>(image.clusters.size()));
  for (const ShardCheckpointCluster& entry : image.clusters) {
    PutU32(&body, entry.id);
    PutU32(&body, static_cast<uint32_t>(entry.info.members.size()));
    for (graph::VertexId member : entry.info.members) PutU32(&body, member);
    PutU64(&body, util::DoubleBits(entry.info.connectivity));
    PutU8(&body, entry.info.valid ? 1 : 0);
    PutU8(&body, entry.info.region.has_value() ? 1 : 0);
    if (entry.info.region.has_value()) {
      PutU64(&body, util::DoubleBits(entry.info.region->min_x()));
      PutU64(&body, util::DoubleBits(entry.info.region->min_y()));
      PutU64(&body, util::DoubleBits(entry.info.region->max_x()));
      PutU64(&body, util::DoubleBits(entry.info.region->max_y()));
    }
  }
  PutU64(&body, util::FnvHashBytes(body.data(), body.size()));
  return body;
}

util::Result<ShardCheckpointImage> ReadShardCheckpoint(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::NotFoundError("cannot open checkpoint file: " + path);
  }
  std::string contents;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents.append(buffer, got);
  }
  const bool read_error = std::ferror(file) != 0;
  std::fclose(file);
  if (read_error) {
    return util::UnavailableError("read error on checkpoint file: " + path);
  }

  if (contents.size() < 8) {
    return util::InvalidArgumentError("checkpoint file too small: " + path);
  }
  const size_t body_size = contents.size() - 8;
  Reader trailer{reinterpret_cast<const unsigned char*>(contents.data()),
                 contents.size(), body_size};
  uint64_t stored_checksum = 0;
  (void)trailer.TakeU64(&stored_checksum);
  if (util::FnvHashBytes(contents.data(), body_size) != stored_checksum) {
    return util::InvalidArgumentError(
        "checkpoint checksum mismatch (torn write): " + path);
  }

  Reader reader{reinterpret_cast<const unsigned char*>(contents.data()),
                body_size};
  ShardCheckpointImage image;
  uint64_t magic = 0;
  uint32_t cluster_count = 0;
  if (!reader.TakeU64(&magic) || magic != kShardCheckpointMagic ||
      !reader.TakeU32(&image.user_count) ||
      !reader.TakeU64(&image.covered_lsn) || !reader.TakeU32(&cluster_count)) {
    return util::InvalidArgumentError("malformed checkpoint header: " + path);
  }
  image.clusters.reserve(cluster_count);
  for (uint32_t i = 0; i < cluster_count; ++i) {
    ShardCheckpointCluster entry;
    uint32_t member_count = 0;
    if (!reader.TakeU32(&entry.id) || !reader.TakeU32(&member_count)) {
      return util::InvalidArgumentError("malformed checkpoint body: " + path);
    }
    entry.info.members.reserve(member_count);
    for (uint32_t m = 0; m < member_count; ++m) {
      uint32_t member = 0;
      if (!reader.TakeU32(&member)) {
        return util::InvalidArgumentError("malformed checkpoint body: " +
                                          path);
      }
      entry.info.members.push_back(member);
    }
    uint64_t connectivity_bits = 0;
    uint8_t valid = 0;
    uint8_t has_region = 0;
    if (!reader.TakeU64(&connectivity_bits) || !reader.TakeU8(&valid) ||
        !reader.TakeU8(&has_region)) {
      return util::InvalidArgumentError("malformed checkpoint body: " + path);
    }
    entry.info.connectivity = util::DoubleFromBits(connectivity_bits);
    entry.info.valid = valid != 0;
    if (has_region != 0) {
      uint64_t bits[4] = {0, 0, 0, 0};
      if (!reader.TakeU64(&bits[0]) || !reader.TakeU64(&bits[1]) ||
          !reader.TakeU64(&bits[2]) || !reader.TakeU64(&bits[3])) {
        return util::InvalidArgumentError("malformed checkpoint body: " +
                                          path);
      }
      entry.info.region = geo::Rect(
          util::DoubleFromBits(bits[0]), util::DoubleFromBits(bits[1]),
          util::DoubleFromBits(bits[2]), util::DoubleFromBits(bits[3]));
    }
    image.clusters.push_back(std::move(entry));
  }
  if (reader.pos != body_size) {
    return util::InvalidArgumentError("trailing bytes in checkpoint: " + path);
  }
  return image;
}

util::Result<std::unique_ptr<cluster::Registry>> RestoreRegistry(
    const CheckpointImage& image) {
  auto registry = std::make_unique<cluster::Registry>(image.user_count);
  for (const cluster::ClusterInfo& info : image.clusters) {
    auto id = registry->Register(info.members, info.connectivity, info.valid);
    if (!id.ok()) return id.status();
    if (info.region.has_value()) {
      registry->SetRegion(id.value(), *info.region);
    }
  }
  return registry;
}

}  // namespace nela::durability
