// On-disk layout of the sharded durability state.
//
// A sharded service run owns one base directory; shard s keeps its entire
// durable state -- WAL and checkpoints -- under the subdirectory
// "shard-<s>":
//
//   <base>/shard-0/wal.log
//   <base>/shard-0/checkpoint-<seq>.ckpt
//   <base>/shard-1/wal.log
//   ...
//
// These helpers are the ONLY sanctioned way to spell those paths: the
// `shard-path` nela_lint rule flags any other code constructing a
// "shard-" path component, so a layout change stays a one-file edit and no
// caller can bypass the per-shard recovery contract by writing into a
// sibling shard's directory.

#ifndef NELA_DURABILITY_SHARD_LAYOUT_H_
#define NELA_DURABILITY_SHARD_LAYOUT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace nela::durability {

// Directory name of shard `shard` ("shard-<shard>").
std::string ShardDirName(uint32_t shard);

// "<base>/shard-<shard>" -- the shard's durable-state directory.
std::string ShardDir(const std::string& base_dir, uint32_t shard);

// "<base>/shard-<shard>/wal.log" -- the shard's WAL stream.
std::string ShardWalPath(const std::string& base_dir, uint32_t shard);

// Directory that receives shard `shard`'s checkpoint-<seq>.ckpt files
// (the shard directory itself; combine with CheckpointPath()).
std::string ShardCheckpointDir(const std::string& base_dir, uint32_t shard);

// Creates <base>/shard-<s> for every s in [0, shard_count).
[[nodiscard]] util::Status EnsureShardDirs(const std::string& base_dir,
                                           uint32_t shard_count);

}  // namespace nela::durability

#endif  // NELA_DURABILITY_SHARD_LAYOUT_H_
