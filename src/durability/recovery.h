// Crash recovery: checkpoint restore + WAL replay.
//
// Recovery is a pure function of the on-disk files: it never consults
// in-memory state, so running it twice (or recovering, crashing, and
// recovering again) yields bit-identical registries -- the idempotency the
// kill-anywhere tests assert. The procedure:
//
//   1. Scan `checkpoint_dir` for checkpoint-<seq>.ckpt files, newest first;
//      restore the first one whose checksum verifies (a torn newest
//      checkpoint -- kMidCheckpoint crash -- falls back to its predecessor,
//      or to an empty registry when none is intact).
//   2. Truncate the WAL's torn tail (kMidWalAppend crash), then replay
//      every record with lsn > covered_lsn through the public registry
//      API. Records at or below covered_lsn are already inside the
//      checkpoint and are skipped, which is what makes replay idempotent
//      across repeated recoveries.
//   3. Report next_lsn so a reopened DurableRegistry continues the
//      sequence, and the newest on-disk checkpoint seq so new checkpoints
//      sort after surviving ones.

#ifndef NELA_DURABILITY_RECOVERY_H_
#define NELA_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/registry.h"
#include "util/status.h"

namespace nela::durability {

struct RecoveryConfig {
  std::string wal_path;
  // Empty disables checkpoint scanning (WAL-only recovery).
  std::string checkpoint_dir;
  // Population size when recovery starts from an empty registry (no intact
  // checkpoint); must match the crashed service's dataset.
  uint32_t user_count = 0;
};

struct RecoveredState {
  std::unique_ptr<cluster::Registry> registry;
  // The lsn the next mutation should use.
  uint64_t next_lsn = 1;
  // Sequence number of the restored checkpoint (0 = none restored).
  uint64_t checkpoint_seq = 0;
  // Highest checkpoint seq present on disk, intact or not; new checkpoints
  // must start above it.
  uint64_t max_checkpoint_seq = 0;
  uint64_t records_replayed = 0;
  uint64_t records_skipped = 0;   // lsn <= checkpoint covered_lsn
  uint64_t torn_bytes_discarded = 0;
  uint32_t checkpoints_rejected = 0;  // torn/corrupt files skipped
};

class RecoveryManager {
 public:
  explicit RecoveryManager(RecoveryConfig config);

  // Rebuilds the registry from disk. Never mutates the WAL except to
  // truncate a torn tail. Safe to call repeatedly; every call re-derives
  // the same state from the same files.
  util::Result<RecoveredState> Recover() const;

 private:
  RecoveryConfig config_;
};

}  // namespace nela::durability

#endif  // NELA_DURABILITY_RECOVERY_H_
