// Checkpoint snapshots of the cluster registry.
//
// A checkpoint is a whole-registry image taken at a known log position
// (`covered_lsn`): recovery restores the newest intact checkpoint and then
// replays only WAL records with lsn > covered_lsn, bounding replay work by
// the checkpoint cadence rather than the total history length.
//
// On-disk format, all integers little-endian:
//
//   file := [u64 magic][u32 user_count][u64 covered_lsn][u32 cluster_count]
//           cluster_count x cluster [u64 fnv1a(everything before it)]
//   cluster := [u32 n][n x u32 member][u64 connectivity_bits][u8 valid]
//              [u8 has_region][has_region ? 4 x u64 rect bits : nothing]
//
// Files are written whole and named checkpoint-<seq>.ckpt with a strictly
// increasing sequence number; a crash mid-write (ProcessCrashPoint::
// kMidCheckpoint) leaves a file whose trailer checksum cannot match, which
// ReadCheckpoint rejects so recovery falls back to the previous checkpoint.

#ifndef NELA_DURABILITY_CHECKPOINT_H_
#define NELA_DURABILITY_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/registry.h"
#include "util/status.h"

namespace nela::durability {

struct CheckpointImage {
  uint32_t user_count = 0;
  uint64_t covered_lsn = 0;
  std::vector<cluster::ClusterInfo> clusters;
};

// One cluster of a per-shard checkpoint: shard streams see only the
// clusters their shard's commits logged, so stream position cannot imply
// the global id -- it is stored explicitly (mirroring
// WalRecordType::kShardRegisterBatch).
struct ShardCheckpointCluster {
  cluster::ClusterId id = 0;
  cluster::ClusterInfo info;
};

// Checkpoint of one shard's slice at a known position of ITS OWN WAL
// stream; the (id, cluster) pairs are ascending by global id.
struct ShardCheckpointImage {
  uint32_t user_count = 0;
  uint64_t covered_lsn = 0;
  std::vector<ShardCheckpointCluster> clusters;
};

// Path of checkpoint number `seq` inside `dir`.
std::string CheckpointPath(const std::string& dir, uint64_t seq);

// Serializes the registry (all clusters, regions included) at the given
// covered log position. The caller must hold whatever lock serializes
// registry mutations (DurableRegistry does) so the image is consistent
// with covered_lsn.
std::string EncodeCheckpoint(const cluster::Registry& registry,
                             uint64_t covered_lsn);

// Writes `encoded` to `path` in full and flushes.
[[nodiscard]] util::Status WriteCheckpointFile(const std::string& path,
                                               const std::string& encoded);

// Chaos hook for kMidCheckpoint: writes only the first `keep_bytes` bytes,
// simulating a crash mid-checkpoint. The resulting file must be rejected
// by ReadCheckpoint.
[[nodiscard]] util::Status WriteTornCheckpointFile(const std::string& path,
                                                   const std::string& encoded,
                                                   size_t keep_bytes);

// Parses and checksum-verifies one checkpoint file.
util::Result<CheckpointImage> ReadCheckpoint(const std::string& path);

// Serializes one shard's slice (distinct magic from whole-registry
// checkpoints, same framing/trailer-checksum discipline; write with
// WriteCheckpointFile / WriteTornCheckpointFile).
std::string EncodeShardCheckpoint(const ShardCheckpointImage& image);

// Parses and checksum-verifies one per-shard checkpoint file.
util::Result<ShardCheckpointImage> ReadShardCheckpoint(
    const std::string& path);

// Rebuilds a registry from a checkpoint image through the public Register/
// SetRegion API (cluster ids are assigned sequentially, matching the
// image's order), so the restored registry is indistinguishable from one
// that executed the original history.
util::Result<std::unique_ptr<cluster::Registry>> RestoreRegistry(
    const CheckpointImage& image);

}  // namespace nela::durability

#endif  // NELA_DURABILITY_CHECKPOINT_H_
