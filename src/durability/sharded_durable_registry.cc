#include "durability/sharded_durable_registry.h"

#include <algorithm>
#include <utility>

#include "durability/checkpoint.h"
#include "durability/shard_layout.h"

namespace nela::durability {

namespace {

util::Status CrashError(net::ProcessCrashPoint point) {
  return util::UnavailableError(
      std::string("simulated process crash at ") +
      net::ProcessCrashPointName(point));
}

}  // namespace

ShardedDurableRegistry::ShardedDurableRegistry(
    cluster::Registry* registry, std::string base_dir,
    CrashPointScheduler* crash, std::vector<uint64_t> next_lsns,
    std::unordered_map<cluster::ClusterId, uint32_t> stream_of)
    : registry_(registry), base_dir_(std::move(base_dir)), crash_(crash),
      next_lsns_(std::move(next_lsns)), stream_of_(std::move(stream_of)) {
  NELA_CHECK(registry_ != nullptr);
  clusters_of_stream_.resize(next_lsns_.size());
  for (const auto& [id, stream] : stream_of_) {
    NELA_CHECK_LT(stream, clusters_of_stream_.size());
    clusters_of_stream_[stream].push_back(id);
  }
  for (std::vector<cluster::ClusterId>& ids : clusters_of_stream_) {
    std::sort(ids.begin(), ids.end());
  }
}

util::Result<std::unique_ptr<ShardedDurableRegistry>>
ShardedDurableRegistry::Open(
    cluster::Registry* registry, const std::string& base_dir,
    uint32_t shard_count, CrashPointScheduler* crash,
    std::vector<uint64_t> next_lsns,
    std::unordered_map<cluster::ClusterId, uint32_t> stream_of,
    bool truncate) {
  NELA_CHECK_GE(shard_count, 1u);
  NELA_CHECK_EQ(next_lsns.size(), shard_count);
  const util::Status dirs = EnsureShardDirs(base_dir, shard_count);
  if (!dirs.ok()) return dirs;
  std::unique_ptr<ShardedDurableRegistry> store(new ShardedDurableRegistry(
      registry, base_dir, crash, std::move(next_lsns),
      std::move(stream_of)));
  store->wals_.reserve(shard_count);
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    auto wal = WalWriter::Open(ShardWalPath(base_dir, shard), truncate);
    if (!wal.ok()) return wal.status();
    store->wals_.push_back(std::move(wal).value());
  }
  return store;
}

util::Status ShardedDurableRegistry::RegisterBatch(
    uint32_t stream, const std::vector<cluster::ClusterInfo>& clusters) {
  if (clusters.empty()) return util::Status();
  NELA_CHECK_LT(stream, wals_.size());
  util::MutexLock lock(mu_);
  const cluster::ClusterId first_id = registry_->cluster_count();
  WalRecord record;
  record.lsn = next_lsns_[stream];
  record.type = WalRecordType::kShardRegisterBatch;
  record.first_cluster_id = first_id;
  record.clusters.reserve(clusters.size());
  for (const cluster::ClusterInfo& info : clusters) {
    record.clusters.push_back(
        WalClusterImage{info.members, info.connectivity, info.valid});
  }
  if (crash_ != nullptr &&
      crash_->ShouldCrash(net::ProcessCrashPoint::kMidWalAppend)) {
    const std::string frame = EncodeWalRecord(record);
    (void)wals_[stream]->AppendTorn(record, (frame.size() + 12) / 2);
    return CrashError(net::ProcessCrashPoint::kMidWalAppend);
  }
  const util::Status appended = wals_[stream]->Append(record);
  if (!appended.ok()) return appended;
  for (size_t c = 0; c < clusters.size(); ++c) {
    auto id = registry_->Register(clusters[c].members,
                                  clusters[c].connectivity,
                                  clusters[c].valid);
    if (!id.ok()) return id.status();
    NELA_CHECK_EQ(id.value(), first_id + static_cast<uint32_t>(c));
    stream_of_.emplace(id.value(), stream);
    clusters_of_stream_[stream].push_back(id.value());
  }
  ++next_lsns_[stream];
  return util::Status();
}

util::Status ShardedDurableRegistry::SetRegion(cluster::ClusterId id,
                                               const geo::Rect& region) {
  util::MutexLock lock(mu_);
  const auto it = stream_of_.find(id);
  if (it == stream_of_.end()) {
    return util::InvalidArgumentError(
        "region for a cluster no stream logged");
  }
  const uint32_t stream = it->second;
  WalRecord record;
  record.lsn = next_lsns_[stream];
  record.type = WalRecordType::kSetRegion;
  record.cluster_id = id;
  record.region = region;
  if (crash_ != nullptr &&
      crash_->ShouldCrash(net::ProcessCrashPoint::kMidWalAppend)) {
    const std::string frame = EncodeWalRecord(record);
    (void)wals_[stream]->AppendTorn(record, (frame.size() + 12) / 2);
    return CrashError(net::ProcessCrashPoint::kMidWalAppend);
  }
  const util::Status appended = wals_[stream]->Append(record);
  if (!appended.ok()) return appended;
  registry_->SetRegion(id, region);
  ++next_lsns_[stream];
  return util::Status();
}

util::Status ShardedDurableRegistry::CheckpointAll(uint64_t seq) {
  util::MutexLock lock(mu_);
  for (uint32_t stream = 0; stream < wals_.size(); ++stream) {
    ShardCheckpointImage image;
    image.user_count = registry_->user_count();
    image.covered_lsn = next_lsns_[stream] - 1;
    image.clusters.reserve(clusters_of_stream_[stream].size());
    for (cluster::ClusterId id : clusters_of_stream_[stream]) {
      ShardCheckpointCluster entry;
      entry.id = id;
      entry.info = registry_->info(id);
      entry.info.region = registry_->RegionOf(id);
      image.clusters.push_back(std::move(entry));
    }
    const std::string encoded = EncodeShardCheckpoint(image);
    const std::string path =
        CheckpointPath(ShardCheckpointDir(base_dir_, stream), seq);
    if (crash_ != nullptr &&
        crash_->ShouldCrash(net::ProcessCrashPoint::kMidCheckpoint)) {
      (void)WriteTornCheckpointFile(path, encoded, encoded.size() / 2);
      return CrashError(net::ProcessCrashPoint::kMidCheckpoint);
    }
    const util::Status written = WriteCheckpointFile(path, encoded);
    if (!written.ok()) return written;
  }
  return util::Status();
}

uint64_t ShardedDurableRegistry::wal_records() const {
  uint64_t total = 0;
  for (const std::unique_ptr<WalWriter>& wal : wals_) {
    total += wal->records_appended();
  }
  return total;
}

uint64_t ShardedDurableRegistry::wal_records_for(uint32_t stream) const {
  NELA_CHECK_LT(stream, wals_.size());
  return wals_[stream]->records_appended();
}

uint64_t ShardedDurableRegistry::last_lsn(uint32_t stream) const {
  util::MutexLock lock(mu_);
  NELA_CHECK_LT(stream, next_lsns_.size());
  return next_lsns_[stream] - 1;
}

}  // namespace nela::durability
