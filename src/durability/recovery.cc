#include "durability/recovery.h"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>
#include <vector>

#include "durability/checkpoint.h"
#include "durability/wal.h"

namespace nela::durability {

namespace {

// Parses "<dir>/checkpoint-<seq>.ckpt" -> seq; nullopt for other names.
std::optional<uint64_t> CheckpointSeqOf(const std::string& filename) {
  constexpr const char* kPrefix = "checkpoint-";
  constexpr const char* kSuffix = ".ckpt";
  if (filename.rfind(kPrefix, 0) != 0) return std::nullopt;
  const size_t suffix_pos = filename.rfind(kSuffix);
  if (suffix_pos == std::string::npos ||
      suffix_pos + 5 != filename.size()) {
    return std::nullopt;
  }
  const std::string digits =
      filename.substr(11, suffix_pos - 11);  // between prefix and suffix
  if (digits.empty()) return std::nullopt;
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

}  // namespace

RecoveryManager::RecoveryManager(RecoveryConfig config)
    : config_(std::move(config)) {}

util::Result<RecoveredState> RecoveryManager::Recover() const {
  RecoveredState state;

  // --- 1. Newest intact checkpoint -----------------------------------------
  std::vector<uint64_t> seqs;
  if (!config_.checkpoint_dir.empty() &&
      std::filesystem::exists(config_.checkpoint_dir)) {
    for (const auto& entry :
         std::filesystem::directory_iterator(config_.checkpoint_dir)) {
      const auto seq = CheckpointSeqOf(entry.path().filename().string());
      if (seq.has_value()) seqs.push_back(*seq);
    }
  }
  std::sort(seqs.rbegin(), seqs.rend());
  state.max_checkpoint_seq = seqs.empty() ? 0 : seqs.front();

  uint64_t covered_lsn = 0;
  std::unique_ptr<cluster::Registry> registry;
  for (uint64_t seq : seqs) {
    auto image =
        ReadCheckpoint(CheckpointPath(config_.checkpoint_dir, seq));
    if (!image.ok()) {
      ++state.checkpoints_rejected;
      continue;  // torn mid-checkpoint write; fall back to the previous one
    }
    auto restored = RestoreRegistry(image.value());
    if (!restored.ok()) return restored.status();
    registry = std::move(restored).value();
    covered_lsn = image.value().covered_lsn;
    state.checkpoint_seq = seq;
    break;
  }
  if (registry == nullptr) {
    if (config_.user_count == 0) {
      return util::InvalidArgumentError(
          "no intact checkpoint and no user_count to size a fresh registry");
    }
    registry = std::make_unique<cluster::Registry>(config_.user_count);
  }

  // --- 2. Torn-tail truncation + replay ------------------------------------
  auto truncated = TruncateTornTail(config_.wal_path);
  if (!truncated.ok()) return truncated.status();
  state.torn_bytes_discarded = truncated.value();

  auto wal = ReadWal(config_.wal_path);
  if (!wal.ok()) return wal.status();
  uint64_t max_lsn = covered_lsn;
  for (const WalRecord& record : wal.value().records) {
    max_lsn = std::max(max_lsn, record.lsn);
    if (record.lsn <= covered_lsn) {
      ++state.records_skipped;  // already inside the checkpoint image
      continue;
    }
    switch (record.type) {
      case WalRecordType::kRegister: {
        auto id = registry->Register(record.members, record.connectivity,
                                     record.valid);
        if (!id.ok()) return id.status();
        break;
      }
      case WalRecordType::kSetRegion: {
        if (record.cluster_id >= registry->cluster_count()) {
          return util::InvalidArgumentError(
              "WAL set-region references a cluster the log never registered");
        }
        registry->SetRegion(record.cluster_id, record.region);
        break;
      }
      case WalRecordType::kRegisterBatch: {
        // The batch is one atomic commit: either the whole record survived
        // the crash (checksum intact) or none of it did, so replay applies
        // every cluster of the group.
        for (const WalClusterImage& image : record.clusters) {
          auto id = registry->Register(image.members, image.connectivity,
                                       image.valid);
          if (!id.ok()) return id.status();
        }
        break;
      }
      case WalRecordType::kShardRegisterBatch:
        // Shard streams carry explicit global ids and are replayed by
        // RecoverShard; one leaking into a single-stream log means the
        // wrong recovery path was pointed at a sharded layout.
        return util::InvalidArgumentError(
            "shard batch record in a single-stream WAL; use RecoverShard");
    }
    ++state.records_replayed;
  }

  state.next_lsn = max_lsn + 1;
  state.registry = std::move(registry);
  return state;
}

}  // namespace nela::durability
