#include "durability/durable_registry.h"

#include <string>

#include "durability/checkpoint.h"

namespace nela::durability {

namespace {

util::Status CrashError(net::ProcessCrashPoint point) {
  return util::UnavailableError(
      std::string("simulated process crash at ") +
      net::ProcessCrashPointName(point));
}

}  // namespace

DurableRegistry::DurableRegistry(cluster::Registry* registry, WalWriter* wal,
                                 CrashPointScheduler* crash,
                                 uint64_t next_lsn)
    : registry_(registry), wal_(wal), crash_(crash), next_lsn_(next_lsn) {
  NELA_CHECK(registry_ != nullptr);
  NELA_CHECK_GE(next_lsn_, 1u);
}

util::Result<cluster::ClusterId> DurableRegistry::Register(
    const std::vector<graph::VertexId>& members, double connectivity,
    bool valid) {
  util::MutexLock lock(mu_);
  if (wal_ != nullptr) {
    WalRecord record;
    record.lsn = next_lsn_;
    record.type = WalRecordType::kRegister;
    record.members = members;
    record.connectivity = connectivity;
    record.valid = valid;
    if (crash_ != nullptr &&
        crash_->ShouldCrash(net::ProcessCrashPoint::kMidWalAppend)) {
      const std::string frame = EncodeWalRecord(record);
      (void)wal_->AppendTorn(record, (frame.size() + 12) / 2);
      return CrashError(net::ProcessCrashPoint::kMidWalAppend);
    }
    auto appended = wal_->Append(record);
    if (!appended.ok()) return appended;
  }
  auto id = registry_->Register(members, connectivity, valid);
  if (id.ok()) ++next_lsn_;
  return id;
}

util::Status DurableRegistry::RegisterBatch(
    const std::vector<cluster::ClusterInfo>& clusters) {
  if (clusters.empty()) return util::Status();
  util::MutexLock lock(mu_);
  if (wal_ != nullptr) {
    WalRecord record;
    record.lsn = next_lsn_;
    record.type = WalRecordType::kRegisterBatch;
    record.clusters.reserve(clusters.size());
    for (const cluster::ClusterInfo& info : clusters) {
      record.clusters.push_back(
          WalClusterImage{info.members, info.connectivity, info.valid});
    }
    if (crash_ != nullptr &&
        crash_->ShouldCrash(net::ProcessCrashPoint::kMidWalAppend)) {
      const std::string frame = EncodeWalRecord(record);
      (void)wal_->AppendTorn(record, (frame.size() + 12) / 2);
      return CrashError(net::ProcessCrashPoint::kMidWalAppend);
    }
    auto appended = wal_->Append(record);
    if (!appended.ok()) return appended;
  }
  for (const cluster::ClusterInfo& info : clusters) {
    auto id = registry_->Register(info.members, info.connectivity,
                                  info.valid);
    if (!id.ok()) return id.status();
  }
  ++next_lsn_;
  return util::Status();
}

util::Status DurableRegistry::SetRegion(cluster::ClusterId id,
                                        const geo::Rect& region) {
  util::MutexLock lock(mu_);
  if (wal_ != nullptr) {
    WalRecord record;
    record.lsn = next_lsn_;
    record.type = WalRecordType::kSetRegion;
    record.cluster_id = id;
    record.region = region;
    if (crash_ != nullptr &&
        crash_->ShouldCrash(net::ProcessCrashPoint::kMidWalAppend)) {
      const std::string frame = EncodeWalRecord(record);
      (void)wal_->AppendTorn(record, (frame.size() + 12) / 2);
      return CrashError(net::ProcessCrashPoint::kMidWalAppend);
    }
    auto appended = wal_->Append(record);
    if (!appended.ok()) return appended;
  }
  registry_->SetRegion(id, region);
  ++next_lsn_;
  return util::Status();
}

util::Status DurableRegistry::Checkpoint(const std::string& path) {
  util::MutexLock lock(mu_);
  const std::string encoded = EncodeCheckpoint(*registry_, next_lsn_ - 1);
  if (crash_ != nullptr &&
      crash_->ShouldCrash(net::ProcessCrashPoint::kMidCheckpoint)) {
    (void)WriteTornCheckpointFile(path, encoded, encoded.size() / 2);
    return CrashError(net::ProcessCrashPoint::kMidCheckpoint);
  }
  return WriteCheckpointFile(path, encoded);
}

uint64_t DurableRegistry::last_lsn() const {
  util::MutexLock lock(mu_);
  return next_lsn_ - 1;
}

}  // namespace nela::durability
