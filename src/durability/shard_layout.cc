#include "durability/shard_layout.h"

#include <filesystem>

namespace nela::durability {

std::string ShardDirName(uint32_t shard) {
  return "shard-" + std::to_string(shard);
}

std::string ShardDir(const std::string& base_dir, uint32_t shard) {
  return base_dir + "/" + ShardDirName(shard);
}

std::string ShardWalPath(const std::string& base_dir, uint32_t shard) {
  return ShardDir(base_dir, shard) + "/wal.log";
}

std::string ShardCheckpointDir(const std::string& base_dir, uint32_t shard) {
  return ShardDir(base_dir, shard);
}

util::Status EnsureShardDirs(const std::string& base_dir,
                             uint32_t shard_count) {
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    std::error_code error;
    std::filesystem::create_directories(ShardDir(base_dir, shard), error);
    if (error) {
      return util::UnavailableError("cannot create shard directory " +
                                    ShardDir(base_dir, shard) + ": " +
                                    error.message());
    }
  }
  return util::Status();
}

}  // namespace nela::durability
