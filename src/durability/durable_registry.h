// Write-ahead wrapper around cluster::Registry.
//
// Every mutation is assigned the next log sequence number, appended to the
// WAL, and only then applied in memory -- so the log always holds a
// superset-prefix of the applied history and recovery can rebuild the
// registry from files alone. An internal mutex makes (assign lsn, append,
// apply) atomic with respect to Checkpoint(), which is what lets a
// checkpoint claim its exact covered_lsn: no mutation can land between the
// snapshot and the position it records.
//
// Lock order: DurableRegistry::mu_ -> WalWriter::mu_ -> Registry::mu_.
// Callers must not hold the registry mutex when calling in. The order is
// declared to the thread-safety analysis via ACQUIRED_BEFORE on mu_ below
// (naming the foreign locks through their RETURN_CAPABILITY accessors), so
// an inversion is a compile error under Clang, not just a comment.
//
// The scheduler hook injects ProcessCrashPoint::kMidWalAppend and
// kMidCheckpoint faults: the mutation is half-written and the call returns
// kUnavailable, after which the driver halts as crashed.

#ifndef NELA_DURABILITY_DURABLE_REGISTRY_H_
#define NELA_DURABILITY_DURABLE_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/registry.h"
#include "durability/crash_scheduler.h"
#include "durability/wal.h"
#include "geo/rect.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nela::durability {

class DurableRegistry {
 public:
  // `wal` and `crash` may be null (durability / chaos off); `registry` must
  // outlive this object. `next_lsn` continues a recovered log's numbering.
  DurableRegistry(cluster::Registry* registry, WalWriter* wal,
                  CrashPointScheduler* crash, uint64_t next_lsn);

  // WAL-append then Register. On a scheduled mid-append crash the record is
  // torn on disk, nothing is applied, and kUnavailable is returned.
  [[nodiscard]] util::Result<cluster::ClusterId> Register(
      const std::vector<graph::VertexId>& members, double connectivity,
      bool valid) EXCLUDES(mu_);

  // Registers every cluster of one commit atomically: a single
  // kRegisterBatch WAL record (one lsn) precedes all in-memory applies, so
  // a crash tearing the append hides the whole group -- replay never sees a
  // commit's clusters partially. Empty input is a no-op.
  [[nodiscard]] util::Status RegisterBatch(
      const std::vector<cluster::ClusterInfo>& clusters) EXCLUDES(mu_);

  // WAL-append then SetRegion, same contract as Register.
  [[nodiscard]] util::Status SetRegion(cluster::ClusterId id,
                                       const geo::Rect& region) EXCLUDES(mu_);

  // Snapshots the registry to `path` with covered_lsn equal to the last
  // appended mutation; atomic against concurrent Register/SetRegion.
  [[nodiscard]] util::Status Checkpoint(const std::string& path)
      EXCLUDES(mu_);

  uint64_t last_lsn() const EXCLUDES(mu_);

 private:
  cluster::Registry* registry_;
  WalWriter* wal_;
  CrashPointScheduler* crash_;
  // The declared hierarchy: this lock is taken strictly before the WAL's
  // and the registry's (wal_ may be null, so the relation is declared on
  // the registry's lock unconditionally and on the WAL's through the
  // always-valid accessor when present; Clang accepts the expressions
  // unevaluated).
  mutable util::Mutex mu_ ACQUIRED_BEFORE(wal_->mu(), registry_->mu());
  uint64_t next_lsn_ GUARDED_BY(mu_);
};

}  // namespace nela::durability

#endif  // NELA_DURABILITY_DURABLE_REGISTRY_H_
