// Request-scoped traffic and retry accounting.
//
// The Network keeps global counters describing the whole simulation; a
// RequestScope describes exactly one cloaking request. Every send-path entry
// point (Network::Send, Network::RecordRetry/RecordTimeoutObserved,
// net::SendWithRetry) optionally takes a scope and records into it in
// addition to the global counters, so the global view is always the rollup
// of the per-request scopes plus unscoped background traffic. Two in-flight
// requests therefore never interleave their accounting: each reads its own
// scope instead of diffing the global counters around its execution window
// (which is only correct when exactly one request runs at a time).
//
// A scope is owned by one request and touched by one thread at a time; it
// needs no locking of its own.

#ifndef NELA_NET_ACCOUNTING_H_
#define NELA_NET_ACCOUNTING_H_

#include <cstdint>

namespace nela::net {

struct ScopeStats {
  // Delivered traffic attributed to this request.
  uint64_t messages_delivered = 0;
  uint64_t bytes_delivered = 0;
  // Send attempts that failed (loss, latency timeout, dead endpoint).
  uint64_t messages_failed = 0;
  // Retry accounting (fed by SendWithRetry).
  uint64_t retries = 0;
  uint64_t timeouts_observed = 0;
  uint64_t retransmitted_bytes = 0;
  // Simulated time spent in this request's traffic: delivery latency of its
  // messages plus backoff waited across its retries. Drives deadlines.
  double latency_ms = 0.0;
  double backoff_ms = 0.0;
};

class RequestScope {
 public:
  RequestScope() = default;

  const ScopeStats& stats() const { return stats_; }

  // Simulated milliseconds this request has consumed so far.
  double simulated_ms() const {
    return stats_.latency_ms + stats_.backoff_ms;
  }

  // Rolls `other` into this scope (e.g. a speculative attempt's scope into
  // the request's final accounting).
  void MergeFrom(const RequestScope& other) {
    stats_.messages_delivered += other.stats_.messages_delivered;
    stats_.bytes_delivered += other.stats_.bytes_delivered;
    stats_.messages_failed += other.stats_.messages_failed;
    stats_.retries += other.stats_.retries;
    stats_.timeouts_observed += other.stats_.timeouts_observed;
    stats_.retransmitted_bytes += other.stats_.retransmitted_bytes;
    stats_.latency_ms += other.stats_.latency_ms;
    stats_.backoff_ms += other.stats_.backoff_ms;
  }

  // Mutation entry points for the network/retry layer.
  void RecordDelivered(uint64_t bytes, double latency_ms) {
    ++stats_.messages_delivered;
    stats_.bytes_delivered += bytes;
    stats_.latency_ms += latency_ms;
  }
  void RecordFailed() { ++stats_.messages_failed; }
  void RecordRetry(uint64_t bytes) {
    ++stats_.retries;
    stats_.retransmitted_bytes += bytes;
  }
  void RecordTimeoutObserved() { ++stats_.timeouts_observed; }
  void RecordBackoff(double backoff_ms) { stats_.backoff_ms += backoff_ms; }

 private:
  ScopeStats stats_;
};

}  // namespace nela::net

#endif  // NELA_NET_ACCOUNTING_H_
