// Deterministic fault-injection plan for the simulated network.
//
// A FaultPlan bundles every stochastic failure process the network can
// apply -- message loss, per-link latency with a timeout threshold, and
// scheduled node crashes -- behind one seed, so a chaos experiment is
// reproducible bit-for-bit: the same plan against the same workload yields
// the same drops, the same timeouts, and the same crash points.

#ifndef NELA_NET_FAULT_PLAN_H_
#define NELA_NET_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace nela::net {

using NodeId = uint32_t;

// Per-link delivery latency: every delivered message samples
//   latency = base_ms + U[0, jitter_ms).
// A sample above `timeout_ms` counts as a timeout: the sender observes the
// message as lost (Send returns false) and the timeout is recorded, which
// is how slow links surface as retries rather than as silent slowness.
struct LatencyModel {
  double base_ms = 0.0;
  double jitter_ms = 0.0;
  double timeout_ms = std::numeric_limits<double>::infinity();

  bool enabled() const { return base_ms > 0.0 || jitter_ms > 0.0; }
};

// A node leaving the system (crash or churn-out). The event fires when the
// network's cumulative send-attempt counter reaches `after_attempts`, which
// ties the crash to a deterministic point in protocol execution instead of
// wall time.
struct CrashEvent {
  NodeId node = 0;
  uint64_t after_attempts = 0;
};

// A *process* crash point: where in the anonymizer's commit path the whole
// service dies (as opposed to CrashEvent, which removes one simulated
// client node). The durability subsystem consults the scheduled points at
// exactly these instants, so a kill-anywhere test can assert what the WAL
// and checkpoints must survive:
//
//   kPreCommit      before any WAL record of the commit is appended --
//                   the commit must be invisible after recovery.
//   kMidWalAppend   halfway through appending a WAL record -- recovery
//                   must detect and truncate the torn tail.
//   kPostCommit     after the WAL append and in-memory apply -- the commit
//                   must be fully visible after recovery.
//   kMidCheckpoint  halfway through writing a checkpoint file -- recovery
//                   must reject the torn checkpoint and fall back to the
//                   previous one (or the bare WAL).
enum class ProcessCrashPoint : uint8_t {
  kPreCommit = 0,
  kMidWalAppend = 1,
  kPostCommit = 2,
  kMidCheckpoint = 3,
};

inline const char* ProcessCrashPointName(ProcessCrashPoint point) {
  switch (point) {
    case ProcessCrashPoint::kPreCommit:
      return "pre-commit";
    case ProcessCrashPoint::kMidWalAppend:
      return "mid-wal-append";
    case ProcessCrashPoint::kPostCommit:
      return "post-commit";
    case ProcessCrashPoint::kMidCheckpoint:
      return "mid-checkpoint";
  }
  return "unknown";
}

// Fires on the `after_hits`-th execution of `point` (1-based), which ties
// the crash to a deterministic instant in the commit sequence rather than
// wall time. `after_hits == 0` never fires.
struct ProcessCrashEvent {
  ProcessCrashPoint point = ProcessCrashPoint::kPreCommit;
  uint64_t after_hits = 0;
};

struct FaultPlan {
  // Seeds the network-owned RNG driving loss and latency sampling.
  uint64_t seed = 0;
  // Probability in [0, 1] that any send attempt is dropped.
  double loss_probability = 0.0;
  LatencyModel latency;
  // Crash schedule; need not be sorted (the network sorts a copy).
  std::vector<CrashEvent> crashes;
  // Scheduled whole-process crashes, consumed by durability's
  // CrashPointScheduler (the network itself ignores them).
  std::vector<ProcessCrashEvent> process_crashes;
};

}  // namespace nela::net

#endif  // NELA_NET_FAULT_PLAN_H_
