// Deterministic fault-injection plan for the simulated network.
//
// A FaultPlan bundles every stochastic failure process the network can
// apply -- message loss, per-link latency with a timeout threshold, and
// scheduled node crashes -- behind one seed, so a chaos experiment is
// reproducible bit-for-bit: the same plan against the same workload yields
// the same drops, the same timeouts, and the same crash points.

#ifndef NELA_NET_FAULT_PLAN_H_
#define NELA_NET_FAULT_PLAN_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace nela::net {

using NodeId = uint32_t;

// Per-link delivery latency: every delivered message samples
//   latency = base_ms + U[0, jitter_ms).
// A sample above `timeout_ms` counts as a timeout: the sender observes the
// message as lost (Send returns false) and the timeout is recorded, which
// is how slow links surface as retries rather than as silent slowness.
struct LatencyModel {
  double base_ms = 0.0;
  double jitter_ms = 0.0;
  double timeout_ms = std::numeric_limits<double>::infinity();

  bool enabled() const { return base_ms > 0.0 || jitter_ms > 0.0; }
};

// A node leaving the system (crash or churn-out). The event fires when the
// network's cumulative send-attempt counter reaches `after_attempts`, which
// ties the crash to a deterministic point in protocol execution instead of
// wall time.
struct CrashEvent {
  NodeId node = 0;
  uint64_t after_attempts = 0;
};

struct FaultPlan {
  // Seeds the network-owned RNG driving loss and latency sampling.
  uint64_t seed = 0;
  // Probability in [0, 1] that any send attempt is dropped.
  double loss_probability = 0.0;
  LatencyModel latency;
  // Crash schedule; need not be sorted (the network sorts a copy).
  std::vector<CrashEvent> crashes;
};

}  // namespace nela::net

#endif  // NELA_NET_FAULT_PLAN_H_
