#include "net/retry.h"

#include <algorithm>

namespace nela::net {

SendOutcome SendWithRetry(Network& network, NodeId from, NodeId to,
                          MessageKind kind, uint64_t bytes,
                          const BackoffPolicy& policy, util::Rng* jitter_rng,
                          RequestScope* scope) {
  Message message;
  message.from = from;
  message.to = to;
  message.kind = kind;
  message.bytes = bytes;
  return SendWithRetry(network, message, policy, jitter_rng, scope);
}

SendOutcome SendWithRetry(Network& network, const Message& message,
                          const BackoffPolicy& policy, util::Rng* jitter_rng,
                          RequestScope* scope) {
  const NodeId from = message.from;
  const NodeId to = message.to;
  SendOutcome outcome;
  double delay_ms = policy.base_delay_ms;
  for (uint32_t attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (!network.IsAlive(from) || !network.IsAlive(to)) {
      outcome.peer_down = true;
      return outcome;
    }
    ++outcome.attempts;
    if (attempt > 0) {
      network.RecordRetry(message.kind, message.bytes, scope);
      outcome.retransmitted_bytes += message.bytes;
    }
    if (network.Send(message, scope)) {
      outcome.delivered = true;
      return outcome;
    }
    // The failed attempt may itself have advanced the crash schedule; the
    // next iteration's liveness check distinguishes churn from plain loss.
    network.RecordTimeoutObserved(message.kind, scope);
    double wait = std::min(delay_ms, policy.max_delay_ms);
    if (jitter_rng != nullptr && policy.jitter_fraction > 0.0) {
      const double draw = jitter_rng->NextDouble(0.0, policy.jitter_fraction);
      wait *= 1.0 + draw;
      // Histogram the draw (normalized to the jitter window) after the
      // fact: the RNG consumption above is unchanged, so chaos runs remain
      // bit-reproducible per seed.
      network.RecordBackoffJitter(message.kind, draw / policy.jitter_fraction);
    }
    outcome.backoff_ms += wait;
    if (scope != nullptr) scope->RecordBackoff(wait);
    delay_ms *= policy.multiplier;
  }
  if (!network.IsAlive(from) || !network.IsAlive(to)) {
    outcome.peer_down = true;
  }
  return outcome;
}

}  // namespace nela::net
