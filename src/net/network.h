// Simulated peer-to-peer message layer with deterministic fault injection.
//
// The paper's evaluation metric is communication cost in number of messages
// (and, for Fig. 10, message payload size). This substrate gives every
// protocol a common place to record traffic: protocols call Send() for each
// point-to-point message, and the harness reads the counters.
//
// Fault model (paper §VII robustness discussion): an installed FaultPlan
// drops messages with a seeded probability, delays them through a latency
// model whose samples above the timeout threshold surface as losses, and
// crashes nodes at scheduled points of the execution. Protocols recover via
// net::SendWithRetry (retry.h), whose retransmissions and observed timeouts
// are accounted per message kind here, so benchmarks can report the
// bandwidth cost of fault tolerance, not just the happy-path traffic.

#ifndef NELA_NET_NETWORK_H_
#define NELA_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/accounting.h"
#include "net/fault_plan.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace nela::net {

enum class MessageKind : uint8_t {
  kAdjacencyExchange = 0,  // a user's adjacency list sent to a host/anonymizer
  kClusterAssignment,      // final cluster membership notification
  kBoundProposal,          // secure bounding: hypothesized bound broadcast
  kBoundVote,              // secure bounding: agree/disagree reply
  kServiceRequest,         // cloaked region sent to the LBS server
  kServiceReply,           // candidate POIs returned by the LBS server
  kControl,                // anything else (handshakes, retries)
};
inline constexpr int kMessageKindCount = 7;

// Stable short name of a kind ("adjacency_exchange", ...). The name table is
// static_asserted against kMessageKindCount, so adding a kind without a name
// fails to compile instead of silently drifting.
const char* MessageKindName(MessageKind kind);

// --- Structured payload model -------------------------------------------
//
// A message's payload is described, not serialized: each field carries a
// semantic tag, the principal the field is *about* (whose privacy it can
// affect), and the scalar value that would go on the wire. The audit layer
// (audit::AdversaryObserver) reconstructs per-principal knowledge from
// these descriptors; protocols that send opaque byte counts only
// (kControl handshakes, service replies) may leave the descriptor empty.

enum class FieldTag : uint8_t {
  kAdjacencyList = 0,  // size of a user's proximity adjacency list
  kBoundHypothesis,    // secure bounding: proposed upper bound (public value)
  kBoundVerdict,       // secure bounding: agree(1)/disagree(0) vote
  kCloakedRegion,      // a published region edge (min_x/min_y/max_x/max_y)
  kRawCoordinate,      // an exact user coordinate -- only the OPT baseline
                       // may ever send one, and the observer flags it
  kControl,            // untyped bookkeeping value
  kNoisedCoordinate,   // a perturbed coordinate (geo-indistinguishability);
                       // declared to differ from every private bit pattern
  kCandidateLocation,  // one member of a dummy-location candidate set (a
                       // grid cell center, never a raw user position)
};
inline constexpr int kFieldTagCount = 8;

// Stable short name of a tag ("adjacency_list", ...), static_asserted
// against kFieldTagCount like MessageKindName.
const char* FieldTagName(FieldTag tag);

// Subject id for fields that are about no particular user (a cluster-wide
// bound hypothesis, a region edge).
inline constexpr NodeId kPublicSubject = 0xffffffffu;

struct PayloadField {
  FieldTag tag = FieldTag::kControl;
  NodeId subject = kPublicSubject;
  double value = 0.0;
};

// Fixed-capacity field list: payloads in this protocol family are tiny
// (a region is 4 edges), and keeping the descriptor inline keeps Send()
// allocation-free on the hot bench paths.
struct PayloadDescriptor {
  static constexpr int kMaxFields = 4;

  std::array<PayloadField, kMaxFields> fields{};
  uint8_t field_count = 0;

  void Add(FieldTag tag, NodeId subject, double value) {
    NELA_CHECK_LT(field_count, kMaxFields);
    fields[field_count++] = PayloadField{tag, subject, value};
  }
  bool empty() const { return field_count == 0; }
  const PayloadField* begin() const { return fields.data(); }
  const PayloadField* end() const { return fields.data() + field_count; }
};

// A fully described message. Send(Message) is the audited path; the legacy
// positional Send() remains for traffic whose payload carries no
// per-principal information.
struct Message {
  NodeId from = 0;
  NodeId to = 0;
  MessageKind kind = MessageKind::kControl;
  uint64_t bytes = 0;
  PayloadDescriptor payload;
};

// Observes every send attempt, delivered or not (an adversary on the wire
// sees transmissions; whether the simulated fault process drops them is
// reported so taps can model either a global eavesdropper or an endpoint).
// Invoked outside the network's internal mutex: taps may call back into
// Network accessors but must do their own synchronization if the network
// is shared across threads.
class TrafficTap {
 public:
  virtual ~TrafficTap() = default;
  virtual void OnMessage(const Message& message, bool delivered) = 0;
};

struct TrafficCounter {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

// Fault-tolerance accounting, kept per message kind: how often senders had
// to retransmit, how many send attempts they observed as lost/timed out,
// and the bytes burned on retransmissions.
struct RetryStats {
  static constexpr int kJitterBuckets = 8;

  uint64_t retries = 0;
  uint64_t timeouts_observed = 0;
  uint64_t retransmitted_bytes = 0;
  // Histogram of backoff jitter draws: each SendWithRetry backoff records
  // its drawn fraction of the policy's jitter window into one of
  // kJitterBuckets equal-width buckets. A healthy seeded spread fills the
  // buckets roughly evenly; all draws collapsing into one bucket is the
  // retransmission-synchronization signature jitter exists to prevent.
  std::array<uint64_t, kJitterBuckets> jitter_histogram{};

  uint64_t jitter_draws() const {
    uint64_t draws = 0;
    for (uint64_t bucket : jitter_histogram) draws += bucket;
    return draws;
  }
};

// Thread safety: every counter mutation and liveness transition happens
// under one internal mutex, so concurrent requests (sim::BatchDriver
// workers) may share a Network. Determinism caveat: with a loss/latency
// process installed, the *order* in which concurrent senders draw from the
// fault RNG depends on scheduling -- per-run bit-identical fault injection
// therefore requires a single in-flight request (all current chaos drivers
// are single-threaded). On a fault-free network the counters are pure sums
// and every interleaving yields identical totals.
class Network {
 public:
  explicit Network(uint32_t node_count);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  uint32_t node_count() const { return node_count_; }

  // Records one send attempt. Returns false when the message is not
  // delivered: dropped by the injected loss process, delayed past the
  // latency model's timeout, or addressed from/to a crashed node. Callers
  // needing delivery use net::SendWithRetry on top. When `scope` is given,
  // the attempt is additionally accounted to that request's scope.
  bool Send(NodeId from, NodeId to, MessageKind kind, uint64_t bytes,
            RequestScope* scope = nullptr) EXCLUDES(mu_);

  // Audited path: same semantics, but the message's payload descriptor is
  // handed to the installed TrafficTap (if any) along with the delivery
  // outcome.
  bool Send(const Message& message, RequestScope* scope = nullptr)
      EXCLUDES(mu_);

  // Installs (or clears, with nullptr) the traffic tap. Not owned; must
  // outlive the network or be cleared first. Install before traffic starts:
  // swapping the tap concurrently with in-flight sends is a data race.
  void SetTap(TrafficTap* tap) { tap_ = tap; }
  TrafficTap* tap() const { return tap_; }

  // Installs the full fault plan (replaces any previous loss setting). The
  // RNG driving loss and latency is owned by the network and seeded from
  // plan.seed, so runs are reproducible. Fails with kInvalidArgument when
  // loss_probability is outside [0, 1], a latency parameter is negative,
  // or a crash event names an out-of-range node.
  [[nodiscard]] util::Status InstallFaultPlan(const FaultPlan& plan)
      EXCLUDES(mu_);

  // Legacy lightweight path: every subsequent Send is dropped with
  // probability `loss_probability` using `rng` (not owned; must outlive the
  // network). Pass 0 to disable. Fails with kInvalidArgument when the
  // probability is outside [0, 1] or a positive probability comes without
  // an RNG (which would otherwise fault on the next Send).
  [[nodiscard]] util::Status SetLossProbability(double loss_probability,
                                                util::Rng* rng) EXCLUDES(mu_);

  // --- Liveness ---------------------------------------------------------

  // Immediately removes `node` from the system: every later send touching
  // it fails. Idempotent.
  void CrashNode(NodeId node) EXCLUDES(mu_);

  bool IsAlive(NodeId node) const EXCLUDES(mu_) {
    NELA_CHECK_LT(node, node_count_);
    util::MutexLock lock(mu_);
    return alive_[node];
  }
  uint32_t alive_count() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return alive_count_;
  }

  // --- Counters ---------------------------------------------------------
  // The const-reference accessors return views into mutex-protected state;
  // reading them concurrently with in-flight sends yields a momentary
  // snapshot (fine for monotone counters), copy-by-value accessors take the
  // lock.

  // Global counters (delivered messages only).
  TrafficCounter total() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return total_;
  }
  TrafficCounter of_kind(MessageKind kind) const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return by_kind_[static_cast<size_t>(kind)];
  }

  // Every Send call, delivered or not; drives the crash schedule.
  uint64_t send_attempts() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return send_attempts_;
  }

  // Loss-process drops and the bandwidth they wasted.
  uint64_t dropped_messages() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return dropped_;
  }
  uint64_t dropped_bytes() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return dropped_bytes_;
  }

  // Latency-model samples above the timeout threshold.
  uint64_t timed_out_messages() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return timed_out_;
  }

  // Send attempts addressed from or to a crashed node.
  uint64_t dead_endpoint_attempts() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return dead_endpoint_attempts_;
  }

  // Simulated delivery latency summed over delivered messages (0 without a
  // latency model).
  double total_latency_ms() const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return total_latency_ms_;
  }

  // Retry accounting, fed by SendWithRetry via RecordRetry/RecordTimeout.
  RetryStats retry_stats_of(MessageKind kind) const EXCLUDES(mu_) {
    util::MutexLock lock(mu_);
    return retry_by_kind_[static_cast<size_t>(kind)];
  }
  RetryStats total_retry_stats() const EXCLUDES(mu_);

  void RecordRetry(MessageKind kind, uint64_t bytes,
                   RequestScope* scope = nullptr) EXCLUDES(mu_);
  void RecordTimeoutObserved(MessageKind kind, RequestScope* scope = nullptr)
      EXCLUDES(mu_);
  // `fraction_of_window` is the backoff jitter draw normalized to [0, 1)
  // over the policy's jitter window (SendWithRetry computes it from the
  // draw it already made, so recording never perturbs the RNG sequence).
  void RecordBackoffJitter(MessageKind kind, double fraction_of_window)
      EXCLUDES(mu_);

  // Per-node counters.
  uint64_t SentBy(NodeId node) const EXCLUDES(mu_);
  uint64_t ReceivedBy(NodeId node) const EXCLUDES(mu_);

  // Zeroes every traffic/fault counter. Keeps the fault configuration, the
  // crash schedule position, and node liveness: counters describe a
  // measurement window, liveness describes the world.
  void ResetCounters() EXCLUDES(mu_);

 private:
  // Fires every crash event whose threshold the attempt counter reached.
  void AdvanceCrashScheduleLocked() REQUIRES(mu_);
  void CrashNodeLocked(NodeId node) REQUIRES(mu_);
  // Counter/fault bookkeeping for one attempt; returns whether it was
  // delivered. Takes mu_ itself; the caller invokes the tap afterwards so
  // the tap never runs under the network lock.
  bool SendImpl(NodeId from, NodeId to, MessageKind kind, uint64_t bytes,
                RequestScope* scope) EXCLUDES(mu_);

  // Deliberately unguarded: install-before-traffic contract (see SetTap).
  // Guarding it would put the tap swap under mu_ without fixing the real
  // hazard (a tap swapped mid-send still races with the tap *invocation*,
  // which runs outside the lock by design).
  TrafficTap* tap_ = nullptr;
  mutable util::Mutex mu_;
  uint32_t node_count_;
  TrafficCounter total_ GUARDED_BY(mu_);
  std::array<TrafficCounter, kMessageKindCount> by_kind_ GUARDED_BY(mu_){};
  std::array<RetryStats, kMessageKindCount> retry_by_kind_ GUARDED_BY(mu_){};
  std::vector<uint64_t> sent_ GUARDED_BY(mu_);
  std::vector<uint64_t> received_ GUARDED_BY(mu_);
  std::vector<bool> alive_ GUARDED_BY(mu_);
  uint32_t alive_count_ GUARDED_BY(mu_);
  uint64_t send_attempts_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_ GUARDED_BY(mu_) = 0;
  uint64_t dropped_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t timed_out_ GUARDED_BY(mu_) = 0;
  uint64_t dead_endpoint_attempts_ GUARDED_BY(mu_) = 0;
  double total_latency_ms_ GUARDED_BY(mu_) = 0.0;

  double loss_probability_ GUARDED_BY(mu_) = 0.0;
  // External (legacy path) or &owned_rng_.
  util::Rng* loss_rng_ GUARDED_BY(mu_) = nullptr;
  std::optional<util::Rng> owned_rng_ GUARDED_BY(mu_);
  LatencyModel latency_ GUARDED_BY(mu_);
  // Sorted by after_attempts.
  std::vector<CrashEvent> crash_schedule_ GUARDED_BY(mu_);
  size_t next_crash_ GUARDED_BY(mu_) = 0;
};

}  // namespace nela::net

#endif  // NELA_NET_NETWORK_H_
