// Simulated peer-to-peer message layer.
//
// The paper's evaluation metric is communication cost in number of messages
// (and, for Fig. 10, message payload size). This substrate gives every
// protocol a common place to record traffic: protocols call Send() for each
// point-to-point message, and the harness reads the counters. A configurable
// drop probability supports the failure-injection tests motivated by the
// paper's §VII robustness discussion.

#ifndef NELA_NET_NETWORK_H_
#define NELA_NET_NETWORK_H_

#include <array>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace nela::net {

using NodeId = uint32_t;

enum class MessageKind : uint8_t {
  kAdjacencyExchange = 0,  // a user's adjacency list sent to a host/anonymizer
  kClusterAssignment,      // final cluster membership notification
  kBoundProposal,          // secure bounding: hypothesized bound broadcast
  kBoundVote,              // secure bounding: agree/disagree reply
  kServiceRequest,         // cloaked region sent to the LBS server
  kServiceReply,           // candidate POIs returned by the LBS server
  kControl,                // anything else (handshakes, retries)
};
inline constexpr int kMessageKindCount = 7;

const char* MessageKindName(MessageKind kind);

struct TrafficCounter {
  uint64_t messages = 0;
  uint64_t bytes = 0;
};

class Network {
 public:
  explicit Network(uint32_t node_count);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  uint32_t node_count() const { return node_count_; }

  // Records one message. Returns false when the message is dropped by the
  // injected loss process (callers model their retry policy on top).
  bool Send(NodeId from, NodeId to, MessageKind kind, uint64_t bytes);

  // Failure injection: every subsequent Send is dropped with probability
  // `loss_probability` using `rng` (not owned; must outlive the network).
  // Pass 0 to disable.
  void SetLossProbability(double loss_probability, util::Rng* rng);

  // Global counters (delivered messages only).
  const TrafficCounter& total() const { return total_; }
  const TrafficCounter& of_kind(MessageKind kind) const {
    return by_kind_[static_cast<size_t>(kind)];
  }
  uint64_t dropped_messages() const { return dropped_; }

  // Per-node counters.
  uint64_t SentBy(NodeId node) const;
  uint64_t ReceivedBy(NodeId node) const;

  // Zeroes every counter (keeps the loss configuration).
  void ResetCounters();

 private:
  uint32_t node_count_;
  TrafficCounter total_;
  std::array<TrafficCounter, kMessageKindCount> by_kind_{};
  std::vector<uint64_t> sent_;
  std::vector<uint64_t> received_;
  uint64_t dropped_ = 0;
  double loss_probability_ = 0.0;
  util::Rng* loss_rng_ = nullptr;
};

}  // namespace nela::net

#endif  // NELA_NET_NETWORK_H_
