#include "net/network.h"

#include <algorithm>
#include <cmath>

namespace nela::net {

namespace {

// One entry per MessageKind enumerator, in declaration order. The
// static_assert ties the table to kMessageKindCount: adding a kind without
// extending the table (or vice versa) is a compile error, not silent drift.
constexpr const char* kMessageKindNames[] = {
    "adjacency_exchange",  // kAdjacencyExchange
    "cluster_assignment",  // kClusterAssignment
    "bound_proposal",      // kBoundProposal
    "bound_vote",          // kBoundVote
    "service_request",     // kServiceRequest
    "service_reply",       // kServiceReply
    "control",             // kControl
};
static_assert(sizeof(kMessageKindNames) / sizeof(kMessageKindNames[0]) ==
                  static_cast<size_t>(kMessageKindCount),
              "MessageKind name table out of sync with kMessageKindCount");

constexpr const char* kFieldTagNames[] = {
    "adjacency_list",    // kAdjacencyList
    "bound_hypothesis",  // kBoundHypothesis
    "bound_verdict",     // kBoundVerdict
    "cloaked_region",    // kCloakedRegion
    "raw_coordinate",      // kRawCoordinate
    "control",             // kControl
    "noised_coordinate",   // kNoisedCoordinate
    "candidate_location",  // kCandidateLocation
};
static_assert(sizeof(kFieldTagNames) / sizeof(kFieldTagNames[0]) ==
                  static_cast<size_t>(kFieldTagCount),
              "FieldTag name table out of sync with kFieldTagCount");

}  // namespace

const char* MessageKindName(MessageKind kind) {
  const size_t index = static_cast<size_t>(kind);
  if (index >= static_cast<size_t>(kMessageKindCount)) return "unknown";
  return kMessageKindNames[index];
}

const char* FieldTagName(FieldTag tag) {
  const size_t index = static_cast<size_t>(tag);
  if (index >= static_cast<size_t>(kFieldTagCount)) return "unknown";
  return kFieldTagNames[index];
}

Network::Network(uint32_t node_count)
    : node_count_(node_count), sent_(node_count, 0), received_(node_count, 0),
      alive_(node_count, true), alive_count_(node_count) {}

void Network::AdvanceCrashScheduleLocked() {
  while (next_crash_ < crash_schedule_.size() &&
         crash_schedule_[next_crash_].after_attempts <= send_attempts_) {
    CrashNodeLocked(crash_schedule_[next_crash_].node);
    ++next_crash_;
  }
}

bool Network::Send(NodeId from, NodeId to, MessageKind kind, uint64_t bytes,
                   RequestScope* scope) {
  const bool delivered = SendImpl(from, to, kind, bytes, scope);
  if (tap_ != nullptr) {
    Message message;
    message.from = from;
    message.to = to;
    message.kind = kind;
    message.bytes = bytes;
    tap_->OnMessage(message, delivered);
  }
  return delivered;
}

bool Network::Send(const Message& message, RequestScope* scope) {
  const bool delivered = SendImpl(message.from, message.to, message.kind,
                                  message.bytes, scope);
  if (tap_ != nullptr) tap_->OnMessage(message, delivered);
  return delivered;
}

bool Network::SendImpl(NodeId from, NodeId to, MessageKind kind,
                       uint64_t bytes, RequestScope* scope) {
  NELA_CHECK_LT(from, node_count_);
  NELA_CHECK_LT(to, node_count_);
  util::MutexLock lock(mu_);
  ++send_attempts_;
  AdvanceCrashScheduleLocked();
  if (!alive_[from] || !alive_[to]) {
    ++dead_endpoint_attempts_;
    if (scope != nullptr) scope->RecordFailed();
    return false;
  }
  if (loss_probability_ > 0.0 && loss_rng_ != nullptr &&
      loss_rng_->NextBernoulli(loss_probability_)) {
    ++dropped_;
    dropped_bytes_ += bytes;
    if (scope != nullptr) scope->RecordFailed();
    return false;
  }
  double latency_ms = 0.0;
  if (latency_.enabled() && loss_rng_ != nullptr) {
    latency_ms = latency_.base_ms;
    if (latency_.jitter_ms > 0.0) {
      latency_ms += loss_rng_->NextDouble(0.0, latency_.jitter_ms);
    }
    if (latency_ms > latency_.timeout_ms) {
      ++timed_out_;
      if (scope != nullptr) scope->RecordFailed();
      return false;
    }
  }
  ++total_.messages;
  total_.bytes += bytes;
  total_latency_ms_ += latency_ms;
  TrafficCounter& kind_counter = by_kind_[static_cast<size_t>(kind)];
  ++kind_counter.messages;
  kind_counter.bytes += bytes;
  ++sent_[from];
  ++received_[to];
  if (scope != nullptr) scope->RecordDelivered(bytes, latency_ms);
  return true;
}

util::Status Network::InstallFaultPlan(const FaultPlan& plan) {
  if (plan.loss_probability < 0.0 || plan.loss_probability > 1.0) {
    return util::InvalidArgumentError(
        "fault plan loss probability must be in [0, 1]");
  }
  if (plan.latency.base_ms < 0.0 || plan.latency.jitter_ms < 0.0 ||
      plan.latency.timeout_ms < 0.0) {
    return util::InvalidArgumentError(
        "fault plan latency parameters must be non-negative");
  }
  for (const CrashEvent& event : plan.crashes) {
    if (event.node >= node_count_) {
      return util::InvalidArgumentError(
          "fault plan crash event names an out-of-range node");
    }
  }
  util::MutexLock lock(mu_);
  owned_rng_.emplace(plan.seed);
  loss_rng_ = &*owned_rng_;
  loss_probability_ = plan.loss_probability;
  latency_ = plan.latency;
  crash_schedule_ = plan.crashes;
  std::stable_sort(crash_schedule_.begin(), crash_schedule_.end(),
                   [](const CrashEvent& a, const CrashEvent& b) {
                     return a.after_attempts < b.after_attempts;
                   });
  next_crash_ = 0;
  return util::Status::Ok();
}

util::Status Network::SetLossProbability(double loss_probability,
                                         util::Rng* rng) {
  if (loss_probability < 0.0 || loss_probability > 1.0) {
    return util::InvalidArgumentError("loss probability must be in [0, 1]");
  }
  if (loss_probability > 0.0 && rng == nullptr) {
    return util::InvalidArgumentError(
        "a positive loss probability requires an RNG");
  }
  util::MutexLock lock(mu_);
  owned_rng_.reset();
  loss_probability_ = loss_probability;
  loss_rng_ = rng;
  return util::Status::Ok();
}

void Network::CrashNode(NodeId node) {
  NELA_CHECK_LT(node, node_count_);
  util::MutexLock lock(mu_);
  CrashNodeLocked(node);
}

void Network::CrashNodeLocked(NodeId node) {
  if (alive_[node]) {
    alive_[node] = false;
    --alive_count_;
  }
}

RetryStats Network::total_retry_stats() const {
  util::MutexLock lock(mu_);
  RetryStats total;
  for (const RetryStats& stats : retry_by_kind_) {
    total.retries += stats.retries;
    total.timeouts_observed += stats.timeouts_observed;
    total.retransmitted_bytes += stats.retransmitted_bytes;
    for (int b = 0; b < RetryStats::kJitterBuckets; ++b) {
      total.jitter_histogram[static_cast<size_t>(b)] +=
          stats.jitter_histogram[static_cast<size_t>(b)];
    }
  }
  return total;
}

void Network::RecordRetry(MessageKind kind, uint64_t bytes,
                          RequestScope* scope) {
  util::MutexLock lock(mu_);
  RetryStats& stats = retry_by_kind_[static_cast<size_t>(kind)];
  ++stats.retries;
  stats.retransmitted_bytes += bytes;
  if (scope != nullptr) scope->RecordRetry(bytes);
}

void Network::RecordTimeoutObserved(MessageKind kind, RequestScope* scope) {
  util::MutexLock lock(mu_);
  ++retry_by_kind_[static_cast<size_t>(kind)].timeouts_observed;
  if (scope != nullptr) scope->RecordTimeoutObserved();
}

void Network::RecordBackoffJitter(MessageKind kind,
                                  double fraction_of_window) {
  const double clamped =
      std::min(std::max(fraction_of_window, 0.0),
               std::nextafter(1.0, 0.0));
  const auto bucket = static_cast<size_t>(
      clamped * static_cast<double>(RetryStats::kJitterBuckets));
  util::MutexLock lock(mu_);
  ++retry_by_kind_[static_cast<size_t>(kind)].jitter_histogram[bucket];
}

uint64_t Network::SentBy(NodeId node) const {
  NELA_CHECK_LT(node, node_count_);
  util::MutexLock lock(mu_);
  return sent_[node];
}

uint64_t Network::ReceivedBy(NodeId node) const {
  NELA_CHECK_LT(node, node_count_);
  util::MutexLock lock(mu_);
  return received_[node];
}

void Network::ResetCounters() {
  util::MutexLock lock(mu_);
  total_ = TrafficCounter{};
  by_kind_.fill(TrafficCounter{});
  retry_by_kind_.fill(RetryStats{});
  std::fill(sent_.begin(), sent_.end(), 0);
  std::fill(received_.begin(), received_.end(), 0);
  dropped_ = 0;
  dropped_bytes_ = 0;
  timed_out_ = 0;
  dead_endpoint_attempts_ = 0;
  total_latency_ms_ = 0.0;
}

}  // namespace nela::net
