#include "net/network.h"

namespace nela::net {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kAdjacencyExchange:
      return "adjacency_exchange";
    case MessageKind::kClusterAssignment:
      return "cluster_assignment";
    case MessageKind::kBoundProposal:
      return "bound_proposal";
    case MessageKind::kBoundVote:
      return "bound_vote";
    case MessageKind::kServiceRequest:
      return "service_request";
    case MessageKind::kServiceReply:
      return "service_reply";
    case MessageKind::kControl:
      return "control";
  }
  return "unknown";
}

Network::Network(uint32_t node_count)
    : node_count_(node_count), sent_(node_count, 0), received_(node_count, 0) {}

bool Network::Send(NodeId from, NodeId to, MessageKind kind, uint64_t bytes) {
  NELA_CHECK_LT(from, node_count_);
  NELA_CHECK_LT(to, node_count_);
  if (loss_probability_ > 0.0 && loss_rng_ != nullptr &&
      loss_rng_->NextBernoulli(loss_probability_)) {
    ++dropped_;
    return false;
  }
  ++total_.messages;
  total_.bytes += bytes;
  TrafficCounter& kind_counter = by_kind_[static_cast<size_t>(kind)];
  ++kind_counter.messages;
  kind_counter.bytes += bytes;
  ++sent_[from];
  ++received_[to];
  return true;
}

void Network::SetLossProbability(double loss_probability, util::Rng* rng) {
  NELA_CHECK_GE(loss_probability, 0.0);
  NELA_CHECK_LE(loss_probability, 1.0);
  NELA_CHECK(loss_probability == 0.0 || rng != nullptr);
  loss_probability_ = loss_probability;
  loss_rng_ = rng;
}

uint64_t Network::SentBy(NodeId node) const {
  NELA_CHECK_LT(node, node_count_);
  return sent_[node];
}

uint64_t Network::ReceivedBy(NodeId node) const {
  NELA_CHECK_LT(node, node_count_);
  return received_[node];
}

void Network::ResetCounters() {
  total_ = TrafficCounter{};
  by_kind_.fill(TrafficCounter{});
  std::fill(sent_.begin(), sent_.end(), 0);
  std::fill(received_.begin(), received_.end(), 0);
  dropped_ = 0;
}

}  // namespace nela::net
