// Reliable delivery over the lossy simulated network: retransmission with
// capped exponential backoff.
//
// Every protocol that must survive injected loss funnels its sends through
// SendWithRetry instead of hand-rolling retry loops. Backoff delays are
// simulated (accumulated, never slept) and the jitter draws from a caller
// supplied util::Rng, so a fixed seed reproduces the exact retry schedule.
// Retransmissions and observed timeouts are recorded on the network per
// message kind, making the bandwidth cost of fault tolerance measurable.

#ifndef NELA_NET_RETRY_H_
#define NELA_NET_RETRY_H_

#include <cstdint>

#include "net/network.h"
#include "util/rng.h"

namespace nela::net {

// Capped exponential backoff: attempt i (0-based) waits
//   min(base_delay_ms * multiplier^(i), max_delay_ms) * (1 + jitter)
// before retrying, with jitter uniform in [0, jitter_fraction).
struct BackoffPolicy {
  uint32_t max_attempts = 6;
  double base_delay_ms = 10.0;
  double multiplier = 2.0;
  double max_delay_ms = 500.0;
  double jitter_fraction = 0.25;
};

struct SendOutcome {
  bool delivered = false;
  // An endpoint crashed (before or during the attempts); retrying further
  // is pointless and the caller should treat the peer as churned out.
  bool peer_down = false;
  uint32_t attempts = 0;
  uint64_t retransmitted_bytes = 0;
  // Total simulated backoff waited across retries.
  double backoff_ms = 0.0;
};

// Sends `bytes` from `from` to `to`, retrying up to policy.max_attempts
// times. `jitter_rng` may be null (no jitter; still deterministic). Returns
// with delivered == false when the retry budget is exhausted (the caller's
// deadline has effectively expired) or peer_down == true when an endpoint
// crashed. When `scope` is given, every attempt, retransmission, and
// backoff wait is additionally accounted to that request's scope.
SendOutcome SendWithRetry(Network& network, NodeId from, NodeId to,
                          MessageKind kind, uint64_t bytes,
                          const BackoffPolicy& policy, util::Rng* jitter_rng,
                          RequestScope* scope = nullptr);

// Audited variant: retransmits a fully described Message, so every attempt
// (including retries) reaches the installed TrafficTap with its payload
// descriptor -- exactly what a wire-level adversary would see.
SendOutcome SendWithRetry(Network& network, const Message& message,
                          const BackoffPolicy& policy, util::Rng* jitter_rng,
                          RequestScope* scope = nullptr);

}  // namespace nela::net

#endif  // NELA_NET_RETRY_H_
