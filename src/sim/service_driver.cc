#include "sim/service_driver.h"

#include <utility>

#include "sim/sharded_service_driver.h"

namespace nela::sim {

namespace {

ShardedServiceConfig SingleShard(const ServiceConfig& config) {
  ShardedServiceConfig sharded;
  sharded.service = config;
  sharded.shards = 1;
  return sharded;
}

}  // namespace

ServiceDriver::ServiceDriver(const data::Dataset& dataset,
                             const graph::Wpg& graph,
                             core::PolicyFactory policy_factory,
                             const ServiceConfig& config)
    : dataset_(dataset), graph_(graph),
      policy_factory_(std::move(policy_factory)), config_(config) {
  NELA_CHECK_EQ(dataset.size(), graph.vertex_count());
  NELA_CHECK(policy_factory_ != nullptr);
  NELA_CHECK_GE(config_.k, 1u);
}

util::Result<ServiceResult> ServiceDriver::Run() {
  ShardedServiceDriver engine(dataset_, graph_, policy_factory_,
                              SingleShard(config_));
  auto result = engine.Run();
  if (!result.ok()) return result.status();
  return std::move(result).value().service;
}

util::Result<ServiceResult> ServiceDriver::Resume(
    durability::RecoveredState recovered) {
  ShardedServiceDriver engine(dataset_, graph_, policy_factory_,
                              SingleShard(config_));
  auto result = engine.ResumeClassic(std::move(recovered));
  if (!result.ok()) return result.status();
  return std::move(result).value().service;
}

}  // namespace nela::sim
