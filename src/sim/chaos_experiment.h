// Chaos experiment: the full two-phase cloaking pipeline under injected
// message loss, link latency/timeouts, and node churn.
//
// The paper's §VI experiments measure communication cost on a perfect
// network; its §VII robustness discussion asks what the protocols do when
// the network is not perfect. This driver answers that quantitatively: it
// runs a request workload through the fault-tolerant engine against a
// seeded FaultPlan and reports the success/degradation breakdown, the
// added traffic from retransmissions, and the anonymity level actually
// achieved -- the robustness/overhead tradeoff as a tracked benchmark.
// Everything is seeded, so a configuration reproduces bit-for-bit.

#ifndef NELA_SIM_CHAOS_EXPERIMENT_H_
#define NELA_SIM_CHAOS_EXPERIMENT_H_

#include <cstdint>

#include "net/fault_plan.h"
#include "net/retry.h"
#include "sim/scenario.h"
#include "util/status.h"

namespace nela::sim {

struct ChaosExperimentConfig {
  uint32_t k = 10;
  uint32_t requests = 500;  // S
  uint64_t workload_seed = 7;

  // Fault injection. `fault_seed` drives loss/latency sampling and the
  // backoff jitter; `churn_rate` is the fraction of the population
  // scheduled to crash over the run, one node every
  // `churn_attempt_spacing` send attempts (victims drawn from the fault
  // seed as well).
  uint64_t fault_seed = 1234;
  double loss_probability = 0.0;
  net::LatencyModel latency;
  double churn_rate = 0.0;
  uint64_t churn_attempt_spacing = 2000;

  // Recovery parameters.
  net::BackoffPolicy retry;
  uint32_t max_phase_retries = 3;

  // Non-exposure verification: attach an audit::AdversaryObserver (with a
  // taint set over every user coordinate) to the network for the whole run
  // and report the violations it finds. On by default -- chaos runs are
  // exactly where failure paths could leak.
  bool verify_non_exposure = true;
};

struct ChaosExperimentResult {
  uint32_t requests = 0;
  // Completed with anonymity satisfied.
  uint32_t succeeded = 0;
  // Completed, but degraded: anonymity unsatisfied (cluster below k,
  // bounding deadline exceeded, ...). Structured, never exposing.
  uint32_t degraded = 0;
  // Request failed outright (host offline / crashed mid-request).
  uint32_t failed = 0;
  double success_rate = 0.0;

  // Traffic accounting over the whole run.
  uint64_t delivered_messages = 0;
  uint64_t delivered_bytes = 0;
  uint64_t dropped_messages = 0;
  uint64_t dropped_bytes = 0;
  uint64_t timed_out_messages = 0;
  uint64_t dead_endpoint_attempts = 0;
  uint64_t retries = 0;
  uint64_t retransmitted_bytes = 0;
  // Retransmissions per delivered message: the bandwidth overhead the
  // fault-tolerance layer pays for the achieved success rate.
  double retry_overhead = 0.0;

  // Degradation accounting summed over requests.
  uint64_t members_lost = 0;
  uint64_t phases_retried = 0;

  // Achieved anonymity: cluster size averaged over succeeded requests
  // (>= k by construction), and mean cloaked area over succeeded requests.
  double avg_achieved_anonymity = 0.0;
  double avg_region_area = 0.0;

  // Non-exposure audit (0 when verify_non_exposure is off). Any non-zero
  // violation count is a protocol bug: the adversary observer reconstructed
  // more about some user than ranks + published region allow.
  uint64_t audited_messages = 0;
  uint64_t exposure_violations = 0;
};

[[nodiscard]] util::Result<ChaosExperimentResult> RunChaosExperiment(
    const Scenario& scenario, const ChaosExperimentConfig& config);

}  // namespace nela::sim

#endif  // NELA_SIM_CHAOS_EXPERIMENT_H_
