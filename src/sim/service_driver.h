// Crash-durable anonymizer service driver: the batch driver's optimistic
// concurrency machinery (speculation + commit turnstile + region latches),
// promoted to a long-lived service with
//
//  * bounded admission -- requests arrive on a simulated Poisson clock and
//    pass through a c-server queue (c = worker threads). Requests that find
//    the queue full are shed with kUnavailable; requests whose simulated
//    queue wait exceeds the deadline are shed with kDeadlineExceeded. Every
//    shed produces a structured DegradationReport (finalized exactly once)
//    and never exposes a coordinate. Admitted requests carry the wait as
//    simulated backoff so the in-pipeline deadline check still fires.
//    Admission is computed sequentially up front from the workload seed, so
//    the shed set is deterministic for a given (config, thread count).
//  * durability -- with a WAL path configured, every Register/SetRegion is
//    written ahead through durability::DurableRegistry, and a checkpoint of
//    the registry is cut every checkpoint_interval turnstile commits. A
//    crashed run's state is rebuilt by durability::RecoveryManager and the
//    workload finished via Resume(), which re-submits every request: work
//    that committed before the crash resolves as reuse, the rest re-executes
//    with the same per-request RNG sub-streams, so the final registry digest
//    is bit-identical to an uninterrupted run.
//  * chaos -- net::FaultPlan::process_crashes schedules process-level
//    crashes at the commit/WAL/checkpoint points; when one fires the run
//    halts as a real crash would (workers unwind, unfinished requests are
//    reported as crash aborts, on-disk state is left exactly as the crash
//    point dictates -- including a torn WAL record or checkpoint).
//  * a watchdog -- a worker that stalls while holding claims
//    (stall_ordinal, test-only) is detected by whichever request its stall
//    blocks (claim-retry spin or turnstile wait); the detector rolls the
//    stalled ticket's claims back and re-executes the request inline from a
//    fresh context, so the result -- and the digest -- is as if the stall
//    never happened.
//
// BatchDriver::Run is a thin facade over this driver with admission,
// durability, chaos, and the watchdog all disabled; the determinism
// guarantees documented in batch_driver.h are inherited from here.
//
// Since the sharding refactor the machinery itself lives in
// ShardedServiceDriver (sharded_service_driver.h); this class is the
// single-shard facade, pinning K=1 and the classic single-file WAL so its
// on-disk format, digests, and traces stay byte-compatible with what they
// were before shards existed.

#ifndef NELA_SIM_SERVICE_DRIVER_H_
#define NELA_SIM_SERVICE_DRIVER_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "audit/leak_contract.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/dataset.h"
#include "durability/recovery.h"
#include "graph/wpg.h"
#include "mechanisms/factory.h"
#include "net/accounting.h"
#include "net/fault_plan.h"
#include "net/network.h"
#include "util/status.h"

namespace nela::sim {

// Sentinel: no stall injection.
inline constexpr uint64_t kNoStallOrdinal = ~0ull;

struct ServiceConfig {
  // --- Workload (same semantics as BatchConfig) --------------------------
  uint32_t k = 5;
  uint32_t requests = 64;
  // Worker threads; 0 behaves as 1. Also the server count c of the
  // admission queue model.
  uint32_t threads = 1;
  uint64_t master_seed = 1;
  uint64_t workload_seed = 7;
  bool with_network = true;

  // --- Mechanism ---------------------------------------------------------
  // Which privacy mechanism serves the requests. kClusterBound is the
  // native clustering+bounding pipeline with all the machinery below; any
  // other family runs the corresponding baseline through MechanismStage --
  // requests are independent (no clustering, claims, commit turnstile, or
  // registry writes), so the mode composes with admission, the fault plan,
  // and the observer tap, but not with durability or stall injection.
  audit::MechanismFamily mechanism = audit::MechanismFamily::kClusterBound;
  mechanisms::MechanismParams mechanism_params;

  // --- Admission / overload ---------------------------------------------
  // Mean arrivals per simulated millisecond (Poisson process). 0 disables
  // the queue model entirely: all requests arrive at t=0 with zero wait and
  // nothing is shed (the closed-batch mode BatchDriver uses).
  double offered_rate_per_ms = 0.0;
  // Simulated per-request service time of the queue model; the sustainable
  // load is threads / service_time_ms arrivals per ms.
  double service_time_ms = 1.0;
  // Waiting-room bound: a request that arrives while this many admitted
  // requests are queued (arrived, not yet started) is shed with
  // kUnavailable. 0 = unbounded.
  uint32_t queue_capacity = 0;
  // Per-request deadline over simulated time (queue wait + network
  // latency + backoff). A request whose queue wait alone exceeds it is shed
  // before execution with kDeadlineExceeded; admitted requests keep the
  // remainder as their in-pipeline deadline budget. Infinity = no deadline.
  double deadline_ms = std::numeric_limits<double>::infinity();

  // --- Durability --------------------------------------------------------
  // Write-ahead log file; empty disables durability.
  std::string wal_path;
  // Directory receiving checkpoint-<seq>.ckpt snapshots; empty disables
  // checkpointing (WAL-only durability).
  std::string checkpoint_dir;
  // Cut a checkpoint every this many turnstile commits; 0 disables.
  uint32_t checkpoint_interval = 0;

  // --- Chaos -------------------------------------------------------------
  // Network faults (loss/latency/node crashes) plus process_crashes, the
  // scheduled process-level crash points consumed by this driver.
  net::FaultPlan fault_plan;

  // --- Watchdog (test-only) ---------------------------------------------
  // The request with this ordinal parks after speculation, still holding
  // its claims, and must be rescued by the watchdog path. kNoStallOrdinal
  // disables injection.
  uint64_t stall_ordinal = kNoStallOrdinal;

  // Observer for every network message (e.g. the exposure audit); not
  // owned, may be null.
  net::TrafficTap* tap = nullptr;
};

// Why a request was refused at admission.
enum class ShedCause : uint8_t {
  kNone = 0,
  kQueueOverflow,  // waiting room full on arrival
  kDeadline,       // simulated queue wait exceeded the deadline
};

struct ServiceRequestRecord {
  data::UserId host = 0;
  uint64_t ordinal = 0;
  // False when the request was shed at admission (outcome then carries the
  // structured degradation report of the shed).
  bool admitted = true;
  ShedCause shed = ShedCause::kNone;
  // True when a scheduled process crash aborted the request before its
  // outcome resolved; the report's failure_code is kUnavailable.
  bool aborted_by_crash = false;
  // Simulated arrival time and queue wait (both 0 with the queue model
  // off).
  double arrival_ms = 0.0;
  double queue_wait_ms = 0.0;
  core::CloakingOutcome outcome;
  std::string trace;
  net::ScopeStats net_stats;
  double wall_ms = 0.0;  // scheduling-dependent
};

struct ServiceResult {
  // In ordinal order, shed and aborted requests included.
  std::vector<ServiceRequestRecord> records;
  // cluster::Registry::Digest() of the final registry.
  uint64_t registry_digest = 0;
  // FNV fold of every request's outcome facts in ordinal order (host,
  // admission, satisfaction, region and probe coordinate bits): the
  // determinism witness that works for every mechanism, including
  // baselines that never touch the registry.
  uint64_t outcome_digest = 0;
  bool reciprocity_ok = false;
  uint32_t clusters_formed = 0;

  // Admission accounting.
  uint64_t admitted = 0;
  uint64_t shed_queue_overflow = 0;
  uint64_t shed_deadline = 0;
  uint64_t aborted_by_crash = 0;
  // Simulated queue-wait percentiles over admitted requests.
  double p50_queue_wait_ms = 0.0;
  double p99_queue_wait_ms = 0.0;

  // Durability accounting.
  uint64_t wal_records = 0;
  uint64_t checkpoints_written = 0;
  // True when a scheduled process crash halted the run; crash_point names
  // it. A crashed run returns Ok -- the crash is data, not a driver error.
  bool crashed = false;
  std::optional<net::ProcessCrashPoint> crash_point;

  // Watchdog accounting: stalled requests rolled back and re-executed.
  uint64_t watchdog_requeues = 0;

  // Contention statistics (scheduling-dependent).
  uint64_t claim_conflicts = 0;
  uint64_t claim_wounds = 0;
  uint64_t speculation_aborts = 0;
  uint64_t speculation_retries = 0;

  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

class ServiceDriver {
 public:
  // `dataset` and `graph` must outlive the driver.
  ServiceDriver(const data::Dataset& dataset, const graph::Wpg& graph,
                core::PolicyFactory policy_factory,
                const ServiceConfig& config);

  // Runs the full workload against a fresh registry (truncating any
  // existing WAL at config.wal_path). Deterministic digest/traces across
  // thread counts when the queue model is off (see batch_driver.h); with
  // the queue model on, the shed set additionally depends on
  // config.threads (= queue servers).
  [[nodiscard]] util::Result<ServiceResult> Run();

  // Continues a crashed run from recovered state: re-submits the same
  // workload against the recovered registry, appending to the existing WAL
  // (lsn sequence and checkpoint numbering continue where the crash left
  // off). Requests whose clusters/regions survived the crash resolve as
  // reuse; the rest re-execute deterministically. Scheduled process crashes
  // in config.fault_plan remain armed -- clear them before resuming unless
  // a second crash is intended.
  [[nodiscard]] util::Result<ServiceResult> Resume(
      durability::RecoveredState recovered);

 private:
  const data::Dataset& dataset_;
  const graph::Wpg& graph_;
  core::PolicyFactory policy_factory_;
  ServiceConfig config_;
};

}  // namespace nela::sim

#endif  // NELA_SIM_SERVICE_DRIVER_H_
