#include "sim/workload.h"

#include "util/check.h"

namespace nela::sim {

std::vector<data::UserId> SampleWorkload(uint32_t user_count,
                                         uint32_t request_count,
                                         util::Rng& rng) {
  NELA_CHECK_LE(request_count, user_count);
  return rng.SampleWithoutReplacement(user_count, request_count);
}

}  // namespace nela::sim
