#include "sim/scenario.h"

#include <algorithm>

#include "graph/wpg_builder.h"
#include "util/rng.h"

namespace nela::sim {

util::Result<Scenario> BuildScenario(const ScenarioConfig& config) {
  if (config.user_count == 0) {
    return util::InvalidArgumentError("user_count must be positive");
  }
  util::Rng rng(config.seed);
  data::Dataset dataset;
  if (config.clustered_dataset) {
    data::RoadNetworkParams params;
    params.count = config.user_count;
    // Scale the town count with the population so scaled-down scenarios
    // keep the default per-town population (and therefore the same local
    // dynamics) as the full-size one.
    params.num_cities = std::max<uint32_t>(
        2, static_cast<uint32_t>(
               static_cast<uint64_t>(params.num_cities) * config.user_count /
               data::kCaliforniaPoiCount));
    dataset = data::GenerateRoadNetwork(params, rng);
  } else {
    dataset = data::GenerateUniform(config.user_count, rng);
  }
  graph::WpgBuildParams build;
  build.delta = config.delta;
  build.max_peers = config.max_peers;
  auto graph = graph::BuildWpg(dataset, build);
  if (!graph.ok()) return graph.status();
  return Scenario{std::move(dataset), std::move(graph).value()};
}

}  // namespace nela::sim
