// Spatially sharded anonymizer service: the crash-durable service driver's
// machinery (admission, speculation + commit turnstile, region latches,
// durability, chaos, watchdog) generalized to K spatial shards that each
// own a registry slice, a wound-wait claim coordinator, and a WAL/
// checkpoint stream.
//
//  * Routing -- a cluster::ShardMap grid partitions the unit square; every
//    request is routed to the home shard of its host deterministically
//    (a pure function of the dataset and K, never of execution order).
//  * Admission -- arrivals come from ONE global Poisson clock but queue in
//    per-shard bounded c-server queues (worker threads are distributed
//    across shards as servers, floor one per shard). Sheds are computed
//    sequentially up front, so the shed set is a function of (config,
//    thread count, K). With K=1 the model reduces exactly to
//    ServiceDriver's single queue.
//  * Claims -- one wound-wait ClaimCoordinator per shard arbitrates the
//    users homed there, all sharing the GLOBAL admission-rank priority
//    (ClaimCoordinator::OpenRequestAt). A candidate touching several
//    shards is claimed home-shard-first, then ascending foreign shards;
//    any failure releases everything and retries -- the cross-shard claim
//    handoff. The globally oldest request succeeds everywhere (wound-wait
//    has no one older to block it), so the handoff is deadlock-free
//    without any global lock.
//  * Commit -- a single global turnstile serializes commits in admission
//    order for every K, which is why the final registry digest is
//    INDEPENDENT of the shard count: sharding relabels ownership and
//    arbitration, never what gets clustered (see sharded_registry.h).
//  * Durability -- with a durability directory configured, each turnstile
//    commit is logged as one atomic record to the coordinating (home)
//    shard's WAL stream and checkpoints are cut per shard
//    (durability::ShardedDurableRegistry); recovery is per shard and
//    parallel (durability::RecoverAllShards). With shards=1 a classic
//    single-file WAL (ServiceConfig::wal_path) is also supported, byte-
//    compatible with ServiceDriver's.
//
// ServiceDriver is a thin facade over this driver with shards=1.

#ifndef NELA_SIM_SHARDED_SERVICE_DRIVER_H_
#define NELA_SIM_SHARDED_SERVICE_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/concurrency.h"
#include "cluster/registry.h"
#include "cluster/shard_map.h"
#include "core/policy_factory.h"
#include "data/dataset.h"
#include "durability/recovery.h"
#include "durability/sharded_recovery.h"
#include "graph/wpg.h"
#include "sim/service_driver.h"
#include "util/status.h"

namespace nela::sim {

struct ShardedServiceConfig {
  // Workload, admission, chaos, and classic-durability knobs; see
  // service_driver.h. With shards > 1, service.wal_path must be empty
  // (multi-stream durability goes through durability_dir).
  ServiceConfig service;
  // Spatial shard count K (>= 1).
  uint32_t shards = 1;
  // Base directory of the per-shard WAL/checkpoint streams (layout in
  // durability/shard_layout.h); empty disables sharded durability.
  // Mutually exclusive with service.wal_path / service.checkpoint_dir.
  std::string durability_dir;
};

// Per-shard accounting of one run.
struct ShardRunStats {
  uint32_t shard = 0;
  // Population homed in this shard.
  uint32_t users = 0;
  // Arrivals routed here (admitted + shed).
  uint64_t requests_routed = 0;
  uint64_t admitted = 0;
  uint64_t shed_queue_overflow = 0;
  uint64_t shed_deadline = 0;
  // Clusters this shard owns in the final registry, and how many of those
  // straddle a shard boundary.
  uint64_t clusters_owned = 0;
  uint64_t cross_shard_clusters_owned = 0;
  // Records appended to this shard's WAL stream (sharded durability only).
  uint64_t wal_records = 0;
  // cluster::ShardedRegistry::ShardDigest of this shard's slice.
  uint64_t shard_digest = 0;
  // Simulated queue-wait percentiles over requests admitted here.
  double p50_queue_wait_ms = 0.0;
  double p99_queue_wait_ms = 0.0;
};

struct ShardedServiceResult {
  // The global view, identical in shape (and, for K=1, in content) to
  // ServiceDriver's result.
  ServiceResult service;
  std::vector<ShardRunStats> shards;
  // Fold of the K shard slices merged back into commit order; equals
  // service.registry_digest for every K (the shard-count-invariance
  // identity the tests assert).
  uint64_t concatenated_digest = 0;
  // Committed clusters whose members span more than one shard.
  uint64_t cross_shard_clusters = 0;
  // Successful claim acquisitions that touched more than one shard's
  // coordinator (scheduling-dependent, like the conflict counters).
  uint64_t cross_shard_handoffs = 0;
};

class ShardedServiceDriver {
 public:
  // `dataset` and `graph` must outlive the driver.
  ShardedServiceDriver(const data::Dataset& dataset, const graph::Wpg& graph,
                       core::PolicyFactory policy_factory,
                       const ShardedServiceConfig& config);

  // Runs the full workload against a fresh registry (truncating any
  // existing WAL streams).
  [[nodiscard]] util::Result<ShardedServiceResult> Run();

  // Continues a crashed sharded run: the recovered slices are assembled
  // back into one registry, each stream's lsn sequence continues where its
  // shard's disk state ends, and the same workload is re-submitted --
  // requests whose commits survived resolve as reuse, the rest re-execute
  // deterministically, so the final digests match an uninterrupted run.
  [[nodiscard]] util::Result<ShardedServiceResult> Resume(
      const durability::ShardedRecoveredState& recovered);

  // Continues a crashed classic (shards=1, service.wal_path) run; the entry
  // ServiceDriver::Resume delegates to.
  [[nodiscard]] util::Result<ShardedServiceResult> ResumeClassic(
      durability::RecoveredState recovered);

 private:
  struct RunState;

  [[nodiscard]] util::Result<ShardedServiceResult> RunInternal(
      std::unique_ptr<cluster::Registry> registry,
      uint64_t classic_next_lsn, std::vector<uint64_t> shard_next_lsns,
      std::unordered_map<cluster::ClusterId, uint32_t> stream_of,
      bool truncate_wal, uint64_t checkpoint_seq_start);

  [[nodiscard]] util::Status ProcessRequest(RunState& run, uint64_t ordinal,
                                            bool allow_stall);
  // Baseline-mechanism path: one independent MechanismStage pipeline per
  // request -- no speculation, claims, turnstile, or registry writes.
  [[nodiscard]] util::Status ProcessMechanismRequest(RunState& run,
                                                     uint64_t ordinal);
  bool TryRescue(RunState& run, uint64_t max_rank);
  void AdmitWorkload(RunState& run);
  void FillShedRecord(RunState& run, uint64_t ordinal, ShedCause cause,
                      double arrival_ms, double queue_wait_ms,
                      uint32_t occupancy);
  void FillCrashAbortRecord(RunState& run, uint64_t ordinal,
                            net::ProcessCrashPoint point);

  // Cross-shard claim handoff: claims `members` for `ticket` home-shard-
  // first then ascending, releasing everything on any failure.
  bool TryClaimAcross(RunState& run, cluster::Ticket ticket,
                      cluster::ShardId home,
                      const std::vector<graph::VertexId>& members);
  // Releases `ticket`'s claims in every shard's coordinator.
  void ReleaseAll(RunState& run, cluster::Ticket ticket);
  // Checks (and clears) the wounded flag in every coordinator.
  bool AnyWounded(RunState& run, cluster::Ticket ticket);

  const data::Dataset& dataset_;
  const graph::Wpg& graph_;
  core::PolicyFactory policy_factory_;
  ShardedServiceConfig config_;
};

}  // namespace nela::sim

#endif  // NELA_SIM_SHARDED_SERVICE_DRIVER_H_
