// Experiment scenario: the user population and its proximity graph, built
// from the Table I parameters.

#ifndef NELA_SIM_SCENARIO_H_
#define NELA_SIM_SCENARIO_H_

#include <cstdint>

#include "data/dataset.h"
#include "data/generators.h"
#include "graph/wpg.h"
#include "util/status.h"

namespace nela::sim {

struct ScenarioConfig {
  // Population size (|D|; Table I: 104,770).
  uint32_t user_count = data::kCaliforniaPoiCount;
  // Proximity threshold delta (Table I: 2e-3).
  double delta = 2e-3;
  // Max connected peers M (Table I: 10).
  uint32_t max_peers = 10;
  // Dataset shape: clustered "California-like" (default) or uniform.
  bool clustered_dataset = true;
  // Seed for dataset generation (fixed => reproducible scenarios).
  uint64_t seed = 42;
};

struct Scenario {
  data::Dataset dataset;
  graph::Wpg graph;
};

[[nodiscard]] util::Result<Scenario> BuildScenario(const ScenarioConfig& config);

}  // namespace nela::sim

#endif  // NELA_SIM_SCENARIO_H_
