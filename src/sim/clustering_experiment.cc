#include "sim/clustering_experiment.h"

#include <memory>

#include "cluster/centralized_tconn.h"
#include "cluster/distributed_tconn.h"
#include "cluster/knn_clustering.h"
#include "core/cloaking_engine.h"
#include "lbs/poi_database.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace nela::sim {

const char* ClusteringAlgorithmName(ClusteringAlgorithm algorithm) {
  switch (algorithm) {
    case ClusteringAlgorithm::kDistributedTConn:
      return "t-Conn";
    case ClusteringAlgorithm::kCentralizedTConn:
      return "centralized t-Conn";
    case ClusteringAlgorithm::kKnn:
      return "kNN";
  }
  return "unknown";
}

util::Result<ClusteringExperimentResult> RunClusteringExperiment(
    const Scenario& scenario, ClusteringAlgorithm algorithm,
    const ClusteringExperimentConfig& config) {
  if (config.requests == 0) {
    return util::InvalidArgumentError("requests must be positive");
  }
  if (config.requests > scenario.dataset.size()) {
    return util::InvalidArgumentError("more requests than users");
  }

  // The kNN baseline follows the paper's experimental setup: every request
  // forms a fresh cluster of exactly k users, so its registry must allow a
  // consumed requester to appear in a second cluster.
  cluster::Registry registry(scenario.dataset.size(),
                             algorithm == ClusteringAlgorithm::kKnn);
  std::unique_ptr<cluster::Clusterer> clusterer;
  switch (algorithm) {
    case ClusteringAlgorithm::kDistributedTConn:
      clusterer = std::make_unique<cluster::DistributedTConnClusterer>(
          scenario.graph, config.k, &registry);
      break;
    case ClusteringAlgorithm::kCentralizedTConn:
      clusterer = std::make_unique<cluster::CentralizedTConnClusterer>(
          scenario.graph, config.k, &registry);
      break;
    case ClusteringAlgorithm::kKnn:
      clusterer = std::make_unique<cluster::KnnClusterer>(
          scenario.graph, config.k, &registry, nullptr,
          cluster::KnnTieBreak::kVertexId, cluster::KnnReuse::kAlwaysFresh);
      break;
  }

  // Clustering quality is measured with the optimal (tightest) bounding.
  core::CloakingEngine engine(
      scenario.dataset, std::move(clusterer), &registry,
      core::MakeSecurePolicyFactory(core::BoundingParams{}),
      core::BoundingMode::kOptBaseline);

  const lbs::PoiDatabase database(scenario.dataset);

  util::Rng workload_rng(config.workload_seed);
  const std::vector<data::UserId> hosts = SampleWorkload(
      scenario.dataset.size(), config.requests, workload_rng);

  ClusteringExperimentResult result;
  double area_sum = 0.0;
  double candidate_sum = 0.0;
  double size_sum = 0.0;
  for (data::UserId host : hosts) {
    auto outcome = engine.RequestCloaking(host);
    if (!outcome.ok()) return outcome.status();
    const core::CloakingOutcome& o = outcome.value();
    result.total_clustering_messages += o.clustering_messages;
    if (o.region_reused || o.cluster_reused) ++result.reused_requests;
    if (!o.anonymity_satisfied) ++result.invalid_requests;
    area_sum += o.region.Area();
    candidate_sum += static_cast<double>(database.CountInRange(o.region));
    size_sum += static_cast<double>(
        registry.info(o.cluster_id).members.size());
  }
  const double requests = static_cast<double>(config.requests);
  result.avg_comm_cost =
      static_cast<double>(result.total_clustering_messages) / requests;
  result.avg_cloaked_area = area_sum / requests;
  result.avg_candidates = candidate_sum / requests;
  result.avg_cluster_size = size_sum / requests;
  return result;
}

}  // namespace nela::sim
