// Deterministic multi-threaded batch driver: S cloaking requests over one
// shared registry, executed by a worker pool, with bit-identical results at
// any thread count.
//
// Parallelism model (optimistic concurrency + a commit turnstile):
//
//  * Speculation (parallel): each request snapshots the registry, runs
//    phase-1 clustering on the private snapshot, and claims its candidate's
//    users through the shared wound-wait ClaimCoordinator -- tickets are
//    opened in request-ordinal order, so claim priority equals arrival
//    order and conflicts resolve deterministically in favor of the older
//    request.
//  * Commit turnstile (serialized, strict ordinal order): request o commits
//    only after requests 0..o-1 have committed, and only if its snapshot
//    version still matches the registry (and its claims were not wounded);
//    otherwise the candidate is discarded and phase 1 recomputes serially
//    inside the turnstile. Either way, the registry evolves exactly as a
//    sequential run would.
//  * Region latch (per cluster): the earliest request that finds its
//    committed cluster region-less becomes the cluster's publisher; later
//    requests for the same cluster wait for the published region and reuse
//    it -- reproducing sequential region_reused semantics. Should the
//    publisher degrade (deterministically), the next-oldest waiter promotes
//    itself, again matching the sequential order.
//  * Bounding + publish (parallel): phase 2 runs through the shared
//    core::SecureBoundStage / PublishStage with backoff jitter drawn from
//    the request's private RNG sub-stream (derived from master_seed and the
//    ordinal, never from scheduling).
//
// Per-request traces carry only deterministic facts and are written after
// the request's outcome fully resolves, so concatenated traces -- and the
// registry digest -- are bit-identical across {1, 4, 8, ...} worker
// threads. Wall-clock latency and claim conflict/abort totals are
// scheduling-dependent and reported separately as performance data.
//
// The driver requires a fault-free network (or none): injected loss draws
// from a shared RNG whose order is scheduling-dependent.
//
// Implementation: BatchDriver::Run is a thin facade over sim::ServiceDriver
// (service_driver.h) with admission, durability, chaos, and the watchdog
// all disabled -- the execution machinery above lives there.

#ifndef NELA_SIM_BATCH_DRIVER_H_
#define NELA_SIM_BATCH_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "data/dataset.h"
#include "graph/wpg.h"
#include "net/accounting.h"
#include "util/status.h"

namespace nela::sim {

struct BatchConfig {
  // Anonymity requirement.
  uint32_t k = 5;
  // Number of cloaking requests S (distinct hosts).
  uint32_t requests = 64;
  // Worker threads; 0 behaves as 1.
  uint32_t threads = 1;
  // Seed of every request's private RNG sub-stream (see
  // core::RequestContext::DeriveStreamSeed).
  uint64_t master_seed = 1;
  // Seed selecting which hosts issue requests.
  uint64_t workload_seed = 7;
  // Attach a shared fault-free network so phase-2 traffic is accounted
  // per request (scoped) and globally.
  bool with_network = true;
};

// One request's result. Everything except wall_ms is deterministic for a
// given (scenario, config) regardless of thread count.
struct BatchRequestRecord {
  data::UserId host = 0;
  uint64_t ordinal = 0;
  core::CloakingOutcome outcome;
  // "stage CODE detail" lines (core::TraceSink::ToString).
  std::string trace;
  // Scoped traffic/retry accounting of this request.
  net::ScopeStats net_stats;
  // Wall-clock latency including turnstile/latch waits (scheduling-
  // dependent; excluded from determinism comparisons).
  double wall_ms = 0.0;
};

struct BatchResult {
  // In ordinal order.
  std::vector<BatchRequestRecord> records;
  // FNV-1a digest over the final registry: membership, validity, and the
  // bit patterns of every published region. Bit-identical across thread
  // counts for the same seeds.
  uint64_t registry_digest = 0;
  // Every user ended up in at most one cluster (must always hold).
  bool reciprocity_ok = false;
  uint32_t clusters_formed = 0;
  // Contention statistics (scheduling-dependent).
  uint64_t claim_conflicts = 0;
  uint64_t claim_wounds = 0;
  // Speculative candidates discarded at the turnstile (stale snapshot or
  // wounded claim) and recomputed serially.
  uint64_t speculation_aborts = 0;
  // Claim-failure retries during speculation.
  uint64_t speculation_retries = 0;
  // Throughput over the whole batch.
  double wall_seconds = 0.0;
  double requests_per_sec = 0.0;
  // Per-request wall-latency percentiles (milliseconds).
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
};

class BatchDriver {
 public:
  // `dataset` and `graph` must outlive the driver.
  BatchDriver(const data::Dataset& dataset, const graph::Wpg& graph,
              core::PolicyFactory policy_factory, const BatchConfig& config);

  // Runs one batch against a fresh registry (and network). Repeatable: each
  // call starts from empty state, so two Run() calls with equal config
  // produce identical digests and traces.
  [[nodiscard]] util::Result<BatchResult> Run();

 private:
  const data::Dataset& dataset_;
  const graph::Wpg& graph_;
  core::PolicyFactory policy_factory_;
  BatchConfig config_;
};

}  // namespace nela::sim

#endif  // NELA_SIM_BATCH_DRIVER_H_
