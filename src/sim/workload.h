// Workload sampling: the S distinct users that issue cloaking requests.

#ifndef NELA_SIM_WORKLOAD_H_
#define NELA_SIM_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace nela::sim {

// `request_count` distinct hosts drawn uniformly from [0, user_count) in
// random order. Requires request_count <= user_count.
std::vector<data::UserId> SampleWorkload(uint32_t user_count,
                                         uint32_t request_count,
                                         util::Rng& rng);

}  // namespace nela::sim

#endif  // NELA_SIM_WORKLOAD_H_
