// Driver for the k-clustering experiments (Figs. 9-12).
//
// Runs a workload of S cloaking requests through the engine with the
// chosen phase-1 algorithm and *optimal* bounding (the paper isolates
// clustering quality from bounding error this way), and reports the two
// §VI metrics -- average communication cost (involved users per request)
// and average cloaked-region area -- plus the ingredients of Fig. 10's
// total-cost model.

#ifndef NELA_SIM_CLUSTERING_EXPERIMENT_H_
#define NELA_SIM_CLUSTERING_EXPERIMENT_H_

#include <cstdint>

#include "sim/scenario.h"
#include "util/status.h"

namespace nela::sim {

enum class ClusteringAlgorithm {
  kDistributedTConn,
  kCentralizedTConn,
  kKnn,
};

const char* ClusteringAlgorithmName(ClusteringAlgorithm algorithm);

struct ClusteringExperimentConfig {
  uint32_t k = 10;
  uint32_t requests = 2000;  // S
  uint64_t workload_seed = 7;
};

struct ClusteringExperimentResult {
  // Averages over all S requests (reused requests cost 0), as in §VI.
  double avg_comm_cost = 0.0;
  double avg_cloaked_area = 0.0;
  // POIs inside the cloaked region, averaged over requests: the request
  // payload driver of Fig. 10 (total cost = comm + candidates * ratio).
  double avg_candidates = 0.0;
  double avg_cluster_size = 0.0;
  uint64_t total_clustering_messages = 0;
  uint32_t reused_requests = 0;
  // Requests whose cluster could not reach size k.
  uint32_t invalid_requests = 0;
};

[[nodiscard]] util::Result<ClusteringExperimentResult> RunClusteringExperiment(
    const Scenario& scenario, ClusteringAlgorithm algorithm,
    const ClusteringExperimentConfig& config);

}  // namespace nela::sim

#endif  // NELA_SIM_CLUSTERING_EXPERIMENT_H_
