#include "sim/batch_driver.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "cluster/concurrency.h"
#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "core/pipeline.h"
#include "core/request_context.h"
#include "core/stages.h"
#include "geo/rect.h"
#include "net/network.h"
#include "sim/workload.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace nela::sim {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void MixDigest(uint64_t* digest, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *digest ^= (value >> (8 * i)) & 0xffu;
    *digest *= kFnvPrime;
  }
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double PercentileMs(const std::vector<double>& sorted, double percentile) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(percentile / 100.0 *
                          static_cast<double>(sorted.size())));
  return sorted[index];
}

}  // namespace

struct BatchDriver::RunState {
  cluster::Registry registry;
  std::unique_ptr<net::Network> network;
  cluster::ClaimCoordinator coordinator;
  std::vector<data::UserId> hosts;
  std::vector<cluster::Ticket> tickets;
  std::vector<BatchRequestRecord> records;
  std::atomic<uint64_t> next_request{0};
  std::atomic<uint64_t> speculation_retries{0};
  std::atomic<uint64_t> speculation_aborts{0};

  // One mutex coordinates both the commit turnstile and the per-cluster
  // region latches (decisions interleave; contention is negligible next to
  // the clustering/bounding work done outside it).
  std::mutex mu;
  std::condition_variable turn_cv;
  std::condition_variable region_cv;
  uint64_t next_commit = 0;
  struct Latch {
    bool computing = false;
    // Ordinals whose region decision is unresolved; the smallest becomes
    // the (next) publisher -- the deterministic sequential order.
    std::set<uint64_t> waiters;
  };
  std::unordered_map<cluster::ClusterId, Latch> latches;

  util::Status first_error;

  explicit RunState(uint32_t user_count)
      : registry(user_count), coordinator(user_count) {}
};

BatchDriver::BatchDriver(const data::Dataset& dataset, const graph::Wpg& graph,
                         core::PolicyFactory policy_factory,
                         const BatchConfig& config)
    : dataset_(dataset), graph_(graph),
      policy_factory_(std::move(policy_factory)), config_(config) {
  NELA_CHECK_EQ(dataset.size(), graph.vertex_count());
  NELA_CHECK(policy_factory_ != nullptr);
  NELA_CHECK_GE(config_.k, 1u);
}

util::Status BatchDriver::ProcessRequest(RunState& run, uint64_t ordinal) {
  const util::WallTimer timer;
  const data::UserId host = run.hosts[ordinal];
  core::RequestContext ctx(config_.master_seed, ordinal, host);
  const cluster::Ticket ticket = run.tickets[ordinal];

  // --- Speculation (parallel, untraced: the candidate may be discarded,
  // and claim conflicts are scheduling-dependent) ---------------------------
  uint64_t spec_version = 0;
  uint64_t spec_involved = 0;
  std::vector<cluster::ClusterInfo> candidate;
  bool holds_claim = false;
  while (true) {
    (void)run.coordinator.WasWounded(ticket);  // clear any stale wound
    std::unique_ptr<cluster::Registry> scratch =
        run.registry.Snapshot(&spec_version);
    if (scratch->IsClustered(host)) break;  // reuse; the turnstile decides
    const cluster::ClusterId first_new = scratch->cluster_count();
    cluster::DistributedTConnClusterer clusterer(graph_, config_.k,
                                                 scratch.get());
    auto speculative = clusterer.ClusterFor(host);
    if (!speculative.ok()) break;  // reproduced serially at the turnstile
    spec_involved = speculative.value().involved_users;
    std::vector<graph::VertexId> claim_set;
    for (cluster::ClusterId id = first_new; id < scratch->cluster_count();
         ++id) {
      const cluster::ClusterInfo& info = scratch->info(id);
      claim_set.insert(claim_set.end(), info.members.begin(),
                       info.members.end());
      candidate.push_back(info);
    }
    if (candidate.empty()) break;
    if (!run.coordinator.TryClaim(ticket, claim_set)) {
      // An older request holds users we need; it always finishes without
      // waiting on us (wound-wait), so re-speculate on a fresher snapshot.
      run.speculation_retries.fetch_add(1, std::memory_order_relaxed);
      candidate.clear();
      std::this_thread::yield();
      continue;
    }
    holds_claim = true;
    break;
  }

  // --- Commit turnstile: requests commit membership in strict ordinal
  // order, so the registry evolves exactly as in a sequential run ----------
  bool resolved_hit = false;
  cluster::ClusterId cid = cluster::kNoCluster;
  uint64_t involved = 0;
  util::Status commit_status;
  {
    std::unique_lock<std::mutex> lock(run.mu);
    run.turn_cv.wait(lock, [&] { return run.next_commit == ordinal; });
    if (run.registry.IsClustered(host)) {
      resolved_hit = true;
      cid = run.registry.ClusterOf(host);
    } else {
      const bool commit_speculation = holds_claim &&
                                      !run.coordinator.WasWounded(ticket) &&
                                      spec_version == run.registry.version();
      if (commit_speculation) {
        for (const cluster::ClusterInfo& info : candidate) {
          auto committed = run.registry.Register(info.members,
                                                 info.connectivity,
                                                 info.valid);
          if (!committed.ok()) {
            commit_status = committed.status();
            break;
          }
        }
        involved = spec_involved;
      } else {
        // Stale snapshot or wounded claim: recompute phase 1 serially
        // against the authoritative registry, inside the turnstile.
        run.speculation_aborts.fetch_add(1, std::memory_order_relaxed);
        cluster::DistributedTConnClusterer clusterer(graph_, config_.k,
                                                     &run.registry);
        auto recomputed = clusterer.ClusterFor(host);
        if (!recomputed.ok()) {
          commit_status = recomputed.status();
        } else {
          involved = recomputed.value().involved_users;
        }
      }
      if (commit_status.ok()) {
        cid = run.registry.ClusterOf(host);
        NELA_CHECK_NE(cid, cluster::kNoCluster);
      }
    }
    // Join the cluster's publisher queue before opening the turnstile:
    // publisher priority is by ordinal even though resolution runs later,
    // in parallel.
    if (commit_status.ok()) run.latches[cid].waiters.insert(ordinal);
    ++run.next_commit;
    run.turn_cv.notify_all();
  }

  BatchRequestRecord& record = run.records[ordinal];
  record.host = host;
  record.ordinal = ordinal;
  if (!commit_status.ok()) {
    run.coordinator.Release(ticket);
    ctx.trace().Record("cluster", commit_status.code(),
                       commit_status.message());
    record.trace = ctx.trace().ToString();
    record.wall_ms = timer.ElapsedMillis();
    return commit_status;
  }

  // --- Region resolution: reuse the cluster's published region, or become
  // its publisher (smallest unresolved ordinal first -- should an earlier
  // publisher degrade, the next-oldest waiter promotes itself, exactly the
  // sequential recovery order) ---------------------------------------------
  bool reuse = false;
  {
    std::unique_lock<std::mutex> lock(run.mu);
    while (true) {
      if (run.registry.RegionOf(cid).has_value()) {
        reuse = true;
        run.latches[cid].waiters.erase(ordinal);
        break;
      }
      RunState::Latch& latch = run.latches[cid];
      if (!latch.computing && *latch.waiters.begin() == ordinal) {
        latch.computing = true;
        latch.waiters.erase(ordinal);
        break;
      }
      run.region_cv.wait(lock);
    }
  }

  const cluster::ClusterInfo& info = run.registry.info(cid);
  core::PipelineState state;
  state.host = host;
  state.k = config_.k;
  state.coordinator = &run.coordinator;
  state.ticket = ticket;
  state.cluster_info = &info;
  state.outcome.cluster_id = cid;
  state.outcome.cluster_reused = resolved_hit;
  state.outcome.clustering_messages = involved;
  state.outcome.anonymity_satisfied = info.valid;

  // Deterministic stage records mirroring the sequential pipeline's wording
  // (written only now, after the outcome is fully resolved).
  auto append = [&](const char* stage, util::StatusCode code, bool ran,
                    std::string detail) {
    core::StageRecord stage_record;
    stage_record.stage = stage;
    stage_record.code = code;
    stage_record.ran = ran;
    stage_record.detail = std::move(detail);
    ctx.trace().Record(stage_record.stage, stage_record.code,
                       stage_record.detail);
    state.outcome.degradation.stages.push_back(std::move(stage_record));
  };

  util::Status status;
  if (reuse) {
    state.outcome.region = *run.registry.RegionOf(cid);
    state.outcome.region_reused = true;
    append("resolve_reuse", util::StatusCode::kOk, true,
           "hit cluster=" + std::to_string(cid) + " region=reused");
    for (const char* stage :
         {"cluster", "claim_commit", "secure_bound", "publish"}) {
      append(stage, util::StatusCode::kOk, false, "skipped");
    }
    run.coordinator.Release(ticket);
  } else {
    if (resolved_hit) {
      append("resolve_reuse", util::StatusCode::kOk, true,
             "hit cluster=" + std::to_string(cid) + " region=pending");
      append("cluster", util::StatusCode::kOk, true, "resolved");
    } else {
      append("resolve_reuse", util::StatusCode::kOk, true, "miss");
      append("cluster", util::StatusCode::kOk, true,
             "cluster=" + std::to_string(cid) +
                 " members=" + std::to_string(info.members.size()) +
                 " valid=" + std::to_string(info.valid ? 1 : 0) +
                 " involved=" + std::to_string(involved));
    }
    core::ClaimCommitStage claim_commit;
    core::SecureBoundStage::Config bound_config;
    bound_config.dataset = &dataset_;
    bound_config.policy_factory = &policy_factory_;
    bound_config.network = run.network.get();
    // Backoff jitter (if the network ever delays) draws from the request's
    // private sub-stream, never from shared state.
    bound_config.jitter_from_context = true;
    core::SecureBoundStage secure_bound(bound_config);
    core::PublishStage publish(&run.registry, &secure_bound,
                               run.network.get());
    const std::vector<core::Stage*> stages = {&claim_commit, &secure_bound,
                                              &publish};
    status = core::RunPipeline(stages, ctx, state);  // releases the ticket
    {
      std::lock_guard<std::mutex> lock(run.mu);
      run.latches[cid].computing = false;
      run.region_cv.notify_all();
    }
  }
  core::FinalizeDegradation(ctx, &state.outcome);

  record.outcome = std::move(state.outcome);
  record.trace = ctx.trace().ToString();
  record.net_stats = ctx.scope().stats();
  record.wall_ms = timer.ElapsedMillis();
  return status;
}

util::Result<BatchResult> BatchDriver::Run() {
  const uint32_t user_count = dataset_.size();
  if (config_.requests == 0) {
    return util::InvalidArgumentError("batch needs at least one request");
  }
  if (config_.requests > user_count) {
    return util::InvalidArgumentError(
        "request count exceeds the user population");
  }

  RunState run(user_count);
  if (config_.with_network) {
    run.network = std::make_unique<net::Network>(user_count);
  }
  util::Rng workload_rng(config_.workload_seed);
  run.hosts = SampleWorkload(user_count, config_.requests, workload_rng);
  run.tickets.reserve(config_.requests);
  for (uint32_t i = 0; i < config_.requests; ++i) {
    run.tickets.push_back(run.coordinator.OpenRequest());
  }
  run.records.resize(config_.requests);

  const uint32_t thread_count = std::max(1u, config_.threads);
  const util::WallTimer wall_timer;
  auto worker = [&run, this] {
    while (true) {
      const uint64_t ordinal =
          run.next_request.fetch_add(1, std::memory_order_relaxed);
      if (ordinal >= run.hosts.size()) break;
      const util::Status status = ProcessRequest(run, ordinal);
      if (!status.ok()) {
        std::lock_guard<std::mutex> lock(run.mu);
        if (run.first_error.ok()) run.first_error = status;
      }
    }
  };
  // All workers run on the shared fork-join pool; worker identity is
  // irrelevant (ordinals come from the atomic counter and commits are
  // serialized by the turnstile), so the digest stays bit-identical at any
  // thread count.
  util::ThreadPool pool(thread_count);
  pool.RunOnAllThreads([&worker](uint32_t) { worker(); });
  const double wall_seconds = wall_timer.ElapsedSeconds();
  if (!run.first_error.ok()) return run.first_error;

  BatchResult result;
  result.records = std::move(run.records);
  result.wall_seconds = wall_seconds;
  result.requests_per_sec =
      static_cast<double>(config_.requests) / std::max(wall_seconds, 1e-9);
  result.claim_conflicts = run.coordinator.conflicts_observed();
  result.claim_wounds = run.coordinator.wounds_inflicted();
  result.speculation_aborts =
      run.speculation_aborts.load(std::memory_order_relaxed);
  result.speculation_retries =
      run.speculation_retries.load(std::memory_order_relaxed);

  // Registry digest + reciprocity audit over the final state.
  const uint32_t clusters = run.registry.cluster_count();
  result.clusters_formed = clusters;
  std::vector<uint32_t> membership_count(user_count, 0);
  uint64_t digest = kFnvOffset;
  for (cluster::ClusterId id = 0; id < clusters; ++id) {
    const cluster::ClusterInfo& info = run.registry.info(id);
    MixDigest(&digest, info.members.size());
    for (graph::VertexId member : info.members) {
      MixDigest(&digest, member);
      ++membership_count[member];
    }
    MixDigest(&digest, info.valid ? 1 : 0);
    const std::optional<geo::Rect> region = run.registry.RegionOf(id);
    if (region.has_value()) {
      MixDigest(&digest, DoubleBits(region->min_x()));
      MixDigest(&digest, DoubleBits(region->min_y()));
      MixDigest(&digest, DoubleBits(region->max_x()));
      MixDigest(&digest, DoubleBits(region->max_y()));
    } else {
      MixDigest(&digest, 0xe0e0e0e0ull);
    }
  }
  result.registry_digest = digest;
  result.reciprocity_ok = true;
  for (uint32_t count : membership_count) {
    if (count > 1) result.reciprocity_ok = false;
  }

  std::vector<double> latencies;
  latencies.reserve(result.records.size());
  for (const BatchRequestRecord& record : result.records) {
    latencies.push_back(record.wall_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_latency_ms = PercentileMs(latencies, 50.0);
  result.p99_latency_ms = PercentileMs(latencies, 99.0);
  return result;
}

}  // namespace nela::sim
