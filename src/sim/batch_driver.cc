#include "sim/batch_driver.h"

#include <utility>

#include "sim/service_driver.h"
#include "util/check.h"

namespace nela::sim {

BatchDriver::BatchDriver(const data::Dataset& dataset, const graph::Wpg& graph,
                         core::PolicyFactory policy_factory,
                         const BatchConfig& config)
    : dataset_(dataset), graph_(graph),
      policy_factory_(std::move(policy_factory)), config_(config) {
  NELA_CHECK_EQ(dataset.size(), graph.vertex_count());
  NELA_CHECK(policy_factory_ != nullptr);
  NELA_CHECK_GE(config_.k, 1u);
}

util::Result<BatchResult> BatchDriver::Run() {
  // The batch driver is the service driver with admission, durability,
  // chaos, and the watchdog all off: every request is admitted at t=0 with
  // no deadline, nothing is logged, and no crash can fire -- which reduces
  // the service loop to exactly the deterministic batch semantics this
  // header documents.
  ServiceConfig service_config;
  service_config.k = config_.k;
  service_config.requests = config_.requests;
  service_config.threads = config_.threads;
  service_config.master_seed = config_.master_seed;
  service_config.workload_seed = config_.workload_seed;
  service_config.with_network = config_.with_network;

  ServiceDriver driver(dataset_, graph_, policy_factory_, service_config);
  auto service = driver.Run();
  if (!service.ok()) return service.status();
  ServiceResult& full = service.value();

  BatchResult result;
  result.records.reserve(full.records.size());
  for (ServiceRequestRecord& record : full.records) {
    BatchRequestRecord batch_record;
    batch_record.host = record.host;
    batch_record.ordinal = record.ordinal;
    batch_record.outcome = std::move(record.outcome);
    batch_record.trace = std::move(record.trace);
    batch_record.net_stats = record.net_stats;
    batch_record.wall_ms = record.wall_ms;
    result.records.push_back(std::move(batch_record));
  }
  result.registry_digest = full.registry_digest;
  result.reciprocity_ok = full.reciprocity_ok;
  result.clusters_formed = full.clusters_formed;
  result.claim_conflicts = full.claim_conflicts;
  result.claim_wounds = full.claim_wounds;
  result.speculation_aborts = full.speculation_aborts;
  result.speculation_retries = full.speculation_retries;
  result.wall_seconds = full.wall_seconds;
  result.requests_per_sec = full.requests_per_sec;
  result.p50_latency_ms = full.p50_latency_ms;
  result.p99_latency_ms = full.p99_latency_ms;
  return result;
}

}  // namespace nela::sim
