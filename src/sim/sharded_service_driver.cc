#include "sim/sharded_service_driver.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <queue>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include <cstring>

#include "cluster/concurrency.h"
#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "cluster/sharded_registry.h"
#include "core/mechanism.h"
#include "core/pipeline.h"
#include "core/request_context.h"
#include "core/stages.h"
#include "durability/checkpoint.h"
#include "durability/crash_scheduler.h"
#include "durability/durable_registry.h"
#include "durability/sharded_durable_registry.h"
#include "durability/wal.h"
#include "geo/rect.h"
#include "mechanisms/factory.h"
#include "net/network.h"
#include "sim/workload.h"
#include "util/mutex.h"
#include "util/rng.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace nela::sim {

namespace {

double PercentileMs(const std::vector<double>& sorted, double percentile) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(percentile / 100.0 *
                          static_cast<double>(sorted.size())));
  return sorted[index];
}

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

util::Status CrashError(net::ProcessCrashPoint point) {
  return util::UnavailableError(
      std::string("simulated process crash at ") +
      net::ProcessCrashPointName(point));
}

// Routes PublishStage's region write through the classic single-file WAL.
class ClassicRegionWriter : public core::RegionWriter {
 public:
  explicit ClassicRegionWriter(durability::DurableRegistry* durable)
      : durable_(durable) {}
  [[nodiscard]] util::Status WriteRegion(cluster::ClusterId id,
                                         const geo::Rect& region) override {
    return durable_->SetRegion(id, region);
  }

 private:
  durability::DurableRegistry* durable_;
};

// Routes PublishStage's region write to the WAL stream that logged the
// cluster's registering commit.
class ShardedRegionWriter : public core::RegionWriter {
 public:
  explicit ShardedRegionWriter(durability::ShardedDurableRegistry* durable)
      : durable_(durable) {}
  [[nodiscard]] util::Status WriteRegion(cluster::ClusterId id,
                                         const geo::Rect& region) override {
    return durable_->SetRegion(id, region);
  }

 private:
  durability::ShardedDurableRegistry* durable_;
};

}  // namespace

struct ShardedServiceDriver::RunState {
  cluster::ShardMap map;
  // Owns the authoritative registry; `registry` below aliases its store.
  std::unique_ptr<cluster::ShardedRegistry> sharded;
  cluster::Registry* registry = nullptr;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<durability::WalWriter> wal;
  std::unique_ptr<durability::CrashPointScheduler> crash;
  std::unique_ptr<durability::DurableRegistry> durable;
  std::unique_ptr<durability::ShardedDurableRegistry> sharded_durable;
  std::unique_ptr<core::RegionWriter> region_writer;
  // Non-null when a baseline mechanism serves the requests (ServiceConfig::
  // mechanism != kClusterBound); ProcessRequest then routes every request
  // through the independent mechanism path.
  std::unique_ptr<core::Mechanism> mechanism;
  // One wound-wait arbiter per shard, all sharing the global admission-rank
  // ticket space (OpenRequestAt).
  std::vector<std::unique_ptr<cluster::ClaimCoordinator>> coordinators;
  std::vector<data::UserId> hosts;
  // Ordinal -> home shard of the host (the routing decision).
  std::vector<cluster::ShardId> home_of;
  std::vector<ServiceRequestRecord> records;
  // Ordinal -> delivered (an outcome -- success, degradation, or shed --
  // was finalized into its record). Written by the owning worker; read
  // after the pool joins.
  std::vector<uint8_t> delivered;
  // Admitted ordinals in ordinal order; workers pull indexes into this.
  std::vector<uint64_t> admitted_ordinals;
  // Ordinal -> dense rank among admitted requests (drives the turnstile).
  std::unordered_map<uint64_t, uint64_t> commit_rank;
  std::unordered_map<uint64_t, cluster::Ticket> tickets;
  std::atomic<uint64_t> next_work{0};
  std::atomic<uint64_t> speculation_retries{0};
  std::atomic<uint64_t> speculation_aborts{0};
  std::atomic<uint64_t> watchdog_requeues{0};
  std::atomic<uint64_t> cross_shard_handoffs{0};

  // One mutex coordinates the commit turnstile, the per-cluster region
  // latches, the watchdog parking lot, and the halt flag (decisions
  // interleave; contention is negligible next to the clustering/bounding
  // work done outside it). Lock hierarchy: mu precedes every lock taken
  // inside the turnstile -- each shard coordinator's lock, the (sharded)
  // durable registry's, the WAL's, and the registry's. mu is a local
  // capability (RunState never escapes RunInternal), so the cross-class
  // legs of that order are declared where the foreign locks can name each
  // other (durable_registry.h) and documented here for the rest.
  util::Mutex mu;
  util::CondVar turn_cv;
  util::CondVar region_cv;
  uint64_t next_commit GUARDED_BY(mu) = 0;
  struct Latch {
    bool computing = false;
    // Ordinals whose region decision is unresolved; the smallest becomes
    // the (next) publisher -- the deterministic sequential order.
    std::set<uint64_t> waiters;
  };
  std::unordered_map<cluster::ClusterId, Latch> latches GUARDED_BY(mu);
  // Stalled requests awaiting rescue (ordinal -> ticket still holding its
  // claims). Ordered so the oldest is rescued first.
  std::map<uint64_t, cluster::Ticket> parked GUARDED_BY(mu);
  // Set when a scheduled process crash fires: workers unwind without
  // delivering further outcomes, exactly as a dying process would.
  bool halted GUARDED_BY(mu) = false;
  std::optional<net::ProcessCrashPoint> crash_point GUARDED_BY(mu);
  uint64_t commits_since_checkpoint GUARDED_BY(mu) = 0;
  uint64_t checkpoint_seq GUARDED_BY(mu) = 0;
  uint64_t checkpoints_written GUARDED_BY(mu) = 0;

  util::Status first_error GUARDED_BY(mu);

  RunState(const data::Dataset& dataset, uint32_t shard_count)
      : map(dataset, shard_count) {
    coordinators.reserve(shard_count);
    for (uint32_t shard = 0; shard < shard_count; ++shard) {
      coordinators.push_back(
          std::make_unique<cluster::ClaimCoordinator>(dataset.size()));
    }
  }

  // Wakes every waiter so the halt propagates.
  void HaltLocked(net::ProcessCrashPoint point) REQUIRES(mu) {
    halted = true;
    if (!crash_point.has_value()) crash_point = point;
    turn_cv.NotifyAll();
    region_cv.NotifyAll();
  }
};

ShardedServiceDriver::ShardedServiceDriver(const data::Dataset& dataset,
                                           const graph::Wpg& graph,
                                           core::PolicyFactory policy_factory,
                                           const ShardedServiceConfig& config)
    : dataset_(dataset), graph_(graph),
      policy_factory_(std::move(policy_factory)), config_(config) {
  NELA_CHECK_EQ(dataset.size(), graph.vertex_count());
  NELA_CHECK(policy_factory_ != nullptr);
  NELA_CHECK_GE(config_.service.k, 1u);
  NELA_CHECK_GE(config_.shards, 1u);
}

bool ShardedServiceDriver::TryClaimAcross(
    RunState& run, cluster::Ticket ticket, cluster::ShardId home,
    const std::vector<graph::VertexId>& members) {
  const uint32_t shard_count = run.map.shard_count();
  if (shard_count == 1) {
    return run.coordinators[0]->TryClaim(ticket, members);
  }
  // Bucket the claim set by arbiter: user u is always claimed through the
  // coordinator of its home shard, whoever asks.
  std::vector<std::vector<graph::VertexId>> buckets(shard_count);
  for (graph::VertexId member : members) {
    buckets[run.map.HomeShardOf(member)].push_back(member);
  }
  std::vector<cluster::ShardId> order;
  if (!buckets[home].empty()) order.push_back(home);
  for (cluster::ShardId shard = 0; shard < shard_count; ++shard) {
    if (shard != home && !buckets[shard].empty()) order.push_back(shard);
  }
  // Home-first, then ascending foreign shards; all-or-nothing. Liveness:
  // the globally oldest ticket never fails (wound-wait leaves it no one
  // older to lose to), and everyone else releases everything on failure,
  // so no hold-and-wait cycle can form across coordinators.
  for (size_t taken = 0; taken < order.size(); ++taken) {
    if (!run.coordinators[order[taken]]->TryClaim(ticket,
                                                  buckets[order[taken]])) {
      for (size_t held = 0; held < taken; ++held) {
        run.coordinators[order[held]]->Release(ticket);
      }
      return false;
    }
  }
  if (order.size() > 1) {
    run.cross_shard_handoffs.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

void ShardedServiceDriver::ReleaseAll(RunState& run, cluster::Ticket ticket) {
  for (std::unique_ptr<cluster::ClaimCoordinator>& coordinator :
       run.coordinators) {
    coordinator->Release(ticket);
  }
}

bool ShardedServiceDriver::AnyWounded(RunState& run, cluster::Ticket ticket) {
  bool wounded = false;
  // Every coordinator is asked (the call clears the flag), so a wound in a
  // foreign shard is never left to leak into a later request's check.
  for (std::unique_ptr<cluster::ClaimCoordinator>& coordinator :
       run.coordinators) {
    if (coordinator->WasWounded(ticket)) wounded = true;
  }
  return wounded;
}

void ShardedServiceDriver::FillShedRecord(RunState& run, uint64_t ordinal,
                                          ShedCause cause, double arrival_ms,
                                          double queue_wait_ms,
                                          uint32_t occupancy) {
  const ServiceConfig& service = config_.service;
  ServiceRequestRecord& record = run.records[ordinal];
  const data::UserId host = run.hosts[ordinal];
  core::RequestContext ctx(service.master_seed, ordinal, host);
  record.host = host;
  record.ordinal = ordinal;
  record.admitted = false;
  record.shed = cause;
  record.arrival_ms = arrival_ms;
  record.queue_wait_ms = queue_wait_ms;

  core::StageRecord stage;
  stage.stage = "admission";
  stage.ran = true;
  if (cause == ShedCause::kQueueOverflow) {
    stage.code = util::StatusCode::kUnavailable;
    stage.detail = "admission queue full (occupancy=" +
                   std::to_string(occupancy) + " capacity=" +
                   std::to_string(service.queue_capacity) + "); request shed";
  } else {
    stage.code = util::StatusCode::kDeadlineExceeded;
    stage.detail = "simulated queue wait " + std::to_string(queue_wait_ms) +
                   "ms exceeds deadline " +
                   std::to_string(service.deadline_ms) + "ms; request shed";
  }
  ctx.trace().Record(stage.stage, stage.code, stage.detail);
  record.outcome.anonymity_satisfied = false;
  record.outcome.degradation.stages.push_back(std::move(stage));
  core::FinalizeDegradation(ctx, &record.outcome);
  record.trace = ctx.trace().ToString();
  run.delivered[ordinal] = 1;
}

void ShardedServiceDriver::FillCrashAbortRecord(RunState& run,
                                                uint64_t ordinal,
                                                net::ProcessCrashPoint point) {
  ServiceRequestRecord& record = run.records[ordinal];
  const data::UserId host = run.hosts[ordinal];
  core::RequestContext ctx(config_.service.master_seed, ordinal, host);
  record.host = host;
  record.ordinal = ordinal;
  record.aborted_by_crash = true;

  core::StageRecord stage;
  stage.stage = "service";
  stage.ran = true;
  stage.code = util::StatusCode::kUnavailable;
  stage.detail = std::string("aborted by simulated process crash at ") +
                 net::ProcessCrashPointName(point) +
                 "; durable state recovers on restart";
  ctx.trace().Record(stage.stage, stage.code, stage.detail);
  record.outcome = core::CloakingOutcome{};
  record.outcome.anonymity_satisfied = false;
  record.outcome.degradation.stages.push_back(std::move(stage));
  core::FinalizeDegradation(ctx, &record.outcome);
  record.trace = ctx.trace().ToString();
  run.delivered[ordinal] = 1;
}

void ShardedServiceDriver::AdmitWorkload(RunState& run) {
  const ServiceConfig& service = config_.service;
  const uint32_t request_count = static_cast<uint32_t>(run.hosts.size());
  run.admitted_ordinals.reserve(request_count);

  if (service.offered_rate_per_ms <= 0.0) {
    // Closed batch: everything arrives at t=0 and is admitted with zero
    // wait; the queue model (and its thread-count dependence) is off.
    for (uint64_t ordinal = 0; ordinal < request_count; ++ordinal) {
      ServiceRequestRecord& record = run.records[ordinal];
      record.admitted = true;
      run.commit_rank.emplace(ordinal, run.admitted_ordinals.size());
      run.admitted_ordinals.push_back(ordinal);
    }
    return;
  }

  // Deterministic per-shard c-server queues simulated ahead of execution:
  // arrivals on ONE global Poisson clock, each routed to its home shard's
  // queue, FIFO assignment to that shard's earliest-free server. Worker
  // threads are spread across shards as servers (floor one per shard); at
  // K=1 this is exactly ServiceDriver's single c-server queue. The RNG
  // stream derives from the workload seed, so the shed set is a function
  // of (config, thread count, K) only.
  util::Rng arrival_rng(service.workload_seed ^ 0x9e3779b97f4a7c15ull);
  const uint32_t shard_count = run.map.shard_count();
  std::vector<uint32_t> servers(shard_count, 0);
  const uint32_t threads = std::max(1u, service.threads);
  for (uint32_t t = 0; t < threads; ++t) ++servers[t % shard_count];
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    servers[shard] = std::max(1u, servers[shard]);
  }

  using MinHeap = std::priority_queue<double, std::vector<double>,
                                      std::greater<double>>;
  // Earliest free time per server, per shard.
  std::vector<MinHeap> free_at(shard_count);
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    for (uint32_t s = 0; s < servers[shard]; ++s) free_at[shard].push(0.0);
  }
  // Start times of admitted requests per shard, non-decreasing under FIFO
  // service -- a shard queue's occupancy at time t is the count of its
  // admitted starts > t.
  std::vector<std::vector<double>> start_times(shard_count);

  double clock_ms = 0.0;
  for (uint64_t ordinal = 0; ordinal < request_count; ++ordinal) {
    clock_ms += arrival_rng.NextExponential(service.offered_rate_per_ms);
    const double arrival = clock_ms;
    const cluster::ShardId shard = run.home_of[ordinal];
    std::vector<double>& starts = start_times[shard];
    const auto waiting = static_cast<uint32_t>(
        starts.end() -
        std::upper_bound(starts.begin(), starts.end(), arrival));
    if (service.queue_capacity > 0 && waiting >= service.queue_capacity) {
      FillShedRecord(run, ordinal, ShedCause::kQueueOverflow, arrival, 0.0,
                     waiting);
      continue;
    }
    const double earliest_free = free_at[shard].top();
    const double wait = std::max(0.0, earliest_free - arrival);
    if (wait > service.deadline_ms) {
      FillShedRecord(run, ordinal, ShedCause::kDeadline, arrival, wait,
                     waiting);
      continue;
    }
    free_at[shard].pop();
    const double start = arrival + wait;
    free_at[shard].push(start + service.service_time_ms);
    starts.push_back(start);
    ServiceRequestRecord& record = run.records[ordinal];
    record.admitted = true;
    record.arrival_ms = arrival;
    record.queue_wait_ms = wait;
    run.commit_rank.emplace(ordinal, run.admitted_ordinals.size());
    run.admitted_ordinals.push_back(ordinal);
  }
}

bool ShardedServiceDriver::TryRescue(RunState& run, uint64_t max_rank) {
  uint64_t parked_ordinal = 0;
  cluster::Ticket parked_ticket = cluster::kNoTicket;
  {
    util::MutexLock lock(run.mu);
    if (run.halted) return false;
    bool found = false;
    for (const auto& [ordinal, ticket] : run.parked) {
      // Only rescue a request whose commit precedes `max_rank`: rescuing a
      // younger request from inside an older one's turnstile wait would
      // re-enter a wait that the rescuer itself blocks.
      if (run.commit_rank.at(ordinal) < max_rank) {
        parked_ordinal = ordinal;
        parked_ticket = ticket;
        found = true;
        break;
      }
    }
    if (!found) return false;
    run.parked.erase(parked_ordinal);
  }
  // Roll the stalled attempt's claims back and re-execute from scratch; the
  // abandoned attempt consumed nothing from the request's context, so the
  // re-execution is bit-identical to a run without the stall.
  ReleaseAll(run, parked_ticket);
  run.watchdog_requeues.fetch_add(1, std::memory_order_relaxed);
  const util::Status status =
      ProcessRequest(run, parked_ordinal, /*allow_stall=*/false);
  if (!status.ok()) {
    util::MutexLock lock(run.mu);
    if (run.first_error.ok()) run.first_error = status;
  }
  return true;
}

util::Status ShardedServiceDriver::ProcessMechanismRequest(RunState& run,
                                                           uint64_t ordinal) {
  const ServiceConfig& service = config_.service;
  const util::WallTimer timer;
  const data::UserId host = run.hosts[ordinal];
  ServiceRequestRecord& record = run.records[ordinal];
  core::RequestContext ctx(service.master_seed, ordinal, host);
  ctx.set_deadline_ms(service.deadline_ms);
  if (record.queue_wait_ms > 0.0) {
    ctx.scope().RecordBackoff(record.queue_wait_ms);
  }

  core::PipelineState state;
  state.host = host;
  state.k = service.k;
  core::MechanismStage stage(run.mechanism.get());
  const std::vector<core::Stage*> stages = {&stage};
  const util::Status status = core::RunPipeline(stages, ctx, state);
  core::FinalizeDegradation(ctx, &state.outcome);

  record.host = host;
  record.ordinal = ordinal;
  record.outcome = std::move(state.outcome);
  record.trace = ctx.trace().ToString();
  record.net_stats = ctx.scope().stats();
  record.wall_ms = timer.ElapsedMillis();
  run.delivered[ordinal] = 1;
  return status;
}

util::Status ShardedServiceDriver::ProcessRequest(RunState& run,
                                                  uint64_t ordinal,
                                                  bool allow_stall) {
  if (run.mechanism != nullptr) return ProcessMechanismRequest(run, ordinal);
  const ServiceConfig& service = config_.service;
  const util::WallTimer timer;
  const data::UserId host = run.hosts[ordinal];
  const cluster::ShardId home = run.home_of[ordinal];
  ServiceRequestRecord& record = run.records[ordinal];
  const uint64_t rank = run.commit_rank.at(ordinal);
  core::RequestContext ctx(service.master_seed, ordinal, host);
  ctx.set_deadline_ms(service.deadline_ms);
  // The simulated queue wait counts against the request's deadline budget
  // exactly like network backoff would.
  if (record.queue_wait_ms > 0.0) {
    ctx.scope().RecordBackoff(record.queue_wait_ms);
  }
  const cluster::Ticket ticket = run.tickets.at(ordinal);

  // --- Speculation (parallel, untraced: the candidate may be discarded,
  // and claim conflicts are scheduling-dependent) ---------------------------
  uint64_t spec_version = 0;
  uint64_t spec_involved = 0;
  std::vector<cluster::ClusterInfo> candidate;
  bool holds_claim = false;
  while (true) {
    {
      util::MutexLock lock(run.mu);
      if (run.halted) {
        ReleaseAll(run, ticket);
        return util::Status::Ok();  // aborted; reported as a crash abort
      }
    }
    (void)AnyWounded(run, ticket);  // clear any stale wound
    std::unique_ptr<cluster::Registry> scratch =
        run.registry->Snapshot(&spec_version);
    if (scratch->IsClustered(host)) break;  // reuse; the turnstile decides
    const cluster::ClusterId first_new = scratch->cluster_count();
    cluster::DistributedTConnClusterer clusterer(graph_, service.k,
                                                 scratch.get());
    auto speculative = clusterer.ClusterFor(host);
    if (!speculative.ok()) break;  // reproduced serially at the turnstile
    spec_involved = speculative.value().involved_users;
    std::vector<graph::VertexId> claim_set;
    for (cluster::ClusterId id = first_new; id < scratch->cluster_count();
         ++id) {
      const cluster::ClusterInfo& info = scratch->info(id);
      claim_set.insert(claim_set.end(), info.members.begin(),
                       info.members.end());
      candidate.push_back(info);
    }
    if (candidate.empty()) break;
    if (!TryClaimAcross(run, ticket, home, claim_set)) {
      // An older request holds users we need; it always finishes without
      // waiting on us (wound-wait) -- unless it is parked (stalled), in
      // which case the watchdog path below rolls it back. Either way,
      // re-speculate on a fresher snapshot.
      run.speculation_retries.fetch_add(1, std::memory_order_relaxed);
      candidate.clear();
      if (!TryRescue(run, rank)) std::this_thread::yield();
      continue;
    }
    holds_claim = true;
    break;
  }

  // --- Stall injection (test-only): park while holding claims; whichever
  // request this blocks rescues us via TryRescue --------------------------
  if (allow_stall && ordinal == service.stall_ordinal) {
    util::MutexLock lock(run.mu);
    run.parked.emplace(ordinal, ticket);
    run.turn_cv.NotifyAll();
    run.region_cv.NotifyAll();
    return util::Status::Ok();  // this attempt is abandoned, not delivered
  }

  // --- Commit turnstile: requests commit membership in strict rank order
  // (= ordinal order among admitted requests) GLOBALLY, whatever K -- this
  // is precisely why the registry evolves identically for every shard
  // count: sharding partitions arbitration and logging, never the commit
  // history --------------------------------------------------------------
  bool resolved_hit = false;
  cluster::ClusterId cid = cluster::kNoCluster;
  uint64_t involved = 0;
  util::Status commit_status;
  {
    util::MutexLock lock(run.mu);
    while (run.next_commit != rank && !run.halted) {
      lock.Unlock();
      const bool rescued = TryRescue(run, rank);
      lock.Lock();
      if (rescued) continue;
      if (run.next_commit != rank && !run.halted) run.turn_cv.Wait(lock);
    }
    if (run.halted) {
      lock.Unlock();
      ReleaseAll(run, ticket);
      return util::Status::Ok();
    }
    if (run.registry->IsClustered(host)) {
      resolved_hit = true;
      cid = run.registry->ClusterOf(host);
    } else if (run.crash != nullptr &&
               run.crash->ShouldCrash(net::ProcessCrashPoint::kPreCommit)) {
      commit_status = CrashError(net::ProcessCrashPoint::kPreCommit);
      run.HaltLocked(net::ProcessCrashPoint::kPreCommit);
    } else {
      const bool commit_speculation = holds_claim &&
                                      !AnyWounded(run, ticket) &&
                                      spec_version == run.registry->version();
      if (!commit_speculation) {
        // Stale snapshot or wounded claim: recompute phase 1 serially
        // against the authoritative membership, inside the turnstile. The
        // recomputation runs on a scratch snapshot so the commits below all
        // flow through the (possibly durable) commit path.
        run.speculation_aborts.fetch_add(1, std::memory_order_relaxed);
        candidate.clear();
        std::unique_ptr<cluster::Registry> scratch = run.registry->Snapshot();
        const cluster::ClusterId first_new = scratch->cluster_count();
        cluster::DistributedTConnClusterer clusterer(graph_, service.k,
                                                     scratch.get());
        auto recomputed = clusterer.ClusterFor(host);
        if (!recomputed.ok()) {
          commit_status = recomputed.status();
        } else {
          involved = recomputed.value().involved_users;
          for (cluster::ClusterId id = first_new;
               id < scratch->cluster_count(); ++id) {
            candidate.push_back(scratch->info(id));
          }
        }
      } else {
        involved = spec_involved;
      }
      if (commit_status.ok()) {
        if (run.durable != nullptr) {
          // One commit may register several clusters; a single batch record
          // keeps the group atomic under a torn WAL tail.
          commit_status = run.durable->RegisterBatch(candidate);
        } else if (run.sharded_durable != nullptr) {
          // The whole commit -- cross-shard members and all -- lands as one
          // record in the COORDINATING shard's stream: atomicity without a
          // cross-stream commit protocol (see sharded_durable_registry.h).
          commit_status = run.sharded_durable->RegisterBatch(home, candidate);
        } else {
          for (const cluster::ClusterInfo& info : candidate) {
            auto committed = run.registry->Register(
                info.members, info.connectivity, info.valid);
            if (!committed.ok()) {
              commit_status = committed.status();
              break;
            }
          }
        }
        if (!commit_status.ok() && run.crash != nullptr &&
            run.crash->crashed()) {
          // A mid-WAL-append crash surfaced as the commit error.
          run.HaltLocked(net::ProcessCrashPoint::kMidWalAppend);
        }
      }
      if (commit_status.ok() && run.crash != nullptr &&
          run.crash->ShouldCrash(net::ProcessCrashPoint::kPostCommit)) {
        commit_status = CrashError(net::ProcessCrashPoint::kPostCommit);
        run.HaltLocked(net::ProcessCrashPoint::kPostCommit);
      }
      if (commit_status.ok()) {
        cid = run.registry->ClusterOf(host);
        NELA_CHECK_NE(cid, cluster::kNoCluster);
      }
    }
    // Checkpoint cadence: every checkpoint_interval turnstile passes. The
    // pass count is deterministic (rank order), but region publishes append
    // in parallel after the turnstile, so the exact lsn a checkpoint covers
    // is scheduling-dependent -- recovery replays whatever the snapshot
    // missed, so only the replayed/skipped split varies, never the digest.
    const bool durable_checkpointing =
        (run.durable != nullptr && !service.checkpoint_dir.empty()) ||
        run.sharded_durable != nullptr;
    if (!run.halted && durable_checkpointing &&
        service.checkpoint_interval > 0 &&
        ++run.commits_since_checkpoint >= service.checkpoint_interval) {
      run.commits_since_checkpoint = 0;
      ++run.checkpoint_seq;
      const util::Status ckpt =
          run.durable != nullptr
              ? run.durable->Checkpoint(durability::CheckpointPath(
                    service.checkpoint_dir, run.checkpoint_seq))
              : run.sharded_durable->CheckpointAll(run.checkpoint_seq);
      if (!ckpt.ok()) {
        if (run.crash != nullptr && run.crash->crashed()) {
          run.HaltLocked(net::ProcessCrashPoint::kMidCheckpoint);
          if (commit_status.ok()) commit_status = ckpt;
        } else if (run.first_error.ok()) {
          run.first_error = ckpt;
        }
      } else {
        ++run.checkpoints_written;
      }
    }
    // Join the cluster's publisher queue before opening the turnstile:
    // publisher priority is by ordinal even though resolution runs later,
    // in parallel.
    if (commit_status.ok() && !run.halted) {
      run.latches[cid].waiters.insert(ordinal);
    }
    ++run.next_commit;
    run.turn_cv.NotifyAll();
    if (run.halted) {
      lock.Unlock();
      ReleaseAll(run, ticket);
      return util::Status::Ok();
    }
  }

  record.host = host;
  record.ordinal = ordinal;
  if (!commit_status.ok()) {
    ReleaseAll(run, ticket);
    ctx.trace().Record("cluster", commit_status.code(),
                       commit_status.message());
    record.trace = ctx.trace().ToString();
    record.wall_ms = timer.ElapsedMillis();
    run.delivered[ordinal] = 1;
    return commit_status;
  }

  // --- Region resolution: reuse the cluster's published region, or become
  // its publisher (smallest unresolved ordinal first -- should an earlier
  // publisher degrade, the next-oldest waiter promotes itself, exactly the
  // sequential recovery order) ---------------------------------------------
  bool reuse = false;
  {
    util::MutexLock lock(run.mu);
    while (!run.halted) {
      if (run.registry->RegionOf(cid).has_value()) {
        reuse = true;
        run.latches[cid].waiters.erase(ordinal);
        break;
      }
      RunState::Latch& latch = run.latches[cid];
      if (!latch.computing && *latch.waiters.begin() == ordinal) {
        latch.computing = true;
        latch.waiters.erase(ordinal);
        break;
      }
      lock.Unlock();
      const bool rescued = TryRescue(run, rank);
      lock.Lock();
      if (!rescued && !run.halted) run.region_cv.Wait(lock);
    }
    if (run.halted) {
      lock.Unlock();
      ReleaseAll(run, ticket);
      return util::Status::Ok();
    }
  }

  const cluster::ClusterInfo& info = run.registry->info(cid);
  core::PipelineState state;
  state.host = host;
  state.k = service.k;
  // The pipeline's claim stage speaks to the home coordinator; foreign-
  // homed members are already held in their own shards' coordinators by
  // this same (global) ticket, so the stage's re-claim is idempotent for
  // home members and merely redundant for foreign ones.
  state.coordinator = run.coordinators[home].get();
  state.ticket = ticket;
  state.cluster_info = &info;
  state.shard.shard_count = run.map.shard_count();
  state.shard.home_shard = home;
  state.shard.owner_shard = run.map.OwnerOf(info.members);
  state.shard.cross_shard = run.map.CrossesShards(info.members);
  state.outcome.cluster_id = cid;
  state.outcome.cluster_reused = resolved_hit;
  state.outcome.clustering_messages = involved;
  state.outcome.anonymity_satisfied = info.valid;

  // Deterministic stage records mirroring the sequential pipeline's wording
  // (written only now, after the outcome is fully resolved).
  auto append = [&](const char* stage, util::StatusCode code, bool ran,
                    std::string detail) {
    core::StageRecord stage_record;
    stage_record.stage = stage;
    stage_record.code = code;
    stage_record.ran = ran;
    stage_record.detail = std::move(detail);
    ctx.trace().Record(stage_record.stage, stage_record.code,
                       stage_record.detail);
    state.outcome.degradation.stages.push_back(std::move(stage_record));
  };

  util::Status status;
  if (reuse) {
    state.outcome.region = *run.registry->RegionOf(cid);
    state.outcome.region_reused = true;
    append("resolve_reuse", util::StatusCode::kOk, true,
           "hit cluster=" + std::to_string(cid) + " region=reused");
    for (const char* stage :
         {"cluster", "claim_commit", "secure_bound", "publish"}) {
      append(stage, util::StatusCode::kOk, false, "skipped");
    }
    ReleaseAll(run, ticket);
  } else {
    if (resolved_hit) {
      append("resolve_reuse", util::StatusCode::kOk, true,
             "hit cluster=" + std::to_string(cid) + " region=pending");
      append("cluster", util::StatusCode::kOk, true, "resolved");
    } else {
      append("resolve_reuse", util::StatusCode::kOk, true, "miss");
      append("cluster", util::StatusCode::kOk, true,
             "cluster=" + std::to_string(cid) +
                 " members=" + std::to_string(info.members.size()) +
                 " valid=" + std::to_string(info.valid ? 1 : 0) +
                 " involved=" + std::to_string(involved));
    }
    core::ClaimCommitStage claim_commit;
    core::SecureBoundStage::Config bound_config;
    bound_config.dataset = &dataset_;
    bound_config.policy_factory = &policy_factory_;
    bound_config.network = run.network.get();
    // Backoff jitter (if the network ever delays) draws from the request's
    // private sub-stream, never from shared state.
    bound_config.jitter_from_context = true;
    core::SecureBoundStage secure_bound(bound_config);
    core::PublishStage publish(run.registry, &secure_bound,
                               run.network.get(), run.region_writer.get());
    const std::vector<core::Stage*> stages = {&claim_commit, &secure_bound,
                                              &publish};
    // RunPipeline releases the ticket on the home coordinator; the foreign
    // shards' holds are dropped right after.
    status = core::RunPipeline(stages, ctx, state);
    ReleaseAll(run, ticket);
    {
      util::MutexLock lock(run.mu);
      run.latches[cid].computing = false;
      run.region_cv.NotifyAll();
      if (!status.ok() && run.crash != nullptr && run.crash->crashed()) {
        // The publish path crashed mid-WAL-append: halt instead of
        // reporting a per-request failure.
        run.HaltLocked(net::ProcessCrashPoint::kMidWalAppend);
        return util::Status::Ok();
      }
    }
  }
  core::FinalizeDegradation(ctx, &state.outcome);

  record.outcome = std::move(state.outcome);
  record.trace = ctx.trace().ToString();
  record.net_stats = ctx.scope().stats();
  record.wall_ms = timer.ElapsedMillis();
  run.delivered[ordinal] = 1;
  return status;
}

util::Result<ShardedServiceResult> ShardedServiceDriver::Run() {
  return RunInternal(nullptr, /*classic_next_lsn=*/1,
                     std::vector<uint64_t>(config_.shards, 1), {},
                     /*truncate_wal=*/true, /*checkpoint_seq_start=*/0);
}

util::Result<ShardedServiceResult> ShardedServiceDriver::Resume(
    const durability::ShardedRecoveredState& recovered) {
  if (config_.durability_dir.empty()) {
    return util::InvalidArgumentError(
        "sharded resume needs the durability directory configured");
  }
  if (recovered.shards.size() != config_.shards) {
    return util::InvalidArgumentError(
        "recovered state covers a different number of shards than the "
        "config");
  }
  auto registry = durability::AssembleRegistry(recovered);
  if (!registry.ok()) return registry.status();
  std::vector<uint64_t> next_lsns(config_.shards, 1);
  std::unordered_map<cluster::ClusterId, uint32_t> stream_of;
  for (const durability::ShardRecoveredState& shard : recovered.shards) {
    next_lsns[shard.shard] = shard.next_lsn;
    for (const durability::ShardCheckpointCluster& entry : shard.clusters) {
      stream_of.emplace(entry.id, shard.shard);
    }
  }
  return RunInternal(std::move(registry).value(), /*classic_next_lsn=*/1,
                     std::move(next_lsns), std::move(stream_of),
                     /*truncate_wal=*/false, recovered.MaxCheckpointSeq());
}

util::Result<ShardedServiceResult> ShardedServiceDriver::ResumeClassic(
    durability::RecoveredState recovered) {
  NELA_CHECK(recovered.registry != nullptr);
  if (config_.shards != 1 || !config_.durability_dir.empty()) {
    return util::InvalidArgumentError(
        "classic resume is the single-shard, single-WAL path");
  }
  return RunInternal(std::move(recovered.registry), recovered.next_lsn,
                     std::vector<uint64_t>(1, 1), {},
                     /*truncate_wal=*/false, recovered.max_checkpoint_seq);
}

util::Result<ShardedServiceResult> ShardedServiceDriver::RunInternal(
    std::unique_ptr<cluster::Registry> registry, uint64_t classic_next_lsn,
    std::vector<uint64_t> shard_next_lsns,
    std::unordered_map<cluster::ClusterId, uint32_t> stream_of,
    bool truncate_wal, uint64_t checkpoint_seq_start) {
  const ServiceConfig& service = config_.service;
  const uint32_t user_count = dataset_.size();
  if (service.requests == 0) {
    return util::InvalidArgumentError("service needs at least one request");
  }
  if (service.requests > user_count) {
    return util::InvalidArgumentError(
        "request count exceeds the user population");
  }
  if (service.offered_rate_per_ms > 0.0 && service.service_time_ms <= 0.0) {
    return util::InvalidArgumentError(
        "the queue model needs a positive service time");
  }
  if (!config_.durability_dir.empty() && !service.wal_path.empty()) {
    return util::InvalidArgumentError(
        "configure either the classic WAL or the sharded durability "
        "directory, not both");
  }
  if (!config_.durability_dir.empty() && !service.checkpoint_dir.empty()) {
    return util::InvalidArgumentError(
        "sharded durability manages its own per-shard checkpoint "
        "directories");
  }
  if (config_.shards > 1 && !service.wal_path.empty()) {
    return util::InvalidArgumentError(
        "multi-shard runs log through the sharded durability directory");
  }
  if (service.checkpoint_interval > 0 && service.checkpoint_dir.empty() &&
      config_.durability_dir.empty()) {
    return util::InvalidArgumentError(
        "checkpointing needs a checkpoint directory");
  }
  if (registry != nullptr && registry->user_count() != user_count) {
    return util::InvalidArgumentError(
        "recovered registry population does not match the dataset");
  }
  const bool baseline_mechanism =
      service.mechanism != audit::MechanismFamily::kClusterBound;
  if (baseline_mechanism &&
      (!service.wal_path.empty() || !config_.durability_dir.empty() ||
       service.checkpoint_interval > 0)) {
    return util::InvalidArgumentError(
        "baseline mechanisms write no registry state; durability does not "
        "compose with them");
  }
  if (baseline_mechanism && service.stall_ordinal != kNoStallOrdinal) {
    return util::InvalidArgumentError(
        "stall injection targets the claim/turnstile machinery, which "
        "baseline mechanisms bypass");
  }
  if (baseline_mechanism && !service.fault_plan.process_crashes.empty()) {
    return util::InvalidArgumentError(
        "process crash points are commit/WAL/checkpoint events, which "
        "baseline mechanisms never reach");
  }

  RunState run(dataset_, config_.shards);
  run.sharded = registry != nullptr
                    ? std::make_unique<cluster::ShardedRegistry>(
                          std::move(registry), &run.map)
                    : std::make_unique<cluster::ShardedRegistry>(user_count,
                                                                 &run.map);
  run.registry = run.sharded->global();
  {
    // Setup is single-threaded, but checkpoint_seq is guarded state; the
    // uncontended lock keeps the annotation exact.
    util::MutexLock lock(run.mu);
    run.checkpoint_seq = checkpoint_seq_start;
  }
  if (service.with_network) {
    run.network = std::make_unique<net::Network>(user_count);
    const net::FaultPlan& plan = service.fault_plan;
    if (plan.loss_probability > 0.0 || plan.latency.enabled() ||
        !plan.crashes.empty()) {
      const util::Status installed = run.network->InstallFaultPlan(plan);
      if (!installed.ok()) return installed;
    }
    if (service.tap != nullptr) run.network->SetTap(service.tap);
  }
  if (!service.fault_plan.process_crashes.empty()) {
    run.crash = std::make_unique<durability::CrashPointScheduler>(
        service.fault_plan.process_crashes);
  }
  if (!service.wal_path.empty()) {
    auto wal = durability::WalWriter::Open(service.wal_path, truncate_wal);
    if (!wal.ok()) return wal.status();
    run.wal = std::move(wal).value();
    run.durable = std::make_unique<durability::DurableRegistry>(
        run.registry, run.wal.get(), run.crash.get(), classic_next_lsn);
    run.region_writer =
        std::make_unique<ClassicRegionWriter>(run.durable.get());
  } else if (!config_.durability_dir.empty()) {
    NELA_CHECK_EQ(shard_next_lsns.size(), config_.shards);
    auto sharded = durability::ShardedDurableRegistry::Open(
        run.registry, config_.durability_dir, config_.shards,
        run.crash.get(), std::move(shard_next_lsns), std::move(stream_of),
        truncate_wal);
    if (!sharded.ok()) return sharded.status();
    run.sharded_durable = std::move(sharded).value();
    run.region_writer =
        std::make_unique<ShardedRegionWriter>(run.sharded_durable.get());
  }

  if (baseline_mechanism) {
    // One shared, stateless mechanism instance: Cloak is thread-safe on
    // distinct contexts, and all its randomness comes from each request's
    // private sub-stream.
    auto made = mechanisms::MakeMechanism(service.mechanism, dataset_,
                                          run.network.get(), service.k,
                                          service.mechanism_params);
    if (!made.ok()) return made.status();
    run.mechanism = std::move(made).value();
  }

  util::Rng workload_rng(service.workload_seed);
  run.hosts = SampleWorkload(user_count, service.requests, workload_rng);
  run.records.resize(service.requests);
  run.delivered.assign(service.requests, 0);
  run.home_of.resize(service.requests);
  for (uint64_t ordinal = 0; ordinal < service.requests; ++ordinal) {
    run.records[ordinal].host = run.hosts[ordinal];
    run.records[ordinal].ordinal = ordinal;
    run.home_of[ordinal] = run.map.HomeShardOf(run.hosts[ordinal]);
  }

  AdmitWorkload(run);
  if (service.stall_ordinal != kNoStallOrdinal &&
      run.commit_rank.find(service.stall_ordinal) == run.commit_rank.end()) {
    return util::InvalidArgumentError(
        "stall_ordinal names a request that was not admitted");
  }
  // Tickets carry the GLOBAL wound-wait priority (admission rank), and
  // every shard's coordinator registers the same ticket for the same
  // request -- claim conflicts resolve in arrival order wherever the
  // contested user is homed. Baseline mechanisms never claim, so their
  // runs skip the ticket space entirely.
  for (uint64_t ordinal :
       run.mechanism == nullptr ? run.admitted_ordinals
                                : std::vector<uint64_t>{}) {
    const cluster::Ticket ticket =
        static_cast<cluster::Ticket>(run.commit_rank.at(ordinal) + 1);
    for (std::unique_ptr<cluster::ClaimCoordinator>& coordinator :
         run.coordinators) {
      const cluster::Ticket opened = coordinator->OpenRequestAt(ticket);
      NELA_CHECK_EQ(opened, ticket);
    }
    run.tickets.emplace(ordinal, ticket);
  }

  const uint32_t thread_count = std::max(1u, service.threads);
  const util::WallTimer wall_timer;
  auto worker = [&run, this] {
    while (true) {
      {
        util::MutexLock lock(run.mu);
        if (run.halted) break;
      }
      const uint64_t index =
          run.next_work.fetch_add(1, std::memory_order_relaxed);
      if (index >= run.admitted_ordinals.size()) break;
      const uint64_t ordinal = run.admitted_ordinals[index];
      const util::Status status =
          ProcessRequest(run, ordinal, /*allow_stall=*/true);
      if (!status.ok()) {
        util::MutexLock lock(run.mu);
        if (run.first_error.ok()) run.first_error = status;
      }
    }
  };
  // All workers run on the shared fork-join pool; worker identity is
  // irrelevant (ordinals come from the atomic counter and commits are
  // serialized by the turnstile), so the digest stays bit-identical at any
  // thread count.
  util::ThreadPool pool(thread_count);
  pool.RunOnAllThreads([&worker](uint32_t) { worker(); });

  // Safety net: a request parked near the end of the workload may have no
  // younger request left to rescue it (every later worker already exited).
  // The main thread plays watchdog until the lot is empty.
  while (TryRescue(run, ~0ull)) {
  }

  const double wall_seconds = wall_timer.ElapsedSeconds();

  const bool crashed = run.crash != nullptr && run.crash->crashed();
  // Workers have joined; snapshot the guarded outcome state under the
  // (now uncontended) lock rather than reading it bare.
  std::optional<net::ProcessCrashPoint> crash_point;
  util::Status first_error;
  uint64_t checkpoints_written = 0;
  {
    util::MutexLock lock(run.mu);
    crash_point = run.crash_point;
    first_error = run.first_error;
    checkpoints_written = run.checkpoints_written;
  }
  if (crashed) {
    // Unfinished admitted requests died with the process: report each as a
    // structured crash abort (never silently, never with a coordinate).
    const net::ProcessCrashPoint point =
        crash_point.value_or(net::ProcessCrashPoint::kPreCommit);
    for (uint64_t ordinal : run.admitted_ordinals) {
      if (run.delivered[ordinal] == 0) {
        FillCrashAbortRecord(run, ordinal, point);
      }
    }
  } else if (!first_error.ok()) {
    return first_error;
  }

  ShardedServiceResult sharded_result;
  ServiceResult& result = sharded_result.service;
  result.crashed = crashed;
  result.crash_point = crash_point;
  result.records = std::move(run.records);
  result.wall_seconds = wall_seconds;
  result.requests_per_sec =
      static_cast<double>(service.requests) / std::max(wall_seconds, 1e-9);
  for (const std::unique_ptr<cluster::ClaimCoordinator>& coordinator :
       run.coordinators) {
    result.claim_conflicts += coordinator->conflicts_observed();
    result.claim_wounds += coordinator->wounds_inflicted();
  }
  result.speculation_aborts =
      run.speculation_aborts.load(std::memory_order_relaxed);
  result.speculation_retries =
      run.speculation_retries.load(std::memory_order_relaxed);
  result.watchdog_requeues =
      run.watchdog_requeues.load(std::memory_order_relaxed);
  if (run.wal != nullptr) {
    result.wal_records = run.wal->records_appended();
  } else if (run.sharded_durable != nullptr) {
    result.wal_records = run.sharded_durable->wal_records();
  }
  result.checkpoints_written = checkpoints_written;

  const uint32_t shard_count = run.map.shard_count();
  sharded_result.shards.resize(shard_count);
  std::vector<std::vector<double>> shard_waits(shard_count);
  std::vector<double> queue_waits;
  for (const ServiceRequestRecord& record : result.records) {
    ShardRunStats& stats = sharded_result.shards[run.home_of[record.ordinal]];
    ++stats.requests_routed;
    if (!record.admitted) {
      if (record.shed == ShedCause::kQueueOverflow) {
        ++result.shed_queue_overflow;
        ++stats.shed_queue_overflow;
      } else {
        ++result.shed_deadline;
        ++stats.shed_deadline;
      }
    } else {
      ++result.admitted;
      ++stats.admitted;
      queue_waits.push_back(record.queue_wait_ms);
      shard_waits[run.home_of[record.ordinal]].push_back(
          record.queue_wait_ms);
      if (record.aborted_by_crash) ++result.aborted_by_crash;
    }
  }
  std::sort(queue_waits.begin(), queue_waits.end());
  result.p50_queue_wait_ms = PercentileMs(queue_waits, 50.0);
  result.p99_queue_wait_ms = PercentileMs(queue_waits, 99.0);

  // Outcome digest: an FNV-1a fold of every request's outcome facts in
  // ordinal order. Unlike the registry digest it also witnesses baseline
  // mechanisms (whose registry stays empty), so the cross-thread-count
  // determinism assertion is one identity for every mechanism.
  uint64_t outcome_digest = 14695981039346656037ull;
  const auto fold = [&outcome_digest](uint64_t value) {
    outcome_digest ^= value;
    outcome_digest *= 1099511628211ull;
  };
  for (const ServiceRequestRecord& record : result.records) {
    fold(record.ordinal);
    fold(record.host);
    fold(record.admitted ? 1u : 0u);
    fold(record.outcome.anonymity_satisfied ? 1u : 0u);
    const geo::Rect& region = record.outcome.region;
    if (!region.empty()) {
      fold(DoubleBits(region.min_x()));
      fold(DoubleBits(region.min_y()));
      fold(DoubleBits(region.max_x()));
      fold(DoubleBits(region.max_y()));
    }
    for (const geo::Point& probe : record.outcome.probes) {
      fold(DoubleBits(probe.x));
      fold(DoubleBits(probe.y));
    }
  }
  result.outcome_digest = outcome_digest;

  // Registry digest + reciprocity audit over the final state.
  result.registry_digest = run.registry->Digest();
  const uint32_t clusters = run.registry->cluster_count();
  result.clusters_formed = clusters;
  std::vector<uint32_t> membership_count(user_count, 0);
  for (cluster::ClusterId id = 0; id < clusters; ++id) {
    for (graph::VertexId member : run.registry->info(id).members) {
      ++membership_count[member];
    }
  }
  result.reciprocity_ok = true;
  for (uint32_t count : membership_count) {
    if (count > 1) result.reciprocity_ok = false;
  }

  // Per-shard slice accounting and the shard-count-invariance digests.
  sharded_result.concatenated_digest = run.sharded->ConcatenatedDigest();
  sharded_result.cross_shard_clusters = run.sharded->CrossShardClusterCount();
  sharded_result.cross_shard_handoffs =
      run.cross_shard_handoffs.load(std::memory_order_relaxed);
  for (uint32_t shard = 0; shard < shard_count; ++shard) {
    ShardRunStats& stats = sharded_result.shards[shard];
    stats.shard = shard;
    stats.users = run.map.users_in(shard);
    for (cluster::ClusterId id : run.sharded->OwnedBy(shard)) {
      ++stats.clusters_owned;
      if (run.map.CrossesShards(run.registry->info(id).members)) {
        ++stats.cross_shard_clusters_owned;
      }
    }
    if (run.sharded_durable != nullptr) {
      stats.wal_records = run.sharded_durable->wal_records_for(shard);
    }
    stats.shard_digest = run.sharded->ShardDigest(shard);
    std::sort(shard_waits[shard].begin(), shard_waits[shard].end());
    stats.p50_queue_wait_ms = PercentileMs(shard_waits[shard], 50.0);
    stats.p99_queue_wait_ms = PercentileMs(shard_waits[shard], 99.0);
  }

  std::vector<double> latencies;
  for (const ServiceRequestRecord& record : result.records) {
    if (record.admitted && !record.aborted_by_crash) {
      latencies.push_back(record.wall_ms);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_latency_ms = PercentileMs(latencies, 50.0);
  result.p99_latency_ms = PercentileMs(latencies, 99.0);
  return sharded_result;
}

}  // namespace nela::sim
