#include "sim/chaos_experiment.h"

#include <memory>
#include <vector>

#include "audit/observer.h"
#include "audit/taint.h"
#include "cluster/distributed_tconn.h"
#include "core/cloaking_engine.h"
#include "core/policy_factory.h"
#include "net/network.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace nela::sim {

util::Result<ChaosExperimentResult> RunChaosExperiment(
    const Scenario& scenario, const ChaosExperimentConfig& config) {
  if (config.requests == 0) {
    return util::InvalidArgumentError("requests must be positive");
  }
  if (config.requests > scenario.dataset.size()) {
    return util::InvalidArgumentError("more requests than users");
  }
  if (config.churn_rate < 0.0 || config.churn_rate > 1.0) {
    return util::InvalidArgumentError("churn rate must be in [0, 1]");
  }
  if (config.churn_rate > 0.0 && config.churn_attempt_spacing == 0) {
    return util::InvalidArgumentError(
        "churn requires a positive attempt spacing");
  }
  const uint32_t n = scenario.dataset.size();

  net::Network network(n);
  net::FaultPlan plan;
  plan.seed = config.fault_seed;
  plan.loss_probability = config.loss_probability;
  plan.latency = config.latency;
  // Churn schedule: victims drawn without replacement, one crash every
  // churn_attempt_spacing send attempts -- spread across the run instead
  // of front-loaded, so crashes land mid-protocol.
  util::Rng churn_rng(config.fault_seed ^ 0x9e3779b97f4a7c15ull);
  const uint32_t victim_count =
      static_cast<uint32_t>(config.churn_rate * static_cast<double>(n));
  const std::vector<uint32_t> victims =
      churn_rng.SampleWithoutReplacement(n, victim_count);
  for (uint32_t i = 0; i < victim_count; ++i) {
    plan.crashes.push_back(net::CrashEvent{
        victims[i],
        (static_cast<uint64_t>(i) + 1) * config.churn_attempt_spacing});
  }
  util::Status installed = network.InstallFaultPlan(plan);
  if (!installed.ok()) return installed;

  // Wire-level non-exposure audit: every user's coordinates are tainted,
  // and the observer watches all traffic for the whole run.
  audit::TaintSet taint;
  audit::ObserverConfig observer_config;
  observer_config.taint = &taint;
  audit::AdversaryObserver observer(observer_config);
  if (config.verify_non_exposure) {
    for (data::UserId user = 0; user < n; ++user) {
      taint.TaintPoint(user, scenario.dataset.point(user));
    }
    network.SetTap(&observer);
  }

  cluster::Registry registry(n);
  auto clusterer = std::make_unique<cluster::DistributedTConnClusterer>(
      scenario.graph, config.k, &registry, &network);
  util::Rng jitter_rng(config.fault_seed + 1);
  clusterer->SetRetryPolicy(config.retry, &jitter_rng);

  core::BoundingParams bounding_params;
  bounding_params.density = static_cast<double>(n);
  core::CloakingEngine engine(
      scenario.dataset, std::move(clusterer), &registry,
      core::MakeSecurePolicyFactory(bounding_params),
      core::BoundingMode::kSecureProtocol, &network);
  engine.SetRetryPolicy(config.retry, &jitter_rng, config.max_phase_retries);

  util::Rng workload_rng(config.workload_seed);
  const std::vector<data::UserId> hosts =
      SampleWorkload(n, config.requests, workload_rng);

  ChaosExperimentResult result;
  result.requests = config.requests;
  double anonymity_sum = 0.0;
  double area_sum = 0.0;
  for (data::UserId host : hosts) {
    auto outcome = engine.RequestCloaking(host);
    if (!outcome.ok()) {
      if (outcome.status().code() == util::StatusCode::kUnavailable) {
        // Host offline / crashed mid-request: an expected chaos outcome.
        ++result.failed;
        continue;
      }
      return outcome.status();  // configuration errors still propagate
    }
    const core::CloakingOutcome& o = outcome.value();
    result.members_lost += o.degradation.members_lost;
    result.phases_retried += o.degradation.phases_retried;
    if (o.anonymity_satisfied) {
      ++result.succeeded;
      anonymity_sum += static_cast<double>(
          registry.info(o.cluster_id).members.size());
      area_sum += o.region.Area();
    } else {
      ++result.degraded;
    }
  }
  result.success_rate = static_cast<double>(result.succeeded) /
                        static_cast<double>(config.requests);
  if (result.succeeded > 0) {
    result.avg_achieved_anonymity =
        anonymity_sum / static_cast<double>(result.succeeded);
    result.avg_region_area = area_sum / static_cast<double>(result.succeeded);
  }

  result.delivered_messages = network.total().messages;
  result.delivered_bytes = network.total().bytes;
  result.dropped_messages = network.dropped_messages();
  result.dropped_bytes = network.dropped_bytes();
  result.timed_out_messages = network.timed_out_messages();
  result.dead_endpoint_attempts = network.dead_endpoint_attempts();
  const net::RetryStats retry = network.total_retry_stats();
  result.retries = retry.retries;
  result.retransmitted_bytes = retry.retransmitted_bytes;
  if (result.delivered_messages > 0) {
    result.retry_overhead =
        static_cast<double>(result.retries) /
        static_cast<double>(result.delivered_messages);
  }
  if (config.verify_non_exposure) {
    result.audited_messages = observer.messages_seen();
    result.exposure_violations = observer.violation_count();
    network.SetTap(nullptr);
  }
  return result;
}

}  // namespace nela::sim
