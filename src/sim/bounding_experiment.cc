#include "sim/bounding_experiment.h"

#include <memory>
#include <unordered_set>
#include <utility>
#include <vector>

#include "bounding/protocol.h"
#include "cluster/distributed_tconn.h"
#include "lbs/poi_database.h"
#include "lbs/server.h"
#include "sim/workload.h"
#include "util/rng.h"

namespace nela::sim {

const char* BoundingAlgorithmName(BoundingAlgorithm algorithm) {
  switch (algorithm) {
    case BoundingAlgorithm::kLinear:
      return "Linear";
    case BoundingAlgorithm::kExponential:
      return "Exponential";
    case BoundingAlgorithm::kSecure:
      return "Secure";
    case BoundingAlgorithm::kOptimal:
      return "Optimal";
  }
  return "unknown";
}

util::Result<BoundingExperimentResult> RunBoundingExperiment(
    const Scenario& scenario, const BoundingExperimentConfig& config) {
  if (config.requests == 0 || config.requests > scenario.dataset.size()) {
    return util::InvalidArgumentError("bad request count");
  }

  cluster::Registry registry(scenario.dataset.size());
  cluster::DistributedTConnClusterer clusterer(scenario.graph, config.k,
                                               &registry);
  const lbs::PoiDatabase database(scenario.dataset);
  const lbs::LbsServer server(&database, config.params.cr);

  const core::PolicyFactory factories[3] = {
      core::MakeLinearPolicyFactory(config.params),
      core::MakeExponentialPolicyFactory(config.params),
      core::MakeSecurePolicyFactory(config.params),
  };

  util::Rng workload_rng(config.workload_seed);
  const std::vector<data::UserId> hosts = SampleWorkload(
      scenario.dataset.size(), config.requests, workload_rng);

  struct Accumulator {
    double bounding = 0.0;
    double request = 0.0;
    double ratio = 0.0;
    double total = 0.0;
    double cpu_ms = 0.0;
    double area = 0.0;
    uint32_t runs = 0;
  };
  Accumulator acc[kBoundingAlgorithmCount];

  std::unordered_set<cluster::ClusterId> bounded_clusters;
  for (data::UserId host : hosts) {
    auto clustering = clusterer.ClusterFor(host);
    if (!clustering.ok()) return clustering.status();
    const cluster::ClusterId id = clustering.value().cluster_id;
    if (!bounded_clusters.insert(id).second) continue;  // already measured

    const cluster::ClusterInfo& info = registry.info(id);
    std::vector<geo::Point> points;
    points.reserve(info.members.size());
    for (graph::VertexId member : info.members) {
      points.push_back(scenario.dataset.point(member));
    }
    const geo::Point reference = scenario.dataset.point(host);
    const uint32_t n = static_cast<uint32_t>(points.size());

    // Optimal first: its request cost is the ratio denominator.
    const bounding::RegionBoundingResult opt =
        bounding::ComputeOptRegion(points);
    const double opt_request = server.RangeQuery(opt.region).reply_cost;
    {
      Accumulator& a = acc[static_cast<size_t>(BoundingAlgorithm::kOptimal)];
      const double bounding_cost =
          static_cast<double>(opt.verifications) * config.params.cb;
      a.bounding += bounding_cost;
      a.request += opt_request;
      a.ratio += 1.0;
      a.total += bounding_cost + opt_request;
      a.cpu_ms += opt.cpu_seconds * 1e3;
      a.area += opt.region.Area();
      ++a.runs;
    }

    const BoundingAlgorithm progressive[3] = {BoundingAlgorithm::kLinear,
                                              BoundingAlgorithm::kExponential,
                                              BoundingAlgorithm::kSecure};
    for (int p = 0; p < 3; ++p) {
      std::unique_ptr<bounding::IncrementPolicy> policy = factories[p](n);
      auto bounded = bounding::ComputeCloakedRegion(points, reference, *policy);
      if (!bounded.ok()) return bounded.status();
      const bounding::RegionBoundingResult run = std::move(bounded).value();
      const double request = server.RangeQuery(run.region).reply_cost;
      Accumulator& a = acc[static_cast<size_t>(progressive[p])];
      const double bounding_cost =
          static_cast<double>(run.verifications) * config.params.cb;
      a.bounding += bounding_cost;
      a.request += request;
      a.ratio += opt_request > 0.0 ? request / opt_request : 1.0;
      a.total += bounding_cost + request;
      a.cpu_ms += run.cpu_seconds * 1e3;
      a.area += run.region.Area();
      ++a.runs;
    }
  }

  BoundingExperimentResult result;
  for (int i = 0; i < kBoundingAlgorithmCount; ++i) {
    const Accumulator& a = acc[i];
    BoundingAlgorithmResult& out = result.per_algorithm[i];
    out.bounding_runs = a.runs;
    if (a.runs == 0) continue;
    const double runs = static_cast<double>(a.runs);
    out.avg_bounding_cost = a.bounding / runs;
    out.avg_request_cost = a.request / runs;
    out.avg_request_ratio = a.ratio / runs;
    out.avg_total_cost = a.total / runs;
    out.avg_cpu_ms = a.cpu_ms / runs;
    out.avg_region_area = a.area / runs;
  }
  return result;
}

}  // namespace nela::sim
