// Driver for the secure-bounding experiments (Fig. 13).
//
// Phase 1 is fixed (distributed t-Conn); every bounding algorithm then
// computes a cloaked region for the same sequence of freshly formed
// clusters, so the comparison isolates phase-2 behaviour. Metrics follow
// §VI-D: bounding communication cost (verification round trips * Cb),
// service-request cost (candidate POIs * Cr, reported both absolutely and
// as a ratio of the optimal bounding), their sum, and CPU time.

#ifndef NELA_SIM_BOUNDING_EXPERIMENT_H_
#define NELA_SIM_BOUNDING_EXPERIMENT_H_

#include <array>
#include <cstdint>

#include "core/policy_factory.h"
#include "sim/scenario.h"
#include "util/status.h"

namespace nela::sim {

enum class BoundingAlgorithm : uint8_t {
  kLinear = 0,
  kExponential,
  kSecure,
  kOptimal,
};
inline constexpr int kBoundingAlgorithmCount = 4;

const char* BoundingAlgorithmName(BoundingAlgorithm algorithm);

struct BoundingExperimentConfig {
  uint32_t k = 10;
  uint32_t requests = 2000;  // S
  uint64_t workload_seed = 7;
  core::BoundingParams params;  // Cb, Cr, density
};

struct BoundingAlgorithmResult {
  // Averages are per bounding run (one per newly formed cluster).
  double avg_bounding_cost = 0.0;   // verifications * Cb
  double avg_request_cost = 0.0;    // candidate POIs * Cr
  double avg_request_ratio = 0.0;   // request cost / optimal request cost
  double avg_total_cost = 0.0;      // bounding + request
  double avg_cpu_ms = 0.0;
  double avg_region_area = 0.0;
  uint32_t bounding_runs = 0;
};

struct BoundingExperimentResult {
  std::array<BoundingAlgorithmResult, kBoundingAlgorithmCount> per_algorithm;

  const BoundingAlgorithmResult& of(BoundingAlgorithm algorithm) const {
    return per_algorithm[static_cast<size_t>(algorithm)];
  }
};

[[nodiscard]] util::Result<BoundingExperimentResult> RunBoundingExperiment(
    const Scenario& scenario, const BoundingExperimentConfig& config);

}  // namespace nela::sim

#endif  // NELA_SIM_BOUNDING_EXPERIMENT_H_
