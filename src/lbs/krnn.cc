#include "lbs/krnn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nela::lbs {

namespace {

// Euclidean distance from a point to a rectangle (0 when inside).
double DistanceToRect(const geo::Point& p, const geo::Rect& rect) {
  const double dx =
      std::max({rect.min_x() - p.x, 0.0, p.x - rect.max_x()});
  const double dy =
      std::max({rect.min_y() - p.y, 0.0, p.y - rect.max_y()});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

KrnnResult RangeKnnCandidates(const PoiDatabase& database,
                              const data::Dataset& pois,
                              const geo::Rect& region, uint32_t k) {
  NELA_CHECK_GE(k, 1u);
  NELA_CHECK(!region.empty());
  KrnnResult result;
  if (database.size() <= k) {
    result.candidates.resize(database.size());
    for (uint32_t id = 0; id < database.size(); ++id) {
      result.candidates[id] = id;
    }
    result.radius = std::numeric_limits<double>::infinity();
    return result;
  }

  // Largest k-th-NN distance over the four corners.
  const geo::Point corners[4] = {
      {region.min_x(), region.min_y()},
      {region.min_x(), region.max_y()},
      {region.max_x(), region.min_y()},
      {region.max_x(), region.max_y()},
  };
  double worst_knn = 0.0;
  for (const geo::Point& corner : corners) {
    const auto neighbors = database.NearestNeighbors(corner, k);
    NELA_CHECK_EQ(neighbors.size(), k);
    worst_knn = std::max(
        worst_knn, std::sqrt(neighbors.back().squared_distance));
  }
  const double diagonal = std::sqrt(region.Width() * region.Width() +
                                    region.Height() * region.Height());
  result.radius = worst_knn + diagonal;

  // Every POI within `radius` of the rectangle is a candidate.
  const geo::Rect inflated = region.Inflated(result.radius);
  for (uint32_t id : database.RangeQuery(inflated)) {
    if (DistanceToRect(pois.point(id), region) <= result.radius) {
      result.candidates.push_back(id);
    }
  }
  std::sort(result.candidates.begin(), result.candidates.end());
  return result;
}

}  // namespace nela::lbs
