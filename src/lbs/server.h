// LBS server front end (the query processor of Fig. 3).
//
// A client sends its cloaked region instead of its position; the server
// answers a range request with the superset of POIs intersecting the region
// and the client filters locally. The communication cost of the reply is
// what the bounding algorithms trade against verification rounds:
// cost = (#candidate POIs) * poi_payload_ratio, with a clustering message
// as the cost unit (Cr in Table I).

#ifndef NELA_LBS_SERVER_H_
#define NELA_LBS_SERVER_H_

#include <cstdint>

#include "geo/rect.h"
#include "lbs/poi_database.h"
#include "net/network.h"

namespace nela::lbs {

struct ServiceReply {
  uint64_t candidate_count = 0;  // POIs in the cloaked region
  // Reply cost in clustering-message units: candidate_count * Cr.
  double reply_cost = 0.0;
};

class LbsServer {
 public:
  // `database` is not owned. `poi_payload_ratio` is Cr: how many
  // clustering-message units one POI object costs to ship.
  LbsServer(const PoiDatabase* database, double poi_payload_ratio);

  // Serves a cloaked range query. With a network binding the request/reply
  // message pair is accounted between `client` and a virtual server node.
  ServiceReply RangeQuery(const geo::Rect& cloaked_region,
                          net::Network* network = nullptr,
                          net::NodeId client = 0) const;

  // Serves one probe-point query (geo-indistinguishability noised point or
  // one dummy-location candidate): candidates are the POIs within `radius`
  // of the probe, costed at the same Cr per object as a range reply. The
  // probe's wire artifact is sent by the mechanism itself (tagged
  // kNoisedCoordinate / kCandidateLocation); with a network binding this
  // call accounts only the reply leg.
  ServiceReply ProbeQuery(const geo::Point& probe, double radius,
                          net::Network* network = nullptr,
                          net::NodeId client = 0) const;

  double poi_payload_ratio() const { return poi_payload_ratio_; }
  uint64_t queries_served() const { return queries_served_; }

 private:
  const PoiDatabase* database_;
  double poi_payload_ratio_;
  mutable uint64_t queries_served_ = 0;
};

}  // namespace nela::lbs

#endif  // NELA_LBS_SERVER_H_
