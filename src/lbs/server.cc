#include "lbs/server.h"

#include "util/check.h"

namespace nela::lbs {

LbsServer::LbsServer(const PoiDatabase* database, double poi_payload_ratio)
    : database_(database), poi_payload_ratio_(poi_payload_ratio) {
  NELA_CHECK(database != nullptr);
  NELA_CHECK_GT(poi_payload_ratio, 0.0);
}

ServiceReply LbsServer::RangeQuery(const geo::Rect& cloaked_region,
                                   net::Network* network,
                                   net::NodeId client) const {
  ServiceReply reply;
  reply.candidate_count = database_->CountInRange(cloaked_region);
  reply.reply_cost =
      static_cast<double>(reply.candidate_count) * poi_payload_ratio_;
  ++queries_served_;
  if (network != nullptr) {
    // The request carries the region (4 doubles); the reply one POI record
    // per candidate. Client node doubles as the server endpoint because the
    // network models only the user population; what matters is the counted
    // cost, not the topology of the wired side.
    net::Message request;
    request.from = client;
    request.to = client;
    request.kind = net::MessageKind::kServiceRequest;
    request.bytes = 32;
    if (!cloaked_region.empty()) {
      request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          cloaked_region.min_x());
      request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          cloaked_region.min_y());
      request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          cloaked_region.max_x());
      request.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          cloaked_region.max_y());
    }
    network->Send(request);
    // The reply's payload is candidate POI records — server-side data about
    // no user, so the descriptor is deliberately empty (the audited path is
    // still used so the adversary observer sees the transmission).
    net::Message reply_message;  // nela-lint: empty-payload(POI records only)
    reply_message.from = client;
    reply_message.to = client;
    reply_message.kind = net::MessageKind::kServiceReply;
    reply_message.bytes = reply.candidate_count * 64;
    network->Send(reply_message);
  }
  return reply;
}

ServiceReply LbsServer::ProbeQuery(const geo::Point& probe, double radius,
                                   net::Network* network,
                                   net::NodeId client) const {
  ServiceReply reply;
  reply.candidate_count = database_->CountInDisc(probe, radius);
  reply.reply_cost =
      static_cast<double>(reply.candidate_count) * poi_payload_ratio_;
  ++queries_served_;
  if (network != nullptr) {
    // The mechanism already sent the tagged request (the probe itself); the
    // server side only ships candidates back, so -- like a range reply --
    // the descriptor carries no user data.
    net::Message reply_message;  // nela-lint: empty-payload(POI records only)
    reply_message.from = client;
    reply_message.to = client;
    reply_message.kind = net::MessageKind::kServiceReply;
    // Reply size tracks the candidate count near the probe -- the classic
    // LBS reply-size side channel. It is deliberately modeled (the observer
    // sees message bytes), so the taint pass gets a declared channel, not a
    // suppression.
    // nela-lint: declare-exposure(lbs-reply-size)
    reply_message.bytes = reply.candidate_count * 64;
    network->Send(reply_message);
  }
  return reply;
}

}  // namespace nela::lbs
