// POI database: the server-side content store that cloaked range queries
// run against (§VI models the service request as a range query over the
// same POI dataset the users stand on).

#ifndef NELA_LBS_POI_DATABASE_H_
#define NELA_LBS_POI_DATABASE_H_

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "geo/rect.h"
#include "spatial/grid_index.h"

namespace nela::lbs {

class PoiDatabase {
 public:
  // Indexes `dataset` (not owned; must outlive the database). `cell_size`
  // tunes the spatial index granularity.
  explicit PoiDatabase(const data::Dataset& dataset, double cell_size = 1e-2);

  PoiDatabase(const PoiDatabase&) = delete;
  PoiDatabase& operator=(const PoiDatabase&) = delete;

  uint32_t size() const { return dataset_->size(); }

  // Ids of POIs inside `region`.
  std::vector<uint32_t> RangeQuery(const geo::Rect& region) const;

  // Number of POIs inside `region` (cheaper than materializing ids when
  // only the payload size matters).
  uint64_t CountInRange(const geo::Rect& region) const;

  // Number of POIs within `radius` of `center` -- the reply size of a
  // probe-point query (geo-indistinguishability / dummy-location
  // mechanisms query with points, not regions).
  uint64_t CountInDisc(const geo::Point& center, double radius) const;

  // The `count` nearest POIs to `query` (ascending by distance).
  std::vector<spatial::Neighbor> NearestNeighbors(const geo::Point& query,
                                                  uint32_t count) const;

  // Position of POI `id`.
  const geo::Point& point(uint32_t id) const { return dataset_->point(id); }

 private:
  const data::Dataset* dataset_;
  spatial::GridIndex index_;
};

}  // namespace nela::lbs

#endif  // NELA_LBS_POI_DATABASE_H_
