#include "lbs/poi_database.h"

namespace nela::lbs {

PoiDatabase::PoiDatabase(const data::Dataset& dataset, double cell_size)
    : dataset_(&dataset), index_(dataset.points(), cell_size) {}

std::vector<uint32_t> PoiDatabase::RangeQuery(const geo::Rect& region) const {
  return index_.RangeQuery(region);
}

uint64_t PoiDatabase::CountInRange(const geo::Rect& region) const {
  return index_.RangeQuery(region).size();
}

uint64_t PoiDatabase::CountInDisc(const geo::Point& center,
                                  double radius) const {
  return index_.RadiusQuery(center, radius, dataset_->size()).size();
}

std::vector<spatial::Neighbor> PoiDatabase::NearestNeighbors(
    const geo::Point& query, uint32_t count) const {
  // The spatial index excludes a "self" id; pass an out-of-range id so
  // every POI is a candidate.
  return index_.NearestNeighbors(query, count, dataset_->size());
}

}  // namespace nela::lbs
