// k-range-nearest-neighbor (kRNN) candidate computation (§II, server
// side): a cloaked kNN query sends a rectangle instead of a point, and the
// server must return a superset of results that contains the k nearest
// POIs of EVERY possible position inside the rectangle -- the client
// filters locally to its true answer.
//
// Candidate rule (conservative, provably sufficient): let D be the largest
// k-th-nearest-neighbor distance over the rectangle's corners and G its
// diagonal. For any query point q in R, the nearest corner c satisfies
// |q - c| <= G, and c's k nearest POIs lie within D of c, hence within
// D + G of q -- so q's k-th-NN distance is at most D + G and every true
// result lies within D + G of the rectangle. Returning all POIs within
// that distance of R is therefore a correct superset.

#ifndef NELA_LBS_KRNN_H_
#define NELA_LBS_KRNN_H_

#include <cstdint>
#include <vector>

#include "geo/rect.h"
#include "lbs/poi_database.h"

namespace nela::lbs {

struct KrnnResult {
  // Candidate POI ids (superset of the kNN of every point in the region).
  std::vector<uint32_t> candidates;
  // The certified search radius around the region (D + G above).
  double radius = 0.0;
};

// `k` >= 1; `region` non-empty. When the database holds fewer than k POIs,
// every POI is returned.
KrnnResult RangeKnnCandidates(const PoiDatabase& database,
                              const data::Dataset& pois,
                              const geo::Rect& region, uint32_t k);

}  // namespace nela::lbs

#endif  // NELA_LBS_KRNN_H_
