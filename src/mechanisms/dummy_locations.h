// Dummy-location selection (DLS, Niu et al., INFOCOM'14): instead of a
// region, the client sends k plausible locations -- its own cell plus k-1
// dummies -- chosen so the set's query-frequency entropy is maximal (an
// adversary with a popularity side channel cannot down-weight the
// dummies). Candidates are centers of a G x G grid; frequencies are the
// cell occupancies of the user population (the stand-in for a historical
// query log).
//
// Leak contract (audit::MechanismFamily::kDummyLocations): every service
// request carries exactly two kCandidateLocation fields that are exact
// cell centers -- never a raw position -- and the per-host union of
// candidates spans >= k distinct cells including the host's own cell.
// Audited in strict mode.

#ifndef NELA_MECHANISMS_DUMMY_LOCATIONS_H_
#define NELA_MECHANISMS_DUMMY_LOCATIONS_H_

#include <cstdint>
#include <vector>

#include "core/mechanism.h"
#include "data/dataset.h"
#include "net/network.h"

namespace nela::mechanisms {

class DummyLocationMechanism : public core::Mechanism {
 public:
  // `resolution` is the candidate grid side G; `subset_draws` is how many
  // random candidate subsets are scored per request (the DLS heuristic's
  // search width).
  DummyLocationMechanism(const data::Dataset& dataset, net::Network* network,
                         uint32_t k, uint32_t resolution,
                         uint32_t subset_draws);

  const char* name() const override { return "dummy_locations"; }

  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override;

 private:
  const data::Dataset& dataset_;
  net::Network* network_;
  uint32_t k_;
  uint32_t resolution_;
  uint32_t subset_draws_;
  // Cell occupancy of the population, indexed cy * G + cx: the query
  // frequency the entropy heuristic scores against.
  std::vector<uint32_t> frequency_;
};

}  // namespace nela::mechanisms

#endif  // NELA_MECHANISMS_DUMMY_LOCATIONS_H_
