// Mechanism construction by family: the single switch point the
// comparative driver, the service drivers, and the benches share, so a new
// baseline lands in every harness by extending one factory.

#ifndef NELA_MECHANISMS_FACTORY_H_
#define NELA_MECHANISMS_FACTORY_H_

#include <cstdint>
#include <memory>

#include "audit/leak_contract.h"
#include "core/mechanism.h"
#include "data/dataset.h"
#include "net/network.h"
#include "util/status.h"

namespace nela::mechanisms {

// Knobs of the baseline mechanisms; the native cluster-bound scheme is
// configured through its engine instead.
struct MechanismParams {
  // Grid cloak: finest quadtree depth (cell width >= 2^-grid_max_depth).
  uint32_t grid_max_depth = 8;
  // Geo-indistinguishability: privacy budget per unit distance (expected
  // displacement 2/epsilon; 20 on the unit square is a ~0.1 perturbation).
  double epsilon = 20.0;
  // Dummy locations: candidate grid side G and subsets scored per request.
  uint32_t dls_resolution = 16;
  uint32_t dls_subset_draws = 5;
};

// Builds the baseline mechanism of `family` over `dataset`, sending its
// wire artifacts through `network` (nullable: cost-model-only runs).
// Fails with kInvalidArgument for kClusterBound -- the native scheme needs
// a CloakingEngine; wrap it in ClusterBoundMechanism explicitly.
[[nodiscard]] util::Result<std::unique_ptr<core::Mechanism>> MakeMechanism(
    audit::MechanismFamily family, const data::Dataset& dataset,
    net::Network* network, uint32_t k, const MechanismParams& params);

}  // namespace nela::mechanisms

#endif  // NELA_MECHANISMS_FACTORY_H_
