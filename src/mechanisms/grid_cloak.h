// Grid-based spatial cloaking (the quadtree anonymizer of Gruteser &
// Grunwald's adaptive-cloaking lineage): the client uploads its exact
// location to a trusted anonymizer, which publishes the smallest dyadic
// quadtree cell containing the client that holds at least k users.
//
// Leak contract (audit::MechanismFamily::kGridCloak): the upload is a
// DECLARED exposure channel -- the client may send its OWN coordinates,
// tagged kRawCoordinate, and nothing else; the published region must be an
// aligned power-of-two square of depth <= max_depth with >= k occupants
// that contains the sender. Audit with
// ObserverConfig::allow_declared_exposure so the upload is counted, not
// flagged.

#ifndef NELA_MECHANISMS_GRID_CLOAK_H_
#define NELA_MECHANISMS_GRID_CLOAK_H_

#include <cstdint>

#include "core/mechanism.h"
#include "data/dataset.h"
#include "net/network.h"

namespace nela::mechanisms {

class GridCloakMechanism : public core::Mechanism {
 public:
  // `dataset` holds the user population on the unit square (not owned).
  // `network` (nullable, not owned) receives the upload message; the
  // region's own wire artifact is the LBS range request the caller issues.
  GridCloakMechanism(const data::Dataset& dataset, net::Network* network,
                     uint32_t k, uint32_t max_depth);

  const char* name() const override { return "grid_cloak"; }

  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override;

 private:
  const data::Dataset& dataset_;
  net::Network* network_;
  uint32_t k_;
  uint32_t max_depth_;
};

}  // namespace nela::mechanisms

#endif  // NELA_MECHANISMS_GRID_CLOAK_H_
