// Adapter presenting the paper's native clustering + secure-bounding
// workflow (core::CloakingEngine) through the Mechanism seam, so the
// comparative driver and the service drivers can run it side by side with
// the baseline mechanisms under identical audit taps.
//
// Leak contract (audit::MechanismFamily::kClusterBound): nothing beyond
// the adversary observer's shared invariants -- no raw coordinate bit
// pattern on the wire, no knowledge-interval collapse below the increment
// resolution. Audited in strict mode.

#ifndef NELA_MECHANISMS_CLUSTER_BOUND_H_
#define NELA_MECHANISMS_CLUSTER_BOUND_H_

#include "core/cloaking_engine.h"
#include "core/mechanism.h"

namespace nela::mechanisms {

class ClusterBoundMechanism : public core::Mechanism {
 public:
  // `engine` is not owned and must outlive the mechanism. Note the engine
  // serializes registry access internally; per-request randomness still
  // comes from the caller's RequestContext.
  explicit ClusterBoundMechanism(core::CloakingEngine* engine);

  const char* name() const override { return "cluster_bound"; }

  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override;

 private:
  core::CloakingEngine* engine_;
};

}  // namespace nela::mechanisms

#endif  // NELA_MECHANISMS_CLUSTER_BOUND_H_
