#include "mechanisms/comparative_driver.h"

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "audit/observer.h"
#include "audit/taint.h"
#include "audit/tap_chain.h"
#include "cluster/distributed_tconn.h"
#include "cluster/registry.h"
#include "core/cloaking_engine.h"
#include "core/mechanism.h"
#include "core/pipeline.h"
#include "core/policy_factory.h"
#include "core/request_context.h"
#include "lbs/poi_database.h"
#include "lbs/server.h"
#include "mechanisms/cluster_bound.h"
#include "net/network.h"
#include "util/rng.h"

namespace nela::mechanisms {

util::Result<CampaignResult> RunCampaign(const data::Dataset& dataset,
                                         const graph::Wpg& graph,
                                         const CampaignConfig& config) {
  const uint32_t n = dataset.size();
  if (n == 0) return util::InvalidArgumentError("campaign needs users");
  if (config.requests == 0) {
    return util::InvalidArgumentError("campaign needs requests");
  }
  if (config.k == 0) return util::InvalidArgumentError("k must be positive");

  net::Network network(n);
  if (config.fault_plan.has_value()) {
    const util::Status installed =
        network.InstallFaultPlan(*config.fault_plan);
    if (!installed.ok()) return installed;
  }

  // The audit stack: shared non-exposure invariants plus the family's
  // declared-channel contract, chained onto the one network tap.
  audit::TaintSet taint;
  for (net::NodeId user = 0; user < n; ++user) {
    taint.TaintPoint(user, dataset.point(user));
  }
  audit::ObserverConfig observer_config;
  observer_config.taint = &taint;
  // The grid cloak's client->anonymizer upload is its declared exposure
  // channel; every other family is audited strictly.
  observer_config.allow_declared_exposure =
      config.family == audit::MechanismFamily::kGridCloak;
  audit::AdversaryObserver observer(observer_config);

  audit::LeakContractConfig contract;
  contract.family = config.family;
  contract.k = config.k;
  contract.true_points = dataset.points();
  contract.grid_max_depth = config.params.grid_max_depth;
  contract.dls_resolution = config.params.dls_resolution;
  audit::LeakContractChecker checker(contract);

  audit::TapChain taps;
  taps.Add(&observer);
  taps.Add(&checker);
  network.SetTap(&taps);

  const lbs::PoiDatabase database(dataset);
  const lbs::LbsServer server(&database, config.poi_payload_ratio);

  // Mechanism under test. The native scheme drags its whole engine along;
  // the baselines come out of the factory.
  std::optional<cluster::Registry> registry;
  std::optional<core::CloakingEngine> engine;
  std::optional<ClusterBoundMechanism> native;
  std::unique_ptr<core::Mechanism> owned;
  core::Mechanism* mechanism = nullptr;
  if (config.family == audit::MechanismFamily::kClusterBound) {
    registry.emplace(n);
    auto clusterer = std::make_unique<cluster::DistributedTConnClusterer>(
        graph, config.k, &*registry, &network);
    core::BoundingParams bounding;
    bounding.density = static_cast<double>(n);
    engine.emplace(dataset, std::move(clusterer), &*registry,
                   core::MakeSecurePolicyFactory(bounding),
                   core::BoundingMode::kSecureProtocol, &network);
    native.emplace(&*engine);
    mechanism = &*native;
  } else {
    auto made =
        MakeMechanism(config.family, dataset, &network, config.k, config.params);
    if (!made.ok()) return made.status();
    owned = std::move(made).value();
    mechanism = owned.get();
  }

  CampaignResult result;
  result.mechanism = mechanism->name();
  util::Rng workload_rng(config.workload_seed);
  double area_sum = 0.0;
  double candidates_sum = 0.0;
  double cost_sum = 0.0;

  for (uint64_t ordinal = 0; ordinal < config.requests; ++ordinal) {
    const data::UserId host =
        static_cast<data::UserId>(workload_rng.NextUint64(n));
    core::RequestContext ctx(config.master_seed, ordinal, host);
    core::PipelineState state;
    state.host = host;
    state.k = config.k;
    core::MechanismStage stage(mechanism);
    const std::vector<core::Stage*> stages = {&stage};
    const util::Status status = core::RunPipeline(stages, ctx, state);
    core::FinalizeDegradation(ctx, &state.outcome);
    ++result.requests;
    if (!status.ok()) {
      // Hard request error (host offline under the fault plan): counted,
      // not fatal -- the campaign measures the mechanism under faults.
      ++result.request_errors;
      continue;
    }
    if (!state.outcome.anonymity_satisfied) continue;
    ++result.satisfied;

    // The LBS leg: regions ask for their range, probes for a disc each.
    // Replies (and, for regions, the request itself) ride the audited wire.
    uint64_t request_candidates = 0;
    double request_cost = 0.0;
    if (!state.outcome.region.empty()) {
      const lbs::ServiceReply reply =
          server.RangeQuery(state.outcome.region, &network, host);
      request_candidates += reply.candidate_count;
      request_cost += reply.reply_cost;
      area_sum += state.outcome.region.Area();
    }
    for (const geo::Point& probe : state.outcome.probes) {
      const lbs::ServiceReply reply =
          server.ProbeQuery(probe, config.query_radius, &network, host);
      request_candidates += reply.candidate_count;
      request_cost += reply.reply_cost;
    }
    candidates_sum += static_cast<double>(request_candidates);
    cost_sum += request_cost;
  }

  checker.Finalize();
  network.SetTap(nullptr);

  if (result.satisfied > 0) {
    const double satisfied = static_cast<double>(result.satisfied);
    result.mean_region_area = area_sum / satisfied;
    result.mean_candidate_count = candidates_sum / satisfied;
    result.mean_query_cost = cost_sum / satisfied;
  }
  result.mean_messages = static_cast<double>(network.total().messages) /
                         static_cast<double>(result.requests);
  result.observer_violations = observer.violation_count();
  result.contract_violations = checker.violations().size();
  result.declared_exposures = observer.declared_exposures();
  result.tightest_learned_width = observer.TightestLearnedWidth();
  result.messages_on_wire = observer.messages_seen();
  return result;
}

}  // namespace nela::mechanisms
