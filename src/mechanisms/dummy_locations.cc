#include "mechanisms/dummy_locations.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "geo/point.h"
#include "util/check.h"

namespace nela::mechanisms {

namespace {

uint32_t AxisCell(double value, uint32_t resolution) {
  const double scaled = std::floor(value * static_cast<double>(resolution));
  if (scaled < 0.0) return 0;
  const uint32_t index = static_cast<uint32_t>(scaled);
  return index >= resolution ? resolution - 1 : index;
}

geo::Point CellCenter(uint32_t cell, uint32_t resolution) {
  const uint32_t cx = cell % resolution;
  const uint32_t cy = cell / resolution;
  return geo::Point{(static_cast<double>(cx) + 0.5) /
                        static_cast<double>(resolution),
                    (static_cast<double>(cy) + 0.5) /
                        static_cast<double>(resolution)};
}

// Shannon entropy of the subset's frequency distribution: the DLS
// objective (an adversary weighting candidates by popularity gains least
// when the weights are uniform).
double SubsetEntropy(const std::vector<uint32_t>& cells,
                     const std::vector<uint32_t>& frequency) {
  double total = 0.0;
  for (uint32_t cell : cells) total += static_cast<double>(frequency[cell]);
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (uint32_t cell : cells) {
    const double p = static_cast<double>(frequency[cell]) / total;
    if (p > 0.0) entropy -= p * std::log(p);
  }
  return entropy;
}

// Log of the product of pairwise center distances: the tie-breaker that
// prefers spatially spread dummy sets over clumped ones.
double SubsetSpread(const std::vector<uint32_t>& cells, uint32_t resolution) {
  double log_product = 0.0;
  for (size_t i = 0; i < cells.size(); ++i) {
    const geo::Point a = CellCenter(cells[i], resolution);
    for (size_t j = i + 1; j < cells.size(); ++j) {
      const geo::Point b = CellCenter(cells[j], resolution);
      const double dx = a.x - b.x;
      const double dy = a.y - b.y;
      log_product += 0.5 * std::log(dx * dx + dy * dy);
    }
  }
  return log_product;
}

}  // namespace

DummyLocationMechanism::DummyLocationMechanism(const data::Dataset& dataset,
                                               net::Network* network,
                                               uint32_t k, uint32_t resolution,
                                               uint32_t subset_draws)
    : dataset_(dataset),
      network_(network),
      k_(k),
      resolution_(resolution),
      subset_draws_(subset_draws),
      frequency_(static_cast<size_t>(resolution) * resolution, 0) {
  NELA_CHECK_GE(k, 1u);
  NELA_CHECK_GE(resolution, 1u);
  NELA_CHECK_GE(subset_draws, 1u);
  for (const geo::Point& p : dataset.points()) {
    const uint32_t cx = AxisCell(p.x, resolution_);
    const uint32_t cy = AxisCell(p.y, resolution_);
    ++frequency_[static_cast<size_t>(cy) * resolution_ + cx];
  }
}

util::Status DummyLocationMechanism::Cloak(core::RequestContext& ctx,
                                           data::UserId host,
                                           core::MechanismOutcome* outcome) {
  if (host >= dataset_.size()) {
    return util::NotFoundError("dummy locations: host out of range");
  }
  const geo::Point& own = dataset_.point(host);
  const uint32_t own_cell =
      AxisCell(own.y, resolution_) * resolution_ + AxisCell(own.x, resolution_);
  const uint32_t own_frequency = frequency_[own_cell];

  // Candidate pool: the 2k non-empty cells whose query frequency is
  // closest to the host's own (DLS's plausibility pre-filter), ordered
  // deterministically.
  std::vector<uint32_t> pool;
  for (uint32_t cell = 0; cell < frequency_.size(); ++cell) {
    if (cell != own_cell && frequency_[cell] > 0) pool.push_back(cell);
  }
  std::sort(pool.begin(), pool.end(),
            [this, own_frequency](uint32_t a, uint32_t b) {
              const uint32_t da = frequency_[a] > own_frequency
                                      ? frequency_[a] - own_frequency
                                      : own_frequency - frequency_[a];
              const uint32_t db = frequency_[b] > own_frequency
                                      ? frequency_[b] - own_frequency
                                      : own_frequency - frequency_[b];
              if (da != db) return da < db;
              return a < b;
            });
  if (pool.size() > static_cast<size_t>(2) * k_) {
    pool.resize(static_cast<size_t>(2) * k_);
  }

  if (pool.size() + 1 < k_) {
    outcome->satisfied = false;
    outcome->detail = "pool=" + std::to_string(pool.size()) +
                      " below k-1=" + std::to_string(k_ - 1);
    return util::Status::Ok();
  }

  // Score `subset_draws` random candidate subsets; keep the max-entropy
  // one, breaking ties toward the spatially widest spread. All draws come
  // from the request's private sub-stream.
  std::vector<uint32_t> best;
  double best_entropy = -1.0;
  double best_spread = 0.0;
  for (uint32_t draw = 0; draw < subset_draws_; ++draw) {
    std::vector<uint32_t> subset = {own_cell};
    for (uint32_t index : ctx.rng().SampleWithoutReplacement(
             static_cast<uint32_t>(pool.size()), k_ - 1)) {
      subset.push_back(pool[index]);
    }
    const double entropy = SubsetEntropy(subset, frequency_);
    const double spread = SubsetSpread(subset, resolution_);
    if (entropy > best_entropy ||
        (entropy == best_entropy && spread > best_spread)) {
      best = std::move(subset);
      best_entropy = entropy;
      best_spread = spread;
    }
  }
  std::sort(best.begin(), best.end());

  // One service request per candidate, every coordinate snapped to its
  // cell center: the wire never carries the host's raw position.
  for (uint32_t cell : best) {
    const geo::Point center = CellCenter(cell, resolution_);
    if (network_ != nullptr) {
      net::Message request;
      request.from = host;
      request.to = host;
      request.kind = net::MessageKind::kServiceRequest;
      request.bytes = 16;
      request.payload.Add(net::FieldTag::kCandidateLocation, host, center.x);
      request.payload.Add(net::FieldTag::kCandidateLocation, host, center.y);
      network_->Send(request, &ctx.scope());
      ++outcome->messages_sent;
    }
    outcome->probes.push_back(center);
  }
  outcome->satisfied = true;
  outcome->detail = "candidates=" + std::to_string(best.size()) +
                    " pool=" + std::to_string(pool.size());
  return util::Status::Ok();
}

}  // namespace nela::mechanisms
