#include "mechanisms/factory.h"

#include "mechanisms/dummy_locations.h"
#include "mechanisms/geo_ind.h"
#include "mechanisms/grid_cloak.h"

namespace nela::mechanisms {

util::Result<std::unique_ptr<core::Mechanism>> MakeMechanism(
    audit::MechanismFamily family, const data::Dataset& dataset,
    net::Network* network, uint32_t k, const MechanismParams& params) {
  switch (family) {
    case audit::MechanismFamily::kClusterBound:
      return util::InvalidArgumentError(
          "cluster_bound needs a CloakingEngine; construct "
          "ClusterBoundMechanism directly");
    case audit::MechanismFamily::kGridCloak:
      return std::unique_ptr<core::Mechanism>(new GridCloakMechanism(
          dataset, network, k, params.grid_max_depth));
    case audit::MechanismFamily::kGeoInd:
      return std::unique_ptr<core::Mechanism>(
          new GeoIndMechanism(dataset, network, params.epsilon));
    case audit::MechanismFamily::kDummyLocations:
      return std::unique_ptr<core::Mechanism>(new DummyLocationMechanism(
          dataset, network, k, params.dls_resolution,
          params.dls_subset_draws));
  }
  return util::InvalidArgumentError("unknown mechanism family");
}

}  // namespace nela::mechanisms
