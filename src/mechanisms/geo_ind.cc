#include "mechanisms/geo_ind.h"

#include <cmath>
#include <string>

#include "util/check.h"

namespace nela::mechanisms {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

GeoIndMechanism::GeoIndMechanism(const data::Dataset& dataset,
                                 net::Network* network, double epsilon)
    : dataset_(dataset), network_(network), epsilon_(epsilon) {
  NELA_CHECK_GT(epsilon, 0.0);
}

util::Status GeoIndMechanism::Cloak(core::RequestContext& ctx,
                                    data::UserId host,
                                    core::MechanismOutcome* outcome) {
  if (host >= dataset_.size()) {
    return util::NotFoundError("geo-ind: host out of range");
  }
  const geo::Point& own = dataset_.point(host);

  // Planar Laplace: uniform angle, radius ~ Gamma(2, epsilon) -- the sum
  // of two exponentials, matching the polar density eps^2 * r * e^{-eps r}.
  // Both draws come from the request's private sub-stream, so the probe is
  // bit-identical for a given (master_seed, ordinal) under any scheduling.
  const double angle = ctx.rng().NextDouble(0.0, kTwoPi);
  const double radius =
      ctx.rng().NextExponential(epsilon_) + ctx.rng().NextExponential(epsilon_);
  const geo::Point probe{own.x + radius * std::cos(angle),
                         own.y + radius * std::sin(angle)};

  if (network_ != nullptr) {
    net::Message request;
    request.from = host;
    request.to = host;
    request.kind = net::MessageKind::kServiceRequest;
    request.bytes = 16;
    request.payload.Add(net::FieldTag::kNoisedCoordinate, host, probe.x);
    request.payload.Add(net::FieldTag::kNoisedCoordinate, host, probe.y);
    network_->Send(request, &ctx.scope());
    ++outcome->messages_sent;
  }

  outcome->probes.push_back(probe);
  outcome->satisfied = true;
  outcome->detail = "probes=1";
  return util::Status::Ok();
}

}  // namespace nela::mechanisms
