// Comparative mechanism campaign: runs one mechanism family over a shared
// workload with the full audit stack tapped onto the wire, and reports the
// paper-style privacy/utility/cost columns side by side.
//
// Every request goes through the same envelope as the native scheme --
// RequestContext sub-stream, MechanismStage under RunPipeline,
// FinalizeDegradation -- and every wire artifact passes the
// AdversaryObserver (shared non-exposure invariants) chained with the
// family's LeakContractChecker (the declared-channel shape), so a
// mechanism cannot look cheap by leaking: anything sharper than its
// contract surfaces in the same result row as its cost.

#ifndef NELA_MECHANISMS_COMPARATIVE_DRIVER_H_
#define NELA_MECHANISMS_COMPARATIVE_DRIVER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "audit/leak_contract.h"
#include "data/dataset.h"
#include "graph/wpg.h"
#include "mechanisms/factory.h"
#include "net/fault_plan.h"
#include "util/status.h"

namespace nela::mechanisms {

struct CampaignConfig {
  audit::MechanismFamily family = audit::MechanismFamily::kClusterBound;
  // Anonymity / candidate-set requirement.
  uint32_t k = 5;
  uint32_t requests = 32;
  // Request RNG sub-streams derive from (master_seed, ordinal); hosts are
  // drawn from workload_seed.
  uint64_t master_seed = 1;
  uint64_t workload_seed = 7;
  MechanismParams params;
  // LBS utility target: probe mechanisms ask for POIs within this radius
  // of each probe (region mechanisms ask for the region's POIs).
  double query_radius = 0.05;
  // Cr: clustering-message units one POI object costs to ship.
  double poi_payload_ratio = 50.0;
  // Optional fault injection for robustness sweeps.
  std::optional<net::FaultPlan> fault_plan;
};

struct CampaignResult {
  std::string mechanism;
  uint64_t requests = 0;
  // Requests whose mechanism met its privacy target.
  uint64_t satisfied = 0;
  // Hard per-request errors (host offline under a fault plan).
  uint64_t request_errors = 0;
  // --- Utility / cost, averaged over satisfied requests ------------------
  double mean_region_area = 0.0;      // 0 for pure probe mechanisms
  double mean_candidate_count = 0.0;  // POI candidates shipped back
  double mean_query_cost = 0.0;       // candidate_count * Cr
  double mean_messages = 0.0;         // wire messages per request
  // --- Privacy: what the adversary provably got --------------------------
  uint64_t observer_violations = 0;  // non-exposure invariant breaches
  uint64_t contract_violations = 0;  // declared-channel shape breaches
  uint64_t declared_exposures = 0;   // counted raw uploads (grid cloak)
  // Narrowest knowledge interval any principal learned (+inf when the
  // mechanism never runs the bounding protocol).
  double tightest_learned_width = 0.0;
  uint64_t messages_on_wire = 0;
};

// Runs the campaign. `graph` is only consulted by the native cluster-bound
// family (phase-1 clustering); baselines ignore it.
[[nodiscard]] util::Result<CampaignResult> RunCampaign(
    const data::Dataset& dataset, const graph::Wpg& graph,
    const CampaignConfig& config);

}  // namespace nela::mechanisms

#endif  // NELA_MECHANISMS_COMPARATIVE_DRIVER_H_
