#include "mechanisms/cluster_bound.h"

#include <string>
#include <utility>

#include "util/check.h"

namespace nela::mechanisms {

ClusterBoundMechanism::ClusterBoundMechanism(core::CloakingEngine* engine)
    : engine_(engine) {
  NELA_CHECK(engine != nullptr);
}

util::Status ClusterBoundMechanism::Cloak(core::RequestContext& ctx,
                                          data::UserId host,
                                          core::MechanismOutcome* outcome) {
  util::Result<core::CloakingOutcome> result =
      engine_->RequestCloaking(host, ctx);
  if (!result.ok()) return result.status();
  core::CloakingOutcome inner = std::move(result).value();
  outcome->region = inner.region;
  outcome->satisfied = inner.anonymity_satisfied;
  outcome->messages_sent =
      inner.clustering_messages + inner.bounding_verifications;
  outcome->detail =
      "cluster=" + std::to_string(inner.cluster_id) +
      (inner.region_reused ? " region_reused" : "") +
      (inner.cluster_reused ? " cluster_reused" : "") +
      (inner.degradation.degraded() ? " degraded" : "");
  return util::Status::Ok();
}

}  // namespace nela::mechanisms
