// Geo-indistinguishability (Andrés et al., CCS'13): perturb the client's
// location with planar Laplace noise and query the LBS with the noised
// point. No anonymizer, no other users involved; privacy is the
// epsilon-bounded ratio between the noised point's likelihood under any
// two nearby true locations.
//
// Leak contract (audit::MechanismFamily::kGeoInd): every service request
// carries exactly two kNoisedCoordinate fields and nothing else, and
// neither may be bit-equal to any user's true coordinate (the noise must
// actually have been applied). Audited in strict mode -- nothing is
// declared.

#ifndef NELA_MECHANISMS_GEO_IND_H_
#define NELA_MECHANISMS_GEO_IND_H_

#include "core/mechanism.h"
#include "data/dataset.h"
#include "net/network.h"

namespace nela::mechanisms {

class GeoIndMechanism : public core::Mechanism {
 public:
  // `epsilon` is the privacy parameter per unit of distance: larger means
  // less noise (the noised point's expected displacement is 2/epsilon).
  GeoIndMechanism(const data::Dataset& dataset, net::Network* network,
                  double epsilon);

  const char* name() const override { return "geo_ind"; }

  [[nodiscard]] util::Status Cloak(core::RequestContext& ctx,
                                   data::UserId host,
                                   core::MechanismOutcome* outcome) override;

 private:
  const data::Dataset& dataset_;
  net::Network* network_;
  double epsilon_;
};

}  // namespace nela::mechanisms

#endif  // NELA_MECHANISMS_GEO_IND_H_
