#include "mechanisms/grid_cloak.h"

#include <cmath>
#include <string>

#include "util/check.h"

namespace nela::mechanisms {

namespace {

// Cell index of `value` on a row of `cells` dyadic cells, clamped so the
// 1.0 boundary lands in the last cell.
uint64_t CellIndex(double value, uint64_t cells) {
  const double scaled = std::floor(value * static_cast<double>(cells));
  if (scaled < 0.0) return 0;
  const uint64_t index = static_cast<uint64_t>(scaled);
  return index >= cells ? cells - 1 : index;
}

}  // namespace

GridCloakMechanism::GridCloakMechanism(const data::Dataset& dataset,
                                       net::Network* network, uint32_t k,
                                       uint32_t max_depth)
    : dataset_(dataset), network_(network), k_(k), max_depth_(max_depth) {
  NELA_CHECK_GE(k, 1u);
  NELA_CHECK_LE(max_depth, 32u);
}

util::Status GridCloakMechanism::Cloak(core::RequestContext& ctx,
                                       data::UserId host,
                                       core::MechanismOutcome* outcome) {
  if (host >= dataset_.size()) {
    return util::NotFoundError("grid cloak: host out of range");
  }
  const geo::Point& own = dataset_.point(host);

  // Declared channel: the client's location upload to the anonymizer. The
  // anonymizer is trusted, so the client node doubles as its endpoint (the
  // network models only the user population).
  if (network_ != nullptr) {
    net::Message upload;
    upload.from = host;
    upload.to = host;
    upload.kind = net::MessageKind::kControl;
    upload.bytes = 16;
    // nela-lint: declare-exposure(grid-cloak-upload)
    upload.payload.Add(net::FieldTag::kRawCoordinate, host, own.x);
    // nela-lint: declare-exposure(grid-cloak-upload)
    upload.payload.Add(net::FieldTag::kRawCoordinate, host, own.y);
    network_->Send(upload, &ctx.scope());
    ++outcome->messages_sent;
  }

  // Walk from the finest cell up to the root until the host's cell holds
  // at least k users. Occupancy uses the same floor-based cell map as the
  // host's own placement, so the published cell always contains its own
  // occupants under the checker's inclusive-edge count.
  for (uint32_t depth = max_depth_ + 1; depth-- > 0;) {
    const uint64_t cells = uint64_t{1} << depth;
    const uint64_t cx = CellIndex(own.x, cells);
    const uint64_t cy = CellIndex(own.y, cells);
    uint32_t occupants = 0;
    for (const geo::Point& p : dataset_.points()) {
      if (CellIndex(p.x, cells) == cx && CellIndex(p.y, cells) == cy) {
        ++occupants;
      }
    }
    if (occupants < k_) continue;
    const double width = std::ldexp(1.0, -static_cast<int>(depth));
    outcome->region =
        geo::Rect(static_cast<double>(cx) * width,
                  static_cast<double>(cy) * width,
                  static_cast<double>(cx + 1) * width,
                  static_cast<double>(cy + 1) * width);
    outcome->satisfied = true;
    outcome->detail = "depth=" + std::to_string(depth) +
                      " occupants=" + std::to_string(occupants);
    return util::Status::Ok();
  }

  // Even the root cell (the whole plane) holds fewer than k users.
  outcome->satisfied = false;
  outcome->detail = "population=" + std::to_string(dataset_.size()) +
                    " below k=" + std::to_string(k_);
  return util::Status::Ok();
}

}  // namespace nela::mechanisms
