// Invariant-checking macros.
//
// The library does not use C++ exceptions (see DESIGN.md). Programming errors
// -- violated preconditions, broken invariants -- abort the process with a
// diagnostic. Recoverable errors flow through util::Status instead.

#ifndef NELA_UTIL_CHECK_H_
#define NELA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts with a message when `condition` is false. Always enabled, including
// release builds: a cloaking library that silently corrupts a cluster is
// worse than one that stops.
#define NELA_CHECK(condition)                                           \
  do {                                                                  \
    if (!(condition)) {                                                 \
      std::fprintf(stderr, "NELA_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #condition);                               \
      std::abort();                                                     \
    }                                                                   \
  } while (false)

// Binary comparison checks with both values printed via the format string
// chosen by the caller site being unnecessary; keep the simple form.
#define NELA_CHECK_EQ(a, b) NELA_CHECK((a) == (b))
#define NELA_CHECK_NE(a, b) NELA_CHECK((a) != (b))
#define NELA_CHECK_LT(a, b) NELA_CHECK((a) < (b))
#define NELA_CHECK_LE(a, b) NELA_CHECK((a) <= (b))
#define NELA_CHECK_GT(a, b) NELA_CHECK((a) > (b))
#define NELA_CHECK_GE(a, b) NELA_CHECK((a) >= (b))

#endif  // NELA_UTIL_CHECK_H_
