#include "util/proptest.h"

#include <cerrno>
#include <cstdlib>

#include "util/check.h"

namespace nela::util {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::optional<uint64_t> ParseEnvUint64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (errno != 0 || end == raw || *end != '\0') return std::nullopt;
  return static_cast<uint64_t>(value);
}

// Runs one case: a fresh Rng from the case seed, size drawn from the same
// seed stream so the seed alone pins the whole scenario.
std::optional<std::string> RunCase(const PropSpec& spec,
                                   const Property& property,
                                   uint64_t case_seed, uint32_t* size_out) {
  Rng size_rng(SplitMix64(case_seed));
  uint32_t size = spec.min_size;
  if (spec.max_size > spec.min_size) {
    size += static_cast<uint32_t>(
        size_rng.NextUint64(spec.max_size - spec.min_size + 1));
  }
  if (size_out != nullptr) *size_out = size;
  Rng rng(case_seed);
  return property(rng, size);
}

// Re-runs the failing case at progressively halved sizes (same seed), and
// keeps the smallest size that still fails.
void Shrink(const PropSpec& spec, const Property& property,
            uint64_t case_seed, PropFailure* failure) {
  uint32_t size = failure->size;
  while (size > spec.min_size) {
    const uint32_t candidate =
        size / 2 < spec.min_size ? spec.min_size : size / 2;
    Rng rng(case_seed);
    const std::optional<std::string> message = property(rng, candidate);
    if (!message.has_value()) break;
    failure->size = candidate;
    failure->message = *message;
    if (candidate == spec.min_size) break;
    size = candidate;
  }
}

}  // namespace

uint32_t PropIterations(uint32_t fallback) {
  const std::optional<uint64_t> value = ParseEnvUint64("NELA_PROPTEST_ITERS");
  if (!value.has_value() || *value == 0) return fallback;
  constexpr uint64_t kMax = 0xffffffffull;
  return static_cast<uint32_t>(*value > kMax ? kMax : *value);
}

std::optional<uint64_t> PropSeedOverride() {
  return ParseEnvUint64("NELA_PROPTEST_SEED");
}

uint64_t DeriveCaseSeed(uint64_t base_seed, uint32_t iteration) {
  return SplitMix64(base_seed + SplitMix64(iteration + 1));
}

std::string ReproLine(const PropSpec& spec, uint64_t case_seed) {
  return "repro: NELA_PROPTEST_SEED=" + std::to_string(case_seed) +
         " NELA_PROPTEST_ITERS=1 ctest -R " + spec.name +
         " --output-on-failure";
}

std::optional<PropFailure> RunProperty(const PropSpec& spec,
                                       const Property& property) {
  NELA_CHECK(property != nullptr);
  NELA_CHECK_GE(spec.max_size, spec.min_size);
  const std::optional<uint64_t> seed_override = PropSeedOverride();
  const uint32_t iterations =
      seed_override.has_value() ? 1 : PropIterations(spec.iterations);

  for (uint32_t i = 0; i < iterations; ++i) {
    const uint64_t case_seed =
        seed_override.has_value() ? *seed_override
                                  : DeriveCaseSeed(spec.base_seed, i);
    uint32_t size = 0;
    const std::optional<std::string> message =
        RunCase(spec, property, case_seed, &size);
    if (!message.has_value()) continue;
    PropFailure failure;
    failure.case_seed = case_seed;
    failure.iteration = i;
    failure.size = size;
    failure.message = *message;
    Shrink(spec, property, case_seed, &failure);
    failure.repro = ReproLine(spec, case_seed);
    return failure;
  }
  return std::nullopt;
}

}  // namespace nela::util
