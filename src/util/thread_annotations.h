// Clang Thread Safety Analysis attribute macros.
//
// These expand to Clang's `capability` attribute family when the compiler
// supports it and to nothing everywhere else (GCC builds the tree with the
// macros erased; the CI `thread-safety` job builds with Clang and
// -Werror=thread-safety, which is where the annotations become a hard
// gate — see DESIGN.md, "Compile-time adversary").
//
// The vocabulary is the standard one from the Clang documentation:
//
//   CAPABILITY("mutex")   on a type T makes T a capability; GUARDED_BY(mu)
//   on a member means every read/write must hold mu; REQUIRES(mu) on a
//   function means callers must hold mu at entry (the `FooLocked()` helper
//   convention); ACQUIRE/RELEASE annotate the functions that take and drop
//   the capability (RAII guard types use SCOPED_CAPABILITY); EXCLUDES(mu)
//   documents "must NOT hold mu" (self-deadlock fences on public entry
//   points); ACQUIRED_BEFORE/AFTER declare the global lock hierarchy so
//   the analysis can reject inversions.
//
// Use util::Mutex / util::MutexLock (util/mutex.h) rather than annotating
// std::mutex directly: libstdc++'s mutex types carry no capability
// attributes, so the analysis cannot see through std::lock_guard.

#ifndef NELA_UTIL_THREAD_ANNOTATIONS_H_
#define NELA_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define NELA_THREAD_ANNOTATION_IMPL(x) __attribute__((x))
#else
#define NELA_THREAD_ANNOTATION_IMPL(x)  // no-op outside Clang
#endif

// A type that models a lockable resource (mutexes, readers-writer locks).
#define CAPABILITY(x) NELA_THREAD_ANNOTATION_IMPL(capability(x))

// An RAII type whose lifetime holds a capability (lock guards).
#define SCOPED_CAPABILITY NELA_THREAD_ANNOTATION_IMPL(scoped_lockable)

// Data member: accessible only while holding the given capability.
#define GUARDED_BY(x) NELA_THREAD_ANNOTATION_IMPL(guarded_by(x))

// Pointer member: the *pointee* is protected by the given capability.
#define PT_GUARDED_BY(x) NELA_THREAD_ANNOTATION_IMPL(pt_guarded_by(x))

// Function precondition: the caller holds the capability (and, for the
// SHARED form, at least a reader hold).
#define REQUIRES(...) \
  NELA_THREAD_ANNOTATION_IMPL(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NELA_THREAD_ANNOTATION_IMPL(requires_shared_capability(__VA_ARGS__))

// Function effect: acquires / releases the capability.
#define ACQUIRE(...) \
  NELA_THREAD_ANNOTATION_IMPL(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NELA_THREAD_ANNOTATION_IMPL(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  NELA_THREAD_ANNOTATION_IMPL(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NELA_THREAD_ANNOTATION_IMPL(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  NELA_THREAD_ANNOTATION_IMPL(try_acquire_capability(__VA_ARGS__))

// Function precondition: the caller must NOT hold the capability (guards
// public entry points against self-deadlock via re-entry).
#define EXCLUDES(...) NELA_THREAD_ANNOTATION_IMPL(locks_excluded(__VA_ARGS__))

// Global lock-ordering declarations; an acquisition that contradicts the
// declared partial order is a -Wthread-safety-beta error.
#define ACQUIRED_BEFORE(...) \
  NELA_THREAD_ANNOTATION_IMPL(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  NELA_THREAD_ANNOTATION_IMPL(acquired_after(__VA_ARGS__))

// Accessor returning a reference to the capability protecting *this, so
// other classes can name it in their own annotations (cross-class
// ACQUIRED_BEFORE relations need an expression for the foreign lock).
#define RETURN_CAPABILITY(x) NELA_THREAD_ANNOTATION_IMPL(lock_returned(x))

// Last resort: disables the analysis for one function. Every use must
// carry a comment justifying why the analysis cannot see the invariant
// (the ISSUE 10 acceptance bar forbids blanket escapes).
#define NO_THREAD_SAFETY_ANALYSIS \
  NELA_THREAD_ANNOTATION_IMPL(no_thread_safety_analysis)

#endif  // NELA_UTIL_THREAD_ANNOTATIONS_H_
