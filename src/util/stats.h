// Streaming and batch summary statistics used by the benchmark harness.

#ifndef NELA_UTIL_STATS_H_
#define NELA_UTIL_STATS_H_

#include <cstdint>
#include <vector>

namespace nela::util {

// Single-pass accumulator for mean/variance/min/max (Welford's method).
class OnlineStats {
 public:
  OnlineStats() = default;

  void Add(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  // Mean of the added values; 0 when empty.
  double Mean() const;
  // Unbiased sample variance; 0 with fewer than two values.
  double Variance() const;
  double StdDev() const;
  // Min/max; 0 when empty.
  double Min() const;
  double Max() const;

  // Merges another accumulator into this one.
  void Merge(const OnlineStats& other);

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Linearly interpolated percentile of `values` (copied and sorted inside).
// `q` in [0, 1]. Returns 0 for an empty input.
double Percentile(std::vector<double> values, double q);

}  // namespace nela::util

#endif  // NELA_UTIL_STATS_H_
