// Minimal seeded property-test harness.
//
// A property is a predicate over randomly generated scenarios: the harness
// runs it for a configurable number of cases, each driven by an Rng whose
// seed is derived deterministically from the base seed and the case index.
// On failure it shrinks the scenario size by halving and reports the exact
// environment line that replays the failing case, so a CI hit reproduces
// locally with one command.
//
// Environment knobs (read at RunProperty time):
//   NELA_PROPTEST_ITERS  overrides the case count (CI runs elevated counts).
//   NELA_PROPTEST_SEED   replays exactly one case with the given case seed
//                        (the value printed in a failure's repro line).
//
// The harness is test-framework-agnostic: it returns an
// std::optional<PropFailure> and never asserts, so callers surface failures
// through whatever assertion macro they use.

#ifndef NELA_UTIL_PROPTEST_H_
#define NELA_UTIL_PROPTEST_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/rng.h"

namespace nela::util {

struct PropSpec {
  // Identifies the property in repro lines (use the test name).
  std::string name = "prop";
  // Base seed; case i derives its seed from (base_seed, i).
  uint64_t base_seed = 0x5eed5eed5eed5eedull;
  // Case count before the NELA_PROPTEST_ITERS override.
  uint32_t iterations = 100;
  // Scenario size bounds; each case draws its size uniformly from
  // [min_size, max_size], and shrinking halves toward min_size.
  uint32_t min_size = 1;
  uint32_t max_size = 100;
};

struct PropFailure {
  uint64_t case_seed = 0;
  uint32_t iteration = 0;
  // Smallest size still failing after shrink-by-halving.
  uint32_t size = 0;
  // The property's message at the shrunk size.
  std::string message;
  // Environment line that replays this case: paste before the test command.
  std::string repro;
};

// A property receives a freshly seeded Rng and the scenario size; it
// returns nullopt on success or a diagnostic on failure. Re-invocations
// with the same seed and size must behave identically (no hidden state),
// or shrinking and replay lose their meaning.
using Property =
    std::function<std::optional<std::string>(Rng& rng, uint32_t size)>;

// Number of cases to run: NELA_PROPTEST_ITERS when set and parseable,
// otherwise `fallback`.
uint32_t PropIterations(uint32_t fallback);

// The NELA_PROPTEST_SEED override, when set and parseable.
std::optional<uint64_t> PropSeedOverride();

// Deterministic per-case seed derivation (SplitMix64 over base and index).
uint64_t DeriveCaseSeed(uint64_t base_seed, uint32_t iteration);

// The repro environment line reported with a failure.
std::string ReproLine(const PropSpec& spec, uint64_t case_seed);

// Runs the property over the configured cases, shrinking the first failure.
// Returns nullopt when every case passes.
std::optional<PropFailure> RunProperty(const PropSpec& spec,
                                       const Property& property);

}  // namespace nela::util

#endif  // NELA_UTIL_PROPTEST_H_
