// Chase-Lev-style work-stealing deque over pre-filled chunk indices.
//
// One deque per pool worker: the owner pushes its initial chunk assignment
// before the parallel region starts, then pops from the bottom (LIFO, so it
// walks its own chunks in ascending order when pre-filled in reverse);
// idle workers steal from the top (FIFO, so thieves take the chunks
// furthest from the owner's current locality window). The implementation
// follows the C11 formulation of Lê, Pop, Cohen & Zappa Nardelli,
// "Correct and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13),
// minus the grow path: capacity is fixed because every item is pushed
// before the first concurrent pop/steal, which is all the chunked
// scheduler needs.
//
// Determinism note: the deque decides *who executes* a chunk, never what
// the chunk computes. Schedulers built on it stay deterministic by keeping
// every output slot indexed by chunk or by item, not by executing worker
// (see DESIGN.md, "Performance architecture").
//
// This header is part of the util::ThreadPool implementation and shares
// its lint scope: the pool-only-threads rule (tools/nela_lint raw-thread)
// recognizes it as a thread-machinery home.
//
// Thread-safety annotations: none apply. The deque is lock-free — it owns
// no mutex and guards nothing with one, so there is no capability for
// Clang's analysis to track; its correctness argument is the PPoPP'13
// memory-ordering proof above, checked dynamically by the TSan CI lane
// rather than statically.

#ifndef NELA_UTIL_STEAL_DEQUE_H_
#define NELA_UTIL_STEAL_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace nela::util {

class StealDeque {
 public:
  // A deque holding at most `capacity` items. Capacity is exact: pushing
  // more than `capacity` items is a checked error.
  explicit StealDeque(uint64_t capacity)
      : buffer_(capacity), top_(0), bottom_(0) {}

  StealDeque(const StealDeque&) = delete;
  StealDeque& operator=(const StealDeque&) = delete;

  // Owner-only push. All pushes happen before the first concurrent
  // Pop/Steal (the scheduler pre-fills every deque, then dispatches), so a
  // release store on bottom_ is enough to publish the item.
  void Push(uint64_t item) {
    const int64_t b = bottom_.load(std::memory_order_relaxed);
    NELA_CHECK_LT(static_cast<uint64_t>(b), buffer_.size());
    buffer_[static_cast<size_t>(b)].store(item, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner-only pop from the bottom (most recently pushed end). Returns
  // false when the deque is empty or the last item was lost to a
  // concurrent steal.
  bool Pop(uint64_t* item) {
    // The PPoPP'13 formulation separates the bottom_ store and top_ load
    // with a seq_cst fence; seq_cst operations on the atomics themselves
    // are strictly stronger (they forbid the same store->load reordering
    // via the single total order) and, unlike fences, are instrumented by
    // GCC's TSan. Pops are per-chunk, so the extra barrier is amortized
    // over thousands of items.
    const int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_seq_cst);
    int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty: restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *item = buffer_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    if (t != b) return true;  // more than one item left: no race possible
    // Exactly one item: race against thieves for it via top_.
    const bool won = top_.compare_exchange_strong(
        t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_relaxed);
    return won;
  }

  // Thief-side steal from the top (oldest end). Returns false when empty
  // or when the CAS was lost to a concurrent pop/steal (callers should
  // treat that as "try elsewhere", not "no work anywhere").
  bool Steal(uint64_t* item) {
    int64_t t = top_.load(std::memory_order_seq_cst);
    const int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return false;
    const uint64_t candidate =
        buffer_[static_cast<size_t>(t)].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;
    }
    *item = candidate;
    return true;
  }

  // Racy size estimate; exact only when no pops/steals are in flight.
  uint64_t ApproxSize() const {
    const int64_t b = bottom_.load(std::memory_order_acquire);
    const int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<uint64_t>(b - t) : 0;
  }

 private:
  std::vector<std::atomic<uint64_t>> buffer_;
  std::atomic<int64_t> top_;
  std::atomic<int64_t> bottom_;
};

}  // namespace nela::util

#endif  // NELA_UTIL_STEAL_DEQUE_H_
