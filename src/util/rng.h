// Deterministic pseudo-random number generation.
//
// Every stochastic component of the library (dataset generation, workload
// sampling, failure injection) draws from an explicitly seeded Rng so that
// experiments are reproducible bit-for-bit across runs and platforms. The
// core generator is xoshiro256** seeded through SplitMix64, both public
// domain algorithms with well-studied statistical quality.

#ifndef NELA_UTIL_RNG_H_
#define NELA_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace nela::util {

class Rng {
 public:
  // Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(uint64_t seed);

  // Next raw 64-bit output.
  uint64_t NextUint64();

  // Uniform in [0, bound). `bound` must be positive. Uses rejection sampling
  // to avoid modulo bias.
  uint64_t NextUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal via the polar Box-Muller method.
  double NextGaussian();

  // Gaussian with the given mean and standard deviation (sigma >= 0).
  double NextGaussian(double mean, double sigma);

  // Exponential with rate lambda > 0 (mean 1/lambda).
  double NextExponential(double lambda);

  // True with probability p in [0, 1].
  bool NextBernoulli(double p);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Samples `count` distinct indices from [0, population) without
  // replacement. Requires count <= population. Output order is random.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t population,
                                                 uint32_t count);

  // Derives an independent child generator; useful to give each component
  // its own stream from one experiment seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace nela::util

#endif  // NELA_UTIL_RNG_H_
