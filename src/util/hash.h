// Shared FNV-1a (64-bit) mixing helpers.
//
// One hash, three consumers: cluster::Registry::Digest() (the determinism
// and recovery-equality fingerprint), the durability WAL/checkpoint record
// checksums, and the sim drivers' result digests. Keeping the constants and
// the byte order in one place is what makes "digest equality" a meaningful
// cross-subsystem statement: a WAL replayed into a fresh registry can be
// compared bit-for-bit against the pre-crash registry only because both
// sides fold state through these exact functions.

#ifndef NELA_UTIL_HASH_H_
#define NELA_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace nela::util {

inline constexpr uint64_t kFnv64Offset = 1469598103934665603ull;
inline constexpr uint64_t kFnv64Prime = 1099511628211ull;

// Folds the 8 bytes of `value` (least-significant first) into `digest`.
// Initialize the digest with kFnv64Offset.
inline void FnvMix64(uint64_t* digest, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *digest ^= (value >> (8 * i)) & 0xffu;
    *digest *= kFnv64Prime;
  }
}

// FNV-1a over a raw byte range; `seed` chains multi-buffer hashes.
inline uint64_t FnvHashBytes(const void* data, size_t size,
                             uint64_t seed = kFnv64Offset) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint64_t digest = seed;
  for (size_t i = 0; i < size; ++i) {
    digest ^= bytes[i];
    digest *= kFnv64Prime;
  }
  return digest;
}

// Bit pattern of a double, for hashing / exact serialization. NaN payloads
// and signed zeros round-trip unchanged.
inline uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

inline double DoubleFromBits(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace nela::util

#endif  // NELA_UTIL_HASH_H_
