// Minimal command-line flag parsing for bench/example binaries.
//
// Supports `--name=value` and `--name value`. Unknown flags are an error so
// typos do not silently run a default experiment.

#ifndef NELA_UTIL_FLAGS_H_
#define NELA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace nela::util {

class FlagParser {
 public:
  FlagParser() = default;
  FlagParser(const FlagParser&) = delete;
  FlagParser& operator=(const FlagParser&) = delete;

  // Registration. `description` is shown by PrintUsage. Each call binds a
  // flag name to storage owned by the caller, which must outlive Parse.
  void AddInt64(const std::string& name, int64_t* value,
                const std::string& description);
  void AddDouble(const std::string& name, double* value,
                 const std::string& description);
  void AddString(const std::string& name, std::string* value,
                 const std::string& description);
  void AddBool(const std::string& name, bool* value,
               const std::string& description);

  // Parses argv, writing through the registered pointers. Returns an error
  // for unknown flags or malformed values. `--help` prints usage and returns
  // an OutOfRange status the caller can treat as "exit 0".
  [[nodiscard]] Status Parse(int argc, char** argv);

  void PrintUsage(const std::string& program) const;

 private:
  enum class Type { kInt64, kDouble, kString, kBool };
  struct Entry {
    Type type;
    void* target;
    std::string description;
    std::string default_text;
  };

  [[nodiscard]] Status SetValue(const std::string& name, const std::string& text);

  std::map<std::string, Entry> entries_;
};

}  // namespace nela::util

#endif  // NELA_UTIL_FLAGS_H_
