#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nela::util {

void OnlineStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double OnlineStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double OnlineStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::StdDev() const { return std::sqrt(Variance()); }

double OnlineStats::Min() const { return count_ == 0 ? 0.0 : min_; }
double OnlineStats::Max() const { return count_ == 0 ? 0.0 : max_; }

void OnlineStats::Merge(const OnlineStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) / total;
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          total;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  NELA_CHECK_GE(q, 0.0);
  NELA_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double rank = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace nela::util
