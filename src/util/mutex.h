// Annotated mutex / lock / condition-variable wrappers for Clang Thread
// Safety Analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability
// attributes, so code locking them is invisible to -Wthread-safety. These
// wrappers are the thinnest possible shims — same fast path, zero state
// beyond the wrapped primitive — whose acquire/release points are visible
// to the analysis. Every mutex-owning type in the tree holds a
// util::Mutex and guards its members with GUARDED_BY; see
// util/thread_annotations.h for the attribute vocabulary and DESIGN.md
// ("Compile-time adversary") for the tree-wide lock hierarchy.
//
// MutexLock is deliberately relockable (Lock/Unlock on the guard, like
// std::unique_lock) because the sharded service driver's turnstile drops
// the run lock around cross-shard rescue work; CondVar::Wait takes the
// guard so the analysis knows the lock is held across the predicate
// re-check. Condition waits are written as explicit
// `while (!pred) cv.Wait(lock);` loops — the std::condition_variable
// lambda-predicate form hides the re-check in a separate function the
// analysis cannot attribute to the lock.

#ifndef NELA_UTIL_MUTEX_H_
#define NELA_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace nela::util {

// A standard mutex, visible to thread-safety analysis as a capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // Bare Lock/Unlock are for the RAII guard below and for CondVar's
  // wait shim; application code must use MutexLock (the raw-lock lint
  // rule enforces this tree-wide).
  void Lock() ACQUIRE() { mu_.lock(); }  // nela-lint: allow(raw-lock) RAII home
  void Unlock() RELEASE() { mu_.unlock(); }  // nela-lint: allow(raw-lock) RAII home

  // For CondVar only: the underlying primitive.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

// RAII guard over util::Mutex. Scoped like std::lock_guard by default,
// but relockable like std::unique_lock: Unlock()/Lock() pairs let a
// critical section be suspended (the analysis tracks the guard's state,
// so touching a GUARDED_BY member while unlocked is still an error).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Suspend / resume the critical section (turnstile waits that call out
  // to other shards' coordinators drop the run lock around the call).
  void Unlock() RELEASE() {
    mu_.Unlock();
    held_ = false;
  }
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

// Condition variable bound to util::Mutex via the guard. Wait atomically
// releases and reacquires the guard's mutex; the analysis sees the lock
// as held across the call, which is exactly the invariant a
// `while (!pred) cv.Wait(lock);` loop needs.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    // The analysis models Wait as "lock held throughout"; the transient
    // release inside std::condition_variable is invisible by design.
    std::unique_lock<std::mutex> native(lock.mu_.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nela::util

#endif  // NELA_UTIL_MUTEX_H_
