// CSV emission for benchmark results (one file per figure/table).

#ifndef NELA_UTIL_CSV_H_
#define NELA_UTIL_CSV_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace nela::util {

// Writes rows of mixed string/number cells. Quotes cells containing commas,
// quotes, or newlines per RFC 4180.
class CsvWriter {
 public:
  CsvWriter() = default;

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void SetHeader(std::vector<std::string> columns);

  // Appends a row; cell count must match the header when one was set.
  void AddRow(std::vector<std::string> cells);

  // Serializes header + rows.
  std::string ToString() const;

  // Writes the serialized content to `path`.
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

  // Convenience numeric formatting with enough digits to round-trip.
  static std::string Cell(double value);
  static std::string Cell(int64_t value);

 private:
  static void AppendEscaped(const std::string& cell, std::string* out);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nela::util

#endif  // NELA_UTIL_CSV_H_
