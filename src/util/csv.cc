#include "util/csv.h"

#include <cerrno>
#include <cinttypes>
#include <cstring>

#include "util/check.h"

namespace nela::util {

void CsvWriter::SetHeader(std::vector<std::string> columns) {
  header_ = std::move(columns);
}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  if (!header_.empty()) NELA_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void CsvWriter::AppendEscaped(const std::string& cell, std::string* out) {
  const bool needs_quote = cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) {
    out->append(cell);
    return;
  }
  out->push_back('"');
  for (char c : cell) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string CsvWriter::ToString() const {
  std::string out;
  auto emit_row = [&out](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendEscaped(row[i], &out);
    }
    out.push_back('\n');
  };
  if (!header_.empty()) emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

Status CsvWriter::WriteToFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return UnavailableError("cannot open for writing: " + path + " (" +
                            std::strerror(errno) + ")");
  }
  const std::string content = ToString();
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  if (written != content.size()) {
    const std::string detail = std::strerror(errno);
    std::fclose(file);
    return UnavailableError("short write to " + path + ": " +
                            std::to_string(written) + " of " +
                            std::to_string(content.size()) + " bytes (" +
                            detail + ")");
  }
  // Flush before close so buffered-write failures (full disk, revoked
  // handle) surface here as a distinct error instead of vanishing.
  if (std::fflush(file) != 0 || std::ferror(file) != 0) {
    const std::string detail = std::strerror(errno);
    std::fclose(file);
    return UnavailableError("flush failed for " + path + " (" + detail + ")");
  }
  if (std::fclose(file) != 0) {
    return UnavailableError("close failed for " + path + " (" +
                            std::strerror(errno) + ")");
  }
  return Status::Ok();
}

std::string CsvWriter::Cell(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

std::string CsvWriter::Cell(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRId64, value);
  return buffer;
}

}  // namespace nela::util
