#include "util/rng.h"

#include <cmath>
#include <unordered_set>

namespace nela::util {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  // xoshiro256**
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  NELA_CHECK_GT(bound, 0u);
  // Rejection sampling: draw until the value falls below the largest
  // multiple of `bound`, removing modulo bias.
  const uint64_t threshold = (0ULL - bound) % bound;  // 2^64 mod bound
  for (;;) {
    const uint64_t value = NextUint64();
    if (value >= threshold) return value % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  NELA_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  NELA_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Polar Box-Muller.
  for (;;) {
    const double u = 2.0 * NextDouble() - 1.0;
    const double v = 2.0 * NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      const double factor = std::sqrt(-2.0 * std::log(s) / s);
      cached_gaussian_ = v * factor;
      has_cached_gaussian_ = true;
      return u * factor;
    }
  }
}

double Rng::NextGaussian(double mean, double sigma) {
  NELA_CHECK_GE(sigma, 0.0);
  return mean + sigma * NextGaussian();
}

double Rng::NextExponential(double lambda) {
  NELA_CHECK_GT(lambda, 0.0);
  // Inverse CDF; 1 - NextDouble() is in (0, 1] so the log is finite.
  return -std::log(1.0 - NextDouble()) / lambda;
}

bool Rng::NextBernoulli(double p) {
  NELA_CHECK_GE(p, 0.0);
  NELA_CHECK_LE(p, 1.0);
  return NextDouble() < p;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t population,
                                                    uint32_t count) {
  NELA_CHECK_LE(count, population);
  std::vector<uint32_t> sample;
  sample.reserve(count);
  if (count == 0) return sample;
  // For dense samples a partial Fisher-Yates is cheaper; for sparse samples
  // hash-set rejection avoids materializing the population.
  if (count * 3 >= population) {
    std::vector<uint32_t> all(population);
    for (uint32_t i = 0; i < population; ++i) all[i] = i;
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t j =
          i + static_cast<uint32_t>(NextUint64(population - i));
      std::swap(all[i], all[j]);
      sample.push_back(all[i]);
    }
  } else {
    std::unordered_set<uint32_t> seen;
    seen.reserve(count * 2);
    while (sample.size() < count) {
      const uint32_t candidate = static_cast<uint32_t>(NextUint64(population));
      if (seen.insert(candidate).second) sample.push_back(candidate);
    }
  }
  return sample;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace nela::util
