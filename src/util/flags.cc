#include "util/flags.h"

#include <cstdio>
#include <cstdlib>

namespace nela::util {

namespace {

bool ParseInt64(const std::string& text, int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (errno != 0 || end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagParser::AddInt64(const std::string& name, int64_t* value,
                          const std::string& description) {
  entries_[name] = Entry{Type::kInt64, value, description,
                         std::to_string(*value)};
}

void FlagParser::AddDouble(const std::string& name, double* value,
                           const std::string& description) {
  entries_[name] = Entry{Type::kDouble, value, description,
                         std::to_string(*value)};
}

void FlagParser::AddString(const std::string& name, std::string* value,
                           const std::string& description) {
  entries_[name] = Entry{Type::kString, value, description, *value};
}

void FlagParser::AddBool(const std::string& name, bool* value,
                         const std::string& description) {
  entries_[name] =
      Entry{Type::kBool, value, description, *value ? "true" : "false"};
}

Status FlagParser::SetValue(const std::string& name, const std::string& text) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return InvalidArgumentError("unknown flag --" + name);
  }
  Entry& entry = it->second;
  bool parsed = false;
  switch (entry.type) {
    case Type::kInt64:
      parsed = ParseInt64(text, static_cast<int64_t*>(entry.target));
      break;
    case Type::kDouble:
      parsed = ParseDouble(text, static_cast<double*>(entry.target));
      break;
    case Type::kString:
      *static_cast<std::string*>(entry.target) = text;
      parsed = true;
      break;
    case Type::kBool:
      parsed = ParseBool(text, static_cast<bool*>(entry.target));
      break;
  }
  if (!parsed) {
    return InvalidArgumentError("bad value for --" + name + ": '" + text +
                                "'");
  }
  return Status::Ok();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return OutOfRangeError("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return InvalidArgumentError("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // A bool flag may appear bare: `--verbose`.
      auto it = entries_.find(name);
      if (it != entries_.end() && it->second.type == Type::kBool &&
          (i + 1 >= argc ||
           std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return InvalidArgumentError("missing value for --" + name);
        }
        value = argv[++i];
      }
    }
    Status status = SetValue(name, value);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

void FlagParser::PrintUsage(const std::string& program) const {
  std::fprintf(stderr, "Usage: %s [flags]\n", program.c_str());
  for (const auto& [name, entry] : entries_) {
    std::fprintf(stderr, "  --%-24s %s (default: %s)\n", name.c_str(),
                 entry.description.c_str(), entry.default_text.c_str());
  }
}

}  // namespace nela::util
