// Error handling without exceptions: Status and Result<T>.
//
// Fallible operations return Status (or Result<T> when they also produce a
// value). Callers must inspect ok() before using a Result's value; doing
// otherwise aborts via NELA_CHECK.

#ifndef NELA_UTIL_STATUS_H_
#define NELA_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace nela::util {

// Broad classification of an error, modeled on the usual canonical codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kDeadlineExceeded,
  kInternal,
};

// Returns a stable human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// Value type describing the outcome of an operation. Class-level
// [[nodiscard]]: a dropped Status in a bounding or retry path is exactly
// how a degradation silently turns into an exposure, so ignoring any
// by-value Status (or Result) is a compile error under -Werror.
class [[nodiscard]] Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);
Status InternalError(std::string message);

// A value or an error. Accessing value() on an error aborts. [[nodiscard]]
// for the same reason as Status: discarding a Result discards the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`
  // like absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) { // NOLINT(runtime/explicit)
    NELA_CHECK(!status_.ok());  // A Result built from a Status must be an error.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    NELA_CHECK(ok());
    return *value_;
  }
  T& value() & {
    NELA_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    NELA_CHECK(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nela::util

#endif  // NELA_UTIL_STATUS_H_
