#include "util/thread_pool.h"

#include <algorithm>

#include "util/check.h"

namespace nela::util {

ThreadPool::ThreadPool(uint32_t thread_count) : thread_count_(thread_count) {
  NELA_CHECK_GE(thread_count, 1u);
  threads_.reserve(thread_count - 1);
  for (uint32_t w = 1; w < thread_count; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

uint32_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop(uint32_t worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(uint32_t)>* task = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::RunOnAllThreads(
    const std::function<void(uint32_t)>& task) {
  if (thread_count_ == 1) {
    task(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    task_ = &task;
    outstanding_ = thread_count_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  task(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return outstanding_ == 0; });
  task_ = nullptr;
}

uint64_t ThreadPool::BlockBegin(uint32_t worker, uint64_t n) const {
  NELA_CHECK_LE(worker, thread_count_);
  // floor(n * w / W) without overflow for any realistic n (n < 2^32 in
  // practice; the product stays within 64 bits for n < 2^32 and W <= 2^32).
  return n * worker / thread_count_;
}

void ThreadPool::ParallelFor(
    uint64_t n, const std::function<void(uint32_t, uint64_t, uint64_t)>&
                    task) {
  RunOnAllThreads([&](uint32_t worker) {
    task(worker, BlockBegin(worker, n), BlockBegin(worker + 1, n));
  });
}

}  // namespace nela::util
