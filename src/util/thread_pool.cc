#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "util/check.h"
#include "util/steal_deque.h"
#include "util/timer.h"

namespace nela::util {

namespace {

// SplitMix64 step for victim selection. Steal order is the one place the
// scheduler is allowed to be arbitrary: it decides who executes a chunk,
// never what the chunk computes, so this stream needs no global seeding
// discipline (and stays off util::Rng, which would drag a per-dispatch
// allocation into the idle loop).
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

double ChunkDispatchStats::TotalBusySeconds() const {
  double total = 0.0;
  for (const double busy : worker_busy_seconds) total += busy;
  return total;
}

double ChunkDispatchStats::MaxWorkerBusySeconds() const {
  double max_busy = 0.0;
  for (const double busy : worker_busy_seconds) {
    max_busy = std::max(max_busy, busy);
  }
  return max_busy;
}

ThreadPool::ThreadPool(uint32_t thread_count) : thread_count_(thread_count) {
  NELA_CHECK_GE(thread_count, 1u);
  threads_.reserve(thread_count - 1);
  for (uint32_t w = 1; w < thread_count; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

uint32_t ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop(uint32_t worker) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(uint32_t)>* task = nullptr;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda-predicate wait overload):
      // thread-safety analysis treats a predicate lambda as a separate
      // function with no lock context, so the guarded reads below would
      // be invisible to it.
      while (!stopping_ && generation_ == seen) work_cv_.Wait(lock);
      if (stopping_) return;
      seen = generation_;
      task = task_;
    }
    (*task)(worker);
    {
      MutexLock lock(mu_);
      if (--outstanding_ == 0) done_cv_.NotifyAll();
    }
  }
}

void ThreadPool::RunOnAllThreads(
    const std::function<void(uint32_t)>& task) {
  if (thread_count_ == 1) {
    task(0);
    return;
  }
  {
    MutexLock lock(mu_);
    task_ = &task;
    outstanding_ = thread_count_ - 1;
    ++generation_;
  }
  work_cv_.NotifyAll();
  task(0);
  MutexLock lock(mu_);
  while (outstanding_ != 0) done_cv_.Wait(lock);
  task_ = nullptr;
}

uint64_t ThreadPool::BlockBegin(uint32_t worker, uint64_t n) const {
  NELA_CHECK_LE(worker, thread_count_);
  // floor(n * w / W) without overflow for any realistic n (n < 2^32 in
  // practice; the product stays within 64 bits for n < 2^32 and W <= 2^32).
  return n * worker / thread_count_;
}

void ThreadPool::ParallelFor(
    uint64_t n, const std::function<void(uint32_t, uint64_t, uint64_t)>&
                    task) {
  RunOnAllThreads([&](uint32_t worker) {
    task(worker, BlockBegin(worker, n), BlockBegin(worker + 1, n));
  });
}

uint64_t ThreadPool::ChunkGrain(uint64_t n,
                                const ChunkOptions& options) const {
  if (options.grain != 0) return options.grain;
  const uint64_t target_chunks =
      static_cast<uint64_t>(thread_count_) *
      ChunkOptions::kAutoChunksPerWorker;
  return std::max<uint64_t>(1, (n + target_chunks - 1) / target_chunks);
}

uint64_t ThreadPool::ChunkCount(uint64_t n,
                                const ChunkOptions& options) const {
  if (thread_count_ == 1 || n < options.sequential_cutoff) return 1;
  const uint64_t grain = ChunkGrain(n, options);
  return std::max<uint64_t>(1, (n + grain - 1) / grain);
}

void ThreadPool::ParallelForChunks(
    uint64_t n, const ChunkOptions& options,
    const std::function<void(uint32_t, uint64_t, uint64_t, uint64_t)>&
        task) {
  ChunkDispatchStats local_stats;
  ChunkDispatchStats& stats =
      options.stats != nullptr ? *options.stats : local_stats;
  stats.worker_busy_seconds.assign(thread_count_, 0.0);
  stats.steals = 0;

  // Sequential bypass: below the cutoff (or on a 1-thread pool) dispatch
  // overhead dominates, so run inline as one chunk — no wakeups, no
  // deques, no atomics.
  if (thread_count_ == 1 || n < options.sequential_cutoff) {
    stats.chunks = 1;
    stats.dispatched = false;
    const double cpu_start = ThreadCpuSeconds();
    task(0, 0, 0, n);
    stats.worker_busy_seconds[0] = ThreadCpuSeconds() - cpu_start;
    return;
  }

  const uint64_t grain = ChunkGrain(n, options);
  const uint64_t chunk_count = std::max<uint64_t>(1, (n + grain - 1) / grain);
  stats.chunks = chunk_count;
  stats.dispatched = true;

  // Deal chunks to per-worker deques in contiguous ascending blocks
  // (worker w initially owns chunks [C*w/W, C*(w+1)/W)), pushed in reverse
  // so the owner's LIFO pops walk its block in ascending order while
  // thieves steal from the far end of it. `initial_owner` lets the steal
  // counter attribute chunks that migrated.
  // StealDeque holds atomics, so it is neither copyable nor movable; an
  // indirection keeps the per-worker array simple.
  std::vector<std::unique_ptr<StealDeque>> deques(thread_count_);
  std::vector<uint32_t> initial_owner(chunk_count, 0);
  for (uint32_t w = 0; w < thread_count_; ++w) {
    const uint64_t lo = chunk_count * w / thread_count_;
    const uint64_t hi = chunk_count * (w + 1) / thread_count_;
    deques[w] = std::make_unique<StealDeque>(hi - lo);
    for (uint64_t c = hi; c > lo; --c) {
      deques[w]->Push(c - 1);
      initial_owner[c - 1] = w;
    }
  }

  std::atomic<uint64_t> remaining{chunk_count};
  std::atomic<uint64_t> stolen{0};
  RunOnAllThreads([&](uint32_t worker) {
    double busy = 0.0;
    uint64_t rng_state = 0x6b797374656cull ^ (worker + 1);
    uint64_t local_steals = 0;
    const auto run_chunk = [&](uint64_t chunk) {
      const uint64_t begin = chunk * grain;
      const uint64_t end = std::min(n, begin + grain);
      const double cpu_start = ThreadCpuSeconds();
      task(worker, chunk, begin, end);
      busy += ThreadCpuSeconds() - cpu_start;
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    };
    for (;;) {
      uint64_t chunk = 0;
      if (deques[worker]->Pop(&chunk)) {
        run_chunk(chunk);
        continue;
      }
      if (remaining.load(std::memory_order_acquire) == 0) break;
      // Own deque drained: steal. A few randomized probes first (avoids
      // every thief hammering the same victim), then one deterministic
      // sweep so a lone loaded victim is always found.
      bool got = false;
      for (uint32_t probe = 0; probe + 1 < thread_count_ && !got; ++probe) {
        const uint32_t victim = static_cast<uint32_t>(
            NextRandom(&rng_state) % thread_count_);
        if (victim == worker) continue;
        got = deques[victim]->Steal(&chunk);
      }
      for (uint32_t step = 1; step < thread_count_ && !got; ++step) {
        const uint32_t victim = (worker + step) % thread_count_;
        got = deques[victim]->Steal(&chunk);
      }
      if (got) {
        if (initial_owner[chunk] != worker) ++local_steals;
        run_chunk(chunk);
        continue;
      }
      if (remaining.load(std::memory_order_acquire) == 0) break;
      // Work exists but is claimed or in flight: yield instead of
      // spinning, which matters on runners with fewer cores than workers.
      std::this_thread::yield();
    }
    stats.worker_busy_seconds[worker] = busy;
    if (local_steals != 0) {
      stolen.fetch_add(local_steals, std::memory_order_relaxed);
    }
  });
  stats.steals = stolen.load(std::memory_order_relaxed);
}

}  // namespace nela::util
