// Fixed-size pool of persistent worker threads for deterministic fork-join
// parallelism.
//
// The pool is a low-level primitive shared by the parallel WPG builder and
// the batch driver: callers dispatch one task per worker and block until
// every invocation returns. Worker 0 is the thread that calls
// RunOnAllThreads / ParallelFor, so a 1-thread pool spawns nothing and runs
// inline, and dispatch cost is one notify + countdown — cheap enough to
// reuse the same pool across many short phases.
//
// Determinism contract: the pool never decides who does what. Tasks receive
// only their worker index; ParallelFor partitions [0, n) into contiguous
// blocks that depend solely on n and thread_count(), never on scheduling.
// Pipelines built on these two calls produce bit-identical results at any
// thread count as long as each block's output is spliced in block order.

#ifndef NELA_UTIL_THREAD_POOL_H_
#define NELA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nela::util {

class ThreadPool {
 public:
  // A pool with `thread_count` >= 1 workers; thread_count - 1 threads are
  // spawned, the calling thread acts as worker 0.
  explicit ThreadPool(uint32_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t thread_count() const { return thread_count_; }

  // std::thread::hardware_concurrency(), floored at 1 (the value is 0 when
  // the hardware cannot be queried).
  static uint32_t DefaultThreadCount();

  // Invokes task(worker) once for every worker index in
  // [0, thread_count()), concurrently, and blocks until all invocations
  // return. All workers are live simultaneously, so tasks may synchronize
  // with each other (the batch driver's commit turnstile relies on this).
  // Tasks must not throw and must not dispatch on the same pool.
  void RunOnAllThreads(const std::function<void(uint32_t worker)>& task);

  // First index of worker `worker`'s block in the static partition of
  // [0, n): worker w owns [BlockBegin(w, n), BlockBegin(w + 1, n)). Blocks
  // are contiguous, ascending, and differ in size by at most one element.
  uint64_t BlockBegin(uint32_t worker, uint64_t n) const;

  // RunOnAllThreads over the static partition: task(worker, begin, end)
  // with [begin, end) the worker's block; workers with an empty block are
  // still invoked (begin == end) so per-worker state stays index-aligned.
  void ParallelFor(uint64_t n,
                   const std::function<void(uint32_t worker, uint64_t begin,
                                            uint64_t end)>& task);

 private:
  void WorkerLoop(uint32_t worker);

  const uint32_t thread_count_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait here for a dispatch
  std::condition_variable done_cv_;   // the dispatcher waits here for workers
  const std::function<void(uint32_t)>* task_ = nullptr;  // guarded by mu_
  uint64_t generation_ = 0;   // bumped once per dispatch
  uint32_t outstanding_ = 0;  // spawned workers still inside the task
  bool stopping_ = false;
};

}  // namespace nela::util

#endif  // NELA_UTIL_THREAD_POOL_H_
