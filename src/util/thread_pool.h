// Fixed-size pool of persistent worker threads for deterministic fork-join
// parallelism.
//
// The pool is a low-level primitive shared by the parallel WPG builder and
// the batch driver: callers dispatch one task per worker and block until
// every invocation returns. Worker 0 is the thread that calls
// RunOnAllThreads / ParallelFor, so a 1-thread pool spawns nothing and runs
// inline, and dispatch cost is one notify + countdown — cheap enough to
// reuse the same pool across many short phases.
//
// Determinism contract: the pool never decides what a work item computes.
// ParallelFor partitions [0, n) into contiguous blocks that depend solely
// on n and thread_count(), never on scheduling — which worker computes an
// item is itself deterministic, so per-worker outputs can be spliced in
// block order. ParallelForChunks adds chunked *work stealing* on top of
// per-worker Chase-Lev deques (util/steal_deque.h): chunk boundaries are a
// pure function of (n, grain), but which worker executes a chunk — and in
// what order — depends on scheduling. Pipelines built on it stay
// bit-identical at every thread count by indexing every output slot by
// item or by chunk, never by executing worker or execution order.

#ifndef NELA_UTIL_THREAD_POOL_H_
#define NELA_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nela::util {

// Observed execution counters for one chunked dispatch. These describe how
// the schedule happened to unfold (perf attribution only) — they never
// influence, and must never be folded into, a computed result.
struct ChunkDispatchStats {
  // CPU seconds each worker spent inside task bodies (not idle/steal spin).
  std::vector<double> worker_busy_seconds;
  uint64_t chunks = 0;
  // Chunks executed by a worker other than the one whose deque initially
  // held them.
  uint64_t steals = 0;
  // False when the call ran inline on the caller (sequential bypass).
  bool dispatched = false;

  double TotalBusySeconds() const;
  double MaxWorkerBusySeconds() const;
};

// Tuning knobs for ParallelForChunks.
struct ChunkOptions {
  // Items per chunk; 0 picks a grain that yields ~kAutoChunksPerWorker
  // chunks per worker. Chunk boundaries are a pure function of (n, grain).
  uint64_t grain = 0;
  // Calls with n below this run inline on the caller — no workers are
  // woken, no deques are built. Pass 0 to force dispatch (tests exercise
  // stealing at tiny n this way); pass UINT64_MAX to force inline.
  uint64_t sequential_cutoff = kDefaultSequentialCutoff;
  // Optional out-param, overwritten (not accumulated) per call.
  ChunkDispatchStats* stats = nullptr;

  static constexpr uint64_t kDefaultSequentialCutoff = 8192;
  static constexpr uint64_t kAutoChunksPerWorker = 16;
};

class ThreadPool {
 public:
  // A pool with `thread_count` >= 1 workers; thread_count - 1 threads are
  // spawned, the calling thread acts as worker 0.
  explicit ThreadPool(uint32_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t thread_count() const { return thread_count_; }

  // std::thread::hardware_concurrency(), floored at 1 (the value is 0 when
  // the hardware cannot be queried).
  static uint32_t DefaultThreadCount();

  // Invokes task(worker) once for every worker index in
  // [0, thread_count()), concurrently, and blocks until all invocations
  // return. All workers are live simultaneously, so tasks may synchronize
  // with each other (the batch driver's commit turnstile relies on this).
  // Tasks must not throw and must not dispatch on the same pool.
  void RunOnAllThreads(const std::function<void(uint32_t worker)>& task);

  // First index of worker `worker`'s block in the static partition of
  // [0, n): worker w owns [BlockBegin(w, n), BlockBegin(w + 1, n)). Blocks
  // are contiguous, ascending, and differ in size by at most one element.
  uint64_t BlockBegin(uint32_t worker, uint64_t n) const;

  // RunOnAllThreads over the static partition: task(worker, begin, end)
  // with [begin, end) the worker's block; workers with an empty block are
  // still invoked (begin == end) so per-worker state stays index-aligned.
  // Compatibility mode: which worker computes an item is a pure function
  // of (n, thread_count()), so outputs may be spliced in worker order —
  // a property ParallelForChunks does NOT provide.
  void ParallelFor(uint64_t n,
                   const std::function<void(uint32_t worker, uint64_t begin,
                                            uint64_t end)>& task);

  // Work-stealing variant: [0, n) is cut into chunks of `options.grain`
  // items (chunk c covers [c*grain, min(n, (c+1)*grain))), chunks are
  // dealt to per-worker Chase-Lev deques in contiguous ascending blocks,
  // and idle workers steal (randomized victim, then a full sweep) until
  // every chunk has run exactly once. task(worker, chunk, begin, end) may
  // run for any chunk on any worker, in any order — outputs must be
  // indexed by `chunk` or by item so the result is schedule-independent.
  // Calls with n < options.sequential_cutoff (or a 1-thread pool) run
  // inline on the caller as a single chunk: task(0, 0, 0, n).
  void ParallelForChunks(
      uint64_t n, const ChunkOptions& options,
      const std::function<void(uint32_t worker, uint64_t chunk,
                               uint64_t begin, uint64_t end)>& task);

  // The grain ParallelForChunks will use for (n, options): options.grain,
  // or the auto policy when it is 0.
  uint64_t ChunkGrain(uint64_t n, const ChunkOptions& options) const;

  // Number of task invocations ParallelForChunks will make for (n,
  // options) — 1 for the sequential bypass, ceil(n / grain) otherwise.
  // Callers pre-size per-chunk output buffers with this.
  uint64_t ChunkCount(uint64_t n, const ChunkOptions& options) const;

 private:
  void WorkerLoop(uint32_t worker) EXCLUDES(mu_);

  const uint32_t thread_count_;
  std::vector<std::thread> threads_;

  Mutex mu_;
  CondVar work_cv_;  // workers wait here for a dispatch
  CondVar done_cv_;  // the dispatcher waits here for workers
  const std::function<void(uint32_t)>* task_ GUARDED_BY(mu_) = nullptr;
  uint64_t generation_ GUARDED_BY(mu_) = 0;   // bumped once per dispatch
  // Spawned workers still inside the task.
  uint32_t outstanding_ GUARDED_BY(mu_) = 0;
  bool stopping_ GUARDED_BY(mu_) = false;
};

}  // namespace nela::util

#endif  // NELA_UTIL_THREAD_POOL_H_
