// Measurement-only time sources. This header (plus util/rng.* for
// randomness) is the only place in the tree allowed to touch a clock:
// tools/nela_lint rule `raw-time` rejects `::now()` / `time(...)` /
// `clock_gettime` anywhere else, so wall time can never silently become a
// protocol input and break run-to-run determinism.

#ifndef NELA_UTIL_TIMER_H_
#define NELA_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace nela::util {

// Simple wall-clock timer for the CPU-time measurements of Fig. 13(d) and
// the batch-driver latency accounting.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// CPU seconds consumed by the calling thread so far. Under a fork-join
// static block partition every worker gets ~1/N of the work, so the
// caller's CPU per parallel region ≈ total work / N: reference-vs-caller
// CPU ratios estimate the achievable wall speedup even on core-starved
// runners where wall clock cannot scale (used by bench_micro's WPG sweep).
inline double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         1e-9 * static_cast<double>(ts.tv_nsec);
}

}  // namespace nela::util

#endif  // NELA_UTIL_TIMER_H_
