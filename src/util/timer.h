// Simple wall-clock timer for the CPU-time measurements of Fig. 13(d).

#ifndef NELA_UTIL_TIMER_H_
#define NELA_UTIL_TIMER_H_

#include <chrono>

namespace nela::util {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nela::util

#endif  // NELA_UTIL_TIMER_H_
