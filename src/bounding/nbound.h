// N-bounding (§V-B): the optimal bound increment when N users disagree.
//
// Two solvers are provided:
//
//  * SolveNBoundIncrement -- the paper's approximate optimality condition
//    (Equation 5): R'(x) = (C* - R*) N p(x), with C*, R* from the unary
//    solution. Closed forms exist for the two example settings (Examples
//    5.3 / 5.4) and are exposed for cross-checking; the generic solver uses
//    bisection on the residual.
//
//  * ExactNBoundTable -- the bottom-up dynamic program over Equation 3 the
//    paper describes as "theoretically sound [but] CPU intensive". It is
//    the reference for the ablation bench that quantifies what the
//    closed-form approximation gives up.

#ifndef NELA_BOUNDING_NBOUND_H_
#define NELA_BOUNDING_NBOUND_H_

#include <cstdint>
#include <vector>

#include "bounding/cost_model.h"
#include "bounding/distribution.h"
#include "bounding/unary.h"

namespace nela::bounding {

// Solves Equation 5 for `n` >= 1 disagreeing users. When the residual has
// no root inside the support, returns the support extent (one-shot cover).
// The result is clamped below by `floor_increment` to guarantee protocol
// progress even for degenerate parameter choices.
double SolveNBoundIncrement(const Distribution& distribution,
                            const RequestCostModel& cost, double cb,
                            uint32_t n, const UnarySolution& unary,
                            double floor_increment = 1e-12);

// Example 5.3 closed form (uniform(0,U) offsets, R(x) = c x^2):
//   x = n (C* - R*) / (2 c U).
double NBoundUniformQuadratic(double c_star, double r_star, uint32_t n,
                              double c, double upper);

// Example 5.4 closed form (exponential(lambda) offsets, R(x) = c x), for
// the corrected pdf p(x) = lambda e^(-lambda x):
//   x = ln((C* - R*) n lambda / c) / lambda   (clamped at 0).
double NBoundExponentialLinear(double c_star, double r_star, uint32_t n,
                               double c, double lambda);

class ExactNBoundTable {
 public:
  // Precomputes optimal increments and expected costs for 1..max_n
  // disagreeing users by minimizing Equation 3 numerically (grid scan plus
  // golden-section refinement) with bottom-up reuse of C*(i), i < n.
  ExactNBoundTable(const Distribution& distribution,
                   const RequestCostModel& cost, double cb, uint32_t max_n);

  uint32_t max_n() const { return static_cast<uint32_t>(x_.size()) - 1; }
  // Optimal increment for n disagreeing users (1 <= n <= max_n).
  double increment(uint32_t n) const;
  // Expected total cost C*(n) when n users disagree.
  double expected_cost(uint32_t n) const;

 private:
  // Expected cost with n disagreeing users when the next increment is x,
  // folding the self-referential i = n term into a fixed point.
  double CostAt(uint32_t n, double x) const;

  const Distribution& distribution_;
  const RequestCostModel& cost_;
  double cb_;
  double search_hi_;
  std::vector<double> x_;  // x_[n], index 0 unused
  std::vector<double> c_;  // C*(n), c_[0] = 0
};

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_NBOUND_H_
