// Increment policies for progressive bounding (§V, §VI-D).
//
// All progressive algorithms share Algorithm 4's loop and differ only in
// how far the hypothesized bound advances each iteration:
//
//  * linear      -- a fixed step (most conservative; most iterations);
//  * exponential -- double the covered extent each iteration;
//  * secure      -- the cost-model-optimal N-bounding increment (Eq. 5 or
//                   the exact DP), recomputed from the number of users
//                   still disagreeing.

#ifndef NELA_BOUNDING_INCREMENT_POLICY_H_
#define NELA_BOUNDING_INCREMENT_POLICY_H_

#include <cstdint>
#include <memory>

#include "bounding/cost_model.h"
#include "bounding/distribution.h"
#include "bounding/nbound.h"
#include "bounding/unary.h"

namespace nela::bounding {

class IncrementPolicy {
 public:
  virtual ~IncrementPolicy() = default;

  // Amount to add to the current bound. `covered` is the extent already
  // covered above the domain minimum (what the exponential policy doubles);
  // `disagreeing` (>= 1) is the number of users that rejected the current
  // bound; `iteration` is 0-based.
  virtual double NextIncrement(double covered, uint32_t disagreeing,
                               uint32_t iteration) = 0;
  virtual const char* name() const = 0;
};

class LinearIncrementPolicy : public IncrementPolicy {
 public:
  explicit LinearIncrementPolicy(double step);

  double NextIncrement(double covered, uint32_t disagreeing,
                       uint32_t iteration) override;
  const char* name() const override { return "linear"; }

 private:
  double step_;
};

class ExponentialIncrementPolicy : public IncrementPolicy {
 public:
  // First iteration advances by `initial_step`; afterwards the increment
  // equals the covered extent (doubling).
  explicit ExponentialIncrementPolicy(double initial_step);

  double NextIncrement(double covered, uint32_t disagreeing,
                       uint32_t iteration) override;
  const char* name() const override { return "exponential"; }

 private:
  double initial_step_;
};

class SecureIncrementPolicy : public IncrementPolicy {
 public:
  // Closed-form / bisection mode (Equation 5). `distribution` and `cost`
  // must outlive the policy. The unary solution is computed once here.
  SecureIncrementPolicy(const Distribution& distribution,
                        const RequestCostModel& cost, double cb);

  // Exact-DP mode: increments come from `table` (not owned); used by the
  // ablation bench. Offsets beyond table.max_n() fall back to Equation 5.
  SecureIncrementPolicy(const Distribution& distribution,
                        const RequestCostModel& cost, double cb,
                        const ExactNBoundTable* table);

  double NextIncrement(double covered, uint32_t disagreeing,
                       uint32_t iteration) override;
  const char* name() const override {
    return table_ != nullptr ? "secure-dp" : "secure";
  }

  const UnarySolution& unary() const { return unary_; }

 private:
  const Distribution& distribution_;
  const RequestCostModel& cost_;
  double cb_;
  UnarySolution unary_;
  const ExactNBoundTable* table_ = nullptr;
};

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_INCREMENT_POLICY_H_
