#include "bounding/increment_policy.h"

#include "util/check.h"

namespace nela::bounding {

LinearIncrementPolicy::LinearIncrementPolicy(double step) : step_(step) {
  NELA_CHECK_GT(step, 0.0);
}

double LinearIncrementPolicy::NextIncrement(double /*covered*/,
                                            uint32_t /*disagreeing*/,
                                            uint32_t /*iteration*/) {
  return step_;
}

ExponentialIncrementPolicy::ExponentialIncrementPolicy(double initial_step)
    : initial_step_(initial_step) {
  NELA_CHECK_GT(initial_step, 0.0);
}

double ExponentialIncrementPolicy::NextIncrement(double covered,
                                                 uint32_t /*disagreeing*/,
                                                 uint32_t iteration) {
  if (iteration == 0 || covered <= 0.0) return initial_step_;
  return covered;  // double the covered extent
}

SecureIncrementPolicy::SecureIncrementPolicy(const Distribution& distribution,
                                             const RequestCostModel& cost,
                                             double cb)
    : distribution_(distribution), cost_(cost), cb_(cb),
      unary_(SolveUnary(distribution, cost, cb)) {}

SecureIncrementPolicy::SecureIncrementPolicy(const Distribution& distribution,
                                             const RequestCostModel& cost,
                                             double cb,
                                             const ExactNBoundTable* table)
    : SecureIncrementPolicy(distribution, cost, cb) {
  NELA_CHECK(table != nullptr);
  table_ = table;
}

double SecureIncrementPolicy::NextIncrement(double /*covered*/,
                                            uint32_t disagreeing,
                                            uint32_t /*iteration*/) {
  NELA_CHECK_GE(disagreeing, 1u);
  if (table_ != nullptr && disagreeing <= table_->max_n()) {
    return table_->increment(disagreeing);
  }
  return SolveNBoundIncrement(distribution_, cost_, cb_, disagreeing, unary_);
}

}  // namespace nela::bounding
