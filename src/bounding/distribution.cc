#include "bounding/distribution.h"

#include <cmath>

#include "util/check.h"

namespace nela::bounding {

UniformDistribution::UniformDistribution(double upper) : upper_(upper) {
  NELA_CHECK_GT(upper, 0.0);
}

double UniformDistribution::Pdf(double x) const {
  if (x <= 0.0 || x >= upper_) return 0.0;
  return 1.0 / upper_;
}

double UniformDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= upper_) return 1.0;
  return x / upper_;
}

ExponentialDistribution::ExponentialDistribution(double lambda)
    : lambda_(lambda) {
  NELA_CHECK_GT(lambda, 0.0);
}

double ExponentialDistribution::Pdf(double x) const {
  if (x <= 0.0) return 0.0;
  return lambda_ * std::exp(-lambda_ * x);
}

double ExponentialDistribution::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return 1.0 - std::exp(-lambda_ * x);
}

}  // namespace nela::bounding
