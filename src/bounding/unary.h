// Unary bounding (§V-A): the optimal bound increment when a single user
// still disagrees, i.e. the x solving Equation 2,
//
//    P(x) R'(x) = (Cb + R(x)) p(x),
//
// together with the resulting expected total cost C* and request cost R*
// (both are inputs to N-bounding).

#ifndef NELA_BOUNDING_UNARY_H_
#define NELA_BOUNDING_UNARY_H_

#include "bounding/cost_model.h"
#include "bounding/distribution.h"

namespace nela::bounding {

struct UnarySolution {
  double x = 0.0;             // optimal increment
  double total_cost = 0.0;    // C* = expected total cost at the optimum
  double request_cost = 0.0;  // R* = R(x*)
};

// Solves Equation 2 numerically (bisection on its residual). When the
// residual has no root inside the distribution's support the optimum is to
// cover the whole support in one step (x* = SupportMax, C* = Cb + R(x*)).
// `cb` is the per-user verification cost and must be positive.
UnarySolution SolveUnary(const Distribution& distribution,
                         const RequestCostModel& cost, double cb);

// Closed form of Example 5.1 (uniform offsets, quadratic request cost):
// x* = sqrt(cb / c). Note the solution is independent of U, as the paper
// remarks. Used to cross-check the generic solver.
double OptimalUnaryUniformQuadratic(double cb, double c);

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_UNARY_H_
