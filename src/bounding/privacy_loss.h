// Privacy-loss metric for progressive bounding (the paper's §VII future
// work): a user who rejects bound X and accepts the next bound X' tells the
// protocol that its value lies in (X, X'] -- the narrower that interval,
// the more the user exposed. This module turns a protocol run into
// per-user exposure intervals and summary statistics, enabling the
// tightness-vs-privacy ablation.

#ifndef NELA_BOUNDING_PRIVACY_LOSS_H_
#define NELA_BOUNDING_PRIVACY_LOSS_H_

#include <cstdint>
#include <vector>

#include "bounding/protocol.h"

namespace nela::bounding {

struct PrivacyLossReport {
  // interval_width[i]: width of the exposure interval of user i.
  std::vector<double> interval_width;
  double min_width = 0.0;   // the most-exposed user
  double mean_width = 0.0;
  double max_width = 0.0;
};

// `domain_min` must be the value passed to RunProgressiveUpperBounding.
// A user that accepted the first hypothesis X_0 has interval
// (domain_min, X_0]; one that first accepted X_j has (X_{j-1}, X_j].
PrivacyLossReport AnalyzePrivacyLoss(const BoundingRunResult& run,
                                     double domain_min);

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_PRIVACY_LOSS_H_
