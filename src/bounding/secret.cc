#include "bounding/secret.h"

namespace nela::bounding {

std::vector<PrivateScalar> MakePrivate(const std::vector<double>& values) {
  std::vector<PrivateScalar> secrets;
  secrets.reserve(values.size());
  for (double v : values) secrets.emplace_back(v);
  return secrets;
}

}  // namespace nela::bounding
