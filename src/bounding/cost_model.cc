#include "bounding/cost_model.h"

#include "util/check.h"

namespace nela::bounding {

QuadraticCost::QuadraticCost(double coefficient) : coefficient_(coefficient) {
  NELA_CHECK_GT(coefficient, 0.0);
}

LinearCost::LinearCost(double coefficient) : coefficient_(coefficient) {
  NELA_CHECK_GT(coefficient, 0.0);
}

}  // namespace nela::bounding
