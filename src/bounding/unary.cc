#include "bounding/unary.h"

#include <cmath>

#include "util/check.h"

namespace nela::bounding {

namespace {

// Residual of Equation 2; a root is the optimal unary increment.
double Residual(const Distribution& dist, const RequestCostModel& cost,
                double cb, double x) {
  return dist.Cdf(x) * cost.RPrime(x) - (cb + cost.R(x)) * dist.Pdf(x);
}

}  // namespace

UnarySolution SolveUnary(const Distribution& distribution,
                         const RequestCostModel& cost, double cb) {
  NELA_CHECK_GT(cb, 0.0);
  const double support = distribution.SupportMax();

  // Find an upper bracket with positive residual. For finite support stop
  // just inside it; for infinite support expand geometrically (the residual
  // eventually turns positive because p(x) decays while R'(x) does not).
  double hi;
  if (std::isfinite(support)) {
    hi = support * (1.0 - 1e-12);
    if (Residual(distribution, cost, cb, hi) <= 0.0) {
      // No interior root: the optimum covers the whole support in one step.
      UnarySolution solution;
      solution.x = support;
      solution.request_cost = cost.R(support);
      solution.total_cost = cb + solution.request_cost;
      return solution;
    }
  } else {
    hi = 1.0;
    int expansions = 0;
    while (Residual(distribution, cost, cb, hi) <= 0.0) {
      hi *= 2.0;
      NELA_CHECK_LT(++expansions, 1024);
    }
  }

  // The residual is negative near 0 (P -> 0 while p stays positive);
  // bisect.
  double lo = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Residual(distribution, cost, cb, mid) > 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  UnarySolution solution;
  solution.x = 0.5 * (lo + hi);
  solution.request_cost = cost.R(solution.x);
  const double p_agree = distribution.Cdf(solution.x);
  NELA_CHECK_GT(p_agree, 0.0);
  // From C* = Cb + R(x*) + (1 - P(x*)) C*.
  solution.total_cost = (cb + solution.request_cost) / p_agree;
  return solution;
}

double OptimalUnaryUniformQuadratic(double cb, double c) {
  NELA_CHECK_GT(cb, 0.0);
  NELA_CHECK_GT(c, 0.0);
  return std::sqrt(cb / c);
}

}  // namespace nela::bounding
