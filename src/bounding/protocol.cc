#include "bounding/protocol.h"

#include <algorithm>

#include "util/check.h"
#include "util/timer.h"

namespace nela::bounding {

namespace {

// Hard cap on protocol iterations; reaching it means a policy returned
// non-advancing increments (a programming error, not an input error).
constexpr uint32_t kMaxIterations = 10'000'000;

void AccountRoundTrip(const NetworkBinding& binding, size_t user_index) {
  if (binding.network == nullptr) return;
  NELA_CHECK(binding.node_ids != nullptr);
  const net::NodeId peer = (*binding.node_ids)[user_index];
  // On a lossy link the host retransmits the proposal until it observes the
  // vote (semi-honest users always answer what they receive). A retry cap
  // keeps pathological loss rates from spinning; an abandoned round trip is
  // visible through the network's dropped-message counter.
  constexpr int kMaxRetries = 64;
  for (int attempt = 0; attempt < kMaxRetries; ++attempt) {
    const bool proposal_delivered = binding.network->Send(
        binding.host, peer, net::MessageKind::kBoundProposal, /*bytes=*/16);
    if (!proposal_delivered) continue;
    const bool vote_delivered = binding.network->Send(
        peer, binding.host, net::MessageKind::kBoundVote, /*bytes=*/8);
    if (vote_delivered) return;
  }
}

}  // namespace

BoundingRunResult RunProgressiveUpperBounding(
    const std::vector<PrivateScalar>& secrets, double domain_min,
    IncrementPolicy& policy, const NetworkBinding& binding) {
  NELA_CHECK(!secrets.empty());
  if (binding.network != nullptr) {
    NELA_CHECK(binding.node_ids != nullptr);
    NELA_CHECK_EQ(binding.node_ids->size(), secrets.size());
  }
  util::WallTimer timer;
  BoundingRunResult result;
  result.agree_iteration.assign(secrets.size(), 0);

  std::vector<size_t> disagreeing(secrets.size());
  for (size_t i = 0; i < secrets.size(); ++i) disagreeing[i] = i;

  double bound = domain_min;
  uint32_t iteration = 0;
  while (!disagreeing.empty()) {
    NELA_CHECK_LT(iteration, kMaxIterations);
    const double increment = policy.NextIncrement(
        bound - domain_min, static_cast<uint32_t>(disagreeing.size()),
        iteration);
    NELA_CHECK_GT(increment, 0.0);
    const double next_bound = bound + increment;
    // Guard against increments below the floating-point resolution of the
    // current bound, which would stall the loop.
    NELA_CHECK_GT(next_bound, bound);
    bound = next_bound;
    result.bound_history.push_back(bound);

    std::vector<size_t> still_disagreeing;
    still_disagreeing.reserve(disagreeing.size());
    for (size_t index : disagreeing) {
      ++result.verifications;
      AccountRoundTrip(binding, index);
      if (secrets[index].AgreesWithUpperBound(bound)) {
        result.agree_iteration[index] = iteration;
      } else {
        still_disagreeing.push_back(index);
      }
    }
    disagreeing.swap(still_disagreeing);
    ++iteration;
  }
  result.bound = bound;
  result.iterations = iteration;
  result.cpu_seconds = timer.ElapsedSeconds();
  return result;
}

BoundingRunResult RunOptBounding(const std::vector<PrivateScalar>& secrets,
                                 const NetworkBinding& binding) {
  NELA_CHECK(!secrets.empty());
  if (binding.network != nullptr) {
    NELA_CHECK(binding.node_ids != nullptr);
    NELA_CHECK_EQ(binding.node_ids->size(), secrets.size());
  }
  util::WallTimer timer;
  BoundingRunResult result;
  result.agree_iteration.assign(secrets.size(), 0);
  double max_value = secrets.front().ExposeForOptBaseline();
  for (size_t i = 0; i < secrets.size(); ++i) {
    max_value = std::max(max_value, secrets[i].ExposeForOptBaseline());
    ++result.verifications;  // one exposure message per user
    if (binding.network != nullptr) {
      binding.network->Send((*binding.node_ids)[i], binding.host,
                            net::MessageKind::kBoundVote, /*bytes=*/8);
    }
  }
  result.bound = max_value;
  result.iterations = 1;
  result.bound_history.push_back(max_value);
  result.cpu_seconds = timer.ElapsedSeconds();
  return result;
}

namespace {

// One axis-direction run: upper-bounds `sign` * coordinate, starting from
// domain minimum `lo`.
BoundingRunResult RunAxis(const std::vector<geo::Point>& points, bool use_x,
                          double sign, double lo, IncrementPolicy& policy,
                          const NetworkBinding& binding) {
  std::vector<PrivateScalar> secrets;
  secrets.reserve(points.size());
  for (const geo::Point& p : points) {
    secrets.emplace_back(sign * (use_x ? p.x : p.y));
  }
  return RunProgressiveUpperBounding(secrets, lo, policy, binding);
}

}  // namespace

RegionBoundingResult ComputeCloakedRegion(
    const std::vector<geo::Point>& member_points, const geo::Point& reference,
    IncrementPolicy& policy, const NetworkBinding& binding) {
  NELA_CHECK(!member_points.empty());
  // Each direction starts at the reference coordinate: member offsets from
  // it are non-negative in the direction being bounded (the reference is
  // the host's own position, which trivially satisfies every hypothesis).
  const BoundingRunResult upper_x = RunAxis(member_points, /*use_x=*/true,
                                            +1.0, reference.x, policy, binding);
  const BoundingRunResult lower_x = RunAxis(
      member_points, /*use_x=*/true, -1.0, -reference.x, policy, binding);
  const BoundingRunResult upper_y = RunAxis(
      member_points, /*use_x=*/false, +1.0, reference.y, policy, binding);
  const BoundingRunResult lower_y = RunAxis(
      member_points, /*use_x=*/false, -1.0, -reference.y, policy, binding);

  RegionBoundingResult result;
  result.region = geo::Rect(-lower_x.bound, -lower_y.bound, upper_x.bound,
                            upper_y.bound);
  for (const BoundingRunResult* run :
       {&upper_x, &lower_x, &upper_y, &lower_y}) {
    result.iterations += run->iterations;
    result.verifications += run->verifications;
    result.cpu_seconds += run->cpu_seconds;
  }
  return result;
}

RegionBoundingResult ComputeOptRegion(
    const std::vector<geo::Point>& member_points,
    const NetworkBinding& binding) {
  NELA_CHECK(!member_points.empty());
  geo::Rect box;
  for (const geo::Point& p : member_points) box.ExpandToInclude(p);
  RegionBoundingResult result;
  result.region = box;
  result.iterations = 1;
  result.verifications = member_points.size();
  result.cpu_seconds = 0.0;
  if (binding.network != nullptr) {
    NELA_CHECK(binding.node_ids != nullptr);
    NELA_CHECK_EQ(binding.node_ids->size(), member_points.size());
    for (size_t i = 0; i < member_points.size(); ++i) {
      binding.network->Send((*binding.node_ids)[i], binding.host,
                            net::MessageKind::kBoundVote, /*bytes=*/16);
    }
  }
  return result;
}

}  // namespace nela::bounding
