#include "bounding/protocol.h"

#include <algorithm>
#include <string>

#include "util/check.h"
#include "util/timer.h"

namespace nela::bounding {

namespace {

// Hard cap on protocol iterations; reaching it means either a policy that
// returned non-advancing increments or secrets below the domain minimum.
// Both are non-terminating, so they surface as kDeadlineExceeded.
constexpr uint32_t kMaxIterations = 10'000'000;

constexpr uint64_t kProposalBytes = 16;
constexpr uint64_t kVoteBytes = 8;

// One proposal/vote round trip between the host and node_ids[user_index],
// with retransmission of whichever leg was lost. Accumulates retry
// accounting into `result`. The payload descriptors carry exactly what the
// protocol reveals on the wire -- the public hypothesis and the peer's
// one-bit verdict -- for the audit layer's observer. Failure statuses carry
// the peer id and attempt counts, never a coordinate or a bound.
util::Status RoundTrip(const NetworkBinding& binding, size_t user_index,
                       double hypothesis, bool agrees,
                       BoundingRunResult* result) {
  if (binding.network == nullptr) return util::Status::Ok();
  NELA_CHECK(binding.node_ids != nullptr);
  const net::NodeId peer = (*binding.node_ids)[user_index];

  net::Message proposal_message;
  proposal_message.from = binding.host;
  proposal_message.to = peer;
  proposal_message.kind = net::MessageKind::kBoundProposal;
  proposal_message.bytes = kProposalBytes;
  proposal_message.payload.Add(net::FieldTag::kBoundHypothesis,
                               net::kPublicSubject, hypothesis);
  const net::SendOutcome proposal =
      net::SendWithRetry(*binding.network, proposal_message, binding.retry,
                         binding.retry_rng, binding.scope);
  result->retries += proposal.attempts > 0 ? proposal.attempts - 1 : 0;
  result->retransmitted_bytes += proposal.retransmitted_bytes;
  result->timeouts += proposal.attempts - (proposal.delivered ? 1 : 0);
  if (proposal.peer_down) {
    return util::UnavailableError(
        "bounding peer " + std::to_string(peer) +
        " crashed during proposal round trip");
  }
  if (!proposal.delivered) {
    return util::DeadlineExceededError(
        "bound proposal to peer " + std::to_string(peer) +
        " undelivered after " + std::to_string(proposal.attempts) +
        " attempts");
  }

  net::Message vote_message;
  vote_message.from = peer;
  vote_message.to = binding.host;
  vote_message.kind = net::MessageKind::kBoundVote;
  vote_message.bytes = kVoteBytes;
  vote_message.payload.Add(net::FieldTag::kBoundVerdict, peer,
                           agrees ? 1.0 : 0.0);
  const net::SendOutcome vote =
      net::SendWithRetry(*binding.network, vote_message, binding.retry,
                         binding.retry_rng, binding.scope);
  result->retries += vote.attempts > 0 ? vote.attempts - 1 : 0;
  result->retransmitted_bytes += vote.retransmitted_bytes;
  result->timeouts += vote.attempts - (vote.delivered ? 1 : 0);
  if (vote.peer_down) {
    return util::UnavailableError("bounding peer " + std::to_string(peer) +
                                  " crashed during vote round trip");
  }
  if (!vote.delivered) {
    return util::DeadlineExceededError(
        "bound vote from peer " + std::to_string(peer) +
        " undelivered after " + std::to_string(vote.attempts) + " attempts");
  }
  return util::Status::Ok();
}

}  // namespace

util::Result<BoundingRunResult> RunProgressiveUpperBounding(
    const std::vector<PrivateScalar>& secrets, double domain_min,
    IncrementPolicy& policy, const NetworkBinding& binding) {
  if (secrets.empty()) {
    return util::InvalidArgumentError("bounding requires at least one secret");
  }
  if (binding.network != nullptr) {
    NELA_CHECK(binding.node_ids != nullptr);
    NELA_CHECK_EQ(binding.node_ids->size(), secrets.size());
  }
  util::WallTimer timer;
  BoundingRunResult result;
  result.agree_iteration.assign(secrets.size(), 0);

  std::vector<size_t> disagreeing(secrets.size());
  for (size_t i = 0; i < secrets.size(); ++i) disagreeing[i] = i;

  double bound = domain_min;
  uint32_t iteration = 0;
  while (!disagreeing.empty()) {
    if (iteration >= kMaxIterations) {
      return util::DeadlineExceededError(
          "bounding exceeded the iteration cap without converging");
    }
    const double increment = policy.NextIncrement(
        bound - domain_min, static_cast<uint32_t>(disagreeing.size()),
        iteration);
    if (increment <= 0.0) {
      return util::InternalError("increment policy returned a non-positive "
                                 "increment");
    }
    const double next_bound = bound + increment;
    // Guard against increments below the floating-point resolution of the
    // current bound, which would stall the loop.
    if (next_bound <= bound) {
      return util::DeadlineExceededError(
          "increment fell below the floating-point resolution of the bound");
    }
    bound = next_bound;
    result.bound_history.push_back(bound);

    std::vector<size_t> still_disagreeing;
    still_disagreeing.reserve(disagreeing.size());
    for (size_t index : disagreeing) {
      ++result.verifications;
      // The verdict is computed user-side before the vote leg flies; the
      // network call sequence is identical to the untagged protocol.
      const bool agrees = secrets[index].AgreesWithUpperBound(bound);
      util::Status delivered = RoundTrip(binding, index, bound, agrees,
                                         &result);
      if (!delivered.ok()) return delivered;
      if (agrees) {
        result.agree_iteration[index] = iteration;
      } else {
        still_disagreeing.push_back(index);
      }
    }
    disagreeing.swap(still_disagreeing);
    ++iteration;
  }
  result.bound = bound;
  result.iterations = iteration;
  result.cpu_seconds = timer.ElapsedSeconds();
  return result;
}

BoundingRunResult RunOptBounding(const std::vector<PrivateScalar>& secrets,
                                 const NetworkBinding& binding) {
  NELA_CHECK(!secrets.empty());
  if (binding.network != nullptr) {
    NELA_CHECK(binding.node_ids != nullptr);
    NELA_CHECK_EQ(binding.node_ids->size(), secrets.size());
  }
  util::WallTimer timer;
  BoundingRunResult result;
  result.agree_iteration.assign(secrets.size(), 0);
  double max_value = secrets.front().ExposeForOptBaseline();
  for (size_t i = 0; i < secrets.size(); ++i) {
    const double exposed = secrets[i].ExposeForOptBaseline();
    max_value = std::max(max_value, exposed);
    ++result.verifications;  // one exposure message per user
    if (binding.network != nullptr) {
      net::Message message;
      message.from = (*binding.node_ids)[i];
      message.to = binding.host;
      message.kind = net::MessageKind::kBoundVote;
      message.bytes = 8;
      // The OPT comparator ships the value itself: tagged honestly so the
      // observer can count the exposure (or flag it outside declared mode).
      // nela-lint: declare-exposure(opt-raw-upload)
      message.payload.Add(net::FieldTag::kRawCoordinate,
                          (*binding.node_ids)[i], exposed);
      binding.network->Send(message, binding.scope);
    }
  }
  result.bound = max_value;
  result.iterations = 1;
  result.bound_history.push_back(max_value);
  result.cpu_seconds = timer.ElapsedSeconds();
  return result;
}

namespace {

// One axis-direction run: upper-bounds `sign` * coordinate, starting from
// domain minimum `lo`.
util::Result<BoundingRunResult> RunAxis(const std::vector<geo::Point>& points,
                                        bool use_x, double sign, double lo,
                                        IncrementPolicy& policy,
                                        const NetworkBinding& binding) {
  std::vector<PrivateScalar> secrets;
  secrets.reserve(points.size());
  for (const geo::Point& p : points) {
    secrets.emplace_back(sign * (use_x ? p.x : p.y));
  }
  return RunProgressiveUpperBounding(secrets, lo, policy, binding);
}

}  // namespace

util::Result<RegionBoundingResult> ComputeCloakedRegion(
    const std::vector<geo::Point>& member_points, const geo::Point& reference,
    IncrementPolicy& policy, const NetworkBinding& binding,
    util::Rng* origin_rng) {
  if (member_points.empty()) {
    return util::InvalidArgumentError("cloaked region requires members");
  }
  // Each direction starts at (or just below) the reference coordinate:
  // member offsets from the origin are non-negative in the direction being
  // bounded (the reference is the host's own position, which trivially
  // satisfies every hypothesis).
  //
  // Without origin_rng the origin IS the reference coordinate -- a schedule
  // origin an adversary observing hypothesis values could subtract the
  // first increment from to recover the host's position (self-exposure
  // only; the old documented side channel). With origin_rng each axis
  // origin is lowered by an independent draw in [0, first_increment): the
  // origin no longer bit-equals any coordinate, while the host still
  // satisfies every direction's domain minimum and the extra slack stays
  // below one increment -- the same quantum the protocol already leaks by
  // design (privacy_loss.h).
  double origin_jitter[4] = {0.0, 0.0, 0.0, 0.0};
  if (origin_rng != nullptr) {
    // Draws happen up front, in fixed axis order, so the consumption from
    // the request's RNG sub-stream is deterministic per seed. Policies are
    // stateless across runs (protocol.h), so probing the first increment
    // here does not perturb the schedules below.
    const uint32_t members = static_cast<uint32_t>(member_points.size());
    for (double& jitter : origin_jitter) {
      const double first_increment = policy.NextIncrement(0.0, members, 0);
      if (first_increment > 0.0) {
        jitter = origin_rng->NextDouble(0.0, first_increment);
      }
    }
  }
  struct AxisSpec {
    bool use_x;
    double sign;
    double lo;
  };
  const AxisSpec axes[4] = {
      {/*use_x=*/true, +1.0, reference.x - origin_jitter[0]},
      {/*use_x=*/true, -1.0, -reference.x - origin_jitter[1]},
      {/*use_x=*/false, +1.0, reference.y - origin_jitter[2]},
      {/*use_x=*/false, -1.0, -reference.y - origin_jitter[3]},
  };
  BoundingRunResult runs[4];
  for (int i = 0; i < 4; ++i) {
    auto run = RunAxis(member_points, axes[i].use_x, axes[i].sign, axes[i].lo,
                       policy, binding);
    if (!run.ok()) return run.status();
    runs[i] = std::move(run).value();
  }

  RegionBoundingResult result;
  result.region =
      geo::Rect(-runs[1].bound, -runs[3].bound, runs[0].bound, runs[2].bound);
  for (const BoundingRunResult& run : runs) {
    result.iterations += run.iterations;
    result.verifications += run.verifications;
    result.cpu_seconds += run.cpu_seconds;
    result.retries += run.retries;
    result.timeouts += run.timeouts;
    result.retransmitted_bytes += run.retransmitted_bytes;
  }
  return result;
}

RegionBoundingResult ComputeOptRegion(
    const std::vector<geo::Point>& member_points,
    const NetworkBinding& binding) {
  NELA_CHECK(!member_points.empty());
  geo::Rect box;
  for (const geo::Point& p : member_points) box.ExpandToInclude(p);
  RegionBoundingResult result;
  result.region = box;
  result.iterations = 1;
  result.verifications = member_points.size();
  result.cpu_seconds = 0.0;
  if (binding.network != nullptr) {
    NELA_CHECK(binding.node_ids != nullptr);
    NELA_CHECK_EQ(binding.node_ids->size(), member_points.size());
    for (size_t i = 0; i < member_points.size(); ++i) {
      net::Message message;
      message.from = (*binding.node_ids)[i];
      message.to = binding.host;
      message.kind = net::MessageKind::kBoundVote;
      message.bytes = 16;
      // OPT comparison mode sends each member's exact point to the host;
      // both axes ride the same declared channel as the 1-D comparator.
      // nela-lint: declare-exposure(opt-raw-upload)
      message.payload.Add(net::FieldTag::kRawCoordinate,
                          (*binding.node_ids)[i], member_points[i].x);
      // nela-lint: declare-exposure(opt-raw-upload)
      message.payload.Add(net::FieldTag::kRawCoordinate,
                          (*binding.node_ids)[i], member_points[i].y);
      binding.network->Send(message, binding.scope);
    }
  }
  return result;
}

}  // namespace nela::bounding
