// Private scalar values for secure bounding.
//
// Non-exposure is enforced by construction: protocol code holds
// PrivateScalar objects whose only query is a bound comparison (the
// semi-honest model's single permitted primitive). The raw value is
// reachable only through ExposeForOptBaseline(), which exists because the
// paper's OPT comparator requires users to reveal their coordinates -- the
// very thing OPT is criticized for.

#ifndef NELA_BOUNDING_SECRET_H_
#define NELA_BOUNDING_SECRET_H_

#include <cstdint>
#include <vector>

namespace nela::bounding {

class PrivateScalar {
 public:
  explicit PrivateScalar(double value) : value_(value) {}

  // The one legitimate protocol primitive: "is your value at most X?".
  bool AgreesWithUpperBound(double bound) const { return value_ <= bound; }

  // Deliberately loud escape hatch; used only by the OPT baseline and by
  // test assertions.
  double ExposeForOptBaseline() const { return value_; }

 private:
  double value_;
};

// Convenience: wraps raw values (e.g. one coordinate of each cluster
// member) into private scalars.
std::vector<PrivateScalar> MakePrivate(const std::vector<double>& values);

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_SECRET_H_
