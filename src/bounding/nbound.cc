#include "bounding/nbound.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace nela::bounding {

namespace {

// Residual of Equation 5; a root is the optimal N-bounding increment.
double Residual(const Distribution& dist, const RequestCostModel& cost,
                double gain, uint32_t n, double x) {
  return cost.RPrime(x) - gain * static_cast<double>(n) * dist.Pdf(x);
}

}  // namespace

double SolveNBoundIncrement(const Distribution& distribution,
                            const RequestCostModel& cost, double cb,
                            uint32_t n, const UnarySolution& unary,
                            double floor_increment) {
  NELA_CHECK_GT(cb, 0.0);
  NELA_CHECK_GE(n, 1u);
  if (n == 1) return std::max(unary.x, floor_increment);
  const double gain = unary.total_cost - unary.request_cost;
  NELA_CHECK_GT(gain, 0.0);
  const double support = distribution.SupportMax();

  double hi;
  if (std::isfinite(support)) {
    hi = support * (1.0 - 1e-12);
    if (Residual(distribution, cost, gain, n, hi) <= 0.0) {
      // Verification is so cheap relative to the request that covering the
      // entire support at once is optimal.
      return support;
    }
  } else {
    hi = 1.0;
    int expansions = 0;
    while (Residual(distribution, cost, gain, n, hi) <= 0.0) {
      hi *= 2.0;
      NELA_CHECK_LT(++expansions, 1024);
    }
  }
  if (Residual(distribution, cost, gain, n, floor_increment) >= 0.0) {
    // R' already dominates at the floor: the unconstrained optimum is ~0,
    // which would stall the protocol; advance by the floor instead.
    return floor_increment;
  }
  double lo = floor_increment;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (Residual(distribution, cost, gain, n, mid) > 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return std::max(0.5 * (lo + hi), floor_increment);
}

double NBoundUniformQuadratic(double c_star, double r_star, uint32_t n,
                              double c, double upper) {
  NELA_CHECK_GT(c, 0.0);
  NELA_CHECK_GT(upper, 0.0);
  return static_cast<double>(n) * (c_star - r_star) / (2.0 * c * upper);
}

double NBoundExponentialLinear(double c_star, double r_star, uint32_t n,
                               double c, double lambda) {
  NELA_CHECK_GT(c, 0.0);
  NELA_CHECK_GT(lambda, 0.0);
  const double arg = (c_star - r_star) * static_cast<double>(n) * lambda / c;
  if (arg <= 1.0) return 0.0;
  return std::log(arg) / lambda;
}

ExactNBoundTable::ExactNBoundTable(const Distribution& distribution,
                                   const RequestCostModel& cost, double cb,
                                   uint32_t max_n)
    : distribution_(distribution), cost_(cost), cb_(cb) {
  NELA_CHECK_GT(cb, 0.0);
  NELA_CHECK_GE(max_n, 1u);
  const double support = distribution.SupportMax();
  if (std::isfinite(support)) {
    search_hi_ = support;
  } else {
    // 1 - 1e-12 quantile: offsets beyond it are effectively impossible.
    double hi = 1.0;
    while (distribution.Cdf(hi) < 1.0 - 1e-12) hi *= 2.0;
    search_hi_ = hi;
  }

  x_.assign(max_n + 1, 0.0);
  c_.assign(max_n + 1, 0.0);
  for (uint32_t n = 1; n <= max_n; ++n) {
    // Coarse scan, then golden-section refinement around the best cell.
    constexpr int kGrid = 256;
    double best_x = search_hi_;
    double best_cost = CostAt(n, search_hi_);
    for (int g = 1; g < kGrid; ++g) {
      const double x = search_hi_ * static_cast<double>(g) / kGrid;
      const double value = CostAt(n, x);
      if (value < best_cost) {
        best_cost = value;
        best_x = x;
      }
    }
    double lo = std::max(best_x - search_hi_ / kGrid, 1e-300);
    double hi = std::min(best_x + search_hi_ / kGrid, search_hi_);
    constexpr double kInvPhi = 0.6180339887498949;
    double a = hi - (hi - lo) * kInvPhi;
    double b = lo + (hi - lo) * kInvPhi;
    double fa = CostAt(n, a);
    double fb = CostAt(n, b);
    for (int i = 0; i < 80; ++i) {
      if (fa < fb) {
        hi = b;
        b = a;
        fb = fa;
        a = hi - (hi - lo) * kInvPhi;
        fa = CostAt(n, a);
      } else {
        lo = a;
        a = b;
        fa = fb;
        b = lo + (hi - lo) * kInvPhi;
        fb = CostAt(n, b);
      }
    }
    x_[n] = 0.5 * (lo + hi);
    c_[n] = CostAt(n, x_[n]);
  }
}

double ExactNBoundTable::CostAt(uint32_t n, double x) const {
  const double p = distribution_.Cdf(x);   // P(x): one user agrees
  const double q = 1.0 - p;                // one user disagrees
  if (p <= 0.0) return std::numeric_limits<double>::infinity();
  const double nd = static_cast<double>(n);
  // Fixed charge: every disagreeing user verifies once, plus the request
  // at the (eventually accepted) bound.
  double fixed = nd * cb_ + cost_.R(x);
  // Recurrence terms for 1 <= i <= n-1 disagreeing next round, computed in
  // log space to stay stable for large n.
  if (q > 0.0) {
    const double log_q = std::log(q);
    const double log_p = std::log(p);
    double log_binom = std::log(nd);  // log C(n, 1)
    for (uint32_t i = 1; i < n; ++i) {
      const double log_term = log_binom + static_cast<double>(i) * log_q +
                              static_cast<double>(n - i) * log_p;
      fixed += std::exp(log_term) * c_[i];
      // C(n, i+1) = C(n, i) * (n - i) / (i + 1).
      log_binom += std::log(static_cast<double>(n - i) /
                            static_cast<double>(i + 1));
    }
  }
  // The i = n branch references C*(n) itself:
  //   C = fixed + q^n C  =>  C = fixed / (1 - q^n).
  const double q_pow_n = std::pow(q, static_cast<double>(n));
  NELA_CHECK_LT(q_pow_n, 1.0);
  return fixed / (1.0 - q_pow_n);
}

double ExactNBoundTable::increment(uint32_t n) const {
  NELA_CHECK_GE(n, 1u);
  NELA_CHECK_LT(n, x_.size());
  return x_[n];
}

double ExactNBoundTable::expected_cost(uint32_t n) const {
  NELA_CHECK_LT(n, c_.size());
  return c_[n];
}

}  // namespace nela::bounding
