// Progressive secure bounding protocol (Algorithms 3 and 4).
//
// Hypothesis-verification: the host proposes a bound X; every user whose
// private value still exceeds X says "disagree" (and nothing more); the
// bound advances by the policy's increment and only the disagreeing users
// verify again; the protocol ends when nobody disagrees. No party ever
// learns a value -- only, per user, the interval between the last rejected
// and the first accepted hypothesis (quantified in privacy_loss.h).
//
// Failure semantics: when a network binding is present, a dropped proposal
// or vote is treated as a timeout and retransmitted with capped exponential
// backoff (deterministic via the binding's util::Rng jitter). A peer that
// crashes mid-protocol surfaces as kUnavailable; an exhausted retry budget
// or the iteration cap surfaces as kDeadlineExceeded. No status message on
// any failure path ever carries a coordinate or a bound value.

#ifndef NELA_BOUNDING_PROTOCOL_H_
#define NELA_BOUNDING_PROTOCOL_H_

#include <cstdint>
#include <vector>

#include "bounding/increment_policy.h"
#include "bounding/secret.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "net/network.h"
#include "net/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace nela::bounding {

struct BoundingRunResult {
  // Final accepted bound (for all users, value <= bound).
  double bound = 0.0;
  uint32_t iterations = 0;
  // Total verification round trips; the paper charges Cb per entry.
  uint64_t verifications = 0;
  // Wall time of the run (increment computation dominates).
  double cpu_seconds = 0.0;
  // Fault-tolerance accounting of this run (0 on a clean network).
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t retransmitted_bytes = 0;
  // Hypothesis sequence X_0 < X_1 < ... (one entry per iteration).
  std::vector<double> bound_history;
  // agree_iteration[i]: index into bound_history of the first hypothesis
  // user i accepted.
  std::vector<uint32_t> agree_iteration;
};

// Optional network accounting hookup: messages flow between `host` and
// node_ids[i] (parallel to the secrets vector). `retry` governs how losses
// are recovered; `retry_rng` (may be null) supplies deterministic backoff
// jitter; `scope` (may be null) attributes every send, retransmission, and
// backoff wait to the owning request's accounting scope.
struct NetworkBinding {
  net::Network* network = nullptr;
  net::NodeId host = 0;
  const std::vector<net::NodeId>* node_ids = nullptr;
  net::BackoffPolicy retry;
  util::Rng* retry_rng = nullptr;
  net::RequestScope* scope = nullptr;
};

// Runs Algorithm 4: upper-bounds all `secrets`, starting the hypothesis at
// domain_min + first increment. Requires at least one secret. All secret
// values must lie in [domain_min, +inf); otherwise the protocol cannot
// terminate and fails with kDeadlineExceeded at the iteration cap. On a
// faulty network, fails with kUnavailable (peer crashed) or
// kDeadlineExceeded (retry budget exhausted).
[[nodiscard]] util::Result<BoundingRunResult> RunProgressiveUpperBounding(
    const std::vector<PrivateScalar>& secrets, double domain_min,
    IncrementPolicy& policy, const NetworkBinding& binding = {});

// OPT comparator (§VI): every user exposes the value, the bound is exact.
// One message per user; zero slack. Not private -- benchmark only, with no
// failure semantics (losses silently undercount traffic).
BoundingRunResult RunOptBounding(const std::vector<PrivateScalar>& secrets,
                                 const NetworkBinding& binding = {});

// Phase-2 entry point for 2-D cloaking: four protocol runs (upper/lower per
// axis) over the cluster members' coordinates. Each run starts its
// hypothesis schedule at the host's own coordinate (`reference`) -- so the
// offsets the increment policies model are member distances from the host,
// small cluster-local quantities rather than absolute positions -- lowered
// per axis by a seeded draw in [0, first_increment) when `origin_rng` is
// given, so the schedule origin never bit-equals the host's coordinate
// (the hypothesis-origin side channel). The host is a member, so every
// starting hypothesis remains a valid domain minimum for its direction.
// Policies must be stateless across runs (all provided ones are).
struct RegionBoundingResult {
  geo::Rect region;
  uint32_t iterations = 0;       // summed over the four runs
  uint64_t verifications = 0;    // summed over the four runs
  double cpu_seconds = 0.0;
  // Fault-tolerance accounting summed over the four runs.
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t retransmitted_bytes = 0;
};

// Fails like RunProgressiveUpperBounding; partial results of completed axis
// runs are discarded (the region is all-or-nothing, so a failure can never
// expose a partially bounded coordinate). `origin_rng` (may be null: origins
// start exactly at the reference) supplies the per-axis origin draws; pass
// the request's private sub-stream so runs stay bit-reproducible per seed.
[[nodiscard]] util::Result<RegionBoundingResult> ComputeCloakedRegion(
    const std::vector<geo::Point>& member_points, const geo::Point& reference,
    IncrementPolicy& policy, const NetworkBinding& binding = {},
    util::Rng* origin_rng = nullptr);

// OPT region: the exact bounding box (exposes coordinates).
RegionBoundingResult ComputeOptRegion(
    const std::vector<geo::Point>& member_points,
    const NetworkBinding& binding = {});

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_PROTOCOL_H_
