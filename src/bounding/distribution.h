// Probability models for the disagreeing users' offsets (§V).
//
// In an iteration of progressive bounding, the offsets xi - X0 of the users
// who rejected the previous bound X0 are modeled as i.i.d. positive random
// variables. The cost derivations only need the pdf and cdf.
//
// Note on the exponential model: the paper writes p(x) = e^(-lambda*x)/lambda,
// which does not integrate to 1; we implement the standard exponential
// p(x) = lambda * e^(-lambda*x). The closed forms in nbound.cc are derived
// for this corrected pdf (same functional shape, lambda moved across).

#ifndef NELA_BOUNDING_DISTRIBUTION_H_
#define NELA_BOUNDING_DISTRIBUTION_H_

#include <limits>

namespace nela::bounding {

class Distribution {
 public:
  virtual ~Distribution() = default;

  // Density at x > 0.
  virtual double Pdf(double x) const = 0;
  // P(offset <= x).
  virtual double Cdf(double x) const = 0;
  // Upper end of the support (+infinity when unbounded).
  virtual double SupportMax() const = 0;
  virtual const char* name() const = 0;
};

// Uniform on (0, U) -- Examples 5.1 / 5.3.
class UniformDistribution : public Distribution {
 public:
  explicit UniformDistribution(double upper);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double SupportMax() const override { return upper_; }
  const char* name() const override { return "uniform"; }

  double upper() const { return upper_; }

 private:
  double upper_;
};

// Exponential with rate lambda -- Examples 5.2 / 5.4.
class ExponentialDistribution : public Distribution {
 public:
  explicit ExponentialDistribution(double lambda);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double SupportMax() const override {
    return std::numeric_limits<double>::infinity();
  }
  const char* name() const override { return "exponential"; }

  double lambda() const { return lambda_; }

 private:
  double lambda_;
};

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_DISTRIBUTION_H_
