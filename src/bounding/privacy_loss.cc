#include "bounding/privacy_loss.h"

#include <algorithm>

#include "util/check.h"

namespace nela::bounding {

PrivacyLossReport AnalyzePrivacyLoss(const BoundingRunResult& run,
                                     double domain_min) {
  PrivacyLossReport report;
  report.interval_width.reserve(run.agree_iteration.size());
  for (uint32_t agree_at : run.agree_iteration) {
    NELA_CHECK_LT(agree_at, run.bound_history.size());
    const double hi = run.bound_history[agree_at];
    const double lo =
        agree_at == 0 ? domain_min : run.bound_history[agree_at - 1];
    report.interval_width.push_back(hi - lo);
  }
  if (report.interval_width.empty()) return report;
  double sum = 0.0;
  report.min_width = report.interval_width.front();
  report.max_width = report.interval_width.front();
  for (double width : report.interval_width) {
    sum += width;
    report.min_width = std::min(report.min_width, width);
    report.max_width = std::max(report.max_width, width);
  }
  report.mean_width = sum / static_cast<double>(report.interval_width.size());
  return report;
}

}  // namespace nela::bounding
