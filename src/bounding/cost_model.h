// Communication cost of the subsequent service request as a function of the
// bound size (the R(x) of §V).
//
// The paper's two instances: cost proportional to the area of the bound
// (range queries -- R(x) = c * x^2) and to its length (R(x) = c * x).

#ifndef NELA_BOUNDING_COST_MODEL_H_
#define NELA_BOUNDING_COST_MODEL_H_

namespace nela::bounding {

class RequestCostModel {
 public:
  virtual ~RequestCostModel() = default;

  virtual double R(double x) const = 0;
  // dR/dx, needed by the optimality conditions (Eqs. 2 and 5).
  virtual double RPrime(double x) const = 0;
  virtual const char* name() const = 0;
};

// R(x) = coefficient * x^2 (area-proportional; Examples 5.1 / 5.3). For the
// paper's range-query workload the coefficient is Cr * rho where rho is the
// POI density: payload = (#POIs inside an x-by-x region) * Cr.
class QuadraticCost : public RequestCostModel {
 public:
  explicit QuadraticCost(double coefficient);

  double R(double x) const override { return coefficient_ * x * x; }
  double RPrime(double x) const override { return 2.0 * coefficient_ * x; }
  const char* name() const override { return "quadratic"; }

  double coefficient() const { return coefficient_; }

 private:
  double coefficient_;
};

// R(x) = coefficient * x (length-proportional; Examples 5.2 / 5.4).
class LinearCost : public RequestCostModel {
 public:
  explicit LinearCost(double coefficient);

  double R(double x) const override { return coefficient_ * x; }
  double RPrime(double) const override { return coefficient_; }
  const char* name() const override { return "linear"; }

  double coefficient() const { return coefficient_; }

 private:
  double coefficient_;
};

}  // namespace nela::bounding

#endif  // NELA_BOUNDING_COST_MODEL_H_
