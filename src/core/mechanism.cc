#include "core/mechanism.h"

namespace nela::core {

util::Status MechanismStage::Run(RequestContext& ctx, PipelineState& state,
                                 StageRecord& record) {
  outcome_ = MechanismOutcome{};
  const util::Status status = mechanism_->Cloak(ctx, state.host, &outcome_);
  if (!status.ok()) return status;
  state.outcome.region = outcome_.region;
  state.outcome.probes = outcome_.probes;
  state.outcome.anonymity_satisfied = outcome_.satisfied;
  record.detail = outcome_.detail;
  // An unsatisfied mechanism is a degradation, not an error: the request
  // still delivers a structured outcome (empty artifact, failure code),
  // mirroring the native pipeline's below-k semantics.
  if (!outcome_.satisfied) record.code = util::StatusCode::kFailedPrecondition;
  state.done = true;
  return util::Status::Ok();
}

}  // namespace nela::core
