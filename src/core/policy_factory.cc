#include "core/policy_factory.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "bounding/cost_model.h"
#include "bounding/distribution.h"
#include "bounding/nbound.h"
#include "bounding/unary.h"
#include "util/check.h"

namespace nela::core {

namespace {

// Secure policy with the per-round model of Table I: the offsets of the N
// users still disagreeing are Uniform(0, U) with U = N / density, re-read
// each round from the current disagreeing count. Increments therefore
// taper as users agree, which is what keeps the final overshoot -- and so
// the request-cost ratio -- near the optimal bounding.
class PerRoundSecurePolicy : public bounding::IncrementPolicy {
 public:
  PerRoundSecurePolicy(double density, double cost_coefficient, double cb)
      : density_(density), cost_(cost_coefficient), cb_(cb) {}

  double NextIncrement(double /*covered*/, uint32_t disagreeing,
                       uint32_t /*iteration*/) override {
    NELA_CHECK_GE(disagreeing, 1u);
    auto it = cache_.find(disagreeing);
    if (it == cache_.end()) {
      // Floor the model width: with one or two stragglers left the pure
      // N/density support collapses and the schedule would crawl through
      // many near-empty rounds; three users' worth of width keeps the tail
      // overshoot negligible at a handful of rounds.
      const double width =
          std::max<double>(disagreeing, 3.0) / density_;
      const bounding::UniformDistribution distribution(width);
      const bounding::UnarySolution unary =
          bounding::SolveUnary(distribution, cost_, cb_);
      const double increment =
          disagreeing == 1
              ? unary.x
              : bounding::SolveNBoundIncrement(distribution, cost_, cb_,
                                               disagreeing, unary);
      it = cache_.emplace(disagreeing, increment).first;
    }
    return it->second;
  }
  const char* name() const override { return "secure"; }

 private:
  double density_;
  bounding::QuadraticCost cost_;
  double cb_;
  std::unordered_map<uint32_t, double> cache_;
};

}  // namespace

PolicyFactory MakeSecurePolicyFactory(const BoundingParams& params) {
  NELA_CHECK_GT(params.density, 0.0);
  return [params](uint32_t cluster_size)
             -> std::unique_ptr<bounding::IncrementPolicy> {
    NELA_CHECK_GE(cluster_size, 1u);
    const double coefficient = params.cr * params.density;
    return std::make_unique<PerRoundSecurePolicy>(params.density,
                                                  coefficient, params.cb);
  };
}

PolicyFactory MakeLinearPolicyFactory(const BoundingParams& params) {
  NELA_CHECK_GT(params.density, 0.0);
  return [params](uint32_t cluster_size)
             -> std::unique_ptr<bounding::IncrementPolicy> {
    NELA_CHECK_GE(cluster_size, 1u);
    const double step =
        0.5 * static_cast<double>(cluster_size) / params.density;
    return std::make_unique<bounding::LinearIncrementPolicy>(step);
  };
}

PolicyFactory MakeExponentialPolicyFactory(const BoundingParams& params) {
  NELA_CHECK_GT(params.density, 0.0);
  return [params](uint32_t cluster_size)
             -> std::unique_ptr<bounding::IncrementPolicy> {
    NELA_CHECK_GE(cluster_size, 1u);
    const double step = static_cast<double>(cluster_size) / params.density;
    return std::make_unique<bounding::ExponentialIncrementPolicy>(step);
  };
}

}  // namespace nela::core
