#include "core/request_context.h"

namespace nela::core {

namespace {

// SplitMix64 output function: a bijective avalanche mix, so distinct
// (master_seed, ordinal) pairs land on well-separated stream seeds even for
// consecutive ordinals.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

uint64_t RequestContext::DeriveStreamSeed(uint64_t master_seed,
                                          uint64_t ordinal) {
  // master_seed x ordinal, avalanche-mixed twice so neither coordinate can
  // cancel the other (ordinal+1 keeps ordinal 0 from collapsing the mix).
  return Mix64(master_seed ^ Mix64((ordinal + 1) * 0x9e3779b97f4a7c15ull));
}

RequestContext::RequestContext(uint64_t master_seed, uint64_t ordinal,
                               data::UserId host)
    : master_seed_(master_seed), ordinal_(ordinal), host_(host),
      rng_(DeriveStreamSeed(master_seed, ordinal)) {}

std::string TraceSink::ToString() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    out += event.stage;
    out += ' ';
    out += util::StatusCodeName(event.code);
    if (!event.detail.empty()) {
      out += ' ';
      out += event.detail;
    }
    out += '\n';
  }
  return out;
}

}  // namespace nela::core
