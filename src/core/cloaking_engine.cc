#include "core/cloaking_engine.h"

#include <string>
#include <utility>

#include "bounding/protocol.h"

namespace nela::core {

CloakingEngine::CloakingEngine(const data::Dataset& dataset,
                               std::unique_ptr<cluster::Clusterer> clusterer,
                               cluster::Registry* registry,
                               PolicyFactory policy_factory,
                               BoundingMode mode, net::Network* network)
    : dataset_(dataset), clusterer_(std::move(clusterer)),
      registry_(registry), policy_factory_(std::move(policy_factory)),
      mode_(mode), network_(network) {
  NELA_CHECK(clusterer_ != nullptr);
  NELA_CHECK(registry_ != nullptr);
  NELA_CHECK_EQ(registry_->user_count(), dataset.size());
  NELA_CHECK(policy_factory_ != nullptr);
}

void CloakingEngine::SetRetryPolicy(const net::BackoffPolicy& policy,
                                    util::Rng* jitter_rng,
                                    uint32_t max_phase_retries) {
  retry_policy_ = policy;
  retry_rng_ = jitter_rng;
  max_phase_retries_ = max_phase_retries;
}

util::Result<CloakingOutcome> CloakingEngine::RequestCloaking(
    data::UserId host) {
  if (host >= dataset_.size()) {
    return util::InvalidArgumentError("host out of range");
  }
  if (network_ != nullptr && !network_->IsAlive(host)) {
    return util::UnavailableError("host " + std::to_string(host) +
                                  " is offline");
  }
  CloakingOutcome outcome;
  // Retry/timeout accounting is read back as a delta over the network's
  // per-kind counters, so phase-1 retransmissions are included too.
  const net::RetryStats retry_before =
      network_ != nullptr ? network_->total_retry_stats() : net::RetryStats{};
  auto finalize_degradation = [&]() {
    if (network_ == nullptr) return;
    const net::RetryStats now = network_->total_retry_stats();
    outcome.degradation.retries = now.retries - retry_before.retries;
    outcome.degradation.timeouts =
        now.timeouts_observed - retry_before.timeouts_observed;
    outcome.degradation.retransmitted_bytes =
        now.retransmitted_bytes - retry_before.retransmitted_bytes;
  };

  // Phase 1: k-clustering. Reciprocal clusterers answer a previously
  // clustered host from the registry at zero cost (step (1) of Fig. 3);
  // baseline clusterers may always form a fresh cluster.
  auto clustering = clusterer_->ClusterFor(host);
  if (!clustering.ok()) return clustering.status();
  outcome.cluster_id = clustering.value().cluster_id;
  outcome.cluster_reused = clustering.value().reused;
  outcome.clustering_messages = clustering.value().involved_users;
  const uint32_t phase1_members_lost = clustering.value().members_lost;
  outcome.degradation.members_lost = phase1_members_lost;
  const cluster::ClusterInfo& info = registry_->info(outcome.cluster_id);
  outcome.anonymity_satisfied = info.valid;

  if (info.region.has_value()) {
    // Phase 2 already ran for this cluster (the host, or another member,
    // triggered it earlier) -- the shared region is reused as is.
    outcome.region = *info.region;
    outcome.region_reused = outcome.cluster_reused;
    finalize_degradation();
    return outcome;
  }

  // Phase 2: secure bounding over the members' private coordinates.
  // Members that crashed since phase 1 are excluded up front; members that
  // crash mid-protocol surface as kUnavailable from the bounding run, and
  // the phase is retried over the survivors -- as long as at least k of
  // them remain. All failure paths leave the region empty: no partial
  // bound ever escapes.
  const uint32_t k = clusterer_->k();
  for (uint32_t phase_attempt = 0;; ++phase_attempt) {
    std::vector<geo::Point> member_points;
    std::vector<net::NodeId> node_ids;
    member_points.reserve(info.members.size());
    node_ids.reserve(info.members.size());
    for (graph::VertexId member : info.members) {
      if (network_ != nullptr && !network_->IsAlive(member)) continue;
      member_points.push_back(dataset_.point(member));
      node_ids.push_back(member);
    }
    const uint32_t survivors = static_cast<uint32_t>(node_ids.size());
    // Recomputed each attempt from the registry's membership, so retries
    // never double-count a lost member.
    outcome.degradation.members_lost =
        phase1_members_lost +
        (static_cast<uint32_t>(info.members.size()) - survivors);
    if (network_ != nullptr && !network_->IsAlive(host)) {
      finalize_degradation();
      return util::UnavailableError("host " + std::to_string(host) +
                                    " crashed before bounding");
    }
    if (network_ != nullptr && survivors < k) {
      // Anonymity can no longer be satisfied; degrade gracefully instead
      // of exposing anyone: empty region, structured reason.
      outcome.anonymity_satisfied = false;
      outcome.region = geo::Rect();
      outcome.degradation.failure_code = util::StatusCode::kFailedPrecondition;
      outcome.degradation.failure_reason =
          "cluster fell below k after member churn (" +
          std::to_string(survivors) + " of " +
          std::to_string(info.members.size()) + " members survive, k=" +
          std::to_string(k) + ")";
      finalize_degradation();
      return outcome;
    }

    bounding::NetworkBinding binding;
    if (network_ != nullptr) {
      binding.network = network_;
      binding.host = host;
      binding.node_ids = &node_ids;
      binding.retry = retry_policy_;
      binding.retry_rng = retry_rng_;
    }

    bounding::RegionBoundingResult bounded;
    if (mode_ == BoundingMode::kOptBaseline) {
      bounded = bounding::ComputeOptRegion(member_points, binding);
    } else {
      std::unique_ptr<bounding::IncrementPolicy> policy =
          policy_factory_(static_cast<uint32_t>(member_points.size()));
      auto run = bounding::ComputeCloakedRegion(
          member_points, dataset_.point(host), *policy, binding);
      if (!run.ok()) {
        if (run.status().code() == util::StatusCode::kUnavailable &&
            phase_attempt < max_phase_retries_) {
          // A member crashed mid-protocol: drop it (the liveness filter at
          // the top of the loop picks that up) and re-run bounding.
          ++outcome.degradation.phases_retried;
          continue;
        }
        // Retry budget exhausted (kDeadlineExceeded) or churn beyond the
        // phase-retry budget: report a structured failure, never a region
        // computed from partial protocol state.
        outcome.anonymity_satisfied = false;
        outcome.region = geo::Rect();
        outcome.degradation.failure_code = run.status().code();
        outcome.degradation.failure_reason = run.status().message();
        finalize_degradation();
        return outcome;
      }
      bounded = std::move(run).value();
    }
    registry_->SetRegion(outcome.cluster_id, bounded.region);
    outcome.region = bounded.region;
    outcome.bounding_verifications = bounded.verifications;
    outcome.bounding_iterations = bounded.iterations;
    outcome.bounding_cpu_seconds = bounded.cpu_seconds;
    finalize_degradation();
    return outcome;
  }
}

}  // namespace nela::core
