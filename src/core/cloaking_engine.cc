#include "core/cloaking_engine.h"

#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/stages.h"

namespace nela::core {

CloakingEngine::CloakingEngine(const data::Dataset& dataset,
                               std::unique_ptr<cluster::Clusterer> clusterer,
                               cluster::Registry* registry,
                               PolicyFactory policy_factory,
                               BoundingMode mode, net::Network* network)
    : dataset_(dataset), clusterer_(std::move(clusterer)),
      registry_(registry), policy_factory_(std::move(policy_factory)),
      mode_(mode), network_(network) {
  NELA_CHECK(clusterer_ != nullptr);
  NELA_CHECK(registry_ != nullptr);
  NELA_CHECK_EQ(registry_->user_count(), dataset.size());
  NELA_CHECK(policy_factory_ != nullptr);
}

void CloakingEngine::SetRetryPolicy(const net::BackoffPolicy& policy,
                                    util::Rng* jitter_rng,
                                    uint32_t max_phase_retries) {
  retry_policy_ = policy;
  retry_rng_ = jitter_rng;
  max_phase_retries_ = max_phase_retries;
}

util::Result<CloakingOutcome> CloakingEngine::RequestCloaking(
    data::UserId host) {
  RequestContext ctx(master_seed_, next_ordinal_++, host);
  return RequestCloaking(host, ctx);
}

util::Result<CloakingOutcome> CloakingEngine::RequestCloaking(
    data::UserId host, RequestContext& ctx) {
  if (host >= dataset_.size()) {
    return util::InvalidArgumentError("host out of range");
  }
  if (network_ != nullptr && !network_->IsAlive(host)) {
    return util::UnavailableError("host " + std::to_string(host) +
                                  " is offline");
  }

  PipelineState state;
  state.host = host;
  state.k = clusterer_->k();

  ResolveReuseStage resolve_reuse(clusterer_.get(), registry_);
  ClusterStage cluster(clusterer_.get(), registry_);
  ClaimCommitStage claim_commit;
  SecureBoundStage::Config bound_config;
  bound_config.dataset = &dataset_;
  bound_config.policy_factory = &policy_factory_;
  bound_config.mode = mode_;
  bound_config.network = network_;
  bound_config.retry = retry_policy_;
  bound_config.jitter_rng = retry_rng_;
  bound_config.max_phase_retries = max_phase_retries_;
  SecureBoundStage secure_bound(bound_config);
  PublishStage publish(registry_, &secure_bound, network_);

  const std::vector<Stage*> stages = {&resolve_reuse, &cluster, &claim_commit,
                                      &secure_bound, &publish};
  const util::Status status = RunPipeline(stages, ctx, state);
  FinalizeDegradation(ctx, &state.outcome);
  if (!status.ok()) return status;
  return std::move(state.outcome);
}

}  // namespace nela::core
