#include "core/cloaking_engine.h"

#include "bounding/protocol.h"

namespace nela::core {

CloakingEngine::CloakingEngine(const data::Dataset& dataset,
                               std::unique_ptr<cluster::Clusterer> clusterer,
                               cluster::Registry* registry,
                               PolicyFactory policy_factory,
                               BoundingMode mode, net::Network* network)
    : dataset_(dataset), clusterer_(std::move(clusterer)),
      registry_(registry), policy_factory_(std::move(policy_factory)),
      mode_(mode), network_(network) {
  NELA_CHECK(clusterer_ != nullptr);
  NELA_CHECK(registry_ != nullptr);
  NELA_CHECK_EQ(registry_->user_count(), dataset.size());
  NELA_CHECK(policy_factory_ != nullptr);
}

util::Result<CloakingOutcome> CloakingEngine::RequestCloaking(
    data::UserId host) {
  if (host >= dataset_.size()) {
    return util::InvalidArgumentError("host out of range");
  }
  CloakingOutcome outcome;

  // Phase 1: k-clustering. Reciprocal clusterers answer a previously
  // clustered host from the registry at zero cost (step (1) of Fig. 3);
  // baseline clusterers may always form a fresh cluster.
  auto clustering = clusterer_->ClusterFor(host);
  if (!clustering.ok()) return clustering.status();
  outcome.cluster_id = clustering.value().cluster_id;
  outcome.cluster_reused = clustering.value().reused;
  outcome.clustering_messages = clustering.value().involved_users;
  const cluster::ClusterInfo& info = registry_->info(outcome.cluster_id);
  outcome.anonymity_satisfied = info.valid;

  if (info.region.has_value()) {
    // Phase 2 already ran for this cluster (the host, or another member,
    // triggered it earlier) -- the shared region is reused as is.
    outcome.region = *info.region;
    outcome.region_reused = outcome.cluster_reused;
    return outcome;
  }

  // Phase 2: secure bounding over the members' private coordinates.
  std::vector<geo::Point> member_points;
  member_points.reserve(info.members.size());
  std::vector<net::NodeId> node_ids;
  node_ids.reserve(info.members.size());
  for (graph::VertexId member : info.members) {
    member_points.push_back(dataset_.point(member));
    node_ids.push_back(member);
  }
  bounding::NetworkBinding binding;
  if (network_ != nullptr) {
    binding.network = network_;
    binding.host = host;
    binding.node_ids = &node_ids;
  }

  bounding::RegionBoundingResult bounded;
  if (mode_ == BoundingMode::kOptBaseline) {
    bounded = bounding::ComputeOptRegion(member_points, binding);
  } else {
    std::unique_ptr<bounding::IncrementPolicy> policy =
        policy_factory_(static_cast<uint32_t>(member_points.size()));
    bounded = bounding::ComputeCloakedRegion(
        member_points, dataset_.point(host), *policy, binding);
  }
  registry_->SetRegion(outcome.cluster_id, bounded.region);
  outcome.region = bounded.region;
  outcome.bounding_verifications = bounded.verifications;
  outcome.bounding_iterations = bounded.iterations;
  outcome.bounding_cpu_seconds = bounded.cpu_seconds;
  return outcome;
}

}  // namespace nela::core
