// The staged cloaking pipeline: one request = one ordered walk through
//
//   ResolveReuse -> Cluster -> ClaimCommit -> SecureBound -> Publish
//
// Each stage implements the small core::Stage interface, so the clusterer,
// the claim coordinator, the secure bounding protocol, and the registry
// publish are invoked, traced, and degraded uniformly: RunPipeline appends
// one StageRecord per stage to the outcome's DegradationReport and one
// deterministic TraceEvent per stage to the request's trace sink, instead
// of each phase poking report fields ad hoc.
//
// Degradation contract: a stage that completes or degrades the request
// (reused region, cluster below k, retry budget exhausted) sets
// `state.done` and returns Ok -- the remaining stages are recorded as
// skipped and the caller still receives a CloakingOutcome. Only hard
// request errors (invalid host, host offline) return a non-ok Status,
// which aborts the pipeline.

#ifndef NELA_CORE_PIPELINE_H_
#define NELA_CORE_PIPELINE_H_

#include <vector>

#include "bounding/protocol.h"
#include "cluster/concurrency.h"
#include "cluster/registry.h"
#include "core/cloaking_engine.h"
#include "core/request_context.h"
#include "data/dataset.h"
#include "util/status.h"

namespace nela::core {

// Shard placement facts for one request, resolved by the sharded service
// router before the pipeline runs. Single-shard drivers keep the defaults,
// and stages only surface these facts when shard_count > 1, so a K=1 run's
// traces stay byte-identical with an unsharded run's.
struct ShardContext {
  uint32_t shard_count = 1;
  uint32_t home_shard = 0;   // shard owning the host's location
  uint32_t owner_shard = 0;  // shard owning the resulting cluster
  bool cross_shard = false;  // cluster members span more than one shard
};

// Mutable state shared by the stages of one request.
struct PipelineState {
  data::UserId host = 0;
  // Anonymity requirement the cluster is validated against.
  uint32_t k = 0;
  CloakingOutcome outcome;
  // The host's cluster once one exists. Points into the registry's stable
  // (deque-backed) storage; membership never mutates after Register.
  const cluster::ClusterInfo* cluster_info = nullptr;
  // Claim plumbing for concurrent batches; null in single-request use.
  // RunPipeline releases any ticket still held when the walk ends.
  cluster::ClaimCoordinator* coordinator = nullptr;
  cluster::Ticket ticket = cluster::kNoTicket;
  // Shard placement of this request; defaults mean "unsharded".
  ShardContext shard;
  // Set by a stage that finished (or degraded) the request early; the
  // remaining stages are skipped and recorded as ran = false.
  bool done = false;
};

class Stage {
 public:
  virtual ~Stage() = default;

  // Stable stage identifier ("resolve_reuse", "cluster", ...): the first
  // token of the stage's trace line and StageRecord.
  virtual const char* name() const = 0;

  // Runs the stage against `state`, filling `record` with deterministic
  // facts (detail text, members lost, phases retried). Record code and the
  // trace event are derived by RunPipeline from `record.code` / the
  // returned status.
  [[nodiscard]] virtual util::Status Run(RequestContext& ctx, PipelineState& state,
                           StageRecord& record) = 0;
};

// Walks `stages` in order. For every stage -- executed or skipped -- one
// StageRecord is appended to state.outcome.degradation.stages and one
// TraceEvent to ctx.trace(); both carry only deterministic facts, so a
// request's trace is bit-identical across runs and thread counts.
// Releases state.ticket (if any) before returning.
[[nodiscard]] util::Status RunPipeline(const std::vector<Stage*>& stages,
                         RequestContext& ctx, PipelineState& state);

// Assembles the aggregate DegradationReport fields from the per-stage
// records plus the context's scoped traffic accounting (replacing the old
// before/after diff over the network's global counters, which is only
// correct with a single request in flight).
void FinalizeDegradation(const RequestContext& ctx, CloakingOutcome* outcome);

}  // namespace nela::core

#endif  // NELA_CORE_PIPELINE_H_
