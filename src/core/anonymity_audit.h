// Anonymity audit: the adversary's-eye check of the system's guarantees.
//
// Location k-anonymity holds when (a) every published cloaked region
// contains all of its cluster's members -- so an adversary intercepting a
// request cannot exclude any member by geometry -- and (b) every cluster
// that claims validity has at least k members, and (c) membership is
// reciprocal (one cluster per user; the registry enforces this, the audit
// re-verifies). The audit walks a registry + dataset after any workload and
// reports every violation, making end-to-end privacy regressions testable.

#ifndef NELA_CORE_ANONYMITY_AUDIT_H_
#define NELA_CORE_ANONYMITY_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/registry.h"
#include "data/dataset.h"

namespace nela::core {

struct AuditViolation {
  cluster::ClusterId cluster_id = cluster::kNoCluster;
  std::string description;
};

struct AuditReport {
  uint32_t clusters_checked = 0;
  uint32_t regions_checked = 0;
  // Valid clusters whose member count is below k.
  uint32_t undersized_clusters = 0;
  // Members outside their cluster's published region.
  uint32_t exposed_members = 0;
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
};

// Audits every cluster of `registry` against `dataset` for anonymity level
// `k`. Clusters without a region yet are checked for membership rules only.
//
// `alive` (optional, indexed by user id) makes the audit churn-aware: a
// member that crashed out of the system keeps its registered membership
// (registry membership is immutable) but was excluded from the region the
// bounding stage published over the survivors, so geometric containment is
// not required of it. Cardinality and reciprocity are still checked against
// the full registered membership -- those held at registration time and
// immutability preserves them.
AuditReport AuditAnonymity(const cluster::Registry& registry,
                           const data::Dataset& dataset, uint32_t k,
                           const std::vector<bool>* alive = nullptr);

}  // namespace nela::core

#endif  // NELA_CORE_ANONYMITY_AUDIT_H_
