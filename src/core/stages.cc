#include "core/stages.h"

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bounding/protocol.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace nela::core {

namespace {

std::string ClusterFacts(cluster::ClusterId id,
                         const cluster::ClusterInfo& info,
                         uint64_t involved) {
  return "cluster=" + std::to_string(id) +
         " members=" + std::to_string(info.members.size()) +
         " valid=" + std::to_string(info.valid ? 1 : 0) +
         " involved=" + std::to_string(involved);
}

}  // namespace

util::Status ResolveReuseStage::Run(RequestContext& ctx, PipelineState& state,
                                    StageRecord& record) {
  (void)ctx;
  if (!clusterer_->reciprocal() || !registry_->IsClustered(state.host)) {
    record.detail = "miss";
    return util::Status::Ok();
  }
  const cluster::ClusterId id = registry_->ClusterOf(state.host);
  const cluster::ClusterInfo& info = registry_->info(id);
  state.cluster_info = &info;
  state.outcome.cluster_id = id;
  state.outcome.cluster_reused = true;
  state.outcome.anonymity_satisfied = info.valid;
  if (!info.region.has_value()) {
    // The cluster formed earlier but phase 2 never ran for it; phase 1 is
    // still free, and the pipeline proceeds straight to bounding.
    record.detail = "hit cluster=" + std::to_string(id) + " region=pending";
    return util::Status::Ok();
  }
  state.outcome.region = *info.region;
  state.outcome.region_reused = true;
  state.done = true;
  record.detail = "hit cluster=" + std::to_string(id) + " region=reused";
  return util::Status::Ok();
}

util::Status ClusterStage::Run(RequestContext& ctx, PipelineState& state,
                               StageRecord& record) {
  if (state.cluster_info != nullptr) {
    // ResolveReuse already located the cluster (region pending).
    record.detail = "resolved";
    return util::Status::Ok();
  }
  auto clustering = clusterer_->ClusterFor(state.host, &ctx.scope());
  if (!clustering.ok()) return clustering.status();
  state.outcome.cluster_id = clustering.value().cluster_id;
  state.outcome.cluster_reused = clustering.value().reused;
  state.outcome.clustering_messages = clustering.value().involved_users;
  record.members_lost = clustering.value().members_lost;
  const cluster::ClusterInfo& info = registry_->info(state.outcome.cluster_id);
  state.cluster_info = &info;
  state.outcome.anonymity_satisfied = info.valid;
  record.detail = ClusterFacts(state.outcome.cluster_id, info,
                               clustering.value().involved_users);
  if (info.region.has_value()) {
    // Phase 2 already ran for this cluster (another member triggered it);
    // the shared region is served as is.
    state.outcome.region = *info.region;
    state.outcome.region_reused = state.outcome.cluster_reused;
    state.done = true;
    record.detail += " region=reused";
  }
  return util::Status::Ok();
}

util::Status ClaimCommitStage::Run(RequestContext& ctx, PipelineState& state,
                                   StageRecord& record) {
  (void)ctx;
  if (state.coordinator == nullptr) {
    record.detail = "no-coordinator";
    return util::Status::Ok();
  }
  NELA_CHECK(state.cluster_info != nullptr);
  if (state.ticket == cluster::kNoTicket) {
    state.ticket = state.coordinator->OpenRequest();
  }
  // Wound-wait makes this loop finite: a failure means an older request
  // holds some member, and older requests never wait on younger ones, so
  // their claims are always eventually released.
  while (!state.coordinator->TryClaim(state.ticket,
                                      state.cluster_info->members)) {
    std::this_thread::yield();
  }
  record.detail =
      "members=" + std::to_string(state.cluster_info->members.size());
  if (state.shard.shard_count > 1) {
    // Shard placement is itself deterministic (a pure function of the
    // dataset and the committed membership), so surfacing it keeps traces
    // bit-identical across thread counts; guarded so unsharded runs keep
    // their historical trace bytes.
    record.detail += " home=" + std::to_string(state.shard.home_shard) +
                     " owner=" + std::to_string(state.shard.owner_shard);
    if (state.shard.cross_shard) record.detail += " cross-shard";
  }
  return util::Status::Ok();
}

util::Status SecureBoundStage::Run(RequestContext& ctx, PipelineState& state,
                                   StageRecord& record) {
  NELA_CHECK(state.cluster_info != nullptr);
  NELA_CHECK(config_.dataset != nullptr);
  const cluster::ClusterInfo& info = *state.cluster_info;
  CloakingOutcome& outcome = state.outcome;
  net::Network* network = config_.network;

  // Degradations deliver an outcome (empty region, structured reason)
  // rather than an error: record the code, stop the pipeline, return Ok.
  auto degrade = [&](util::StatusCode code, std::string reason) {
    outcome.anonymity_satisfied = false;
    outcome.region = geo::Rect();
    record.code = code;
    record.detail = std::move(reason);
    state.done = true;
    return util::Status::Ok();
  };

  for (uint32_t phase_attempt = 0;; ++phase_attempt) {
    if (ctx.DeadlineExpired()) {
      return degrade(util::StatusCode::kDeadlineExceeded,
                     "request deadline exhausted before bounding completed");
    }
    // Members that crashed since phase 1 are excluded up front; members
    // that crash mid-protocol surface as kUnavailable from the bounding
    // run, and the phase is retried over the survivors -- as long as at
    // least k of them remain. All failure paths leave the region empty: no
    // partial bound ever escapes.
    std::vector<geo::Point> member_points;
    std::vector<net::NodeId> node_ids;
    member_points.reserve(info.members.size());
    node_ids.reserve(info.members.size());
    for (graph::VertexId member : info.members) {
      if (network != nullptr && !network->IsAlive(member)) continue;
      member_points.push_back(config_.dataset->point(member));
      node_ids.push_back(member);
    }
    const uint32_t survivors = static_cast<uint32_t>(node_ids.size());
    // Recomputed each attempt from the registry's membership, so retries
    // never double-count a lost member.
    record.members_lost =
        static_cast<uint32_t>(info.members.size()) - survivors;
    if (network != nullptr && !network->IsAlive(state.host)) {
      return util::UnavailableError("host " + std::to_string(state.host) +
                                    " crashed before bounding");
    }
    if (network != nullptr && survivors < state.k) {
      return degrade(
          util::StatusCode::kFailedPrecondition,
          "cluster fell below k after member churn (" +
              std::to_string(survivors) + " of " +
              std::to_string(info.members.size()) + " members survive, k=" +
              std::to_string(state.k) + ")");
    }

    bounding::NetworkBinding binding;
    if (network != nullptr) {
      binding.network = network;
      binding.host = state.host;
      binding.node_ids = &node_ids;
      binding.retry = config_.retry;
      binding.retry_rng =
          config_.jitter_from_context ? &ctx.rng() : config_.jitter_rng;
      binding.scope = &ctx.scope();
    }

    if (config_.mode == BoundingMode::kOptBaseline) {
      bounded_ = bounding::ComputeOptRegion(member_points, binding);
    } else {
      std::unique_ptr<bounding::IncrementPolicy> policy =
          (*config_.policy_factory)(
              static_cast<uint32_t>(member_points.size()));
      // The request's private sub-stream also feeds the per-axis origin
      // randomization that closes the hypothesis-origin side channel.
      auto run = bounding::ComputeCloakedRegion(
          member_points, config_.dataset->point(state.host), *policy,
          binding, &ctx.rng());
      if (!run.ok()) {
        if (run.status().code() == util::StatusCode::kUnavailable &&
            phase_attempt < config_.max_phase_retries) {
          // A member crashed mid-protocol: drop it (the liveness filter at
          // the top of the loop picks that up) and re-run bounding.
          ++record.phases_retried;
          continue;
        }
        // Retry budget exhausted (kDeadlineExceeded) or churn beyond the
        // phase-retry budget: report a structured failure, never a region
        // computed from partial protocol state.
        return degrade(run.status().code(), run.status().message());
      }
      bounded_ = std::move(run).value();
    }
    outcome.bounding_verifications = bounded_.verifications;
    outcome.bounding_iterations = bounded_.iterations;
    outcome.bounding_cpu_seconds = bounded_.cpu_seconds;
    record.detail = "iterations=" + std::to_string(bounded_.iterations) +
                    " verifications=" +
                    std::to_string(bounded_.verifications) +
                    " survivors=" + std::to_string(survivors);
    return util::Status::Ok();
  }
}

util::Status PublishStage::Run(RequestContext& ctx, PipelineState& state,
                               StageRecord& record) {
  const geo::Rect& region = bound_->bounded().region;
  NELA_CHECK(!region.empty());
  if (region_writer_ != nullptr) {
    auto wrote = region_writer_->WriteRegion(state.outcome.cluster_id, region);
    if (!wrote.ok()) return wrote;  // e.g. crash mid-WAL-append
  } else {
    registry_->SetRegion(state.outcome.cluster_id, region);
  }
  state.outcome.region = region;
  record.detail = "cluster=" + std::to_string(state.outcome.cluster_id);
  if (network_ != nullptr && state.cluster_info != nullptr) {
    // Fire-and-forget assignment notification: the region is the cluster's
    // shared public artifact, so delivery is best-effort -- a member that
    // misses it re-reads the registry when it next needs the region.
    uint64_t notified = 0;
    for (graph::VertexId member : state.cluster_info->members) {
      if (member == state.host) continue;
      net::Message message;
      message.from = state.host;
      message.to = member;
      message.kind = net::MessageKind::kClusterAssignment;
      message.bytes = 32;  // 4 region edges
      message.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          region.min_x());
      message.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          region.min_y());
      message.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          region.max_x());
      message.payload.Add(net::FieldTag::kCloakedRegion, net::kPublicSubject,
                          region.max_y());
      if (network_->Send(message, &ctx.scope())) ++notified;
    }
    record.detail += " notified=" + std::to_string(notified);
  }
  return util::Status::Ok();
}

}  // namespace nela::core
