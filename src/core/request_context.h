// Request-scoped execution context, threaded explicitly through every layer
// of the cloaking pipeline.
//
// One RequestContext exists per cloaking request and carries everything
// whose previous home was engine- or process-global mutable state:
//
//  * a seeded RNG sub-stream derived from (master_seed, request_ordinal),
//    so a batch of requests draws bit-identical randomness regardless of
//    how its requests are scheduled across worker threads;
//  * a simulated-time deadline budget;
//  * a structured trace sink recording one event per pipeline stage (the
//    per-request observability the DegradationReport is assembled from);
//  * a net::RequestScope -- per-request traffic/retry accounting that rolls
//    up into the Network's global counters instead of being diffed out of
//    them (which is only correct with one request in flight).
//
// A context is owned by one request and touched by one thread at a time.

#ifndef NELA_CORE_REQUEST_CONTEXT_H_
#define NELA_CORE_REQUEST_CONTEXT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "net/accounting.h"
#include "util/rng.h"
#include "util/status.h"

namespace nela::core {

// One structured event per pipeline stage. `detail` carries deterministic
// facts only (ids, counts, coordinates of the public region) -- never wall
// time and never a private member coordinate -- so concatenated traces are
// bit-identical across runs and thread counts.
struct TraceEvent {
  std::string stage;
  util::StatusCode code = util::StatusCode::kOk;
  std::string detail;
};

class TraceSink {
 public:
  void Record(std::string stage, util::StatusCode code, std::string detail) {
    events_.push_back(
        TraceEvent{std::move(stage), code, std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }

  // One "stage code detail" line per event; the canonical per-request trace
  // output compared byte-for-byte by the determinism tests.
  std::string ToString() const;

 private:
  std::vector<TraceEvent> events_;
};

// Structured account of one pipeline stage's execution, the unit the
// DegradationReport is assembled from. `detail` mirrors the trace event's
// deterministic facts; the counters attribute fault-tolerance work to the
// stage that performed it.
struct StageRecord {
  std::string stage;
  util::StatusCode code = util::StatusCode::kOk;
  // False when the stage was skipped (an earlier stage finished or
  // degraded the request).
  bool ran = false;
  std::string detail;
  // Members that churned out during this stage.
  uint32_t members_lost = 0;
  // Times this stage re-ran itself over survivors.
  uint32_t phases_retried = 0;
};

class RequestContext {
 public:
  // Derives the request's private RNG stream from the batch master seed and
  // the request ordinal. Mixing (SplitMix64-style) keeps the streams
  // statistically independent; deriving from the *ordinal* (not the worker
  // or the arrival order) makes a batch bit-identical under any scheduling.
  RequestContext(uint64_t master_seed, uint64_t ordinal, data::UserId host);

  static uint64_t DeriveStreamSeed(uint64_t master_seed, uint64_t ordinal);

  uint64_t master_seed() const { return master_seed_; }
  uint64_t ordinal() const { return ordinal_; }
  data::UserId host() const { return host_; }

  util::Rng& rng() { return rng_; }
  net::RequestScope& scope() { return scope_; }
  const net::RequestScope& scope() const { return scope_; }
  TraceSink& trace() { return trace_; }
  const TraceSink& trace() const { return trace_; }

  // Simulated-time budget for the whole request (latency + backoff consumed
  // by its traffic). Infinite by default.
  void set_deadline_ms(double deadline_ms) { deadline_ms_ = deadline_ms; }
  double deadline_ms() const { return deadline_ms_; }
  bool DeadlineExpired() const {
    return scope_.simulated_ms() > deadline_ms_;
  }

 private:
  uint64_t master_seed_;
  uint64_t ordinal_;
  data::UserId host_;
  util::Rng rng_;
  net::RequestScope scope_;
  TraceSink trace_;
  double deadline_ms_ = std::numeric_limits<double>::infinity();
};

}  // namespace nela::core

#endif  // NELA_CORE_REQUEST_CONTEXT_H_
