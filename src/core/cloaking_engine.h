// The non-exposure cloaking engine: the complete host-user workflow of
// Fig. 3.
//
//   (1) If the host already has a cloaked region (it participated in an
//       earlier cloaking), skip everything and reuse it.
//   (2) Phase 1 -- proximity k-clustering via the configured Clusterer
//       (distributed t-Conn, centralized t-Conn at an anonymizer, or the
//       kNN baseline).
//   (3) Phase 2 -- secure bounding over the cluster members' coordinates
//       via the configured increment policy; the resulting box becomes the
//       shared cloaked region of every member.
//
// The engine never reads a member coordinate directly during phase 2: the
// points are wrapped into bounding::PrivateScalar per axis run (OPT mode is
// explicit and exists for benchmarking only).
//
// Degradation semantics under churn and loss (see DESIGN.md "Fault model &
// degradation semantics"): members that crash between phase 1 and phase 2
// -- or mid-bounding -- are dropped and bounding re-runs over the
// survivors as long as at least k of them remain; below k, or once the
// bounding retry budget is exhausted, the outcome reports
// anonymity_satisfied = false with a structured DegradationReport and an
// empty region. No failure path ever exposes a member coordinate.

#ifndef NELA_CORE_CLOAKING_ENGINE_H_
#define NELA_CORE_CLOAKING_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/clusterer.h"
#include "cluster/registry.h"
#include "core/policy_factory.h"
#include "core/request_context.h"
#include "data/dataset.h"
#include "geo/rect.h"
#include "net/network.h"
#include "net/retry.h"
#include "util/rng.h"
#include "util/status.h"

namespace nela::core {

// Structured account of everything fault tolerance had to do (or failed to
// do) for one request. failure_reason never contains a coordinate or a
// bound value -- only counters, node ids, and status text.
//
// Assembled by core::FinalizeDegradation from the per-stage records and
// the request's scoped traffic accounting: the aggregate fields below are
// sums/projections of `stages`, kept for ergonomic access.
struct DegradationReport {
  // One record per pipeline stage, in execution order (including skipped
  // stages, with ran = false). The authoritative per-stage account.
  std::vector<StageRecord> stages;
  // Message retransmissions and observed timeouts across both phases
  // (from the request's net::RequestScope).
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t retransmitted_bytes = 0;
  // Members that churned out of the cluster (phase 1 exclusions plus
  // crashes between/within phases). Summed over stage records.
  uint32_t members_lost = 0;
  // Times phase 2 was re-run over the surviving members.
  uint32_t phases_retried = 0;
  // kOk on the happy path; kFailedPrecondition (survivors < k),
  // kDeadlineExceeded (retry budget / iteration cap / request deadline /
  // queue-wait shed), or kUnavailable (irrecoverable churn, admission-queue
  // overflow, crash abort) otherwise. The code of the first stage record
  // that did not finish kOk.
  util::StatusCode failure_code = util::StatusCode::kOk;
  std::string failure_reason;
  // Times core::FinalizeDegradation sealed this report. Every delivered
  // outcome -- degraded or not, shed or admitted -- must show exactly 1:
  // 0 means an unfinalized report escaped a driver, 2+ means a request was
  // double-finalized (e.g. processed again after a watchdog requeue without
  // a fresh outcome).
  uint32_t finalize_count = 0;

  bool degraded() const {
    return failure_code != util::StatusCode::kOk || members_lost > 0 ||
           phases_retried > 0 || retries > 0;
  }
};

struct CloakingOutcome {
  cluster::ClusterId cluster_id = cluster::kNoCluster;
  geo::Rect region;
  // Probe mechanisms (geo-indistinguishability, dummy-location sets) query
  // the LBS with points instead of a region; empty for the native scheme.
  std::vector<geo::Point> probes;
  // Step (1): both phases skipped, region served from the registry.
  bool region_reused = false;
  // Phase 1 answered from the registry (cluster formed earlier, but its
  // region had not been computed yet).
  bool cluster_reused = false;
  // k-anonymity satisfied (false when the host's remaining component was
  // smaller than k, or churn/loss degraded the request -- see
  // degradation.failure_code).
  bool anonymity_satisfied = true;
  // Phase-1 communication cost: involved users (adjacency messages).
  uint64_t clustering_messages = 0;
  // Phase-2 cost: verification round trips across the four axis runs.
  uint64_t bounding_verifications = 0;
  uint32_t bounding_iterations = 0;
  double bounding_cpu_seconds = 0.0;
  DegradationReport degradation;
};

// How phase 2 computes the box.
enum class BoundingMode {
  kSecureProtocol,  // progressive bounding with the configured policy
  kOptBaseline,     // exact box; exposes coordinates (benchmark only)
};

class CloakingEngine {
 public:
  // `dataset` is the user population (coordinates are private inputs to
  // phase 2); `clusterer` runs phase 1 against `registry`. All referenced
  // objects must outlive the engine.
  CloakingEngine(const data::Dataset& dataset,
                 std::unique_ptr<cluster::Clusterer> clusterer,
                 cluster::Registry* registry, PolicyFactory policy_factory,
                 BoundingMode mode = BoundingMode::kSecureProtocol,
                 net::Network* network = nullptr);

  // Configures loss recovery for phase 2 and how many times bounding is
  // re-run over survivors after mid-protocol churn. `jitter_rng` (may be
  // null, not owned) makes backoff jitter deterministic per seed.
  void SetRetryPolicy(const net::BackoffPolicy& policy, util::Rng* jitter_rng,
                      uint32_t max_phase_retries = 3);

  // Seed from which every request's private RNG sub-stream is derived (see
  // RequestContext::DeriveStreamSeed). Affects only contexts the engine
  // creates itself via the one-argument RequestCloaking.
  void set_master_seed(uint64_t seed) { master_seed_ = seed; }

  // Executes the workflow for one host request. Fails with kUnavailable
  // when the host itself is offline; cluster- or network-level degradation
  // is reported inside the outcome instead (see DegradationReport). Creates
  // a fresh RequestContext (ordinal = number of prior requests on this
  // engine) and runs the staged pipeline.
  [[nodiscard]] util::Result<CloakingOutcome> RequestCloaking(data::UserId host);

  // Same workflow against a caller-owned context: the caller picks the
  // RNG sub-stream, deadline, and trace sink, and reads the per-request
  // accounting back from ctx.scope() afterwards.
  [[nodiscard]] util::Result<CloakingOutcome> RequestCloaking(data::UserId host,
                                                RequestContext& ctx);

  const cluster::Registry& registry() const { return *registry_; }
  cluster::Clusterer& clusterer() { return *clusterer_; }

 private:
  const data::Dataset& dataset_;
  std::unique_ptr<cluster::Clusterer> clusterer_;
  cluster::Registry* registry_;
  PolicyFactory policy_factory_;
  BoundingMode mode_;
  net::Network* network_;
  net::BackoffPolicy retry_policy_;
  util::Rng* retry_rng_ = nullptr;
  uint32_t max_phase_retries_ = 3;
  uint64_t master_seed_ = 0;
  uint64_t next_ordinal_ = 0;
};

}  // namespace nela::core

#endif  // NELA_CORE_CLOAKING_ENGINE_H_
