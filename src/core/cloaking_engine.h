// The non-exposure cloaking engine: the complete host-user workflow of
// Fig. 3.
//
//   (1) If the host already has a cloaked region (it participated in an
//       earlier cloaking), skip everything and reuse it.
//   (2) Phase 1 -- proximity k-clustering via the configured Clusterer
//       (distributed t-Conn, centralized t-Conn at an anonymizer, or the
//       kNN baseline).
//   (3) Phase 2 -- secure bounding over the cluster members' coordinates
//       via the configured increment policy; the resulting box becomes the
//       shared cloaked region of every member.
//
// The engine never reads a member coordinate directly during phase 2: the
// points are wrapped into bounding::PrivateScalar per axis run (OPT mode is
// explicit and exists for benchmarking only).

#ifndef NELA_CORE_CLOAKING_ENGINE_H_
#define NELA_CORE_CLOAKING_ENGINE_H_

#include <memory>
#include <vector>

#include "cluster/clusterer.h"
#include "cluster/registry.h"
#include "core/policy_factory.h"
#include "data/dataset.h"
#include "geo/rect.h"
#include "net/network.h"
#include "util/status.h"

namespace nela::core {

struct CloakingOutcome {
  cluster::ClusterId cluster_id = cluster::kNoCluster;
  geo::Rect region;
  // Step (1): both phases skipped, region served from the registry.
  bool region_reused = false;
  // Phase 1 answered from the registry (cluster formed earlier, but its
  // region had not been computed yet).
  bool cluster_reused = false;
  // k-anonymity satisfied (false when the host's remaining component was
  // smaller than k).
  bool anonymity_satisfied = true;
  // Phase-1 communication cost: involved users (adjacency messages).
  uint64_t clustering_messages = 0;
  // Phase-2 cost: verification round trips across the four axis runs.
  uint64_t bounding_verifications = 0;
  uint32_t bounding_iterations = 0;
  double bounding_cpu_seconds = 0.0;
};

// How phase 2 computes the box.
enum class BoundingMode {
  kSecureProtocol,  // progressive bounding with the configured policy
  kOptBaseline,     // exact box; exposes coordinates (benchmark only)
};

class CloakingEngine {
 public:
  // `dataset` is the user population (coordinates are private inputs to
  // phase 2); `clusterer` runs phase 1 against `registry`. All referenced
  // objects must outlive the engine.
  CloakingEngine(const data::Dataset& dataset,
                 std::unique_ptr<cluster::Clusterer> clusterer,
                 cluster::Registry* registry, PolicyFactory policy_factory,
                 BoundingMode mode = BoundingMode::kSecureProtocol,
                 net::Network* network = nullptr);

  // Executes the workflow for one host request.
  util::Result<CloakingOutcome> RequestCloaking(data::UserId host);

  const cluster::Registry& registry() const { return *registry_; }
  cluster::Clusterer& clusterer() { return *clusterer_; }

 private:
  const data::Dataset& dataset_;
  std::unique_ptr<cluster::Clusterer> clusterer_;
  cluster::Registry* registry_;
  PolicyFactory policy_factory_;
  BoundingMode mode_;
  net::Network* network_;
};

}  // namespace nela::core

#endif  // NELA_CORE_CLOAKING_ENGINE_H_
