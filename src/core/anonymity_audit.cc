#include "core/anonymity_audit.h"

#include <vector>

#include "util/check.h"

namespace nela::core {

AuditReport AuditAnonymity(const cluster::Registry& registry,
                           const data::Dataset& dataset, uint32_t k,
                           const std::vector<bool>* alive) {
  NELA_CHECK_EQ(registry.user_count(), dataset.size());
  if (alive != nullptr) NELA_CHECK_EQ(alive->size(), dataset.size());
  AuditReport report;
  std::vector<uint8_t> member_seen(dataset.size(), 0);
  for (cluster::ClusterId id = 0; id < registry.cluster_count(); ++id) {
    const cluster::ClusterInfo& info = registry.info(id);
    ++report.clusters_checked;

    // (c) reciprocity: one cluster per user. (The strict registry enforces
    // this; the overlap-tolerant baseline mode can violate it, and the
    // audit is how those violations become visible.)
    for (graph::VertexId member : info.members) {
      if (member_seen[member]) {
        report.violations.push_back(AuditViolation{
            id, "user " + std::to_string(member) +
                    " appears in more than one cluster"});
      }
      member_seen[member] = 1;
    }

    // (b) k-anonymity cardinality for clusters that claim validity.
    if (info.valid && info.members.size() < k) {
      ++report.undersized_clusters;
      report.violations.push_back(AuditViolation{
          id, "valid cluster has only " +
                  std::to_string(info.members.size()) + " members (k=" +
                  std::to_string(k) + ")"});
    }

    // (a) geometric containment of every member in the shared region.
    if (info.region.has_value()) {
      ++report.regions_checked;
      for (graph::VertexId member : info.members) {
        if (alive != nullptr && !(*alive)[member]) continue;
        if (!info.region->Contains(dataset.point(member))) {
          ++report.exposed_members;
          report.violations.push_back(AuditViolation{
              id, "member " + std::to_string(member) +
                      " lies outside the cluster's cloaked region"});
        }
      }
    }
  }
  return report;
}

}  // namespace nela::core
