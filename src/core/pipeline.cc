#include "core/pipeline.h"

namespace nela::core {

util::Status RunPipeline(const std::vector<Stage*>& stages,
                         RequestContext& ctx, PipelineState& state) {
  util::Status status = util::Status::Ok();
  for (Stage* stage : stages) {
    StageRecord record;
    record.stage = stage->name();
    if (state.done || !status.ok()) {
      record.detail = "skipped";
    } else {
      record.ran = true;
      const util::Status stage_status = stage->Run(ctx, state, record);
      if (!stage_status.ok()) {
        record.code = stage_status.code();
        if (record.detail.empty()) record.detail = stage_status.message();
        status = stage_status;
      }
    }
    ctx.trace().Record(record.stage, record.code, record.detail);
    state.outcome.degradation.stages.push_back(std::move(record));
  }
  if (state.ticket != cluster::kNoTicket && state.coordinator != nullptr) {
    state.coordinator->Release(state.ticket);
    state.ticket = cluster::kNoTicket;
  }
  return status;
}

void FinalizeDegradation(const RequestContext& ctx, CloakingOutcome* outcome) {
  DegradationReport& report = outcome->degradation;
  ++report.finalize_count;  // exactly-once per delivered outcome (tested)
  const net::ScopeStats& stats = ctx.scope().stats();
  report.retries = stats.retries;
  report.timeouts = stats.timeouts_observed;
  report.retransmitted_bytes = stats.retransmitted_bytes;
  report.members_lost = 0;
  report.phases_retried = 0;
  report.failure_code = util::StatusCode::kOk;
  report.failure_reason.clear();
  for (const StageRecord& record : report.stages) {
    report.members_lost += record.members_lost;
    report.phases_retried += record.phases_retried;
    if (report.failure_code == util::StatusCode::kOk &&
        record.code != util::StatusCode::kOk) {
      report.failure_code = record.code;
      report.failure_reason = record.detail;
    }
  }
}

}  // namespace nela::core
