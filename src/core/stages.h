// The five concrete stages of the cloaking pipeline (see pipeline.h).
//
// Stages are thin, stateless adapters over the subsystems they drive; they
// are cheap to construct per request, and both CloakingEngine and
// sim::BatchDriver assemble their pipelines from these same classes so a
// request is invoked, traced, and degraded identically in either driver.

#ifndef NELA_CORE_STAGES_H_
#define NELA_CORE_STAGES_H_

#include <cstdint>

#include "cluster/clusterer.h"
#include "cluster/registry.h"
#include "core/pipeline.h"
#include "core/policy_factory.h"
#include "data/dataset.h"
#include "net/network.h"
#include "net/retry.h"
#include "util/rng.h"

namespace nela::core {

// Step (1) of Fig. 3: a reciprocity-preserving clusterer answers a
// previously clustered host straight from the registry -- with its shared
// region if phase 2 already ran (request done), or cluster-only if not.
// Deliberately inert for non-reciprocal clusterers (the kNN baseline must
// keep forming fresh clusters; masking that would hide exactly the
// reciprocity violation the paper criticizes).
class ResolveReuseStage : public Stage {
 public:
  ResolveReuseStage(cluster::Clusterer* clusterer,
                    cluster::Registry* registry)
      : clusterer_(clusterer), registry_(registry) {}

  const char* name() const override { return "resolve_reuse"; }
  [[nodiscard]] util::Status Run(RequestContext& ctx, PipelineState& state,
                   StageRecord& record) override;

 private:
  cluster::Clusterer* clusterer_;
  cluster::Registry* registry_;
};

// Phase 1: runs the configured clusterer for the host (no-op when
// ResolveReuse already located the cluster) and re-serves an existing
// shared region should the cluster already have one.
class ClusterStage : public Stage {
 public:
  ClusterStage(cluster::Clusterer* clusterer, cluster::Registry* registry)
      : clusterer_(clusterer), registry_(registry) {}

  const char* name() const override { return "cluster"; }
  [[nodiscard]] util::Status Run(RequestContext& ctx, PipelineState& state,
                   StageRecord& record) override;

 private:
  cluster::Clusterer* clusterer_;
  cluster::Registry* registry_;
};

// §VII concurrency control: claims the cluster's members through the
// wound-wait coordinator in state.coordinator (opened ticket required).
// With no coordinator configured -- the single-request engine -- the stage
// records itself as a no-op. The claim is released by RunPipeline when the
// walk ends.
class ClaimCommitStage : public Stage {
 public:
  const char* name() const override { return "claim_commit"; }
  [[nodiscard]] util::Status Run(RequestContext& ctx, PipelineState& state,
                   StageRecord& record) override;
};

// Phase 2: secure progressive bounding over the members' private
// coordinates, with the engine's degradation semantics (liveness filter,
// below-k degrade, phase retries over survivors, deadline budget). Leaves
// the computed box in state.outcome/.bounded without publishing it.
class SecureBoundStage : public Stage {
 public:
  struct Config {
    const data::Dataset* dataset = nullptr;
    const PolicyFactory* policy_factory = nullptr;
    BoundingMode mode = BoundingMode::kSecureProtocol;
    net::Network* network = nullptr;
    net::BackoffPolicy retry;
    // Backoff jitter source; null disables jitter.
    util::Rng* jitter_rng = nullptr;
    // When set, jitter draws from ctx.rng() (the request's private
    // sub-stream) instead of jitter_rng -- the deterministic-batch mode.
    bool jitter_from_context = false;
    uint32_t max_phase_retries = 3;
  };

  explicit SecureBoundStage(const Config& config) : config_(config) {}

  const char* name() const override { return "secure_bound"; }
  [[nodiscard]] util::Status Run(RequestContext& ctx, PipelineState& state,
                   StageRecord& record) override;

  // The bounded region of the last successful run (consumed by Publish).
  const bounding::RegionBoundingResult& bounded() const { return bounded_; }

 private:
  Config config_;
  bounding::RegionBoundingResult bounded_;
};

// Route for the region write performed by PublishStage. The engine and the
// batch driver write straight into the registry; the service driver
// interposes its write-ahead log here (durability must not leak into core,
// so the indirection lives on this side of the boundary).
class RegionWriter {
 public:
  virtual ~RegionWriter() = default;
  [[nodiscard]] virtual util::Status WriteRegion(cluster::ClusterId id,
                                                 const geo::Rect& region) = 0;
};

// Publishes the bounded region as the cluster's shared region in the
// registry -- the only stage that writes a region anywhere. With a network
// configured, the host additionally notifies every other member of the
// published region (kClusterAssignment, region edges tagged public):
// fire-and-forget, since a member that misses the notification re-reads the
// registry on its own request and the region itself is public knowledge.
class PublishStage : public Stage {
 public:
  PublishStage(cluster::Registry* registry, const SecureBoundStage* bound,
               net::Network* network = nullptr,
               RegionWriter* region_writer = nullptr)
      : registry_(registry), bound_(bound), network_(network),
        region_writer_(region_writer) {}

  const char* name() const override { return "publish"; }
  [[nodiscard]] util::Status Run(RequestContext& ctx, PipelineState& state,
                   StageRecord& record) override;

 private:
  cluster::Registry* registry_;
  const SecureBoundStage* bound_;
  net::Network* network_;
  RegionWriter* region_writer_;
};

}  // namespace nela::core

#endif  // NELA_CORE_STAGES_H_
