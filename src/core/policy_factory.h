// Self-contained increment-policy bundles for the cloaking engine.
//
// SecureIncrementPolicy holds references to a distribution and a cost
// model; when the engine builds a policy per cluster (the model parameters
// depend on the cluster size), something must own those pieces. These
// factories return owning wrappers.

#ifndef NELA_CORE_POLICY_FACTORY_H_
#define NELA_CORE_POLICY_FACTORY_H_

#include <functional>
#include <memory>

#include "bounding/increment_policy.h"

namespace nela::core {

// Builds the increment policy for a cluster of `cluster_size` users.
using PolicyFactory =
    std::function<std::unique_ptr<bounding::IncrementPolicy>(
        uint32_t cluster_size)>;

// Parameters shared by the factories (paper Table I defaults).
struct BoundingParams {
  // Per-user verification cost Cb, in clustering-message units.
  double cb = 1.0;
  // POI payload / clustering message size ratio Cr.
  double cr = 1000.0;
  // User/POI density: points per unit area (|D| on the unit square).
  double density = 104770.0;
};

// Secure policy of §V: offsets of a cluster of n users are modeled as
// Uniform(0, U) with the paper's Table-I value U = n / density, and the
// request cost is quadratic with coefficient cr * density (payload = POIs
// inside the bound * cr). Note U deliberately underestimates the cluster
// extent; the unary optimum then caps at the support (C* - R* = Cb) and
// Equation 5 yields increments N*Cb / (2 c U), the gentle multi-round
// schedule behind Fig. 13 (see EXPERIMENTS.md for the unit discussion).
PolicyFactory MakeSecurePolicyFactory(const BoundingParams& params);

// Linear policy: fixed step of half the initial bound (n / density) per
// iteration -- the most conservative schedule of the three, matching the
// paper's characterization (most iterations, tightest final bound).
PolicyFactory MakeLinearPolicyFactory(const BoundingParams& params);

// Exponential policy: first step n / density, then double the covered
// extent each iteration.
PolicyFactory MakeExponentialPolicyFactory(const BoundingParams& params);

}  // namespace nela::core

#endif  // NELA_CORE_POLICY_FACTORY_H_
