// Pluggable cloaking mechanism: the privacy-mechanism seam behind the
// request pipeline.
//
// The paper's clustering+bounding scheme is one point in a design space of
// location-privacy mechanisms (spatial cloaking grids, geo-
// indistinguishability noise, dummy-location sets, ...). This interface
// lets rival mechanisms answer the same request shape -- "host u wants a
// k-anonymous (or otherwise private) service artifact" -- through the same
// RequestContext plumbing, so every mechanism draws randomness from the
// request's seeded sub-stream, is traced per stage, and sends only tagged
// net::Messages the audit layer can scan. The comparative driver
// (mechanisms/comparative_driver.h) and the service drivers run any
// Mechanism through MechanismStage + RunPipeline, which keeps degradation
// and tracing semantics identical to the native pipeline's.
//
// Implementations live in src/mechanisms (core must not depend on them);
// the native clustering+bounding scheme is adapted via
// mechanisms::ClusterBoundMechanism.

#ifndef NELA_CORE_MECHANISM_H_
#define NELA_CORE_MECHANISM_H_

#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/request_context.h"
#include "data/dataset.h"
#include "geo/point.h"
#include "geo/rect.h"
#include "util/status.h"

namespace nela::core {

// What one mechanism invocation produced. Region mechanisms (grid cloak,
// cluster bound) fill `region`; probe mechanisms (geo-ind, dummy sets)
// fill `probes` -- the query points that go to the LBS instead of a
// region. Either way `satisfied` reports whether the mechanism met its own
// privacy target (k occupants, noise drawn, k candidates, ...).
struct MechanismOutcome {
  geo::Rect region;
  std::vector<geo::Point> probes;
  bool satisfied = false;
  // Wire messages this invocation sent (all tagged; audited by any tap).
  uint64_t messages_sent = 0;
  // Deterministic facts for the stage trace: counts and public values
  // only, never a private coordinate.
  std::string detail;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  // Stable mechanism identifier ("grid_cloak", "geo_ind", ...): names the
  // pipeline stage, trace lines, and bench rows.
  virtual const char* name() const = 0;

  // Serves one request for `host`. All randomness comes from ctx.rng()
  // (the request's private sub-stream), so a batch is bit-identical under
  // any scheduling. Must be safe to call concurrently from multiple
  // threads on distinct contexts. Returns non-ok only for hard request
  // errors (unknown host); privacy degradation is reported through
  // outcome->satisfied instead.
  [[nodiscard]] virtual util::Status Cloak(RequestContext& ctx,
                                           data::UserId host,
                                           MechanismOutcome* outcome) = 0;
};

// Adapts a Mechanism to the staged pipeline: one stage that runs the
// mechanism, copies its artifact into the CloakingOutcome, and finishes
// the request (state.done), so RunPipeline + FinalizeDegradation give
// rival mechanisms the same trace/degradation envelope as the native
// five-stage walk.
class MechanismStage : public Stage {
 public:
  explicit MechanismStage(Mechanism* mechanism) : mechanism_(mechanism) {}

  const char* name() const override { return mechanism_->name(); }
  [[nodiscard]] util::Status Run(RequestContext& ctx, PipelineState& state,
                                 StageRecord& record) override;

  const MechanismOutcome& outcome() const { return outcome_; }

 private:
  Mechanism* mechanism_;
  MechanismOutcome outcome_;
};

}  // namespace nela::core

#endif  // NELA_CORE_MECHANISM_H_
