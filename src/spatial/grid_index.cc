#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nela::spatial {

GridIndex::GridIndex(const std::vector<geo::Point>& points, double cell_size)
    : points_(&points), cell_size_(cell_size) {
  NELA_CHECK_GT(cell_size, 0.0);
  // Grid extent from the data's bounding box so out-of-square points work.
  double min_x = 0.0, min_y = 0.0, max_x = 1.0, max_y = 1.0;
  for (const geo::Point& p : points) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  origin_x_ = min_x;
  origin_y_ = min_y;
  cols_ = static_cast<uint32_t>((max_x - min_x) / cell_size_) + 1;
  rows_ = static_cast<uint32_t>((max_y - min_y) / cell_size_) + 1;

  // Counting sort of point ids into cells (CSR).
  const uint32_t cell_count = cols_ * rows_;
  cell_start_.assign(cell_count + 1, 0);
  std::vector<uint32_t> cell_of(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    const uint32_t c = CellOf(CellCoord(points[i].x - origin_x_),
                              CellCoord(points[i].y - origin_y_));
    cell_of[i] = c;
    ++cell_start_[c + 1];
  }
  for (uint32_t c = 0; c < cell_count; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  cell_ids_.resize(points.size());
  std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (uint32_t i = 0; i < points.size(); ++i) {
    cell_ids_[cursor[cell_of[i]]++] = i;
  }
}

int32_t GridIndex::CellCoord(double v) const {
  int32_t c = static_cast<int32_t>(std::floor(v / cell_size_));
  return std::max(c, 0);
}

std::vector<Neighbor> GridIndex::RadiusQuery(const geo::Point& query,
                                             double radius,
                                             uint32_t self) const {
  NELA_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> out;
  const double r2 = radius * radius;
  const int32_t span = static_cast<int32_t>(radius / cell_size_) + 1;
  const int32_t qx = CellCoord(query.x - origin_x_);
  const int32_t qy = CellCoord(query.y - origin_y_);
  const int32_t x_lo = std::max(qx - span, 0);
  const int32_t x_hi = std::min<int32_t>(qx + span, cols_ - 1);
  const int32_t y_lo = std::max(qy - span, 0);
  const int32_t y_hi = std::min<int32_t>(qy + span, rows_ - 1);
  for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      const uint32_t c = CellOf(cx, cy);
      for (uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const uint32_t id = cell_ids_[k];
        if (id == self) continue;
        const double d2 = geo::SquaredDistance(query, (*points_)[id]);
        if (d2 <= r2) out.push_back(Neighbor{id, d2});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Neighbor& a, const Neighbor& b) {
    return a.squared_distance < b.squared_distance ||
           (a.squared_distance == b.squared_distance && a.id < b.id);
  });
  return out;
}

std::vector<Neighbor> GridIndex::NearestNeighbors(const geo::Point& query,
                                                  uint32_t count,
                                                  uint32_t self) const {
  std::vector<Neighbor> result;
  if (count == 0 || points_->empty()) return result;
  // Expanding ring search: double the radius until enough candidates whose
  // distance is certified (<= current radius) are found.
  double radius = cell_size_;
  const double max_radius = 2.0 * (cell_size_ * std::max(cols_, rows_) + 1.0);
  for (;;) {
    result = RadiusQuery(query, radius, self);
    // Neighbors within `radius` are exact; check we have enough.
    if (result.size() >= count || radius > max_radius) break;
    radius *= 2.0;
  }
  if (result.size() > count) result.resize(count);
  return result;
}

std::vector<uint32_t> GridIndex::RangeQuery(const geo::Rect& box) const {
  std::vector<uint32_t> out;
  if (box.empty()) return out;
  const int32_t x_lo =
      std::max(CellCoord(box.min_x() - origin_x_), 0);
  const int32_t x_hi = std::min<int32_t>(
      CellCoord(box.max_x() - origin_x_), cols_ - 1);
  const int32_t y_lo =
      std::max(CellCoord(box.min_y() - origin_y_), 0);
  const int32_t y_hi = std::min<int32_t>(
      CellCoord(box.max_y() - origin_y_), rows_ - 1);
  for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      const uint32_t c = CellOf(cx, cy);
      for (uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const uint32_t id = cell_ids_[k];
        if (box.Contains((*points_)[id])) out.push_back(id);
      }
    }
  }
  return out;
}

}  // namespace nela::spatial
