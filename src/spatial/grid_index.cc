#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace nela::spatial {

namespace {

// (distance, id) ascending — the canonical neighbor order everywhere.
bool NeighborLess(const Neighbor& a, const Neighbor& b) {
  return a.squared_distance < b.squared_distance ||
         (a.squared_distance == b.squared_distance && a.id < b.id);
}

}  // namespace

GridIndex::GridIndex(const std::vector<geo::Point>& points, double cell_size)
    : points_(&points), cell_size_(cell_size) {
  NELA_CHECK_GT(cell_size, 0.0);
  // Grid extent from the data's bounding box so out-of-square points work.
  double min_x = 0.0, min_y = 0.0, max_x = 1.0, max_y = 1.0;
  for (const geo::Point& p : points) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  origin_x_ = min_x;
  origin_y_ = min_y;
  cols_ = static_cast<uint32_t>((max_x - min_x) / cell_size_) + 1;
  rows_ = static_cast<uint32_t>((max_y - min_y) / cell_size_) + 1;

  // Counting sort of point ids into cells (CSR).
  const uint32_t cell_count = cols_ * rows_;
  cell_start_.assign(cell_count + 1, 0);
  std::vector<uint32_t> cell_of(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    const uint32_t c = CellOf(CellCoord(points[i].x - origin_x_),
                              CellCoord(points[i].y - origin_y_));
    cell_of[i] = c;
    ++cell_start_[c + 1];
  }
  for (uint32_t c = 0; c < cell_count; ++c) {
    cell_start_[c + 1] += cell_start_[c];
  }
  cell_ids_.resize(points.size());
  std::vector<uint32_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (uint32_t i = 0; i < points.size(); ++i) {
    cell_ids_[cursor[cell_of[i]]++] = i;
  }
}

int32_t GridIndex::CellCoord(double v) const {
  int32_t c = static_cast<int32_t>(std::floor(v / cell_size_));
  return std::max(c, 0);
}

void GridIndex::GatherCell(int32_t cx, int32_t cy, const geo::Point& query,
                           uint32_t self, std::vector<Neighbor>* out) const {
  const uint32_t c = CellOf(cx, cy);
  for (uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
    const uint32_t id = cell_ids_[k];
    if (id == self) continue;
    out->push_back(Neighbor{id, geo::SquaredDistance(query, (*points_)[id])});
  }
}

void GridIndex::GatherRing(int32_t qx, int32_t qy, int32_t span,
                           const geo::Point& query, uint32_t self,
                           std::vector<Neighbor>* out) const {
  const int32_t max_x = static_cast<int32_t>(cols_) - 1;
  const int32_t max_y = static_cast<int32_t>(rows_) - 1;
  if (span == 0) {
    if (qx >= 0 && qx <= max_x && qy >= 0 && qy <= max_y) {
      GatherCell(qx, qy, query, self, out);
    }
    return;
  }
  const int32_t x_lo = std::max(qx - span, 0);
  const int32_t x_hi = std::min(qx + span, max_x);
  // Top and bottom rows of the ring span its full width; the side columns
  // cover only the interior rows so no cell is visited twice.
  for (const int32_t cy : {qy - span, qy + span}) {
    if (cy < 0 || cy > max_y) continue;
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      GatherCell(cx, cy, query, self, out);
    }
  }
  const int32_t y_lo = std::max(qy - span + 1, 0);
  const int32_t y_hi = std::min(qy + span - 1, max_y);
  for (const int32_t cx : {qx - span, qx + span}) {
    if (cx < 0 || cx > max_x) continue;
    for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
      GatherCell(cx, cy, query, self, out);
    }
  }
}

bool GridIndex::SpanCoversGrid(int32_t qx, int32_t qy, int32_t span) const {
  return qx - span <= 0 && qy - span <= 0 &&
         qx + span >= static_cast<int32_t>(cols_) - 1 &&
         qy + span >= static_cast<int32_t>(rows_) - 1;
}

std::vector<Neighbor> GridIndex::RadiusQuery(const geo::Point& query,
                                             double radius,
                                             uint32_t self) const {
  NELA_CHECK_GE(radius, 0.0);
  std::vector<Neighbor> out;
  const double r2 = radius * radius;
  const int32_t span = static_cast<int32_t>(radius / cell_size_) + 1;
  const int32_t qx = CellCoord(query.x - origin_x_);
  const int32_t qy = CellCoord(query.y - origin_y_);
  const int32_t x_lo = std::max(qx - span, 0);
  const int32_t x_hi = std::min<int32_t>(qx + span, cols_ - 1);
  const int32_t y_lo = std::max(qy - span, 0);
  const int32_t y_hi = std::min<int32_t>(qy + span, rows_ - 1);
  for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      const uint32_t c = CellOf(cx, cy);
      for (uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const uint32_t id = cell_ids_[k];
        if (id == self) continue;
        const double d2 = geo::SquaredDistance(query, (*points_)[id]);
        if (d2 <= r2) out.push_back(Neighbor{id, d2});
      }
    }
  }
  std::sort(out.begin(), out.end(), NeighborLess);
  return out;
}

uint32_t GridIndex::RadiusQueryInto(const geo::Point& query, double radius,
                                    uint32_t self, QueryScratch* scratch,
                                    std::vector<uint32_t>* out) const {
  NELA_CHECK_GE(radius, 0.0);
  std::vector<Neighbor>& gathered = scratch->neighbors;
  gathered.clear();
  const double r2 = radius * radius;
  const int32_t span = static_cast<int32_t>(radius / cell_size_) + 1;
  const int32_t qx = CellCoord(query.x - origin_x_);
  const int32_t qy = CellCoord(query.y - origin_y_);
  const int32_t x_lo = std::max(qx - span, 0);
  const int32_t x_hi = std::min<int32_t>(qx + span, cols_ - 1);
  const int32_t y_lo = std::max(qy - span, 0);
  const int32_t y_hi = std::min<int32_t>(qy + span, rows_ - 1);
  for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      const uint32_t c = CellOf(cx, cy);
      for (uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const uint32_t id = cell_ids_[k];
        if (id == self) continue;
        const double d2 = geo::SquaredDistance(query, (*points_)[id]);
        if (d2 <= r2) gathered.push_back(Neighbor{id, d2});
      }
    }
  }
  std::sort(gathered.begin(), gathered.end(), NeighborLess);
  for (const Neighbor& nb : gathered) out->push_back(nb.id);
  return static_cast<uint32_t>(gathered.size());
}

std::vector<Neighbor> GridIndex::NearestNeighbors(const geo::Point& query,
                                                  uint32_t count,
                                                  uint32_t self) const {
  std::vector<Neighbor> result;
  if (count == 0 || points_->empty()) return result;
  const int32_t qx = CellCoord(query.x - origin_x_);
  const int32_t qy = CellCoord(query.y - origin_y_);

  // A box of half-width s certifies every neighbor within (s - 1) cells:
  // anything closer than (s - 1) * cell_size_ must live inside the box. Seed
  // s from the query cell's occupancy — with ~occ points per cell the
  // certified sub-box holds about occ * (2s - 1)^2 points — so that the
  // common case gathers once, checks once, and is done.
  uint32_t occ = 0;
  if (qx < static_cast<int32_t>(cols_) && qy < static_cast<int32_t>(rows_)) {
    const uint32_t home = CellOf(qx, qy);
    occ = cell_start_[home + 1] - cell_start_[home];
  }
  int32_t span = 2;  // certifies cell_size_, the legacy starting radius
  if (occ > 0) {
    while (static_cast<uint64_t>(occ) * (2 * span - 1) * (2 * span - 1) <
               static_cast<uint64_t>(count) + 1 &&
           !SpanCoversGrid(qx, qy, span)) {
      ++span;
    }
  }

  // Ring-incremental expansion: each round scans only the cells the
  // previous rounds have not seen, appending into the same buffer; the
  // sort happens once, at the end.
  for (int32_t ring = 0; ring <= span; ++ring) {
    GatherRing(qx, qy, ring, query, self, &result);
  }
  for (;;) {
    const double certified = (span - 1) * cell_size_;
    const double certified2 = certified * certified;
    const size_t within = static_cast<size_t>(
        std::count_if(result.begin(), result.end(), [&](const Neighbor& nb) {
          return nb.squared_distance <= certified2;
        }));
    if (within >= count || SpanCoversGrid(qx, qy, span)) break;
    const int32_t next = span * 2;
    for (int32_t ring = span + 1; ring <= next; ++ring) {
      GatherRing(qx, qy, ring, query, self, &result);
    }
    span = next;
  }
  std::sort(result.begin(), result.end(), NeighborLess);
  if (result.size() > count) result.resize(count);
  return result;
}

std::vector<uint32_t> GridIndex::RangeQuery(const geo::Rect& box) const {
  std::vector<uint32_t> out;
  if (box.empty()) return out;
  const int32_t x_lo =
      std::max(CellCoord(box.min_x() - origin_x_), 0);
  const int32_t x_hi = std::min<int32_t>(
      CellCoord(box.max_x() - origin_x_), cols_ - 1);
  const int32_t y_lo =
      std::max(CellCoord(box.min_y() - origin_y_), 0);
  const int32_t y_hi = std::min<int32_t>(
      CellCoord(box.max_y() - origin_y_), rows_ - 1);
  for (int32_t cy = y_lo; cy <= y_hi; ++cy) {
    for (int32_t cx = x_lo; cx <= x_hi; ++cx) {
      const uint32_t c = CellOf(cx, cy);
      for (uint32_t k = cell_start_[c]; k < cell_start_[c + 1]; ++k) {
        const uint32_t id = cell_ids_[k];
        if (box.Contains((*points_)[id])) out.push_back(id);
      }
    }
  }
  return out;
}

}  // namespace nela::spatial
