// Uniform grid index over points in the unit square.
//
// The WPG builder needs, for each of ~10^5 users, the peers within the
// distance threshold delta and the M nearest among them; a uniform grid with
// cell size on the order of delta answers both in near-constant time for the
// paper's parameter regime.

#ifndef NELA_SPATIAL_GRID_INDEX_H_
#define NELA_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geo/point.h"
#include "geo/rect.h"

namespace nela::spatial {

// A point id paired with its (squared) distance from a query point.
struct Neighbor {
  uint32_t id = 0;
  double squared_distance = 0.0;
};

class GridIndex {
 public:
  // Reusable per-caller query state. One instance per worker thread; the
  // buffers only grow, so steady-state queries allocate nothing.
  struct QueryScratch {
    std::vector<Neighbor> neighbors;
  };

  // Indexes `points` (ids are indices into the vector). `cell_size` > 0 is
  // the grid pitch; pick it near the typical query radius. Points may lie
  // outside the unit square; cells are clamped at the boundary.
  GridIndex(const std::vector<geo::Point>& points, double cell_size);

  GridIndex(const GridIndex&) = delete;
  GridIndex& operator=(const GridIndex&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(points_->size()); }

  // All ids (excluding `self`, pass size() to keep all) within `radius` of
  // `query`, sorted by ascending distance.
  std::vector<Neighbor> RadiusQuery(const geo::Point& query, double radius,
                                    uint32_t self) const;

  // Allocation-free RadiusQuery for hot loops: gathers the matches into
  // scratch->neighbors (cleared first, capacity reused), sorts them by
  // ascending (distance, id), and appends the ids — nearest first — to
  // *out (which is NOT cleared, so callers can pack many queries into one
  // flat arena). Returns the number of ids appended.
  uint32_t RadiusQueryInto(const geo::Point& query, double radius,
                           uint32_t self, QueryScratch* scratch,
                           std::vector<uint32_t>* out) const;

  // The `count` nearest ids to `query` (excluding `self`), sorted by
  // ascending distance; fewer if the dataset is smaller. The search seeds
  // its cell span from the query cell's occupancy and expands ring by
  // ring, re-scanning nothing, so the common case is a single pass.
  std::vector<Neighbor> NearestNeighbors(const geo::Point& query,
                                         uint32_t count, uint32_t self) const;

  // Ids of all points inside `box` (inclusive borders).
  std::vector<uint32_t> RangeQuery(const geo::Rect& box) const;

  // Grid shape and per-cell membership, for callers that traverse the
  // index cell by cell (the fused WPG builder walks cache-blocked tiles of
  // cells so neighboring queries share warm cell lines).
  uint32_t cols() const { return cols_; }
  uint32_t rows() const { return rows_; }
  // Ids stored in cell (cx, cy); (0, 0) is the origin corner. Bounds must
  // be in range. The span stays valid for the life of the index.
  std::span<const uint32_t> CellPointIds(uint32_t cx, uint32_t cy) const {
    const uint32_t cell = CellOf(static_cast<int32_t>(cx),
                                 static_cast<int32_t>(cy));
    return std::span<const uint32_t>(cell_ids_)
        .subspan(cell_start_[cell], cell_start_[cell + 1] -
                                        cell_start_[cell]);
  }

 private:
  int32_t CellCoord(double v) const;
  uint32_t CellOf(int32_t cx, int32_t cy) const {
    return static_cast<uint32_t>(cy) * cols_ + static_cast<uint32_t>(cx);
  }
  // Appends every point of cell (cx, cy) except `self`, with its squared
  // distance from `query`, to *out. Bounds must be pre-clamped.
  void GatherCell(int32_t cx, int32_t cy, const geo::Point& query,
                  uint32_t self, std::vector<Neighbor>* out) const;
  // Appends the cells at Chebyshev cell-distance exactly `span` from
  // (qx, qy), clamped to the grid; span 0 is the center cell itself.
  void GatherRing(int32_t qx, int32_t qy, int32_t span,
                  const geo::Point& query, uint32_t self,
                  std::vector<Neighbor>* out) const;
  // True when the box of half-width `span` around (qx, qy) covers the grid.
  bool SpanCoversGrid(int32_t qx, int32_t qy, int32_t span) const;

  const std::vector<geo::Point>* points_;
  double cell_size_;
  double origin_x_, origin_y_;
  uint32_t cols_ = 0, rows_ = 0;
  // CSR layout: ids of cell c are cell_ids_[cell_start_[c] ..
  // cell_start_[c+1]).
  std::vector<uint32_t> cell_start_;
  std::vector<uint32_t> cell_ids_;
};

}  // namespace nela::spatial

#endif  // NELA_SPATIAL_GRID_INDEX_H_
