// Planar points in the normalized unit square used throughout the library.

#ifndef NELA_GEO_POINT_H_
#define NELA_GEO_POINT_H_

#include <cmath>

namespace nela::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace nela::geo

#endif  // NELA_GEO_POINT_H_
