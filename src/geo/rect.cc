#include "geo/rect.h"

namespace nela::geo {

Rect::Rect() : empty_(true), min_x_(0), min_y_(0), max_x_(0), max_y_(0) {}

Rect::Rect(double min_x, double min_y, double max_x, double max_y)
    : empty_(false), min_x_(min_x), min_y_(min_y), max_x_(max_x),
      max_y_(max_y) {
  NELA_CHECK_LE(min_x, max_x);
  NELA_CHECK_LE(min_y, max_y);
}

Rect Rect::FromPoint(const Point& p) { return Rect(p.x, p.y, p.x, p.y); }

Rect Rect::Union(const Rect& a, const Rect& b) {
  if (a.empty_) return b;
  if (b.empty_) return a;
  return Rect(std::min(a.min_x_, b.min_x_), std::min(a.min_y_, b.min_y_),
              std::max(a.max_x_, b.max_x_), std::max(a.max_y_, b.max_y_));
}

Point Rect::Center() const {
  NELA_CHECK(!empty_);
  return Point{(min_x_ + max_x_) / 2.0, (min_y_ + max_y_) / 2.0};
}

bool Rect::Contains(const Point& p) const {
  if (empty_) return false;
  return p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ && p.y <= max_y_;
}

bool Rect::Contains(const Rect& other) const {
  if (other.empty_) return true;
  if (empty_) return false;
  return other.min_x_ >= min_x_ && other.max_x_ <= max_x_ &&
         other.min_y_ >= min_y_ && other.max_y_ <= max_y_;
}

bool Rect::Intersects(const Rect& other) const {
  if (empty_ || other.empty_) return false;
  return min_x_ <= other.max_x_ && other.min_x_ <= max_x_ &&
         min_y_ <= other.max_y_ && other.min_y_ <= max_y_;
}

void Rect::ExpandToInclude(const Point& p) {
  if (empty_) {
    empty_ = false;
    min_x_ = max_x_ = p.x;
    min_y_ = max_y_ = p.y;
    return;
  }
  min_x_ = std::min(min_x_, p.x);
  max_x_ = std::max(max_x_, p.x);
  min_y_ = std::min(min_y_, p.y);
  max_y_ = std::max(max_y_, p.y);
}

Rect Rect::Inflated(double margin) const {
  NELA_CHECK_GE(margin, 0.0);
  if (empty_) return *this;
  return Rect(min_x_ - margin, min_y_ - margin, max_x_ + margin,
              max_y_ + margin);
}

}  // namespace nela::geo
