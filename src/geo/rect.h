// Axis-aligned rectangles: the shape of a cloaked region and of range
// queries against the POI database.

#ifndef NELA_GEO_RECT_H_
#define NELA_GEO_RECT_H_

#include <algorithm>

#include "geo/point.h"
#include "util/check.h"

namespace nela::geo {

class Rect {
 public:
  // The empty rectangle: contains nothing; Union with it is identity.
  Rect();

  // Requires min_x <= max_x and min_y <= max_y.
  Rect(double min_x, double min_y, double max_x, double max_y);

  // The degenerate rectangle covering exactly `p`.
  static Rect FromPoint(const Point& p);

  // Smallest rectangle covering both operands.
  static Rect Union(const Rect& a, const Rect& b);

  bool empty() const { return empty_; }
  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  double Width() const { return empty_ ? 0.0 : max_x_ - min_x_; }
  double Height() const { return empty_ ? 0.0 : max_y_ - min_y_; }
  double Area() const { return Width() * Height(); }
  // Half of the perimeter; a useful 1-D size proxy.
  double SemiPerimeter() const { return Width() + Height(); }

  Point Center() const;

  bool Contains(const Point& p) const;
  bool Contains(const Rect& other) const;
  bool Intersects(const Rect& other) const;

  // Grows to cover `p` (in place).
  void ExpandToInclude(const Point& p);

  // Rectangle grown by `margin` on every side. Requires margin >= 0.
  Rect Inflated(double margin) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    if (a.empty_ != b.empty_) return false;
    if (a.empty_) return true;
    return a.min_x_ == b.min_x_ && a.min_y_ == b.min_y_ &&
           a.max_x_ == b.max_x_ && a.max_y_ == b.max_y_;
  }

 private:
  bool empty_;
  double min_x_, min_y_, max_x_, max_y_;
};

}  // namespace nela::geo

#endif  // NELA_GEO_RECT_H_
