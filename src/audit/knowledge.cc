#include "audit/knowledge.h"

#include <limits>

namespace nela::audit {

void KnowledgeSet::ObserveHypothesis(net::NodeId subject, double hypothesis) {
  SubjectKnowledge& k = about_[subject];
  if (!k.has_last) {
    k.runs = 1;
  } else if (hypothesis <= k.last_hypothesis) {
    // Hypotheses within a run strictly increase; a non-increase is the
    // start of a new run, whose inferences are independent of the old one.
    ++k.runs;
    k.has_rejected = false;
  }
  k.last_hypothesis = hypothesis;
  k.has_last = true;
  k.pending_hypothesis = hypothesis;
  k.has_pending = true;
}

std::optional<LearnedInterval> KnowledgeSet::ObserveVerdict(
    net::NodeId subject, bool agrees) {
  SubjectKnowledge& k = about_[subject];
  if (!k.has_pending) return std::nullopt;
  const double hypothesis = k.pending_hypothesis;
  k.has_pending = false;
  ++k.verdicts;
  if (!agrees) {
    if (!k.has_rejected || hypothesis > k.last_rejected) {
      k.last_rejected = hypothesis;
    }
    k.has_rejected = true;
    return std::nullopt;
  }
  if (!k.has_rejected) {
    // Accepted the run's first hypothesis: the principal learns only that
    // the value is below it -- no two-sided interval, no new information
    // beyond the proximity rank the cluster already implies.
    return std::nullopt;
  }
  const LearnedInterval interval{k.last_rejected, hypothesis};
  if (!k.has_interval || interval.width() < k.tightest.width()) {
    k.tightest = interval;
    k.has_interval = true;
  }
  return interval;
}

const SubjectKnowledge* KnowledgeSet::about(net::NodeId subject) const {
  const auto it = about_.find(subject);
  if (it == about_.end()) return nullptr;
  return &it->second;
}

double KnowledgeSet::TightestIntervalWidth(net::NodeId subject) const {
  const SubjectKnowledge* k = about(subject);
  if (k == nullptr || !k->has_interval) {
    return std::numeric_limits<double>::infinity();
  }
  return k->tightest.width();
}

double KnowledgeSet::TightestAnyIntervalWidth() const {
  double tightest = std::numeric_limits<double>::infinity();
  for (const auto& [subject, k] : about_) {
    if (k.has_interval && k.tightest.width() < tightest) {
      tightest = k.tightest.width();
    }
  }
  return tightest;
}

}  // namespace nela::audit
