#include "audit/observer.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/check.h"

namespace nela::audit {

namespace {

constexpr const char* kViolationKindNames[] = {
    "raw_coordinate_on_wire",   // kRawCoordinateOnWire
    "knowledge_collapse",       // kKnowledgeCollapse
    "untagged_protocol_traffic",  // kUntaggedProtocolTraffic
};
static_assert(sizeof(kViolationKindNames) / sizeof(kViolationKindNames[0]) ==
                  static_cast<size_t>(kViolationKindCount),
              "ViolationKind name table out of sync with kViolationKindCount");

std::string PrincipalName(net::NodeId id) {
  if (id == net::kPublicSubject) return "public";
  return "user " + std::to_string(id);
}

}  // namespace

const char* ViolationKindName(ViolationKind kind) {
  const size_t index = static_cast<size_t>(kind);
  if (index >= static_cast<size_t>(kViolationKindCount)) return "unknown";
  return kViolationKindNames[index];
}

AdversaryObserver::AdversaryObserver(ObserverConfig config)
    : config_(config) {}

void AdversaryObserver::AddViolationLocked(ViolationKind kind,
                                           net::NodeId observer,
                                           net::NodeId subject, double value,
                                           std::string detail) {
  Violation violation;
  violation.kind = kind;
  violation.observer = observer;
  violation.subject = subject;
  violation.value = value;
  violation.detail = std::move(detail);
  if (config_.trap_on_violation) {
    std::fprintf(stderr, "non-exposure violation [%s]: %s\n",
                 ViolationKindName(kind), violation.detail.c_str());
    NELA_CHECK(!"non-exposure invariant violated");
  }
  violations_.push_back(std::move(violation));
}

void AdversaryObserver::OnMessage(const net::Message& message,
                                  bool delivered) {
  util::MutexLock lock(mu_);
  ++messages_seen_;
  if (!message.payload.empty()) ++tagged_messages_;

  // A wire-level adversary sees every transmission attempt, so the taint
  // scan covers undelivered messages too.
  for (const net::PayloadField& field : message.payload) {
    if (field.tag == net::FieldTag::kRawCoordinate) {
      if (config_.allow_declared_exposure) {
        ++declared_exposures_;
      } else {
        AddViolationLocked(
            ViolationKind::kRawCoordinateOnWire, message.to, field.subject,
            field.value,
            "field tagged raw_coordinate about " +
                PrincipalName(field.subject) + " sent " +
                PrincipalName(message.from) + " -> " +
                PrincipalName(message.to) + " (" +
                net::MessageKindName(message.kind) + ")");
      }
      continue;
    }
    if (config_.taint == nullptr) continue;
    const std::optional<net::NodeId> owner = config_.taint->Match(field.value);
    if (!owner.has_value()) continue;
    if (field.tag == net::FieldTag::kCloakedRegion &&
        config_.allow_declared_exposure) {
      // The OPT baseline's region edges are exact member coordinates by
      // construction; in declared-exposure mode that is the accepted cost
      // of the comparator, not a protocol bug.
      ++declared_exposures_;
      continue;
    }
    AddViolationLocked(
        ViolationKind::kRawCoordinateOnWire, message.to, *owner, field.value,
        "private coordinate of " + PrincipalName(*owner) +
            " matched a field tagged " + net::FieldTagName(field.tag) +
            " sent " + PrincipalName(message.from) + " -> " +
            PrincipalName(message.to) + " (" +
            net::MessageKindName(message.kind) + ")");
  }

  const bool bounding_kind =
      message.kind == net::MessageKind::kBoundProposal ||
      message.kind == net::MessageKind::kBoundVote;
  if (bounding_kind && message.payload.empty()) {
    AddViolationLocked(
        ViolationKind::kUntaggedProtocolTraffic, message.to, message.from,
        0.0,
        std::string(net::MessageKindName(message.kind)) + " " +
            PrincipalName(message.from) + " -> " + PrincipalName(message.to) +
            " carries no payload descriptor");
    return;
  }

  // Knowledge accrues from delivered messages only: an endpoint cannot act
  // on a vote it never received, and retransmissions re-present the same
  // descriptor until one gets through.
  if (!delivered) return;

  if (message.kind == net::MessageKind::kBoundProposal) {
    for (const net::PayloadField& field : message.payload) {
      if (field.tag != net::FieldTag::kBoundHypothesis) continue;
      // The proposal's hypothesis is public, but the *verdict* it elicits
      // is about the recipient: key the sender's future inference by peer.
      knowledge_[message.from].ObserveHypothesis(message.to, field.value);
    }
    return;
  }
  if (message.kind == net::MessageKind::kBoundVote) {
    for (const net::PayloadField& field : message.payload) {
      if (field.tag != net::FieldTag::kBoundVerdict) continue;
      const std::optional<LearnedInterval> interval =
          knowledge_[message.to].ObserveVerdict(message.from,
                                                field.value != 0.0);
      if (!interval.has_value()) continue;
      if (message.to == message.from) continue;  // self-knowledge is free
      if (interval->width() < config_.min_interval_width) {
        AddViolationLocked(
            ViolationKind::kKnowledgeCollapse, message.to, message.from,
            interval->width(),
            PrincipalName(message.to) + " narrowed " +
                PrincipalName(message.from) + "'s bounded value to width " +
                std::to_string(interval->width()));
      }
    }
  }
}

bool AdversaryObserver::clean() const {
  util::MutexLock lock(mu_);
  return violations_.empty();
}

std::vector<Violation> AdversaryObserver::violations() const {
  util::MutexLock lock(mu_);
  return violations_;
}

uint64_t AdversaryObserver::violation_count() const {
  util::MutexLock lock(mu_);
  return violations_.size();
}

uint64_t AdversaryObserver::messages_seen() const {
  util::MutexLock lock(mu_);
  return messages_seen_;
}

uint64_t AdversaryObserver::tagged_messages() const {
  util::MutexLock lock(mu_);
  return tagged_messages_;
}

uint64_t AdversaryObserver::declared_exposures() const {
  util::MutexLock lock(mu_);
  return declared_exposures_;
}

double AdversaryObserver::LearnedIntervalWidth(net::NodeId observer,
                                               net::NodeId subject) const {
  util::MutexLock lock(mu_);
  const auto it = knowledge_.find(observer);
  if (it == knowledge_.end()) {
    return std::numeric_limits<double>::infinity();
  }
  return it->second.TightestIntervalWidth(subject);
}

double AdversaryObserver::TightestLearnedWidth() const {
  util::MutexLock lock(mu_);
  double tightest = std::numeric_limits<double>::infinity();
  for (const auto& [principal, knowledge] : knowledge_) {
    const double width = knowledge.TightestAnyIntervalWidth();
    if (width < tightest) tightest = width;
  }
  return tightest;
}

std::string AdversaryObserver::Report(size_t max_entries) const {
  util::MutexLock lock(mu_);
  std::string report = std::to_string(violations_.size()) +
                       " non-exposure violation(s) across " +
                       std::to_string(messages_seen_) + " messages";
  const size_t shown = std::min(max_entries, violations_.size());
  for (size_t i = 0; i < shown; ++i) {
    const Violation& v = violations_[i];
    report += "\n  [" + std::string(ViolationKindName(v.kind)) + "] " +
              v.detail;
  }
  if (shown < violations_.size()) {
    report += "\n  ... " + std::to_string(violations_.size() - shown) +
              " more";
  }
  return report;
}

}  // namespace nela::audit
