// Bit-exact taint tracking of private coordinates.
//
// The non-exposure property (paper §III) says raw coordinates never cross
// the wire. Testing that claim needs more than greping payloads: a leaky
// protocol could ship a coordinate under an innocuous field tag. The
// TaintSet registers the exact bit patterns of every user's private
// coordinates (and their negations, which the four axis runs of
// ComputeCloakedRegion operate on); the AdversaryObserver matches every
// payload field it sees against the set, so a coordinate smuggled under
// *any* tag is caught.
//
// Bit-exact matching keeps the check free of tolerance tuning and cannot
// false-positive on honest protocol values except by exact 64-bit
// coincidence: hypotheses are reference + cumulative increments, which never
// reproduce another member's coordinate bits in practice. The verdict
// encodings 0.0/1.0 are exempted, since a user located exactly at 0 or 1
// would otherwise collide with every vote.

#ifndef NELA_AUDIT_TAINT_H_
#define NELA_AUDIT_TAINT_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "geo/point.h"
#include "net/fault_plan.h"

namespace nela::audit {

class TaintSet {
 public:
  // Registers `value` (and nothing else) as private to `subject`.
  void TaintValue(net::NodeId subject, double value);

  // Registers both coordinates of `point` and their negations as private to
  // `subject` -- the four forms the axis-direction bounding runs handle.
  void TaintPoint(net::NodeId subject, const geo::Point& point);

  // Returns the owner of `value`'s exact bit pattern, or nullopt. The
  // verdict encodings 0.0 and 1.0 never match.
  std::optional<net::NodeId> Match(double value) const;

  size_t size() const { return bits_to_subject_.size(); }
  void Clear() { bits_to_subject_.clear(); }

 private:
  static uint64_t Bits(double value);

  std::unordered_map<uint64_t, net::NodeId> bits_to_subject_;
};

}  // namespace nela::audit

#endif  // NELA_AUDIT_TAINT_H_
