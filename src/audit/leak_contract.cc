#include "audit/leak_contract.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/check.h"

namespace nela::audit {

namespace {

constexpr const char* kMechanismFamilyNames[] = {
    "cluster_bound",    // kClusterBound
    "grid_cloak",       // kGridCloak
    "geo_ind",          // kGeoInd
    "dummy_locations",  // kDummyLocations
};
static_assert(sizeof(kMechanismFamilyNames) /
                      sizeof(kMechanismFamilyNames[0]) ==
                  static_cast<size_t>(kMechanismFamilyCount),
              "MechanismFamily name table out of sync");

uint64_t Bits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Exact power-of-two width in [2^-max_depth, 1]; returns the depth or -1.
int DyadicDepth(double width, uint32_t max_depth) {
  if (!(width > 0.0) || width > 1.0) return -1;
  const int exponent = std::ilogb(width);
  if (std::ldexp(1.0, exponent) != width) return -1;
  const int depth = -exponent;
  if (depth < 0 || depth > static_cast<int>(max_depth)) return -1;
  return depth;
}

// Is `value` an exact multiple of the power-of-two `width`?
bool DyadicAligned(double value, double width) {
  const double steps = value / width;
  return steps == std::nearbyint(steps) && steps >= 0.0;
}

}  // namespace

const char* MechanismFamilyName(MechanismFamily family) {
  const size_t index = static_cast<size_t>(family);
  if (index >= static_cast<size_t>(kMechanismFamilyCount)) return "unknown";
  return kMechanismFamilyNames[index];
}

LeakContractChecker::LeakContractChecker(LeakContractConfig config)
    : config_(std::move(config)) {
  NELA_CHECK_GE(config_.k, 1u);
  NELA_CHECK_GE(config_.dls_resolution, 1u);
}

void LeakContractChecker::AddViolationLocked(net::NodeId subject,
                                             std::string detail) {
  violations_.push_back(ContractViolation{subject, std::move(detail)});
}

void LeakContractChecker::OnMessage(const net::Message& message,
                                    bool delivered) {
  (void)delivered;  // contracts bind every transmission attempt
  util::MutexLock lock(mu_);
  ++messages_checked_;
  switch (config_.family) {
    case MechanismFamily::kClusterBound:
      break;  // the observer's shared invariants are the whole contract
    case MechanismFamily::kGridCloak:
      CheckGridLocked(message);
      break;
    case MechanismFamily::kGeoInd:
      CheckGeoIndLocked(message);
      break;
    case MechanismFamily::kDummyLocations:
      CheckDummyLocked(message);
      break;
  }
}

void LeakContractChecker::CheckGridLocked(const net::Message& message) {
  const net::NodeId sender = message.from;
  // Declared channel 1: the client uploads its OWN location to the
  // anonymizer. Any raw coordinate that is not the sender's own is a leak
  // even inside the declared channel.
  for (const net::PayloadField& field : message.payload) {
    if (field.tag != net::FieldTag::kRawCoordinate) continue;
    if (sender >= config_.true_points.size()) {
      AddViolationLocked(sender, "raw upload from unknown sender " +
                                     std::to_string(sender));
      continue;
    }
    const geo::Point& own = config_.true_points[sender];
    if (Bits(field.value) != Bits(own.x) && Bits(field.value) != Bits(own.y)) {
      AddViolationLocked(
          sender, "grid upload from user " + std::to_string(sender) +
                      " carries a coordinate that is not the sender's own");
    }
    if (field.subject != sender) {
      AddViolationLocked(sender,
                         "grid upload field about user " +
                             std::to_string(field.subject) +
                             " sent by user " + std::to_string(sender));
    }
  }
  if (message.kind != net::MessageKind::kServiceRequest) return;
  // Declared channel 2: the published cell, as the LBS query region.
  double edges[4] = {0.0, 0.0, 0.0, 0.0};
  int region_fields = 0;
  for (const net::PayloadField& field : message.payload) {
    if (field.tag != net::FieldTag::kCloakedRegion) continue;
    if (region_fields < 4) edges[region_fields] = field.value;
    ++region_fields;
  }
  if (region_fields != 4) {
    AddViolationLocked(sender, "grid service request carries " +
                                   std::to_string(region_fields) +
                                   " region edges, want 4");
    return;
  }
  const double min_x = edges[0];
  const double min_y = edges[1];
  const double width = edges[2] - min_x;
  const double height = edges[3] - min_y;
  if (width != height || DyadicDepth(width, config_.grid_max_depth) < 0 ||
      !DyadicAligned(min_x, width) || !DyadicAligned(min_y, width)) {
    AddViolationLocked(
        sender,
        "grid region is not an aligned dyadic cell (the region's edges "
        "would betray the user's exact position)");
    return;
  }
  uint32_t occupants = 0;
  for (const geo::Point& p : config_.true_points) {
    if (p.x >= min_x && p.x <= edges[2] && p.y >= min_y && p.y <= edges[3]) {
      ++occupants;
    }
  }
  if (occupants < config_.k) {
    AddViolationLocked(sender, "grid cell holds " +
                                   std::to_string(occupants) +
                                   " users, below k=" +
                                   std::to_string(config_.k));
  }
  if (sender < config_.true_points.size()) {
    const geo::Point& own = config_.true_points[sender];
    if (own.x < min_x || own.x > edges[2] || own.y < min_y ||
        own.y > edges[3]) {
      AddViolationLocked(sender,
                         "grid cell does not contain the sender's true "
                         "location: the published cell is a decoy, not a "
                         "cloak");
    }
  }
}

void LeakContractChecker::CheckGeoIndLocked(const net::Message& message) {
  if (message.kind != net::MessageKind::kServiceRequest) return;
  const net::NodeId sender = message.from;
  int noised_fields = 0;
  for (const net::PayloadField& field : message.payload) {
    if (field.tag != net::FieldTag::kNoisedCoordinate) {
      AddViolationLocked(sender,
                         std::string("geo-ind service request carries a "
                                     "field tagged ") +
                             net::FieldTagName(field.tag) +
                             "; the contract allows noised coordinates "
                             "only");
      continue;
    }
    ++noised_fields;
    if (field.value == 0.0 || field.value == 1.0) continue;  // degenerate
    for (net::NodeId u = 0; u < config_.true_points.size(); ++u) {
      const geo::Point& p = config_.true_points[u];
      if (Bits(field.value) == Bits(p.x) || Bits(field.value) == Bits(p.y)) {
        AddViolationLocked(
            u, "geo-ind probe from user " + std::to_string(sender) +
                   " is bit-equal to a true coordinate of user " +
                   std::to_string(u) + ": no noise was applied");
      }
    }
  }
  if (noised_fields != 2) {
    AddViolationLocked(sender, "geo-ind service request carries " +
                                   std::to_string(noised_fields) +
                                   " noised coordinates, want exactly 2");
  }
}

void LeakContractChecker::CheckDummyLocked(const net::Message& message) {
  if (message.kind != net::MessageKind::kServiceRequest) return;
  const net::NodeId sender = message.from;
  const uint32_t resolution = config_.dls_resolution;
  double coords[2] = {0.0, 0.0};
  int candidate_fields = 0;
  for (const net::PayloadField& field : message.payload) {
    if (field.tag != net::FieldTag::kCandidateLocation) {
      AddViolationLocked(sender,
                         std::string("dummy-set service request carries a "
                                     "field tagged ") +
                             net::FieldTagName(field.tag) +
                             "; the contract allows candidate locations "
                             "only");
      continue;
    }
    if (candidate_fields < 2) coords[candidate_fields] = field.value;
    ++candidate_fields;
    for (net::NodeId u = 0; u < config_.true_points.size(); ++u) {
      const geo::Point& p = config_.true_points[u];
      if (Bits(field.value) == Bits(p.x) || Bits(field.value) == Bits(p.y)) {
        AddViolationLocked(
            u, "candidate location from user " + std::to_string(sender) +
                   " is bit-equal to a true coordinate of user " +
                   std::to_string(u) +
                   ": the real location was not snapped to its cell");
      }
    }
  }
  if (candidate_fields != 2) {
    AddViolationLocked(sender, "dummy-set service request carries " +
                                   std::to_string(candidate_fields) +
                                   " candidate coordinates, want exactly 2");
    return;
  }
  uint64_t cell_xy[2] = {0, 0};
  for (int axis = 0; axis < 2; ++axis) {
    const double steps =
        coords[axis] * static_cast<double>(resolution) - 0.5;
    const double index = std::nearbyint(steps);
    const bool centered =
        steps == index && index >= 0.0 &&
        index < static_cast<double>(resolution) &&
        (index + 0.5) / static_cast<double>(resolution) == coords[axis];
    if (!centered) {
      AddViolationLocked(sender,
                         "candidate coordinate is not an exact cell center "
                         "of the candidate grid");
      return;
    }
    cell_xy[axis] = static_cast<uint64_t>(index);
  }
  candidate_cells_[sender].insert(cell_xy[1] * resolution + cell_xy[0]);
}

void LeakContractChecker::FinalizeHostLocked(net::NodeId host,
                                             const std::set<uint64_t>& cells) {
  if (cells.size() < config_.k) {
    AddViolationLocked(host, "dummy set of user " + std::to_string(host) +
                                 " spans " + std::to_string(cells.size()) +
                                 " cells, below k=" +
                                 std::to_string(config_.k));
  }
  if (host >= config_.true_points.size()) {
    AddViolationLocked(host, "dummy set from unknown sender " +
                                 std::to_string(host));
    return;
  }
  const uint32_t resolution = config_.dls_resolution;
  const geo::Point& own = config_.true_points[host];
  const auto cell_of = [resolution](double value) {
    const double scaled =
        std::floor(value * static_cast<double>(resolution));
    const double clamped = std::clamp(
        scaled, 0.0, static_cast<double>(resolution - 1));
    return static_cast<uint64_t>(clamped);
  };
  const uint64_t own_cell = cell_of(own.y) * resolution + cell_of(own.x);
  if (cells.find(own_cell) == cells.end()) {
    AddViolationLocked(host,
                       "dummy set of user " + std::to_string(host) +
                           " omits the user's own cell: the service answer "
                           "cannot cover the real location");
  }
}

void LeakContractChecker::Finalize() {
  util::MutexLock lock(mu_);
  if (config_.family != MechanismFamily::kDummyLocations) return;
  for (const auto& [host, cells] : candidate_cells_) {
    FinalizeHostLocked(host, cells);
  }
  candidate_cells_.clear();
}

bool LeakContractChecker::clean() const {
  util::MutexLock lock(mu_);
  return violations_.empty();
}

std::vector<ContractViolation> LeakContractChecker::violations() const {
  util::MutexLock lock(mu_);
  return violations_;
}

uint64_t LeakContractChecker::messages_checked() const {
  util::MutexLock lock(mu_);
  return messages_checked_;
}

std::string LeakContractChecker::Report(size_t max_entries) const {
  util::MutexLock lock(mu_);
  std::string report =
      std::to_string(violations_.size()) + " " +
      std::string(MechanismFamilyName(config_.family)) +
      " contract violation(s) across " + std::to_string(messages_checked_) +
      " messages";
  const size_t shown = std::min(max_entries, violations_.size());
  for (size_t i = 0; i < shown; ++i) {
    report += "\n  " + violations_[i].detail;
  }
  if (shown < violations_.size()) {
    report +=
        "\n  ... " + std::to_string(violations_.size() - shown) + " more";
  }
  return report;
}

}  // namespace nela::audit
