// Per-mechanism leak contracts: what each privacy mechanism is ALLOWED to
// reveal, checked on the wire.
//
// The AdversaryObserver (observer.h) enforces the invariants every
// mechanism shares -- no raw coordinate bit pattern under any tag, no
// knowledge-interval collapse. But rival mechanisms differ in what they
// deliberately disclose: a grid cloak publishes a quantized cell, geo-
// indistinguishability publishes one noised point, a dummy-location set
// publishes k plausible cells that must include the real one. This checker
// is the other half of the audit: it verifies the *declared* channel has
// exactly the promised shape -- and nothing more -- using ground truth the
// adversary does not have (the true locations), so a mechanism that
// quietly ships something sharper than its contract is caught even when
// the generic taint scan cannot see it.
//
// Contracts by family (fields in wire order):
//  * kClusterBound -- nothing beyond the observer's invariants; every
//    message passes.
//  * kGridCloak    -- kServiceRequest carries 4 kCloakedRegion edges
//    (min_x, min_y, max_x, max_y) forming a dyadic square cell of depth
//    <= grid_max_depth that contains the sender's true point and at least
//    k users; location uploads (kRawCoordinate) may carry only the
//    sender's OWN coordinates (the declared client->anonymizer channel).
//  * kGeoInd       -- kServiceRequest carries exactly 2 kNoisedCoordinate
//    fields, neither bit-equal to any user's true coordinate.
//  * kDummyLocations -- kServiceRequest carries 2 kCandidateLocation
//    fields that are exact cell centers of the G x G candidate grid; per
//    host, the union of candidates (closed by Finalize) spans >= k
//    distinct cells including the host's true cell.

#ifndef NELA_AUDIT_LEAK_CONTRACT_H_
#define NELA_AUDIT_LEAK_CONTRACT_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/point.h"
#include "net/network.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nela::audit {

enum class MechanismFamily : uint8_t {
  kClusterBound = 0,  // the paper's clustering + secure bounding
  kGridCloak,         // quadtree spatial cloaking to k occupants
  kGeoInd,            // planar-Laplace geo-indistinguishability
  kDummyLocations,    // max-entropy dummy-location set (DLS)
};
inline constexpr int kMechanismFamilyCount = 4;

const char* MechanismFamilyName(MechanismFamily family);

struct LeakContractConfig {
  MechanismFamily family = MechanismFamily::kClusterBound;
  // Privacy requirement: grid occupancy / dummy-set cardinality.
  uint32_t k = 2;
  // Ground truth: true location of node id i at true_points[i]. Senders
  // outside this range are contract violations by definition.
  std::vector<geo::Point> true_points;
  // kGridCloak: maximum quadtree depth (cell width >= 2^-grid_max_depth).
  uint32_t grid_max_depth = 16;
  // kDummyLocations: candidate grid resolution G (cells are 1/G wide,
  // centers at (i + 0.5) / G).
  uint32_t dls_resolution = 16;
};

struct ContractViolation {
  net::NodeId subject = net::kPublicSubject;
  std::string detail;
};

// Thread-safe, same tap discipline as AdversaryObserver. Chain both taps
// through TapChain to audit shared invariants and the mechanism contract
// in one run.
class LeakContractChecker : public net::TrafficTap {
 public:
  explicit LeakContractChecker(LeakContractConfig config);

  void OnMessage(const net::Message& message, bool delivered) override
      EXCLUDES(mu_);

  // Closes streaming accounting (the per-host dummy-set union). Call after
  // traffic ends; idempotent, and further messages restart the pending
  // state of the hosts they touch.
  void Finalize() EXCLUDES(mu_);

  bool clean() const EXCLUDES(mu_);
  std::vector<ContractViolation> violations() const EXCLUDES(mu_);
  uint64_t messages_checked() const EXCLUDES(mu_);
  std::string Report(size_t max_entries = 10) const EXCLUDES(mu_);

 private:
  void AddViolationLocked(net::NodeId subject, std::string detail)
      REQUIRES(mu_);
  void CheckGridLocked(const net::Message& message) REQUIRES(mu_);
  void CheckGeoIndLocked(const net::Message& message) REQUIRES(mu_);
  void CheckDummyLocked(const net::Message& message) REQUIRES(mu_);
  void FinalizeHostLocked(net::NodeId host, const std::set<uint64_t>& cells)
      REQUIRES(mu_);

  LeakContractConfig config_;
  mutable util::Mutex mu_;
  std::vector<ContractViolation> violations_ GUARDED_BY(mu_);
  uint64_t messages_checked_ GUARDED_BY(mu_) = 0;
  // kDummyLocations: cells seen per host since the last Finalize.
  std::unordered_map<net::NodeId, std::set<uint64_t>> candidate_cells_
      GUARDED_BY(mu_);
};

}  // namespace nela::audit

#endif  // NELA_AUDIT_LEAK_CONTRACT_H_
