#include "audit/taint.h"

#include <cstring>

namespace nela::audit {

uint64_t TaintSet::Bits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double is not 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void TaintSet::TaintValue(net::NodeId subject, double value) {
  bits_to_subject_.emplace(Bits(value), subject);
}

void TaintSet::TaintPoint(net::NodeId subject, const geo::Point& point) {
  TaintValue(subject, point.x);
  TaintValue(subject, -point.x);
  TaintValue(subject, point.y);
  TaintValue(subject, -point.y);
}

std::optional<net::NodeId> TaintSet::Match(double value) const {
  if (value == 0.0 || value == 1.0) return std::nullopt;
  const auto it = bits_to_subject_.find(Bits(value));
  if (it == bits_to_subject_.end()) return std::nullopt;
  return it->second;
}

}  // namespace nela::audit
