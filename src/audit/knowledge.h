// Per-principal knowledge reconstruction for the non-exposure verifier.
//
// What the bounding protocol is *allowed* to reveal (paper §III, quantified
// in bounding/privacy_loss.h): for each peer, the interval between the last
// hypothesis the peer rejected and the first one it accepted within a
// monotone hypothesis run. A KnowledgeSet replays exactly that inference
// from intercepted (hypothesis, verdict) traffic, so the observer can check
// that no run ever narrows a peer's value beyond the increment-policy
// resolution -- a collapse to (near-)zero width would mean the protocol
// leaked the value itself.
//
// Runs are detected on the wire: within one axis-direction run hypotheses
// strictly increase, so a hypothesis at or below its predecessor starts a
// new run (a new axis, a retried phase, or a later request) and rejection
// state from the old run no longer constrains the new one.

#ifndef NELA_AUDIT_KNOWLEDGE_H_
#define NELA_AUDIT_KNOWLEDGE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/fault_plan.h"

namespace nela::audit {

// A completed inference: the subject's bounded value lies in
// (lower, upper] -- last rejected to first accepted hypothesis.
struct LearnedInterval {
  double lower = 0.0;
  double upper = 0.0;
  double width() const { return upper - lower; }
};

// Everything one principal knows about one subject.
struct SubjectKnowledge {
  // Hypothesis proposed but not yet voted on.
  double pending_hypothesis = 0.0;
  bool has_pending = false;
  // Previous hypothesis, for monotone-run detection.
  double last_hypothesis = 0.0;
  bool has_last = false;
  // Largest rejected hypothesis of the current run.
  double last_rejected = 0.0;
  bool has_rejected = false;
  // Narrowest completed interval across all runs.
  LearnedInterval tightest;
  bool has_interval = false;
  uint64_t verdicts = 0;
  uint64_t runs = 0;
};

// The knowledge set of a single observing principal (a cluster host, in
// the current protocols). Not thread-safe; the AdversaryObserver serializes
// access.
class KnowledgeSet {
 public:
  // The principal proposed `hypothesis` to `subject`.
  void ObserveHypothesis(net::NodeId subject, double hypothesis);

  // `subject` voted on the pending hypothesis. Returns the learned interval
  // when this verdict completes one: an acceptance following at least one
  // rejection in the same run. Verdicts without a pending hypothesis
  // (untagged legacy traffic) are ignored.
  std::optional<LearnedInterval> ObserveVerdict(net::NodeId subject,
                                                bool agrees);

  // Null when nothing is known about `subject`.
  const SubjectKnowledge* about(net::NodeId subject) const;

  // Width of the narrowest completed interval about `subject`; +infinity
  // when no interval completed.
  double TightestIntervalWidth(net::NodeId subject) const;

  // Narrowest completed interval about ANY subject; +infinity when none.
  double TightestAnyIntervalWidth() const;

  size_t subject_count() const { return about_.size(); }

 private:
  std::unordered_map<net::NodeId, SubjectKnowledge> about_;
};

}  // namespace nela::audit

#endif  // NELA_AUDIT_KNOWLEDGE_H_
