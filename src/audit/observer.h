// Adversary's-eye verifier of the non-exposure invariant.
//
// The observer taps every net::Network send attempt and plays the
// strongest adversary the paper's threat model admits: a wire-level
// eavesdropper who also controls every receiving endpoint. From the tagged
// payload descriptors it (1) scans each field against a TaintSet of
// registered private coordinates, catching a raw coordinate under any tag;
// and (2) reconstructs, per principal, the knowledge set the bounding
// traffic implies (knowledge.h) and flags any run that narrows a peer's
// value to below `min_interval_width` -- the protocol is only ever allowed
// to reveal a one-increment-wide interval, so a collapse means exposure.
//
// Verdicts reveal at most one bit each and regions are public by design, so
// neither trips the verifier; the OPT baseline deliberately exposes
// coordinates and is audited with `allow_declared_exposure`, which counts
// exposures instead of flagging them.

#ifndef NELA_AUDIT_OBSERVER_H_
#define NELA_AUDIT_OBSERVER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "audit/knowledge.h"
#include "audit/taint.h"
#include "net/network.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace nela::audit {

enum class ViolationKind : uint8_t {
  // A registered private coordinate bit pattern crossed the wire (under any
  // tag), or a field was explicitly tagged kRawCoordinate outside declared
  // exposure mode.
  kRawCoordinateOnWire = 0,
  // A reconstructed knowledge interval collapsed below min_interval_width:
  // some principal effectively learned another user's bounded value.
  kKnowledgeCollapse,
  // Bounding traffic without a payload descriptor: a send site bypassed the
  // observer model, so the run cannot be audited.
  kUntaggedProtocolTraffic,
};
inline constexpr int kViolationKindCount = 3;

const char* ViolationKindName(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kRawCoordinateOnWire;
  // The principal that gained the knowledge and the user it is about.
  net::NodeId observer = net::kPublicSubject;
  net::NodeId subject = net::kPublicSubject;
  double value = 0.0;
  std::string detail;
};

struct ObserverConfig {
  // A completed knowledge interval narrower than this is a collapse. The
  // honest protocol's intervals are one policy increment wide (>= 1e-4 in
  // every test regime), orders of magnitude above this floor.
  double min_interval_width = 1e-9;
  // OPT-baseline mode: kRawCoordinate fields and region edges that match
  // the taint set are counted as declared exposures, not violations.
  bool allow_declared_exposure = false;
  // Abort via NELA_CHECK on the first violation -- the debug-wrapper mode
  // for pinpointing the offending send in a backtrace.
  bool trap_on_violation = false;
  // Optional taint set of private coordinates (not owned; must outlive the
  // observer). Null disables taint scanning.
  const TaintSet* taint = nullptr;
};

// Thread-safe: the tap is invoked outside the network mutex, and the
// observer serializes its own state, so batch-driver workers may share a
// tapped network.
class AdversaryObserver : public net::TrafficTap {
 public:
  explicit AdversaryObserver(ObserverConfig config = {});

  void OnMessage(const net::Message& message, bool delivered) override
      EXCLUDES(mu_);

  // --- Results ----------------------------------------------------------

  bool clean() const EXCLUDES(mu_);
  std::vector<Violation> violations() const EXCLUDES(mu_);
  uint64_t violation_count() const EXCLUDES(mu_);
  uint64_t messages_seen() const EXCLUDES(mu_);
  uint64_t tagged_messages() const EXCLUDES(mu_);
  uint64_t declared_exposures() const EXCLUDES(mu_);

  // Width of the narrowest interval `observer` learned about `subject`;
  // +infinity when none completed.
  double LearnedIntervalWidth(net::NodeId observer,
                              net::NodeId subject) const EXCLUDES(mu_);

  // Narrowest interval ANY principal learned about ANY subject; +infinity
  // when no bounding run completed. This is the "provable adversary
  // knowledge" scalar of the comparative benchmark: mechanisms that never
  // run the bounding protocol (grid / geo-ind / dummies) leave it infinite.
  double TightestLearnedWidth() const EXCLUDES(mu_);

  // Human-readable summary of up to `max_entries` violations, for test
  // failure messages.
  std::string Report(size_t max_entries = 10) const EXCLUDES(mu_);

 private:
  void AddViolationLocked(ViolationKind kind, net::NodeId observer,
                          net::NodeId subject, double value,
                          std::string detail) REQUIRES(mu_);

  ObserverConfig config_;
  mutable util::Mutex mu_;
  std::unordered_map<net::NodeId, KnowledgeSet> knowledge_ GUARDED_BY(mu_);
  std::vector<Violation> violations_ GUARDED_BY(mu_);
  uint64_t messages_seen_ GUARDED_BY(mu_) = 0;
  uint64_t tagged_messages_ GUARDED_BY(mu_) = 0;
  uint64_t declared_exposures_ GUARDED_BY(mu_) = 0;
};

}  // namespace nela::audit

#endif  // NELA_AUDIT_OBSERVER_H_
