// Fan-out traffic tap: net::Network carries exactly one TrafficTap, but a
// comparative audit wants several observers on the same wire (the generic
// AdversaryObserver plus a mechanism-specific LeakContractChecker). The
// chain forwards every message to each registered tap in order.

#ifndef NELA_AUDIT_TAP_CHAIN_H_
#define NELA_AUDIT_TAP_CHAIN_H_

#include <vector>

#include "net/network.h"

namespace nela::audit {

class TapChain : public net::TrafficTap {
 public:
  // `tap` is not owned and must outlive the chain; null taps are ignored.
  // Add every tap before traffic starts (same rule as Network::SetTap).
  void Add(net::TrafficTap* tap) {
    if (tap != nullptr) taps_.push_back(tap);
  }

  void OnMessage(const net::Message& message, bool delivered) override {
    for (net::TrafficTap* tap : taps_) tap->OnMessage(message, delivered);
  }

 private:
  std::vector<net::TrafficTap*> taps_;
};

}  // namespace nela::audit

#endif  // NELA_AUDIT_TAP_CHAIN_H_
