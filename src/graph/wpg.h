// Weighted proximity graph (WPG), §IV.
//
// Vertices are users; an edge (u, v) means u and v are in radio proximity,
// and its weight is a symmetric relative-distance measure agreed by both
// endpoints (in the experiments: the minimum of the two mutual RSS ranks).
//
// Adjacency is stored in CSR form — one flat HalfEdge array plus per-vertex
// offsets — so neighbor scans are contiguous and cache-friendly at 10^5
// vertices. Mutation (AddEdge) appends to the edge list and marks the CSR
// stale; the next accessor rebuilds it with a stable counting sort, which
// preserves the historical per-vertex insertion order. A graph is
// "finalized" once SortAdjacencyByWeight (or any accessor) has run after
// the last AddEdge; a finalized graph is immutable and safe for concurrent
// reads, while a stale graph must not be shared across threads (the lazy
// rebuild mutates shared state). BuildWpg and FromEdges always return
// finalized graphs.

#ifndef NELA_GRAPH_WPG_H_
#define NELA_GRAPH_WPG_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace nela::graph {

using VertexId = uint32_t;

struct HalfEdge {
  VertexId to = 0;
  double weight = 0.0;
};

struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  double weight = 0.0;
};

// Strict total order over edges: weight first, endpoint ids as the
// tie-break. The proximity experiments use small-integer RSS ranks as
// weights, so ties are pervasive; every t-connectivity computation in the
// library refines the threshold to an EdgeKey so that "remove edges in
// descending order" (Algorithm 1) and all derived notions are
// deterministic and mutually consistent. A threshold EdgeKey admits an
// edge e iff KeyOf(e) <= threshold.
struct EdgeKey {
  double weight = 0.0;
  VertexId lo = 0;
  VertexId hi = 0;

  // Sentinel below every real edge (real edges have weight > 0).
  static EdgeKey Min() { return EdgeKey{0.0, 0, 0}; }
  // Threshold admitting every edge of weight <= w regardless of ids.
  static EdgeKey UpTo(double w) {
    return EdgeKey{w, 0xffffffffu, 0xffffffffu};
  }

  friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
    return a.weight == b.weight && a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator<(const EdgeKey& a, const EdgeKey& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  }
  friend bool operator<=(const EdgeKey& a, const EdgeKey& b) {
    return a < b || a == b;
  }
  friend bool operator>(const EdgeKey& a, const EdgeKey& b) { return b < a; }
};

inline EdgeKey KeyOf(const Edge& e) {
  return EdgeKey{e.weight, e.u < e.v ? e.u : e.v, e.u < e.v ? e.v : e.u};
}

inline EdgeKey KeyOf(VertexId from, const HalfEdge& half) {
  return EdgeKey{half.weight, from < half.to ? from : half.to,
                 from < half.to ? half.to : from};
}

class Wpg {
 public:
  // An empty graph with `vertex_count` isolated vertices.
  explicit Wpg(uint32_t vertex_count);

  // Adopts a fully formed CSR adjacency: `offsets` has vertex_count + 1
  // entries, `halfedges` holds each edge twice, and slice v is
  // halfedges[offsets[v] .. offsets[v + 1]). The parallel builder uses this
  // to hand over an adjacency it assembled (and sorted) itself; consistency
  // with `edges` is the builder's responsibility beyond the shape checks.
  Wpg(std::vector<Edge> edges, std::vector<uint32_t> offsets,
      std::vector<HalfEdge> halfedges);

  // Builds from an explicit edge list (used by tests mirroring the paper's
  // worked examples). Duplicate or self edges are rejected.
  [[nodiscard]] static util::Result<Wpg> FromEdges(uint32_t vertex_count,
                                     const std::vector<Edge>& edges);

  uint32_t vertex_count() const { return vertex_count_; }
  uint32_t edge_count() const { return static_cast<uint32_t>(edges_.size()); }

  // Adds an undirected edge. Requires u != v, weight > 0, and that the edge
  // does not already exist (checked only in the FromEdges path; AddEdge
  // trusts the builder for speed).
  void AddEdge(VertexId u, VertexId v, double weight);

  // The half-edges incident to v, as a contiguous slice of the CSR arena.
  // The span stays valid until the next AddEdge.
  std::span<const HalfEdge> Neighbors(VertexId v) const {
    NELA_CHECK_LT(v, vertex_count_);
    EnsureAdjacency();
    return std::span<const HalfEdge>(halfedges_.data() + offsets_[v],
                                     offsets_[v + 1] - offsets_[v]);
  }

  uint32_t Degree(VertexId v) const {
    NELA_CHECK_LT(v, vertex_count_);
    EnsureAdjacency();
    return offsets_[v + 1] - offsets_[v];
  }

  // All edges, in insertion order.
  const std::vector<Edge>& edges() const { return edges_; }

  // Mean vertex degree (0 for an empty graph).
  double AverageDegree() const;

  // Largest edge weight in the whole graph; 0 when edgeless.
  double MaxEdgeWeight() const;

  // Sorts every adjacency slice by ascending weight (ties by vertex id).
  // The distributed algorithms rely on this ordering; the builder calls it
  // once after construction. Also finalizes the graph for concurrent reads.
  void SortAdjacencyByWeight();

  // FNV-1a digest over the vertex count, the edge list (in order), and the
  // CSR adjacency (offsets and half-edges, in order): two graphs with the
  // same digest are structurally identical down to storage order. The
  // parallel-vs-sequential build property tests compare these.
  uint64_t Digest() const;

 private:
  // Rebuilds the CSR arrays from edges_ with a stable counting sort, so
  // each vertex's slice lists its half-edges in edge-insertion order —
  // exactly the order the historical vector-of-vectors layout produced.
  void EnsureAdjacency() const;

  uint32_t vertex_count_ = 0;
  std::vector<Edge> edges_;
  // CSR adjacency, rebuilt lazily after mutation (see the header comment
  // for the thread-safety contract).
  mutable bool adjacency_stale_ = false;
  mutable std::vector<uint32_t> offsets_;
  mutable std::vector<HalfEdge> halfedges_;
};

}  // namespace nela::graph

#endif  // NELA_GRAPH_WPG_H_
