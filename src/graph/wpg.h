// Weighted proximity graph (WPG), §IV.
//
// Vertices are users; an edge (u, v) means u and v are in radio proximity,
// and its weight is a symmetric relative-distance measure agreed by both
// endpoints (in the experiments: the minimum of the two mutual RSS ranks).

#ifndef NELA_GRAPH_WPG_H_
#define NELA_GRAPH_WPG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace nela::graph {

using VertexId = uint32_t;

struct HalfEdge {
  VertexId to = 0;
  double weight = 0.0;
};

struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  double weight = 0.0;
};

// Strict total order over edges: weight first, endpoint ids as the
// tie-break. The proximity experiments use small-integer RSS ranks as
// weights, so ties are pervasive; every t-connectivity computation in the
// library refines the threshold to an EdgeKey so that "remove edges in
// descending order" (Algorithm 1) and all derived notions are
// deterministic and mutually consistent. A threshold EdgeKey admits an
// edge e iff KeyOf(e) <= threshold.
struct EdgeKey {
  double weight = 0.0;
  VertexId lo = 0;
  VertexId hi = 0;

  // Sentinel below every real edge (real edges have weight > 0).
  static EdgeKey Min() { return EdgeKey{0.0, 0, 0}; }
  // Threshold admitting every edge of weight <= w regardless of ids.
  static EdgeKey UpTo(double w) {
    return EdgeKey{w, 0xffffffffu, 0xffffffffu};
  }

  friend bool operator==(const EdgeKey& a, const EdgeKey& b) {
    return a.weight == b.weight && a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator<(const EdgeKey& a, const EdgeKey& b) {
    if (a.weight != b.weight) return a.weight < b.weight;
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  }
  friend bool operator<=(const EdgeKey& a, const EdgeKey& b) {
    return a < b || a == b;
  }
  friend bool operator>(const EdgeKey& a, const EdgeKey& b) { return b < a; }
};

inline EdgeKey KeyOf(const Edge& e) {
  return EdgeKey{e.weight, e.u < e.v ? e.u : e.v, e.u < e.v ? e.v : e.u};
}

inline EdgeKey KeyOf(VertexId from, const HalfEdge& half) {
  return EdgeKey{half.weight, from < half.to ? from : half.to,
                 from < half.to ? half.to : from};
}

class Wpg {
 public:
  // An empty graph with `vertex_count` isolated vertices.
  explicit Wpg(uint32_t vertex_count);

  // Builds from an explicit edge list (used by tests mirroring the paper's
  // worked examples). Duplicate or self edges are rejected.
  static util::Result<Wpg> FromEdges(uint32_t vertex_count,
                                     const std::vector<Edge>& edges);

  uint32_t vertex_count() const {
    return static_cast<uint32_t>(adjacency_.size());
  }
  uint32_t edge_count() const { return static_cast<uint32_t>(edges_.size()); }

  // Adds an undirected edge. Requires u != v, weight > 0, and that the edge
  // does not already exist (checked only in the FromEdges path; AddEdge
  // trusts the builder for speed).
  void AddEdge(VertexId u, VertexId v, double weight);

  const std::vector<HalfEdge>& Neighbors(VertexId v) const {
    NELA_CHECK_LT(v, adjacency_.size());
    return adjacency_[v];
  }

  uint32_t Degree(VertexId v) const {
    NELA_CHECK_LT(v, adjacency_.size());
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  // All edges, in insertion order.
  const std::vector<Edge>& edges() const { return edges_; }

  // Mean vertex degree (0 for an empty graph).
  double AverageDegree() const;

  // Largest edge weight in the whole graph; 0 when edgeless.
  double MaxEdgeWeight() const;

  // Sorts every adjacency list by ascending weight (ties by vertex id).
  // The distributed algorithms rely on this ordering; the builder calls it
  // once after construction.
  void SortAdjacencyByWeight();

 private:
  std::vector<std::vector<HalfEdge>> adjacency_;
  std::vector<Edge> edges_;
};

}  // namespace nela::graph

#endif  // NELA_GRAPH_WPG_H_
