// Graph measurements used by the paper's analysis: maximum edge weight
// (MEW), weighted diameter, and the Corollary 4.2 diameter bound that
// justifies substituting MEW for the diameter.

#ifndef NELA_GRAPH_METRICS_H_
#define NELA_GRAPH_METRICS_H_

#include <vector>

#include "graph/wpg.h"

namespace nela::graph {

// Largest edge weight of the subgraph induced by `vertices`; 0 when that
// subgraph has no edges.
double MaxEdgeWeightWithin(const Wpg& graph,
                           const std::vector<VertexId>& vertices);

// Weighted diameter of the subgraph induced by `vertices`: the maximum over
// vertex pairs of the shortest-path distance. Returns +infinity when the
// induced subgraph is disconnected, 0 for <= 1 vertex. Runs Dijkstra from
// every vertex of the set -- intended for cluster-sized inputs.
double WeightedDiameter(const Wpg& graph,
                        const std::vector<VertexId>& vertices);

// Corollary 4.2: the diameter of a weighted regular graph with k vertices,
// degree d and maximum edge weight w is at most
//   w * (1 + ceil(log_{d-1}((2 + eps) * d * k * log k))).
// Requires k >= 2 and d >= 3 (log base d-1 must exceed 1). `eps` > 0.
double RegularGraphDiameterBound(uint32_t k, uint32_t d, double w,
                                 double eps = 0.01);

}  // namespace nela::graph

#endif  // NELA_GRAPH_METRICS_H_
