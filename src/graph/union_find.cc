#include "graph/union_find.h"

namespace nela::graph {

UnionFind::UnionFind(uint32_t count)
    : parent_(count), size_(count, 1), set_count_(count) {
  for (uint32_t i = 0; i < count; ++i) parent_[i] = i;
}

uint32_t UnionFind::Find(uint32_t x) {
  NELA_CHECK_LT(x, parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --set_count_;
  return true;
}

}  // namespace nela::graph
