#include "graph/wpg_builder.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "spatial/grid_index.h"

namespace nela::graph {

util::Result<Wpg> BuildWpg(const data::Dataset& dataset,
                           const WpgBuildParams& params) {
  if (params.delta <= 0.0) {
    return util::InvalidArgumentError("delta must be positive");
  }
  if (params.cap_peers && params.max_peers == 0) {
    return util::InvalidArgumentError("max_peers must be positive");
  }
  if (params.measure == ProximityMeasure::kTdoaBucket &&
      params.tdoa_levels == 0) {
    return util::InvalidArgumentError("tdoa_levels must be positive");
  }

  const uint32_t n = dataset.size();
  const spatial::GridIndex index(dataset.points(), params.delta);

  // Step 1: per-user candidate peer list — the (at most M) nearest
  // delta-neighbors, ascending by distance.
  std::vector<std::vector<uint32_t>> candidates(n);
  for (uint32_t u = 0; u < n; ++u) {
    std::vector<spatial::Neighbor> near =
        index.RadiusQuery(dataset.point(u), params.delta, u);
    if (params.cap_peers && near.size() > params.max_peers) {
      near.resize(params.max_peers);
    }
    candidates[u].reserve(near.size());
    for (const spatial::Neighbor& nb : near) candidates[u].push_back(nb.id);
  }

  // Step 2: keep mutual links only; a device cannot hold a point-to-point
  // connection its peer refused.
  std::vector<std::vector<uint32_t>> peers(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v : candidates[u]) {
      if (v < u) continue;  // handle each unordered pair once
      const auto& back = candidates[v];
      if (std::find(back.begin(), back.end(), u) != back.end()) {
        peers[u].push_back(v);
        peers[v].push_back(u);
      }
    }
  }

  // Step 3: RSS rank of each peer. peers[u] preserves ascending-distance
  // order for v > u but appended v < u entries break it, so re-sort by
  // distance (ties by id for determinism).
  std::vector<std::vector<uint32_t>> rank(n);  // rank[u][i]: rank of peers[u][i]
  for (uint32_t u = 0; u < n; ++u) {
    auto& list = peers[u];
    std::sort(list.begin(), list.end(), [&](uint32_t a, uint32_t b) {
      const double da = geo::SquaredDistance(dataset.point(u), dataset.point(a));
      const double db = geo::SquaredDistance(dataset.point(u), dataset.point(b));
      return da < db || (da == db && a < b);
    });
  }

  // rank_of[u] maps peer id -> 1-based rank in u's sorted list. Use a flat
  // lookup per vertex pass to stay O(sum deg).
  auto rank_of = [&](uint32_t u, uint32_t v) -> uint32_t {
    const auto& list = peers[u];
    for (uint32_t i = 0; i < list.size(); ++i) {
      if (list[i] == v) return i + 1;
    }
    NELA_CHECK(false);  // mutual link must appear in both lists
    return 0;
  };

  Wpg graph(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t i = 0; i < peers[u].size(); ++i) {
      const uint32_t v = peers[u][i];
      if (v < u) continue;
      double weight;
      if (params.measure == ProximityMeasure::kTdoaBucket) {
        // Time-difference-of-arrival resolves distance directly; quantize
        // it into 1..tdoa_levels buckets (symmetric, so both devices agree
        // without negotiation).
        const double distance =
            geo::Distance(dataset.point(u), dataset.point(v));
        const double fraction = std::min(distance / params.delta, 1.0);
        weight = std::max<double>(
            1.0, std::ceil(fraction * params.tdoa_levels));
      } else {
        const uint32_t weight_u = i + 1;          // rank of v in u's list
        const uint32_t weight_v = rank_of(v, u);  // rank of u in v's list
        weight = static_cast<double>(std::min(weight_u, weight_v));
      }
      graph.AddEdge(u, v, weight);
    }
  }
  graph.SortAdjacencyByWeight();
  return graph;
}

}  // namespace nela::graph
